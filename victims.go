package ampere

import (
	"math/rand"

	"repro/internal/dpu"
	"repro/internal/imagenet"
	"repro/internal/rsa"
	"repro/internal/virus"
)

// PowerVirus is the 160k-instance stress bitstream of the Fig. 2
// characterization (victim side).
type PowerVirus = virus.Array

// DeployPowerVirus places the default power-virus array (160 groups of
// 1,000 instances, spread over every clock region) on the board's
// fabric and returns the runtime activation handle.
func DeployPowerVirus(b *Board) (*PowerVirus, error) {
	array, err := virus.New(virus.Config{})
	if err != nil {
		return nil, err
	}
	if err := array.Deploy(b.Fabric()); err != nil {
		return nil, err
	}
	return array, nil
}

// DPU is the deployed deep-learning accelerator (victim side).
type DPU = dpu.Engine

// DeployDPU places a B4096-class DPU on the board's fabric, wired to a
// synthetic ImageNet query stream and the board's CPU/DDR load inputs.
// Load a zoo model with LoadModel to start inference.
func DeployDPU(b *Board) (*DPU, error) {
	queries, err := imagenet.New(b.Engine().Stream("queries"))
	if err != nil {
		return nil, err
	}
	engine, err := dpu.NewEngine(dpu.EngineConfig{
		Queries:        queries,
		SetCPUFullUtil: b.CPUFull().SetUtil,
		SetCPULowUtil:  b.CPULow().SetUtil,
		SetDDRUtil:     b.DDR().SetUtil,
	})
	if err != nil {
		return nil, err
	}
	if err := b.Fabric().Place(engine, b.Fabric().SpreadEvenly()); err != nil {
		return nil, err
	}
	return engine, nil
}

// LoadZooModel loads a zoo model by name onto a deployed DPU.
func LoadZooModel(d *DPU, name string) error {
	m, err := dpu.ZooModel(name)
	if err != nil {
		return err
	}
	return d.LoadModel(m)
}

// RSACircuit is the deployed RSA-1024 exponentiation engine (victim
// side).
type RSACircuit = rsa.Circuit

// DeployRSA generates a random 1024-bit key with the given Hamming
// weight, embeds it in an RSA-1024 square-and-multiply circuit at
// 100 MHz, and places the circuit on the board's fabric. The circuit
// continuously encrypts random plaintexts, like the paper's victim.
func DeployRSA(b *Board, hammingWeight int, seed int64) (*RSACircuit, error) {
	rng := rand.New(rand.NewSource(seed))
	exponent, err := rsa.ExponentWithHammingWeight(1024, hammingWeight, rng)
	if err != nil {
		return nil, err
	}
	modulus, err := rsa.Modulus(1024, rng)
	if err != nil {
		return nil, err
	}
	circuit, err := rsa.NewCircuit(rsa.CircuitConfig{
		Exponent: exponent,
		Modulus:  modulus,
		Rand:     b.Engine().Stream("rsa-plaintexts"),
	})
	if err != nil {
		return nil, err
	}
	if err := b.Fabric().Place(circuit, b.Fabric().SpreadEvenly()); err != nil {
		return nil, err
	}
	return circuit, nil
}
