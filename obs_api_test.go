package ampere

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"
)

// TestSnapshotAfterRun exercises the public observability API: running a
// board must leave engine and sensor counters in the process snapshot.
func TestSnapshotAfterRun(t *testing.T) {
	b, err := NewBoard(BoardConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	before := Snapshot()
	b.Run(200 * time.Millisecond)
	after := Snapshot()

	if got := after.Counter("sim.ticks") - before.Counter("sim.ticks"); got <= 0 {
		t.Fatalf("sim.ticks did not advance: delta %d", got)
	}
	if got := after.Counter("ina226.conversions") - before.Counter("ina226.conversions"); got <= 0 {
		t.Fatalf("ina226.conversions did not advance: delta %d", got)
	}

	// An unprivileged read must show up in the sysfs counters.
	atk, err := NewAttacker(b.Sysfs(), Unprivileged)
	if err != nil {
		t.Fatal(err)
	}
	probe, err := atk.Probe(Channel{Label: SensorFPGA, Kind: Current})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := probe(); err != nil {
		t.Fatal(err)
	}
	final := Snapshot()
	if got := final.Counter("sysfs.reads") - after.Counter("sysfs.reads"); got <= 0 {
		t.Fatalf("sysfs.reads did not advance: delta %d", got)
	}
}

// TestServeObsEndpoints starts the observability server via the public
// API and round-trips the JSON snapshot endpoint.
func TestServeObsEndpoints(t *testing.T) {
	bound, shutdown, err := ServeObs(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	resp, err := http.Get("http://" + bound + "/metrics/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status = %d", resp.StatusCode)
	}
	var snap ObsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("snapshot decode: %v", err)
	}
	if snap.TakenAt.IsZero() {
		t.Fatal("snapshot missing timestamp")
	}

	pprof, err := http.Get("http://" + bound + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	pprof.Body.Close()
	if pprof.StatusCode != http.StatusOK {
		t.Fatalf("pprof status = %d", pprof.StatusCode)
	}
}

// TestWriteTrace exercises the public trace export: after a run the
// exported timeline must be valid trace-event JSON with events on it.
func TestWriteTrace(t *testing.T) {
	b, err := NewBoard(BoardConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b.Run(100 * time.Millisecond)
	var buf bytes.Buffer
	if err := WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("trace export carries no events")
	}
}

// TestRecordHistory exercises the public history API: after starting a
// recorder and running a board, the installed recorder's store must
// hold series, and the obs server must answer /metrics/range.
func TestRecordHistory(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rec := RecordHistory(ctx, 20*time.Millisecond)
	if rec == nil {
		t.Fatal("RecordHistory returned nil")
	}
	if MetricsHistory() != rec {
		t.Fatal("MetricsHistory does not return the started recorder")
	}
	b, err := NewBoard(BoardConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b.Run(200 * time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for len(rec.Store().SeriesNames()) == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if len(rec.Store().SeriesNames()) == 0 {
		t.Fatal("recorder sampled no series")
	}

	bound, shutdown, err := ServeObs(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	resp, err := http.Get("http://" + bound + "/metrics/range")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics/range status = %d, want 200 with a recorder installed", resp.StatusCode)
	}
	var catalog struct {
		Names []string `json:"names"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&catalog); err != nil {
		t.Fatal(err)
	}
	if len(catalog.Names) == 0 {
		t.Fatal("/metrics/range catalog lists no series")
	}
}
