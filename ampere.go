// Package ampere is the public API of the AmpereBleed reproduction: a
// circuit-free, unprivileged power side-channel attack on ARM-FPGA SoCs
// that samples the boards' INA226 current sensors through the Linux
// hwmon interface (DAC 2025).
//
// Because the attack targets hardware (a Xilinx ZCU102), this library
// ships a full simulation of the board — FPGA fabric, power delivery
// network with a voltage stabilizer, INA226 register models, a sysfs/
// hwmon tree with real permission semantics, and the paper's victim
// circuits (power-virus array, ring-oscillator baseline, Vitis-AI-style
// DPU with a 39-model zoo, RSA-1024 square-and-multiply engine). The
// attack code path is identical to the real one: unprivileged file
// reads of curr1_input/in1_input/power1_input.
//
// Typical use:
//
//	b, _ := ampere.NewBoard(ampere.BoardConfig{Seed: 1})
//	b.Run(100 * time.Millisecond)
//	atk, _ := ampere.NewAttacker(b.Sysfs(), ampere.Unprivileged)
//	probe, _ := atk.Probe(ampere.Channel{Label: ampere.SensorFPGA, Kind: ampere.Current})
//	amps, _ := probe() // FPGA current, no privileges, no crafted circuit
//
// The three paper experiments are one call each: Characterize (Fig. 2),
// Fingerprint (Fig. 3 / Table III), and RSAHammingWeight (Fig. 4);
// Mitigation demonstrates the Sec. V countermeasure.
package ampere

import (
	"context"
	"io"
	"time"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/dpu"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/obs/export"
	"repro/internal/sysfs"
)

// Board is the simulated ZCU102 evaluation board.
type Board = board.ZCU102

// BoardConfig configures a Board.
type BoardConfig = board.Config

// BoardSpec is one Table I catalog row.
type BoardSpec = board.Spec

// Cred is a permission credential for sysfs access.
type Cred = sysfs.Cred

// Credentials for the two sides of the threat model.
var (
	// Unprivileged is the attacker's credential.
	Unprivileged = sysfs.Nobody
	// Privileged is the administrator's credential.
	Privileged = sysfs.Root
)

// Attacker is the unprivileged measurement side of the attack.
type Attacker = core.Attacker

// Channel identifies a sensor and measurement kind.
type Channel = core.Channel

// Kind selects current, voltage, or power.
type Kind = core.Kind

// Measurement kinds.
const (
	Current = core.Current
	Voltage = core.Voltage
	Power   = core.Power
)

// Sensitive ZCU102 sensor labels (Table II).
const (
	SensorCPUFull = board.SensorCPUFull
	SensorCPULow  = board.SensorCPULow
	SensorFPGA    = board.SensorFPGA
	SensorDDR     = board.SensorDDR
)

// Experiment configurations and results.
type (
	// CharacterizeConfig parameterizes the Fig. 2 sweep.
	CharacterizeConfig = core.CharacterizeConfig
	// CharacterizeResult is the Fig. 2 dataset.
	CharacterizeResult = core.CharacterizeResult
	// FingerprintConfig parameterizes the Table III experiment.
	FingerprintConfig = core.FingerprintConfig
	// FingerprintResult is the Table III grid.
	FingerprintResult = core.FingerprintResult
	// Capture is one victim run observed on every channel.
	Capture = core.Capture
	// RSAConfig parameterizes the Fig. 4 experiment.
	RSAConfig = core.RSAConfig
	// RSAResult is the Fig. 4 dataset.
	RSAResult = core.RSAResult
	// MitigationResult records the Sec. V countermeasure outcome.
	MitigationResult = core.MitigationResult
	// Classifier is the attack's online phase: label a black-box
	// accelerator from a fresh trace.
	Classifier = core.Classifier
	// LeakageConfig parameterizes the TVLA leakage assessment.
	LeakageConfig = core.LeakageConfig
	// LeakageResult is the TVLA/SNR assessment outcome.
	LeakageResult = core.LeakageResult
	// DNNModel is a DPU-deployable workload description.
	DNNModel = dpu.Model
)

// NewBoard builds a fully wired simulated ZCU102.
func NewBoard(cfg BoardConfig) (*Board, error) { return board.NewZCU102(cfg) }

// BoardCatalog returns the 8 surveyed boards of Table I.
func BoardCatalog() []BoardSpec { return board.Catalog() }

// NewAttacker returns an attacker over a board's sysfs tree.
func NewAttacker(fs *sysfs.FS, cred Cred) (*Attacker, error) {
	return core.NewAttacker(fs, cred)
}

// SensitiveChannels returns the six channels Table III evaluates.
func SensitiveChannels() []Channel { return core.SensitiveChannels() }

// Characterize runs the Fig. 2 sweep: current/voltage/power/RO response
// to 0..160 k active power-virus instances.
func Characterize(cfg CharacterizeConfig) (*CharacterizeResult, error) {
	return core.Characterize(cfg)
}

// Fingerprint runs the Table III experiment: random-forest model
// fingerprinting over the DPU zoo.
func Fingerprint(cfg FingerprintConfig) (*FingerprintResult, error) {
	return core.Fingerprint(cfg)
}

// CollectDPUTraces runs only the offline trace-collection phase.
func CollectDPUTraces(cfg FingerprintConfig) ([]*Capture, error) {
	return core.CollectDPUTraces(cfg)
}

// EvaluateCaptures runs only the classification phase.
func EvaluateCaptures(cfg FingerprintConfig, caps []*Capture) (*FingerprintResult, error) {
	return core.EvaluateCaptures(cfg, caps)
}

// TrainClassifier fits the fingerprinting attack's offline-phase model
// for one channel and duration.
func TrainClassifier(cfg FingerprintConfig, caps []*Capture, ch Channel, d time.Duration) (*Classifier, error) {
	return core.TrainClassifier(cfg, caps, ch, d)
}

// RSAHammingWeight runs the Fig. 4 experiment: Hamming-weight recovery
// from an RSA-1024 circuit.
func RSAHammingWeight(cfg RSAConfig) (*RSAResult, error) {
	return core.RSAHammingWeight(cfg)
}

// Mitigation runs the Sec. V countermeasure end to end.
func Mitigation(seed int64) (*MitigationResult, error) { return core.Mitigation(seed) }

// AssessRSALeakage runs the TVLA fixed-vs-random leakage test over the
// FPGA current channel against the RSA victim.
func AssessRSALeakage(cfg LeakageConfig) (*LeakageResult, error) {
	return core.AssessRSALeakage(cfg)
}

// SurveyRow summarizes one sensor in a triage survey.
type SurveyRow = core.SurveyRow

// CovertConfig parameterizes a covert-channel transmission.
type CovertConfig = core.CovertConfig

// Detector is an online CUSUM workload-transition detector.
type Detector = core.Detector

// DetectorConfig parameterizes a Detector.
type DetectorConfig = core.DetectorConfig

// DetectorEvent is one detected workload transition.
type DetectorEvent = core.Event

// NewDetector returns an online workload detector over current samples
// taken at the given interval.
func NewDetector(cfg DetectorConfig, interval time.Duration) (*Detector, error) {
	return core.NewDetector(cfg, interval)
}

// FamilyResult reports model- and family-level fingerprinting accuracy.
type FamilyResult = core.FamilyResult

// EvaluateFamilies cross-validates one channel/duration at both the
// exact-architecture and architecture-family granularity.
func EvaluateFamilies(cfg FingerprintConfig, caps []*Capture, ch Channel, d time.Duration) (*FamilyResult, error) {
	return core.EvaluateFamilies(cfg, caps, ch, d)
}

// EstimateInferencePeriod recovers the victim's inference-loop period
// from a capture's dominant spectral component.
func EstimateInferencePeriod(capt *Capture, ch Channel) (time.Duration, bool, error) {
	return core.EstimateInferencePeriod(capt, ch)
}

// SaveCaptures writes captures as JSON for offline analysis.
func SaveCaptures(w io.Writer, caps []*Capture) error { return core.SaveCaptures(w, caps) }

// LoadCaptures reads captures written by SaveCaptures.
func LoadCaptures(r io.Reader) ([]*Capture, error) { return core.LoadCaptures(r) }

// CovertResult summarizes a covert transmission.
type CovertResult = core.CovertResult

// CovertTransmit sends bits from an FPGA-side sender (modulated
// power-virus activity) to the unprivileged CPU-side receiver through
// the current sensor, and reports the bit error rate and throughput.
func CovertTransmit(cfg CovertConfig) (*CovertResult, error) {
	return core.CovertTransmit(cfg)
}

// ApplicabilityConfig parameterizes the cross-board experiment.
type ApplicabilityConfig = core.ApplicabilityConfig

// BoardApplicability is one board's cross-board outcome.
type BoardApplicability = core.BoardApplicability

// Applicability runs the attack's discovery+characterization loop on
// every Table I board, backing the paper's applicability claim.
func Applicability(cfg ApplicabilityConfig) ([]BoardApplicability, error) {
	return core.Applicability(cfg)
}

// FaultProfile is a composable fault-injection profile for the
// simulated sensor stack (sysfs read errors, stale INA226 latches,
// register bit-flips, scheduler jitter/dropouts, hwmon renumbering,
// regulator transients). Pass one via the Faults field of the
// experiment configs, or scale a preset with Profile.Scale.
type FaultProfile = faults.Profile

// FaultPreset returns a built-in fault profile by name; see
// FaultPresetNames for the catalogue.
func FaultPreset(name string) (FaultProfile, error) { return faults.Preset(name) }

// FaultPresetNames lists the built-in fault profiles
// (none|flaky-sysfs|stale-sensor|noisy-sched|hostile).
func FaultPresetNames() []string { return faults.PresetNames() }

// RobustnessConfig parameterizes the accuracy-vs-fault-rate sweep.
type RobustnessConfig = core.RobustnessConfig

// RobustnessPoint is one intensity's outcome in the sweep.
type RobustnessPoint = core.RobustnessPoint

// RobustnessResult is the full accuracy-vs-fault-rate curve.
type RobustnessResult = core.RobustnessResult

// Robustness reruns applicability, fingerprinting, and the covert
// channel under a fault profile at increasing intensities, charting how
// gracefully the attack degrades as the sensor stack gets hostile.
func Robustness(cfg RobustnessConfig) (*RobustnessResult, error) {
	return core.Robustness(cfg)
}

// NewBoardByName wires any Table I board by catalog name.
func NewBoardByName(name string, cfg BoardConfig) (*Board, error) {
	return board.New(name, cfg)
}

// Survey polls every discovered sensor's current channel for the given
// duration and ranks them by observed variation — the attacker's triage
// step when labels are missing or meaningless.
func Survey(b *Board, a *Attacker, duration time.Duration) ([]SurveyRow, error) {
	return core.Survey(b, a, duration)
}

// ObsSnapshot is a point-in-time copy of the library's observability
// registry: counters (sysfs reads, INA226 conversions, captures
// collected, engine ticks), gauges (sim-time/wall-time ratio, progress),
// histograms with p50/p95/p99 (attacker achieved sample rate, classifier
// train/predict timings, per-component step latencies), recent spans,
// and progress events.
type ObsSnapshot = obs.Snapshot

// ObsHistogramStat is the summary of one snapshot histogram.
type ObsHistogramStat = obs.HistogramStat

// Snapshot captures the current state of every metric the library
// records. Metrics accumulate process-wide across boards and
// experiments; call ResetMetrics first to scope a measurement to one
// run.
func Snapshot() ObsSnapshot { return obs.Default.Snapshot() }

// ResetMetrics zeroes the observability registry in place (cached
// metric handles stay live). The reset is not atomic with respect to a
// running experiment, so call it between experiments, not during one.
func ResetMetrics() { obs.Default.Reset() }

// ServeObs serves the observability endpoints (/metrics OpenMetrics
// text, /metrics/stream SSE, /metrics/snapshot JSON, /healthz,
// /debug/vars expvar, /trace Chrome trace-event JSON, /debug/pprof
// profiling) on addr (":0" picks a free port). It returns the bound
// address and a shutdown function. The server stops when ctx is
// cancelled or shutdown is called, whichever comes first; either way
// in-flight handlers (including live /metrics/stream feeds) are
// drained gracefully rather than the listener goroutine leaking for
// the process lifetime.
func ServeObs(ctx context.Context, addr string) (bound string, shutdown func(), err error) {
	return obs.Serve(ctx, addr, obs.Default)
}

// MetricsRecorder is a running metrics-history recorder: a periodic
// sampler of the observability registry into an in-process time-series
// store with a bounded raw ring and downsampled retention tiers.
type MetricsRecorder = obs.Recorder

// RecordHistory starts recording a metrics time series from the
// library's registry every interval (<= 0 selects the default 1s) until
// ctx is cancelled. While a recorder is installed, ServeObs additionally
// answers /metrics/range (raw points or windowed min/max/mean
// aggregates) and /metrics/query (rate over counters,
// quantile-over-window), and /healthz judges its health rules over
// recent windows instead of cumulative totals. The returned recorder's
// Store gives direct query access in-process.
func RecordHistory(ctx context.Context, interval time.Duration) *MetricsRecorder {
	if interval <= 0 {
		interval = obs.DefaultHistoryInterval
	}
	return obs.StartRecorder(ctx, obs.RecorderOptions{Interval: interval})
}

// MetricsHistory returns the installed history recorder, or nil when
// RecordHistory has not run.
func MetricsHistory() *MetricsRecorder { return obs.Default.History() }

// WriteTrace exports the current span tracer and event ring as Chrome
// trace-event JSON (loadable in Perfetto or chrome://tracing) with one
// track on the wall clock and one on the sim clock. Retention is
// bounded: at most the last obs.SpanRingSize spans appear.
func WriteTrace(w io.Writer) error {
	return export.Write(w, obs.Default.Snapshot())
}

// ModelZoo returns the 39 DNN architectures of the fingerprinting suite.
func ModelZoo() []*DNNModel { return dpu.Zoo() }

// Fig3Models returns the six models whose traces Fig. 3 plots.
func Fig3Models() []string { return dpu.Fig3Models() }
