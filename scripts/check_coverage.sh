#!/bin/sh
# check_coverage.sh — gate per-package statement coverage.
#
# Usage: scripts/check_coverage.sh [threshold-percent] [package ...]
#
# Runs `go test -cover` on each package and fails when any of them
# reports total statement coverage below the threshold (default 60%).
# The package list defaults to the subsystems the parallel runner work
# leans on hardest.
set -eu

THRESHOLD="${1:-60}"
if [ "$#" -gt 1 ]; then
    shift
    PACKAGES="$*"
else
    PACKAGES="./internal/runner ./internal/core ./internal/sim ./internal/faults ./internal/trace ./internal/obs ./internal/obs/ledger ./internal/obs/export ./internal/obs/openmetrics ./internal/obs/olog ./internal/obs/top ./internal/obs/tsdb ./internal/perf ./internal/check ./internal/resilience ./internal/jobs ./internal/jobs/kinds"
fi

status=0
for pkg in $PACKAGES; do
    out=$(go test -cover -coverprofile=/dev/null "$pkg" 2>&1) || {
        echo "$out"
        echo "FAIL: tests failed in $pkg"
        status=1
        continue
    }
    pct=$(printf '%s\n' "$out" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p' | head -n1)
    if [ -z "$pct" ]; then
        echo "FAIL: could not parse coverage for $pkg:"
        printf '%s\n' "$out"
        status=1
        continue
    fi
    ok=$(awk -v p="$pct" -v t="$THRESHOLD" 'BEGIN { print (p >= t) ? 1 : 0 }')
    if [ "$ok" -eq 1 ]; then
        echo "ok   $pkg  ${pct}% >= ${THRESHOLD}%"
    else
        echo "FAIL $pkg  ${pct}% < ${THRESHOLD}%"
        status=1
    fi
done
exit $status
