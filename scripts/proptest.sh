#!/bin/sh
# proptest.sh — run every property suite (TestProp*) at a chosen
# iteration count and seed.
#
# Usage: scripts/proptest.sh [iters] [seed]
#
# CI calls this with a small bounded count and the fixed default seed
# so the suites are deterministic and fast; a nightly job (or a local
# soak before a risky change) raises the count:
#
#   scripts/proptest.sh 5000            # 5000 iterations, default seed
#   scripts/proptest.sh 5000 $(date +%s)  # fresh seed per night
#
# A falsified property prints a replay line with the exact seed; paste
# it into `go test` from the failing package to reproduce the
# byte-identical shrunk counterexample (see README, "Replaying a
# counterexample").
set -eu

ITERS="${1:-100}"
SEED="${2:-728813}" # check.DefaultSeed (0xB1EED)

# Every package that contains a TestProp* suite. internal/check's own
# self-tests run too: they pin shrink determinism and seed derivation.
PACKAGES="./internal/check ./internal/stats ./internal/trace ./internal/leakage ./internal/core ./internal/runner ./internal/obs ./internal/obs/ledger"

status=0
for pkg in $PACKAGES; do
    if go test -count=1 -run '^TestProp|^TestMutant' "$pkg" \
        -args -check.seed="$SEED" -check.iters="$ITERS"; then
        :
    else
        status=1
    fi
done

if [ "$status" -ne 0 ]; then
    echo "FAIL: property suites falsified at seed=$SEED iters=$ITERS" >&2
fi
exit $status
