#!/bin/sh
# chaos_resume.sh — kill a checkpointed run mid-flight and prove the
# resumed run is byte-identical to an uninterrupted one.
#
# Usage: scripts/chaos_resume.sh
#
# Flow: run `characterize` supervised (crash-safe checkpoint, hostile
# fault profile) to completion as the reference, then run it again,
# SIGKILL the process mid-sweep, resume from the checkpoint with a
# different worker count, and diff (a) the canonical run manifests and
# (b) the rendered Fig. 2 reports. Any byte of difference fails: the
# round-barrier checkpoint contract promises that a killed-and-resumed
# run measures exactly what an uninterrupted run measures.
set -eu

BIN="${TMPDIR:-/tmp}/amperebleed-chaos.$$"
WORK=$(mktemp -d)
trap 'rm -rf "$WORK" "$BIN"' EXIT

go build -o "$BIN" ./cmd/amperebleed

SEED=7
SAMPLES=20

echo "chaos-resume: reference run (uninterrupted, workers=1)"
"$BIN" -faults hostile -ledger "$WORK/ref.jsonl" \
    characterize -seed "$SEED" -samples "$SAMPLES" -parallel 1 \
    -checkpoint "$WORK/ref.checkpoint.json" > "$WORK/ref.out"

# Kill the same run mid-sweep. The delay ladder adapts to machine
# speed: too early leaves no checkpoint yet, too late lets the run
# finish; both retry with a different delay.
killed=0
for delay in 0.4 0.2 0.6 0.1 0.8; do
    rm -f "$WORK/chaos.checkpoint.json"
    "$BIN" -faults hostile \
        characterize -seed "$SEED" -samples "$SAMPLES" -parallel 4 \
        -checkpoint "$WORK/chaos.checkpoint.json" > /dev/null 2>&1 &
    pid=$!
    sleep "$delay"
    if kill -9 "$pid" 2>/dev/null; then
        wait "$pid" 2>/dev/null || true
        if [ -f "$WORK/chaos.checkpoint.json" ]; then
            echo "chaos-resume: SIGKILL after ${delay}s left a mid-run checkpoint"
            killed=1
            break
        fi
        echo "chaos-resume: killed before the first round barrier (${delay}s); retrying"
    else
        wait "$pid" 2>/dev/null || true
        echo "chaos-resume: run finished before the ${delay}s kill; retrying"
    fi
done
if [ "$killed" -ne 1 ]; then
    echo "FAIL: never captured a mid-run checkpoint; machine too fast/slow for the delay ladder"
    exit 1
fi

echo "chaos-resume: resuming with workers=2"
"$BIN" -ledger "$WORK/chaos.jsonl" \
    resume -parallel 2 "$WORK/chaos.checkpoint.json" \
    > "$WORK/chaos.out" 2> "$WORK/resume.log"
sed 's/^/  /' "$WORK/resume.log"

"$BIN" runs -ledger "$WORK/ref.jsonl" -canonical 0 > "$WORK/ref.canonical.json"
"$BIN" runs -ledger "$WORK/chaos.jsonl" -canonical 0 > "$WORK/chaos.canonical.json"

if ! diff "$WORK/ref.canonical.json" "$WORK/chaos.canonical.json"; then
    echo "FAIL: canonical manifest of the resumed run differs from the uninterrupted run"
    exit 1
fi
if ! diff "$WORK/ref.out" "$WORK/chaos.out"; then
    echo "FAIL: rendered report of the resumed run differs from the uninterrupted run"
    exit 1
fi
echo "ok: killed-and-resumed run is byte-identical to the uninterrupted run"

# Phase 2: load shedding under a sensor that has effectively died.
# At intensity 50 the hostile profile saturates the sysfs error rate;
# the acceptance bar is explicit degradation — the circuit breaker
# opens and sheds, every shard quarantines with a clear error, and the
# process exits instead of hanging in the retry path.
echo "chaos-resume: breaker shed smoke (hostile, intensity 50)"
set +e
timeout 120 "$BIN" -obs -faults hostile -fault-intensity 50 \
    characterize -seed 3 -levels 4 -samples 24 \
    -checkpoint "$WORK/shed.checkpoint.json" > "$WORK/shed.out" 2> "$WORK/shed.err"
shed_exit=$?
set -e
if [ "$shed_exit" -eq 124 ]; then
    echo "FAIL: hostile high-intensity run hung instead of degrading"
    exit 1
fi
opens=$(sed -n 's/.*resilience\.breaker\.open_total *\([0-9][0-9]*\).*/\1/p' "$WORK/shed.out" | head -n1)
quarantined=$(sed -n 's/.*jobs\.shards_quarantined *\([0-9][0-9]*\).*/\1/p' "$WORK/shed.out" | head -n1)
if [ -z "$opens" ] || [ "$opens" -eq 0 ]; then
    echo "FAIL: breaker never opened under hostile intensity 50 (open_total=${opens:-missing})"
    exit 1
fi
if [ -z "$quarantined" ] || [ "$quarantined" -eq 0 ]; then
    echo "FAIL: dead-sensor shards were not quarantined (shards_quarantined=${quarantined:-missing})"
    exit 1
fi
echo "ok: breaker opened ${opens}x and ${quarantined} shards quarantined explicitly (exit ${shed_exit}, no hang)"
