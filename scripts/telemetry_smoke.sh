#!/bin/sh
# telemetry_smoke.sh — end-to-end smoke test of the live telemetry
# stack: start an amperebleed run serving -obs-addr with -history, then
# verify that
#
#   * /healthz answers (and reaches "ok" or a diagnosed verdict), and
#     /healthz?verbose=1 returns the per-rule verdict JSON,
#   * /metrics is a valid OpenMetrics exposition (checked with the
#     in-repo parser via cmd/metricscheck) carrying the core families,
#   * /metrics/stream emits SSE metrics frames whose snapshots validate
#     (metricscheck -stream),
#   * /metrics/range and /metrics/query return valid history JSON
#     (metricscheck -range / -query),
#   * `amperebleed top -once -addr` renders a dashboard frame with
#     sparkline hist lines from the recorded history,
#   * a plain `amperebleed top -once` demo run renders all five panels.
#
# Everything binds to a loopback port picked by the kernel.
set -eu

cd "$(dirname "$0")/.."
TMP="$(mktemp -d)"
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

echo "== build =="
go build -o "$TMP/amperebleed" ./cmd/amperebleed
go build -o "$TMP/metricscheck" ./cmd/metricscheck

echo "== start server (covert run under the hostile fault profile, recording history) =="
"$TMP/amperebleed" -obs-addr 127.0.0.1:0 -obs-hold 60s -faults hostile \
    -history -history-interval 200ms \
    covert -bits 64 >"$TMP/run.log" 2>"$TMP/run.err" &
SERVER_PID=$!

# The bound address is announced on stderr as "obs: serving http://ADDR/...".
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's|^obs: serving http://\([^/]*\)/.*|\1|p' "$TMP/run.err" | head -n1)
    [ -n "$ADDR" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || {
        echo "FAIL: server exited before binding"; cat "$TMP/run.err"; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "FAIL: no bound address announced"; cat "$TMP/run.err"; exit 1; }
echo "server at $ADDR"

echo "== /healthz =="
HEALTH=$(curl -fsS "http://$ADDR/healthz")
echo "$HEALTH"

echo "== /healthz?verbose=1 (windowed rule verdicts) =="
curl -fsS "http://$ADDR/healthz?verbose=1" >"$TMP/healthz.json" || true
grep -q '"verdicts"' "$TMP/healthz.json" \
    || { echo "FAIL: verbose healthz lacks verdicts"; cat "$TMP/healthz.json"; exit 1; }

echo "== /metrics (validated with the in-repo parser) =="
curl -fsS "http://$ADDR/metrics" >"$TMP/metrics.txt"
"$TMP/metricscheck" -require sim_ticks,core_sampler_samples,covert_ber "$TMP/metrics.txt"

echo "== /metrics/snapshot cross-check =="
curl -fsS "http://$ADDR/metrics/snapshot" | grep -q '"counters"' \
    || { echo "FAIL: snapshot endpoint lacks counters"; exit 1; }

echo "== /metrics/stream (SSE, snapshots validated) =="
"$TMP/metricscheck" -stream 2 -url "http://$ADDR"

# Give the 200ms recorder time to seal a few windows before querying.
sleep 1

echo "== /metrics/range (history JSON validated) =="
curl -fsS "http://$ADDR/metrics/range?series=core.sampler.samples,covert.ber&last=30s" \
    | "$TMP/metricscheck" -range -
curl -fsS "http://$ADDR/metrics/range?series=core.sampler.samples&window=1s&last=30s" \
    | "$TMP/metricscheck" -range -

echo "== /metrics/query (rate + quantile validated) =="
curl -fsS "http://$ADDR/metrics/query?series=core.sampler.samples&fn=rate" \
    | "$TMP/metricscheck" -query -
curl -fsS "http://$ADDR/metrics/query?series=covert.ber&fn=quantile&q=0.95" \
    | "$TMP/metricscheck" -query -

echo "== top -once against the live server (sparklines from history) =="
"$TMP/amperebleed" top -once -addr "$ADDR" >"$TMP/top-remote.txt"
for panel in sampling leakage covert faults shards; do
    grep -q "$panel" "$TMP/top-remote.txt" \
        || { echo "FAIL: remote top frame lacks the $panel panel"; cat "$TMP/top-remote.txt"; exit 1; }
done
grep -q '^  hist ' "$TMP/top-remote.txt" \
    || { echo "FAIL: remote top frame lacks sparkline hist lines"; cat "$TMP/top-remote.txt"; exit 1; }

kill "$SERVER_PID" 2>/dev/null || true
wait "$SERVER_PID" 2>/dev/null || true

echo "== top -once in-process demo =="
"$TMP/amperebleed" -faults hostile top -once >"$TMP/top-demo.txt"
for panel in sampling leakage covert faults shards; do
    grep -q "$panel" "$TMP/top-demo.txt" \
        || { echo "FAIL: demo top frame lacks the $panel panel"; cat "$TMP/top-demo.txt"; exit 1; }
done

echo "telemetry smoke: all checks passed"
