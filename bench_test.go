// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, printing the reproduced rows/series on the first
// iteration and asserting the paper's qualitative shape (who wins, by
// roughly what factor). Absolute wall-clock numbers measure the
// simulation, not the authors' testbed; EXPERIMENTS.md records the
// paper-vs-measured comparison produced by these benchmarks and by
// cmd/benchtab.
//
// Heavy benchmarks use documented budget reductions relative to the
// paper's capture sizes (see EXPERIMENTS.md); cmd/benchtab exposes flags
// to raise them to paper scale.
package ampere

import (
	"fmt"
	"math"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/board"
	"repro/internal/report"
)

// once-per-process guards so repeated benchmark iterations print once.
var (
	printTableI   sync.Once
	printTableII  sync.Once
	printFig2     sync.Once
	printFig3     sync.Once
	printTableIII sync.Once
	printFig4     sync.Once
	printObs      sync.Once
)

// reportObs prints the obs-layer headline numbers through the public
// Snapshot API, so benchmark logs record the attacker's achieved
// sampling rate and engine throughput alongside the accuracy tables.
func reportObs() {
	s := Snapshot()
	if h, ok := s.Histogram("attacker.sample_rate_hz"); ok {
		fmt.Printf("obs: attacker sample rate p50=%.1f Hz p99=%.1f Hz (%d channel-captures); %d captures; sim/wall ratio %.0fx\n",
			h.P50, h.P99, h.Count, s.Counter("core.captures"), s.Gauge("sim.ratio"))
	}
}

// BenchmarkTableI_BoardCatalog regenerates Table I: the surveyed
// ARM-FPGA boards and their integrated INA226 sensor counts.
func BenchmarkTableI_BoardCatalog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cat := BoardCatalog()
		if len(cat) != 8 {
			b.Fatalf("catalog size = %d, want 8", len(cat))
		}
		for _, s := range cat {
			if s.INASensors == 0 {
				b.Fatalf("%s has no INA226 sensors", s.Name)
			}
		}
		printTableI.Do(func() { _ = report.RenderTableI(os.Stdout, cat) })
	}
}

// BenchmarkTableII_SensitiveSensors regenerates Table II: the four
// sensitive ZCU102 sensors, verified by unprivileged discovery on a
// live simulated board.
func BenchmarkTableII_SensitiveSensors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		brd, err := NewBoard(BoardConfig{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		brd.Run(50 * time.Millisecond)
		atk, err := NewAttacker(brd.Sysfs(), Unprivileged)
		if err != nil {
			b.Fatal(err)
		}
		sensors, err := atk.Discover()
		if err != nil {
			b.Fatal(err)
		}
		if len(sensors) != 18 {
			b.Fatalf("discovered %d sensors, want 18", len(sensors))
		}
		printTableII.Do(func() {
			_ = report.RenderTableII(os.Stdout, board.SensitiveSensors())
		})
	}
}

// BenchmarkFig2_Characterization regenerates Fig. 2: current, voltage,
// power, and RO counts versus the number of active power-virus
// instances (161 levels), with Pearson coefficients and the 261×
// variation comparison. Budget: 20 hwmon updates per level instead of
// the paper's 10,000 samples.
func BenchmarkFig2_Characterization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Characterize(CharacterizeConfig{SamplesPerLevel: 20})
		if err != nil {
			b.Fatal(err)
		}
		// Paper shape: current/power r=0.999, |voltage r|=0.958,
		// RO r=-0.996, ratio 261×, ~40 current LSB per level.
		if res.Current.Pearson < 0.99 || res.Power.Pearson < 0.99 {
			b.Fatalf("current/power Pearson = %v/%v", res.Current.Pearson, res.Power.Pearson)
		}
		if res.RO.Pearson > -0.98 {
			b.Fatalf("RO Pearson = %v", res.RO.Pearson)
		}
		if math.Abs(res.Voltage.Pearson) < 0.8 {
			b.Fatalf("voltage |Pearson| = %v", math.Abs(res.Voltage.Pearson))
		}
		if res.VariationRatio < 150 || res.VariationRatio > 450 {
			b.Fatalf("variation ratio = %v, want ~261", res.VariationRatio)
		}
		if res.Current.LSBPerLevel < 30 || res.Current.LSBPerLevel > 50 {
			b.Fatalf("current LSB/level = %v, want ~40", res.Current.LSBPerLevel)
		}
		printFig2.Do(func() { _ = report.RenderFig2(os.Stdout, res) })
	}
}

// BenchmarkFig3_DNNTraces regenerates Fig. 3: current traces from the
// four sensitive sensors while six representative DNNs run on the DPU.
func BenchmarkFig3_DNNTraces(b *testing.B) {
	channels := []Channel{
		{Label: SensorCPUFull, Kind: Current},
		{Label: SensorCPULow, Kind: Current},
		{Label: SensorFPGA, Kind: Current},
		{Label: SensorDDR, Kind: Current},
	}
	for i := 0; i < b.N; i++ {
		caps, err := CollectDPUTraces(FingerprintConfig{
			Models:         Fig3Models(),
			TracesPerModel: 1,
			TraceDuration:  5 * time.Second,
			Durations:      []time.Duration{5 * time.Second},
			Folds:          1,
			Channels:       channels,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(caps) != 6 {
			b.Fatalf("captures = %d, want 6", len(caps))
		}
		// Each model must produce a distinct FPGA-current mean pattern.
		means := map[string]float64{}
		for _, c := range caps {
			tr := c.Traces[Channel{Label: SensorFPGA, Kind: Current}]
			sum := 0.0
			for _, s := range tr.Samples {
				sum += s
			}
			means[c.Model] = sum / float64(len(tr.Samples))
		}
		for m1, v1 := range means {
			for m2, v2 := range means {
				if m1 < m2 && math.Abs(v1-v2) < 1e-6 {
					b.Fatalf("models %s and %s have identical mean current", m1, m2)
				}
			}
		}
		printFig3.Do(func() { _ = report.RenderFig3(os.Stdout, caps, channels) })
	}
}

// BenchmarkTableIII_Fingerprinting regenerates Table III: top-1/top-5
// fingerprinting accuracy over 39 models for six channels and five
// trace durations, with the paper's RForest(100 trees, depth 32) and
// 10-fold cross-validation. Budget: 10 traces per model instead of the
// paper's full capture campaign.
func BenchmarkTableIII_Fingerprinting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Fingerprint(FingerprintConfig{TracesPerModel: 10, Folds: 10})
		if err != nil {
			b.Fatal(err)
		}
		if res.Classes != 39 {
			b.Fatalf("classes = %d, want 39", res.Classes)
		}
		full := 5 * time.Second
		cur, err := res.Cell(Channel{Label: SensorFPGA, Kind: Current}, full)
		if err != nil {
			b.Fatal(err)
		}
		vol, err := res.Cell(Channel{Label: SensorFPGA, Kind: Voltage}, full)
		if err != nil {
			b.Fatal(err)
		}
		pow, err := res.Cell(Channel{Label: SensorFPGA, Kind: Power}, full)
		if err != nil {
			b.Fatal(err)
		}
		// Paper shape: FPGA current near-perfect (0.997), power close
		// behind (0.989), voltage near chance (0.116; chance=0.0256).
		if cur.Top1 < 0.9 {
			b.Fatalf("FPGA current top1 = %v, want > 0.9 (paper 0.997)", cur.Top1)
		}
		if pow.Top1 < 0.85 {
			b.Fatalf("FPGA power top1 = %v, want > 0.85 (paper 0.989)", pow.Top1)
		}
		if vol.Top1 > 0.35 {
			b.Fatalf("FPGA voltage top1 = %v, want near chance (paper 0.116)", vol.Top1)
		}
		printTableIII.Do(func() {
			_ = report.RenderTableIII(os.Stdout, res, SensitiveChannels(),
				[]time.Duration{time.Second, 2 * time.Second, 3 * time.Second,
					4 * time.Second, 5 * time.Second})
		})
		printObs.Do(reportObs)
	}
}

// BenchmarkFig4_RSAHammingWeight regenerates Fig. 4: the distribution of
// FPGA current and power during RSA-1024 runs with 17 keys of Hamming
// weight 1..1024. Budget: 5,000 samples per key at 1 kHz instead of the
// paper's 100,000.
func BenchmarkFig4_RSAHammingWeight(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RSAHammingWeight(RSAConfig{Samples: 5000})
		if err != nil {
			b.Fatal(err)
		}
		// Paper shape: current separates all 17 weights; power collapses
		// them into about 5 groups.
		if res.CurrentGroups != 17 {
			b.Fatalf("current groups = %d, want 17", res.CurrentGroups)
		}
		if res.PowerGroups < 3 || res.PowerGroups > 8 {
			b.Fatalf("power groups = %d, want ~5", res.PowerGroups)
		}
		if res.CurrentPearson < 0.999 {
			b.Fatalf("current-vs-weight Pearson = %v", res.CurrentPearson)
		}
		printFig4.Do(func() { _ = report.RenderFig4(os.Stdout, res) })
	}
}

// BenchmarkAblation_UpdateInterval measures fingerprinting accuracy when
// a privileged administrator retunes the sensors from the default 35 ms
// to the fastest 2 ms interval — quantifying what the unprivileged
// attacker is denied (Sec. III-C).
func BenchmarkAblation_UpdateInterval(b *testing.B) {
	models := []string{"MobileNet-V1", "SqueezeNet-1.1", "EfficientNet-Lite0",
		"Inception-V3", "ResNet-50", "VGG-19", "DenseNet-121", "ResNet-18"}
	for i := 0; i < b.N; i++ {
		run := func(interval time.Duration) float64 {
			res, err := Fingerprint(FingerprintConfig{
				Models:         models,
				TracesPerModel: 10,
				TraceDuration:  2 * time.Second,
				Durations:      []time.Duration{2 * time.Second},
				Channels:       []Channel{{Label: SensorFPGA, Kind: Current}},
				UpdateInterval: interval,
			})
			if err != nil {
				b.Fatal(err)
			}
			cell, err := res.Cell(Channel{Label: SensorFPGA, Kind: Current}, 2*time.Second)
			if err != nil {
				b.Fatal(err)
			}
			return cell.Top1
		}
		slow := run(35 * time.Millisecond)
		fast := run(2 * time.Millisecond)
		if fast < slow-0.05 {
			b.Fatalf("2 ms interval (%.3f) should not trail 35 ms (%.3f)", fast, slow)
		}
		if i == 0 {
			fmt.Printf("Ablation: FPGA-current top-1 at 35 ms = %.3f, at 2 ms (root-only) = %.3f\n",
				slow, fast)
		}
	}
}

// BenchmarkAblation_Stabilizer compares the RO baseline's variation with
// the stabilizer on and off: crafted-circuit attacks depended on an
// unstabilized PDN, while the current channel barely changes.
func BenchmarkAblation_Stabilizer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := CharacterizeConfig{Levels: 41, SamplesPerLevel: 10}
		on, err := Characterize(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cfg.DisableStabilizer = true
		off, err := Characterize(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if off.RO.RelativeVariation < 5*on.RO.RelativeVariation {
			b.Fatalf("stabilizer off should multiply RO variation: on=%v off=%v",
				on.RO.RelativeVariation, off.RO.RelativeVariation)
		}
		if i == 0 {
			fmt.Printf("Ablation: RO relative variation stabilized=%.5f unstabilized=%.5f (%.0fx); current %.4f -> %.4f\n",
				on.RO.RelativeVariation, off.RO.RelativeVariation,
				off.RO.RelativeVariation/on.RO.RelativeVariation,
				on.Current.RelativeVariation, off.Current.RelativeVariation)
		}
	}
}

// BenchmarkExtension_Interference re-runs the Fig. 4 attack while a
// co-resident DPU hammers the same fabric: the box-statistics attack
// collapses (the attack wants a quiet victim), though the median trend
// partially survives.
func BenchmarkExtension_Interference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		quiet, err := RSAHammingWeight(RSAConfig{Samples: 1500})
		if err != nil {
			b.Fatal(err)
		}
		noisy, err := RSAHammingWeight(RSAConfig{Samples: 1500, ConcurrentDPUModel: "VGG-19"})
		if err != nil {
			b.Fatal(err)
		}
		if noisy.CurrentGroups >= quiet.CurrentGroups {
			b.Fatalf("interference did not degrade: %d vs %d",
				noisy.CurrentGroups, quiet.CurrentGroups)
		}
		if i == 0 {
			fmt.Printf("Extension: concurrent VGG-19 collapses Fig.4 grouping %d -> %d classes; median trend keeps r=%.2f\n",
				quiet.CurrentGroups, noisy.CurrentGroups, noisy.CurrentPearson)
		}
	}
}

// BenchmarkExtension_FamilyAccuracy scores the fingerprinting attack at
// the architecture-family granularity over all 39 models: when the
// classifier misses the exact model, it almost always stays within the
// right family.
func BenchmarkExtension_FamilyAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := FingerprintConfig{
			TracesPerModel: 10,
			TraceDuration:  2 * time.Second,
			Durations:      []time.Duration{2 * time.Second},
			Channels:       []Channel{{Label: SensorFPGA, Kind: Current}},
		}
		caps, err := CollectDPUTraces(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := EvaluateFamilies(cfg, caps, cfg.Channels[0], 2*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		if res.Families != 7 {
			b.Fatalf("families = %d, want 7", res.Families)
		}
		if res.FamilyTop1 < res.ModelTop1 {
			b.Fatalf("family %v < model %v", res.FamilyTop1, res.ModelTop1)
		}
		if i == 0 {
			fmt.Printf("Extension: FPGA-current top-1 = %.3f exact model, %.3f architecture family (7 families)\n",
				res.ModelTop1, res.FamilyTop1)
		}
	}
}

// BenchmarkExtension_ThermalResidue measures the second-order channel:
// after a workload stops, the die's temperature keeps the idle current
// elevated, so an attacker can tell a recently-busy FPGA from a cold one.
func BenchmarkExtension_ThermalResidue(b *testing.B) {
	for i := 0; i < b.N; i++ {
		idle := func(heat bool) float64 {
			brd, err := NewBoard(BoardConfig{Seed: 3, EnableThermal: true})
			if err != nil {
				b.Fatal(err)
			}
			virus, err := DeployPowerVirus(brd)
			if err != nil {
				b.Fatal(err)
			}
			if heat {
				if err := virus.SetActiveGroups(160); err != nil {
					b.Fatal(err)
				}
				brd.Run(30 * time.Second)
				if err := virus.SetActiveGroups(0); err != nil {
					b.Fatal(err)
				}
			} else {
				brd.Run(30 * time.Second)
			}
			brd.Run(200 * time.Millisecond)
			dev, err := brd.Sensor(SensorFPGA)
			if err != nil {
				b.Fatal(err)
			}
			return dev.Read().CurrentAmps
		}
		hot, cold := idle(true), idle(false)
		if hot <= cold {
			b.Fatalf("no residue: hot %v A <= cold %v A", hot, cold)
		}
		if i == 0 {
			fmt.Printf("Extension: thermal residue after 30 s of load = +%.0f mA idle (%.0f sensor LSBs) vs a cold die\n",
				(hot-cold)*1000, (hot-cold)*1000)
		}
	}
}

// BenchmarkExtension_CovertChannel measures the channel used as a
// PL-to-PS covert channel: OOK over the power-virus amplitude, decoded
// by the unprivileged receiver, at the default and root-retuned sensor
// rates.
func BenchmarkExtension_CovertChannel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		slow, err := CovertTransmit(CovertConfig{PayloadBits: 128, SymbolUpdates: 1})
		if err != nil {
			b.Fatal(err)
		}
		fast, err := CovertTransmit(CovertConfig{
			PayloadBits: 128, SymbolUpdates: 1, UpdateInterval: 2 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		if slow.BitErrors != 0 || fast.BitErrors != 0 {
			b.Fatalf("covert BER: slow=%v fast=%v", slow.BER(), fast.BER())
		}
		if i == 0 {
			fmt.Printf("Extension: covert channel %.1f bps error-free at 35 ms; %.0f bps at root-retuned 2 ms\n",
				slow.Throughput, fast.Throughput)
		}
	}
}

// BenchmarkAblation_SpectralFeatures compares the classifier with and
// without phase-invariant spectral features appended to the raw
// resampled trace (an attack refinement beyond the paper's feature set).
func BenchmarkAblation_SpectralFeatures(b *testing.B) {
	models := []string{"MobileNet-V1", "SqueezeNet-1.1", "EfficientNet-Lite0",
		"Inception-V3", "ResNet-50", "VGG-19", "DenseNet-121", "ResNet-18"}
	for i := 0; i < b.N; i++ {
		base := FingerprintConfig{
			Models:         models,
			TracesPerModel: 10,
			TraceDuration:  2 * time.Second,
			Durations:      []time.Duration{2 * time.Second},
			Channels:       []Channel{{Label: SensorFPGA, Kind: Current}},
		}
		caps, err := CollectDPUTraces(base)
		if err != nil {
			b.Fatal(err)
		}
		eval := func(spectral int) float64 {
			cfg := base
			cfg.SpectralBins = spectral
			res, err := EvaluateCaptures(cfg, caps)
			if err != nil {
				b.Fatal(err)
			}
			cell, err := res.Cell(base.Channels[0], 2*time.Second)
			if err != nil {
				b.Fatal(err)
			}
			return cell.Top1
		}
		raw := eval(0)
		spectral := eval(16)
		if spectral < raw-0.1 {
			b.Fatalf("spectral features hurt badly: %.3f vs %.3f", spectral, raw)
		}
		if i == 0 {
			fmt.Printf("Ablation: FPGA-current top-1 raw features = %.3f, +16 spectral bins = %.3f\n",
				raw, spectral)
		}
	}
}

// BenchmarkAblation_MontgomeryLadder runs the Fig. 4 attack against an
// RSA victim hardened with a Montgomery ladder (constant per-iteration
// activity). The leak must vanish: all 17 keys collapse into one group.
func BenchmarkAblation_MontgomeryLadder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RSAHammingWeight(RSAConfig{Samples: 2000, Countermeasure: true})
		if err != nil {
			b.Fatal(err)
		}
		if res.CurrentGroups != 1 {
			b.Fatalf("ladder current groups = %d, want 1", res.CurrentGroups)
		}
		if i == 0 {
			fmt.Printf("Ablation: Montgomery ladder collapses 17 Hamming-weight classes into %d current group(s); Pearson %.3f\n",
				res.CurrentGroups, res.CurrentPearson)
		}
	}
}

// BenchmarkExtension_Applicability runs the attack's discovery and
// characterization loop on all 8 Table I boards, backing the paper's
// claim that the channel exists wherever INA226 sensors do.
func BenchmarkExtension_Applicability(b *testing.B) {
	var printOnce sync.Once
	for i := 0; i < b.N; i++ {
		rows, err := Applicability(ApplicabilityConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 8 {
			b.Fatalf("rows = %d", len(rows))
		}
		for _, r := range rows {
			if r.CurrentPearson < 0.99 || !r.VoltageInBand {
				b.Fatalf("%s: pearson=%v inBand=%v", r.Board, r.CurrentPearson, r.VoltageInBand)
			}
		}
		printOnce.Do(func() { _ = report.RenderApplicability(os.Stdout, rows) })
	}
}

// BenchmarkAblation_TVLA runs the standard fixed-vs-random leakage
// assessment over the channel: the plain RSA victim fails decisively,
// the Montgomery-ladder victim passes.
func BenchmarkAblation_TVLA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		plain, err := AssessRSALeakage(LeakageConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if !plain.TVLA.Leaks {
			b.Fatalf("plain victim passed TVLA (t=%v)", plain.TVLA.T)
		}
		ladder, err := AssessRSALeakage(LeakageConfig{Countermeasure: true})
		if err != nil {
			b.Fatal(err)
		}
		if ladder.TVLA.Leaks {
			b.Fatalf("ladder victim failed TVLA (t=%v)", ladder.TVLA.T)
		}
		if i == 0 {
			fmt.Printf("Ablation: TVLA |t| plain=%.1f (leaks), ladder=%.1f (passes); SNR plain=%.0f ladder=%.2f\n",
				math.Abs(plain.TVLA.T), math.Abs(ladder.TVLA.T), plain.SNR, ladder.SNR)
		}
	}
}

// BenchmarkAblation_Mitigation measures the Sec. V countermeasure: after
// restricting hwmon to root, the unprivileged sampling path fails.
func BenchmarkAblation_Mitigation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Mitigation(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if !res.Effective() {
			b.Fatal("mitigation ineffective")
		}
	}
}
