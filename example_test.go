package ampere_test

import (
	"fmt"
	"log"
	"time"

	ampere "repro"
)

// The core observation: an unprivileged process reads the FPGA's
// current sensor through hwmon and sees a victim circuit light up.
func Example() {
	b, err := ampere.NewBoard(ampere.BoardConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	atk, err := ampere.NewAttacker(b.Sysfs(), ampere.Unprivileged)
	if err != nil {
		log.Fatal(err)
	}
	sensors, err := atk.Discover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovered %d INA226 sensors without privileges\n", len(sensors))

	virus, err := ampere.DeployPowerVirus(b)
	if err != nil {
		log.Fatal(err)
	}
	probe, err := atk.Probe(ampere.Channel{Label: ampere.SensorFPGA, Kind: ampere.Current})
	if err != nil {
		log.Fatal(err)
	}
	b.Run(100 * time.Millisecond)
	idle, _ := probe()
	if err := virus.SetActiveGroups(100); err != nil {
		log.Fatal(err)
	}
	b.Run(100 * time.Millisecond)
	busy, _ := probe()
	fmt.Printf("victim on: current rose by about %.0f A\n", busy-idle)
	// Output:
	// discovered 18 INA226 sensors without privileges
	// victim on: current rose by about 4 A
}

// The covert-channel use of the sensor: error-free on-off keying at the
// hwmon update rate.
func ExampleCovertTransmit() {
	res, err := ampere.CovertTransmit(ampere.CovertConfig{PayloadBits: 64})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sent %d bits, %d errors\n", res.BitsSent, res.BitErrors)
	// Output:
	// sent 64 bits, 0 errors
}

// The Sec. V mitigation: root-only sensors stop the unprivileged attack.
func ExampleMitigation() {
	res, err := ampere.Mitigation(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mitigation effective: %v\n", res.Effective())
	// Output:
	// mitigation effective: true
}
