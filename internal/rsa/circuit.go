package rsa

import (
	"errors"
	"fmt"
	"math/big"
	"math/rand"
	"time"

	"repro/internal/fabric"
)

// Default circuit parameters.
const (
	// DefaultClockHz is the paper's 100 MHz victim clock (Zhao & Suh's
	// original circuit ran at 20 MHz; the paper speeds it up 5×).
	DefaultClockHz = 100e6
	// DefaultCyclesPerIteration is the latency of one state-machine
	// iteration; both multiplier modules are synchronized to finish a
	// 1024-bit modular multiplication in this many fabric cycles.
	DefaultCyclesPerIteration = 1056
	// DefaultSquareElements is the toggling-element count of the
	// always-active square module.
	DefaultSquareElements = 12000
	// DefaultMultiplyElements is the toggling-element count of the
	// multiply module, active only on 1-bits. The value is the board
	// calibration point of Fig. 4: it spaces adjacent Hamming-weight
	// classes ~10 mA apart on the FPGA current channel (≫ its 1 mA LSB,
	// so all 17 classes separate) while the same spacing is only ~9.4 mW
	// (a third of the 25 mW power LSB, so the power channel collapses
	// the classes into a handful of groups — the paper observes 5).
	DefaultMultiplyElements = 4400
	// DefaultControlElements is the state machine's own activity.
	DefaultControlElements = 500
)

// CircuitConfig describes an RSA exponentiation circuit.
type CircuitConfig struct {
	// Exponent is the secret key, embedded in the bitstream. Required,
	// >= 1.
	Exponent *big.Int
	// Modulus is the public modulus. Required, odd, > 1.
	Modulus *big.Int
	// Bits is the state-machine width: the number of exponent bit
	// iterations per exponentiation (1024 for RSA-1024). The iteration
	// count is fixed by the register width, not by the key's top bit —
	// which is why the leak is the Hamming weight, not the bit length.
	// Zero means 1024.
	Bits int
	// ClockHz is the circuit clock; zero means DefaultClockHz.
	ClockHz float64
	// CyclesPerIteration is the per-iteration latency; zero means
	// DefaultCyclesPerIteration.
	CyclesPerIteration int
	// SquareElements, MultiplyElements, ControlElements override the
	// activity model; zero means the defaults.
	SquareElements   float64
	MultiplyElements float64
	ControlElements  float64
	// Ladder switches the state machine to a Montgomery ladder: one
	// multiplication and one squaring per iteration regardless of the
	// exponent bit. This is the constant-activity countermeasure; with
	// it enabled the circuit's mean current no longer depends on the
	// key's Hamming weight (see ladder.go).
	Ladder bool
	// Rand draws the random plaintexts the victim encrypts. Required.
	Rand *rand.Rand
	// Verify enables the real modular arithmetic alongside the activity
	// model, so the simulated datapath provably computes
	// plaintext^exponent mod modulus. It slows simulation roughly 100×;
	// leave it off for long side-channel runs.
	Verify bool
}

// Circuit is the deployed RSA engine. It implements fabric.Circuit.
type Circuit struct {
	cfg CircuitConfig

	// static per-key facts
	bits         []bool // exponent bits, LSB first, padded to cfg.Bits
	weight       int
	secsPerCycle float64

	// state machine
	iter        int     // current iteration (exponent bit index)
	cycleInIter int     // cycles consumed within the iteration
	activity    float64 // mean active elements over the last tick

	// real datapath (Verify mode)
	plain  *big.Int
	acc    *big.Int // running result
	square *big.Int // running base square chain
	last   *big.Int // result of the last completed exponentiation

	exponentiations uint64
}

// NewCircuit validates cfg and returns a circuit ready to deploy.
func NewCircuit(cfg CircuitConfig) (*Circuit, error) {
	if cfg.Exponent == nil || cfg.Exponent.Sign() < 1 {
		return nil, errors.New("rsa: exponent must be >= 1 (the circuit does not support 0)")
	}
	if cfg.Modulus == nil || cfg.Modulus.Cmp(big.NewInt(2)) <= 0 || cfg.Modulus.Bit(0) == 0 {
		return nil, errors.New("rsa: modulus must be odd and > 2")
	}
	if cfg.Rand == nil {
		return nil, errors.New("rsa: nil random stream")
	}
	if cfg.Bits == 0 {
		cfg.Bits = 1024
	}
	if cfg.Bits < cfg.Exponent.BitLen() {
		return nil, fmt.Errorf("rsa: exponent has %d bits, machine width is %d",
			cfg.Exponent.BitLen(), cfg.Bits)
	}
	if cfg.ClockHz == 0 {
		cfg.ClockHz = DefaultClockHz
	}
	if cfg.ClockHz <= 0 {
		return nil, errors.New("rsa: non-positive clock")
	}
	if cfg.CyclesPerIteration == 0 {
		cfg.CyclesPerIteration = DefaultCyclesPerIteration
	}
	if cfg.CyclesPerIteration < 1 {
		return nil, errors.New("rsa: non-positive iteration latency")
	}
	if cfg.SquareElements == 0 {
		cfg.SquareElements = DefaultSquareElements
	}
	if cfg.MultiplyElements == 0 {
		cfg.MultiplyElements = DefaultMultiplyElements
	}
	if cfg.ControlElements == 0 {
		cfg.ControlElements = DefaultControlElements
	}
	if cfg.SquareElements < 0 || cfg.MultiplyElements < 0 || cfg.ControlElements < 0 {
		return nil, errors.New("rsa: negative activity model")
	}

	c := &Circuit{cfg: cfg, secsPerCycle: 1 / cfg.ClockHz}
	c.bits = make([]bool, cfg.Bits)
	for i := 0; i < cfg.Bits; i++ {
		c.bits[i] = cfg.Exponent.Bit(i) == 1
	}
	c.weight = HammingWeight(cfg.Exponent)
	c.startExponentiation()
	return c, nil
}

// startExponentiation draws a fresh plaintext and resets the machine.
func (c *Circuit) startExponentiation() {
	c.iter = 0
	c.cycleInIter = 0
	if c.cfg.Verify {
		c.plain = new(big.Int).Rand(c.cfg.Rand, c.cfg.Modulus)
		if c.plain.Sign() == 0 {
			c.plain.SetInt64(1)
		}
		c.acc = big.NewInt(1)
		c.square = new(big.Int).Set(c.plain)
	} else {
		// Activity-only mode still consumes one rand draw per message so
		// traces line up bit-for-bit with Verify mode.
		_ = c.cfg.Rand.Int63()
	}
}

// finishIteration advances the datapath by one square-and-multiply (or
// ladder) step.
func (c *Circuit) finishIteration() {
	if c.cfg.Verify {
		if c.cfg.Ladder {
			c.ladderStep()
		} else {
			if c.bits[c.iter] {
				c.acc.Mul(c.acc, c.square)
				c.acc.Mod(c.acc, c.cfg.Modulus)
			}
			c.square.Mul(c.square, c.square)
			c.square.Mod(c.square, c.cfg.Modulus)
		}
	}
	c.iter++
	c.cycleInIter = 0
	if c.iter == c.cfg.Bits {
		if c.cfg.Verify {
			c.last = c.ladderResult() // accumulator (R0) in both modes
		}
		c.exponentiations++
		c.startExponentiation()
	}
}

// iterationElements returns the active element count while iteration i
// executes: control + square always, multiply only on a 1-bit — unless
// the Montgomery ladder is enabled, in which case both modules run on
// every iteration and the count is bit-independent.
func (c *Circuit) iterationElements(i int) float64 {
	e := c.cfg.ControlElements + c.cfg.SquareElements
	if c.cfg.Ladder || c.bits[i] {
		e += c.cfg.MultiplyElements
	}
	return e
}

// CircuitName implements fabric.Circuit.
func (c *Circuit) CircuitName() string { return "rsa1024" }

// Utilization implements fabric.Circuit: two 1024-bit multipliers and a
// control machine, sized to a realistic fraction of the ZU9EG.
func (c *Circuit) Utilization() fabric.Resources {
	return fabric.Resources{LUTs: 30000, FFs: 42000, DSPs: 256}
}

// Step implements fabric.Circuit: consume dt worth of 100 MHz cycles,
// walking the state machine through as many iterations as fit and
// averaging the active-element count over the tick.
func (c *Circuit) Step(now, dt time.Duration) {
	cycles := int(dt.Seconds() * c.cfg.ClockHz)
	if cycles <= 0 {
		cycles = 1
	}
	remaining := cycles
	var elementCycles float64
	for remaining > 0 {
		left := c.cfg.CyclesPerIteration - c.cycleInIter
		use := left
		if use > remaining {
			use = remaining
		}
		elementCycles += c.iterationElements(c.iter) * float64(use)
		c.cycleInIter += use
		remaining -= use
		if c.cycleInIter == c.cfg.CyclesPerIteration {
			c.finishIteration()
		}
	}
	c.activity = elementCycles / float64(cycles)
}

// ActiveElements implements fabric.Circuit.
func (c *Circuit) ActiveElements() float64 { return c.activity }

// Weight returns the secret exponent's Hamming weight (ground truth for
// the experiments; a real attacker does not have this).
func (c *Circuit) Weight() int { return c.weight }

// Exponentiations returns how many full exponentiations have completed.
func (c *Circuit) Exponentiations() uint64 { return c.exponentiations }

// LastResult returns the datapath result of the most recently completed
// exponentiation, or nil when none has completed or Verify is off.
func (c *Circuit) LastResult() *big.Int { return c.last }

// LastPlaintext returns the plaintext currently being encrypted (Verify
// mode only).
func (c *Circuit) LastPlaintext() *big.Int { return c.plain }

// ExpectedMeanElements returns the analytic mean active-element count
// over a full exponentiation: control + square + multiply·HW/bits. The
// tests use it to pin the activity model to the Hamming-weight leak.
func (c *Circuit) ExpectedMeanElements() float64 {
	return c.cfg.ControlElements + c.cfg.SquareElements +
		c.cfg.MultiplyElements*float64(c.weight)/float64(c.cfg.Bits)
}
