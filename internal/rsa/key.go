// Package rsa implements the RSA-1024 victim circuit of the paper's
// Sec. IV-C: a square-and-multiply modular exponentiation engine with
// two dedicated modular multiplication modules and a bit-serial state
// machine, clocked at 100 MHz, whose secret exponent is embedded in the
// (encrypted) bitstream.
//
// The power side channel arises from the classic control-flow leak: on
// every iteration the square module runs, and the multiply module runs
// only when the current exponent bit is 1. Average switching activity is
// therefore an affine function of the key's Hamming weight — the
// quantity AmpereBleed recovers from the FPGA current sensor.
package rsa

import (
	"errors"
	"fmt"
	"math/big"
	"math/rand"
)

// ExponentWithHammingWeight returns a bits-wide exponent with exactly hw
// one-bits, placed uniformly at random among the bit positions. hw must
// lie in [1, bits]; the paper's key set starts at HW=1 because the
// circuit does not support an exponent of 0.
func ExponentWithHammingWeight(bits, hw int, rng *rand.Rand) (*big.Int, error) {
	if bits <= 0 {
		return nil, errors.New("rsa: non-positive width")
	}
	if hw < 1 || hw > bits {
		return nil, fmt.Errorf("rsa: hamming weight %d outside [1,%d]", hw, bits)
	}
	if rng == nil {
		return nil, errors.New("rsa: nil random stream")
	}
	// Partial Fisher-Yates over bit positions: pick hw distinct slots.
	pos := make([]int, bits)
	for i := range pos {
		pos[i] = i
	}
	e := new(big.Int)
	for i := 0; i < hw; i++ {
		j := i + rng.Intn(bits-i)
		pos[i], pos[j] = pos[j], pos[i]
		e.SetBit(e, pos[i], 1)
	}
	return e, nil
}

// HammingWeight returns the number of one-bits in x (x >= 0).
func HammingWeight(x *big.Int) int {
	n := 0
	for _, w := range x.Bits() {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// PaperKeySet returns the 17 exponents of Fig. 4: Hamming weights
// 1, 64, 128, ..., 1024 over 1024 bits.
func PaperKeySet(rng *rand.Rand) ([]*big.Int, error) {
	if rng == nil {
		return nil, errors.New("rsa: nil random stream")
	}
	keys := make([]*big.Int, 0, 17)
	for _, hw := range PaperHammingWeights() {
		k, err := ExponentWithHammingWeight(1024, hw, rng)
		if err != nil {
			return nil, err
		}
		keys = append(keys, k)
	}
	return keys, nil
}

// PaperHammingWeights returns the 17 weights used in Fig. 4.
func PaperHammingWeights() []int {
	ws := make([]int, 0, 17)
	ws = append(ws, 1)
	for hw := 64; hw <= 1024; hw += 64 {
		ws = append(ws, hw)
	}
	return ws
}

// Modulus returns a bits-wide odd modulus with the top bit set, drawn
// from rng. The circuit's power behaviour depends only on the operand
// widths and the exponent's bit pattern, not on the modulus being a
// product of primes, so a pseudo-modulus keeps key setup fast; callers
// needing genuine RSA parameters can pass any odd modulus instead.
func Modulus(bits int, rng *rand.Rand) (*big.Int, error) {
	if bits < 2 {
		return nil, errors.New("rsa: modulus too narrow")
	}
	if rng == nil {
		return nil, errors.New("rsa: nil random stream")
	}
	n := new(big.Int)
	words := (bits + 31) / 32
	for i := 0; i < words; i++ {
		n.Lsh(n, 32)
		n.Or(n, big.NewInt(int64(rng.Uint32())))
	}
	// Trim to width, force top and bottom bits.
	n.SetBit(n, bits-1, 1)
	n.SetBit(n, 0, 1)
	mask := new(big.Int).Lsh(big.NewInt(1), uint(bits))
	mask.Sub(mask, big.NewInt(1))
	n.And(n, mask)
	return n, nil
}
