package rsa

import "math/big"

// Montgomery-ladder support: the classic constant-flow countermeasure
// to the square-and-multiply leak AmpereBleed exploits. Every iteration
// performs exactly one multiplication and one squaring regardless of
// the exponent bit, so the circuit's switching activity — and hence the
// current drawn — is independent of the key's Hamming weight.
//
// The ladder is enabled by CircuitConfig.Ladder. The experiments use it
// as the defense ablation: with the ladder in place the Fig. 4 attack
// collapses, with every key landing in a single indistinguishable group.

// ladderStep advances the verify-mode datapath by one ladder iteration.
// The ladder walks the exponent MSB-first over the fixed machine width;
// leading zero bits execute the same two multiplications as real bits,
// which is precisely what removes the amplitude leak.
func (c *Circuit) ladderStep() {
	bit := c.bits[c.cfg.Bits-1-c.iter]
	if bit {
		// R0 = R0*R1; R1 = R1^2
		c.acc.Mul(c.acc, c.square)
		c.acc.Mod(c.acc, c.cfg.Modulus)
		c.square.Mul(c.square, c.square)
		c.square.Mod(c.square, c.cfg.Modulus)
	} else {
		// R1 = R0*R1; R0 = R0^2
		c.square.Mul(c.square, c.acc)
		c.square.Mod(c.square, c.cfg.Modulus)
		c.acc.Mul(c.acc, c.acc)
		c.acc.Mod(c.acc, c.cfg.Modulus)
	}
}

// ladderResult returns the ladder's accumulator (R0) as the final
// result.
func (c *Circuit) ladderResult() *big.Int { return new(big.Int).Set(c.acc) }
