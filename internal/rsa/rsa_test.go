package rsa

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func rng() *rand.Rand { return rand.New(rand.NewSource(7)) }

func TestExponentWithHammingWeight(t *testing.T) {
	r := rng()
	for _, hw := range []int{1, 64, 512, 1024} {
		e, err := ExponentWithHammingWeight(1024, hw, r)
		if err != nil {
			t.Fatalf("hw %d: %v", hw, err)
		}
		if got := HammingWeight(e); got != hw {
			t.Fatalf("hw %d: got weight %d", hw, got)
		}
		if e.BitLen() > 1024 {
			t.Fatalf("hw %d: exponent too wide (%d bits)", hw, e.BitLen())
		}
	}
}

func TestExponentErrors(t *testing.T) {
	r := rng()
	if _, err := ExponentWithHammingWeight(0, 1, r); err == nil {
		t.Fatal("zero width accepted")
	}
	if _, err := ExponentWithHammingWeight(8, 0, r); err == nil {
		t.Fatal("weight 0 accepted (circuit does not support exponent 0)")
	}
	if _, err := ExponentWithHammingWeight(8, 9, r); err == nil {
		t.Fatal("overweight accepted")
	}
	if _, err := ExponentWithHammingWeight(8, 1, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestHammingWeight(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{{0, 0}, {1, 1}, {3, 2}, {255, 8}, {256, 1}}
	for _, c := range cases {
		if got := HammingWeight(big.NewInt(c.v)); got != c.want {
			t.Errorf("HW(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestPaperKeySet(t *testing.T) {
	keys, err := PaperKeySet(rng())
	if err != nil {
		t.Fatalf("PaperKeySet: %v", err)
	}
	if len(keys) != 17 {
		t.Fatalf("keys = %d, want 17", len(keys))
	}
	want := PaperHammingWeights()
	for i, k := range keys {
		if HammingWeight(k) != want[i] {
			t.Errorf("key %d weight = %d, want %d", i, HammingWeight(k), want[i])
		}
	}
	if want[0] != 1 || want[1] != 64 || want[16] != 1024 {
		t.Fatalf("weights = %v", want)
	}
}

func TestModulus(t *testing.T) {
	n, err := Modulus(1024, rng())
	if err != nil {
		t.Fatalf("Modulus: %v", err)
	}
	if n.BitLen() != 1024 {
		t.Fatalf("BitLen = %d", n.BitLen())
	}
	if n.Bit(0) != 1 {
		t.Fatal("modulus is even")
	}
	if _, err := Modulus(1, rng()); err == nil {
		t.Fatal("narrow modulus accepted")
	}
	if _, err := Modulus(64, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func newCircuit(t *testing.T, cfg CircuitConfig) *Circuit {
	t.Helper()
	c, err := NewCircuit(cfg)
	if err != nil {
		t.Fatalf("NewCircuit: %v", err)
	}
	return c
}

func smallCfg(t *testing.T, exp int64, verify bool) CircuitConfig {
	t.Helper()
	return CircuitConfig{
		Exponent:           big.NewInt(exp),
		Modulus:            big.NewInt(1000003), // odd
		Bits:               16,
		ClockHz:            1e6,
		CyclesPerIteration: 10,
		Rand:               rng(),
		Verify:             verify,
	}
}

func TestNewCircuitValidation(t *testing.T) {
	good := smallCfg(t, 5, false)
	cases := []func(CircuitConfig) CircuitConfig{
		func(c CircuitConfig) CircuitConfig { c.Exponent = nil; return c },
		func(c CircuitConfig) CircuitConfig { c.Exponent = big.NewInt(0); return c },
		func(c CircuitConfig) CircuitConfig { c.Modulus = big.NewInt(10); return c }, // even
		func(c CircuitConfig) CircuitConfig { c.Modulus = nil; return c },
		func(c CircuitConfig) CircuitConfig { c.Rand = nil; return c },
		func(c CircuitConfig) CircuitConfig { c.Bits = 2; return c }, // narrower than exponent
		func(c CircuitConfig) CircuitConfig { c.ClockHz = -1; return c },
		func(c CircuitConfig) CircuitConfig { c.CyclesPerIteration = -1; return c },
		func(c CircuitConfig) CircuitConfig { c.SquareElements = -1; return c },
	}
	for i, mutate := range cases {
		if _, err := NewCircuit(mutate(good)); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestDefaults(t *testing.T) {
	c := newCircuit(t, CircuitConfig{
		Exponent: big.NewInt(5), Modulus: big.NewInt(101), Rand: rng(),
	})
	if c.Weight() != 2 {
		t.Fatalf("Weight = %d", c.Weight())
	}
	want := DefaultControlElements + DefaultSquareElements +
		DefaultMultiplyElements*2.0/1024.0
	if math.Abs(c.ExpectedMeanElements()-want) > 1e-9 {
		t.Fatalf("ExpectedMeanElements = %v, want %v", c.ExpectedMeanElements(), want)
	}
}

// run advances the circuit by d at the given tick.
func run(c *Circuit, d, dt time.Duration) {
	for now := time.Duration(0); now < d; now += dt {
		c.Step(now, dt)
	}
}

func TestDatapathMatchesBigExp(t *testing.T) {
	// exponent 11 = 0b1011 over a 16-bit machine; Verify mode on.
	cfg := smallCfg(t, 11, true)
	c := newCircuit(t, cfg)
	// One exponentiation = 16 iterations * 10 cycles at 1 MHz = 160 us.
	run(c, 200*time.Microsecond, 10*time.Microsecond)
	if c.Exponentiations() == 0 {
		t.Fatal("no exponentiation completed")
	}
	res := c.LastResult()
	if res == nil {
		t.Fatal("no result recorded")
	}
	// Recompute: the plaintext consumed was the first Rand draw; re-derive
	// by replaying the machine with the same seed.
	c2 := newCircuit(t, smallCfg(t, 11, true))
	want := new(big.Int).Exp(c2.LastPlaintext(), big.NewInt(11), cfg.Modulus)
	if res.Cmp(want) != 0 {
		t.Fatalf("datapath = %v, big.Exp = %v", res, want)
	}
}

func TestActivityReflectsBitPattern(t *testing.T) {
	// Exponent with alternating bits: activity during a 1-bit iteration
	// exceeds activity during a 0-bit iteration.
	cfg := smallCfg(t, 0b0101, false)
	cfg.SquareElements = 100
	cfg.MultiplyElements = 50
	cfg.ControlElements = 10
	c := newCircuit(t, cfg)
	// Tick = exactly one iteration (10 cycles at 1 MHz = 10 us).
	c.Step(0, 10*time.Microsecond) // iteration 0: bit 1
	high := c.ActiveElements()
	c.Step(0, 10*time.Microsecond) // iteration 1: bit 0
	low := c.ActiveElements()
	if high != 160 || low != 110 {
		t.Fatalf("activity = %v/%v, want 160/110", high, low)
	}
}

func TestMeanActivityTracksHammingWeight(t *testing.T) {
	// Over whole exponentiations the mean activity must equal the
	// analytic value control+square+multiply*HW/bits.
	for _, exp := range []int64{1, 0xFF, 0xFFFF} {
		cfg := smallCfg(t, exp, false)
		c := newCircuit(t, cfg)
		var sum float64
		n := 0
		// 16 iterations per exponentiation; run exactly 32 iterations.
		for i := 0; i < 32; i++ {
			c.Step(0, 10*time.Microsecond)
			sum += c.ActiveElements()
			n++
		}
		got := sum / float64(n)
		want := c.ExpectedMeanElements()
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("exp %d: mean activity %v, want %v", exp, got, want)
		}
	}
}

func TestIterationCountIndependentOfKey(t *testing.T) {
	// Fixed-width machine: HW=1 and HW=16 keys take the same wall time
	// per exponentiation (the leak is amplitude, not duration).
	c1 := newCircuit(t, smallCfg(t, 1, false))
	c2 := newCircuit(t, smallCfg(t, 0xFFFF, false))
	run(c1, time.Millisecond, 10*time.Microsecond)
	run(c2, time.Millisecond, 10*time.Microsecond)
	if c1.Exponentiations() != c2.Exponentiations() {
		t.Fatalf("exponentiation counts differ: %d vs %d",
			c1.Exponentiations(), c2.Exponentiations())
	}
}

func TestStepSpanningManyIterations(t *testing.T) {
	// One big tick covering 3.5 iterations averages across them.
	cfg := smallCfg(t, 0b1111, false) // all ones in the low bits
	cfg.SquareElements = 100
	cfg.MultiplyElements = 50
	cfg.ControlElements = 10
	c := newCircuit(t, cfg)
	c.Step(0, 35*time.Microsecond) // 35 cycles = 3.5 iterations, all 1-bits
	if c.ActiveElements() != 160 {
		t.Fatalf("activity = %v, want 160", c.ActiveElements())
	}
}

func TestUtilizationFitsDevice(t *testing.T) {
	c := newCircuit(t, smallCfg(t, 5, false))
	u := c.Utilization()
	if u.LUTs == 0 || u.DSPs == 0 {
		t.Fatalf("Utilization = %+v", u)
	}
	if c.CircuitName() != "rsa1024" {
		t.Fatalf("CircuitName = %q", c.CircuitName())
	}
}

// Property: generated exponents always have the requested weight and fit
// the width.
func TestExponentProperty(t *testing.T) {
	r := rng()
	f := func(w uint16) bool {
		hw := int(w)%256 + 1
		e, err := ExponentWithHammingWeight(256, hw, r)
		if err != nil {
			return false
		}
		return HammingWeight(e) == hw && e.BitLen() <= 256
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: small-machine datapath equals big.Exp for random keys.
func TestDatapathProperty(t *testing.T) {
	f := func(seed int64, e uint8) bool {
		exp := int64(e)%255 + 1
		r := rand.New(rand.NewSource(seed))
		cfg := CircuitConfig{
			Exponent: big.NewInt(exp), Modulus: big.NewInt(99991),
			Bits: 8, ClockHz: 1e6, CyclesPerIteration: 2,
			Rand: r, Verify: true,
		}
		c, err := NewCircuit(cfg)
		if err != nil {
			return false
		}
		first := new(big.Int).Set(c.LastPlaintext())
		// 8 iterations * 2 cycles = 16 us at 1 MHz.
		run(c, 20*time.Microsecond, 2*time.Microsecond)
		if c.LastResult() == nil {
			return false
		}
		want := new(big.Int).Exp(first, big.NewInt(exp), big.NewInt(99991))
		return c.LastResult().Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
