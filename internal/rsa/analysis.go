package rsa

import (
	"errors"
	"math"
	"math/big"
	"math/rand"
)

// This file quantifies what the Fig. 4 leak is worth to an attacker and
// provides real RSA parameter generation for end-to-end demonstrations.
//
// Knowing a 1024-bit exponent's Hamming weight shrinks the brute-force
// search space from 2^1024 to C(1024, hw) candidates; the paper cites
// this reduction (and the follow-on statistical attacks of Sarkar &
// Maitra on low-weight exponents) as the attack's cryptographic impact.

// SearchSpaceBits returns log2 of the number of bits-wide exponents
// with the given Hamming weight: log2 C(bits, hw).
func SearchSpaceBits(bits, hw int) (float64, error) {
	if bits <= 0 || hw < 0 || hw > bits {
		return 0, errors.New("rsa: invalid (bits, hw)")
	}
	lg, _ := math.Lgamma(float64(bits + 1))
	lh, _ := math.Lgamma(float64(hw + 1))
	lr, _ := math.Lgamma(float64(bits - hw + 1))
	return (lg - lh - lr) / math.Ln2, nil
}

// SearchSpaceReduction returns how many bits of brute-force work the
// Hamming-weight leak removes for a bits-wide exponent: bits minus
// log2 C(bits, hw).
func SearchSpaceReduction(bits, hw int) (float64, error) {
	space, err := SearchSpaceBits(bits, hw)
	if err != nil {
		return 0, err
	}
	return float64(bits) - space, nil
}

// KeyPair is a textbook RSA key with real prime factors.
type KeyPair struct {
	// N is the public modulus p·q.
	N *big.Int
	// E is the public exponent.
	E *big.Int
	// D is the private exponent, E⁻¹ mod λ(N).
	D *big.Int
	// P, Q are the prime factors.
	P, Q *big.Int
}

// GenerateKeyPair produces a real (textbook) RSA key pair with a
// modulus of the given bit width, using math/big primality generation
// seeded from rng. Intended for end-to-end demonstrations where the
// victim circuit should perform genuine RSA; the power model does not
// require it.
func GenerateKeyPair(bits int, rng *rand.Rand) (*KeyPair, error) {
	if bits < 32 || bits%2 != 0 {
		return nil, errors.New("rsa: modulus width must be even and >= 32")
	}
	if rng == nil {
		return nil, errors.New("rsa: nil random stream")
	}
	e := big.NewInt(65537)
	one := big.NewInt(1)
	for attempt := 0; attempt < 200; attempt++ {
		p, err := randomPrime(bits/2, rng)
		if err != nil {
			return nil, err
		}
		q, err := randomPrime(bits/2, rng)
		if err != nil {
			return nil, err
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		if n.BitLen() != bits {
			continue
		}
		pm1 := new(big.Int).Sub(p, one)
		qm1 := new(big.Int).Sub(q, one)
		phi := new(big.Int).Mul(pm1, qm1)
		d := new(big.Int)
		if d.ModInverse(e, phi) == nil {
			continue // gcd(e, phi) != 1
		}
		return &KeyPair{N: n, E: new(big.Int).Set(e), D: d, P: p, Q: q}, nil
	}
	return nil, errors.New("rsa: key generation did not converge")
}

// randomPrime draws a probable prime of exactly the given width.
func randomPrime(bits int, rng *rand.Rand) (*big.Int, error) {
	if bits < 16 {
		return nil, errors.New("rsa: prime too narrow")
	}
	limit := new(big.Int).Lsh(big.NewInt(1), uint(bits))
	for i := 0; i < 100000; i++ {
		c := new(big.Int).Rand(rng, limit)
		c.SetBit(c, bits-1, 1) // full width
		c.SetBit(c, 0, 1)      // odd
		if c.ProbablyPrime(32) {
			return c, nil
		}
	}
	return nil, errors.New("rsa: prime search exhausted")
}
