package rsa

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestSearchSpaceBitsKnownValues(t *testing.T) {
	// C(4,2)=6 -> log2 6 = 2.585.
	got, err := SearchSpaceBits(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-math.Log2(6)) > 1e-9 {
		t.Fatalf("SearchSpaceBits(4,2) = %v", got)
	}
	// HW 1 of 1024: exactly 1024 candidates -> 10 bits.
	got, _ = SearchSpaceBits(1024, 1)
	if math.Abs(got-10) > 1e-9 {
		t.Fatalf("SearchSpaceBits(1024,1) = %v, want 10", got)
	}
	// HW 0: a single candidate.
	got, _ = SearchSpaceBits(1024, 0)
	if got != 0 {
		t.Fatalf("SearchSpaceBits(1024,0) = %v", got)
	}
}

func TestSearchSpaceReduction(t *testing.T) {
	// HW 512 is the max-entropy case: C(1024,512) ~ 2^1018.3, so the
	// leak still strips ~5.7 bits.
	red, err := SearchSpaceReduction(1024, 512)
	if err != nil {
		t.Fatal(err)
	}
	if red < 5 || red > 7 {
		t.Fatalf("reduction at HW 512 = %v bits, want ~5.7", red)
	}
	// HW 64: enormous reduction.
	red, _ = SearchSpaceReduction(1024, 64)
	if red < 600 {
		t.Fatalf("reduction at HW 64 = %v bits, want > 600", red)
	}
	if _, err := SearchSpaceBits(0, 0); err == nil {
		t.Fatal("invalid width accepted")
	}
	if _, err := SearchSpaceReduction(8, 9); err == nil {
		t.Fatal("hw > bits accepted")
	}
}

// Property: reduction is minimal at hw = bits/2 and symmetric.
func TestSearchSpaceSymmetryProperty(t *testing.T) {
	f := func(w uint8) bool {
		hw := int(w) % 257
		a, err1 := SearchSpaceBits(256, hw)
		b, err2 := SearchSpaceBits(256, 256-hw)
		if err1 != nil || err2 != nil {
			return false
		}
		mid, _ := SearchSpaceBits(256, 128)
		return math.Abs(a-b) < 1e-6 && a <= mid+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateKeyPair(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	kp, err := GenerateKeyPair(256, rng) // small for test speed
	if err != nil {
		t.Fatalf("GenerateKeyPair: %v", err)
	}
	if kp.N.BitLen() != 256 {
		t.Fatalf("modulus width = %d", kp.N.BitLen())
	}
	if !kp.P.ProbablyPrime(16) || !kp.Q.ProbablyPrime(16) {
		t.Fatal("factors not prime")
	}
	if new(big.Int).Mul(kp.P, kp.Q).Cmp(kp.N) != 0 {
		t.Fatal("N != P*Q")
	}
	// Encrypt/decrypt round trip.
	msg := big.NewInt(0xDEADBEEF)
	ct := new(big.Int).Exp(msg, kp.E, kp.N)
	pt := new(big.Int).Exp(ct, kp.D, kp.N)
	if pt.Cmp(msg) != 0 {
		t.Fatal("decrypt(encrypt(m)) != m")
	}
}

func TestGenerateKeyPairValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := GenerateKeyPair(16, rng); err == nil {
		t.Fatal("narrow modulus accepted")
	}
	if _, err := GenerateKeyPair(33, rng); err == nil {
		t.Fatal("odd width accepted")
	}
	if _, err := GenerateKeyPair(256, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestRealKeyDrivesCircuit(t *testing.T) {
	// End to end: a genuine RSA private key in the victim circuit, with
	// the verified datapath decrypting a ciphertext correctly.
	rng := rand.New(rand.NewSource(77))
	kp, err := GenerateKeyPair(128, rng)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCircuit(CircuitConfig{
		Exponent:           kp.D,
		Modulus:            kp.N,
		Bits:               128,
		ClockHz:            1e6,
		CyclesPerIteration: 2,
		Rand:               rng,
		Verify:             true,
	})
	if err != nil {
		t.Fatalf("NewCircuit: %v", err)
	}
	plaintextIn := new(big.Int).Set(c.LastPlaintext())
	// 128 iterations * 2 cycles at 1 MHz = 256 us.
	for now := time.Duration(0); now < 300*time.Microsecond; now += 2 * time.Microsecond {
		c.Step(now, 2*time.Microsecond)
	}
	res := c.LastResult()
	if res == nil {
		t.Fatal("no result")
	}
	// The circuit computed plaintextIn^D mod N; E-exponentiation undoes it.
	back := new(big.Int).Exp(res, kp.E, kp.N)
	if back.Cmp(plaintextIn) != 0 {
		t.Fatal("circuit's RSA signature does not verify under the public key")
	}
}
