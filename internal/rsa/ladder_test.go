package rsa

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func ladderCfg(exp int64, verify bool) CircuitConfig {
	return CircuitConfig{
		Exponent:           big.NewInt(exp),
		Modulus:            big.NewInt(1000003),
		Bits:               16,
		ClockHz:            1e6,
		CyclesPerIteration: 10,
		Rand:               rand.New(rand.NewSource(7)),
		Verify:             verify,
		Ladder:             true,
	}
}

func TestLadderDatapathMatchesBigExp(t *testing.T) {
	for _, exp := range []int64{1, 11, 255, 0xABCD} {
		cfg := ladderCfg(exp, true)
		c, err := NewCircuit(cfg)
		if err != nil {
			t.Fatalf("NewCircuit: %v", err)
		}
		first := new(big.Int).Set(c.LastPlaintext())
		// 16 iterations * 10 cycles at 1 MHz = 160 us.
		for now := time.Duration(0); now < 200*time.Microsecond; now += 10 * time.Microsecond {
			c.Step(now, 10*time.Microsecond)
		}
		if c.LastResult() == nil {
			t.Fatalf("exp %d: no result", exp)
		}
		want := new(big.Int).Exp(first, big.NewInt(exp), cfg.Modulus)
		if c.LastResult().Cmp(want) != 0 {
			t.Fatalf("exp %d: ladder = %v, big.Exp = %v", exp, c.LastResult(), want)
		}
	}
}

func TestLadderActivityIsBitIndependent(t *testing.T) {
	// HW 1 and HW 16 keys must produce identical per-iteration activity.
	light, err := NewCircuit(ladderCfg(1, false))
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := NewCircuit(ladderCfg(0xFFFF, false))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		light.Step(0, 10*time.Microsecond)
		heavy.Step(0, 10*time.Microsecond)
		if light.ActiveElements() != heavy.ActiveElements() {
			t.Fatalf("iteration %d: activity differs: %v vs %v",
				i, light.ActiveElements(), heavy.ActiveElements())
		}
	}
}

func TestLadderActivityConstantWithinExponentiation(t *testing.T) {
	c, err := NewCircuit(ladderCfg(0b0101, false))
	if err != nil {
		t.Fatal(err)
	}
	c.Step(0, 10*time.Microsecond)
	first := c.ActiveElements()
	for i := 0; i < 20; i++ {
		c.Step(0, 10*time.Microsecond)
		if c.ActiveElements() != first {
			t.Fatalf("ladder activity varied: %v -> %v", first, c.ActiveElements())
		}
	}
	want := DefaultControlElements + DefaultSquareElements + DefaultMultiplyElements
	// ladderCfg leaves the element defaults in place.
	if first != float64(want) {
		t.Fatalf("ladder activity = %v, want %d", first, want)
	}
}

// Property: ladder and square-and-multiply datapaths compute identical
// results for random small keys.
func TestLadderEquivalenceProperty(t *testing.T) {
	f := func(seed int64, e uint8) bool {
		exp := int64(e)%255 + 1
		mk := func(ladder bool) *Circuit {
			c, err := NewCircuit(CircuitConfig{
				Exponent: big.NewInt(exp), Modulus: big.NewInt(99991),
				Bits: 8, ClockHz: 1e6, CyclesPerIteration: 2,
				Rand:   rand.New(rand.NewSource(seed)),
				Verify: true, Ladder: ladder,
			})
			if err != nil {
				t.Fatal(err)
			}
			for now := time.Duration(0); now < 20*time.Microsecond; now += 2 * time.Microsecond {
				c.Step(now, 2*time.Microsecond)
			}
			return c
		}
		a, b := mk(true), mk(false)
		if a.LastResult() == nil || b.LastResult() == nil {
			return false
		}
		return a.LastResult().Cmp(b.LastResult()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
