package report

import (
	"fmt"
	"io"

	"repro/internal/obs/ledger"
)

// RenderRuns writes the run-ledger listing: one row per manifest with
// the run's identity and its headline channel-quality figures.
func RenderRuns(w io.Writer, ms []ledger.Manifest) error {
	if len(ms) == 0 {
		_, err := fmt.Fprintln(w, "no runs recorded")
		return err
	}
	t := &Table{Headers: []string{"#", "started", "tool", "command", "board",
		"seed", "faults", "workers", "wall", "sim", "snr", "ber", "top1"}}
	for i, m := range ms {
		faultsCol := m.FaultProfile
		if faultsCol == "" {
			faultsCol = "-"
		} else if m.FaultIntensity != 0 && m.FaultIntensity != 1 {
			faultsCol = fmt.Sprintf("%s x%.2g", m.FaultProfile, m.FaultIntensity)
		}
		t.AddRow(
			fmt.Sprintf("%d", i),
			m.StartedAt.Format("2006-01-02 15:04:05"),
			m.Tool,
			m.Command,
			m.Board,
			fmt.Sprintf("%d", m.Seed),
			faultsCol,
			fmt.Sprintf("%d", m.Workers),
			fmt.Sprintf("%.1fs", m.WallSeconds),
			fmt.Sprintf("%.1fs", m.SimSeconds),
			fmtFigure(m.Figures.LeakageSNR),
			fmtFigure(m.Figures.CovertBER),
			fmtFigure(m.Figures.FingerprintTop1),
		)
	}
	return t.Render(w)
}

// fmtFigure renders an optional quality figure, blanking zeroes (the
// experiment did not produce that figure).
func fmtFigure(v float64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%.4g", v)
}

// RenderRunDiff writes the canonical diff between two manifests: what
// changed in the run's content, with scheduling and wall-clock noise
// already stripped by the ledger's canonicalization.
func RenderRunDiff(w io.Writer, a, b ledger.Manifest) error {
	changes := ledger.Diff(a, b)
	if len(changes) == 0 {
		_, err := fmt.Fprintln(w, "runs are canonically identical (only scheduling/wall-clock fields differ)")
		return err
	}
	t := &Table{
		Title:   fmt.Sprintf("%d field(s) differ:", len(changes)),
		Headers: []string{"field", "a", "b"},
	}
	for _, c := range changes {
		t.AddRow(c.Field, c.A, c.B)
	}
	return t.Render(w)
}
