package report

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/board"
	"repro/internal/core"
)

// RenderTableI writes the Table I reproduction: the board survey.
func RenderTableI(w io.Writer, specs []board.Spec) error {
	tab := &Table{
		Title:   "Table I: INA226 sensors on ARM-FPGA SoC boards",
		Headers: []string{"Board", "Family", "FPGA Voltage (V)", "CPU", "DRAM (GB)", "INA Sensors", "Price ($)"},
	}
	for _, s := range specs {
		tab.AddRow(s.Name, s.Family,
			fmt.Sprintf("%.3f-%.3f", s.VoltageBand.Min, s.VoltageBand.Max),
			s.CPUModel, fmt.Sprintf("%d", s.DRAMGB),
			fmt.Sprintf("%d", s.INASensors), fmt.Sprintf("%d", s.PriceUSD))
	}
	return tab.Render(w)
}

// RenderTableII writes the Table II reproduction: the sensitive ZCU102
// sensors.
func RenderTableII(w io.Writer, rows []board.SensitiveSensor) error {
	tab := &Table{
		Title:   "Table II: sensitive unprivileged hwmon sensors on the ZCU102",
		Headers: []string{"Sensor", "Description"},
	}
	for _, r := range rows {
		tab.AddRow(r.Label, r.Monitors)
	}
	return tab.Render(w)
}

// RenderFig2 writes the Fig. 2 reproduction: per-channel fits and the
// overlaid response curves.
func RenderFig2(w io.Writer, res *core.CharacterizeResult) error {
	tab := &Table{
		Title:   "Fig. 2: channel response to active power-virus instances",
		Headers: []string{"Channel", "Pearson r", "LSB/level", "Rel. variation"},
	}
	rows := []struct {
		name string
		fit  core.ChannelFit
		lsb  bool
	}{
		{"FPGA current (hwmon)", res.Current, true},
		{"FPGA voltage (hwmon)", res.Voltage, true},
		{"FPGA power (hwmon)", res.Power, true},
		{"RO counts (crafted circuit)", res.RO, false},
	}
	for _, r := range rows {
		lsb := "-"
		if r.lsb {
			lsb = fmt.Sprintf("%.2f", r.fit.LSBPerLevel)
		}
		tab.AddRow(r.name, fmt.Sprintf("%+.4f", r.fit.Pearson), lsb,
			fmt.Sprintf("%.5f", r.fit.RelativeVariation))
	}
	if err := tab.Render(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "current variation / RO variation = %.0fx (paper: 261x)\n",
		res.VariationRatio); err != nil {
		return err
	}
	series := []Series{
		{Name: "current"}, {Name: "voltage"}, {Name: "power"}, {Name: "RO"},
	}
	for _, r := range res.Readings {
		series[0].Values = append(series[0].Values, r.CurrentAmps)
		series[1].Values = append(series[1].Values, r.BusVolts)
		series[2].Values = append(series[2].Values, r.PowerWatts)
		series[3].Values = append(series[3].Values, r.ROCount)
	}
	return Plot(w, "Fig. 2 series (x: activation level)", 72, 12, series...)
}

// RenderFig3 writes the Fig. 3 reproduction: per-model current traces
// for the given channels.
func RenderFig3(w io.Writer, captures []*core.Capture, channels []core.Channel) error {
	for _, c := range captures {
		series := make([]Series, 0, len(channels))
		for _, ch := range channels {
			tr, ok := c.Traces[ch]
			if !ok {
				return fmt.Errorf("report: capture %s lacks channel %v", c.Model, ch)
			}
			series = append(series, Series{Name: ch.String(), Values: tr.Samples})
		}
		title := fmt.Sprintf("Fig. 3: current traces during %s inference (%s)",
			c.Model, c.Traces[channels[0]].Duration().Round(time.Millisecond))
		if err := Plot(w, title, 72, 8, series...); err != nil {
			return err
		}
	}
	return nil
}

// RenderTableIII writes the Table III reproduction: the accuracy grid.
func RenderTableIII(w io.Writer, res *core.FingerprintResult,
	channels []core.Channel, durations []time.Duration) error {
	headers := []string{"Channel"}
	for _, d := range durations {
		headers = append(headers, d.String())
	}
	tab := &Table{
		Title: fmt.Sprintf("Table III: fingerprinting accuracy over %d models (chance %.4f)",
			res.Classes, 1/math.Max(1, float64(res.Classes))),
		Headers: headers,
	}
	for _, ch := range channels {
		top1 := []string{ch.String() + " top-1"}
		top5 := []string{ch.String() + " top-5"}
		for _, d := range durations {
			if cell, err := res.Cell(ch, d); err == nil {
				top1 = append(top1, fmt.Sprintf("%.3f", cell.Top1))
				top5 = append(top5, fmt.Sprintf("%.3f", cell.Top5))
			} else {
				top1 = append(top1, "-")
				top5 = append(top5, "-")
			}
		}
		tab.AddRow(top1...)
		tab.AddRow(top5...)
	}
	return tab.Render(w)
}

// RenderApplicability writes the cross-board experiment table.
func RenderApplicability(w io.Writer, rows []core.BoardApplicability) error {
	tab := &Table{
		Title:   "Applicability: unprivileged current channel on every Table I board",
		Headers: []string{"Board", "Family", "Sensors found", "Current Pearson r", "Voltage stayed in band"},
	}
	for _, r := range rows {
		tab.AddRow(r.Board, r.Family, fmt.Sprintf("%d", r.Sensors),
			fmt.Sprintf("%+.4f", r.CurrentPearson), fmt.Sprintf("%v", r.VoltageInBand))
	}
	return tab.Render(w)
}

// RenderFig4 writes the Fig. 4 reproduction: the per-weight box plots
// for current and power, plus the group counts.
func RenderFig4(w io.Writer, res *core.RSAResult) error {
	boxes := make([]Box, 0, len(res.Keys))
	for _, k := range res.Keys {
		boxes = append(boxes, Box{
			Label: fmt.Sprintf("HW %4d", k.Weight),
			Min:   k.Current.Min, Q1: k.Current.Q1, Median: k.Current.Median,
			Q3: k.Current.Q3, Max: k.Current.Max,
		})
	}
	if err := BoxPlot(w, "Fig. 4a: FPGA current (A) vs key Hamming weight", 64, boxes); err != nil {
		return err
	}
	boxes = boxes[:0]
	for _, k := range res.Keys {
		boxes = append(boxes, Box{
			Label: fmt.Sprintf("HW %4d", k.Weight),
			Min:   k.Power.Min, Q1: k.Power.Q1, Median: k.Power.Median,
			Q3: k.Power.Q3, Max: k.Power.Max,
		})
	}
	if err := BoxPlot(w, "Fig. 4b: FPGA power (W) vs key Hamming weight", 64, boxes); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "distinguishable groups: current=%d/%d (paper 17/17), power=%d (paper ~5)\n",
		res.CurrentGroups, len(res.Keys), res.PowerGroups); err != nil {
		return err
	}
	// What the leak is worth: brute-force bits removed per recovered
	// weight (the paper's "greatly reduce the search space" claim).
	if len(res.Keys) > 0 {
		first := res.Keys[0]
		mid := res.Keys[len(res.Keys)/2]
		_, err := fmt.Fprintf(w,
			"search-space reduction: HW %d saves %.0f bits of brute force; even max-entropy HW %d saves %.1f bits\n",
			first.Weight, first.SearchSpaceReductionBits,
			mid.Weight, mid.SearchSpaceReductionBits)
		return err
	}
	return nil
}
