package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:   "Table X",
		Headers: []string{"Sensor", "Top-1"},
	}
	tab.AddRow("Current (FPGA)", "0.997")
	tab.AddRow("Voltage (FPGA)", "0.116")
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"Table X", "Sensor", "0.997", "0.116", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title + header + rule + 2 rows.
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// All table lines equally wide (alignment).
	w := len(lines[1])
	for _, l := range lines[1:] {
		if len(l) != w {
			t.Fatalf("ragged table:\n%s", out)
		}
	}
}

func TestTableErrors(t *testing.T) {
	var sb strings.Builder
	if err := (&Table{}).Render(&sb); err == nil {
		t.Fatal("headerless table accepted")
	}
	tab := &Table{Headers: []string{"a", "b"}}
	tab.AddRow("only-one")
	if err := tab.Render(&sb); err == nil {
		t.Fatal("ragged row accepted")
	}
}

func TestPlot(t *testing.T) {
	var sb strings.Builder
	err := Plot(&sb, "fig", 20, 5,
		Series{Name: "up", Values: []float64{0, 1, 2, 3}},
		Series{Name: "down", Values: []float64{3, 2, 1, 0}},
	)
	if err != nil {
		t.Fatalf("Plot: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "fig") || !strings.Contains(out, "legend") {
		t.Fatalf("missing title/legend:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatalf("missing series glyphs:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 7 { // title + 5 rows + legend
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Rising series: glyph in bottom-left and top-right corners region.
	if rows := lines[1:6]; rows[4][1] != '*' && rows[4][2] != '*' {
		t.Errorf("rising series not at bottom-left:\n%s", out)
	}
}

func TestPlotErrors(t *testing.T) {
	var sb strings.Builder
	if err := Plot(&sb, "", 4, 1); err == nil {
		t.Fatal("tiny canvas accepted")
	}
	if err := Plot(&sb, "", 20, 5); err == nil {
		t.Fatal("no series accepted")
	}
	if err := Plot(&sb, "", 20, 5, Series{Name: "e"}); err == nil {
		t.Fatal("empty series accepted")
	}
}

func TestPlotConstantSeries(t *testing.T) {
	var sb strings.Builder
	if err := Plot(&sb, "", 12, 3, Series{Name: "c", Values: []float64{5, 5, 5}}); err != nil {
		t.Fatalf("constant series: %v", err)
	}
}

func TestBoxPlot(t *testing.T) {
	var sb strings.Builder
	err := BoxPlot(&sb, "Fig. 4", 40, []Box{
		{Label: "HW 1", Min: 1.0, Q1: 1.01, Median: 1.02, Q3: 1.03, Max: 1.04},
		{Label: "HW 1024", Min: 1.5, Q1: 1.51, Median: 1.52, Q3: 1.53, Max: 1.54},
	})
	if err != nil {
		t.Fatalf("BoxPlot: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"Fig. 4", "HW 1", "HW 1024", "=", "|", "scale"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestBoxPlotErrors(t *testing.T) {
	var sb strings.Builder
	if err := BoxPlot(&sb, "", 8, []Box{{Label: "a"}}); err == nil {
		t.Fatal("narrow canvas accepted")
	}
	if err := BoxPlot(&sb, "", 40, nil); err == nil {
		t.Fatal("no boxes accepted")
	}
	if err := BoxPlot(&sb, "", 40, []Box{{Label: "bad", Min: 2, Q1: 1, Median: 1, Q3: 1, Max: 1}}); err == nil {
		t.Fatal("unordered box accepted")
	}
}
