package report

import (
	"strings"
	"testing"
	"time"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/trace"
)

func TestRenderTableI(t *testing.T) {
	var sb strings.Builder
	if err := RenderTableI(&sb, board.Catalog()); err != nil {
		t.Fatalf("RenderTableI: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"ZCU102", "VPK180", "0.825-0.876", "0.775-0.825", "Cortex-A72"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestRenderTableII(t *testing.T) {
	var sb strings.Builder
	if err := RenderTableII(&sb, board.SensitiveSensors()); err != nil {
		t.Fatalf("RenderTableII: %v", err)
	}
	for _, want := range []string{"ina226_u76", "ina226_u93", "DDR memory"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestRenderFig2(t *testing.T) {
	res := &core.CharacterizeResult{
		Readings: []core.LevelReading{
			{ActiveGroups: 0, CurrentAmps: 0.55, BusVolts: 0.85, PowerWatts: 0.47, ROCount: 100},
			{ActiveGroups: 1, CurrentAmps: 0.59, BusVolts: 0.85, PowerWatts: 0.50, ROCount: 99},
		},
		Current:        core.ChannelFit{Pearson: 0.999, LSBPerLevel: 40, RelativeVariation: 1.7},
		Voltage:        core.ChannelFit{Pearson: -0.958, LSBPerLevel: -0.03, RelativeVariation: 0.006},
		Power:          core.ChannelFit{Pearson: 0.999, LSBPerLevel: 1.3, RelativeVariation: 1.7},
		RO:             core.ChannelFit{Pearson: -0.996, RelativeVariation: 0.0065},
		VariationRatio: 261,
	}
	var sb strings.Builder
	if err := RenderFig2(&sb, res); err != nil {
		t.Fatalf("RenderFig2: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"261x", "FPGA current", "RO counts", "legend"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestRenderFig3(t *testing.T) {
	ch := core.Channel{Label: board.SensorFPGA, Kind: core.Current}
	capture := &core.Capture{
		Model: "ResNet-50",
		Traces: map[core.Channel]*trace.Trace{
			ch: {Interval: 35 * time.Millisecond, Samples: []float64{1, 2, 1, 2}},
		},
	}
	var sb strings.Builder
	if err := RenderFig3(&sb, []*core.Capture{capture}, []core.Channel{ch}); err != nil {
		t.Fatalf("RenderFig3: %v", err)
	}
	if !strings.Contains(sb.String(), "ResNet-50") {
		t.Error("missing model name")
	}
	// A channel the capture lacks must error, not panic.
	missing := core.Channel{Label: "ina226_u93", Kind: core.Current}
	if err := RenderFig3(&sb, []*core.Capture{capture}, []core.Channel{missing}); err == nil {
		t.Error("missing channel accepted")
	}
}

func TestRenderTableIII(t *testing.T) {
	ch := core.Channel{Label: board.SensorFPGA, Kind: core.Current}
	res := &core.FingerprintResult{
		Classes: 39,
		Cells: []core.AccuracyCell{
			{Channel: ch, Duration: time.Second, Top1: 0.941, Top5: 1.0},
		},
	}
	var sb strings.Builder
	err := RenderTableIII(&sb, res, []core.Channel{ch}, []time.Duration{time.Second, 2 * time.Second})
	if err != nil {
		t.Fatalf("RenderTableIII: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "0.941") {
		t.Error("missing accuracy cell")
	}
	if !strings.Contains(out, "-") {
		t.Error("missing placeholder for absent cell")
	}
	if !strings.Contains(out, "0.0256") {
		t.Error("missing chance baseline")
	}
}

func TestRenderFig4(t *testing.T) {
	res := &core.RSAResult{
		Keys: []core.KeyObservation{
			{Weight: 1, Current: stats.FiveNum{Min: 1, Q1: 1, Median: 1.01, Q3: 1.02, Max: 1.03},
				Power:                    stats.FiveNum{Min: 0.87, Q1: 0.87, Median: 0.87, Q3: 0.88, Max: 0.88},
				SearchSpaceReductionBits: 1014},
			{Weight: 1024, Current: stats.FiveNum{Min: 1.2, Q1: 1.21, Median: 1.22, Q3: 1.23, Max: 1.24},
				Power:                    stats.FiveNum{Min: 1.0, Q1: 1.0, Median: 1.01, Q3: 1.02, Max: 1.02},
				SearchSpaceReductionBits: 1024},
		},
		CurrentGroups:  2,
		PowerGroups:    1,
		CurrentPearson: 1,
	}
	var sb strings.Builder
	if err := RenderFig4(&sb, res); err != nil {
		t.Fatalf("RenderFig4: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"HW    1", "HW 1024", "current=2/2", "power=1", "search-space"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderApplicability(t *testing.T) {
	rows := []core.BoardApplicability{
		{Board: "ZCU102", Family: "Zynq UltraScale+", Sensors: 18, CurrentPearson: 1, VoltageInBand: true},
	}
	var sb strings.Builder
	if err := RenderApplicability(&sb, rows); err != nil {
		t.Fatalf("RenderApplicability: %v", err)
	}
	if !strings.Contains(sb.String(), "ZCU102") {
		t.Error("missing board row")
	}
}
