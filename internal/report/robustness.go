package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
)

// RenderRobustness writes the accuracy-vs-fault-rate curve: one row per
// intensity with the three headline metrics and the absorbed fault and
// retry counts, so degradation can be read against the injected load.
func RenderRobustness(w io.Writer, res *core.RobustnessResult) error {
	tab := &Table{
		Title: fmt.Sprintf("Robustness under the %q fault profile (accuracy vs fault rate)",
			res.Profile),
		Headers: []string{"Intensity", "Applic. Pearson", "Fingerprint Top-1",
			"Covert BER", "Faults injected", "Retries", "Gaps"},
	}
	for _, p := range res.Points {
		var total int64
		kinds := make([]string, 0, len(p.InjectedFaults))
		for k, v := range p.InjectedFaults {
			total += v
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		detail := "-"
		if len(kinds) > 0 {
			parts := make([]string, len(kinds))
			for i, k := range kinds {
				parts[i] = fmt.Sprintf("%s:%d", k, p.InjectedFaults[k])
			}
			detail = fmt.Sprintf("%d (%s)", total, strings.Join(parts, " "))
		}
		tab.AddRow(
			fmt.Sprintf("%.2f", p.Intensity),
			fmt.Sprintf("%.3f", p.ApplicabilityPearson),
			fmt.Sprintf("%.3f", p.FingerprintTop1),
			fmt.Sprintf("%.3f", p.CovertBER),
			detail,
			fmt.Sprintf("%d", p.Retries),
			fmt.Sprintf("%d", p.Gaps),
		)
	}
	if err := tab.Render(w); err != nil {
		return err
	}
	if res.Classes > 1 {
		fmt.Fprintf(w, "random-guess baseline: %.4f (%d classes)\n",
			1/float64(res.Classes), res.Classes)
	}
	return nil
}
