package report

// Golden-output tests for the ledger, perf, and robustness render
// paths. The goldens live under testdata/ and are regenerated with
//
//	go test ./internal/report -run TestRender -update
//
// so a deliberate format change is a one-flag refresh while an
// accidental one (a dropped column, a broken empty-ledger branch) is a
// visible diff.

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/ledger"
	"repro/internal/perf"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update to create): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s output changed:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// manifestFixture builds a deterministic manifest without touching the
// global registry (StartedAt must be fixed: it is rendered).
func manifestFixture(cmd string, seed int64, workers int, faults string, intensity float64) ledger.Manifest {
	return ledger.Manifest{
		SchemaVersion:  ledger.SchemaVersion,
		Tool:           "amperebleed",
		Command:        cmd,
		Board:          "zcu102",
		Seed:           seed,
		FaultProfile:   faults,
		FaultIntensity: intensity,
		Workers:        workers,
		GoVersion:      "go1.22.0",
		StartedAt:      time.Date(2026, 8, 1, 12, 30, 0, 0, time.UTC),
		WallSeconds:    3.25,
		SimSeconds:     12.5,
		Figures: ledger.Figures{
			SampleRate:       obs.HistogramStat{Count: 480, Mean: 28.4, Min: 25.0, Max: 29.9, P50: 28.5, P95: 29.5, P99: 29.8},
			LeakageSNR:       14.25,
			LeakageT:         61.7,
			CovertBER:        0.0125,
			CovertBitsPerSec: 250,
			FingerprintTop1:  0.8919,
			FingerprintTop5:  0.9813,
			Counters:         map[string]int64{"sim.ticks": 25000, "sensor.samples": 480},
		},
	}
}

func TestRenderRunsEmptyLedger(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderRuns(&buf, nil); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "runs_empty.golden", buf.Bytes())
}

func TestRenderRunsSingleRun(t *testing.T) {
	var buf bytes.Buffer
	m := manifestFixture("characterize", 7, 4, "flaky-sysfs", 1)
	if err := RenderRuns(&buf, []ledger.Manifest{m}); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "runs_single.golden", buf.Bytes())
}

func TestRenderRunsMultipleRuns(t *testing.T) {
	var buf bytes.Buffer
	a := manifestFixture("characterize", 7, 4, "flaky-sysfs", 1)
	b := manifestFixture("covert", 9, 0, "", 0)
	b.StartedAt = b.StartedAt.Add(time.Hour)
	// Scaled fault profile: the faults column must show the factor.
	c := manifestFixture("robustness", 7, 8, "hostile", 0.5)
	// A run with no figures: every quality column must blank to "-".
	d := manifestFixture("sensors", 1, 0, "", 0)
	d.Figures = ledger.Figures{Counters: map[string]int64{"sim.ticks": 200}}
	if err := RenderRuns(&buf, []ledger.Manifest{a, b, c, d}); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "runs_multi.golden", buf.Bytes())
}

func TestRenderRunDiffIdentical(t *testing.T) {
	var buf bytes.Buffer
	a := manifestFixture("characterize", 7, 4, "flaky-sysfs", 1)
	b := a
	// Scheduling and wall-clock differences must NOT show up.
	b.Workers = 16
	b.WallSeconds = 99
	b.StartedAt = b.StartedAt.Add(48 * time.Hour)
	if err := RenderRunDiff(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "rundiff_identical.golden", buf.Bytes())
}

func TestRenderRunDiffChanged(t *testing.T) {
	var buf bytes.Buffer
	a := manifestFixture("characterize", 7, 4, "flaky-sysfs", 1)
	b := manifestFixture("characterize", 7, 4, "flaky-sysfs", 1)
	b.Figures.FingerprintTop1 = 0.75
	b.Figures.Counters["sensor.samples"] = 479
	if err := RenderRunDiff(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "rundiff_changed.golden", buf.Bytes())
}

func TestRenderPerfComparisonNoDrift(t *testing.T) {
	var buf bytes.Buffer
	c := &perf.Comparison{
		Experiment: "all",
		Seed:       1,
		BaselineN:  3,
		CurrentN:   3,
		Rates: []perf.RateRow{
			{Name: "sim_ticks_per_sec", Baseline: perf.MetricStats{N: 3, Mean: 1.2e6, CI95: 3e4},
				Current: perf.MetricStats{N: 3, Mean: 1.25e6, CI95: 2e4}, DeltaPct: 4.2},
		},
	}
	if err := RenderPerfComparison(&buf, c); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "perf_nodrift.golden", buf.Bytes())
}

func TestRenderPerfComparisonDriftAndRegression(t *testing.T) {
	var buf bytes.Buffer
	c := &perf.Comparison{
		Experiment: "covert",
		Seed:       7,
		BaselineN:  2,
		CurrentN:   1,
		Drift: []perf.Drift{
			{Name: "sim.ticks", Baseline: "25000", Current: "26000"},
			{Name: "sensor.samples", Baseline: "480", Current: "(absent)"},
		},
		Rates: []perf.RateRow{
			{Name: "samples_per_sec", Baseline: perf.MetricStats{N: 2, Mean: 500, CI95: 12},
				Current: perf.MetricStats{N: 1, Mean: 420}, DeltaPct: -16, Regressed: true},
			{Name: "never_ran", Baseline: perf.MetricStats{}, Current: perf.MetricStats{}},
		},
		RegressPct: 10,
	}
	if err := RenderPerfComparison(&buf, c); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "perf_drift.golden", buf.Bytes())
}

func TestRenderRobustnessCurve(t *testing.T) {
	var buf bytes.Buffer
	res := &core.RobustnessResult{
		Profile: "hostile",
		Classes: 6,
		Points: []core.RobustnessPoint{
			{Intensity: 0, ApplicabilityPearson: 0.998, FingerprintTop1: 0.9, CovertBER: 0},
			{Intensity: 1, ApplicabilityPearson: 0.91, FingerprintTop1: 0.72, CovertBER: 0.04,
				InjectedFaults: map[string]int64{"sysfs_error": 120, "stale": 33},
				Retries:        57, Gaps: 12},
		},
	}
	if err := RenderRobustness(&buf, res); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "robustness_curve.golden", buf.Bytes())
}
