// Package report renders experiment results as text: aligned tables for
// the paper's Table I-III reproductions and ASCII plots for the figure
// reproductions, so every artifact can be regenerated on a terminal
// without a plotting stack.
package report

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	// Title printed above the table (optional).
	Title string
	// Headers of the columns.
	Headers []string
	// Rows of cells; each row must have len(Headers) cells.
	Rows [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	if len(t.Headers) == 0 {
		return errors.New("report: table has no headers")
	}
	for i, r := range t.Rows {
		if len(r) != len(t.Headers) {
			return fmt.Errorf("report: row %d has %d cells, want %d", i, len(r), len(t.Headers))
		}
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		_, err := fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
		return err
	}
	rule := make([]string, len(widths))
	for i, wd := range widths {
		rule[i] = strings.Repeat("-", wd)
	}
	if err := line(t.Headers); err != nil {
		return err
	}
	if err := line(rule); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := line(r); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series is one named line of a plot.
type Series struct {
	Name   string
	Values []float64
}

// Plot renders one or more series as an ASCII chart of the given
// dimensions. Each series is drawn with its own glyph; values are
// normalized per series so differently scaled channels can share a
// canvas (matching how Fig. 2 overlays current, voltage, power and RO).
func Plot(w io.Writer, title string, width, height int, series ...Series) error {
	if width < 8 || height < 2 {
		return errors.New("report: plot too small")
	}
	if len(series) == 0 {
		return errors.New("report: no series")
	}
	glyphs := []byte{'*', '+', 'o', 'x', '#', '@'}
	canvas := make([][]byte, height)
	for i := range canvas {
		canvas[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		if len(s.Values) == 0 {
			return fmt.Errorf("report: series %q is empty", s.Name)
		}
		min, max := s.Values[0], s.Values[0]
		for _, v := range s.Values {
			min = math.Min(min, v)
			max = math.Max(max, v)
		}
		span := max - min
		for x := 0; x < width; x++ {
			var v float64
			if len(s.Values) == 1 {
				v = s.Values[0]
			} else {
				v = s.Values[x*(len(s.Values)-1)/(width-1)]
			}
			norm := 0.5
			if span > 0 {
				norm = (v - min) / span
			}
			y := height - 1 - int(norm*float64(height-1)+0.5)
			canvas[y][x] = glyphs[si%len(glyphs)]
		}
	}
	if title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
			return err
		}
	}
	for _, row := range canvas {
		if _, err := fmt.Fprintf(w, "|%s|\n", row); err != nil {
			return err
		}
	}
	legend := make([]string, len(series))
	for i, s := range series {
		legend[i] = fmt.Sprintf("%c=%s", glyphs[i%len(glyphs)], s.Name)
	}
	_, err := fmt.Fprintf(w, "legend: %s (each series min-max normalized)\n",
		strings.Join(legend, "  "))
	return err
}

// Box is one box-and-whisker entry for BoxPlot.
type Box struct {
	Label                    string
	Min, Q1, Median, Q3, Max float64
}

// BoxPlot renders horizontal box-and-whisker rows over a shared scale —
// the Fig. 4 layout (one box per Hamming-weight class).
func BoxPlot(w io.Writer, title string, width int, boxes []Box) error {
	if width < 16 {
		return errors.New("report: box plot too narrow")
	}
	if len(boxes) == 0 {
		return errors.New("report: no boxes")
	}
	lo, hi := boxes[0].Min, boxes[0].Max
	labelW := 0
	for _, b := range boxes {
		if b.Min > b.Q1 || b.Q1 > b.Median || b.Median > b.Q3 || b.Q3 > b.Max {
			return fmt.Errorf("report: box %q is not ordered", b.Label)
		}
		lo = math.Min(lo, b.Min)
		hi = math.Max(hi, b.Max)
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	col := func(v float64) int {
		c := int((v - lo) / span * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c > width-1 {
			c = width - 1
		}
		return c
	}
	if title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
			return err
		}
	}
	for _, b := range boxes {
		row := []byte(strings.Repeat(" ", width))
		for c := col(b.Min); c <= col(b.Max); c++ {
			row[c] = '-'
		}
		for c := col(b.Q1); c <= col(b.Q3); c++ {
			row[c] = '='
		}
		row[col(b.Median)] = '|'
		if _, err := fmt.Fprintf(w, "%s %s\n", pad(b.Label, labelW), row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s scale: [%.4g, %.4g]\n", strings.Repeat(" ", labelW), lo, hi)
	return err
}
