package report

import (
	"fmt"
	"io"

	"repro/internal/perf"
)

// RenderPerfComparison writes the benchstat-style report of a perf
// comparison: the deterministic-counter gate first (any row here is a
// behaviour change), then the wall-clock rates with their spread.
func RenderPerfComparison(w io.Writer, c *perf.Comparison) error {
	if _, err := fmt.Fprintf(w, "perf comparison: experiment=%s seed=%d baseline n=%d current n=%d\n",
		c.Experiment, c.Seed, c.BaselineN, c.CurrentN); err != nil {
		return err
	}

	if len(c.Drift) == 0 {
		if _, err := fmt.Fprintf(w, "deterministic counters: OK (no drift)\n"); err != nil {
			return err
		}
	} else {
		if _, err := fmt.Fprintf(w, "deterministic counters: DRIFT (%d counters changed — behaviour difference, not noise)\n",
			len(c.Drift)); err != nil {
			return err
		}
		t := &Table{Headers: []string{"counter", "baseline", "current"}}
		for _, d := range c.Drift {
			t.AddRow(d.Name, d.Baseline, d.Current)
		}
		if err := t.Render(w); err != nil {
			return err
		}
	}

	gate := "report-only"
	if c.RegressPct > 0 {
		gate = fmt.Sprintf("gated at %.1f%%", c.RegressPct)
	}
	t := &Table{
		Title:   fmt.Sprintf("wall-clock rates (%s):", gate),
		Headers: []string{"metric", "baseline", "current", "delta", "verdict"},
	}
	for _, r := range c.Rates {
		verdict := "~"
		if r.Regressed {
			verdict = "REGRESSED"
		}
		t.AddRow(r.Name, fmtStats(r.Baseline), fmtStats(r.Current),
			fmt.Sprintf("%+.1f%%", r.DeltaPct), verdict)
	}
	return t.Render(w)
}

// fmtStats renders mean ± 95% CI, dropping the interval when a single
// repeat makes it meaningless.
func fmtStats(s perf.MetricStats) string {
	if s.N == 0 {
		return "-"
	}
	if s.N < 2 {
		return fmt.Sprintf("%.4g (n=1)", s.Mean)
	}
	return fmt.Sprintf("%.4g ±%.2g (n=%d)", s.Mean, s.CI95, s.N)
}
