package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrShed is returned when the admission controller's wait queue is
// full and the request is dropped instead of enqueued.
var ErrShed = errors.New("resilience: overloaded, request shed")

// TokenBucket is a clock-agnostic token-bucket rate limiter: capacity
// Burst, refilled at Rate tokens per second of the injected clock.
// Allow is non-blocking; callers decide whether a denial sheds or
// queues.
type TokenBucket struct {
	rate  float64 // tokens per second
	burst float64
	now   func() time.Duration

	mu     sync.Mutex
	tokens float64
	last   time.Duration
}

// NewTokenBucket returns a full bucket. rate is tokens/second on now's
// clock; burst is the bucket capacity.
func NewTokenBucket(rate float64, burst int, now func() time.Duration) (*TokenBucket, error) {
	if now == nil {
		return nil, errors.New("resilience: token bucket needs a Now clock")
	}
	if rate <= 0 {
		return nil, fmt.Errorf("resilience: non-positive rate %v", rate)
	}
	if burst < 1 {
		return nil, fmt.Errorf("resilience: non-positive burst %d", burst)
	}
	return &TokenBucket{
		rate:   rate,
		burst:  float64(burst),
		now:    now,
		tokens: float64(burst),
		last:   now(),
	}, nil
}

// Allow consumes one token if available and reports whether it did.
func (tb *TokenBucket) Allow() bool { return tb.AllowN(1) }

// AllowN consumes n tokens if available and reports whether it did.
func (tb *TokenBucket) AllowN(n int) bool {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	now := tb.now()
	if now > tb.last {
		tb.tokens += tb.rate * (now - tb.last).Seconds()
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
		tb.last = now
	}
	if tb.tokens < float64(n) {
		cLimiterDenied().Inc()
		return false
	}
	tb.tokens -= float64(n)
	return true
}

// Admission is a semaphore-based admission controller: at most Limit
// requests run concurrently, at most QueueDepth more wait for a slot,
// and everything beyond that is shed immediately with ErrShed. Shed
// and admitted requests are counted in the obs registry
// (resilience.admission.shed_total / admitted_total).
type Admission struct {
	slots   chan struct{}
	mu      sync.Mutex
	waiting int
	depth   int
}

// NewAdmission returns an admission controller with limit concurrent
// slots and a wait queue of queueDepth.
func NewAdmission(limit, queueDepth int) (*Admission, error) {
	if limit < 1 {
		return nil, fmt.Errorf("resilience: non-positive admission limit %d", limit)
	}
	if queueDepth < 0 {
		return nil, fmt.Errorf("resilience: negative queue depth %d", queueDepth)
	}
	return &Admission{
		slots: make(chan struct{}, limit),
		depth: queueDepth,
	}, nil
}

// Acquire obtains a slot, waiting in the bounded queue if none is
// free. It returns a release function on success; ErrShed when the
// queue is full; or ctx's error if cancelled while waiting. The
// release function is idempotent.
func (a *Admission) Acquire(ctx context.Context) (release func(), err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Fast path: a free slot needs no queueing.
	select {
	case a.slots <- struct{}{}:
		cAdmissionAdmit().Inc()
		return a.releaseFn(), nil
	default:
	}
	a.mu.Lock()
	if a.waiting >= a.depth {
		a.mu.Unlock()
		cAdmissionShed().Inc()
		return nil, ErrShed
	}
	a.waiting++
	a.mu.Unlock()
	defer func() {
		a.mu.Lock()
		a.waiting--
		a.mu.Unlock()
	}()
	select {
	case a.slots <- struct{}{}:
		cAdmissionAdmit().Inc()
		return a.releaseFn(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (a *Admission) releaseFn() func() {
	var once sync.Once
	return func() { once.Do(func() { <-a.slots }) }
}

// InFlight returns the number of currently held slots.
func (a *Admission) InFlight() int { return len(a.slots) }

// Waiting returns the current wait-queue length.
func (a *Admission) Waiting() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.waiting
}
