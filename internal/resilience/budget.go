package resilience

import (
	"context"
	"time"
)

// Deadline budgets: a request-scoped time allowance that rides the
// context. WithBudget attaches both a real deadline (so blocking calls
// are cut off) and a budget marker that downstream stages can query
// and subdivide — a job handler grants the whole request 30 s, the
// planner takes 10% of whatever remains, the shard runner splits the
// rest. Unlike reading ctx.Deadline directly, Remaining never reports
// a deadline the budget machinery didn't set, so stages can
// distinguish "the request has a time budget" from unrelated timeouts.

type budgetKey struct{}

// budget records when the allowance expires on the wall clock.
type budget struct {
	deadline time.Time
}

// WithBudget returns a context whose remaining time allowance is d,
// enforced by a real context deadline. If the parent already carries a
// smaller budget, the smaller one wins (a sub-request can only shrink
// its allowance).
func WithBudget(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	deadline := time.Now().Add(d)
	if parent, ok := ctx.Value(budgetKey{}).(budget); ok && parent.deadline.Before(deadline) {
		deadline = parent.deadline
	}
	ctx = context.WithValue(ctx, budgetKey{}, budget{deadline: deadline})
	return context.WithDeadline(ctx, deadline)
}

// Remaining returns the unspent part of the context's budget and
// whether a budget is set at all. A context without a budget reports
// (0, false): the caller is free to take as long as it needs.
func Remaining(ctx context.Context) (time.Duration, bool) {
	if ctx == nil {
		return 0, false
	}
	b, ok := ctx.Value(budgetKey{}).(budget)
	if !ok {
		return 0, false
	}
	left := time.Until(b.deadline)
	if left < 0 {
		left = 0
	}
	return left, true
}

// Split returns a child context budgeted with the given fraction of
// the parent's remaining allowance. Without a parent budget it returns
// the context unchanged with a no-op cancel, so Split composes freely
// with unbudgeted callers.
func Split(ctx context.Context, frac float64) (context.Context, context.CancelFunc) {
	left, ok := Remaining(ctx)
	if !ok || frac <= 0 {
		return ctx, func() {}
	}
	if frac > 1 {
		frac = 1
	}
	return WithBudget(ctx, time.Duration(frac*float64(left)))
}
