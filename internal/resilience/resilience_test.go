package resilience

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock for deterministic breaker and
// bucket tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Duration
}

func (c *fakeClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

func newTestBreaker(t *testing.T, clk *fakeClock, mutate func(*BreakerConfig)) *Breaker {
	t.Helper()
	cfg := BreakerConfig{
		Name:              "test",
		FailureThreshold:  3,
		OpenFor:           10 * time.Millisecond,
		HalfOpenSuccesses: 2,
		Now:               clk.Now,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	b, err := NewBreaker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBreakerStateMachine(t *testing.T) {
	clk := &fakeClock{}
	b := newTestBreaker(t, clk, nil)

	if got := b.State(); got != Closed {
		t.Fatalf("initial state = %v, want closed", got)
	}
	// Two failures stay closed; the third trips.
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker rejected request %d", i)
		}
		b.OnFailure()
	}
	if got := b.State(); got != Closed {
		t.Fatalf("state after 2 failures = %v, want closed", got)
	}
	b.Allow()
	b.OnFailure()
	if got := b.State(); got != Open {
		t.Fatalf("state after threshold failures = %v, want open", got)
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", b.Trips())
	}
	// Open: short-circuits until the window expires.
	if b.Allow() {
		t.Fatal("open breaker admitted a request inside the window")
	}
	if b.ShortCircuits() == 0 {
		t.Fatal("short-circuit not counted")
	}
	clk.Advance(11 * time.Millisecond)
	// Window expired: one probe admitted (half-open), a second is not.
	if !b.Allow() {
		t.Fatal("expired breaker rejected the probe")
	}
	if got := b.State(); got != HalfOpen {
		t.Fatalf("state during probe = %v, want half-open", got)
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	// Probe succeeds, but HalfOpenSuccesses=2 demands another.
	b.OnSuccess()
	if !b.Allow() {
		t.Fatal("breaker rejected the second probe after a success")
	}
	b.OnSuccess()
	if got := b.State(); got != Closed {
		t.Fatalf("state after enough probe successes = %v, want closed", got)
	}

	// A failing probe re-opens immediately.
	for i := 0; i < 3; i++ {
		b.Allow()
		b.OnFailure()
	}
	clk.Advance(11 * time.Millisecond)
	b.Allow()
	b.OnFailure()
	if got := b.State(); got != Open {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	if b.Trips() != 3 {
		t.Fatalf("trips = %d, want 3 (initial + re-trip + failed probe)", b.Trips())
	}
}

func TestBreakerSuccessResetsFailureRun(t *testing.T) {
	clk := &fakeClock{}
	b := newTestBreaker(t, clk, nil)
	// failure, failure, success, failure, failure: never reaches 3
	// consecutive.
	for _, ok := range []bool{false, false, true, false, false} {
		b.Allow()
		if ok {
			b.OnSuccess()
		} else {
			b.OnFailure()
		}
	}
	if got := b.State(); got != Closed {
		t.Fatalf("state = %v, want closed (failure run was broken)", got)
	}
}

func TestBreakerProbeJitterDeterministic(t *testing.T) {
	windows := func(seed int64) []time.Duration {
		clk := &fakeClock{}
		b := newTestBreaker(t, clk, func(cfg *BreakerConfig) {
			cfg.ProbeJitterFrac = 0.5
			cfg.Rand = rand.New(rand.NewSource(seed))
		})
		var out []time.Duration
		for trip := 0; trip < 5; trip++ {
			for i := 0; i < 3; i++ {
				b.Allow()
				b.OnFailure()
			}
			out = append(out, b.openUntil-clk.Now())
			clk.Advance(b.openUntil - clk.Now())
			// Probe fails to allow an immediate re-trip; the re-trip draws
			// the next jitter value.
			b.Allow()
		}
		return out
	}
	a, b := windows(7), windows(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("window %d differs across identical seeds: %v vs %v", i, a[i], b[i])
		}
		if a[i] < 10*time.Millisecond || a[i] > 15*time.Millisecond {
			t.Fatalf("window %d = %v outside [OpenFor, 1.5*OpenFor]", i, a[i])
		}
	}
	c := windows(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter sequences")
	}
}

func TestBreakerDo(t *testing.T) {
	clk := &fakeClock{}
	b := newTestBreaker(t, clk, func(cfg *BreakerConfig) { cfg.FailureThreshold = 1 })
	boom := errors.New("boom")
	if err := b.Do(func() error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Do = %v, want boom", err)
	}
	if err := b.Do(func() error { return nil }); !errors.Is(err, ErrOpen) {
		t.Fatalf("Do on open breaker = %v, want ErrOpen", err)
	}
	clk.Advance(11 * time.Millisecond)
	if err := b.Do(func() error { return nil }); err != nil {
		t.Fatalf("probe Do = %v, want nil", err)
	}
}

func TestBreakerConfigValidation(t *testing.T) {
	if _, err := NewBreaker(BreakerConfig{}); err == nil {
		t.Fatal("breaker without a clock accepted")
	}
	clk := &fakeClock{}
	for _, cfg := range []BreakerConfig{
		{Now: clk.Now, FailureThreshold: -1},
		{Now: clk.Now, OpenFor: -time.Second},
		{Now: clk.Now, ProbeJitterFrac: -1},
		{Now: clk.Now, HalfOpenSuccesses: -2},
	} {
		if _, err := NewBreaker(cfg); err == nil {
			t.Fatalf("invalid config %+v accepted", cfg)
		}
	}
}

func TestTokenBucket(t *testing.T) {
	clk := &fakeClock{}
	tb, err := NewTokenBucket(10, 2, clk.Now) // 10 tokens/s, burst 2
	if err != nil {
		t.Fatal(err)
	}
	if !tb.Allow() || !tb.Allow() {
		t.Fatal("full bucket denied its burst")
	}
	if tb.Allow() {
		t.Fatal("empty bucket granted a token")
	}
	clk.Advance(100 * time.Millisecond) // refills one token
	if !tb.Allow() {
		t.Fatal("bucket did not refill after 100ms at 10/s")
	}
	if tb.Allow() {
		t.Fatal("bucket granted more than the refill")
	}
	// Refill is capped at burst.
	clk.Advance(10 * time.Second)
	if !tb.AllowN(2) {
		t.Fatal("bucket did not cap refill at burst")
	}
	if tb.Allow() {
		t.Fatal("bucket exceeded burst capacity")
	}
}

func TestTokenBucketValidation(t *testing.T) {
	clk := &fakeClock{}
	if _, err := NewTokenBucket(1, 1, nil); err == nil {
		t.Fatal("bucket without a clock accepted")
	}
	if _, err := NewTokenBucket(0, 1, clk.Now); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := NewTokenBucket(1, 0, clk.Now); err == nil {
		t.Fatal("zero burst accepted")
	}
}

func TestAdmissionShedsBeyondQueue(t *testing.T) {
	a, err := NewAdmission(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if a.InFlight() != 1 {
		t.Fatalf("in-flight = %d, want 1", a.InFlight())
	}
	// Second request queues; third sheds.
	queued := make(chan error, 1)
	entered := make(chan struct{})
	go func() {
		// Signal once we are definitely in the wait queue.
		go func() {
			for a.Waiting() == 0 {
				time.Sleep(time.Millisecond)
			}
			close(entered)
		}()
		rel, err := a.Acquire(context.Background())
		if err == nil {
			rel()
		}
		queued <- err
	}()
	<-entered
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("over-queue acquire = %v, want ErrShed", err)
	}
	release()
	if err := <-queued; err != nil {
		t.Fatalf("queued acquire = %v, want nil after release", err)
	}
	release() // idempotent
	if a.Waiting() != 0 {
		t.Fatalf("waiting = %d, want 0", a.Waiting())
	}
}

func TestAdmissionRespectsContext(t *testing.T) {
	a, err := NewAdmission(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := a.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled acquire = %v, want deadline exceeded", err)
	}
	if a.Waiting() != 0 {
		t.Fatalf("waiting = %d after cancellation, want 0", a.Waiting())
	}
}

func TestAdmissionValidation(t *testing.T) {
	if _, err := NewAdmission(0, 1); err == nil {
		t.Fatal("zero limit accepted")
	}
	if _, err := NewAdmission(1, -1); err == nil {
		t.Fatal("negative queue accepted")
	}
}

func TestBudgetPropagatesAndShrinks(t *testing.T) {
	if _, ok := Remaining(context.Background()); ok {
		t.Fatal("background context reports a budget")
	}
	ctx, cancel := WithBudget(context.Background(), 100*time.Millisecond)
	defer cancel()
	left, ok := Remaining(ctx)
	if !ok {
		t.Fatal("budgeted context reports no budget")
	}
	if left <= 0 || left > 100*time.Millisecond {
		t.Fatalf("remaining = %v, want (0, 100ms]", left)
	}
	// A child asking for more than the parent has is clamped.
	child, cancel2 := WithBudget(ctx, time.Hour)
	defer cancel2()
	childLeft, _ := Remaining(child)
	if childLeft > 100*time.Millisecond {
		t.Fatalf("child budget %v exceeds parent's", childLeft)
	}
	dl, ok := child.Deadline()
	if !ok {
		t.Fatal("budgeted context carries no deadline")
	}
	if until := time.Until(dl); until > 100*time.Millisecond {
		t.Fatalf("child deadline %v further than parent budget", until)
	}
}

func TestBudgetSplit(t *testing.T) {
	// Split on an unbudgeted context is a no-op.
	ctx, cancel := Split(context.Background(), 0.5)
	cancel()
	if _, ok := Remaining(ctx); ok {
		t.Fatal("split of unbudgeted context created a budget")
	}
	parent, cancel := WithBudget(context.Background(), time.Second)
	defer cancel()
	half, cancel2 := Split(parent, 0.5)
	defer cancel2()
	left, ok := Remaining(half)
	if !ok {
		t.Fatal("split context lost its budget")
	}
	if left > 600*time.Millisecond {
		t.Fatalf("split remaining = %v, want about half of 1s", left)
	}
	// Out-of-range fractions clamp rather than explode.
	over, cancel3 := Split(parent, 2)
	defer cancel3()
	if overLeft, _ := Remaining(over); overLeft > time.Second {
		t.Fatalf("frac>1 split grew the budget to %v", overLeft)
	}
	zero, cancel4 := Split(parent, 0)
	cancel4()
	if _, ok := Remaining(zero); !ok {
		t.Fatal("frac<=0 split should return the parent unchanged (still budgeted)")
	}
}

func TestBudgetExpiry(t *testing.T) {
	ctx, cancel := WithBudget(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(2 * time.Millisecond)
	if left, ok := Remaining(ctx); !ok || left != 0 {
		t.Fatalf("expired budget reports (%v, %v), want (0, true)", left, ok)
	}
	if ctx.Err() == nil {
		t.Fatal("expired budget context not cancelled")
	}
}
