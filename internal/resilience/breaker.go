// Package resilience is the generic protection toolkit under the
// supervised job engine: a circuit breaker for flaky dependencies, a
// token-bucket rate limiter, a semaphore-based admission controller
// with a bounded wait queue and load shedding, and per-request
// deadline budgets that propagate through context.
//
// Everything in the package is clock-agnostic: components take a
// Now func() time.Duration instead of reading the wall clock, so the
// same breaker protects a simulated sensor read path (sim clock, fully
// deterministic under replay) and a live HTTP job server (wall clock).
// Where a component needs randomness — the breaker's probe-scheduling
// jitter, which prevents a fleet of half-open breakers from probing in
// lock step — it draws from an injected *rand.Rand, expected to be a
// named stream of the simulation engine (seed ^ FNV-1a(name)), keeping
// chaos runs byte-identical across worker counts.
//
// Shed load and breaker transitions are first-class observability
// events: resilience.breaker.open_total, resilience.breaker.
// short_circuit_total, resilience.admission.shed_total and friends
// land in the obs registry, so a run that survived by degrading says
// so in its manifest instead of silently absorbing the damage.
package resilience

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/obs"
)

// Breaker metrics. Counters aggregate across every breaker in the
// process (they are per-shard deterministic, so their totals stay
// byte-identical across worker counts and across checkpoint/resume);
// the per-breaker state is reported through the State method, not a
// shared gauge, to keep last-writer races out of manifests.
//
// Registration is lazy — obs.C on the event path, like
// obs.stream.dropped_frames — so a process that never sheds or trips
// (the benchtab perf harness, whose baseline comparison gates on the
// exact deterministic counter set) sees no new counters.
func cBreakerOpen() *obs.Counter    { return obs.C("resilience.breaker.open_total") }
func cBreakerShort() *obs.Counter   { return obs.C("resilience.breaker.short_circuit_total") }
func cBreakerProbes() *obs.Counter  { return obs.C("resilience.breaker.probes_total") }
func cBreakerCloses() *obs.Counter  { return obs.C("resilience.breaker.close_total") }
func cAdmissionShed() *obs.Counter  { return obs.C("resilience.admission.shed_total") }
func cAdmissionAdmit() *obs.Counter { return obs.C("resilience.admission.admitted_total") }
func cLimiterDenied() *obs.Counter  { return obs.C("resilience.limiter.denied_total") }

// State is a circuit breaker state.
type State int

const (
	// Closed: requests flow; consecutive failures are counted.
	Closed State = iota
	// Open: requests short-circuit until the open window expires.
	Open
	// HalfOpen: a bounded number of probe requests are let through to
	// decide between closing and re-opening.
	HalfOpen
)

// String returns the conventional lowercase state name.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// ErrOpen is returned by Breaker.Allow callers' convention (and by Do)
// when the breaker is open and the request was short-circuited.
var ErrOpen = errors.New("resilience: circuit breaker open")

// BreakerConfig parameterizes a Breaker. The zero value of every
// tunable selects a sane default; Now is the only required field.
type BreakerConfig struct {
	// Name labels the breaker in logs and debug output.
	Name string
	// FailureThreshold is the consecutive-failure count that trips the
	// breaker from closed to open. Zero means 16.
	FailureThreshold int
	// OpenFor is how long the breaker stays open before moving to
	// half-open, measured on Now's clock. Zero means 64 ms (32 hwmon
	// update intervals at the ZCU102's 2 ms cadence).
	OpenFor time.Duration
	// ProbeJitterFrac scales the deterministic jitter added to OpenFor
	// on each trip: the open window is OpenFor * (1 + U[0,frac)) with U
	// drawn from Rand. Zero jitter when zero or when Rand is nil.
	ProbeJitterFrac float64
	// HalfOpenSuccesses is the number of consecutive successful probes
	// that closes a half-open breaker. Zero means 2.
	HalfOpenSuccesses int
	// Now supplies the clock; typically engine.Now for simulated
	// components or a monotonic wall offset for servers. Required.
	Now func() time.Duration
	// Rand supplies the probe-scheduling jitter, typically a named sim
	// RNG stream. Nil disables jitter.
	Rand *rand.Rand
}

func (cfg BreakerConfig) withDefaults() (BreakerConfig, error) {
	if cfg.Now == nil {
		return cfg, errors.New("resilience: breaker needs a Now clock")
	}
	if cfg.FailureThreshold == 0 {
		cfg.FailureThreshold = 16
	}
	if cfg.FailureThreshold < 1 {
		return cfg, fmt.Errorf("resilience: non-positive failure threshold %d", cfg.FailureThreshold)
	}
	if cfg.OpenFor == 0 {
		cfg.OpenFor = 64 * time.Millisecond
	}
	if cfg.OpenFor < 0 {
		return cfg, fmt.Errorf("resilience: negative open window %v", cfg.OpenFor)
	}
	if cfg.ProbeJitterFrac < 0 {
		return cfg, fmt.Errorf("resilience: negative probe jitter %v", cfg.ProbeJitterFrac)
	}
	if cfg.HalfOpenSuccesses == 0 {
		cfg.HalfOpenSuccesses = 2
	}
	if cfg.HalfOpenSuccesses < 1 {
		return cfg, fmt.Errorf("resilience: non-positive half-open successes %d", cfg.HalfOpenSuccesses)
	}
	return cfg, nil
}

// Breaker is a closed/open/half-open circuit breaker. It is
// goroutine-safe, though the deterministic sampling paths drive each
// breaker from a single goroutine.
type Breaker struct {
	cfg BreakerConfig

	mu        sync.Mutex
	state     State
	failures  int           // consecutive failures while closed
	successes int           // consecutive probe successes while half-open
	probing   bool          // a half-open probe is in flight
	openUntil time.Duration // when the open window expires
	trips     int64
	shorted   int64
}

// NewBreaker returns a breaker in the closed state.
func NewBreaker(cfg BreakerConfig) (*Breaker, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Breaker{cfg: cfg}, nil
}

// Allow reports whether a request may proceed now. An open breaker
// whose window has expired transitions to half-open and admits the
// request as a probe. Callers must report the request's outcome with
// OnSuccess/OnFailure; a short-circuited request (Allow false) must
// not report.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.cfg.Now() < b.openUntil {
			b.shorted++
			cBreakerShort().Inc()
			return false
		}
		b.state = HalfOpen
		b.successes = 0
		b.probing = true
		cBreakerProbes().Inc()
		return true
	default: // HalfOpen: one probe in flight at a time.
		if b.probing {
			b.shorted++
			cBreakerShort().Inc()
			return false
		}
		b.probing = true
		cBreakerProbes().Inc()
		return true
	}
}

// OnSuccess records a successful request.
func (b *Breaker) OnSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.failures = 0
	case HalfOpen:
		b.probing = false
		b.successes++
		if b.successes >= b.cfg.HalfOpenSuccesses {
			b.state = Closed
			b.failures = 0
			cBreakerCloses().Inc()
		}
	}
}

// OnFailure records a failed request. While closed it advances the
// consecutive-failure count and trips the breaker at the threshold;
// while half-open it re-opens immediately.
func (b *Breaker) OnFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.trip()
		}
	case HalfOpen:
		b.trip()
	}
}

// trip moves to open and schedules the next probe window; callers hold
// b.mu.
func (b *Breaker) trip() {
	b.state = Open
	b.failures = 0
	b.successes = 0
	b.probing = false
	window := b.cfg.OpenFor
	if b.cfg.Rand != nil && b.cfg.ProbeJitterFrac > 0 {
		window += time.Duration(b.cfg.ProbeJitterFrac * b.cfg.Rand.Float64() * float64(b.cfg.OpenFor))
	}
	b.openUntil = b.cfg.Now() + window
	b.trips++
	cBreakerOpen().Inc()
}

// Do runs fn under the breaker: short-circuits with ErrOpen when the
// breaker rejects the request, otherwise reports fn's outcome back.
func (b *Breaker) Do(fn func() error) error {
	if !b.Allow() {
		return ErrOpen
	}
	err := fn()
	if err != nil {
		b.OnFailure()
	} else {
		b.OnSuccess()
	}
	return err
}

// State returns the current state without side effects (an expired
// open window still reads as open until the next Allow).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips returns how many times this breaker has opened.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// ShortCircuits returns how many requests this breaker rejected.
func (b *Breaker) ShortCircuits() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.shorted
}
