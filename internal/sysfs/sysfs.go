// Package sysfs implements an in-memory model of the Linux sysfs
// attribute tree, with the permission semantics the AmpereBleed threat
// model depends on: attribute files are world-readable (an unprivileged
// process can poll sensor readings) while writes — such as changing an
// INA226 update interval — require root.
//
// Attributes are backed by callbacks rather than stored bytes, so every
// read observes the live state of the simulated hardware, exactly like a
// real sysfs show() method. The tree also exposes a standard io/fs view
// (As) so discovery code can use fs.Glob/fs.WalkDir unchanged.
package sysfs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Cred identifies the caller for permission checks.
type Cred struct {
	// UID is the caller's user id; 0 is root.
	UID int
}

// Root is the superuser credential.
var Root = Cred{UID: 0}

// Nobody is an arbitrary unprivileged credential, the attacker's
// vantage point.
var Nobody = Cred{UID: 1000}

// IsRoot reports whether the credential is the superuser.
func (c Cred) IsRoot() bool { return c.UID == 0 }

// Attr is one sysfs attribute file.
type Attr struct {
	// Mode carries the permission bits; only the 0444 read bits and 0200
	// owner-write bit are honoured (sysfs files are root-owned).
	Mode fs.FileMode
	// Show produces the file contents. Required.
	Show func() (string, error)
	// Store consumes a write. Required iff the mode has a write bit.
	Store func(string) error
}

// Common attribute modes.
const (
	// ModeRO is a world-readable attribute (0444), like curr1_input.
	ModeRO fs.FileMode = 0o444
	// ModeRW is world-readable but root-writable (0644), like
	// update_interval.
	ModeRW fs.FileMode = 0o644
	// ModeRootOnly is readable by root only (0400); the mitigation
	// experiment flips sensitive attributes to this mode.
	ModeRootOnly fs.FileMode = 0o400
)

type node struct {
	name     string
	attr     *Attr            // nil for directories
	children map[string]*node // nil for files

	// readCtr caches this attribute's per-basename read counter
	// ("sysfs.reads.curr1_input", ...). It is registered lazily on the
	// first successful read — keeping the metric absent until the
	// attribute is actually read, as before — and cached on the node so
	// the hot read path does one atomic load instead of a map lookup
	// (whose interface-boxed string key allocated on every read).
	readCtr atomic.Pointer[obs.Counter]
}

func (n *node) isDir() bool { return n.attr == nil }

// FS is an in-memory sysfs tree.
type FS struct {
	root *node

	// readFault, when set, is consulted on every permitted attribute
	// read before the Show callback runs; a non-nil return is surfaced
	// to the reader in place of the contents. It models the transient
	// EAGAIN/EIO failures real hwmon reads exhibit on PetaLinux (the
	// fault-injection layer installs it; see internal/faults).
	readFault func(path string) error

	// Read-side observability: every attacker measurement is a sysfs
	// read, so these counters are the ground truth of how much sensor
	// data the unprivileged side actually obtained. Per-attribute
	// counters live on the nodes themselves (see node.readCtr).
	obsReads   *obs.Counter
	obsBytes   *obs.Counter
	obsDenied  *obs.Counter
	obsWrites  *obs.Counter
	obsMissing *obs.Counter
	obsFaulted *obs.Counter
}

// New returns an empty tree.
func New() *FS {
	return &FS{
		root:       &node{name: ".", children: make(map[string]*node)},
		obsReads:   obs.C("sysfs.reads"),
		obsBytes:   obs.C("sysfs.read_bytes"),
		obsDenied:  obs.C("sysfs.denied"),
		obsWrites:  obs.C("sysfs.writes"),
		obsMissing: obs.C("sysfs.not_exist"),
		obsFaulted: obs.C("sysfs.read_faults"),
	}
}

// SetReadFault installs (or, with nil, removes) the transient-read-
// failure hook. The hook runs after permission checks succeed, exactly
// where a real sysfs show() method can fail with EAGAIN or EIO, and
// applies to ReadFile and to reads through the io/fs view alike.
func (f *FS) SetReadFault(hook func(path string) error) { f.readFault = hook }

// injectReadFault runs the hook for one permitted read.
func (f *FS) injectReadFault(p string) error {
	if f.readFault == nil {
		return nil
	}
	if err := f.readFault(p); err != nil {
		f.obsFaulted.Inc()
		return err
	}
	return nil
}

// countRead records one successful read of size bytes from attribute
// node n. The per-basename counter is resolved through the global
// registry once per node and cached; obs.C is idempotent, so a racing
// first read on two nodes with the same basename lands on the same
// counter.
func (f *FS) countRead(n *node, size int) {
	f.obsReads.Inc()
	f.obsBytes.Add(int64(size))
	c := n.readCtr.Load()
	if c == nil {
		c = obs.C("sysfs.reads." + n.name)
		n.readCtr.Store(c)
	}
	c.Inc()
}

func splitPath(p string) ([]string, error) {
	// Strip every leading slash: TrimPrefix alone would leave "//x" as
	// "/x", which path.Clean keeps absolute and the component walk below
	// would then see an empty first element.
	clean := path.Clean(strings.TrimLeft(p, "/"))
	if clean == "." || clean == "" {
		return nil, nil
	}
	// Reject only a leading ".." component; names that merely start with
	// two dots (e.g. "..data") are valid.
	if clean == ".." || strings.HasPrefix(clean, "../") {
		return nil, fmt.Errorf("sysfs: path escapes root: %q", p)
	}
	return strings.Split(clean, "/"), nil
}

// resolveFast walks a path that is already in canonical relative form —
// no leading slash, no empty/"."/".." segments — without allocating.
// That covers every hot-loop read path the probes use (e.g.
// "class/hwmon/hwmon0/curr1_input"). It reports false whenever the walk
// cannot be completed losslessly (path needs cleaning, component
// missing, file in the middle), letting the caller fall back to the
// slow path for canonicalization and error reporting.
func (f *FS) resolveFast(p string) (*node, bool) {
	if p == "" || p[0] == '/' {
		return nil, false
	}
	n := f.root
	for start := 0; start <= len(p); {
		end := strings.IndexByte(p[start:], '/')
		var seg string
		if end < 0 {
			seg = p[start:]
			start = len(p) + 1
		} else {
			seg = p[start : start+end]
			start += end + 1
		}
		if seg == "" || seg == "." || seg == ".." {
			return nil, false // needs path.Clean / escape check
		}
		if !n.isDir() {
			return nil, false // slow path produces the canonical error
		}
		child, ok := n.children[seg]
		if !ok {
			return nil, false
		}
		n = child
	}
	return n, true
}

func (f *FS) resolve(p string) (*node, error) {
	if n, ok := f.resolveFast(p); ok {
		return n, nil
	}
	parts, err := splitPath(p)
	if err != nil {
		return nil, err
	}
	n := f.root
	for _, part := range parts {
		if !n.isDir() {
			return nil, fmt.Errorf("sysfs: %s: %w", p, fs.ErrNotExist)
		}
		child, ok := n.children[part]
		if !ok {
			return nil, fmt.Errorf("sysfs: %s: %w", p, fs.ErrNotExist)
		}
		n = child
	}
	return n, nil
}

// MkdirAll creates a directory path, like os.MkdirAll.
func (f *FS) MkdirAll(p string) error {
	parts, err := splitPath(p)
	if err != nil {
		return err
	}
	n := f.root
	for _, part := range parts {
		child, ok := n.children[part]
		if !ok {
			child = &node{name: part, children: make(map[string]*node)}
			n.children[part] = child
		}
		if !child.isDir() {
			return fmt.Errorf("sysfs: %s: not a directory", p)
		}
		n = child
	}
	return nil
}

// AddAttr registers an attribute file at p, creating parent directories.
func (f *FS) AddAttr(p string, a Attr) error {
	if a.Show == nil {
		return fmt.Errorf("sysfs: %s: attribute needs a Show callback", p)
	}
	if a.Mode&0o222 != 0 && a.Store == nil {
		return fmt.Errorf("sysfs: %s: writable mode without Store callback", p)
	}
	dir, name := path.Split(strings.TrimLeft(p, "/"))
	if name == "" {
		return fmt.Errorf("sysfs: %s: empty file name", p)
	}
	if name == "." || name == ".." {
		// Would register fine but never resolve back: path cleaning folds
		// the segment away before lookup.
		return fmt.Errorf("sysfs: %s: invalid file name %q", p, name)
	}
	if err := f.MkdirAll(dir); err != nil {
		return err
	}
	parent, err := f.resolve(dir)
	if err != nil {
		return err
	}
	if _, exists := parent.children[name]; exists {
		return fmt.Errorf("sysfs: %s: %w", p, fs.ErrExist)
	}
	parent.children[name] = &node{name: name, attr: &a}
	return nil
}

// Remove deletes an attribute file or a whole directory subtree —
// the disappearing half of a hotplug event. Removing the root is
// rejected; removing a missing path reports fs.ErrNotExist.
func (f *FS) Remove(p string) error {
	parts, err := splitPath(p)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return fmt.Errorf("sysfs: cannot remove root")
	}
	dir := strings.Join(parts[:len(parts)-1], "/")
	parent, err := f.resolve(dir)
	if err != nil {
		return err
	}
	name := parts[len(parts)-1]
	if !parent.isDir() {
		return fmt.Errorf("sysfs: %s: not a directory", dir)
	}
	if _, ok := parent.children[name]; !ok {
		return fmt.Errorf("sysfs: %s: %w", p, fs.ErrNotExist)
	}
	delete(parent.children, name)
	return nil
}

// SetMode changes the permission bits of an existing attribute; this is
// the mitigation hook (Sec. V: restrict sensor access to root).
func (f *FS) SetMode(p string, mode fs.FileMode) error {
	n, err := f.resolve(p)
	if err != nil {
		return err
	}
	if n.isDir() {
		return fmt.Errorf("sysfs: %s: is a directory", p)
	}
	if mode&0o222 != 0 && n.attr.Store == nil {
		return fmt.Errorf("sysfs: %s: cannot make writable without Store", p)
	}
	n.attr.Mode = mode
	return nil
}

// ReadFile reads an attribute as the given credential.
func (f *FS) ReadFile(c Cred, p string) (string, error) {
	n, err := f.resolve(p)
	if err != nil {
		f.obsMissing.Inc()
		return "", err
	}
	if n.isDir() {
		return "", fmt.Errorf("sysfs: %s: is a directory", p)
	}
	if !readable(c, n.attr.Mode) {
		f.obsDenied.Inc()
		return "", fmt.Errorf("sysfs: read %s: %w", p, fs.ErrPermission)
	}
	if err := f.injectReadFault(p); err != nil {
		return "", fmt.Errorf("sysfs: read %s: %w", p, err)
	}
	out, err := n.attr.Show()
	if err == nil {
		f.countRead(n, len(out))
	}
	return out, err
}

// WriteFile writes an attribute as the given credential.
func (f *FS) WriteFile(c Cred, p, value string) error {
	n, err := f.resolve(p)
	if err != nil {
		return err
	}
	if n.isDir() {
		return fmt.Errorf("sysfs: %s: is a directory", p)
	}
	if !writable(c, n.attr.Mode) {
		f.obsDenied.Inc()
		return fmt.Errorf("sysfs: write %s: %w", p, fs.ErrPermission)
	}
	if n.attr.Store == nil {
		return fmt.Errorf("sysfs: write %s: %w", p, errors.ErrUnsupported)
	}
	err = n.attr.Store(value)
	if err == nil {
		f.obsWrites.Inc()
	}
	return err
}

// ReadDir lists a directory, sorted by name.
func (f *FS) ReadDir(p string) ([]string, error) {
	n, err := f.resolve(p)
	if err != nil {
		return nil, err
	}
	if !n.isDir() {
		return nil, fmt.Errorf("sysfs: %s: not a directory", p)
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Exists reports whether a path resolves.
func (f *FS) Exists(p string) bool {
	_, err := f.resolve(p)
	return err == nil
}

// sysfs files are owned by root; "group" bits are treated like other.
func readable(c Cred, m fs.FileMode) bool {
	if c.IsRoot() {
		return m&0o444 != 0
	}
	return m&0o004 != 0
}

func writable(c Cred, m fs.FileMode) bool {
	if c.IsRoot() {
		return m&0o222 != 0
	}
	return m&0o002 != 0
}

// As returns a read-only io/fs view of the tree with the given
// credential; reads through the view hit the same permission checks as
// ReadFile. It supports fs.ReadDirFS and fs.ReadFileFS, so fs.Glob and
// fs.WalkDir work for sensor discovery.
func (f *FS) As(c Cred) fs.FS { return &view{fsys: f, cred: c} }

type view struct {
	fsys *FS
	cred Cred
}

func (v *view) Open(name string) (fs.File, error) {
	if !fs.ValidPath(name) {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrInvalid}
	}
	n, err := v.fsys.resolve(name)
	if err != nil {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	if n.isDir() {
		entries, _ := v.fsys.ReadDir(name)
		return &dirFile{node: n, entries: entries, fsys: v.fsys, path: name}, nil
	}
	if !readable(v.cred, n.attr.Mode) {
		v.fsys.obsDenied.Inc()
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrPermission}
	}
	if err := v.fsys.injectReadFault(name); err != nil {
		return nil, &fs.PathError{Op: "open", Path: name, Err: err}
	}
	content, err := n.attr.Show()
	if err != nil {
		return nil, &fs.PathError{Op: "open", Path: name, Err: err}
	}
	v.fsys.countRead(n, len(content))
	return &attrFile{node: n, Reader: bytes.NewReader([]byte(content))}, nil
}

func (v *view) ReadFile(name string) ([]byte, error) {
	if !fs.ValidPath(name) {
		return nil, &fs.PathError{Op: "read", Path: name, Err: fs.ErrInvalid}
	}
	s, err := v.fsys.ReadFile(v.cred, name)
	if err != nil {
		return nil, err
	}
	return []byte(s), nil
}

func (v *view) ReadDir(name string) ([]fs.DirEntry, error) {
	if !fs.ValidPath(name) {
		return nil, &fs.PathError{Op: "readdir", Path: name, Err: fs.ErrInvalid}
	}
	names, err := v.fsys.ReadDir(name)
	if err != nil {
		return nil, err
	}
	n, _ := v.fsys.resolve(name)
	out := make([]fs.DirEntry, 0, len(names))
	for _, childName := range names {
		out = append(out, fs.FileInfoToDirEntry(infoFor(n.children[childName])))
	}
	return out, nil
}

type nodeInfo struct {
	name string
	size int64
	mode fs.FileMode
}

func (i nodeInfo) Name() string       { return i.name }
func (i nodeInfo) Size() int64        { return i.size }
func (i nodeInfo) Mode() fs.FileMode  { return i.mode }
func (i nodeInfo) ModTime() time.Time { return time.Time{} }
func (i nodeInfo) IsDir() bool        { return i.mode.IsDir() }
func (i nodeInfo) Sys() any           { return nil }

func infoFor(n *node) fs.FileInfo {
	if n.isDir() {
		return nodeInfo{name: n.name, mode: fs.ModeDir | 0o555}
	}
	return nodeInfo{name: n.name, mode: n.attr.Mode}
}

type attrFile struct {
	node *node
	*bytes.Reader
}

// Stat reports size 0 like real sysfs attributes, whose size is unknown
// until read; it also keeps DirEntry.Info and File.Stat consistent.
func (f *attrFile) Stat() (fs.FileInfo, error) {
	return infoFor(f.node), nil
}
func (f *attrFile) Close() error { return nil }

type dirFile struct {
	node    *node
	entries []string
	offset  int
	fsys    *FS
	path    string
}

func (d *dirFile) Stat() (fs.FileInfo, error) { return infoFor(d.node), nil }
func (d *dirFile) Read([]byte) (int, error) {
	return 0, &fs.PathError{Op: "read", Path: d.path, Err: errors.New("is a directory")}
}
func (d *dirFile) Close() error { return nil }

func (d *dirFile) ReadDir(n int) ([]fs.DirEntry, error) {
	rest := d.entries[d.offset:]
	if n > 0 && len(rest) > n {
		rest = rest[:n]
	}
	out := make([]fs.DirEntry, 0, len(rest))
	for _, name := range rest {
		out = append(out, fs.FileInfoToDirEntry(infoFor(d.node.children[name])))
	}
	d.offset += len(rest)
	if n > 0 && len(out) == 0 {
		return nil, io.EOF
	}
	return out, nil
}
