package sysfs

import (
	"errors"
	"io/fs"
	"testing"
)

func TestSetReadFault(t *testing.T) {
	f, _ := buildTree(t)
	const attr = "class/hwmon/hwmon0/curr1_input"
	eagain := errors.New("resource temporarily unavailable")

	var seen []string
	f.SetReadFault(func(path string) error {
		seen = append(seen, path)
		if path == attr {
			return eagain
		}
		return nil
	})

	if _, err := f.ReadFile(Nobody, attr); !errors.Is(err, eagain) {
		t.Fatalf("faulted read err = %v, want the injected error", err)
	}
	if len(seen) != 1 || seen[0] != attr {
		t.Fatalf("hook saw paths %v, want exactly [%s]", seen, attr)
	}
	// Another attribute passes through the nil return.
	if _, err := f.ReadFile(Nobody, "class/hwmon/hwmon0/update_interval"); err != nil {
		t.Fatalf("non-matching read failed: %v", err)
	}
	// Removing the hook restores clean reads.
	f.SetReadFault(nil)
	if v, err := f.ReadFile(Nobody, attr); err != nil || v != "1234\n" {
		t.Fatalf("read after hook removal = (%q, %v)", v, err)
	}
}

func TestReadFaultRunsAfterPermissionAndExistenceChecks(t *testing.T) {
	f, _ := buildTree(t)
	calls := 0
	f.SetReadFault(func(string) error { calls++; return errors.New("EIO") })

	if _, err := f.ReadFile(Nobody, "class/hwmon/hwmon9/curr1_input"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing attr err = %v, want ErrNotExist", err)
	}
	if err := f.SetMode("class/hwmon/hwmon0/curr1_input", 0o400); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadFile(Nobody, "class/hwmon/hwmon0/curr1_input"); !errors.Is(err, fs.ErrPermission) {
		t.Fatalf("restricted attr err = %v, want ErrPermission", err)
	}
	if calls != 0 {
		t.Errorf("fault hook ran %d times on denied/missing reads; it must model a failing show(), not override ENOENT/EPERM", calls)
	}
}
