package sysfs

import (
	"os"
	"path/filepath"
	"testing"
)

func TestExport(t *testing.T) {
	f, _ := buildTree(t)
	dir := t.TempDir()
	if err := f.Export(dir, Nobody); err != nil {
		t.Fatalf("Export: %v", err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "class/hwmon/hwmon0/curr1_input"))
	if err != nil {
		t.Fatalf("read exported file: %v", err)
	}
	if string(got) != "1234\n" {
		t.Fatalf("content = %q", got)
	}
	info, err := os.Stat(filepath.Join(dir, "class/hwmon/hwmon0/curr1_input"))
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o444 {
		t.Fatalf("mode = %v, want 0444", info.Mode().Perm())
	}
}

func TestExportSkipsUnreadable(t *testing.T) {
	f, _ := buildTree(t)
	if err := f.SetMode("class/hwmon/hwmon0/curr1_input", ModeRootOnly); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := f.Export(dir, Nobody); err != nil {
		t.Fatalf("Export: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "class/hwmon/hwmon0/curr1_input")); !os.IsNotExist(err) {
		t.Fatal("restricted attribute exported for an unprivileged credential")
	}
	// Root sees it.
	rootDir := t.TempDir()
	if err := f.Export(rootDir, Root); err != nil {
		t.Fatalf("Export as root: %v", err)
	}
	if _, err := os.Stat(filepath.Join(rootDir, "class/hwmon/hwmon0/curr1_input")); err != nil {
		t.Fatalf("root export missing file: %v", err)
	}
}

func TestExportValidation(t *testing.T) {
	f, _ := buildTree(t)
	if err := f.Export("", Nobody); err == nil {
		t.Fatal("empty directory accepted")
	}
}
