package sysfs

import (
	"io/fs"
	"path"
	"strings"
	"testing"
)

// fuzzTree builds a small tree shaped like the hwmon layout the
// discovery code walks, with one attribute of each permission class.
func fuzzTree(t interface{ Fatal(args ...any) }) *FS {
	f := New()
	show := func() (string, error) { return "42\n", nil }
	store := func(string) error { return nil }
	attrs := map[string]Attr{
		"class/hwmon/hwmon0/curr1_input":     {Mode: ModeRO, Show: show},
		"class/hwmon/hwmon0/name":            {Mode: ModeRO, Show: show},
		"class/hwmon/hwmon0/update_interval": {Mode: ModeRW, Show: show, Store: store},
		"class/hwmon/hwmon0/device/secret":   {Mode: ModeRootOnly, Show: show},
	}
	for p, a := range attrs {
		if err := f.AddAttr(p, a); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

// FuzzPathResolution feeds arbitrary path strings through every
// path-taking entry point and checks the tree's safety invariants: no
// panics, no path ever escapes the root, Exists agrees with ReadFile /
// ReadDir, and the io/fs view never serves content an unprivileged
// ReadFile would deny.
func FuzzPathResolution(f *testing.F) {
	f.Add("class/hwmon/hwmon0/curr1_input")
	f.Add("/class/hwmon/hwmon0/curr1_input")
	f.Add("class/hwmon/hwmon0/../hwmon0/name")
	f.Add("../../../etc/passwd")
	f.Add("class//hwmon///hwmon0")
	f.Add(".")
	f.Add("")
	f.Add("class/hwmon/hwmon0/curr1_input/nested")
	f.Add("class/hwmon/hwmon0/device/secret")
	f.Add(strings.Repeat("a/", 100))
	f.Fuzz(func(t *testing.T, p string) {
		fsys := fuzzTree(t)

		content, readErr := fsys.ReadFile(Nobody, p)
		exists := fsys.Exists(p)
		if readErr == nil && !exists {
			t.Fatalf("ReadFile(%q) succeeded but Exists is false", p)
		}
		if readErr == nil && content != "42\n" {
			t.Fatalf("ReadFile(%q) = %q, want the attribute content", p, content)
		}
		// Escaping paths must never resolve anywhere.
		if escapesRoot(p) && exists {
			t.Fatalf("path %q escapes the root but resolves", p)
		}

		names, dirErr := fsys.ReadDir(p)
		if dirErr == nil {
			if !exists {
				t.Fatalf("ReadDir(%q) succeeded but Exists is false", p)
			}
			if readErr == nil {
				t.Fatalf("path %q reads as both a file and a directory", p)
			}
			for _, name := range names {
				if name == "" || strings.ContainsAny(name, "/") {
					t.Fatalf("ReadDir(%q) returned malformed entry %q", p, name)
				}
			}
		}

		// The root-only attribute must stay invisible to the attacker
		// through both APIs; root must still read it.
		if readErr == nil && strings.Contains(p, "secret") {
			t.Fatalf("unprivileged read of root-only attribute via %q", p)
		}
		view := fsys.As(Nobody)
		if fs.ValidPath(p) {
			data, verr := fs.ReadFile(view.(fs.ReadFileFS), p)
			if (verr == nil) != (readErr == nil) {
				t.Fatalf("view/ReadFile disagree for %q: view err %v, direct err %v", p, verr, readErr)
			}
			if verr == nil && string(data) != content {
				t.Fatalf("view content %q != direct content %q", data, content)
			}
		}

		// Writes through arbitrary paths must be denied for the attacker
		// everywhere: either the path is invalid or permission is denied,
		// never a successful store.
		if err := fsys.WriteFile(Nobody, p, "1"); err == nil {
			t.Fatalf("unprivileged write of %q succeeded", p)
		}
	})
}

// escapesRoot reports whether the path climbs above the tree root after
// normalization: its cleaned form starts with a literal ".." component.
func escapesRoot(p string) bool {
	clean := path.Clean(strings.TrimLeft(p, "/"))
	return clean == ".." || strings.HasPrefix(clean, "../")
}

// FuzzAddAttrResolve checks registration/lookup consistency: when a
// fuzzed path is accepted by AddAttr, the attribute must be readable at
// that same path as root, and directory listing of its parent must show
// it exactly once.
func FuzzAddAttrResolve(f *testing.F) {
	f.Add("devices/platform/sensor/in0_input")
	f.Add("a")
	f.Add("/leading/slash/attr")
	f.Add("trailing/slash/")
	f.Add("dot/./segment")
	f.Add("dotdot/../escape")
	f.Add("")
	f.Fuzz(func(t *testing.T, p string) {
		fsys := New()
		err := fsys.AddAttr(p, Attr{Mode: ModeRO, Show: func() (string, error) { return "v", nil }})
		if err != nil {
			return
		}
		got, rerr := fsys.ReadFile(Root, p)
		if rerr != nil {
			t.Fatalf("AddAttr(%q) accepted but ReadFile failed: %v", p, rerr)
		}
		if got != "v" {
			t.Fatalf("ReadFile(%q) = %q, want %q", p, got, "v")
		}
		// Re-registering the same path must now fail with ErrExist-like
		// behaviour rather than silently replacing the attribute.
		if err := fsys.AddAttr(p, Attr{Mode: ModeRO, Show: func() (string, error) { return "other", nil }}); err == nil {
			t.Fatalf("duplicate AddAttr(%q) accepted", p)
		}
		if got, _ := fsys.ReadFile(Root, p); got != "v" {
			t.Fatalf("duplicate AddAttr(%q) clobbered the attribute: %q", p, got)
		}
	})
}

// FuzzWriteFileValue pushes arbitrary values through a root write to a
// writable attribute and checks the store callback sees exactly the
// value, with no interpretation by the tree.
func FuzzWriteFileValue(f *testing.F) {
	f.Add("2000")
	f.Add("")
	f.Add("  35000\n")
	f.Add("\x00\xff binary")
	f.Fuzz(func(t *testing.T, value string) {
		fsys := New()
		var stored []string
		err := fsys.AddAttr("hwmon/hwmon0/update_interval", Attr{
			Mode: ModeRW,
			Show: func() (string, error) { return "35000\n", nil },
			Store: func(v string) error {
				stored = append(stored, v)
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := fsys.WriteFile(Root, "hwmon/hwmon0/update_interval", value); err != nil {
			t.Fatalf("root write rejected: %v", err)
		}
		if len(stored) != 1 || stored[0] != value {
			t.Fatalf("store saw %q, want exactly [%q]", stored, value)
		}
		if err := fsys.WriteFile(Nobody, "hwmon/hwmon0/update_interval", value); err == nil {
			t.Fatal("unprivileged write accepted")
		}
		if len(stored) != 1 {
			t.Fatal("denied write still reached the store callback")
		}
	})
}
