package sysfs

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// Export writes a snapshot of the tree into dir on the real filesystem,
// reading every attribute as the given credential; attributes the
// credential cannot read are skipped. File modes mirror the attribute
// modes. Useful for inspecting what a simulated board's hwmon layout
// looks like with ordinary shell tools.
func (f *FS) Export(dir string, cred Cred) error {
	if dir == "" {
		return fmt.Errorf("sysfs: export needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return f.exportNode(f.root, dir, cred)
}

func (f *FS) exportNode(n *node, dir string, cred Cred) error {
	for name, child := range n.children {
		target := filepath.Join(dir, name)
		if child.isDir() {
			if err := os.MkdirAll(target, 0o755); err != nil {
				return err
			}
			if err := f.exportNode(child, target, cred); err != nil {
				return err
			}
			continue
		}
		if !readable(cred, child.attr.Mode) {
			continue
		}
		content, err := child.attr.Show()
		if err != nil {
			return fmt.Errorf("sysfs: export %s: %w", target, err)
		}
		// Snapshot files must stay writable long enough to be written;
		// apply the attribute mode afterwards.
		if err := os.WriteFile(target, []byte(content), 0o644); err != nil {
			return err
		}
		if err := os.Chmod(target, fs.FileMode(child.attr.Mode.Perm())); err != nil {
			return err
		}
	}
	return nil
}
