package sysfs

import (
	"errors"
	"fmt"
	"io/fs"
	"testing"
	"testing/fstest"
)

// buildTree returns a tree with one RO and one RW attribute plus the
// value cell behind the RW attribute.
func buildTree(t *testing.T) (*FS, *string) {
	t.Helper()
	f := New()
	val := "35"
	if err := f.AddAttr("class/hwmon/hwmon0/curr1_input", Attr{
		Mode: ModeRO,
		Show: func() (string, error) { return "1234\n", nil },
	}); err != nil {
		t.Fatalf("AddAttr: %v", err)
	}
	if err := f.AddAttr("class/hwmon/hwmon0/update_interval", Attr{
		Mode:  ModeRW,
		Show:  func() (string, error) { return val, nil },
		Store: func(s string) error { val = s; return nil },
	}); err != nil {
		t.Fatalf("AddAttr: %v", err)
	}
	return f, &val
}

func TestCreds(t *testing.T) {
	if !Root.IsRoot() || Nobody.IsRoot() {
		t.Fatal("credential helpers wrong")
	}
}

func TestAddAttrValidation(t *testing.T) {
	f := New()
	if err := f.AddAttr("a/b", Attr{Mode: ModeRO}); err == nil {
		t.Fatal("missing Show accepted")
	}
	if err := f.AddAttr("a/b", Attr{Mode: ModeRW, Show: func() (string, error) { return "", nil }}); err == nil {
		t.Fatal("writable without Store accepted")
	}
	ok := Attr{Mode: ModeRO, Show: func() (string, error) { return "", nil }}
	if err := f.AddAttr("a/b", ok); err != nil {
		t.Fatalf("AddAttr: %v", err)
	}
	if err := f.AddAttr("a/b", ok); !errors.Is(err, fs.ErrExist) {
		t.Fatalf("duplicate err = %v, want ErrExist", err)
	}
	if err := f.AddAttr("/", ok); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := f.AddAttr("../escape", ok); err == nil {
		t.Fatal("escaping path accepted")
	}
}

func TestUnprivilegedRead(t *testing.T) {
	f, _ := buildTree(t)
	got, err := f.ReadFile(Nobody, "class/hwmon/hwmon0/curr1_input")
	if err != nil {
		t.Fatalf("ReadFile as nobody: %v", err)
	}
	if got != "1234\n" {
		t.Fatalf("content = %q", got)
	}
	// Leading slash should work too.
	if _, err := f.ReadFile(Nobody, "/class/hwmon/hwmon0/curr1_input"); err != nil {
		t.Fatalf("absolute path read: %v", err)
	}
}

func TestWritePermissions(t *testing.T) {
	f, val := buildTree(t)
	p := "class/hwmon/hwmon0/update_interval"
	if err := f.WriteFile(Nobody, p, "2"); !errors.Is(err, fs.ErrPermission) {
		t.Fatalf("unprivileged write err = %v, want ErrPermission", err)
	}
	if *val != "35" {
		t.Fatal("unprivileged write took effect")
	}
	if err := f.WriteFile(Root, p, "2"); err != nil {
		t.Fatalf("root write: %v", err)
	}
	if *val != "2" {
		t.Fatal("root write lost")
	}
	// RO file rejects writes even from root.
	if err := f.WriteFile(Root, "class/hwmon/hwmon0/curr1_input", "0"); !errors.Is(err, fs.ErrPermission) {
		t.Fatalf("write RO err = %v, want ErrPermission", err)
	}
}

func TestSetModeMitigation(t *testing.T) {
	f, _ := buildTree(t)
	p := "class/hwmon/hwmon0/curr1_input"
	if err := f.SetMode(p, ModeRootOnly); err != nil {
		t.Fatalf("SetMode: %v", err)
	}
	if _, err := f.ReadFile(Nobody, p); !errors.Is(err, fs.ErrPermission) {
		t.Fatalf("nobody read after mitigation err = %v, want ErrPermission", err)
	}
	if _, err := f.ReadFile(Root, p); err != nil {
		t.Fatalf("root read after mitigation: %v", err)
	}
	if err := f.SetMode("class/hwmon", ModeRO); err == nil {
		t.Fatal("SetMode on directory accepted")
	}
	if err := f.SetMode("no/such/file", ModeRO); err == nil {
		t.Fatal("SetMode on missing file accepted")
	}
	// Making an attribute writable without a Store must be refused.
	if err := f.SetMode(p, ModeRW); err == nil {
		t.Fatal("SetMode to writable without Store accepted")
	}
}

func TestNotExistAndDirErrors(t *testing.T) {
	f, _ := buildTree(t)
	if _, err := f.ReadFile(Nobody, "class/hwmon/hwmon9/curr1_input"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing read err = %v, want ErrNotExist", err)
	}
	if _, err := f.ReadFile(Nobody, "class/hwmon"); err == nil {
		t.Fatal("reading a directory accepted")
	}
	if err := f.WriteFile(Root, "class/hwmon", "x"); err == nil {
		t.Fatal("writing a directory accepted")
	}
	if _, err := f.ReadDir("class/hwmon/hwmon0/curr1_input"); err == nil {
		t.Fatal("ReadDir on file accepted")
	}
}

func TestReadDirSorted(t *testing.T) {
	f, _ := buildTree(t)
	names, err := f.ReadDir("class/hwmon/hwmon0")
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(names) != 2 || names[0] != "curr1_input" || names[1] != "update_interval" {
		t.Fatalf("names = %v", names)
	}
}

func TestExists(t *testing.T) {
	f, _ := buildTree(t)
	if !f.Exists("class/hwmon/hwmon0") || !f.Exists("class/hwmon/hwmon0/curr1_input") {
		t.Fatal("Exists false negative")
	}
	if f.Exists("nope") {
		t.Fatal("Exists false positive")
	}
}

func TestMkdirAllOverFile(t *testing.T) {
	f, _ := buildTree(t)
	if err := f.MkdirAll("class/hwmon/hwmon0/curr1_input/sub"); err == nil {
		t.Fatal("MkdirAll through a file accepted")
	}
	// Idempotent on directories.
	if err := f.MkdirAll("class/hwmon"); err != nil {
		t.Fatalf("MkdirAll existing: %v", err)
	}
}

func TestFSViewConformance(t *testing.T) {
	f, _ := buildTree(t)
	fsys := f.As(Nobody)
	if err := fstest.TestFS(fsys,
		"class/hwmon/hwmon0/curr1_input",
		"class/hwmon/hwmon0/update_interval"); err != nil {
		t.Fatalf("TestFS: %v", err)
	}
}

func TestFSViewGlob(t *testing.T) {
	f := New()
	for i := 0; i < 3; i++ {
		err := f.AddAttr(fmt.Sprintf("class/hwmon/hwmon%d/curr1_input", i), Attr{
			Mode: ModeRO, Show: func() (string, error) { return "1", nil },
		})
		if err != nil {
			t.Fatalf("AddAttr: %v", err)
		}
	}
	matches, err := fs.Glob(f.As(Nobody), "class/hwmon/hwmon*/curr1_input")
	if err != nil {
		t.Fatalf("Glob: %v", err)
	}
	if len(matches) != 3 {
		t.Fatalf("Glob matches = %v", matches)
	}
}

func TestFSViewPermission(t *testing.T) {
	f, _ := buildTree(t)
	if err := f.SetMode("class/hwmon/hwmon0/curr1_input", ModeRootOnly); err != nil {
		t.Fatalf("SetMode: %v", err)
	}
	if _, err := fs.ReadFile(f.As(Nobody), "class/hwmon/hwmon0/curr1_input"); !errors.Is(err, fs.ErrPermission) {
		t.Fatalf("view read err = %v, want ErrPermission", err)
	}
	if _, err := fs.ReadFile(f.As(Root), "class/hwmon/hwmon0/curr1_input"); err != nil {
		t.Fatalf("root view read: %v", err)
	}
}

func TestViewShowErrorPropagates(t *testing.T) {
	f := New()
	boom := errors.New("sensor offline")
	if err := f.AddAttr("a/bad", Attr{Mode: ModeRO, Show: func() (string, error) { return "", boom }}); err != nil {
		t.Fatalf("AddAttr: %v", err)
	}
	if _, err := f.ReadFile(Nobody, "a/bad"); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want sensor offline", err)
	}
	if _, err := f.As(Nobody).Open("a/bad"); err == nil {
		t.Fatal("Open on failing Show accepted")
	}
}

func TestLiveAttrReflectsState(t *testing.T) {
	f := New()
	n := 0
	if err := f.AddAttr("live", Attr{Mode: ModeRO, Show: func() (string, error) {
		n++
		return fmt.Sprintf("%d", n), nil
	}}); err != nil {
		t.Fatalf("AddAttr: %v", err)
	}
	a, _ := f.ReadFile(Nobody, "live")
	b, _ := f.ReadFile(Nobody, "live")
	if a == b {
		t.Fatalf("attribute not live: %q == %q", a, b)
	}
}
