// Package sim is the fixed-step discrete-time simulation kernel under
// every simulated hardware component in this repository.
//
// The board, its power delivery network, the victim circuits, and the
// INA226 sensors all advance in lock step: the engine calls Step(now, dt)
// on every registered component once per tick, in registration order
// (producers of current are registered before consumers such as sensors,
// so a sensor always observes the rail state of the current tick).
//
// The kernel also owns deterministic random-number streams. Components
// must never use the global math/rand state; they request a named stream
// from the engine so that an experiment's outcome depends only on the
// root seed and the component names, not on registration order or
// goroutine scheduling.
package sim

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"

	"repro/internal/obs"
)

// Steppable is a simulated component advanced once per engine tick.
type Steppable interface {
	// Step advances the component from now to now+dt. The engine
	// guarantees monotonically increasing now values and a constant dt.
	Step(now time.Duration, dt time.Duration)
}

// StepFunc adapts a plain function to the Steppable interface.
type StepFunc func(now, dt time.Duration)

// Step calls f(now, dt).
func (f StepFunc) Step(now, dt time.Duration) { f(now, dt) }

// Engine is a fixed-step simulation engine.
//
// The zero value is not usable; construct one with NewEngine.
type Engine struct {
	dt      time.Duration
	now     time.Duration
	seed    int64
	parts   []Steppable
	names   map[string]bool
	streams map[string]*rand.Rand

	// Observability. Counters aggregate across every live engine (the
	// fingerprinting pipeline runs many boards in parallel); the ratio
	// gauge is per-Run, last writer wins. Per-component step latencies
	// are sampled every stepSampleEvery ticks so the instrumentation
	// stays off the hot path.
	tickCount   uint64
	wallInRun   time.Duration
	simInRun    time.Duration
	obsTicks    *obs.Counter
	obsSimNs    *obs.Counter
	obsWallNs   *obs.Counter
	obsRatio    *obs.Gauge
	obsTickNs   *obs.Histogram
	obsStepHist []*obs.Histogram // parallel to parts
}

// stepSampleEvery is the tick sampling period for per-component step
// latency histograms: one timed tick in every 128 keeps the overhead of
// the extra clock reads around a percent while still collecting
// thousands of samples per multi-second experiment.
const stepSampleEvery = 128

// DefaultStep is the engine resolution used by the experiments: 100 µs,
// fine enough to resolve the 2 ms minimum INA226 conversion window and
// coarse enough to simulate multi-second traces quickly.
const DefaultStep = 100 * time.Microsecond

// NewEngine returns an engine with the given tick size and root seed.
func NewEngine(dt time.Duration, seed int64) (*Engine, error) {
	if dt <= 0 {
		return nil, errors.New("sim: non-positive step")
	}
	return &Engine{
		dt:        dt,
		seed:      seed,
		names:     make(map[string]bool),
		streams:   make(map[string]*rand.Rand),
		obsTicks:  obs.C("sim.ticks"),
		obsSimNs:  obs.C("sim.simtime_ns"),
		obsWallNs: obs.C("sim.walltime_ns"),
		obsRatio:  obs.G("sim.ratio"),
		obsTickNs: obs.H("sim.tick_ns"),
	}, nil
}

// MustNewEngine is NewEngine for static configurations; it panics on error.
func MustNewEngine(dt time.Duration, seed int64) *Engine {
	e, err := NewEngine(dt, seed)
	if err != nil {
		panic(err)
	}
	return e
}

// Dt returns the engine tick size.
func (e *Engine) Dt() time.Duration { return e.dt }

// Now returns the current simulated time.
func (e *Engine) Now() time.Duration { return e.now }

// Seed returns the root seed the engine was created with.
func (e *Engine) Seed() int64 { return e.seed }

// Register adds a component to the step list under a unique name.
// Registration order is step order within a tick.
func (e *Engine) Register(name string, s Steppable) error {
	if s == nil {
		return errors.New("sim: nil component")
	}
	if e.names[name] {
		return fmt.Errorf("sim: duplicate component %q", name)
	}
	e.names[name] = true
	e.parts = append(e.parts, s)
	e.obsStepHist = append(e.obsStepHist, obs.H("sim.step."+name))
	return nil
}

// MustRegister is Register for static wiring; it panics on error.
func (e *Engine) MustRegister(name string, s Steppable) {
	if err := e.Register(name, s); err != nil {
		panic(err)
	}
}

// Stream returns the deterministic random stream for the given name,
// creating it on first use. The stream seed mixes the engine's root seed
// with an FNV-1a hash of the name, so distinct components get decorrelated
// streams while the whole simulation stays a pure function of the root
// seed.
func (e *Engine) Stream(name string) *rand.Rand {
	if r, ok := e.streams[name]; ok {
		return r
	}
	h := fnv.New64a()
	h.Write([]byte(name))
	r := rand.New(rand.NewSource(e.seed ^ int64(h.Sum64())))
	e.streams[name] = r
	return r
}

// Tick advances the simulation by one step.
func (e *Engine) Tick() {
	e.tickCount++
	if e.tickCount%stepSampleEvery == 0 {
		e.tickSampled()
	} else {
		for _, p := range e.parts {
			p.Step(e.now, e.dt)
		}
	}
	e.now += e.dt
	e.obsTicks.Inc()
}

// tickSampled is Tick with per-component wall-clock timing; it runs on
// one tick in every stepSampleEvery. One clock read per component
// boundary: component i is charged the interval between boundary i and
// i+1.
func (e *Engine) tickSampled() {
	tickStart := time.Now()
	prev := tickStart
	for i, p := range e.parts {
		p.Step(e.now, e.dt)
		now := time.Now()
		e.obsStepHist[i].Observe(float64(now.Sub(prev).Nanoseconds()))
		prev = now
	}
	e.obsTickNs.Observe(float64(prev.Sub(tickStart).Nanoseconds()))
}

// account records a completed Run/RunUntil stretch in the obs layer:
// cumulative sim and wall nanoseconds (global counters) and this
// engine's lifetime sim-time/wall-time ratio (gauge).
func (e *Engine) account(sim, wall time.Duration) {
	if sim <= 0 {
		return
	}
	e.simInRun += sim
	e.wallInRun += wall
	e.obsSimNs.Add(sim.Nanoseconds())
	e.obsWallNs.Add(wall.Nanoseconds())
	if e.wallInRun > 0 {
		e.obsRatio.Set(float64(e.simInRun) / float64(e.wallInRun))
	}
}

// Run advances the simulation by d (rounded up to a whole number of
// ticks) and returns the number of ticks executed.
func (e *Engine) Run(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	n := int((d + e.dt - 1) / e.dt)
	start := time.Now()
	for i := 0; i < n; i++ {
		e.Tick()
	}
	e.account(time.Duration(n)*e.dt, time.Since(start))
	return n
}

// RunUntil advances the simulation until the predicate returns true or
// the budget elapses, whichever comes first. It reports whether the
// predicate fired.
func (e *Engine) RunUntil(pred func() bool, budget time.Duration) bool {
	start, simStart := time.Now(), e.now
	defer func() { e.account(e.now-simStart, time.Since(start)) }()
	deadline := e.now + budget
	for e.now < deadline {
		if pred() {
			return true
		}
		e.Tick()
	}
	return pred()
}
