package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(0, 1); err == nil {
		t.Fatal("zero step accepted")
	}
	if _, err := NewEngine(-time.Millisecond, 1); err == nil {
		t.Fatal("negative step accepted")
	}
	e, err := NewEngine(time.Millisecond, 42)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if e.Dt() != time.Millisecond || e.Seed() != 42 || e.Now() != 0 {
		t.Fatalf("engine state = dt %v seed %v now %v", e.Dt(), e.Seed(), e.Now())
	}
}

func TestMustNewEnginePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewEngine(0) did not panic")
		}
	}()
	MustNewEngine(0, 1)
}

func TestTickAdvancesTime(t *testing.T) {
	e := MustNewEngine(time.Millisecond, 0)
	e.Tick()
	e.Tick()
	if e.Now() != 2*time.Millisecond {
		t.Fatalf("Now = %v, want 2ms", e.Now())
	}
}

func TestStepOrderAndArguments(t *testing.T) {
	e := MustNewEngine(time.Millisecond, 0)
	var order []string
	var nows []time.Duration
	e.MustRegister("a", StepFunc(func(now, dt time.Duration) {
		order = append(order, "a")
		nows = append(nows, now)
		if dt != time.Millisecond {
			t.Fatalf("dt = %v", dt)
		}
	}))
	e.MustRegister("b", StepFunc(func(now, dt time.Duration) {
		order = append(order, "b")
	}))
	e.Tick()
	e.Tick()
	if len(order) != 4 || order[0] != "a" || order[1] != "b" || order[2] != "a" {
		t.Fatalf("order = %v", order)
	}
	if nows[0] != 0 || nows[1] != time.Millisecond {
		t.Fatalf("nows = %v", nows)
	}
}

func TestRegisterErrors(t *testing.T) {
	e := MustNewEngine(time.Millisecond, 0)
	if err := e.Register("x", nil); err == nil {
		t.Fatal("nil component accepted")
	}
	e.MustRegister("x", StepFunc(func(now, dt time.Duration) {}))
	if err := e.Register("x", StepFunc(func(now, dt time.Duration) {})); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestMustRegisterPanics(t *testing.T) {
	e := MustNewEngine(time.Millisecond, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("MustRegister(nil) did not panic")
		}
	}()
	e.MustRegister("x", nil)
}

func TestRunRoundsUp(t *testing.T) {
	e := MustNewEngine(3*time.Millisecond, 0)
	n := e.Run(10 * time.Millisecond) // 10/3 -> 4 ticks
	if n != 4 {
		t.Fatalf("Run ticks = %d, want 4", n)
	}
	if e.Now() != 12*time.Millisecond {
		t.Fatalf("Now = %v, want 12ms", e.Now())
	}
	if e.Run(0) != 0 || e.Run(-time.Second) != 0 {
		t.Fatal("Run with non-positive duration should be a no-op")
	}
}

func TestRunUntil(t *testing.T) {
	e := MustNewEngine(time.Millisecond, 0)
	count := 0
	e.MustRegister("c", StepFunc(func(now, dt time.Duration) { count++ }))
	ok := e.RunUntil(func() bool { return count >= 5 }, time.Second)
	if !ok {
		t.Fatal("RunUntil did not fire")
	}
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	ok = e.RunUntil(func() bool { return false }, 10*time.Millisecond)
	if ok {
		t.Fatal("RunUntil fired on constant-false predicate")
	}
}

func TestStreamsDeterministic(t *testing.T) {
	e1 := MustNewEngine(time.Millisecond, 7)
	e2 := MustNewEngine(time.Millisecond, 7)
	for i := 0; i < 100; i++ {
		if e1.Stream("noise").Float64() != e2.Stream("noise").Float64() {
			t.Fatal("same seed+name produced different streams")
		}
	}
}

func TestStreamsIndependentByName(t *testing.T) {
	e := MustNewEngine(time.Millisecond, 7)
	a := e.Stream("a").Float64()
	b := e.Stream("b").Float64()
	if a == b {
		t.Fatal("distinct names produced identical first draw (suspicious)")
	}
	// Same name returns the same stream object (stateful).
	s1 := e.Stream("a")
	s2 := e.Stream("a")
	if s1 != s2 {
		t.Fatal("Stream did not cache per name")
	}
}

// TestStreamsOrderIndependent pins the determinism contract the whole
// simulation depends on: a named stream's draws are a function of
// (seed, name) only, so the order in which components register — and
// the order in which streams are first requested — must not change any
// component's outcome.
func TestStreamsOrderIndependent(t *testing.T) {
	const seed = 99
	names := []string{"pdn/noise", "ina226/quant", "dpu/jitter"}

	// run builds an engine, registers the named components in the given
	// order (each drawing from its own stream every tick), and returns
	// each component's draw sequence.
	run := func(order []string) map[string][]float64 {
		e := MustNewEngine(time.Millisecond, seed)
		out := map[string][]float64{}
		for _, n := range order {
			n := n
			e.MustRegister(n, StepFunc(func(now, dt time.Duration) {
				out[n] = append(out[n], e.Stream(n).Float64())
			}))
		}
		e.Run(20 * time.Millisecond)
		return out
	}

	a := run([]string{names[0], names[1], names[2]})
	b := run([]string{names[2], names[0], names[1]})
	for _, n := range names {
		if len(a[n]) == 0 || len(a[n]) != len(b[n]) {
			t.Fatalf("%s: draw counts differ: %d vs %d", n, len(a[n]), len(b[n]))
		}
		for i := range a[n] {
			if a[n][i] != b[n][i] {
				t.Fatalf("%s: draw %d differs across registration orders: %v vs %v",
					n, i, a[n][i], b[n][i])
			}
		}
	}

	// First-request order must not matter either: prefetching every
	// stream in reverse before any tick leaves the sequences unchanged.
	e := MustNewEngine(time.Millisecond, seed)
	for i := len(names) - 1; i >= 0; i-- {
		e.Stream(names[i])
	}
	for _, n := range names {
		if got, want := e.Stream(n).Float64(), a[n][0]; got != want {
			t.Fatalf("%s: prefetch changed first draw: %v vs %v", n, got, want)
		}
	}
}

func TestStreamsVaryWithSeed(t *testing.T) {
	f := func(seed int64) bool {
		if seed == seed+1 { // overflow guard (never true, keeps vet happy)
			return true
		}
		a := MustNewEngine(time.Millisecond, seed).Stream("x").Int63()
		b := MustNewEngine(time.Millisecond, seed+1).Stream("x").Int63()
		return a != b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Run(d) leaves Now at a whole multiple of dt and never less
// than d.
func TestRunProperty(t *testing.T) {
	f := func(ms uint16) bool {
		e := MustNewEngine(700*time.Microsecond, 0)
		d := time.Duration(ms) * time.Millisecond
		e.Run(d)
		if e.Now() < d {
			return false
		}
		return e.Now()%e.Dt() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
