// Package features converts side-channel traces into the fixed-width
// vectors the random-forest classifier consumes: an average-pooled
// resampling of the trace (its temporal shape) plus summary statistics
// (its amplitude distribution). The combination captures both the
// per-model current *patterns* of Fig. 3 and the mean-level differences
// between models.
package features

import (
	"errors"
	"fmt"

	"repro/internal/stats"
	"repro/internal/trace"
)

// DefaultBins is the default temporal resolution of a feature vector.
const DefaultBins = 64

// summaryWidth is the number of appended summary statistics.
const summaryWidth = 6

// Width returns the feature-vector width for a given bin count.
func Width(bins int) int { return bins + summaryWidth }

// FromTrace converts one trace into a feature vector of Width(bins)
// values: bins average-pooled samples followed by mean, standard
// deviation, min, max, and the quartiles Q1 and Q3. NaN gaps are
// excluded from the statistics; a trace whose samples were all lost
// degrades to the all-zero vector instead of failing, so one dead
// capture cannot poison a whole dataset.
func FromTrace(t *trace.Trace, bins int) ([]float64, error) {
	vec, err := fromTrace(t, bins, Width(bins))
	if err != nil {
		return nil, err
	}
	return vec[:Width(bins)], nil
}

// fromTrace builds the FromTrace vector in a single allocation of
// width total (total >= Width(bins)), leaving any extra tail zeroed for
// the caller to fill. The resampled bins land in vec[:bins] via
// ResampleInto, so no intermediate slice is allocated.
func fromTrace(t *trace.Trace, bins, total int) ([]float64, error) {
	if t == nil {
		return nil, errors.New("features: nil trace")
	}
	if bins <= 0 {
		return nil, errors.New("trace: non-positive bin count")
	}
	vec := make([]float64, total)
	if err := t.ResampleInto(vec[:bins]); err != nil {
		return nil, err
	}
	finite := t.Finite()
	if len(finite) == 0 {
		return vec, nil // all samples lost: zero statistics
	}
	mean, err := stats.Mean(finite)
	if err != nil {
		return nil, err
	}
	std, err := stats.StdDev(finite)
	if err != nil {
		return nil, err
	}
	sum, err := stats.Summary(finite)
	if err != nil {
		return nil, err
	}
	vec[bins] = mean
	vec[bins+1] = std
	vec[bins+2] = sum.Min
	vec[bins+3] = sum.Max
	vec[bins+4] = sum.Q1
	vec[bins+5] = sum.Q3
	return vec, nil
}

// WidthWithSpectrum returns the feature width when spectral bins are
// appended.
func WidthWithSpectrum(bins, spectralBins int) int {
	return Width(bins) + spectralBins
}

// FromTraceWithSpectrum extends FromTrace with the magnitudes of the
// first spectralBins DFT coefficients — a phase-invariant encoding of
// the victim's loop periodicity. spectralBins of zero degenerates to
// FromTrace. The vector is always WidthWithSpectrum wide: if Spectrum
// clamps the bin count at the trace's Nyquist limit, the missing tail
// stays zero so short traces keep the dataset width consistent.
func FromTraceWithSpectrum(t *trace.Trace, bins, spectralBins int) ([]float64, error) {
	if spectralBins < 0 {
		return nil, errors.New("features: negative spectral bins")
	}
	vec, err := fromTrace(t, bins, WidthWithSpectrum(bins, spectralBins))
	if err != nil {
		return nil, err
	}
	if spectralBins == 0 {
		return vec, nil
	}
	mags, err := t.Spectrum(spectralBins)
	if err != nil {
		return nil, err
	}
	copy(vec[Width(bins):], mags)
	return vec, nil
}

// Dataset is a labelled feature matrix.
type Dataset struct {
	// X holds one feature vector per sample.
	X [][]float64
	// Y holds the class index of each sample.
	Y []int
	// Classes maps class indices to names.
	Classes []string
}

// Add appends a sample with the given class name, interning the class.
func (d *Dataset) Add(x []float64, class string) {
	for i, c := range d.Classes {
		if c == class {
			d.X = append(d.X, x)
			d.Y = append(d.Y, i)
			return
		}
	}
	d.Classes = append(d.Classes, class)
	d.X = append(d.X, x)
	d.Y = append(d.Y, len(d.Classes)-1)
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.X) }

// Validate checks internal consistency.
func (d *Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("features: %d vectors vs %d labels", len(d.X), len(d.Y))
	}
	if len(d.X) == 0 {
		return errors.New("features: empty dataset")
	}
	w := len(d.X[0])
	for i, x := range d.X {
		if len(x) != w {
			return fmt.Errorf("features: sample %d width %d, want %d", i, len(x), w)
		}
	}
	for i, y := range d.Y {
		if y < 0 || y >= len(d.Classes) {
			return fmt.Errorf("features: label %d of sample %d out of range", y, i)
		}
	}
	return nil
}
