// Package features converts side-channel traces into the fixed-width
// vectors the random-forest classifier consumes: an average-pooled
// resampling of the trace (its temporal shape) plus summary statistics
// (its amplitude distribution). The combination captures both the
// per-model current *patterns* of Fig. 3 and the mean-level differences
// between models.
package features

import (
	"errors"
	"fmt"

	"repro/internal/stats"
	"repro/internal/trace"
)

// DefaultBins is the default temporal resolution of a feature vector.
const DefaultBins = 64

// summaryWidth is the number of appended summary statistics.
const summaryWidth = 6

// Width returns the feature-vector width for a given bin count.
func Width(bins int) int { return bins + summaryWidth }

// FromTrace converts one trace into a feature vector of Width(bins)
// values: bins average-pooled samples followed by mean, standard
// deviation, min, max, and the quartiles Q1 and Q3. NaN gaps are
// excluded from the statistics; a trace whose samples were all lost
// degrades to the all-zero vector instead of failing, so one dead
// capture cannot poison a whole dataset.
func FromTrace(t *trace.Trace, bins int) ([]float64, error) {
	if t == nil {
		return nil, errors.New("features: nil trace")
	}
	vec, err := t.Resample(bins)
	if err != nil {
		return nil, err
	}
	finite := t.Finite()
	if len(finite) == 0 {
		return append(vec, make([]float64, summaryWidth)...), nil
	}
	mean, err := stats.Mean(finite)
	if err != nil {
		return nil, err
	}
	std, err := stats.StdDev(finite)
	if err != nil {
		return nil, err
	}
	sum, err := stats.Summary(finite)
	if err != nil {
		return nil, err
	}
	return append(vec, mean, std, sum.Min, sum.Max, sum.Q1, sum.Q3), nil
}

// WidthWithSpectrum returns the feature width when spectral bins are
// appended.
func WidthWithSpectrum(bins, spectralBins int) int {
	return Width(bins) + spectralBins
}

// FromTraceWithSpectrum extends FromTrace with the magnitudes of the
// first spectralBins DFT coefficients — a phase-invariant encoding of
// the victim's loop periodicity. spectralBins of zero degenerates to
// FromTrace.
func FromTraceWithSpectrum(t *trace.Trace, bins, spectralBins int) ([]float64, error) {
	vec, err := FromTrace(t, bins)
	if err != nil {
		return nil, err
	}
	if spectralBins == 0 {
		return vec, nil
	}
	mags, err := t.Spectrum(spectralBins)
	if err != nil {
		return nil, err
	}
	return append(vec, mags...), nil
}

// Dataset is a labelled feature matrix.
type Dataset struct {
	// X holds one feature vector per sample.
	X [][]float64
	// Y holds the class index of each sample.
	Y []int
	// Classes maps class indices to names.
	Classes []string
}

// Add appends a sample with the given class name, interning the class.
func (d *Dataset) Add(x []float64, class string) {
	for i, c := range d.Classes {
		if c == class {
			d.X = append(d.X, x)
			d.Y = append(d.Y, i)
			return
		}
	}
	d.Classes = append(d.Classes, class)
	d.X = append(d.X, x)
	d.Y = append(d.Y, len(d.Classes)-1)
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.X) }

// Validate checks internal consistency.
func (d *Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("features: %d vectors vs %d labels", len(d.X), len(d.Y))
	}
	if len(d.X) == 0 {
		return errors.New("features: empty dataset")
	}
	w := len(d.X[0])
	for i, x := range d.X {
		if len(x) != w {
			return fmt.Errorf("features: sample %d width %d, want %d", i, len(x), w)
		}
	}
	for i, y := range d.Y {
		if y < 0 || y >= len(d.Classes) {
			return fmt.Errorf("features: label %d of sample %d out of range", y, i)
		}
	}
	return nil
}
