package features

import (
	"math"
	"testing"
	"time"

	"repro/internal/trace"
)

func mkTrace(samples ...float64) *trace.Trace {
	return &trace.Trace{Interval: time.Millisecond, Samples: samples}
}

func TestWidth(t *testing.T) {
	if Width(64) != 70 {
		t.Fatalf("Width(64) = %d, want 70", Width(64))
	}
}

func TestFromTrace(t *testing.T) {
	tr := mkTrace(1, 3, 5, 7)
	vec, err := FromTrace(tr, 2)
	if err != nil {
		t.Fatalf("FromTrace: %v", err)
	}
	if len(vec) != Width(2) {
		t.Fatalf("vector width = %d, want %d", len(vec), Width(2))
	}
	// Bins: [2, 6]; mean 4; min 1; max 7.
	if vec[0] != 2 || vec[1] != 6 {
		t.Fatalf("bins = %v", vec[:2])
	}
	if vec[2] != 4 {
		t.Fatalf("mean = %v", vec[2])
	}
	if vec[4] != 1 || vec[5] != 7 {
		t.Fatalf("min/max = %v/%v", vec[4], vec[5])
	}
	// std of {1,3,5,7} population = sqrt(5).
	if math.Abs(vec[3]-math.Sqrt(5)) > 1e-12 {
		t.Fatalf("std = %v", vec[3])
	}
}

func TestFromTraceErrors(t *testing.T) {
	if _, err := FromTrace(nil, 4); err == nil {
		t.Fatal("nil trace accepted")
	}
	if _, err := FromTrace(mkTrace(), 4); err == nil {
		t.Fatal("empty trace accepted")
	}
	if _, err := FromTrace(mkTrace(1, 2), 0); err == nil {
		t.Fatal("zero bins accepted")
	}
}

func TestFromTraceWithSpectrum(t *testing.T) {
	tr := mkTrace(1, 3, 5, 7, 5, 3, 1, 3)
	vec, err := FromTraceWithSpectrum(tr, 2, 3)
	if err != nil {
		t.Fatalf("FromTraceWithSpectrum: %v", err)
	}
	if len(vec) != WidthWithSpectrum(2, 3) {
		t.Fatalf("width = %d, want %d", len(vec), WidthWithSpectrum(2, 3))
	}
	// Zero spectral bins degenerates to FromTrace.
	base, err := FromTraceWithSpectrum(tr, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != Width(2) {
		t.Fatalf("degenerate width = %d", len(base))
	}
	if _, err := FromTraceWithSpectrum(mkTrace(1), 1, 2); err == nil {
		t.Fatal("spectrum on one-sample trace accepted")
	}
}

func TestDatasetAddInternsClasses(t *testing.T) {
	var ds Dataset
	ds.Add([]float64{1}, "ResNet-50")
	ds.Add([]float64{2}, "VGG-19")
	ds.Add([]float64{3}, "ResNet-50")
	if len(ds.Classes) != 2 {
		t.Fatalf("Classes = %v", ds.Classes)
	}
	if ds.Y[0] != 0 || ds.Y[1] != 1 || ds.Y[2] != 0 {
		t.Fatalf("Y = %v", ds.Y)
	}
	if ds.Len() != 3 {
		t.Fatalf("Len = %d", ds.Len())
	}
	if err := ds.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestDatasetValidate(t *testing.T) {
	bad := []Dataset{
		{},
		{X: [][]float64{{1}}, Y: []int{0, 1}, Classes: []string{"a"}},
		{X: [][]float64{{1}, {1, 2}}, Y: []int{0, 0}, Classes: []string{"a"}},
		{X: [][]float64{{1}}, Y: []int{5}, Classes: []string{"a"}},
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Errorf("case %d: invalid dataset accepted", i)
		}
	}
}
