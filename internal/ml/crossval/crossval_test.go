package crossval

import (
	"math/rand"
	"testing"

	"repro/internal/ml/features"
	"repro/internal/ml/rforest"
)

func rng() *rand.Rand { return rand.New(rand.NewSource(13)) }

func TestFolds(t *testing.T) {
	folds, err := Folds(25, 10, rng())
	if err != nil {
		t.Fatalf("Folds: %v", err)
	}
	if len(folds) != 10 {
		t.Fatalf("folds = %d", len(folds))
	}
	seen := map[int]bool{}
	total := 0
	for _, f := range folds {
		for _, i := range f {
			if seen[i] {
				t.Fatalf("index %d in two folds", i)
			}
			seen[i] = true
			total++
		}
	}
	if total != 25 {
		t.Fatalf("total = %d", total)
	}
	// Near-equal sizes: 25/10 -> sizes 2 or 3.
	for _, f := range folds {
		if len(f) < 2 || len(f) > 3 {
			t.Fatalf("fold size %d", len(f))
		}
	}
}

func TestFoldsErrors(t *testing.T) {
	if _, err := Folds(5, 1, rng()); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := Folds(5, 6, rng()); err == nil {
		t.Fatal("k>n accepted")
	}
	if _, err := Folds(5, 2, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

// blobDataset builds separable clusters with class names.
func blobDataset(r *rand.Rand, classes, perClass int, sep float64) *features.Dataset {
	var ds features.Dataset
	for c := 0; c < classes; c++ {
		for i := 0; i < perClass; i++ {
			x := make([]float64, 4)
			for d := range x {
				x[d] = float64(c)*sep + r.NormFloat64()
			}
			ds.Add(x, string(rune('A'+c)))
		}
	}
	return &ds
}

func TestEvaluateSeparable(t *testing.T) {
	r := rng()
	ds := blobDataset(r, 4, 25, 10)
	res, err := Evaluate(ds, rforest.Config{Trees: 30, Rand: r}, 10, r)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if res.Folds != 10 {
		t.Fatalf("Folds = %d", res.Folds)
	}
	if res.Top1 < 0.95 {
		t.Fatalf("Top1 = %v on separable data", res.Top1)
	}
	if res.Top5 < res.Top1 {
		t.Fatalf("Top5 (%v) < Top1 (%v)", res.Top5, res.Top1)
	}
}

func TestEvaluateChanceOnNoise(t *testing.T) {
	// Labels independent of features: accuracy should be near chance
	// (1/classes), far from 1.
	r := rng()
	var ds features.Dataset
	for i := 0; i < 200; i++ {
		x := []float64{r.NormFloat64(), r.NormFloat64()}
		ds.Add(x, string(rune('A'+i%4)))
	}
	res, err := Evaluate(&ds, rforest.Config{Trees: 20, Rand: r}, 5, r)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if res.Top1 > 0.5 {
		t.Fatalf("Top1 = %v on pure noise, want near 0.25", res.Top1)
	}
}

func TestEvaluateTop5CappedByClassCount(t *testing.T) {
	// With 2 classes, "top-5" means top-2 and must still be <= 1.
	r := rng()
	ds := blobDataset(r, 2, 20, 8)
	res, err := Evaluate(ds, rforest.Config{Trees: 10, Rand: r}, 4, r)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if res.Top5 != 1 {
		t.Fatalf("Top5 = %v; top-2 of 2 classes is always a hit", res.Top5)
	}
}

func TestEvaluateDetailedConfusion(t *testing.T) {
	r := rng()
	ds := blobDataset(r, 3, 20, 10)
	det, err := EvaluateDetailed(ds, rforest.Config{Trees: 20, Rand: r}, 5, r)
	if err != nil {
		t.Fatalf("EvaluateDetailed: %v", err)
	}
	if len(det.Confusion) != 3 || len(det.Confusion[0]) != 3 {
		t.Fatalf("confusion shape = %dx%d", len(det.Confusion), len(det.Confusion[0]))
	}
	// Every held-out sample appears exactly once.
	total := 0
	for _, row := range det.Confusion {
		for _, c := range row {
			total += c
		}
	}
	if total != ds.Len() {
		t.Fatalf("confusion total = %d, want %d", total, ds.Len())
	}
	// Separable blobs: the diagonal dominates.
	per := det.PerClassAccuracy()
	for c, acc := range per {
		if acc < 0.9 {
			t.Fatalf("class %d accuracy = %v", c, acc)
		}
	}
	// Detailed.Top1 must equal diagonal/total.
	diag := 0
	for i := range det.Confusion {
		diag += det.Confusion[i][i]
	}
	if got := float64(diag) / float64(total); got != det.Top1 {
		t.Fatalf("Top1 %v != diagonal rate %v", det.Top1, got)
	}
}

func TestEvaluateErrors(t *testing.T) {
	r := rng()
	var empty features.Dataset
	if _, err := Evaluate(&empty, rforest.Config{Rand: r}, 10, r); err == nil {
		t.Fatal("empty dataset accepted")
	}
	ds := blobDataset(r, 2, 3, 5)
	if _, err := Evaluate(ds, rforest.Config{Rand: r}, 100, r); err == nil {
		t.Fatal("k > n accepted")
	}
}
