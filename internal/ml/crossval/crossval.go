// Package crossval implements the paper's validation protocol: 10-fold
// cross-validation where in each iteration 9 folds train the classifier
// and the held-out fold is scored, reporting top-1 and top-5 accuracy.
package crossval

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/ml/features"
	"repro/internal/ml/rforest"
	"repro/internal/obs"
)

// Result holds cross-validated accuracies.
type Result struct {
	// Top1 is the fraction of held-out samples whose true class ranked
	// first.
	Top1 float64
	// Top5 is the fraction whose true class ranked in the first five.
	Top5 float64
	// Folds actually evaluated.
	Folds int
}

// Folds partitions n sample indices into k shuffled folds of near-equal
// size.
func Folds(n, k int, rng *rand.Rand) ([][]int, error) {
	if k < 2 || k > n {
		return nil, fmt.Errorf("crossval: k %d outside [2,%d]", k, n)
	}
	if rng == nil {
		return nil, errors.New("crossval: nil random stream")
	}
	perm := rng.Perm(n)
	folds := make([][]int, k)
	for i, idx := range perm {
		folds[i%k] = append(folds[i%k], idx)
	}
	return folds, nil
}

// Detailed extends Result with the full confusion matrix.
type Detailed struct {
	Result
	// Confusion[y][p] counts held-out samples of true class y predicted
	// as class p.
	Confusion [][]int
}

// PerClassAccuracy returns each class's top-1 accuracy from the
// confusion matrix.
func (d *Detailed) PerClassAccuracy() []float64 {
	out := make([]float64, len(d.Confusion))
	for y, row := range d.Confusion {
		total := 0
		for _, c := range row {
			total += c
		}
		if total > 0 {
			out[y] = float64(row[y]) / float64(total)
		}
	}
	return out
}

// Evaluate runs k-fold cross-validation of a random forest over the
// dataset and returns aggregate top-1/top-5 accuracy.
func Evaluate(ds *features.Dataset, cfg rforest.Config, k int, rng *rand.Rand) (Result, error) {
	d, err := EvaluateDetailed(ds, cfg, k, rng)
	if err != nil {
		return Result{}, err
	}
	return d.Result, nil
}

// EvaluateDetailed is Evaluate plus the confusion matrix.
func EvaluateDetailed(ds *features.Dataset, cfg rforest.Config, k int, rng *rand.Rand) (Detailed, error) {
	if err := ds.Validate(); err != nil {
		return Detailed{}, err
	}
	folds, err := Folds(ds.Len(), k, rng)
	if err != nil {
		return Detailed{}, err
	}
	classes := len(ds.Classes)
	topN := 5
	if topN > classes {
		topN = classes
	}
	confusion := make([][]int, classes)
	for i := range confusion {
		confusion[i] = make([]int, classes)
	}
	var hits1, hitsN, total int
	for fi, test := range folds {
		inTest := make(map[int]bool, len(test))
		for _, i := range test {
			inTest[i] = true
		}
		var trX [][]float64
		var trY []int
		for i := range ds.X {
			if !inTest[i] {
				trX = append(trX, ds.X[i])
				trY = append(trY, ds.Y[i])
			}
		}
		trainSpan := obs.StartSpan("ml.fold_train", nil)
		forest, err := rforest.Train(cfg, trX, trY, classes)
		trainSpan.End()
		if err != nil {
			return Detailed{}, fmt.Errorf("crossval: fold %d: %w", fi, err)
		}
		// One predict span per fold (not per sample), so the span ring
		// keeps covering whole folds on large grids.
		predictSpan := obs.StartSpan("ml.fold_predict", nil)
		for _, i := range test {
			top, err := forest.TopK(ds.X[i], topN)
			if err != nil {
				predictSpan.End()
				return Detailed{}, err
			}
			confusion[ds.Y[i]][top[0]]++
			if top[0] == ds.Y[i] {
				hits1++
			}
			for _, c := range top {
				if c == ds.Y[i] {
					hitsN++
					break
				}
			}
			total++
		}
		predictSpan.End()
	}
	if total == 0 {
		return Detailed{}, errors.New("crossval: no test samples")
	}
	return Detailed{
		Result: Result{
			Top1:  float64(hits1) / float64(total),
			Top5:  float64(hitsN) / float64(total),
			Folds: len(folds),
		},
		Confusion: confusion,
	}, nil
}
