// Package rforest is a from-scratch random-forest classifier matching
// the paper's configuration: 100 trees, maximum depth 32, Gini impurity
// as the splitting criterion, bootstrap sampling per tree, and a random
// feature subset evaluated at every split.
package rforest

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Config holds the forest hyperparameters. The zero value of each field
// selects the paper's setting.
type Config struct {
	// Trees is the ensemble size; zero means 100.
	Trees int
	// MaxDepth limits tree depth; zero means 32.
	MaxDepth int
	// MinLeaf is the minimum samples per leaf; zero means 1.
	MinLeaf int
	// FeaturesPerSplit is the number of candidate features per split;
	// zero means ⌈√F⌉.
	FeaturesPerSplit int
	// Rand drives bootstrap sampling and feature selection. Required.
	Rand *rand.Rand
}

// node is one decision-tree node, stored flat in the tree's node slice.
type node struct {
	feature   int // -1 for leaves
	threshold float64
	left      int32
	right     int32
	// class histogram at the node (leaves only), normalized.
	proba []float64
}

type tree struct{ nodes []node }

// Forest is a trained random forest.
type Forest struct {
	cfg        Config
	trees      []tree
	features   int
	classes    int
	importance []float64
}

// Train fits a forest on samples X with labels Y in [0, classes).
func Train(cfg Config, X [][]float64, Y []int, classes int) (*Forest, error) {
	if cfg.Trees == 0 {
		cfg.Trees = 100
	}
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 32
	}
	if cfg.MinLeaf == 0 {
		cfg.MinLeaf = 1
	}
	if cfg.Rand == nil {
		return nil, errors.New("rforest: nil random stream")
	}
	if cfg.Trees < 1 || cfg.MaxDepth < 1 || cfg.MinLeaf < 1 {
		return nil, errors.New("rforest: non-positive hyperparameter")
	}
	if len(X) == 0 || len(X) != len(Y) {
		return nil, fmt.Errorf("rforest: %d samples vs %d labels", len(X), len(Y))
	}
	if classes < 2 {
		return nil, errors.New("rforest: need at least two classes")
	}
	nFeat := len(X[0])
	if nFeat == 0 {
		return nil, errors.New("rforest: zero-width feature vectors")
	}
	for i, x := range X {
		if len(x) != nFeat {
			return nil, fmt.Errorf("rforest: sample %d has %d features, want %d", i, len(x), nFeat)
		}
	}
	for i, y := range Y {
		if y < 0 || y >= classes {
			return nil, fmt.Errorf("rforest: label %d of sample %d outside [0,%d)", y, i, classes)
		}
	}
	if cfg.FeaturesPerSplit == 0 {
		cfg.FeaturesPerSplit = int(math.Ceil(math.Sqrt(float64(nFeat))))
	}
	if cfg.FeaturesPerSplit < 1 || cfg.FeaturesPerSplit > nFeat {
		return nil, fmt.Errorf("rforest: features per split %d outside [1,%d]", cfg.FeaturesPerSplit, nFeat)
	}

	f := &Forest{cfg: cfg, features: nFeat, classes: classes}
	f.trees = make([]tree, cfg.Trees)
	f.importance = make([]float64, nFeat)
	b := &builder{cfg: cfg, X: X, Y: Y, classes: classes,
		importance: make([]float64, nFeat)}
	for t := range f.trees {
		// Bootstrap: sample len(X) indices with replacement.
		idx := make([]int, len(X))
		for i := range idx {
			idx[i] = cfg.Rand.Intn(len(X))
		}
		b.nodes = nil
		b.total = len(idx)
		b.grow(idx, 0)
		f.trees[t] = tree{nodes: b.nodes}
		b.nodes = nil
	}
	// Normalize the accumulated impurity decreases to sum to 1.
	var total float64
	for _, v := range b.importance {
		total += v
	}
	if total > 0 {
		for i, v := range b.importance {
			f.importance[i] = v / total
		}
	}
	return f, nil
}

// Importances returns the normalized mean decrease in Gini impurity per
// feature (summing to 1 when any split occurred) — which parts of the
// trace the classifier actually keyed on.
func (f *Forest) Importances() []float64 {
	return append([]float64(nil), f.importance...)
}

// builder grows one tree.
type builder struct {
	cfg        Config
	X          [][]float64
	Y          []int
	classes    int
	nodes      []node
	total      int       // bootstrap sample size, for importance weights
	importance []float64 // accumulated impurity decrease per feature
}

// grow builds the subtree over the given sample indices and returns its
// node index.
func (b *builder) grow(idx []int, depth int) int32 {
	hist := make([]float64, b.classes)
	for _, i := range idx {
		hist[b.Y[i]]++
	}
	pure := 0
	for _, c := range hist {
		if c > 0 {
			pure++
		}
	}
	id := int32(len(b.nodes))
	b.nodes = append(b.nodes, node{feature: -1})
	if pure <= 1 || depth >= b.cfg.MaxDepth || len(idx) < 2*b.cfg.MinLeaf {
		b.leaf(id, hist, len(idx))
		return id
	}
	feat, thr, ok := b.bestSplit(idx, hist)
	if !ok {
		b.leaf(id, hist, len(idx))
		return id
	}
	var left, right []int
	for _, i := range idx {
		if b.X[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < b.cfg.MinLeaf || len(right) < b.cfg.MinLeaf {
		b.leaf(id, hist, len(idx))
		return id
	}
	b.accumulateImportance(feat, hist, left, right)
	l := b.grow(left, depth+1)
	r := b.grow(right, depth+1)
	b.nodes[id].feature = feat
	b.nodes[id].threshold = thr
	b.nodes[id].left = l
	b.nodes[id].right = r
	return id
}

// accumulateImportance records the split's weighted Gini decrease.
func (b *builder) accumulateImportance(feat int, hist []float64, left, right []int) {
	n := float64(len(left) + len(right))
	lh := make([]float64, b.classes)
	rh := make([]float64, b.classes)
	for _, i := range left {
		lh[b.Y[i]]++
	}
	for _, i := range right {
		rh[b.Y[i]]++
	}
	nl, nr := float64(len(left)), float64(len(right))
	decrease := gini(hist, n) - nl/n*gini(lh, nl) - nr/n*gini(rh, nr)
	if decrease > 0 {
		b.importance[feat] += n / float64(b.total) * decrease
	}
}

func (b *builder) leaf(id int32, hist []float64, n int) {
	proba := make([]float64, len(hist))
	if n > 0 {
		for i, c := range hist {
			proba[i] = c / float64(n)
		}
	}
	b.nodes[id].proba = proba
}

// bestSplit searches a random feature subset for the threshold with the
// lowest weighted Gini impurity.
func (b *builder) bestSplit(idx []int, hist []float64) (feat int, thr float64, ok bool) {
	n := float64(len(idx))
	bestGini := math.Inf(1)

	// Sample cfg.FeaturesPerSplit distinct features (partial shuffle).
	feats := b.cfg.Rand.Perm(len(b.X[0]))[:b.cfg.FeaturesPerSplit]

	type pair struct {
		v float64
		y int
	}
	pairs := make([]pair, len(idx))
	leftHist := make([]float64, b.classes)
	rightHist := make([]float64, b.classes)

	for _, f := range feats {
		for i, s := range idx {
			pairs[i] = pair{v: b.X[s][f], y: b.Y[s]}
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].v < pairs[j].v })
		for i := range leftHist {
			leftHist[i] = 0
			rightHist[i] = hist[i]
		}
		// Sweep split positions between distinct values.
		for i := 0; i < len(pairs)-1; i++ {
			leftHist[pairs[i].y]++
			rightHist[pairs[i].y]--
			if pairs[i].v == pairs[i+1].v {
				continue
			}
			nl := float64(i + 1)
			nr := n - nl
			g := nl/n*gini(leftHist, nl) + nr/n*gini(rightHist, nr)
			if g < bestGini {
				bestGini = g
				feat = f
				thr = (pairs[i].v + pairs[i+1].v) / 2
				ok = true
			}
		}
	}
	return feat, thr, ok
}

// gini computes the Gini impurity of a class histogram with total n.
func gini(hist []float64, n float64) float64 {
	if n == 0 {
		return 0
	}
	s := 1.0
	for _, c := range hist {
		p := c / n
		s -= p * p
	}
	return s
}

// Features returns the feature-vector width the forest was trained on.
func (f *Forest) Features() int { return f.features }

// Classes returns the number of classes.
func (f *Forest) Classes() int { return f.classes }

// Trees returns the ensemble size.
func (f *Forest) Trees() int { return len(f.trees) }

// Proba returns the mean class distribution across the ensemble.
func (f *Forest) Proba(x []float64) ([]float64, error) {
	if len(x) != f.features {
		return nil, fmt.Errorf("rforest: sample has %d features, want %d", len(x), f.features)
	}
	out := make([]float64, f.classes)
	for _, t := range f.trees {
		i := int32(0)
		for t.nodes[i].feature >= 0 {
			n := t.nodes[i]
			if x[n.feature] <= n.threshold {
				i = n.left
			} else {
				i = n.right
			}
		}
		for c, p := range t.nodes[i].proba {
			out[c] += p
		}
	}
	for c := range out {
		out[c] /= float64(len(f.trees))
	}
	return out, nil
}

// Predict returns the most probable class.
func (f *Forest) Predict(x []float64) (int, error) {
	top, err := f.TopK(x, 1)
	if err != nil {
		return 0, err
	}
	return top[0], nil
}

// TopK returns the k most probable classes in descending order of
// probability (ties broken by class index, deterministically).
func (f *Forest) TopK(x []float64, k int) ([]int, error) {
	if k < 1 || k > f.classes {
		return nil, fmt.Errorf("rforest: k %d outside [1,%d]", k, f.classes)
	}
	proba, err := f.Proba(x)
	if err != nil {
		return nil, err
	}
	order := make([]int, f.classes)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return proba[order[a]] > proba[order[b]] })
	return order[:k], nil
}
