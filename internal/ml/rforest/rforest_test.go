package rforest

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func rng() *rand.Rand { return rand.New(rand.NewSource(21)) }

// gaussianBlobs builds an n-class dataset of well-separated clusters.
func gaussianBlobs(r *rand.Rand, classes, perClass, dims int, sep float64) ([][]float64, []int) {
	var X [][]float64
	var Y []int
	for c := 0; c < classes; c++ {
		for i := 0; i < perClass; i++ {
			x := make([]float64, dims)
			for d := range x {
				x[d] = float64(c)*sep + r.NormFloat64()
			}
			X = append(X, x)
			Y = append(Y, c)
		}
	}
	return X, Y
}

func TestTrainValidation(t *testing.T) {
	X := [][]float64{{1, 2}, {3, 4}}
	Y := []int{0, 1}
	cases := []struct {
		name string
		cfg  Config
		x    [][]float64
		y    []int
		cls  int
	}{
		{"nil rng", Config{}, X, Y, 2},
		{"no samples", Config{Rand: rng()}, nil, nil, 2},
		{"len mismatch", Config{Rand: rng()}, X, []int{0}, 2},
		{"one class", Config{Rand: rng()}, X, Y, 1},
		{"bad label", Config{Rand: rng()}, X, []int{0, 5}, 2},
		{"ragged", Config{Rand: rng()}, [][]float64{{1}, {1, 2}}, Y, 2},
		{"zero width", Config{Rand: rng()}, [][]float64{{}, {}}, Y, 2},
		{"too many feats/split", Config{Rand: rng(), FeaturesPerSplit: 10}, X, Y, 2},
		{"negative trees", Config{Rand: rng(), Trees: -1}, X, Y, 2},
	}
	for _, c := range cases {
		if _, err := Train(c.cfg, c.x, c.y, c.cls); err == nil {
			t.Errorf("%s: invalid input accepted", c.name)
		}
	}
}

func TestDefaultsMatchPaper(t *testing.T) {
	r := rng()
	X, Y := gaussianBlobs(r, 2, 20, 3, 10)
	f, err := Train(Config{Rand: r}, X, Y, 2)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if f.Trees() != 100 {
		t.Fatalf("Trees = %d, want 100 (paper config)", f.Trees())
	}
	if f.Features() != 3 || f.Classes() != 2 {
		t.Fatalf("shape = %d feat %d cls", f.Features(), f.Classes())
	}
}

func TestSeparableBlobsPerfect(t *testing.T) {
	r := rng()
	X, Y := gaussianBlobs(r, 4, 30, 5, 12)
	f, err := Train(Config{Trees: 30, Rand: r}, X, Y, 4)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	correct := 0
	for i := range X {
		p, err := f.Predict(X[i])
		if err != nil {
			t.Fatalf("Predict: %v", err)
		}
		if p == Y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(X)); acc < 0.99 {
		t.Fatalf("training accuracy = %v on separable blobs", acc)
	}
}

func TestGeneralizesToHeldOut(t *testing.T) {
	r := rng()
	Xtr, Ytr := gaussianBlobs(r, 3, 50, 4, 8)
	f, err := Train(Config{Trees: 50, Rand: r}, Xtr, Ytr, 3)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	Xte, Yte := gaussianBlobs(r, 3, 30, 4, 8)
	correct := 0
	for i := range Xte {
		if p, _ := f.Predict(Xte[i]); p == Yte[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(Xte)); acc < 0.95 {
		t.Fatalf("held-out accuracy = %v", acc)
	}
}

func TestProbaSumsToOne(t *testing.T) {
	r := rng()
	X, Y := gaussianBlobs(r, 3, 20, 4, 6)
	f, err := Train(Config{Trees: 20, Rand: r}, X, Y, 3)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	p, err := f.Proba(X[0])
	if err != nil {
		t.Fatalf("Proba: %v", err)
	}
	sum := 0.0
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Fatalf("probability %v out of range", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("proba sum = %v", sum)
	}
	if _, err := f.Proba([]float64{1}); err == nil {
		t.Fatal("wrong-width sample accepted")
	}
}

func TestTopK(t *testing.T) {
	r := rng()
	X, Y := gaussianBlobs(r, 5, 20, 4, 10)
	f, err := Train(Config{Trees: 20, Rand: r}, X, Y, 5)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	top, err := f.TopK(X[0], 3)
	if err != nil {
		t.Fatalf("TopK: %v", err)
	}
	if len(top) != 3 {
		t.Fatalf("TopK len = %d", len(top))
	}
	seen := map[int]bool{}
	for _, c := range top {
		if seen[c] {
			t.Fatal("duplicate class in TopK")
		}
		seen[c] = true
	}
	proba, _ := f.Proba(X[0])
	if proba[top[0]] < proba[top[1]] || proba[top[1]] < proba[top[2]] {
		t.Fatal("TopK not in descending probability order")
	}
	if _, err := f.TopK(X[0], 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := f.TopK(X[0], 6); err == nil {
		t.Fatal("k>classes accepted")
	}
}

func TestMaxDepthOneIsAStump(t *testing.T) {
	r := rng()
	X, Y := gaussianBlobs(r, 2, 40, 1, 10)
	f, err := Train(Config{Trees: 10, MaxDepth: 1, Rand: r}, X, Y, 2)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	// A depth-1 stump still separates 1-D blobs.
	correct := 0
	for i := range X {
		if p, _ := f.Predict(X[i]); p == Y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(X)); acc < 0.95 {
		t.Fatalf("stump accuracy = %v", acc)
	}
}

func TestConstantFeaturesYieldPrior(t *testing.T) {
	// All samples identical: no split is possible; prediction must fall
	// back to the class prior without crashing.
	X := make([][]float64, 30)
	Y := make([]int, 30)
	for i := range X {
		X[i] = []float64{1, 1, 1}
		Y[i] = i % 3
	}
	f, err := Train(Config{Trees: 10, Rand: rng()}, X, Y, 3)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	p, err := f.Proba([]float64{1, 1, 1})
	if err != nil {
		t.Fatalf("Proba: %v", err)
	}
	for c, v := range p {
		if math.Abs(v-1.0/3.0) > 0.15 {
			t.Fatalf("class %d proba = %v, want ~1/3", c, v)
		}
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	build := func() []int {
		r := rand.New(rand.NewSource(9))
		X, Y := gaussianBlobs(r, 3, 20, 4, 3)
		f, err := Train(Config{Trees: 15, Rand: r}, X, Y, 3)
		if err != nil {
			t.Fatalf("Train: %v", err)
		}
		out := make([]int, len(X))
		for i := range X {
			out[i], _ = f.Predict(X[i])
		}
		return out
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different forests")
		}
	}
}

func TestImportancesFindInformativeFeature(t *testing.T) {
	r := rng()
	// Feature 1 carries the class; features 0 and 2 are noise.
	var X [][]float64
	var Y []int
	for c := 0; c < 2; c++ {
		for i := 0; i < 60; i++ {
			X = append(X, []float64{
				r.NormFloat64(),
				float64(c)*8 + r.NormFloat64(),
				r.NormFloat64(),
			})
			Y = append(Y, c)
		}
	}
	f, err := Train(Config{Trees: 20, Rand: r}, X, Y, 2)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	imp := f.Importances()
	if len(imp) != 3 {
		t.Fatalf("importances = %v", imp)
	}
	sum := imp[0] + imp[1] + imp[2]
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("importances sum = %v", sum)
	}
	if imp[1] < 0.8 {
		t.Fatalf("informative feature importance = %v, want dominant (all: %v)", imp[1], imp)
	}
	// Returned slice is a copy.
	imp[0] = 99
	if f.Importances()[0] == 99 {
		t.Fatal("Importances exposes internal state")
	}
}

func TestImportancesZeroOnConstantData(t *testing.T) {
	X := make([][]float64, 20)
	Y := make([]int, 20)
	for i := range X {
		X[i] = []float64{1, 1}
		Y[i] = i % 2
	}
	f, err := Train(Config{Trees: 5, Rand: rng()}, X, Y, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range f.Importances() {
		if v != 0 {
			t.Fatalf("importance on unsplittable data: %v", f.Importances())
		}
	}
}

func TestGini(t *testing.T) {
	if g := gini([]float64{10, 0}, 10); g != 0 {
		t.Fatalf("pure gini = %v", g)
	}
	if g := gini([]float64{5, 5}, 10); math.Abs(g-0.5) > 1e-12 {
		t.Fatalf("even gini = %v, want 0.5", g)
	}
	if g := gini(nil, 0); g != 0 {
		t.Fatalf("empty gini = %v", g)
	}
}

// Property: predictions are always valid class indices and Proba is a
// distribution.
func TestPredictionValidityProperty(t *testing.T) {
	r := rng()
	X, Y := gaussianBlobs(r, 3, 15, 3, 5)
	f, err := Train(Config{Trees: 10, Rand: r}, X, Y, 3)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(a, b, c float64) bool {
		x := []float64{math.Mod(a, 100), math.Mod(b, 100), math.Mod(c, 100)}
		p, err := f.Predict(x)
		if err != nil || p < 0 || p >= 3 {
			return false
		}
		proba, err := f.Proba(x)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, v := range proba {
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
