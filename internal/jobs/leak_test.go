package jobs

// Goroutine-leak regression test for the job server: a drained server
// must leave no executor or admission goroutines behind, whatever mix
// of running, queued, and shed jobs it held.

import (
	"context"
	"runtime"
	"testing"
	"time"
)

func waitNumGoroutine(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d, baseline %d\n%s", n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServerDrainLeavesNoGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	release := make(chan struct{})
	defer close(release)
	s, err := NewServer(ServerConfig{Executor: blockingExecutor(release), MaxConcurrent: 2, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Two running, one queued, one shed: every execute goroutine path.
	// Which job lands in which state is a race between the four execute
	// goroutines, so assert on the counts, not the IDs.
	for i := 0; i < 4; i++ {
		if _, err := s.Submit(SubmitRequest{Kind: "demo"}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		counts := map[JobState]int{}
		s.mu.Lock()
		for _, job := range s.jobs {
			counts[job.State]++
		}
		s.mu.Unlock()
		if counts[StateRunning] == 2 && counts[StateShed] == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("states never settled to 2 running + 1 shed: %v", counts)
		}
		time.Sleep(2 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	waitNumGoroutine(t, base)
}
