package jobs_test

// The engine's headline property: a supervised run that is killed at a
// round barrier and resumed in a fresh process produces a canonical
// ledger manifest byte-identical to an uninterrupted run — across
// worker counts 1, 4, and 16 and across kill positions. This is the
// crash-safety twin of the ledger's workers-determinism test: if it
// breaks, either a counter escaped the barrier banking (counted twice
// or lost across the kill), a shard result stopped being a pure
// function of its ShardSeed, or a wall-clock quantity leaked into the
// manifest's measurement content.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/internal/check"
	"repro/internal/jobs"
	"repro/internal/jobs/kinds"
	"repro/internal/obs"
	"repro/internal/obs/ledger"
	"repro/internal/runner"
)

// chaosSpec is one small hostile-faults characterize campaign: 5
// levels in rounds of 2, so there are 3 barriers to die at.
func chaosSpec(workers int, cpPath string) jobs.Spec {
	return jobs.Spec{
		Kind:           "characterize",
		Seed:           7,
		Board:          "zcu102",
		FaultProfile:   "hostile",
		FaultIntensity: 1,
		Workers:        workers,
		RoundSize:      2,
		RetryBackoff:   -1,
		Config:         json.RawMessage(`{"levels":5,"samples_per_level":4}`),
		CheckpointPath: cpPath,
	}
}

// runManifest executes the spec on a clean registry and returns the
// run's canonical manifest bytes. The registry is NOT reset afterwards
// so callers can chain a kill with a resume.
func runManifest(spec jobs.Spec, keys []string, shard func(context.Context, runner.Info) (json.RawMessage, error)) ([]byte, *jobs.Outcome, error) {
	out, err := jobs.Run(context.Background(), spec, keys, shard)
	if err != nil {
		return nil, out, err
	}
	m := ledger.New(ledger.RunInfo{
		Tool:           "amperebleed",
		Command:        spec.Kind,
		Board:          spec.Board,
		Seed:           spec.Seed,
		FaultProfile:   spec.FaultProfile,
		FaultIntensity: spec.FaultIntensity,
		Workers:        spec.Workers,
		RunID:          spec.RunID,
		ParentRunID:    out.ParentRunID,
		ResumedShards:  out.ResumedShards,
	}, obs.Default.Snapshot())
	got, jerr := ledger.CanonicalJSON(m)
	if jerr != nil {
		return nil, out, fmt.Errorf("canonicalize: %w", jerr)
	}
	return got, out, nil
}

var errChaosKill = errors.New("chaos: simulated crash at barrier")

func TestResumeManifestByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos property is not short")
	}
	kind, err := kinds.Lookup("characterize")
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir()
	// The baseline checkpoints too (to its own file): checkpoint writes
	// are counted, so an uncheckpointed run is a *different* experiment
	// record than a checkpointed one.
	baseSpec := chaosSpec(1, filepath.Join(tmp, "cp-baseline.json"))
	keys, err := kind.Plan(baseSpec)
	if err != nil {
		t.Fatal(err)
	}
	shardFor := func(spec jobs.Spec) func(context.Context, runner.Info) (json.RawMessage, error) {
		return func(ctx context.Context, info runner.Info) (json.RawMessage, error) {
			return kind.Shard(ctx, spec, info)
		}
	}

	// Uninterrupted baseline, once. Worker-count independence of the
	// baseline itself is the ledger package's determinism test; here the
	// killed-and-resumed manifests at every worker count are held
	// against this single reference.
	obs.Default.Reset()
	defer obs.Default.Reset()
	var want []byte
	{
		got, out, err := runManifest(baseSpec, keys, shardFor(baseSpec))
		if err != nil {
			t.Fatalf("baseline run: %v", err)
		}
		if out.Completed()+len(out.Quarantined) != len(keys) {
			t.Fatalf("baseline resolved %d of %d shards", out.Completed()+len(out.Quarantined), len(keys))
		}
		want = got
	}

	type chaosCase struct {
		Workers   int
		KillRound int
	}
	var caseID atomic.Int64
	gen := check.Gen[chaosCase]{
		Generate: func(r *rand.Rand, size int) chaosCase {
			workerChoices := []int{1, 4, 16}
			return chaosCase{
				Workers:   workerChoices[r.Intn(len(workerChoices))],
				KillRound: 1 + r.Intn(2), // die after barrier 1 or 2 of 3
			}
		},
	}
	check.Forall(t, gen, func(ct *check.T, c chaosCase) {
		cpPath := filepath.Join(tmp, fmt.Sprintf("cp-%d.json", caseID.Add(1)))
		spec := chaosSpec(c.Workers, cpPath)
		spec.RunID = "life-1"
		spec.OnBarrier = func(cp *jobs.Checkpoint, round int) error {
			if round >= c.KillRound {
				return errChaosKill
			}
			return nil
		}

		// First life: crash at the chosen barrier.
		obs.Default.Reset()
		if _, _, err := runManifest(spec, keys, shardFor(spec)); !errors.Is(err, errChaosKill) {
			ct.Fatalf("first life = %v, want the chaos kill", err)
		}

		// Process death wipes the registry; the resume must rebuild the
		// exact totals from the checkpoint bank plus the re-run tail.
		obs.Default.Reset()
		spec.RunID = "life-2"
		spec.OnBarrier = nil
		got, out, err := runManifest(spec, keys, shardFor(spec))
		if err != nil {
			ct.Fatalf("resume: %v", err)
		}
		if out.ResumedShards == 0 {
			ct.Errorf("resume skipped no shards — the kill landed before any barrier?")
		}
		if out.ParentRunID != "life-1" {
			ct.Errorf("parent run = %q, want life-1", out.ParentRunID)
		}
		if string(got) != string(want) {
			ct.Errorf("killed@round%d/workers=%d manifest differs from uninterrupted run:\n got %s\nwant %s",
				c.KillRound, c.Workers, got, want)
		}
	}, check.Iters(6))
}
