package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
)

// CheckpointSchemaVersion identifies the checkpoint payload schema;
// bump it when fields change meaning or name. A checkpoint with a
// different schema version is rejected at load time rather than
// misinterpreted.
const CheckpointSchemaVersion = 1

// ErrCheckpointCorrupt marks a checkpoint file that failed the CRC32
// or schema check — a torn write, bit rot, or truncation. Resume
// refuses to trust it.
var ErrCheckpointCorrupt = errors.New("jobs: checkpoint corrupt")

// ErrCheckpointMismatch marks a checkpoint whose recorded experiment
// identity (kind, seed, board, fault profile, config) does not match
// the run trying to resume from it. Skipping shards against a
// mismatched checkpoint would silently splice two different
// experiments together, so resume refuses.
var ErrCheckpointMismatch = errors.New("jobs: checkpoint does not match this run")

// ShardRecord is one completed shard's durable state: the
// deterministic seed it ran under (runner.ShardSeed of the campaign
// seed and the shard key — verified on resume, so a seed-derivation
// drift is caught instead of silently replayed wrong) and its
// canonicalized result.
type ShardRecord struct {
	Seed int64           `json:"seed"`
	Data json.RawMessage `json:"data"`
}

// Checkpoint is the durable state of a supervised job. It is written
// atomically at round barriers — moments where no shard is in flight —
// because that is the only point at which the global counter snapshot
// is a clean prefix sum of per-shard contributions (see Engine's doc
// comment for why that matters for resume determinism).
type Checkpoint struct {
	SchemaVersion int `json:"schema_version"`

	// Job identity: resume verifies every one of these against the
	// resuming spec before skipping a single shard.
	Kind           string          `json:"kind"`
	Seed           int64           `json:"seed"`
	Board          string          `json:"board,omitempty"`
	FaultProfile   string          `json:"fault_profile,omitempty"`
	FaultIntensity float64         `json:"fault_intensity,omitempty"`
	Config         json.RawMessage `json:"config,omitempty"`

	// Resume lineage: RunID is the run that last wrote this
	// checkpoint; ParentRunID is the run it itself resumed from (empty
	// for a first run). The ledger manifest records both.
	RunID       string `json:"run_id,omitempty"`
	ParentRunID string `json:"parent_run_id,omitempty"`

	// Keys is the full shard key list of the campaign, in submission
	// order; a resume with a different key set is a config mismatch.
	Keys []string `json:"keys"`

	// Completed maps shard key -> durable record. Quarantined maps
	// shard key -> final error string for shards that exhausted their
	// attempt budget.
	Completed   map[string]ShardRecord `json:"completed"`
	Quarantined map[string]string      `json:"quarantined,omitempty"`

	// Counters is the deterministic obs counter state at the barrier
	// this checkpoint was written: the banked contribution of every
	// completed shard (plus fixed per-barrier bookkeeping). Resume
	// seeds the fresh process's registry with it, so the final counter
	// totals of a resumed run equal an uninterrupted one.
	Counters map[string]int64 `json:"counters,omitempty"`

	// Rounds is how many round barriers have been committed.
	Rounds int `json:"rounds"`
}

// envelope is the on-disk framing: the payload bytes are protected by
// a CRC32 (IEEE) so a torn or bit-rotted checkpoint is detected before
// a single shard is skipped on its word.
type envelope struct {
	SchemaVersion int             `json:"schema_version"`
	CRC32         uint32          `json:"crc32"`
	Payload       json.RawMessage `json:"payload"`
}

// NewCheckpoint returns an empty checkpoint carrying the spec's
// identity.
func NewCheckpoint(spec Spec, keys []string) *Checkpoint {
	return &Checkpoint{
		SchemaVersion:  CheckpointSchemaVersion,
		Kind:           spec.Kind,
		Seed:           spec.Seed,
		Board:          spec.Board,
		FaultProfile:   spec.FaultProfile,
		FaultIntensity: spec.FaultIntensity,
		Config:         spec.Config,
		RunID:          spec.RunID,
		Keys:           keys,
		Completed:      make(map[string]ShardRecord),
		Quarantined:    make(map[string]string),
	}
}

// SaveCheckpoint writes the checkpoint atomically: marshal, CRC, write
// to a same-directory temp file, fsync, rename over the target. A
// crash at any point leaves either the previous checkpoint or the new
// one — never a torn file.
func SaveCheckpoint(path string, cp *Checkpoint) error {
	payload, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("jobs: marshal checkpoint: %w", err)
	}
	env := envelope{
		SchemaVersion: CheckpointSchemaVersion,
		CRC32:         crc32.ChecksumIEEE(payload),
		Payload:       payload,
	}
	data, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("jobs: marshal checkpoint envelope: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("jobs: checkpoint temp file: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { _ = os.Remove(tmpName) }
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		cleanup()
		return fmt.Errorf("jobs: write checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		cleanup()
		return fmt.Errorf("jobs: sync checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return fmt.Errorf("jobs: close checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		cleanup()
		return fmt.Errorf("jobs: rename checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads and verifies a checkpoint: envelope schema,
// CRC32 of the payload bytes, and payload schema version. Any
// verification failure returns an error wrapping ErrCheckpointCorrupt.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("%w: %s: not a checkpoint envelope: %v", ErrCheckpointCorrupt, path, err)
	}
	if env.SchemaVersion != CheckpointSchemaVersion {
		return nil, fmt.Errorf("%w: %s: envelope schema %d, want %d",
			ErrCheckpointCorrupt, path, env.SchemaVersion, CheckpointSchemaVersion)
	}
	if got := crc32.ChecksumIEEE(env.Payload); got != env.CRC32 {
		return nil, fmt.Errorf("%w: %s: crc32 %08x, recorded %08x",
			ErrCheckpointCorrupt, path, got, env.CRC32)
	}
	var cp Checkpoint
	if err := json.Unmarshal(env.Payload, &cp); err != nil {
		return nil, fmt.Errorf("%w: %s: payload: %v", ErrCheckpointCorrupt, path, err)
	}
	if cp.SchemaVersion != CheckpointSchemaVersion {
		return nil, fmt.Errorf("%w: %s: payload schema %d, want %d",
			ErrCheckpointCorrupt, path, cp.SchemaVersion, CheckpointSchemaVersion)
	}
	if cp.Completed == nil {
		cp.Completed = make(map[string]ShardRecord)
	}
	if cp.Quarantined == nil {
		cp.Quarantined = make(map[string]string)
	}
	return &cp, nil
}

// matches verifies the checkpoint's experiment identity against a
// resuming spec and shard key list; it returns nil when every identity
// field agrees.
func (cp *Checkpoint) matches(spec Spec, keys []string) error {
	var diffs []string
	if cp.Kind != spec.Kind {
		diffs = append(diffs, fmt.Sprintf("kind %q vs %q", cp.Kind, spec.Kind))
	}
	if cp.Seed != spec.Seed {
		diffs = append(diffs, fmt.Sprintf("seed %d vs %d", cp.Seed, spec.Seed))
	}
	if cp.Board != spec.Board {
		diffs = append(diffs, fmt.Sprintf("board %q vs %q", cp.Board, spec.Board))
	}
	if cp.FaultProfile != spec.FaultProfile {
		diffs = append(diffs, fmt.Sprintf("fault profile %q vs %q", cp.FaultProfile, spec.FaultProfile))
	}
	if cp.FaultIntensity != spec.FaultIntensity {
		diffs = append(diffs, fmt.Sprintf("fault intensity %v vs %v", cp.FaultIntensity, spec.FaultIntensity))
	}
	if string(cp.Config) != string(spec.Config) {
		diffs = append(diffs, "config")
	}
	if len(cp.Keys) != len(keys) {
		diffs = append(diffs, fmt.Sprintf("shard count %d vs %d", len(cp.Keys), len(keys)))
	} else {
		for i := range keys {
			if cp.Keys[i] != keys[i] {
				diffs = append(diffs, fmt.Sprintf("shard key[%d] %q vs %q", i, cp.Keys[i], keys[i]))
				break
			}
		}
	}
	if len(diffs) > 0 {
		return fmt.Errorf("%w: %s", ErrCheckpointMismatch, strings.Join(diffs, "; "))
	}
	return nil
}
