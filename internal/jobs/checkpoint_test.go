package jobs

import (
	"bytes"
	"encoding/json"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func testSpec() Spec {
	return Spec{
		Kind:           "demo",
		RunID:          "run-1",
		Seed:           42,
		Board:          "zcu102",
		FaultProfile:   "hostile",
		FaultIntensity: 0.5,
		Config:         json.RawMessage(`{"levels":5}`),
	}
}

func TestCheckpointRoundtrip(t *testing.T) {
	spec := testSpec()
	keys := []string{"a", "b", "c"}
	cp := NewCheckpoint(spec, keys)
	cp.Completed["a"] = ShardRecord{Seed: 7, Data: json.RawMessage(`{"v":1}`)}
	cp.Quarantined["b"] = "boom"
	cp.Counters = map[string]int64{"x": 3}
	cp.Rounds = 2

	path := filepath.Join(t.TempDir(), "cp.json")
	if err := SaveCheckpoint(path, cp); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cp) {
		t.Errorf("roundtrip mismatch:\n got %+v\nwant %+v", got, cp)
	}
	if err := got.matches(spec, keys); err != nil {
		t.Errorf("matches() on identical spec: %v", err)
	}
}

func TestCheckpointSaveLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cp.json")
	if err := SaveCheckpoint(path, NewCheckpoint(testSpec(), []string{"a"})); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "cp.json" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Errorf("directory after save = %v, want just cp.json", names)
	}
}

func TestCheckpointLoadMissing(t *testing.T) {
	_, err := LoadCheckpoint(filepath.Join(t.TempDir(), "nope.json"))
	if !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("load of missing file = %v, want fs.ErrNotExist", err)
	}
}

func TestCheckpointCRCDetectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.json")
	cp := NewCheckpoint(testSpec(), []string{"a"})
	cp.Completed["a"] = ShardRecord{Seed: 9, Data: json.RawMessage(`{"v":42}`)}
	if err := SaveCheckpoint(path, cp); err != nil {
		t.Fatal(err)
	}
	// Rewrite the payload without updating the CRC: a torn or bit-rotted
	// checkpoint must be rejected, not trusted.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		SchemaVersion int             `json:"schema_version"`
		CRC32         uint32          `json:"crc32"`
		Payload       json.RawMessage `json:"payload"`
	}
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	flipped := bytes.Replace(env.Payload, []byte(`"seed":42`), []byte(`"seed":43`), 1)
	if bytes.Equal(flipped, env.Payload) {
		t.Fatal("corruption probe found nothing to flip")
	}
	env.Payload = flipped
	tampered, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Errorf("load of tampered checkpoint = %v, want ErrCheckpointCorrupt", err)
	}
}

func TestCheckpointSchemaVersionRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.json")
	if err := os.WriteFile(path, []byte(`{"schema_version":99,"crc32":0,"payload":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Errorf("load of future schema = %v, want ErrCheckpointCorrupt", err)
	}
}

func TestCheckpointMismatch(t *testing.T) {
	spec := testSpec()
	keys := []string{"a", "b"}
	cp := NewCheckpoint(spec, keys)

	cases := []struct {
		name string
		spec Spec
		keys []string
	}{
		{"kind", func() Spec { s := spec; s.Kind = "other"; return s }(), keys},
		{"seed", func() Spec { s := spec; s.Seed = 43; return s }(), keys},
		{"board", func() Spec { s := spec; s.Board = "kv260"; return s }(), keys},
		{"fault profile", func() Spec { s := spec; s.FaultProfile = "none"; return s }(), keys},
		{"fault intensity", func() Spec { s := spec; s.FaultIntensity = 1; return s }(), keys},
		{"config", func() Spec { s := spec; s.Config = json.RawMessage(`{"levels":6}`); return s }(), keys},
		{"key count", spec, []string{"a"}},
		{"key order", spec, []string{"b", "a"}},
	}
	for _, tc := range cases {
		if err := cp.matches(tc.spec, tc.keys); !errors.Is(err, ErrCheckpointMismatch) {
			t.Errorf("%s: matches = %v, want ErrCheckpointMismatch", tc.name, err)
		}
	}
}
