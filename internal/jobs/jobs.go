// Package jobs is the supervised job engine: it turns a long sharded
// experiment into a crash-safe Job that survives SIGKILL, OOM, and
// persistent shard failures, on top of internal/runner's deterministic
// worker pool.
//
// A Job executes its shards in rounds. Within a round, shards run on
// the runner pool; a shard that fails or panics is re-run with capped
// backoff up to MaxShardAttempts times and then quarantined — one
// pathological configuration degrades the result instead of wedging
// the campaign. At the end of each round the engine reaches a
// *barrier*: no shard is in flight, every shard of the round is either
// completed or quarantined. Only at a barrier does it write the
// checkpoint (atomic temp+rename, CRC32-protected, schema-versioned),
// recording completed shard IDs, their ShardSeed-keyed results, the
// quarantine set, and the obs counter totals.
//
// Counters are banked at barriers — and only at barriers — because
// shards run concurrently: mid-round, the global registry holds
// partial contributions from in-flight shards, so no per-shard counter
// delta can be attributed cleanly. At a barrier the registry is a
// clean prefix sum of per-shard contributions, each of which is a pure
// function of its ShardSeed. A killed process loses at most one
// round's work; its partial counter increments die with it. Resume
// verifies the checkpoint's identity (kind, seed, board, fault
// profile, config, shard keys — and each record's ShardSeed), seeds
// the fresh registry with the banked counters, and re-runs only the
// missing shards. The final counter totals, results, and canonical
// ledger manifest of a killed-and-resumed run are therefore
// byte-identical to an uninterrupted one — the property test in this
// package holds that across workers 1, 4, and 16 with kills at random
// barriers, and scripts/chaos_resume.sh holds it against a real
// kill -9.
//
// The counter-banking guarantee is per-process: a server running
// multiple jobs concurrently (amperebleed serve) still gets durable,
// exactly-resumable *results*, but its banked counters include
// whatever else the process was doing. The byte-identical-manifest
// property is for one job per process, which is how the CLI paths run.
package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/olog"
	"repro/internal/runner"
)

var log = olog.L("jobs")

// Supervision metrics. Everything here is either deterministic per
// shard (and thus banked/restored exactly across resume) or happens a
// fixed number of times per barrier, which the banking order keeps
// resume-invariant. Resume lineage is reported through gauges, which
// are not part of ledger manifests.
var (
	cRounds        = obs.C("jobs.rounds")
	cCheckpoints   = obs.C("jobs.checkpoint_writes")
	cShardAttempts = obs.C("jobs.shard_attempts")
	cShardRetries  = obs.C("jobs.shard_retries")
	cQuarantined   = obs.C("jobs.shards_quarantined")
	gActive        = obs.G("jobs.active")
	gResumedShards = obs.G("jobs.resumed_shards")
)

// Spec parameterizes a supervised job.
type Spec struct {
	// Kind names the experiment type ("characterize", ...); it is the
	// registry key under which the job's planner is registered and part
	// of the checkpoint identity.
	Kind string
	// RunID identifies this run in checkpoints and logs (typically the
	// olog run ID). Optional.
	RunID string
	// Seed is the campaign root seed; shard seeds derive from it and
	// the shard key exactly as in a plain runner campaign.
	Seed int64
	// Board, FaultProfile, FaultIntensity describe the simulated
	// target; they are checkpoint identity fields.
	Board          string
	FaultProfile   string
	FaultIntensity float64
	// Config is the kind-specific configuration, stored verbatim in
	// the checkpoint and byte-compared on resume.
	Config json.RawMessage
	// Workers is the runner pool size; zero means GOMAXPROCS.
	Workers int
	// RoundSize is how many shards run between checkpoint barriers.
	// Zero means 8. Smaller rounds bound the work a crash can lose;
	// larger rounds amortize checkpoint writes. The value has no
	// effect on results or final counters, only on durability
	// granularity.
	RoundSize int
	// MaxShardAttempts is the per-shard attempt budget before
	// quarantine. Zero means 3.
	MaxShardAttempts int
	// RetryBackoff is the base wall-clock delay between a shard's
	// attempts, doubling per retry wave and capped at 8x. Zero means
	// 20 ms; negative disables the delay.
	RetryBackoff time.Duration
	// CheckpointPath is where the job checkpoints; empty disables
	// checkpointing (the job still supervises and quarantines).
	CheckpointPath string
	// OnBarrier, when set, runs after each committed round barrier with
	// the freshly saved checkpoint. Returning an error aborts the job
	// as if the process had crashed at the barrier — the chaos tests
	// use it to kill a run at a precise shard boundary.
	OnBarrier func(cp *Checkpoint, round int) error
}

func (s *Spec) fillDefaults() error {
	if s.Kind == "" {
		return errors.New("jobs: spec needs a kind")
	}
	if s.Workers < 0 {
		return fmt.Errorf("jobs: negative workers %d", s.Workers)
	}
	if s.RoundSize == 0 {
		s.RoundSize = 8
	}
	if s.RoundSize < 1 {
		return fmt.Errorf("jobs: non-positive round size %d", s.RoundSize)
	}
	if s.MaxShardAttempts == 0 {
		s.MaxShardAttempts = 3
	}
	if s.MaxShardAttempts < 1 {
		return fmt.Errorf("jobs: non-positive attempt budget %d", s.MaxShardAttempts)
	}
	if s.RetryBackoff == 0 {
		s.RetryBackoff = 20 * time.Millisecond
	}
	return nil
}

// Outcome is a supervised job's result set.
type Outcome struct {
	// Keys is the full shard key list in submission order.
	Keys []string
	// Results maps completed shard keys to their JSON results
	// (including shards resumed from the checkpoint).
	Results map[string]json.RawMessage
	// Quarantined maps failed shard keys to their final error.
	Quarantined map[string]string
	// ResumedShards is how many shards were skipped because a valid
	// checkpoint already recorded them.
	ResumedShards int
	// ParentRunID is the run ID recorded in the checkpoint this run
	// resumed from; empty for a fresh run.
	ParentRunID string
	// Rounds is the number of committed round barriers.
	Rounds int
}

// Completed reports how many shards have results.
func (o *Outcome) Completed() int { return len(o.Results) }

// Run executes the shards under supervision and returns the outcome.
// runShard is invoked exactly as by runner.Run — its Info.Seed is
// ShardSeed(spec.Seed, key) — and must return a canonical JSON
// encoding of the shard's result (byte-stable for a given seed, since
// resumed runs replay these bytes instead of the computation).
//
// On context cancellation Run stops at the next shard completion
// without committing the in-flight round, returns the partial outcome
// and ctx's error; the checkpoint on disk stays at the last barrier,
// from which a later Run resumes.
func Run(ctx context.Context, spec Spec, keys []string, runShard func(context.Context, runner.Info) (json.RawMessage, error)) (*Outcome, error) {
	if err := spec.fillDefaults(); err != nil {
		return nil, err
	}
	if runShard == nil {
		return nil, errors.New("jobs: nil shard function")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	gActive.Set(gActive.Value() + 1)
	defer func() { gActive.Set(gActive.Value() - 1) }()

	cp, resumed, parent, err := openCheckpoint(spec, keys)
	if err != nil {
		return nil, err
	}
	out := &Outcome{
		Keys:          keys,
		Results:       make(map[string]json.RawMessage, len(keys)),
		Quarantined:   make(map[string]string),
		ResumedShards: resumed,
		ParentRunID:   parent,
	}
	gResumedShards.Set(float64(resumed))

	// Pending = keys not yet completed or quarantined, in order.
	var pending []string
	for _, k := range keys {
		if _, done := cp.Completed[k]; done {
			continue
		}
		if _, bad := cp.Quarantined[k]; bad {
			continue
		}
		pending = append(pending, k)
	}
	log.InfoContext(ctx, "job starting", "kind", spec.Kind, "run_id", spec.RunID,
		"shards", len(keys), "pending", len(pending), "resumed", resumed,
		"parent_run_id", parent, "workers", spec.Workers, "round_size", spec.RoundSize)

	for len(pending) > 0 {
		if err := ctx.Err(); err != nil {
			return finishOutcome(out, cp), err
		}
		n := spec.RoundSize
		if n > len(pending) {
			n = len(pending)
		}
		round, rest := pending[:n], pending[n:]
		if err := runRound(ctx, spec, cp, round, runShard); err != nil {
			return finishOutcome(out, cp), err
		}
		pending = rest

		// Barrier: the round is fully resolved and no shard is in
		// flight. Bank the counter totals (incrementing the per-barrier
		// bookkeeping first, so the banked totals include it and stay
		// resume-invariant) and commit the checkpoint atomically.
		cRounds.Inc()
		cp.Rounds++
		if spec.CheckpointPath != "" {
			cCheckpoints.Inc()
			cp.Counters = obs.Default.Snapshot().Counters
			if err := SaveCheckpoint(spec.CheckpointPath, cp); err != nil {
				return finishOutcome(out, cp), err
			}
			log.DebugContext(ctx, "checkpoint committed", "kind", spec.Kind,
				"round", cp.Rounds, "completed", len(cp.Completed),
				"quarantined", len(cp.Quarantined), "path", spec.CheckpointPath)
		}
		if spec.OnBarrier != nil {
			if err := spec.OnBarrier(cp, cp.Rounds); err != nil {
				return finishOutcome(out, cp), err
			}
		}
	}

	finishOutcome(out, cp)
	log.InfoContext(ctx, "job done", "kind", spec.Kind, "run_id", spec.RunID,
		"completed", len(out.Results), "quarantined", len(out.Quarantined),
		"rounds", out.Rounds)
	return out, nil
}

// openCheckpoint loads and verifies an existing checkpoint or creates
// a fresh one. On resume it seeds the obs registry with the banked
// counter totals and rewrites the lineage: the checkpoint's previous
// run becomes this run's parent.
func openCheckpoint(spec Spec, keys []string) (cp *Checkpoint, resumed int, parent string, err error) {
	if spec.CheckpointPath != "" {
		loaded, lerr := LoadCheckpoint(spec.CheckpointPath)
		switch {
		case lerr == nil:
			if err := loaded.matches(spec, keys); err != nil {
				return nil, 0, "", err
			}
			for _, k := range keys {
				rec, ok := loaded.Completed[k]
				if !ok {
					continue
				}
				if want := runner.ShardSeed(spec.Seed, k); rec.Seed != want {
					return nil, 0, "", fmt.Errorf("%w: shard %q recorded seed %d, derivation gives %d",
						ErrCheckpointMismatch, k, rec.Seed, want)
				}
			}
			for name, v := range loaded.Counters {
				obs.C(name).Add(v)
			}
			resumed = len(loaded.Completed) + len(loaded.Quarantined)
			parent = loaded.RunID
			loaded.ParentRunID = loaded.RunID
			loaded.RunID = spec.RunID
			return loaded, resumed, parent, nil
		case errors.Is(lerr, fs.ErrNotExist):
			// No checkpoint yet: fresh start. Any other load failure —
			// unreadable, corrupt, mismatched — is reported, never
			// silently overwritten.
		default:
			return nil, 0, "", lerr
		}
	}
	return NewCheckpoint(spec, keys), 0, "", nil
}

// runRound drives one round's shards to resolution: every key ends up
// in cp.Completed or cp.Quarantined, retrying failures with capped
// backoff. It only returns early on context cancellation or a
// checkpoint-grade internal error.
func runRound(ctx context.Context, spec Spec, cp *Checkpoint, round []string, runShard func(context.Context, runner.Info) (json.RawMessage, error)) error {
	attempts := make(map[string]int, len(round))
	current := round
	for wave := 0; len(current) > 0; wave++ {
		if wave > 0 {
			if err := retrySleep(ctx, spec.RetryBackoff, wave); err != nil {
				return err
			}
		}
		shards := make([]runner.Shard[json.RawMessage], len(current))
		for i, k := range current {
			shards[i] = runner.Shard[json.RawMessage]{Key: k, Run: runShard}
		}
		results, err := runner.Run(ctx, runner.Config{
			Name:    spec.Kind,
			Seed:    spec.Seed,
			Workers: spec.Workers,
		}, shards)
		if err != nil {
			// Only invalid configs or cancellation; both end the job.
			return err
		}
		var retry []string
		for i := range results {
			r := &results[i]
			cShardAttempts.Inc()
			if r.Err == nil {
				cp.Completed[r.Key] = ShardRecord{
					Seed: runner.ShardSeed(spec.Seed, r.Key),
					Data: r.Value,
				}
				continue
			}
			attempts[r.Key]++
			if attempts[r.Key] >= spec.MaxShardAttempts {
				cQuarantined.Inc()
				cp.Quarantined[r.Key] = r.Err.Error()
				log.WarnContext(ctx, "shard quarantined", "kind", spec.Kind,
					"shard", r.Key, "attempts", attempts[r.Key], "err", r.Err)
				continue
			}
			cShardRetries.Inc()
			log.WarnContext(ctx, "shard failed, will retry", "kind", spec.Kind,
				"shard", r.Key, "attempt", attempts[r.Key], "err", r.Err)
			retry = append(retry, r.Key)
		}
		current = retry
	}
	return nil
}

// retrySleep waits the capped exponential backoff before retry wave n
// (n >= 1), honouring cancellation. Backoff doubles per wave, capped
// at 8x the base.
func retrySleep(ctx context.Context, base time.Duration, wave int) error {
	if base <= 0 {
		return ctx.Err()
	}
	d := base << (wave - 1)
	if max := 8 * base; d > max {
		d = max
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// finishOutcome copies the checkpoint's durable state into the
// outcome.
func finishOutcome(out *Outcome, cp *Checkpoint) *Outcome {
	for k, rec := range cp.Completed {
		out.Results[k] = rec.Data
	}
	for k, msg := range cp.Quarantined {
		out.Quarantined[k] = msg
	}
	out.Rounds = cp.Rounds
	return out
}
