package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"strconv"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/runner"
)

// seedEcho is the simplest deterministic shard: it returns its derived
// seed, so result correctness is checkable against runner.ShardSeed.
func seedEcho(_ context.Context, info runner.Info) (json.RawMessage, error) {
	return json.Marshal(info.Seed)
}

// attemptCounter tracks per-key invocation counts across retries.
type attemptCounter struct {
	mu    sync.Mutex
	calls map[string]int
}

func newAttemptCounter() *attemptCounter {
	return &attemptCounter{calls: make(map[string]int)}
}

func (a *attemptCounter) bump(key string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.calls[key]++
	return a.calls[key]
}

func (a *attemptCounter) count(key string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.calls[key]
}

func demoKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = "demo/" + strconv.Itoa(i)
	}
	return keys
}

func TestRunCompletesAllShards(t *testing.T) {
	spec := Spec{Kind: "demo", Seed: 42, Workers: 4, RoundSize: 2, RetryBackoff: -1}
	keys := demoKeys(5)
	out, err := Run(context.Background(), spec, keys, seedEcho)
	if err != nil {
		t.Fatal(err)
	}
	if out.Completed() != 5 || len(out.Quarantined) != 0 {
		t.Fatalf("completed %d quarantined %d, want 5/0", out.Completed(), len(out.Quarantined))
	}
	if out.Rounds != 3 {
		t.Errorf("rounds = %d, want 3 (5 shards in rounds of 2)", out.Rounds)
	}
	for _, k := range keys {
		var got int64
		if err := json.Unmarshal(out.Results[k], &got); err != nil {
			t.Fatal(err)
		}
		if want := runner.ShardSeed(42, k); got != want {
			t.Errorf("shard %s seed = %d, want %d", k, got, want)
		}
	}
}

func TestRunRetriesTransientFailure(t *testing.T) {
	attempts := newAttemptCounter()
	shard := func(_ context.Context, info runner.Info) (json.RawMessage, error) {
		if info.Key == "demo/1" && attempts.bump(info.Key) < 3 {
			return nil, errors.New("transient")
		}
		return json.Marshal(info.Seed)
	}
	spec := Spec{Kind: "demo", Seed: 1, RoundSize: 4, MaxShardAttempts: 3, RetryBackoff: -1}
	out, err := Run(context.Background(), spec, demoKeys(3), shard)
	if err != nil {
		t.Fatal(err)
	}
	if out.Completed() != 3 || len(out.Quarantined) != 0 {
		t.Fatalf("completed %d quarantined %d, want 3/0", out.Completed(), len(out.Quarantined))
	}
	if got := attempts.count("demo/1"); got != 3 {
		t.Errorf("flaky shard ran %d times, want 3", got)
	}
}

func TestRunQuarantinesPersistentFailure(t *testing.T) {
	attempts := newAttemptCounter()
	shard := func(_ context.Context, info runner.Info) (json.RawMessage, error) {
		attempts.bump(info.Key)
		if info.Key == "demo/0" {
			return nil, errors.New("hardware on fire")
		}
		return json.Marshal(info.Seed)
	}
	spec := Spec{Kind: "demo", Seed: 1, RoundSize: 4, MaxShardAttempts: 2, RetryBackoff: -1}
	out, err := Run(context.Background(), spec, demoKeys(3), shard)
	if err != nil {
		t.Fatal(err)
	}
	if out.Completed() != 2 {
		t.Errorf("completed = %d, want 2", out.Completed())
	}
	if msg, ok := out.Quarantined["demo/0"]; !ok || msg != "hardware on fire" {
		t.Errorf("quarantine record = %q, %v; want the shard error", msg, ok)
	}
	if got := attempts.count("demo/0"); got != 2 {
		t.Errorf("failing shard ran %d times, want the 2-attempt budget", got)
	}
}

func TestRunQuarantinesPanickingShard(t *testing.T) {
	shard := func(_ context.Context, info runner.Info) (json.RawMessage, error) {
		if info.Key == "demo/1" {
			panic("bug in shard")
		}
		return json.Marshal(info.Seed)
	}
	spec := Spec{Kind: "demo", Seed: 1, RoundSize: 4, MaxShardAttempts: 2, RetryBackoff: -1}
	out, err := Run(context.Background(), spec, demoKeys(2), shard)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := out.Quarantined["demo/1"]; !ok {
		t.Errorf("panicking shard not quarantined: %+v", out.Quarantined)
	}
	if out.Completed() != 1 {
		t.Errorf("completed = %d, want 1", out.Completed())
	}
}

var errKill = errors.New("chaos: die at barrier")

func TestRunCheckpointResume(t *testing.T) {
	cpPath := filepath.Join(t.TempDir(), "cp.json")
	keys := demoKeys(6)
	attempts := newAttemptCounter()
	shard := func(_ context.Context, info runner.Info) (json.RawMessage, error) {
		attempts.bump(info.Key)
		return json.Marshal(info.Seed)
	}

	// First life: die right after the round-1 barrier commit.
	spec := Spec{Kind: "demo", RunID: "life-1", Seed: 9, RoundSize: 2,
		RetryBackoff: -1, CheckpointPath: cpPath,
		OnBarrier: func(cp *Checkpoint, round int) error {
			if round >= 1 {
				return errKill
			}
			return nil
		}}
	if _, err := Run(context.Background(), spec, keys, shard); !errors.Is(err, errKill) {
		t.Fatalf("first life = %v, want the chaos kill", err)
	}

	cp, err := LoadCheckpoint(cpPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.Completed) != 2 || cp.Rounds != 1 {
		t.Fatalf("checkpoint after kill: %d completed, %d rounds; want 2/1", len(cp.Completed), cp.Rounds)
	}

	// Second life: resume, finish the remaining rounds only.
	spec.RunID = "life-2"
	spec.OnBarrier = nil
	out, err := Run(context.Background(), spec, keys, shard)
	if err != nil {
		t.Fatal(err)
	}
	if out.Completed() != 6 {
		t.Fatalf("completed = %d, want 6", out.Completed())
	}
	if out.ResumedShards != 2 {
		t.Errorf("resumed shards = %d, want 2", out.ResumedShards)
	}
	if out.ParentRunID != "life-1" {
		t.Errorf("parent run = %q, want life-1", out.ParentRunID)
	}
	if out.Rounds != 3 {
		t.Errorf("rounds = %d, want 3", out.Rounds)
	}
	for _, k := range keys {
		if got := attempts.count(k); got != 1 {
			t.Errorf("shard %s ran %d times across both lives, want exactly 1", k, got)
		}
	}
	// The checkpoint now carries the new lineage.
	cp, err = LoadCheckpoint(cpPath)
	if err != nil {
		t.Fatal(err)
	}
	if cp.RunID != "life-2" || cp.ParentRunID != "life-1" {
		t.Errorf("checkpoint lineage = %q/%q, want life-2/life-1", cp.RunID, cp.ParentRunID)
	}
}

func TestRunResumeRejectsMismatchedSpec(t *testing.T) {
	cpPath := filepath.Join(t.TempDir(), "cp.json")
	keys := demoKeys(2)
	spec := Spec{Kind: "demo", Seed: 9, RoundSize: 1, RetryBackoff: -1, CheckpointPath: cpPath,
		OnBarrier: func(cp *Checkpoint, round int) error { return errKill }}
	if _, err := Run(context.Background(), spec, keys, seedEcho); !errors.Is(err, errKill) {
		t.Fatalf("first life = %v, want the chaos kill", err)
	}
	spec.OnBarrier = nil
	spec.Seed = 10
	if _, err := Run(context.Background(), spec, keys, seedEcho); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("resume with different seed = %v, want ErrCheckpointMismatch", err)
	}
}

func TestRunBanksAndRestoresCounters(t *testing.T) {
	defer obs.Default.Reset()
	obs.Default.Reset()

	const name = "test.jobs.banked_counter"
	cpPath := filepath.Join(t.TempDir(), "cp.json")
	keys := demoKeys(6)
	shard := func(_ context.Context, info runner.Info) (json.RawMessage, error) {
		obs.C(name).Inc() // one deterministic increment per shard execution
		return json.Marshal(info.Seed)
	}

	spec := Spec{Kind: "demo", Seed: 9, RoundSize: 2, RetryBackoff: -1, CheckpointPath: cpPath,
		OnBarrier: func(cp *Checkpoint, round int) error {
			if round >= 2 {
				return errKill
			}
			return nil
		}}
	if _, err := Run(context.Background(), spec, keys, shard); !errors.Is(err, errKill) {
		t.Fatalf("first life = %v, want the chaos kill", err)
	}
	cp, err := LoadCheckpoint(cpPath)
	if err != nil {
		t.Fatal(err)
	}
	if got := cp.Counters[name]; got != 4 {
		t.Fatalf("banked counter = %d, want 4 (two rounds of two shards)", got)
	}

	// Process death: the registry is wiped; resume must restore the bank.
	obs.Default.Reset()
	spec.OnBarrier = nil
	if _, err := Run(context.Background(), spec, keys, shard); err != nil {
		t.Fatal(err)
	}
	if got := obs.C(name).Value(); got != 6 {
		t.Errorf("counter after resume = %d, want 6 (every shard counted exactly once)", got)
	}
}

func TestRunCancellationLeavesCheckpointAtBarrier(t *testing.T) {
	cpPath := filepath.Join(t.TempDir(), "cp.json")
	ctx, cancel := context.WithCancel(context.Background())
	shard := func(_ context.Context, info runner.Info) (json.RawMessage, error) {
		if info.Key == "demo/3" {
			cancel() // mid-round-2 cancellation
		}
		return json.Marshal(info.Seed)
	}
	spec := Spec{Kind: "demo", Seed: 9, Workers: 1, RoundSize: 2, RetryBackoff: -1, CheckpointPath: cpPath}
	_, err := Run(ctx, spec, demoKeys(6), shard)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run = %v, want context.Canceled", err)
	}
	cp, lerr := LoadCheckpoint(cpPath)
	if lerr != nil {
		t.Fatal(lerr)
	}
	if cp.Rounds < 1 {
		t.Errorf("checkpoint rounds = %d, want at least the first barrier", cp.Rounds)
	}
	// Every banked shard must be from a committed round — multiples of
	// the round size until the key list runs out.
	if n := len(cp.Completed) + len(cp.Quarantined); n%2 != 0 {
		t.Errorf("checkpoint holds %d shards, not a whole number of rounds", n)
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{},                         // no kind
		{Kind: "x", Workers: -1},   // negative workers
		{Kind: "x", RoundSize: -1}, // negative round size
		{Kind: "x", MaxShardAttempts: -1},
	}
	for i, spec := range bad {
		if _, err := Run(context.Background(), spec, []string{"a"}, seedEcho); err == nil {
			t.Errorf("spec %d (%+v) accepted, want error", i, spec)
		}
	}
	if _, err := Run(context.Background(), Spec{Kind: "x"}, []string{"a"}, nil); err == nil {
		t.Error("nil shard function accepted")
	}
}

func TestShardRecordSeedVerifiedOnResume(t *testing.T) {
	cpPath := filepath.Join(t.TempDir(), "cp.json")
	keys := demoKeys(2)
	spec := Spec{Kind: "demo", Seed: 9, RoundSize: 2, RetryBackoff: -1, CheckpointPath: cpPath,
		OnBarrier: func(cp *Checkpoint, round int) error { return errKill }}
	if _, err := Run(context.Background(), spec, keys, seedEcho); !errors.Is(err, errKill) {
		t.Fatal(err)
	}
	// Corrupt a recorded shard seed in a CRC-consistent way (an editor,
	// not bit rot) — resume must still catch it via re-derivation.
	cp, err := LoadCheckpoint(cpPath)
	if err != nil {
		t.Fatal(err)
	}
	rec := cp.Completed["demo/0"]
	rec.Seed++
	cp.Completed["demo/0"] = rec
	if err := SaveCheckpoint(cpPath, cp); err != nil {
		t.Fatal(err)
	}
	spec.OnBarrier = nil
	_, err = Run(context.Background(), spec, keys, seedEcho)
	if !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("resume with drifted shard seed = %v, want ErrCheckpointMismatch", err)
	}
	if err != nil && !errors.Is(err, ErrCheckpointMismatch) {
		t.Error(fmt.Errorf("unexpected error class: %w", err))
	}
}
