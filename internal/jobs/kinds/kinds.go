// Package kinds registers the experiment types the supervised job
// engine can run. A Kind adapts one core experiment to the engine's
// shard protocol: Plan expands a job spec into the deterministic shard
// key list, Shard executes one key (its Info.Seed already derived by
// runner.ShardSeed exactly as the direct experiment paths derive it),
// and Aggregate folds the completed shard records back into the
// experiment's result type. The adapters reuse the experiments'
// exported per-shard units, so a supervised run measures bit-identical
// values to a one-shot run of the same seed.
package kinds

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/jobs"
	"repro/internal/runner"
)

// Kind is one experiment type the job engine can supervise.
type Kind struct {
	// Name is the registry key and the checkpoint's Kind field.
	Name string
	// Plan expands the spec into the shard key list, in submission
	// order. It must be a pure function of the spec.
	Plan func(spec jobs.Spec) ([]string, error)
	// Shard runs one shard; info.Seed is runner.ShardSeed(spec.Seed,
	// key). The returned JSON must be byte-stable for a given seed —
	// resumed runs replay these bytes instead of recomputing.
	Shard func(ctx context.Context, spec jobs.Spec, info runner.Info) (json.RawMessage, error)
	// Aggregate folds a completed outcome into the experiment result.
	// Quarantined shards are absent from the results map; aggregators
	// degrade (fit what survived) or fail with a clear error.
	Aggregate func(spec jobs.Spec, out *jobs.Outcome) (any, error)
}

var registry = map[string]Kind{}

// Register adds a kind; duplicate names panic at init time.
func Register(k Kind) {
	if k.Name == "" || k.Plan == nil || k.Shard == nil || k.Aggregate == nil {
		panic("kinds: incomplete kind registration")
	}
	if _, dup := registry[k.Name]; dup {
		panic("kinds: duplicate kind " + k.Name)
	}
	registry[k.Name] = k
}

// Lookup returns a registered kind.
func Lookup(name string) (Kind, error) {
	k, ok := registry[name]
	if !ok {
		return Kind{}, fmt.Errorf("kinds: unknown job kind %q (have %s)", name, strings.Join(Names(), ", "))
	}
	return k, nil
}

// Names lists the registered kinds, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// specFaults builds the fault profile a spec describes, or nil for
// none.
func specFaults(spec jobs.Spec) (*faults.Profile, error) {
	if spec.FaultProfile == "" || spec.FaultProfile == "none" {
		return nil, nil
	}
	p, err := faults.Preset(spec.FaultProfile)
	if err != nil {
		return nil, err
	}
	intensity := spec.FaultIntensity
	if intensity == 0 {
		intensity = 1
	}
	p, err = p.Scale(intensity)
	if err != nil {
		return nil, err
	}
	return &p, nil
}

// ---- characterize ----

// CharacterizeJobConfig is the spec.Config payload of a characterize
// job: the subset of core.CharacterizeConfig that isn't already spec
// identity (seed, faults) or execution detail (parallelism).
type CharacterizeJobConfig struct {
	Levels            int  `json:"levels,omitempty"`
	SamplesPerLevel   int  `json:"samples_per_level,omitempty"`
	WarmupUpdates     int  `json:"warmup_updates,omitempty"`
	DisableStabilizer bool `json:"disable_stabilizer,omitempty"`
}

func characterizeCore(spec jobs.Spec) (core.CharacterizeConfig, error) {
	var jc CharacterizeJobConfig
	if len(spec.Config) > 0 {
		if err := json.Unmarshal(spec.Config, &jc); err != nil {
			return core.CharacterizeConfig{}, fmt.Errorf("kinds: characterize config: %w", err)
		}
	}
	fp, err := specFaults(spec)
	if err != nil {
		return core.CharacterizeConfig{}, err
	}
	return core.CharacterizeConfig{
		Seed:              spec.Seed,
		Levels:            jc.Levels,
		SamplesPerLevel:   jc.SamplesPerLevel,
		WarmupUpdates:     jc.WarmupUpdates,
		DisableStabilizer: jc.DisableStabilizer,
		Faults:            fp,
	}, nil
}

// levelFromKey recovers the activation level from a characterize shard
// key ("characterize/level/N").
func levelFromKey(key string) (int, error) {
	i := strings.LastIndexByte(key, '/')
	if i < 0 {
		return 0, fmt.Errorf("kinds: malformed characterize key %q", key)
	}
	level, err := strconv.Atoi(key[i+1:])
	if err != nil {
		return 0, fmt.Errorf("kinds: malformed characterize key %q: %w", key, err)
	}
	return level, nil
}

func characterizeKind() Kind {
	return Kind{
		Name: "characterize",
		Plan: func(spec jobs.Spec) ([]string, error) {
			ccfg, err := characterizeCore(spec)
			if err != nil {
				return nil, err
			}
			levels := ccfg.Levels
			if levels == 0 {
				levels = core.DefaultCharacterizeLevels
			}
			if levels < 2 {
				return nil, errors.New("kinds: need at least two levels")
			}
			keys := make([]string, levels)
			for level := 0; level < levels; level++ {
				keys[level] = core.CharacterizeLevelKey(level)
			}
			return keys, nil
		},
		Shard: func(ctx context.Context, spec jobs.Spec, info runner.Info) (json.RawMessage, error) {
			ccfg, err := characterizeCore(spec)
			if err != nil {
				return nil, err
			}
			level, err := levelFromKey(info.Key)
			if err != nil {
				return nil, err
			}
			reading, err := core.CharacterizeLevel(ccfg, info.Seed, level)
			if err != nil {
				return nil, err
			}
			return json.Marshal(reading)
		},
		Aggregate: func(spec jobs.Spec, out *jobs.Outcome) (any, error) {
			readings := make([]core.LevelReading, 0, len(out.Results))
			for _, key := range out.Keys {
				data, ok := out.Results[key]
				if !ok {
					continue // quarantined level: fit what survived
				}
				var r core.LevelReading
				if err := json.Unmarshal(data, &r); err != nil {
					return nil, fmt.Errorf("kinds: shard %s record: %w", key, err)
				}
				readings = append(readings, r)
			}
			return core.FitCharacterize(readings)
		},
	}
}

// ---- applicability ----

// ApplicabilityJobConfig is the spec.Config payload of an
// applicability job.
type ApplicabilityJobConfig struct {
	Levels          int `json:"levels,omitempty"`
	SamplesPerLevel int `json:"samples_per_level,omitempty"`
}

func applicabilityCore(spec jobs.Spec) (core.ApplicabilityConfig, error) {
	var jc ApplicabilityJobConfig
	if len(spec.Config) > 0 {
		if err := json.Unmarshal(spec.Config, &jc); err != nil {
			return core.ApplicabilityConfig{}, fmt.Errorf("kinds: applicability config: %w", err)
		}
	}
	fp, err := specFaults(spec)
	if err != nil {
		return core.ApplicabilityConfig{}, err
	}
	return core.ApplicabilityConfig{
		Seed:            spec.Seed,
		Levels:          jc.Levels,
		SamplesPerLevel: jc.SamplesPerLevel,
		Faults:          fp,
	}, nil
}

func applicabilityKind() Kind {
	return Kind{
		Name: "applicability",
		Plan: func(spec jobs.Spec) ([]string, error) {
			catalog := board.Catalog()
			keys := make([]string, len(catalog))
			for i, bs := range catalog {
				keys[i] = "applicability/" + bs.Name
			}
			return keys, nil
		},
		Shard: func(ctx context.Context, spec jobs.Spec, info runner.Info) (json.RawMessage, error) {
			acfg, err := applicabilityCore(spec)
			if err != nil {
				return nil, err
			}
			name := strings.TrimPrefix(info.Key, "applicability/")
			row, err := core.ApplicabilityBoard(ctx, acfg, name)
			if err != nil {
				return nil, err
			}
			return json.Marshal(row)
		},
		Aggregate: func(spec jobs.Spec, out *jobs.Outcome) (any, error) {
			rows := make([]core.BoardApplicability, 0, len(out.Results))
			for _, key := range out.Keys {
				data, ok := out.Results[key]
				if !ok {
					continue // quarantined board: the survey degrades to the rest
				}
				var row core.BoardApplicability
				if err := json.Unmarshal(data, &row); err != nil {
					return nil, fmt.Errorf("kinds: shard %s record: %w", key, err)
				}
				rows = append(rows, row)
			}
			if len(rows) == 0 {
				return nil, errors.New("kinds: every applicability board quarantined")
			}
			return rows, nil
		},
	}
}

func init() {
	Register(characterizeKind())
	Register(applicabilityKind())
}
