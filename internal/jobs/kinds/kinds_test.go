package kinds_test

// The adapters' contract: a supervised run of an experiment computes
// exactly what the direct path computes — same shard keys, same
// derived seeds, same numbers after the JSON round-trip through the
// checkpoint format.

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/jobs/kinds"
	"repro/internal/runner"
)

func runKind(t *testing.T, spec jobs.Spec) any {
	t.Helper()
	kind, err := kinds.Lookup(spec.Kind)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := kind.Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	out, err := jobs.Run(context.Background(), spec, keys, func(ctx context.Context, info runner.Info) (json.RawMessage, error) {
		return kind.Shard(ctx, spec, info)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Quarantined) != 0 {
		t.Fatalf("unexpected quarantines: %v", out.Quarantined)
	}
	agg, err := kind.Aggregate(spec, out)
	if err != nil {
		t.Fatal(err)
	}
	return agg
}

func TestCharacterizeKindMatchesDirectPath(t *testing.T) {
	spec := jobs.Spec{
		Kind:         "characterize",
		Seed:         11,
		Board:        "zcu102",
		Workers:      2,
		RoundSize:    3,
		RetryBackoff: -1,
		Config:       json.RawMessage(`{"levels":5,"samples_per_level":4}`),
	}
	got := runKind(t, spec).(*core.CharacterizeResult)

	want, err := core.Characterize(core.CharacterizeConfig{
		Seed:            11,
		Levels:          5,
		SamplesPerLevel: 4,
		Parallelism:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("supervised characterize differs from direct path:\n got %+v\nwant %+v", got, want)
	}
}

func TestApplicabilityKindMatchesDirectPath(t *testing.T) {
	spec := jobs.Spec{
		Kind:         "applicability",
		Seed:         11,
		Board:        "all",
		Workers:      2,
		RoundSize:    4,
		RetryBackoff: -1,
		Config:       json.RawMessage(`{"levels":3,"samples_per_level":2}`),
	}
	got := runKind(t, spec).([]core.BoardApplicability)

	want, err := core.Applicability(core.ApplicabilityConfig{
		Seed:            11,
		Levels:          3,
		SamplesPerLevel: 2,
		Parallelism:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("supervised applicability differs from direct path:\n got %+v\nwant %+v", got, want)
	}
}

func TestLookupUnknownKind(t *testing.T) {
	_, err := kinds.Lookup("frobnicate")
	if err == nil || !strings.Contains(err.Error(), "characterize") {
		t.Errorf("unknown-kind error should list the registry: %v", err)
	}
	names := kinds.Names()
	if len(names) < 2 || names[0] != "applicability" {
		t.Errorf("Names() = %v, want sorted registry with applicability first", names)
	}
}

func TestCharacterizeKindRejectsBadConfig(t *testing.T) {
	kind, err := kinds.Lookup("characterize")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := kind.Plan(jobs.Spec{Kind: "characterize", Config: json.RawMessage(`{"levels":`)}); err == nil {
		t.Error("truncated config accepted")
	}
	if _, err := kind.Plan(jobs.Spec{Kind: "characterize", FaultProfile: "no-such-profile"}); err == nil {
		t.Error("unknown fault profile accepted")
	}
	if _, err := kind.Plan(jobs.Spec{Kind: "characterize", Config: json.RawMessage(`{"levels":1}`)}); err == nil {
		t.Error("single-level sweep accepted")
	}
}
