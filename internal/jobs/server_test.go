package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// blockingExecutor blocks until release is closed (or the job context
// is cancelled), then reports a fixed outcome.
func blockingExecutor(release <-chan struct{}) Executor {
	return func(ctx context.Context, spec Spec) (*Outcome, any, error) {
		select {
		case <-release:
		case <-ctx.Done():
			return &Outcome{Results: map[string]json.RawMessage{}, Quarantined: map[string]string{}}, nil, ctx.Err()
		}
		return &Outcome{
			Results:     map[string]json.RawMessage{"k": json.RawMessage(`1`)},
			Quarantined: map[string]string{},
			Rounds:      1,
		}, map[string]int{"answer": 42}, nil
	}
}

// waitForState polls until the job reaches the state or the deadline
// trips.
func waitForState(t *testing.T, s *Server, id string, want JobState) *Job {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		job, ok := s.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		s.mu.Lock()
		state := job.State
		s.mu.Unlock()
		if state == want {
			return job
		}
		time.Sleep(2 * time.Millisecond)
	}
	job, _ := s.Get(id)
	t.Fatalf("job %s never reached %s (stuck at %s)", id, want, job.State)
	return nil
}

func TestServerSubmitRunsToDone(t *testing.T) {
	release := make(chan struct{})
	close(release)
	s, err := NewServer(ServerConfig{Executor: blockingExecutor(release)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(context.Background())
	job, err := s.Submit(SubmitRequest{Kind: "demo", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	done := waitForState(t, s, job.ID, StateDone)
	s.mu.Lock()
	defer s.mu.Unlock()
	if done.Completed != 1 || done.Rounds != 1 || done.Error != "" {
		t.Errorf("done job record = %+v", done)
	}
}

func TestServerAdmissionShedsBeyondQueue(t *testing.T) {
	release := make(chan struct{})
	s, err := NewServer(ServerConfig{Executor: blockingExecutor(release), MaxConcurrent: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(release)
		s.Drain(context.Background())
	}()

	first, err := s.Submit(SubmitRequest{Kind: "demo"})
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, s, first.ID, StateRunning)
	second, err := s.Submit(SubmitRequest{Kind: "demo"})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the second job occupies the one queue slot, then the
	// third must shed.
	deadline := time.Now().Add(5 * time.Second)
	for s.adm.Waiting() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	third, err := s.Submit(SubmitRequest{Kind: "demo"})
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, s, third.ID, StateShed)
	if _, ok := s.Get(second.ID); !ok {
		t.Error("queued job lost")
	}
}

func TestServerCancelRunningJob(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s, err := NewServer(ServerConfig{Executor: blockingExecutor(release)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(context.Background())
	job, err := s.Submit(SubmitRequest{Kind: "demo"})
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, s, job.ID, StateRunning)
	if _, err := s.Cancel(job.ID); err != nil {
		t.Fatal(err)
	}
	waitForState(t, s, job.ID, StateCancelled)
	if _, err := s.Cancel("job-999"); err == nil {
		t.Error("cancel of unknown job succeeded")
	}
}

func TestServerDrainCancelsAndRejects(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s, err := NewServer(ServerConfig{Executor: blockingExecutor(release), MaxConcurrent: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := s.Submit(SubmitRequest{Kind: "demo"})
	b, _ := s.Submit(SubmitRequest{Kind: "demo"})
	waitForState(t, s, a.ID, StateRunning)
	waitForState(t, s, b.ID, StateRunning)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range []string{a.ID, b.ID} {
		job, _ := s.Get(id)
		if job.State != StateCancelled {
			t.Errorf("job %s after drain = %s, want cancelled", id, job.State)
		}
	}
	if _, err := s.Submit(SubmitRequest{Kind: "demo"}); err == nil || !strings.Contains(err.Error(), "draining") {
		t.Errorf("submit after drain = %v, want draining rejection", err)
	}
}

func TestServerHTTPRoundtrip(t *testing.T) {
	release := make(chan struct{})
	close(release)
	s, err := NewServer(ServerConfig{Executor: blockingExecutor(release)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(context.Background())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Submit.
	body, _ := json.Marshal(SubmitRequest{Kind: "demo", Seed: 3})
	resp, err := http.Post(srv.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitForState(t, s, job.ID, StateDone)

	// Status and list.
	resp, err = http.Get(srv.URL + "/jobs/" + job.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got Job
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.State != StateDone {
		t.Errorf("status = %s, want done", got.State)
	}
	resp, err = http.Get(srv.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []Job
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 {
		t.Errorf("list has %d jobs, want 1", len(list))
	}

	// Result of a done job.
	resp, err = http.Get(srv.URL + "/jobs/" + job.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var result map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&result); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if result["answer"] != 42 {
		t.Errorf("result = %v", result)
	}

	// Unknown job and bad payload.
	resp, _ = http.Get(srv.URL + "/jobs/job-999")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = http.Post(srv.URL+"/jobs", "application/json", strings.NewReader("{"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad payload status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestServerSubmitRateLimit(t *testing.T) {
	release := make(chan struct{})
	close(release)
	s, err := NewServer(ServerConfig{
		Executor:     blockingExecutor(release),
		SubmitPerSec: 1e-9, // effectively one token, no refill
		SubmitBurst:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(context.Background())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	post := func() int {
		body, _ := json.Marshal(SubmitRequest{Kind: "demo"})
		resp, err := http.Post(srv.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(); code != http.StatusAccepted {
		t.Fatalf("first submit = %d", code)
	}
	if code := post(); code != http.StatusTooManyRequests {
		t.Errorf("second submit = %d, want 429", code)
	}
}

func TestServerConfigValidation(t *testing.T) {
	if _, err := NewServer(ServerConfig{}); err == nil {
		t.Error("nil executor accepted")
	}
	exec := blockingExecutor(nil)
	for i, cfg := range []ServerConfig{
		{Executor: exec, MaxConcurrent: -1},
		{Executor: exec, QueueDepth: -1},
	} {
		if _, err := NewServer(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := (&Server{jobs: map[string]*Job{}}).Submit(SubmitRequest{}); err == nil {
		t.Error("kindless submission accepted")
	}
}
