package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
)

// Server metrics: the live side of the job engine. These never enter
// deterministic manifests (a server interleaves many jobs in one
// registry), so plain counters are fine.
var (
	cSrvSubmitted = obs.C("jobs.server.submitted")
	cSrvCompleted = obs.C("jobs.server.completed")
	cSrvFailed    = obs.C("jobs.server.failed")
	cSrvShed      = obs.C("jobs.server.shed")
	cSrvCancelled = obs.C("jobs.server.cancelled")
	gSrvRunning   = obs.G("jobs.server.running")
	gSrvQueued    = obs.G("jobs.server.queued")
)

// JobState is a submitted job's lifecycle state.
type JobState string

const (
	StateQueued    JobState = "queued"    // waiting in the admission queue
	StateRunning   JobState = "running"   // admitted, shards executing
	StateDone      JobState = "done"      // completed (possibly with quarantines)
	StateFailed    JobState = "failed"    // engine error
	StateShed      JobState = "shed"      // rejected by admission control
	StateCancelled JobState = "cancelled" // cancelled by request or drain
)

// Executor runs one supervised job to completion and returns its
// outcome plus the kind-specific aggregate. The CLI supplies it from
// the kind registry; the indirection keeps this package free of
// experiment imports.
type Executor func(ctx context.Context, spec Spec) (*Outcome, any, error)

// ServerConfig parameterizes a job server.
type ServerConfig struct {
	// Executor is required.
	Executor Executor
	// MaxConcurrent jobs run at once; zero means 2.
	MaxConcurrent int
	// QueueDepth bounds the admission wait queue; submissions beyond it
	// are shed. Zero means 4.
	QueueDepth int
	// SubmitPerSec rate-limits submissions (token bucket, burst
	// SubmitBurst); zero disables the limiter.
	SubmitPerSec float64
	SubmitBurst  int
	// CheckpointDir is where per-job checkpoints are written; empty
	// disables checkpointing.
	CheckpointDir string
}

// Job is one submission's record.
type Job struct {
	ID        string     `json:"id"`
	State     JobState   `json:"state"`
	Kind      string     `json:"kind"`
	Error     string     `json:"error,omitempty"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	// Completed/Quarantined/Rounds/ResumedShards summarize the outcome.
	Completed     int    `json:"completed,omitempty"`
	Quarantined   int    `json:"quarantined,omitempty"`
	Rounds        int    `json:"rounds,omitempty"`
	ResumedShards int    `json:"resumed_shards,omitempty"`
	Checkpoint    string `json:"checkpoint,omitempty"`

	spec   Spec
	cancel context.CancelFunc
	result any
}

// Server is the HTTP job API: submit, status, cancel, with admission
// control in front of the engine and a graceful drain that leaves
// every in-flight job checkpointed at its last round barrier.
type Server struct {
	cfg    ServerConfig
	adm    *resilience.Admission
	bucket *resilience.TokenBucket

	root     context.Context
	shutdown context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*Job
	nextID   int
	draining bool
	wg       sync.WaitGroup
}

// NewServer builds a job server.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Executor == nil {
		return nil, errors.New("jobs: server needs an executor")
	}
	if cfg.MaxConcurrent == 0 {
		cfg.MaxConcurrent = 2
	}
	if cfg.MaxConcurrent < 1 {
		return nil, fmt.Errorf("jobs: non-positive concurrency %d", cfg.MaxConcurrent)
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 4
	}
	if cfg.QueueDepth < 0 {
		return nil, fmt.Errorf("jobs: negative queue depth %d", cfg.QueueDepth)
	}
	adm, err := resilience.NewAdmission(cfg.MaxConcurrent, cfg.QueueDepth)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, adm: adm, jobs: make(map[string]*Job)}
	if cfg.SubmitPerSec > 0 {
		burst := cfg.SubmitBurst
		if burst == 0 {
			burst = int(cfg.SubmitPerSec) + 1
		}
		start := time.Now()
		bucket, err := resilience.NewTokenBucket(cfg.SubmitPerSec, burst, func() time.Duration {
			return time.Since(start)
		})
		if err != nil {
			return nil, err
		}
		s.bucket = bucket
	}
	s.root, s.shutdown = context.WithCancel(context.Background())
	return s, nil
}

// SubmitRequest is the POST /jobs payload.
type SubmitRequest struct {
	Kind           string          `json:"kind"`
	Seed           int64           `json:"seed"`
	Board          string          `json:"board,omitempty"`
	FaultProfile   string          `json:"fault_profile,omitempty"`
	FaultIntensity float64         `json:"fault_intensity,omitempty"`
	Workers        int             `json:"workers,omitempty"`
	RoundSize      int             `json:"round_size,omitempty"`
	Config         json.RawMessage `json:"config,omitempty"`
}

// Submit enqueues a job and returns its record. The job waits in the
// bounded admission queue; beyond the queue depth it is shed.
func (s *Server) Submit(req SubmitRequest) (*Job, error) {
	if req.Kind == "" {
		return nil, errors.New("jobs: submission needs a kind")
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, errors.New("jobs: server is draining")
	}
	s.nextID++
	id := fmt.Sprintf("job-%d", s.nextID)
	job := &Job{
		ID:        id,
		State:     StateQueued,
		Kind:      req.Kind,
		Submitted: time.Now(),
		spec: Spec{
			Kind:           req.Kind,
			RunID:          id,
			Seed:           req.Seed,
			Board:          req.Board,
			FaultProfile:   req.FaultProfile,
			FaultIntensity: req.FaultIntensity,
			Workers:        req.Workers,
			RoundSize:      req.RoundSize,
			Config:         req.Config,
		},
	}
	if s.cfg.CheckpointDir != "" {
		job.spec.CheckpointPath = filepath.Join(s.cfg.CheckpointDir, id+".checkpoint.json")
		job.Checkpoint = job.spec.CheckpointPath
	}
	ctx, cancel := context.WithCancel(s.root)
	job.cancel = cancel
	s.jobs[id] = job
	s.wg.Add(1)
	s.mu.Unlock()

	cSrvSubmitted.Inc()
	gSrvQueued.Set(float64(s.adm.Waiting()))
	go s.execute(ctx, job)
	return job, nil
}

// execute drives one job through admission, the engine, and its
// terminal state.
func (s *Server) execute(ctx context.Context, job *Job) {
	defer s.wg.Done()
	defer job.cancel()
	release, err := s.adm.Acquire(ctx)
	gSrvQueued.Set(float64(s.adm.Waiting()))
	if err != nil {
		state := StateShed
		if errors.Is(err, context.Canceled) {
			state = StateCancelled
			cSrvCancelled.Inc()
		} else {
			cSrvShed.Inc()
		}
		s.finish(job, state, nil, nil, err)
		return
	}
	defer release()

	now := time.Now()
	s.mu.Lock()
	job.State = StateRunning
	job.Started = &now
	s.mu.Unlock()
	gSrvRunning.Set(float64(s.adm.InFlight()))
	log.InfoContext(ctx, "job admitted", "job", job.ID, "kind", job.Kind)

	out, result, err := s.cfg.Executor(ctx, job.spec)
	switch {
	case err == nil:
		cSrvCompleted.Inc()
		s.finish(job, StateDone, out, result, nil)
	case errors.Is(err, context.Canceled):
		cSrvCancelled.Inc()
		s.finish(job, StateCancelled, out, nil, err)
	default:
		cSrvFailed.Inc()
		s.finish(job, StateFailed, out, nil, err)
	}
	gSrvRunning.Set(float64(s.adm.InFlight() - 1))
}

func (s *Server) finish(job *Job, state JobState, out *Outcome, result any, err error) {
	now := time.Now()
	s.mu.Lock()
	job.State = state
	job.Finished = &now
	if err != nil {
		job.Error = err.Error()
	}
	if out != nil {
		job.Completed = out.Completed()
		job.Quarantined = len(out.Quarantined)
		job.Rounds = out.Rounds
		job.ResumedShards = out.ResumedShards
	}
	job.result = result
	s.mu.Unlock()
	log.Info("job finished", "job", job.ID, "state", string(state), "err", job.Error)
}

// Cancel cancels a job by ID; queued jobs leave the queue, running
// jobs stop at the next shard completion with their checkpoint at the
// last committed barrier.
func (s *Server) Cancel(id string) (*Job, error) {
	s.mu.Lock()
	job, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("jobs: unknown job %q", id)
	}
	job.cancel()
	return job, nil
}

// Get returns a job by ID.
func (s *Server) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	return job, ok
}

// List returns all jobs, oldest submission first.
func (s *Server) List() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Submitted.Before(out[k].Submitted) })
	return out
}

// Drain stops accepting submissions, cancels every job's context (the
// engine stops at the next shard completion, checkpoint already at the
// last barrier), and waits for all job goroutines — bounded by ctx.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.shutdown()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("jobs: drain timed out: %w", ctx.Err())
	}
}

// Handler returns the job API mux:
//
//	POST   /jobs             submit (SubmitRequest body) -> 202 + Job
//	GET    /jobs             list
//	GET    /jobs/{id}        status
//	GET    /jobs/{id}/result kind-specific aggregate of a done job
//	POST   /jobs/{id}/cancel cancel
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		if s.bucket != nil && !s.bucket.Allow() {
			http.Error(w, "submission rate limit exceeded", http.StatusTooManyRequests)
			return
		}
		var req SubmitRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad submit payload: "+err.Error(), http.StatusBadRequest)
			return
		}
		job, err := s.Submit(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		writeJSON(w, http.StatusAccepted, job.view(&s.mu))
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		jobs := s.List()
		views := make([]Job, len(jobs))
		for i, j := range jobs {
			views[i] = j.view(&s.mu)
		}
		writeJSON(w, http.StatusOK, views)
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := s.Get(r.PathValue("id"))
		if !ok {
			http.Error(w, "no such job", http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, job.view(&s.mu))
	})
	mux.HandleFunc("GET /jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		job, ok := s.Get(r.PathValue("id"))
		if !ok {
			http.Error(w, "no such job", http.StatusNotFound)
			return
		}
		s.mu.Lock()
		state, result := job.State, job.result
		s.mu.Unlock()
		if state != StateDone {
			http.Error(w, fmt.Sprintf("job is %s, not done", state), http.StatusConflict)
			return
		}
		writeJSON(w, http.StatusOK, result)
	})
	mux.HandleFunc("POST /jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		job, err := s.Cancel(r.PathValue("id"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, job.view(&s.mu))
	})
	return mux
}

// view copies the job's exported fields under the server lock, so
// handlers never serialize a record the executor is mutating.
func (j *Job) view(mu *sync.Mutex) Job {
	mu.Lock()
	defer mu.Unlock()
	return Job{
		ID: j.ID, State: j.State, Kind: j.Kind, Error: j.Error,
		Submitted: j.Submitted, Started: j.Started, Finished: j.Finished,
		Completed: j.Completed, Quarantined: j.Quarantined,
		Rounds: j.Rounds, ResumedShards: j.ResumedShards,
		Checkpoint: j.Checkpoint,
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
