package pdn

import (
	"math"
	"testing"
	"time"
)

func TestSetDisturbanceEscapesBandTransiently(t *testing.T) {
	rail := mkRail(t)
	reg, err := NewRegulator(RegulatorConfig{Rail: rail, Band: usBand})
	if err != nil {
		t.Fatalf("NewRegulator: %v", err)
	}
	const dt = 100 * time.Microsecond
	reg.Step(dt, dt)
	clean := rail.Voltage()
	if !usBand.Contains(clean) {
		t.Fatalf("stabilized voltage %v outside band before injection", clean)
	}

	// A +50 mV transient rides on top of the regulated value, so the
	// excursion escapes the stabilizer band — the observable signature
	// of an injected VRM load-step.
	reg.SetDisturbance(func(now time.Duration) float64 { return 0.05 })
	reg.Step(2*dt, dt)
	excursion := rail.Voltage()
	if math.Abs(excursion-(clean+0.05)) > 1e-12 {
		t.Fatalf("disturbed voltage = %v, want %v", excursion, clean+0.05)
	}
	if usBand.Contains(excursion) {
		t.Errorf("transient %v did not escape the band", excursion)
	}

	// Removing the hook restores the regulated output on the next tick.
	reg.SetDisturbance(nil)
	reg.Step(3*dt, dt)
	if v := rail.Voltage(); v != clean {
		t.Errorf("voltage after hook removal = %v, want %v", v, clean)
	}
}

func TestSetDisturbanceAppliesWhenStabilizerDisabled(t *testing.T) {
	rail := mkRail(t)
	reg, err := NewRegulator(RegulatorConfig{Rail: rail, Band: usBand, Disabled: true})
	if err != nil {
		t.Fatalf("NewRegulator: %v", err)
	}
	const dt = 100 * time.Microsecond
	reg.Step(dt, dt)
	clean := rail.Voltage()
	reg.SetDisturbance(func(time.Duration) float64 { return -0.02 })
	reg.Step(2*dt, dt)
	if got, want := rail.Voltage(), clean-0.02; math.Abs(got-want) > 1e-12 {
		t.Errorf("unstabilized disturbed voltage = %v, want %v", got, want)
	}
}
