// Package pdn models the power delivery network between a board's
// voltage regulator modules and a monitored rail.
//
// It implements the two electrical facts the AmpereBleed paper builds on:
//
// Equation 1 — in an (idealized, stabilizer-free) shared PDN, a load
// increase produces a voltage drop with a resistive and an inductive
// component:
//
//	V_drop = I·R + L·ΔI/Δt
//
// This is the quantity crafted sensor circuits (ring oscillators, TDC
// lines, ...) observe.
//
// The stabilizer — commercial boards regulate the FPGA core rail into a
// tight band (0.825–0.876 V on Zynq UltraScale+, 0.775–0.825 V on
// Versal, Table I), which squeezes the voltage channel to a few LSBs
// while the *current* keeps tracking power linearly. The Regulator type
// models exactly that: a load-line sag plus the RLC transient, hard
// clamped into the band.
package pdn

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/power"
)

// DropModel is the equivalent series impedance of a PDN path.
type DropModel struct {
	// ResistanceOhm is the effective series resistance R.
	ResistanceOhm float64
	// InductanceHenry is the effective series inductance L.
	InductanceHenry float64
}

// Drop returns V_drop for a present current i, previous current prev, and
// step dt (Equation 1). dt must be positive.
func (m DropModel) Drop(i, prev float64, dt time.Duration) float64 {
	return m.dropSec(i, prev, dt.Seconds())
}

// dropSec is Drop with the step already converted to seconds, so the
// fixed-step tick loop can reuse a cached conversion.
func (m DropModel) dropSec(i, prev, sec float64) float64 {
	didt := (i - prev) / sec
	return i*m.ResistanceOhm + m.InductanceHenry*didt
}

// Band is a closed voltage interval maintained by a stabilizer.
type Band struct {
	Min, Max float64
}

// Contains reports whether v lies inside the band.
func (b Band) Contains(v float64) bool { return v >= b.Min && v <= b.Max }

// Clamp returns v limited to the band.
func (b Band) Clamp(v float64) float64 {
	if v < b.Min {
		return b.Min
	}
	if v > b.Max {
		return b.Max
	}
	return v
}

// Width returns the band width in volts.
func (b Band) Width() float64 { return b.Max - b.Min }

// RegulatorConfig configures a rail regulator.
type RegulatorConfig struct {
	// Rail is the regulated rail. Required.
	Rail *power.Rail
	// Band is the stabilizer's guaranteed output window. Required with
	// Min < Max; the rail's nominal voltage must lie inside it.
	Band Band
	// Drop is the PDN series impedance feeding the rail.
	Drop DropModel
	// LoadLineOhm is the regulator's DC load-line (output droop per amp).
	// Real VRMs deliberately program a small droop; with the stabilizer
	// this is what produces the weak residual voltage/load correlation
	// the paper measures (Pearson 0.958 but only a few LSBs of swing).
	LoadLineOhm float64
	// Enabled=false bypasses regulation entirely: the rail sees the raw
	// nominal-minus-drop voltage. Used by the stabilizer-off ablation to
	// show why RO-style sensors work on an unstabilized PDN.
	Disabled bool
}

// Regulator holds a rail inside its stabilizer band.
//
// Register it with the simulation engine after the rail it regulates, so
// each tick it sees the rail current computed that same tick.
type Regulator struct {
	rail     *power.Rail
	band     Band
	drop     DropModel
	loadLine float64
	enabled  bool

	prevCurrent float64
	lastDrop    float64 // raw (pre-clamp) drop of the last tick, for tests

	// Cached dt→seconds conversion: the engine steps with a constant
	// dt, so the division inside time.Duration.Seconds runs once, not
	// once per tick. Reuse is bit-identical to recomputing.
	lastDt  time.Duration
	lastSec float64

	// disturb, when set, returns an additive output-voltage offset for
	// the current tick — the fault-injection layer's regulator
	// transient (load step, VRM phase glitch). The offset is added on
	// top of the clamped regulated value, so transients can momentarily
	// escape the stabilizer band like a real VRM excursion.
	disturb func(now time.Duration) float64
}

// NewRegulator validates cfg and returns a regulator.
func NewRegulator(cfg RegulatorConfig) (*Regulator, error) {
	if cfg.Rail == nil {
		return nil, errors.New("pdn: regulator needs a rail")
	}
	if cfg.Band.Min <= 0 || cfg.Band.Min >= cfg.Band.Max {
		return nil, fmt.Errorf("pdn: invalid band [%v,%v]", cfg.Band.Min, cfg.Band.Max)
	}
	if !cfg.Band.Contains(cfg.Rail.NominalVoltage()) {
		return nil, fmt.Errorf("pdn: nominal %v V outside band [%v,%v]",
			cfg.Rail.NominalVoltage(), cfg.Band.Min, cfg.Band.Max)
	}
	if cfg.LoadLineOhm < 0 || cfg.Drop.ResistanceOhm < 0 || cfg.Drop.InductanceHenry < 0 {
		return nil, errors.New("pdn: negative impedance")
	}
	return &Regulator{
		rail:     cfg.Rail,
		band:     cfg.Band,
		drop:     cfg.Drop,
		loadLine: cfg.LoadLineOhm,
		enabled:  !cfg.Disabled,
	}, nil
}

// Band returns the stabilizer band.
func (r *Regulator) Band() Band { return r.band }

// Enabled reports whether stabilization is active.
func (r *Regulator) Enabled() bool { return r.enabled }

// SetEnabled switches stabilization on or off (ablation hook).
func (r *Regulator) SetEnabled(on bool) { r.enabled = on }

// RawDrop returns the unclamped V_drop computed on the last tick. It is
// what a co-resident crafted sensor on an ideal shared PDN would see.
func (r *Regulator) RawDrop() float64 { return r.lastDrop }

// SetDisturbance installs (or, with nil, removes) the per-tick output
// transient hook used by the fault-injection layer.
func (r *Regulator) SetDisturbance(f func(now time.Duration) float64) { r.disturb = f }

// Step implements sim.Steppable.
func (r *Regulator) Step(now, dt time.Duration) {
	i := r.rail.Current()
	if dt != r.lastDt {
		r.lastDt, r.lastSec = dt, dt.Seconds()
	}
	r.lastDrop = r.drop.dropSec(i, r.prevCurrent, r.lastSec)
	r.prevCurrent = i

	var transient float64
	if r.disturb != nil {
		transient = r.disturb(now)
	}

	nominal := r.rail.NominalVoltage()
	if !r.enabled {
		v := nominal - r.lastDrop + transient
		if v < 0 {
			v = 0
		}
		r.rail.SetVoltage(v)
		return
	}
	// Stabilized: the VRM compensates the PDN drop, leaving only its
	// programmed load-line droop, and the steady-state output is
	// guaranteed to stay inside the band. Injected transients add on
	// top of the regulated value, so they can momentarily escape the
	// band — the excursion a real VRM exhibits on a load step.
	v := r.band.Clamp(nominal-r.loadLine*i) + transient
	if v < 0 {
		v = 0
	}
	r.rail.SetVoltage(v)
}
