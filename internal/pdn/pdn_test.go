package pdn

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/power"
)

func mkRail(t *testing.T) *power.Rail {
	t.Helper()
	r, err := power.NewRail(power.RailConfig{Name: "VCCINT", NominalVoltage: 0.85, StaticCurrent: 0})
	if err != nil {
		t.Fatalf("NewRail: %v", err)
	}
	return r
}

var usBand = Band{Min: 0.825, Max: 0.876} // Zynq UltraScale+ band from Table I

func TestDropModel(t *testing.T) {
	m := DropModel{ResistanceOhm: 0.01, InductanceHenry: 1e-9}
	// Steady state: only I*R.
	d := m.Drop(2, 2, time.Millisecond)
	if math.Abs(d-0.02) > 1e-12 {
		t.Fatalf("steady drop = %v, want 0.02", d)
	}
	// Transient adds L*dI/dt: dI=1A over 1us -> 1e6 A/s * 1e-9 H = 1mV.
	d = m.Drop(3, 2, time.Microsecond)
	want := 0.03 + 1e-3
	if math.Abs(d-want) > 1e-12 {
		t.Fatalf("transient drop = %v, want %v", d, want)
	}
	// Falling current gives a negative inductive term (overshoot).
	d = m.Drop(1, 2, time.Microsecond)
	if d >= 0.01 {
		t.Fatalf("falling-current drop = %v, want < 0.01", d)
	}
}

func TestBand(t *testing.T) {
	if !usBand.Contains(0.85) || usBand.Contains(0.9) || usBand.Contains(0.8) {
		t.Fatal("Contains wrong")
	}
	if usBand.Clamp(0.9) != 0.876 || usBand.Clamp(0.8) != 0.825 || usBand.Clamp(0.85) != 0.85 {
		t.Fatal("Clamp wrong")
	}
	if math.Abs(usBand.Width()-0.051) > 1e-12 {
		t.Fatalf("Width = %v", usBand.Width())
	}
}

func TestNewRegulatorValidation(t *testing.T) {
	rail := mkRail(t)
	cases := []RegulatorConfig{
		{},           // nil rail
		{Rail: rail}, // zero band
		{Rail: rail, Band: Band{Min: 0.9, Max: 0.8}},  // inverted band
		{Rail: rail, Band: Band{Min: 0.9, Max: 0.95}}, // nominal outside band
		{Rail: rail, Band: usBand, LoadLineOhm: -1},
		{Rail: rail, Band: usBand, Drop: DropModel{ResistanceOhm: -1}},
	}
	for i, cfg := range cases {
		if _, err := NewRegulator(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestRegulatorHoldsBand(t *testing.T) {
	rail := mkRail(t)
	reg, err := NewRegulator(RegulatorConfig{
		Rail: rail, Band: usBand,
		Drop:        DropModel{ResistanceOhm: 0.02, InductanceHenry: 1e-9},
		LoadLineOhm: 0.002,
	})
	if err != nil {
		t.Fatalf("NewRegulator: %v", err)
	}
	load := &power.ConstantSource{Name: "load", Amps: 0}
	rail.MustAttach(load)
	// Sweep load from 0 to 40 A; voltage must never leave the band.
	for a := 0.0; a <= 40; a += 0.5 {
		load.Amps = a
		rail.Step(0, time.Millisecond)
		reg.Step(0, time.Millisecond)
		if !usBand.Contains(rail.Voltage()) {
			t.Fatalf("voltage %v outside band at %v A", rail.Voltage(), a)
		}
	}
}

func TestRegulatorLoadLineMonotone(t *testing.T) {
	rail := mkRail(t)
	reg, err := NewRegulator(RegulatorConfig{
		Rail: rail, Band: usBand, LoadLineOhm: 0.001,
	})
	if err != nil {
		t.Fatalf("NewRegulator: %v", err)
	}
	load := &power.ConstantSource{Name: "load", Amps: 0}
	rail.MustAttach(load)
	prev := math.Inf(1)
	for a := 0.0; a <= 10; a++ {
		load.Amps = a
		rail.Step(0, time.Millisecond)
		reg.Step(0, time.Millisecond)
		v := rail.Voltage()
		if v > prev {
			t.Fatalf("voltage rose with load: %v -> %v at %v A", prev, v, a)
		}
		prev = v
	}
	// At 10 A the droop is 10mV: 0.85-0.01 = 0.84 -> clamped to 0.825? No:
	// 0.84 > 0.825, stays.
	if math.Abs(rail.Voltage()-0.84) > 1e-12 {
		t.Fatalf("voltage = %v, want 0.84", rail.Voltage())
	}
}

func TestRegulatorDisabledExposesDrop(t *testing.T) {
	rail := mkRail(t)
	reg, err := NewRegulator(RegulatorConfig{
		Rail: rail, Band: usBand,
		Drop:     DropModel{ResistanceOhm: 0.05},
		Disabled: true,
	})
	if err != nil {
		t.Fatalf("NewRegulator: %v", err)
	}
	if reg.Enabled() {
		t.Fatal("Disabled config but Enabled() true")
	}
	load := &power.ConstantSource{Name: "load", Amps: 2}
	rail.MustAttach(load)
	rail.Step(0, time.Millisecond)
	reg.Step(0, time.Millisecond)
	// Unregulated: 0.85 - 2*0.05 = 0.75, well below the band.
	if math.Abs(rail.Voltage()-0.75) > 1e-12 {
		t.Fatalf("voltage = %v, want 0.75", rail.Voltage())
	}
	if usBand.Contains(rail.Voltage()) {
		t.Fatal("unstabilized voltage unexpectedly inside band")
	}
	if math.Abs(reg.RawDrop()-0.1) > 1e-12 {
		t.Fatalf("RawDrop = %v, want 0.1", reg.RawDrop())
	}
}

func TestRegulatorToggle(t *testing.T) {
	rail := mkRail(t)
	reg, err := NewRegulator(RegulatorConfig{Rail: rail, Band: usBand})
	if err != nil {
		t.Fatalf("NewRegulator: %v", err)
	}
	if !reg.Enabled() {
		t.Fatal("default should be enabled")
	}
	reg.SetEnabled(false)
	if reg.Enabled() {
		t.Fatal("SetEnabled(false) ignored")
	}
	if reg.Band() != usBand {
		t.Fatalf("Band = %+v", reg.Band())
	}
}

func TestRegulatorClampsToZeroWhenDisabled(t *testing.T) {
	rail := mkRail(t)
	reg, err := NewRegulator(RegulatorConfig{
		Rail: rail, Band: usBand,
		Drop: DropModel{ResistanceOhm: 1}, Disabled: true,
	})
	if err != nil {
		t.Fatalf("NewRegulator: %v", err)
	}
	load := &power.ConstantSource{Name: "load", Amps: 10}
	rail.MustAttach(load)
	rail.Step(0, time.Millisecond)
	reg.Step(0, time.Millisecond)
	if rail.Voltage() != 0 {
		t.Fatalf("collapsed rail voltage = %v, want 0", rail.Voltage())
	}
}

// Property: with stabilization on, voltage is always inside the band
// regardless of load.
func TestRegulatorBandProperty(t *testing.T) {
	f := func(load uint16) bool {
		rail, err := power.NewRail(power.RailConfig{Name: "p", NominalVoltage: 0.85})
		if err != nil {
			return false
		}
		reg, err := NewRegulator(RegulatorConfig{
			Rail: rail, Band: usBand, LoadLineOhm: 0.01,
			Drop: DropModel{ResistanceOhm: 0.1, InductanceHenry: 1e-8},
		})
		if err != nil {
			return false
		}
		rail.MustAttach(&power.ConstantSource{Name: "l", Amps: float64(load) / 100})
		rail.Step(0, time.Millisecond)
		reg.Step(0, time.Millisecond)
		return usBand.Contains(rail.Voltage())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
