package check

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Const always generates v and never shrinks.
func Const[V any](v V) Gen[V] {
	return Gen[V]{Generate: func(*rand.Rand, int) V { return v }}
}

// Bool generates booleans; true shrinks to false.
func Bool() Gen[bool] {
	return Gen[bool]{
		Generate: func(r *rand.Rand, _ int) bool { return r.Intn(2) == 1 },
		Shrink: func(v bool) []bool {
			if v {
				return []bool{false}
			}
			return nil
		},
	}
}

// IntRange generates integers uniformly in [lo, hi]. Shrinking moves
// toward lo: first the jump to lo itself, then halving the distance,
// then a single step — the v-1 chain guarantees that a property with a
// threshold bug (fails for v >= k) shrinks to exactly k.
func IntRange(lo, hi int64) Gen[int64] {
	if hi < lo {
		lo, hi = hi, lo
	}
	return Gen[int64]{
		Generate: func(r *rand.Rand, _ int) int64 {
			return lo + r.Int63n(hi-lo+1)
		},
		Shrink: func(v int64) []int64 {
			if v == lo {
				return nil
			}
			var out []int64
			add := func(c int64) {
				for _, e := range out {
					if e == c {
						return
					}
				}
				out = append(out, c)
			}
			add(lo)
			add(lo + (v-lo)/2)
			add(v - 1)
			return out
		},
	}
}

// Float64Range generates floats uniformly in [lo, hi]. Shrinking moves
// toward zero (or the nearest bound): zero if in range, then the
// truncated value, then the halfway point toward the shrink target.
// NaN and Inf shrink to the target immediately.
func Float64Range(lo, hi float64) Gen[float64] {
	if hi < lo {
		lo, hi = hi, lo
	}
	target := lo
	if lo <= 0 && 0 <= hi {
		target = 0
	}
	return Gen[float64]{
		Generate: func(r *rand.Rand, _ int) float64 {
			return lo + r.Float64()*(hi-lo)
		},
		Shrink: func(v float64) []float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return []float64{target}
			}
			if v == target {
				return nil
			}
			var out []float64
			add := func(c float64) {
				if c < lo || c > hi {
					return
				}
				for _, e := range out {
					if e == c {
						return
					}
				}
				if c != v {
					out = append(out, c)
				}
			}
			add(target)
			add(math.Trunc(v))
			add(target + (v-target)/2)
			return out
		},
	}
}

// OneOf picks one of the values uniformly; shrinking moves toward the
// first (put the simplest value first).
func OneOf[V comparable](vals ...V) Gen[V] {
	if len(vals) == 0 {
		panic("check: OneOf needs at least one value")
	}
	return Gen[V]{
		Generate: func(r *rand.Rand, _ int) V {
			return vals[r.Intn(len(vals))]
		},
		Shrink: func(v V) []V {
			for i, cand := range vals {
				if cand == v {
					if i == 0 {
						return nil
					}
					return []V{vals[0], vals[i-1]}
				}
			}
			return nil
		},
	}
}

// SliceOf generates slices of elem with length in [minLen, maxLen]
// (the upper end additionally scaled by the runner's size parameter).
// Shrinking tries, in order: the first half, the second half, each
// single-element removal, then element-wise shrinks — so a failing
// slice first loses irrelevant elements, then its surviving elements
// simplify. All candidates are fresh copies; shrinkers never alias.
func SliceOf[V any](elem Gen[V], minLen, maxLen int) Gen[[]V] {
	if minLen < 0 {
		minLen = 0
	}
	if maxLen < minLen {
		maxLen = minLen
	}
	return Gen[[]V]{
		Generate: func(r *rand.Rand, size int) []V {
			hi := maxLen
			if scaled := minLen + (maxLen-minLen)*size/100; scaled < hi {
				hi = scaled
			}
			if hi < minLen {
				hi = minLen
			}
			n := minLen + r.Intn(hi-minLen+1)
			out := make([]V, n)
			for i := range out {
				out[i] = elem.Generate(r, size)
			}
			return out
		},
		Shrink: func(v []V) [][]V {
			var out [][]V
			n := len(v)
			if n > minLen {
				if half := n / 2; half >= minLen && half < n {
					out = append(out, clone(v[:half]), clone(v[half:]))
				}
				for i := 0; i < n; i++ {
					cand := make([]V, 0, n-1)
					cand = append(cand, v[:i]...)
					cand = append(cand, v[i+1:]...)
					out = append(out, cand)
				}
			}
			if elem.Shrink != nil {
				for i := 0; i < n; i++ {
					for _, ev := range elem.Shrink(v[i]) {
						cand := clone(v)
						cand[i] = ev
						out = append(out, cand)
					}
				}
			}
			return out
		},
		Describe: func(v []V) string {
			parts := make([]string, len(v))
			for i, e := range v {
				parts[i] = elem.describe(e)
			}
			return "[" + strings.Join(parts, " ") + "]"
		},
	}
}

func clone[V any](v []V) []V {
	out := make([]V, len(v))
	copy(out, v)
	return out
}

// Map derives a generator by transforming another's values. The
// transform must be pure; shrinking shrinks the source and re-maps.
func Map[A, B any](g Gen[A], f func(A) B) Gen[B] {
	return Gen[B]{
		Generate: func(r *rand.Rand, size int) B {
			return f(g.Generate(r, size))
		},
		// No Shrink: the source value is not retained. Generators that
		// need shrinking through a transform should generate the source
		// type and transform inside the property, or provide a custom
		// Gen with an inverse-aware shrinker.
	}
}

// FloatDescribe renders a float slice compactly for failure reports.
func FloatDescribe(xs []float64) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprintf("%g", x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
