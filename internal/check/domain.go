package check

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/board"
	"repro/internal/faults"
	"repro/internal/trace"
)

// FloatsConfig dials the float-slice generator. Zero rates mean
// all-finite slices.
type FloatsConfig struct {
	// MinLen/MaxLen bound the slice length (defaults 1/64).
	MinLen, MaxLen int
	// Min/Max bound the finite values (defaults -1000/1000).
	Min, Max float64
	// NaNRate/InfRate are per-element probabilities of replacing the
	// value with NaN / ±Inf, mimicking gap samples and sensor garbage.
	NaNRate, InfRate float64
}

func (c *FloatsConfig) fill() {
	if c.MaxLen == 0 {
		c.MaxLen = 64
	}
	if c.MinLen > c.MaxLen {
		c.MinLen = c.MaxLen
	}
	if c.Min == 0 && c.Max == 0 {
		c.Min, c.Max = -1000, 1000
	}
}

// Floats generates float slices with dialed-in NaN/Inf contamination.
// Shrinking removes elements first, then simplifies survivors toward
// zero — but keeps NaN/Inf elements as-is (shrinking the poison away
// would un-falsify a non-finite-rejection property).
func Floats(cfg FloatsConfig) Gen[[]float64] {
	cfg.fill()
	elem := Gen[float64]{
		Generate: func(r *rand.Rand, _ int) float64 {
			p := r.Float64()
			switch {
			case p < cfg.NaNRate:
				return math.NaN()
			case p < cfg.NaNRate+cfg.InfRate:
				if r.Intn(2) == 0 {
					return math.Inf(1)
				}
				return math.Inf(-1)
			default:
				return cfg.Min + r.Float64()*(cfg.Max-cfg.Min)
			}
		},
		Shrink: func(v float64) []float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil // keep the poison; it is usually the point
			}
			return Float64Range(cfg.Min, cfg.Max).Shrink(v)
		},
	}
	g := SliceOf(elem, cfg.MinLen, cfg.MaxLen)
	g.Describe = FloatDescribe
	return g
}

// PeriodicTrace is a generated trace with a planted periodicity the
// property can check recovery of.
type PeriodicTrace struct {
	Trace *trace.Trace
	// PeriodSamples is the planted period in samples; Bin is the
	// matching spectrum bin (len(Samples)/PeriodSamples).
	PeriodSamples int
	Bin           int
	// Amplitude and Offset of the planted sine; Gaps counts NaN
	// samples punched into the trace.
	Amplitude, Offset float64
	Gaps              int
}

// TraceConfig dials the periodic-trace generator.
type TraceConfig struct {
	// GapRate is the per-sample probability of a gap (NaN).
	GapRate float64
	// Noise is the uniform noise amplitude added to each sample as a
	// fraction of the sine amplitude (default 0: pure tone).
	Noise float64
}

// PeriodicTraces generates traces of n = bin·period samples carrying
// offset + A·sin(2π·bin·j/n), so the planted period lands exactly on
// spectrum bin `bin` and DominantPeriod should return PeriodSamples.
// Periods are >= 8 samples and bins >= 2, keeping the planted bin
// within core's maxBins = n/4 search range. No Shrink: a smaller trace
// would have a different planted period, which is not "the same bug,
// simpler" — failures replay via the seed instead.
func PeriodicTraces(cfg TraceConfig) Gen[PeriodicTrace] {
	return Gen[PeriodicTrace]{
		Generate: func(r *rand.Rand, size int) PeriodicTrace {
			bin := 2 + r.Intn(7)     // 2..8
			period := 8 + r.Intn(25) // 8..32 samples
			n := bin * period
			amp := 0.05 + r.Float64()*0.95
			offset := 0.5 + r.Float64()*2.0
			tr := &trace.Trace{
				Interval: 2 * time.Millisecond, // INA226 fastest legal update interval
				Samples:  make([]float64, n),
			}
			gaps := 0
			for j := 0; j < n; j++ {
				if cfg.GapRate > 0 && r.Float64() < cfg.GapRate {
					tr.Samples[j] = trace.Gap
					gaps++
					continue
				}
				v := offset + amp*math.Sin(2*math.Pi*float64(bin)*float64(j)/float64(n))
				if cfg.Noise > 0 {
					v += amp * cfg.Noise * (2*r.Float64() - 1)
				}
				tr.Samples[j] = v
			}
			return PeriodicTrace{
				Trace:         tr,
				PeriodSamples: period,
				Bin:           bin,
				Amplitude:     amp,
				Offset:        offset,
				Gaps:          gaps,
			}
		},
		Describe: func(p PeriodicTrace) string {
			return fmt.Sprintf("PeriodicTrace{n=%d period=%d bin=%d amp=%.3f offset=%.3f gaps=%d}",
				len(p.Trace.Samples), p.PeriodSamples, p.Bin, p.Amplitude, p.Offset, p.Gaps)
		},
	}
}

// Bits generates covert-channel payloads: 0/1 slices with length in
// [minLen, maxLen]. Shrinking removes bits and flips 1s to 0s.
func Bits(minLen, maxLen int) Gen[[]int] {
	elem := Gen[int]{
		Generate: func(r *rand.Rand, _ int) int { return r.Intn(2) },
		Shrink: func(v int) []int {
			if v == 1 {
				return []int{0}
			}
			return nil
		},
	}
	g := SliceOf(elem, minLen, maxLen)
	g.Describe = func(bits []int) string {
		out := make([]byte, len(bits))
		for i, b := range bits {
			out[i] = '0' + byte(b)
		}
		return string(out)
	}
	return g
}

// FaultProfiles generates valid fault profiles spanning none→hostile
// intensity. Shrinking zeroes one rate at a time, isolating which
// fault class triggers a failure.
func FaultProfiles() Gen[faults.Profile] {
	return Gen[faults.Profile]{
		Generate: func(r *rand.Rand, _ int) faults.Profile {
			rate := func(max float64) float64 {
				if r.Intn(2) == 0 {
					return 0
				}
				return r.Float64() * max
			}
			p := faults.Profile{
				Name:           "generated",
				SysfsErrorRate: rate(0.2),
				SysfsEIORatio:  r.Float64(),
				StaleRate:      rate(0.2),
				BitFlipRate:    rate(0.05),
				JitterRate:     rate(0.3),
				JitterFrac:     0.5 * r.Float64(),
				DropoutRate:    rate(0.05),
				HotplugRate:    rate(2.0),
			}
			if p.DropoutRate > 0 {
				p.DropoutLen = 1 + r.Intn(8)
			}
			if r.Intn(2) == 0 {
				p.RegTransientRate = rate(2.0)
				p.RegTransientVolts = 0.05 * r.Float64()
			}
			return p
		},
		Shrink: func(p faults.Profile) []faults.Profile {
			var out []faults.Profile
			zero := func(f func(*faults.Profile)) {
				q := p
				f(&q)
				out = append(out, q)
			}
			if p.SysfsErrorRate > 0 {
				zero(func(q *faults.Profile) { q.SysfsErrorRate = 0 })
			}
			if p.StaleRate > 0 {
				zero(func(q *faults.Profile) { q.StaleRate = 0 })
			}
			if p.BitFlipRate > 0 {
				zero(func(q *faults.Profile) { q.BitFlipRate = 0 })
			}
			if p.JitterRate > 0 {
				zero(func(q *faults.Profile) { q.JitterRate = 0 })
			}
			if p.DropoutRate > 0 {
				zero(func(q *faults.Profile) { q.DropoutRate = 0; q.DropoutLen = 0 })
			}
			if p.HotplugRate > 0 {
				zero(func(q *faults.Profile) { q.HotplugRate = 0 })
			}
			if p.RegTransientRate > 0 {
				zero(func(q *faults.Profile) { q.RegTransientRate = 0; q.RegTransientVolts = 0 })
			}
			return out
		},
		Describe: func(p faults.Profile) string {
			return fmt.Sprintf("faults.Profile{sysfs=%.3f stale=%.3f flip=%.4f jitter=%.3f/%.2f dropout=%.4f/%d hotplug=%.2f reg=%.2f/%.3fV}",
				p.SysfsErrorRate, p.StaleRate, p.BitFlipRate, p.JitterRate, p.JitterFrac,
				p.DropoutRate, p.DropoutLen, p.HotplugRate, p.RegTransientRate, p.RegTransientVolts)
		},
	}
}

// BoardConfigs generates legal simulated-board configurations: a
// random seed, an update interval inside the INA226's [2 ms, 35 ms]
// legal range, and the stabilizer/thermal toggles. Shrinking moves the
// toggles to their defaults and the seed toward 1.
func BoardConfigs() Gen[board.Config] {
	return Gen[board.Config]{
		Generate: func(r *rand.Rand, _ int) board.Config {
			return board.Config{
				Seed:              1 + r.Int63n(1_000_000),
				UpdateInterval:    time.Duration(2+r.Intn(34)) * time.Millisecond,
				DisableStabilizer: r.Intn(4) == 0,
				EnableThermal:     r.Intn(4) == 0,
			}
		},
		Shrink: func(c board.Config) []board.Config {
			var out []board.Config
			if c.DisableStabilizer {
				q := c
				q.DisableStabilizer = false
				out = append(out, q)
			}
			if c.EnableThermal {
				q := c
				q.EnableThermal = false
				out = append(out, q)
			}
			if c.UpdateInterval > 2*time.Millisecond {
				q := c
				q.UpdateInterval = 2 * time.Millisecond
				out = append(out, q)
			}
			if c.Seed != 1 {
				q := c
				q.Seed = 1
				out = append(out, q)
			}
			return out
		},
		Describe: func(c board.Config) string {
			return fmt.Sprintf("board.Config{Seed:%d UpdateInterval:%s DisableStabilizer:%v EnableThermal:%v}",
				c.Seed, c.UpdateInterval, c.DisableStabilizer, c.EnableThermal)
		},
	}
}
