package check

import (
	"strings"
	"testing"

	"repro/internal/runner"
)

// TestMutantShrinkDeterministic plants a known bug — the property
// rejects any slice containing an element >= 100 — and proves the
// acceptance criterion: the engine shrinks to the exact boundary
// counterexample [100], and a second run with the same seed reproduces
// a byte-identical failure report (counterexample, logs, and replay
// line included).
func TestMutantShrinkDeterministic(t *testing.T) {
	g := SliceOf(IntRange(0, 1000), 1, 40)
	mutant := func(c *T, xs []int64) {
		for _, x := range xs {
			if x >= 100 { // planted bug boundary
				c.Errorf("element %d crossed the planted threshold", x)
				return
			}
		}
	}

	const seed = 424242
	rep1 := Run("TestMutantShrinkDeterministic", g, mutant, Seed(seed))
	if !rep1.Failed {
		t.Fatalf("mutant property did not fail in %d iterations", rep1.Iters)
	}
	if got, want := rep1.Rendered, "[100]"; got != want {
		t.Fatalf("shrunk counterexample = %s, want %s (exact planted boundary)", got, want)
	}
	if rep1.ShrinkSteps == 0 {
		t.Fatalf("expected shrinking to take steps, got 0")
	}

	rep2 := Run("TestMutantShrinkDeterministic", g, mutant, Seed(seed))
	if f1, f2 := rep1.Failure(), rep2.Failure(); f1 != f2 {
		t.Fatalf("failure report not byte-identical across replays:\n--- first ---\n%s\n--- second ---\n%s", f1, f2)
	}
	if rep1.FailIter != rep2.FailIter || rep1.ShrinkSteps != rep2.ShrinkSteps {
		t.Fatalf("replay diverged: iter %d/%d, steps %d/%d",
			rep1.FailIter, rep2.FailIter, rep1.ShrinkSteps, rep2.ShrinkSteps)
	}
}

// TestReplayLineMentionsSeed pins the failure report's replay
// affordance: the seed and a -run pattern for the top-level test.
func TestReplayLineMentionsSeed(t *testing.T) {
	g := IntRange(0, 10)
	rep := Run("TestSomething/sub/case", g, func(c *T, v int64) { c.Fail() }, Seed(7))
	if !rep.Failed {
		t.Fatal("property should have failed immediately")
	}
	msg := rep.Failure()
	for _, want := range []string{"-check.seed=7", "-run 'TestSomething'", "seed 7"} {
		if !strings.Contains(msg, want) {
			t.Errorf("failure message missing %q:\n%s", want, msg)
		}
	}
}

// TestSeedDerivationMatchesRunner pins the cross-package determinism
// contract: check derives per-property seeds with exactly the scheme
// runner uses for shard seeds (and sim for named streams), so seeds
// printed by one subsystem are meaningful in another.
func TestSeedDerivationMatchesRunner(t *testing.T) {
	for _, name := range []string{"", "TestPropMeanShift", "shard-007", "über"} {
		for _, root := range []int64{0, 1, DefaultSeed, -12345} {
			if got, want := DeriveSeed(root, name), runner.ShardSeed(root, name); got != want {
				t.Errorf("DeriveSeed(%d, %q) = %d, want runner.ShardSeed's %d", root, name, got, want)
			}
		}
	}
}

// TestDifferentPropertyNamesDecorrelate ensures two properties under
// the same root seed draw different streams.
func TestDifferentPropertyNamesDecorrelate(t *testing.T) {
	if DeriveSeed(1, "a") == DeriveSeed(1, "b") {
		t.Fatal("distinct property names produced the same derived seed")
	}
}

func TestVacuousPropertyReported(t *testing.T) {
	g := IntRange(0, 10)
	rep := Run("vacuous", g, func(c *T, v int64) { c.Discard() }, Seed(1), Iters(20))
	if !rep.Vacuous {
		t.Fatal("all-discard property not reported vacuous")
	}
	if rep.Failed {
		t.Fatal("vacuous property should not be reported as falsified")
	}
	if rep.Discards != 20 {
		t.Fatalf("Discards = %d, want 20", rep.Discards)
	}
}

func TestLabelsCounted(t *testing.T) {
	g := IntRange(0, 9)
	rep := Run("labels", g, func(c *T, v int64) {
		c.Classify(v%2 == 0, "even")
		c.Classify(v%2 == 1, "odd")
		c.Label("all")
	}, Seed(1), Iters(50))
	if rep.Failed || rep.Vacuous {
		t.Fatalf("property unexpectedly failed/vacuous: %+v", rep)
	}
	if rep.Labels["all"] != 50 {
		t.Fatalf(`Labels["all"] = %d, want 50`, rep.Labels["all"])
	}
	if rep.Labels["even"]+rep.Labels["odd"] != 50 {
		t.Fatalf("even+odd = %d, want 50", rep.Labels["even"]+rep.Labels["odd"])
	}
	if s := rep.labelSummary(); !strings.Contains(s, "all=50 (100%)") {
		t.Fatalf("label summary missing total: %q", s)
	}
}

// TestPanicIsFailure ensures a panic in the property body (or the code
// under test) is treated as a falsification and still shrinks.
func TestPanicIsFailure(t *testing.T) {
	g := IntRange(0, 1000)
	rep := Run("panics", g, func(c *T, v int64) {
		if v >= 3 {
			panic("boom")
		}
	}, Seed(1))
	if !rep.Failed {
		t.Fatal("panicking property not reported as failed")
	}
	if rep.Rendered != "3" {
		t.Fatalf("panic counterexample = %s, want 3", rep.Rendered)
	}
	found := false
	for _, l := range rep.Logs {
		if strings.Contains(l, "panic: boom") {
			found = true
		}
	}
	if !found {
		t.Fatalf("panic value not captured in logs: %v", rep.Logs)
	}
}

func TestFatalfAbortsBody(t *testing.T) {
	g := Const(int64(0))
	reached := false
	rep := Run("fatalf", g, func(c *T, v int64) {
		c.Fatalf("stop here")
		reached = true
	}, Seed(1), Iters(1))
	if !rep.Failed {
		t.Fatal("Fatalf did not fail the property")
	}
	if reached {
		t.Fatal("property body continued past Fatalf")
	}
}

func TestConfigErrors(t *testing.T) {
	g := IntRange(0, 1)
	if rep := Run("iters", g, func(*T, int64) {}, Iters(0)); rep.ConfigErr == "" {
		t.Error("Iters(0) accepted; -check.iters < 1 must be rejected")
	}
	if rep := Run("nogen", Gen[int64]{}, func(*T, int64) {}); rep.ConfigErr == "" {
		t.Error("nil Generate accepted")
	}
	if rep := Run("shrink", g, func(*T, int64) {}, MaxShrink(-1)); rep.ConfigErr == "" {
		t.Error("negative MaxShrink accepted")
	}
}

// TestMaxShrinkBounds proves the shrink loop cannot run away: with a
// zero budget the raw failing input is reported unshrunk.
func TestMaxShrinkBounds(t *testing.T) {
	g := IntRange(0, 1000)
	rep := Run("unshrunk", g, func(c *T, v int64) {
		if v >= 100 {
			c.Fail()
		}
	}, Seed(5), MaxShrink(0))
	if !rep.Failed {
		t.Fatal("property did not fail")
	}
	if rep.ShrinkSteps != 0 {
		t.Fatalf("ShrinkSteps = %d with MaxShrink(0)", rep.ShrinkSteps)
	}
}

// TestForallPasses exercises the real Forall entry point on a property
// that holds, including labels, against the package's default flags.
func TestForallPasses(t *testing.T) {
	Forall(t, SliceOf(IntRange(-50, 50), 0, 20), func(c *T, xs []int64) {
		c.Classify(len(xs) == 0, "empty")
		total := int64(0)
		for _, x := range xs {
			total += x
		}
		reversedTotal := int64(0)
		for i := len(xs) - 1; i >= 0; i-- {
			reversedTotal += xs[i]
		}
		if total != reversedTotal {
			c.Errorf("sum not order-independent: %d vs %d", total, reversedTotal)
		}
	})
}

// TestDiscardedIterationsDontCount ensures discards before a failure
// neither mask it nor perturb determinism.
func TestDiscardedIterationsDontCount(t *testing.T) {
	g := IntRange(0, 20)
	rep := Run("discard-mix", g, func(c *T, v int64) {
		if v < 5 {
			c.Discard()
		}
		if v >= 15 {
			c.Fail()
		}
	}, Seed(3))
	if !rep.Failed {
		t.Fatal("failure masked by discards")
	}
	if rep.Rendered != "15" {
		t.Fatalf("counterexample = %s, want boundary 15", rep.Rendered)
	}
}
