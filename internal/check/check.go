// Package check is the repository's property-based correctness engine:
// a pure-stdlib Forall runner with typed generators, bounded
// deterministic shrinking, and a labels/classification report.
//
// The numeric core of the reproduction (CUSUM detection, TVLA t-tests,
// period estimation, gap-aware DSP) fails silently when it fails —
// a wrong number, not a crash — which is exactly the class of bug
// example tests miss. Property and metamorphic suites state each
// contract once ("variance is shift-invariant", "the decoder inverts
// the encoder at zero noise") and hold it across randomized inputs.
//
// # Determinism
//
// Every property draws its randomness from a stream derived from a
// root seed and the property's name with the same FNV-1a mixing that
// sim.Engine.Stream and runner.ShardSeed use (DeriveSeed), so a run is
// a pure function of the root seed. The root seed defaults to
// DefaultSeed — CI is deterministic with no extra flags — and can be
// overridden with -check.seed. A failing property prints its seed;
// re-running with that seed reproduces the byte-identical minimal
// counterexample, because shrinking explores candidates in a fixed
// order and shrinkers are pure functions.
//
// # Replaying a counterexample
//
//	go test -run 'TestPropFoo' ./internal/bar -args -check.seed=12345
//
// -check.iters raises the iteration count for a nightly deep run
// (scripts/proptest.sh); the counterexample search is unaffected as
// long as the seed matches and the failing iteration is in range.
package check

import (
	"flag"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// DefaultSeed is the fixed root seed used when -check.seed is not
// given, so plain `go test ./...` (and CI) is deterministic.
const DefaultSeed = 0xB1EED

// DefaultIters is the per-property iteration count when -check.iters
// is not given: high enough to catch the planted-bug mutants in this
// package's self-tests, low enough to keep tier-1 test time flat.
const DefaultIters = 100

// DefaultMaxShrink bounds the number of successful shrink steps, so a
// pathological shrinker cannot loop forever. Linear-descent shrinkers
// (v-1 chains) need room; 4096 covers every generator in this package.
const DefaultMaxShrink = 4096

var (
	flagSeed  = flag.Int64("check.seed", DefaultSeed, "root seed for property-based tests; a failing property prints the seed to pass back here to replay its shrunk counterexample")
	flagIters = flag.Int("check.iters", DefaultIters, "iterations per property (raise for a nightly deep run; must be >= 1)")
)

// DeriveSeed mixes the root seed with a stream name: root XOR
// FNV-1a(name). It is the same derivation sim.Engine.Stream uses for
// component streams and runner.ShardSeed uses for shard seeds, so a
// property's stream is decorrelated from every other property's while
// the whole run remains a pure function of the root seed.
func DeriveSeed(root int64, name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return root ^ int64(h.Sum64())
}

// Gen generates random values of type V and knows how to simplify a
// failing one.
type Gen[V any] struct {
	// Generate draws one value. size grows from 1 to ~100 across the
	// run, so early iterations probe small inputs and later ones large;
	// generators are free to ignore it.
	Generate func(r *rand.Rand, size int) V
	// Shrink returns strictly-simpler candidate replacements for v,
	// most aggressive first. The runner keeps the first candidate that
	// still fails the property and repeats. Shrinkers must be pure and
	// monotone (never re-grow a value), which is what makes the minimal
	// counterexample deterministic. Nil disables shrinking.
	Shrink func(v V) []V
	// Describe renders a value in failure reports. Nil means %#v.
	Describe func(v V) string
}

func (g Gen[V]) describe(v V) string {
	if g.Describe != nil {
		return g.Describe(v)
	}
	return fmt.Sprintf("%#v", v)
}

// T is the property body's testing handle. It mirrors the testing.T
// surface properties need (Errorf/Fatalf/Logf/Fail/FailNow/Failed) but
// records instead of reporting, so the runner can catch a failure,
// shrink the input, and report only the minimal counterexample.
type T struct {
	failed  bool
	logs    []string
	labels  []string
	discard bool
}

// failNow and discardNow are the panic sentinels behind FailNow and
// Discard; the runner recovers them.
type failNow struct{}
type discardNow struct{}

// Errorf records a failure with a message.
func (c *T) Errorf(format string, args ...any) {
	c.logs = append(c.logs, fmt.Sprintf(format, args...))
	c.failed = true
}

// Fatalf records a failure and aborts the property body.
func (c *T) Fatalf(format string, args ...any) {
	c.logs = append(c.logs, fmt.Sprintf(format, args...))
	c.failed = true
	panic(failNow{})
}

// Fail marks the property falsified without a message.
func (c *T) Fail() { c.failed = true }

// FailNow marks the property falsified and aborts the body.
func (c *T) FailNow() {
	c.failed = true
	panic(failNow{})
}

// Failed reports whether this input falsified the property so far.
func (c *T) Failed() bool { return c.failed }

// Logf records a message shown with the counterexample if this input
// ends up the minimal one.
func (c *T) Logf(format string, args ...any) {
	c.logs = append(c.logs, fmt.Sprintf(format, args...))
}

// Label tags this iteration for the classification report, e.g.
// c.Label("has-gaps"). Labels make vacuous properties visible: if the
// interesting label never appears, the property tested nothing.
func (c *T) Label(name string) { c.labels = append(c.labels, name) }

// Classify is Label guarded by a condition.
func (c *T) Classify(cond bool, name string) {
	if cond {
		c.Label(name)
	}
}

// Discard abandons this iteration without counting it for or against
// the property (a generator precondition failed). A property whose
// every iteration discards is reported as vacuous and fails.
func (c *T) Discard() {
	c.discard = true
	panic(discardNow{})
}

// Option adjusts one property run.
type Option func(*config)

type config struct {
	iters     int
	seed      int64
	maxShrink int
}

// Iters overrides the iteration count for one property (e.g. a
// heavyweight end-to-end property that holds at fewer iterations).
func Iters(n int) Option { return func(c *config) { c.iters = n } }

// Seed overrides the root seed for one property; used by the engine's
// own replay self-tests. Test suites normally leave the seed to the
// -check.seed flag so a printed seed replays everything.
func Seed(s int64) Option { return func(c *config) { c.seed = s } }

// MaxShrink overrides the successful-shrink-step bound.
func MaxShrink(n int) Option { return func(c *config) { c.maxShrink = n } }

// Report is the outcome of one property run.
type Report[V any] struct {
	// Name of the property (the test name under Forall).
	Name string
	// Seed is the root seed the run used (flag or Seed option).
	Seed int64
	// Iters requested and Discards observed.
	Iters    int
	Discards int
	// Labels counts each label across non-discarded iterations.
	Labels map[string]int
	// Failed reports whether the property was falsified.
	Failed bool
	// FailIter is the 0-based iteration whose input falsified the
	// property (before shrinking).
	FailIter int
	// Counterexample is the minimal failing input after shrinking;
	// Rendered is its Describe form.
	Counterexample V
	Rendered       string
	// ShrinkSteps is how many successful simplifications led to it.
	ShrinkSteps int
	// Logs are the property's messages on the minimal counterexample.
	Logs []string
	// Vacuous reports that every iteration discarded.
	Vacuous bool
	// ConfigErr describes an invalid flag/option combination; set
	// before any iteration runs.
	ConfigErr string
}

// callResult is the outcome of running the property body once.
type callResult struct {
	failed  bool
	discard bool
	logs    []string
	labels  []string
}

// call runs the property body on one input with panic isolation: a
// non-sentinel panic (index out of range in the code under test, ...)
// counts as a failure carrying the panic value.
func call[V any](prop func(*T, V), v V) callResult {
	c := &T{}
	func() {
		defer func() {
			if r := recover(); r != nil {
				switch r.(type) {
				case failNow, discardNow:
					// sentinels; state already on c
				default:
					c.failed = true
					c.logs = append(c.logs, fmt.Sprintf("panic: %v", r))
				}
			}
		}()
		prop(c, v)
	}()
	return callResult{failed: c.failed, discard: c.discard, logs: c.logs, labels: c.labels}
}

// Run executes the property and returns its Report without touching a
// testing.T; Forall is the usual entry point. Run exists so the
// engine's self-tests can assert byte-identical failure reports across
// replays of a planted bug.
func Run[V any](name string, g Gen[V], prop func(*T, V), opts ...Option) Report[V] {
	cfg := config{iters: *flagIters, seed: *flagSeed, maxShrink: DefaultMaxShrink}
	for _, o := range opts {
		o(&cfg)
	}
	rep := Report[V]{Name: name, Seed: cfg.seed, Iters: cfg.iters, Labels: map[string]int{}}
	if cfg.iters < 1 {
		rep.ConfigErr = fmt.Sprintf("check: -check.iters must be >= 1 (got %d)", cfg.iters)
		return rep
	}
	if cfg.maxShrink < 0 {
		rep.ConfigErr = fmt.Sprintf("check: max shrink steps must be >= 0 (got %d)", cfg.maxShrink)
		return rep
	}
	if g.Generate == nil {
		rep.ConfigErr = "check: generator has no Generate function"
		return rep
	}

	rng := rand.New(rand.NewSource(DeriveSeed(cfg.seed, name)))
	for i := 0; i < cfg.iters; i++ {
		size := 1 + (100*i)/cfg.iters
		v := g.Generate(rng, size)
		res := call(prop, v)
		if res.discard {
			rep.Discards++
			continue
		}
		for _, l := range res.labels {
			rep.Labels[l]++
		}
		if !res.failed {
			continue
		}
		rep.Failed = true
		rep.FailIter = i
		rep.Counterexample, rep.ShrinkSteps = shrink(g, prop, v, cfg.maxShrink)
		rep.Rendered = g.describe(rep.Counterexample)
		final := call(prop, rep.Counterexample)
		rep.Logs = final.logs
		return rep
	}
	rep.Vacuous = rep.Discards == cfg.iters
	return rep
}

// shrink greedily minimizes a failing input: take the first candidate
// that still fails, repeat, stop when no candidate fails or the step
// budget is spent. Candidates are explored in the shrinker's order and
// shrinkers are pure, so the result is deterministic.
func shrink[V any](g Gen[V], prop func(*T, V), v V, maxSteps int) (V, int) {
	if g.Shrink == nil {
		return v, 0
	}
	steps := 0
	for steps < maxSteps {
		shrunk := false
		for _, cand := range g.Shrink(v) {
			if res := call(prop, cand); res.failed && !res.discard {
				v = cand
				steps++
				shrunk = true
				break
			}
		}
		if !shrunk {
			break
		}
	}
	return v, steps
}

// Failure renders the failure message Forall reports, including the
// replay line; it is the string the determinism self-test pins
// byte-for-byte across replays.
func (r Report[V]) Failure() string {
	var b strings.Builder
	fmt.Fprintf(&b, "check: %s: falsified (seed %d, iteration %d, shrunk %d steps)\n",
		r.Name, r.Seed, r.FailIter, r.ShrinkSteps)
	fmt.Fprintf(&b, "  counterexample: %s\n", r.Rendered)
	for _, l := range r.Logs {
		fmt.Fprintf(&b, "  %s\n", l)
	}
	fmt.Fprintf(&b, "replay: go test -run '%s' -args -check.seed=%d -check.iters=%d",
		runPattern(r.Name), r.Seed, r.Iters)
	return b.String()
}

// runPattern turns a (sub)test name into the -run pattern that reaches
// it: the top-level test name, so replays re-enter through the same
// Forall call.
func runPattern(name string) string {
	if i := strings.IndexByte(name, '/'); i >= 0 {
		return name[:i]
	}
	return name
}

// labelSummary renders the classification report: labels sorted by
// name with counts and percentages over non-discarded iterations.
func (r Report[V]) labelSummary() string {
	executed := r.Iters - r.Discards
	if executed <= 0 || len(r.Labels) == 0 {
		return ""
	}
	names := make([]string, 0, len(r.Labels))
	for n := range r.Labels {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s=%d (%d%%)", n, r.Labels[n], 100*r.Labels[n]/executed)
	}
	return strings.Join(parts, ", ")
}

// Forall checks the property against cfg.iters random inputs from the
// generator and fails t with the shrunk minimal counterexample (plus a
// replay line) if any input falsifies it. A property whose every
// iteration discards fails as vacuous: it tested nothing, and silence
// would hide that.
func Forall[V any](t *testing.T, g Gen[V], prop func(*T, V), opts ...Option) {
	t.Helper()
	rep := Run(t.Name(), g, prop, opts...)
	if rep.ConfigErr != "" {
		t.Fatal(rep.ConfigErr)
	}
	if rep.Failed {
		t.Error(rep.Failure())
		return
	}
	if rep.Vacuous {
		t.Errorf("check: %s: vacuous property: all %d iterations discarded (generator preconditions too strict)", rep.Name, rep.Iters)
		return
	}
	if s := rep.labelSummary(); s != "" {
		t.Logf("check: %s: %d iterations ok (%d discarded); labels: %s", rep.Name, rep.Iters, rep.Discards, s)
	} else if testing.Verbose() {
		t.Logf("check: %s: %d iterations ok (%d discarded)", rep.Name, rep.Iters, rep.Discards)
	}
}
