package check

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestIntRangeStaysInBounds(t *testing.T) {
	g := IntRange(-7, 13)
	r := rng(1)
	for i := 0; i < 1000; i++ {
		v := g.Generate(r, 50)
		if v < -7 || v > 13 {
			t.Fatalf("generated %d outside [-7, 13]", v)
		}
		for _, s := range g.Shrink(v) {
			if s < -7 || s > 13 || s >= v {
				t.Fatalf("shrink of %d produced out-of-range or non-smaller %d", v, s)
			}
		}
	}
	if g.Shrink(-7) != nil {
		t.Fatal("lower bound should not shrink")
	}
}

func TestIntRangeSwappedBounds(t *testing.T) {
	g := IntRange(10, 2)
	v := g.Generate(rng(1), 50)
	if v < 2 || v > 10 {
		t.Fatalf("swapped-bound generate out of range: %d", v)
	}
}

func TestFloat64RangeShrinksTowardZero(t *testing.T) {
	g := Float64Range(-5, 5)
	for _, v := range []float64{4.75, -3.5, 5} {
		cands := g.Shrink(v)
		if len(cands) == 0 || cands[0] != 0 {
			t.Fatalf("Shrink(%g) = %v, want first candidate 0", v, cands)
		}
	}
	if got := g.Shrink(math.NaN()); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Shrink(NaN) = %v, want [0]", got)
	}
	if got := g.Shrink(math.Inf(1)); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Shrink(+Inf) = %v, want [0]", got)
	}
	if g.Shrink(0) != nil {
		t.Fatal("target value should not shrink")
	}
}

func TestOneOfShrinksTowardFirst(t *testing.T) {
	g := OneOf("simple", "medium", "hard")
	if g.Shrink("simple") != nil {
		t.Fatal("first value should be minimal")
	}
	cands := g.Shrink("hard")
	if len(cands) != 2 || cands[0] != "simple" || cands[1] != "medium" {
		t.Fatalf("Shrink(hard) = %v", cands)
	}
	seen := map[string]bool{}
	r := rng(2)
	for i := 0; i < 200; i++ {
		seen[g.Generate(r, 50)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("OneOf did not cover all values: %v", seen)
	}
}

func TestBoolShrink(t *testing.T) {
	g := Bool()
	if got := g.Shrink(true); len(got) != 1 || got[0] != false {
		t.Fatalf("Shrink(true) = %v", got)
	}
	if g.Shrink(false) != nil {
		t.Fatal("false should be minimal")
	}
}

func TestSliceOfRespectsLengthBounds(t *testing.T) {
	g := SliceOf(IntRange(0, 9), 2, 6)
	r := rng(3)
	for i := 0; i < 500; i++ {
		v := g.Generate(r, 1+i%100)
		if len(v) < 2 || len(v) > 6 {
			t.Fatalf("generated length %d outside [2, 6]", len(v))
		}
		for _, s := range g.Shrink(v) {
			if len(s) < 2 {
				t.Fatalf("shrink produced slice shorter than minLen: %v", s)
			}
		}
	}
}

func TestSliceShrinkNeverAliases(t *testing.T) {
	g := SliceOf(IntRange(0, 100), 1, 8)
	v := []int64{50, 60, 70}
	for _, cand := range g.Shrink(v) {
		for i := range cand {
			cand[i] = -1 // mutate the candidate...
		}
	}
	if v[0] != 50 || v[1] != 60 || v[2] != 70 {
		t.Fatalf("shrink candidates alias the input slice: %v", v)
	}
}

func TestMapTransforms(t *testing.T) {
	g := Map(IntRange(0, 9), func(v int64) string { return strings.Repeat("x", int(v)) })
	v := g.Generate(rng(4), 50)
	if len(v) > 9 || strings.Trim(v, "x") != "" {
		t.Fatalf("mapped value %q not of expected form", v)
	}
}

func TestFloatsDialsContamination(t *testing.T) {
	g := Floats(FloatsConfig{MinLen: 16, MaxLen: 64, NaNRate: 0.3, InfRate: 0.2})
	r := rng(5)
	nans, infs, finites := 0, 0, 0
	for i := 0; i < 50; i++ {
		for _, x := range g.Generate(r, 100) {
			switch {
			case math.IsNaN(x):
				nans++
			case math.IsInf(x, 0):
				infs++
			default:
				finites++
			}
		}
	}
	if nans == 0 || infs == 0 || finites == 0 {
		t.Fatalf("contamination dial ineffective: nan=%d inf=%d finite=%d", nans, infs, finites)
	}
	// Poison elements must survive shrinking (removing them would
	// un-falsify a rejection property); finite elements still shrink.
	for _, cand := range g.Shrink([]float64{math.NaN()}) {
		if len(cand) == 1 && !math.IsNaN(cand[0]) {
			t.Fatalf("shrink replaced NaN poison with %v", cand[0])
		}
	}
}

func TestFloatsAllFiniteByDefault(t *testing.T) {
	g := Floats(FloatsConfig{MinLen: 1, MaxLen: 32})
	r := rng(6)
	for i := 0; i < 200; i++ {
		for _, x := range g.Generate(r, 100) {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("zero-rate generator produced non-finite %v", x)
			}
			if x < -1000 || x > 1000 {
				t.Fatalf("default bounds violated: %v", x)
			}
		}
	}
}

func TestPeriodicTracesPlantExactBin(t *testing.T) {
	g := PeriodicTraces(TraceConfig{})
	r := rng(7)
	for i := 0; i < 100; i++ {
		p := g.Generate(r, 50)
		n := len(p.Trace.Samples)
		if n != p.Bin*p.PeriodSamples {
			t.Fatalf("n=%d != bin(%d)*period(%d)", n, p.Bin, p.PeriodSamples)
		}
		if p.Bin < 2 || p.PeriodSamples < 8 {
			t.Fatalf("planted bin/period out of design range: %d/%d", p.Bin, p.PeriodSamples)
		}
		if got := p.Trace.Gaps(); got != p.Gaps {
			t.Fatalf("Gaps() = %d, generator recorded %d", got, p.Gaps)
		}
		if p.Gaps != 0 {
			t.Fatalf("zero GapRate produced %d gaps", p.Gaps)
		}
		if p.Trace.Interval != 2*time.Millisecond {
			t.Fatalf("interval = %s", p.Trace.Interval)
		}
	}
}

func TestPeriodicTracesGapDialing(t *testing.T) {
	g := PeriodicTraces(TraceConfig{GapRate: 0.2})
	r := rng(8)
	total := 0
	for i := 0; i < 20; i++ {
		p := g.Generate(r, 50)
		if got := p.Trace.Gaps(); got != p.Gaps {
			t.Fatalf("Gaps() = %d, recorded %d", got, p.Gaps)
		}
		total += p.Gaps
	}
	if total == 0 {
		t.Fatal("GapRate 0.2 produced no gaps in 20 traces")
	}
}

func TestBitsGeneratesBinary(t *testing.T) {
	g := Bits(4, 16)
	r := rng(9)
	for i := 0; i < 100; i++ {
		bits := g.Generate(r, 50)
		if len(bits) < 4 || len(bits) > 16 {
			t.Fatalf("length %d outside [4, 16]", len(bits))
		}
		for _, b := range bits {
			if b != 0 && b != 1 {
				t.Fatalf("non-binary bit %d", b)
			}
		}
	}
	if d := g.Describe([]int{1, 0, 1, 1}); d != "1011" {
		t.Fatalf("Describe = %q, want 1011", d)
	}
}

func TestFaultProfilesShrinkZeroesOneRate(t *testing.T) {
	g := FaultProfiles()
	r := rng(10)
	sawEnabled, sawDisabled := false, false
	for i := 0; i < 100; i++ {
		p := g.Generate(r, 50)
		if p.Enabled() {
			sawEnabled = true
		} else {
			sawDisabled = true
		}
		if _, err := p.Scale(1.0); err != nil {
			t.Fatalf("generated profile does not scale: %v", err)
		}
		for _, q := range g.Shrink(p) {
			if q == p {
				t.Fatal("shrink candidate identical to input")
			}
		}
	}
	if !sawEnabled || !sawDisabled {
		t.Fatalf("generator not spanning none→hostile: enabled=%v disabled=%v", sawEnabled, sawDisabled)
	}
}

func TestBoardConfigsAreLegal(t *testing.T) {
	g := BoardConfigs()
	r := rng(11)
	for i := 0; i < 200; i++ {
		c := g.Generate(r, 50)
		if c.UpdateInterval < 2*time.Millisecond || c.UpdateInterval > 35*time.Millisecond {
			t.Fatalf("update interval %s outside INA226 legal range", c.UpdateInterval)
		}
		if c.Seed < 1 {
			t.Fatalf("seed %d < 1", c.Seed)
		}
		for _, s := range g.Shrink(c) {
			if s == c {
				t.Fatal("shrink candidate identical to input")
			}
		}
	}
}

func TestFloatDescribe(t *testing.T) {
	if got := FloatDescribe([]float64{1.5, math.NaN()}); got != "[1.5 NaN]" {
		t.Fatalf("FloatDescribe = %q", got)
	}
}
