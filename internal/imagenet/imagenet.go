// Package imagenet is the stand-in for the ImageNet ILSVRC test set the
// paper feeds the victim accelerators.
//
// The side channel never sees pixel values — only the CPU cost of
// fetching and resizing each source image, which depends on the image
// dimensions. The synthetic source therefore reproduces the ILSVRC size
// distribution (most images near 500×375, with realistic spread) from a
// deterministic stream, which is all the attack pipeline exercises.
package imagenet

import (
	"errors"
	"math/rand"
)

// Typical ILSVRC dimensions: the distribution is centred near 500×375
// with a long tail of larger photographs.
const (
	meanWidth  = 500
	meanHeight = 375
	minSide    = 96
	maxSide    = 1600
)

// Source produces a deterministic stream of synthetic query images.
type Source struct {
	rng *rand.Rand
}

// New returns a source drawing from the given stream.
func New(rng *rand.Rand) (*Source, error) {
	if rng == nil {
		return nil, errors.New("imagenet: nil random stream")
	}
	return &Source{rng: rng}, nil
}

// Next implements dpu.QuerySource: dimensions of the next test image.
func (s *Source) Next() (width, height int) {
	width = clampSide(meanWidth + int(s.rng.NormFloat64()*90))
	height = clampSide(meanHeight + int(s.rng.NormFloat64()*70))
	return width, height
}

func clampSide(v int) int {
	if v < minSide {
		return minSide
	}
	if v > maxSide {
		return maxSide
	}
	return v
}

// Fixed is a QuerySource returning constant dimensions, useful in tests
// and for noise-free schedule analysis.
type Fixed struct {
	Width, Height int
}

// Next implements dpu.QuerySource.
func (f Fixed) Next() (int, int) { return f.Width, f.Height }
