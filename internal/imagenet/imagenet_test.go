package imagenet

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestDeterministicStream(t *testing.T) {
	a, err := New(rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	b, _ := New(rand.New(rand.NewSource(3)))
	for i := 0; i < 100; i++ {
		aw, ah := a.Next()
		bw, bh := b.Next()
		if aw != bw || ah != bh {
			t.Fatal("same seed produced different queries")
		}
	}
}

func TestDimensionsRealistic(t *testing.T) {
	s, _ := New(rand.New(rand.NewSource(5)))
	var sumW, sumH int
	const n = 5000
	for i := 0; i < n; i++ {
		w, h := s.Next()
		if w < minSide || w > maxSide || h < minSide || h > maxSide {
			t.Fatalf("dimensions %dx%d out of range", w, h)
		}
		sumW += w
		sumH += h
	}
	meanW := float64(sumW) / n
	meanH := float64(sumH) / n
	if meanW < 450 || meanW > 550 {
		t.Fatalf("mean width = %v, want ~500", meanW)
	}
	if meanH < 330 || meanH > 420 {
		t.Fatalf("mean height = %v, want ~375", meanH)
	}
}

func TestFixed(t *testing.T) {
	f := Fixed{Width: 320, Height: 240}
	for i := 0; i < 3; i++ {
		w, h := f.Next()
		if w != 320 || h != 240 {
			t.Fatalf("Fixed returned %dx%d", w, h)
		}
	}
}

// Property: dimensions are always within the documented bounds.
func TestBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		s, err := New(rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		for i := 0; i < 50; i++ {
			w, h := s.Next()
			if w < minSide || w > maxSide || h < minSide || h > maxSide {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
