package ro

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/fabric"
)

func fixedVolts(v float64) func() float64 { return func() float64 { return v } }

func newBank(t *testing.T, cfg Config) *Bank {
	t.Helper()
	b, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return b
}

func TestNewValidation(t *testing.T) {
	good := Config{NominalVolts: 0.85, Volts: fixedVolts(0.85)}
	cases := []func(Config) Config{
		func(c Config) Config { c.Count = -1; return c },
		func(c Config) Config { c.BaseHz = -1; return c },
		func(c Config) Config { c.NominalVolts = 0; return c },
		func(c Config) Config { c.Volts = nil; return c },
		func(c Config) Config { c.LocalDroopVoltsPerElement = 1e-9; return c }, // no LocalActivity
		func(c Config) Config { c.JitterHz = 1; return c },                     // no rng
		func(c Config) Config { c.JitterHz = -1; return c },
	}
	for i, mutate := range cases {
		if _, err := New(mutate(good)); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	b := newBank(t, good)
	if b.Count() != 32 {
		t.Fatalf("default Count = %d, want 32", b.Count())
	}
}

func TestNominalCounting(t *testing.T) {
	// 400 MHz at nominal voltage, 1 ms window -> 400000 cycles.
	b := newBank(t, Config{Count: 4, NominalVolts: 0.85, Volts: fixedVolts(0.85)})
	b.Step(0, time.Millisecond)
	counts := b.Sample()
	if len(counts) != 4 {
		t.Fatalf("counts len = %d", len(counts))
	}
	for i, c := range counts {
		if c != 400000 {
			t.Fatalf("count[%d] = %d, want 400000", i, c)
		}
	}
}

func TestCountsFallWithVoltage(t *testing.T) {
	v := 0.85
	b := newBank(t, Config{Count: 1, NominalVolts: 0.85, Volts: func() float64 { return v }})
	b.Step(0, time.Millisecond)
	high := b.SampleMean()
	v = 0.845 // 5 mV droop
	b.Step(0, time.Millisecond)
	low := b.SampleMean()
	if low >= high {
		t.Fatalf("counts did not fall with voltage: %v -> %v", high, low)
	}
	// Expected relative drop: 1.3/V * 5 mV = 0.65%.
	rel := (high - low) / high
	if math.Abs(rel-0.0065) > 0.0005 {
		t.Fatalf("relative drop = %v, want ~0.0065", rel)
	}
}

func TestPhaseCarryRecoverySubCount(t *testing.T) {
	// A frequency difference far below one count per window must still be
	// visible in the long-run average thanks to fractional carry.
	b1 := newBank(t, Config{Count: 1, BaseHz: 1000.5, NominalVolts: 1, Volts: fixedVolts(1)})
	b2 := newBank(t, Config{Count: 1, BaseHz: 1000.0, NominalVolts: 1, Volts: fixedVolts(1)})
	sum1, sum2 := 0.0, 0.0
	const windows = 4001
	for i := 0; i < windows; i++ {
		b1.Step(0, time.Millisecond)
		b2.Step(0, time.Millisecond)
		sum1 += b1.SampleMean()
		sum2 += b2.SampleMean()
	}
	// 0.5 extra cycles/s over ~4 s: expect ~2 extra counts (float
	// rounding can shave one off at the window boundary).
	extra := sum1 - sum2
	if extra < 1 || extra > 3 {
		t.Fatalf("extra counts = %v, want 1..3", extra)
	}
}

func TestJitterRequiresAndUsesRand(t *testing.T) {
	b := newBank(t, Config{
		Count: 1, NominalVolts: 0.85, Volts: fixedVolts(0.85),
		JitterHz: 1e6, Rand: rand.New(rand.NewSource(5)),
	})
	seen := map[int]bool{}
	for i := 0; i < 50; i++ {
		b.Step(0, time.Millisecond)
		seen[b.Sample()[0]] = true
	}
	if len(seen) < 2 {
		t.Fatal("jitter produced constant counts")
	}
}

func TestFrequencyAccessor(t *testing.T) {
	b := newBank(t, Config{Count: 2, NominalVolts: 0.85, Volts: fixedVolts(0.85)})
	b.Step(0, time.Millisecond)
	f, err := b.Frequency(0)
	if err != nil || math.Abs(f-400e6) > 1 {
		t.Fatalf("Frequency = %v, %v", f, err)
	}
	if _, err := b.Frequency(5); err == nil {
		t.Fatal("out-of-range oscillator accepted")
	}
}

func TestNegativeFrequencyClamps(t *testing.T) {
	// Collapse the voltage far below nominal: frequency clamps at zero
	// rather than counting backwards.
	b := newBank(t, Config{Count: 1, NominalVolts: 0.85, Volts: fixedVolts(0)})
	b.Step(0, time.Millisecond)
	if c := b.Sample()[0]; c != 0 {
		t.Fatalf("count = %d, want 0 at collapsed rail", c)
	}
}

func TestDeployOnFabricWithLocalDroop(t *testing.T) {
	fab, err := fabric.New(fabric.Config{
		Device:        fabric.ZU9EG(),
		CapPerElement: 1e-13,
		Voltage:       func() float64 { return 0.85 },
	})
	if err != nil {
		t.Fatalf("fabric.New: %v", err)
	}
	bank := newBank(t, Config{
		Count: 30, NominalVolts: 0.85, Volts: func() float64 { return 0.85 },
		LocalDroopVoltsPerElement: 1e-8,
		LocalActivity:             fab.RegionActivity,
	})
	if err := bank.Deploy(fab); err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	// A hot neighbour in region (0,0) slows only the oscillators there.
	hot := &hotCircuit{active: 1e5}
	fab.MustPlace(hot, []fabric.Region{{Row: 0, Col: 0}})
	fab.Step(0, time.Millisecond)
	fab.Step(0, time.Millisecond) // second tick sees region activity from first
	f0, _ := bank.Frequency(0)    // deployed round-robin: RO 0 is in (0,0)
	f1, _ := bank.Frequency(1)    // RO 1 is in a different region
	if f0 >= f1 {
		t.Fatalf("local droop missing: f0=%v f1=%v", f0, f1)
	}
}

func TestSampleMeanEmptyBank(t *testing.T) {
	b := newBank(t, Config{Count: 0, NominalVolts: 1, Volts: fixedVolts(1)})
	// Count 0 means "use default 32"? No: explicit zero takes default, so
	// build a 1-RO bank and verify SampleMean matches Sample.
	if b.Count() != 32 {
		t.Fatalf("Count = %d, want default 32", b.Count())
	}
	b.Step(0, time.Millisecond)
	m := b.SampleMean()
	if m <= 0 {
		t.Fatalf("SampleMean = %v", m)
	}
}

func TestUtilizationScalesWithCount(t *testing.T) {
	b := newBank(t, Config{Count: 10, NominalVolts: 1, Volts: fixedVolts(1)})
	u := b.Utilization()
	if u.LUTs != 80 || u.FFs != 320 {
		t.Fatalf("Utilization = %+v, want 80 LUT / 320 FF", u)
	}
	if b.ActiveElements() != 80 {
		t.Fatalf("ActiveElements = %v, want 80", b.ActiveElements())
	}
	if b.CircuitName() != "ro-bank" {
		t.Fatalf("CircuitName = %q", b.CircuitName())
	}
}

type hotCircuit struct{ active float64 }

func (h *hotCircuit) CircuitName() string           { return "hot" }
func (h *hotCircuit) Utilization() fabric.Resources { return fabric.Resources{LUTs: 1} }
func (h *hotCircuit) Step(now, dt time.Duration)    {}
func (h *hotCircuit) ActiveElements() float64       { return h.active }
