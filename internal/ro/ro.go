// Package ro implements the ring-oscillator (RO) sensor baseline of
// Zhao & Suh (S&P'18), the crafted circuit AmpereBleed is compared
// against in Fig. 2.
//
// A ring oscillator is a combinational loop whose oscillation frequency
// rises and falls with the local supply voltage; feeding the loop into a
// counter and sampling the counter at fixed intervals turns voltage
// droop into count variations. Because commercial boards stabilize the
// FPGA rail, only a few millivolts of load-dependent droop remain, so
// RO counts move by well under a percent across the full victim range —
// the paper measures current variations 261× larger.
//
// The bank model places many oscillators across the die ("distributed
// throughout the FPGA board to average dependence on spatial proximity")
// and lets each one see the global rail voltage plus a local droop term
// proportional to the switching activity in its own clock region.
package ro

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/fabric"
)

// Config describes a bank of ring oscillators.
type Config struct {
	// Count is the number of oscillators; zero means 32.
	Count int
	// BaseHz is the oscillation frequency at nominal voltage; zero means
	// 400 MHz (a short combinational loop).
	BaseHz float64
	// NominalVolts is the rail voltage at which BaseHz is achieved. Must
	// be > 0.
	NominalVolts float64
	// VoltSensitivity is the relative frequency change per volt of
	// supply deviation (df/f = VoltSensitivity · ΔV); zero means 1.3/V,
	// i.e. ≈1.3 %% per 10 mV, a typical RO figure.
	VoltSensitivity float64
	// LocalDroopVoltsPerElement converts clock-region switching activity
	// into additional local droop seen by oscillators in that region;
	// zero disables the spatial effect.
	LocalDroopVoltsPerElement float64
	// JitterHz is the RMS cycle-to-cycle frequency jitter; zero disables.
	JitterHz float64
	// Volts returns the present global rail voltage. Required.
	Volts func() float64
	// LocalActivity returns the present switching activity in a clock
	// region; required when LocalDroopVoltsPerElement > 0 (usually
	// fabric.RegionActivity).
	LocalActivity func(fabric.Region) (float64, error)
	// Rand supplies the jitter stream; required when JitterHz > 0.
	Rand *rand.Rand
	// UtilizationPerRO is the logic occupied by one oscillator+counter;
	// zero means 8 LUTs and 32 FFs.
	UtilizationPerRO fabric.Resources
}

// Bank is a set of placed ring oscillators. It implements
// fabric.Circuit; place it with Deploy (or fabric.Place) before stepping.
type Bank struct {
	cfg     Config
	regions []fabric.Region
	phase   []float64 // accumulated oscillation cycles per RO
	freq    []float64 // present frequency per RO, for diagnostics
}

// New validates cfg and returns an unplaced bank.
func New(cfg Config) (*Bank, error) {
	if cfg.Count == 0 {
		cfg.Count = 32
	}
	if cfg.Count < 0 {
		return nil, errors.New("ro: negative count")
	}
	if cfg.BaseHz == 0 {
		cfg.BaseHz = 400e6
	}
	if cfg.BaseHz < 0 {
		return nil, errors.New("ro: negative base frequency")
	}
	if cfg.NominalVolts <= 0 {
		return nil, errors.New("ro: non-positive nominal voltage")
	}
	if cfg.VoltSensitivity == 0 {
		cfg.VoltSensitivity = 1.3
	}
	if cfg.Volts == nil {
		return nil, errors.New("ro: missing voltage probe")
	}
	if cfg.LocalDroopVoltsPerElement > 0 && cfg.LocalActivity == nil {
		return nil, errors.New("ro: local droop requires a LocalActivity probe")
	}
	if cfg.JitterHz > 0 && cfg.Rand == nil {
		return nil, errors.New("ro: jitter requires a random stream")
	}
	if cfg.JitterHz < 0 || cfg.LocalDroopVoltsPerElement < 0 {
		return nil, errors.New("ro: negative noise parameter")
	}
	if (cfg.UtilizationPerRO == fabric.Resources{}) {
		cfg.UtilizationPerRO = fabric.Resources{LUTs: 8, FFs: 32}
	}
	return &Bank{
		cfg:   cfg,
		phase: make([]float64, cfg.Count),
		freq:  make([]float64, cfg.Count),
	}, nil
}

// Deploy distributes the bank round-robin over every clock region of the
// fabric and records which oscillator landed where.
func (b *Bank) Deploy(f *fabric.Fabric) error {
	all := f.SpreadEvenly()
	b.regions = make([]fabric.Region, b.cfg.Count)
	for i := range b.regions {
		b.regions[i] = all[i%len(all)]
	}
	return f.Place(b, all)
}

// Count returns the number of oscillators.
func (b *Bank) Count() int { return b.cfg.Count }

// CircuitName implements fabric.Circuit.
func (b *Bank) CircuitName() string { return "ro-bank" }

// Utilization implements fabric.Circuit.
func (b *Bank) Utilization() fabric.Resources {
	u := b.cfg.UtilizationPerRO
	n := b.cfg.Count
	return fabric.Resources{LUTs: u.LUTs * n, FFs: u.FFs * n, DSPs: u.DSPs * n, BRAMKb: u.BRAMKb * n}
}

// ActiveElements implements fabric.Circuit. Each oscillator toggles its
// own loop continuously, a small constant self-load.
func (b *Bank) ActiveElements() float64 {
	return float64(b.cfg.Count * b.cfg.UtilizationPerRO.LUTs)
}

// Step implements fabric.Circuit: advance every oscillator's phase
// accumulator by its instantaneous frequency.
func (b *Bank) Step(now, dt time.Duration) {
	sec := dt.Seconds()
	global := b.cfg.Volts()
	for i := range b.phase {
		v := global
		if b.cfg.LocalDroopVoltsPerElement > 0 && len(b.regions) == len(b.phase) {
			if act, err := b.cfg.LocalActivity(b.regions[i]); err == nil {
				v -= b.cfg.LocalDroopVoltsPerElement * act
			}
		}
		f := b.cfg.BaseHz * (1 + b.cfg.VoltSensitivity*(v-b.cfg.NominalVolts))
		if b.cfg.JitterHz > 0 {
			f += b.cfg.Rand.NormFloat64() * b.cfg.JitterHz
		}
		if f < 0 {
			f = 0
		}
		b.freq[i] = f
		b.phase[i] += f * sec
	}
}

// Sample reads and resets every oscillator's counter, returning the
// integer counts accumulated since the previous sample. The fractional
// phase remainder carries over, exactly like a free-running hardware
// counter — this carry is what lets long averages recover sub-count
// frequency differences.
func (b *Bank) Sample() []int {
	counts := make([]int, len(b.phase))
	for i, p := range b.phase {
		c := int(p)
		counts[i] = c
		b.phase[i] = p - float64(c)
	}
	return counts
}

// SampleMean is Sample reduced to the mean count across the bank, the
// aggregate statistic the Fig. 2 comparison uses.
func (b *Bank) SampleMean() float64 {
	counts := b.Sample()
	if len(counts) == 0 {
		return 0
	}
	sum := 0
	for _, c := range counts {
		sum += c
	}
	return float64(sum) / float64(len(counts))
}

// Frequency returns the last computed frequency of oscillator i.
func (b *Bank) Frequency(i int) (float64, error) {
	if i < 0 || i >= len(b.freq) {
		return 0, fmt.Errorf("ro: oscillator %d out of range", i)
	}
	return b.freq[i], nil
}
