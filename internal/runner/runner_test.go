package runner

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("shard%03d", i)
	}
	return out
}

// TestOrderedResults checks that results come back in submission order
// even when later shards finish first.
func TestOrderedResults(t *testing.T) {
	res, err := Map(context.Background(), Config{Workers: 4, Seed: 7}, "order", keys(16),
		func(ctx context.Context, info Info) (string, error) {
			// Earlier shards sleep longer, so completion order is roughly
			// the reverse of submission order.
			time.Sleep(time.Duration(16-info.Index) * time.Millisecond)
			return info.Key, nil
		})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := FirstErr(res); got != nil {
		t.Fatalf("FirstErr: %v", got)
	}
	for i, r := range res {
		if r.Index != i {
			t.Errorf("result %d has index %d", i, r.Index)
		}
		if want := "order/" + fmt.Sprintf("shard%03d", i); r.Key != want || r.Value != want {
			t.Errorf("result %d = (%q,%q), want %q", i, r.Key, r.Value, want)
		}
		if r.Latency <= 0 {
			t.Errorf("result %d has non-positive latency %v", i, r.Latency)
		}
		if r.Worker < 0 || r.Worker >= 4 {
			t.Errorf("result %d ran on worker %d", i, r.Worker)
		}
	}
}

// TestDeterministicAcrossWorkerCounts is the package-level statement of
// the core guarantee: the same campaign produces bit-identical values
// for any worker count.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	campaign := func(workers int) []float64 {
		res, err := Map(context.Background(), Config{Workers: workers, Seed: 99}, "det", keys(24),
			func(ctx context.Context, info Info) (float64, error) {
				rng := rand.New(rand.NewSource(info.Seed))
				sum := 0.0
				for i := 0; i < 100; i++ {
					sum += rng.NormFloat64()
				}
				return sum, nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := FirstErr(res); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return Values(res)
	}
	base := campaign(1)
	for _, w := range []int{2, 4, 16} {
		if got := campaign(w); !reflect.DeepEqual(got, base) {
			t.Errorf("workers=%d produced different values than workers=1", w)
		}
	}
}

// TestShardSeedStable pins the seed derivation: changing it would
// silently re-seed every campaign in the repository.
func TestShardSeedStable(t *testing.T) {
	if ShardSeed(1, "a") == ShardSeed(1, "b") {
		t.Error("distinct keys share a seed")
	}
	if ShardSeed(1, "a") == ShardSeed(2, "a") {
		t.Error("distinct roots share a seed")
	}
	// FNV-1a of "x/0" xored with root 1, the value core's capture seeds
	// have used since PR 1; a change here breaks replayability of saved
	// capture files.
	if got, want := ShardSeed(1, "x/0"), int64(-4697271894025577511); got != want {
		t.Errorf("ShardSeed(1, \"x/0\") = %d, want %d", got, want)
	}
}

// TestPanicIsolation checks a panicking shard fails alone.
func TestPanicIsolation(t *testing.T) {
	res, err := Map(context.Background(), Config{Workers: 3}, "p", keys(9),
		func(ctx context.Context, info Info) (int, error) {
			if info.Index == 4 {
				panic("synthetic shard crash")
			}
			return info.Index, nil
		})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, r := range res {
		if i == 4 {
			var pe *PanicError
			if !errors.As(r.Err, &pe) {
				t.Fatalf("shard 4 error = %v, want PanicError", r.Err)
			}
			if pe.Value != "synthetic shard crash" || !strings.Contains(pe.Stack, "runner") {
				t.Errorf("panic error = %+v missing value or stack", pe)
			}
			if !strings.Contains(pe.Error(), "p/shard004") {
				t.Errorf("panic error text %q lacks shard key", pe.Error())
			}
			continue
		}
		if r.Err != nil || r.Value != i {
			t.Errorf("shard %d = (%d, %v), want (%d, nil)", i, r.Value, r.Err, i)
		}
	}
	if err := FirstErr(res); err == nil || !strings.Contains(err.Error(), "shard004") {
		t.Errorf("FirstErr = %v, want shard004 panic", err)
	}
}

// TestCancellation checks that cancelling the campaign context stops
// dispatch and stamps unstarted shards with the context error.
func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	res, err := Map(ctx, Config{Workers: 1, QueueDepth: 1}, "c", keys(32),
		func(ctx context.Context, info Info) (int, error) {
			if started.Add(1) == 2 {
				cancel()
			}
			return info.Index, nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
	if n := started.Load(); n >= 32 {
		t.Errorf("all %d shards ran despite cancellation", n)
	}
	var stamped int
	for _, r := range res {
		if errors.Is(r.Err, context.Canceled) {
			stamped++
		}
	}
	if stamped == 0 {
		t.Error("no shard carries the cancellation error")
	}
}

// TestShardTimeout checks the cooperative per-shard deadline.
func TestShardTimeout(t *testing.T) {
	res, err := Map(context.Background(),
		Config{Workers: 2, ShardTimeout: 5 * time.Millisecond}, "t", keys(4),
		func(ctx context.Context, info Info) (int, error) {
			if info.Index == 0 {
				// A cooperative shard polls its context between blocks.
				deadline := time.After(2 * time.Second)
				for {
					select {
					case <-ctx.Done():
						return 0, ctx.Err()
					case <-deadline:
						return 0, errors.New("deadline never fired")
					}
				}
			}
			return info.Index, nil
		})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !errors.Is(res[0].Err, context.DeadlineExceeded) {
		t.Errorf("slow shard error = %v, want deadline exceeded", res[0].Err)
	}
	for _, r := range res[1:] {
		if r.Err != nil {
			t.Errorf("fast shard %s failed: %v", r.Key, r.Err)
		}
	}
}

// TestConfigValidation covers the rejected configurations.
func TestConfigValidation(t *testing.T) {
	bg := context.Background()
	ok := func(ctx context.Context, info Info) (int, error) { return 0, nil }
	cases := []struct {
		name   string
		cfg    Config
		shards []Shard[int]
	}{
		{"negative workers", Config{Workers: -1}, []Shard[int]{{Key: "a", Run: ok}}},
		{"negative queue", Config{QueueDepth: -2}, []Shard[int]{{Key: "a", Run: ok}}},
		{"negative timeout", Config{ShardTimeout: -time.Second}, []Shard[int]{{Key: "a", Run: ok}}},
		{"nil run", Config{}, []Shard[int]{{Key: "a"}}},
		{"duplicate key", Config{}, []Shard[int]{{Key: "a", Run: ok}, {Key: "a", Run: ok}}},
	}
	for _, tc := range cases {
		if _, err := Run(bg, tc.cfg, tc.shards); err == nil {
			t.Errorf("%s: Run accepted invalid input", tc.name)
		}
	}
	res, err := Run(bg, Config{}, []Shard[int]{})
	if err != nil || len(res) != 0 {
		t.Errorf("empty campaign = (%v, %v), want ([], nil)", res, err)
	}
}

// TestWorkersClampedToShards checks a huge pool does not spawn more
// workers than shards (worker indices stay in range).
func TestWorkersClampedToShards(t *testing.T) {
	res, err := Map(context.Background(), Config{Workers: 64}, "w", keys(3),
		func(ctx context.Context, info Info) (int, error) { return info.Index, nil })
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, r := range res {
		if r.Worker < 0 || r.Worker >= 3 {
			t.Errorf("shard %s ran on worker %d, want [0,3)", r.Key, r.Worker)
		}
	}
}

// TestShardErrorsDoNotStopCampaign checks ordinary errors are collected
// per shard while the rest of the campaign completes.
func TestShardErrorsDoNotStopCampaign(t *testing.T) {
	sentinel := errors.New("measurement failed")
	res, err := Map(context.Background(), Config{Workers: 2}, "e", keys(8),
		func(ctx context.Context, info Info) (int, error) {
			if info.Index%3 == 0 {
				return 0, sentinel
			}
			return info.Index, nil
		})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, r := range res {
		wantErr := i%3 == 0
		if (r.Err != nil) != wantErr {
			t.Errorf("shard %d error = %v, want error=%v", i, r.Err, wantErr)
		}
		if wantErr && !errors.Is(r.Err, sentinel) {
			t.Errorf("shard %d error = %v, want sentinel", i, r.Err)
		}
	}
	if err := FirstErr(res); !errors.Is(err, sentinel) {
		t.Errorf("FirstErr = %v, want sentinel", err)
	}
}

// TestPanicErrorTextCarriesStack pins that the shard error surfaces the
// goroutine stack of the panic site, so a crash inside a parallel
// experiment is debuggable from the top-level error alone.
func TestPanicErrorTextCarriesStack(t *testing.T) {
	boom := func() { panic("deep crash") }
	res, err := Map(context.Background(), Config{Workers: 2}, "stk", keys(2),
		func(ctx context.Context, info Info) (int, error) {
			if info.Index == 1 {
				boom()
			}
			return 0, nil
		})
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	ferr := FirstErr(res)
	if ferr == nil {
		t.Fatal("no shard error for a panicking shard")
	}
	text := ferr.Error()
	if !strings.Contains(text, "goroutine") || !strings.Contains(text, "runner_test.go") {
		t.Errorf("error text lacks the panic stack:\n%s", text)
	}
	var pe *PanicError
	if !errors.As(ferr, &pe) || pe.Stack == "" {
		t.Errorf("FirstErr did not preserve the PanicError stack: %v", ferr)
	}
}
