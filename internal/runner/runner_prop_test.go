package runner_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/check"
	"repro/internal/runner"
)

// campaign is a randomized campaign description: a root seed and a set
// of shard keys, some of which are marked to panic.
type campaign struct {
	seed   int64
	keys   []string
	panics map[string]bool
}

func genCampaign(withPanics bool) check.Gen[campaign] {
	return check.Gen[campaign]{
		Generate: func(r *rand.Rand, size int) campaign {
			n := 1 + r.Intn(1+size/4)
			c := campaign{seed: r.Int63(), panics: map[string]bool{}}
			for i := 0; i < n; i++ {
				key := fmt.Sprintf("shard-%03d", i)
				c.keys = append(c.keys, key)
				if withPanics && r.Intn(4) == 0 {
					c.panics[key] = true
				}
			}
			return c
		},
		Describe: func(c campaign) string {
			return fmt.Sprintf("campaign{seed=%d shards=%d panics=%d}", c.seed, len(c.keys), len(c.panics))
		},
	}
}

// pureShards builds shards whose value is a pure function of the
// shard's Info — the determinism contract every real campaign (and the
// ledger's canonical manifests) relies on.
func pureShards(c campaign) []runner.Shard[string] {
	shards := make([]runner.Shard[string], len(c.keys))
	for i, key := range c.keys {
		shards[i] = runner.Shard[string]{
			Key: key,
			Run: func(ctx context.Context, info runner.Info) (string, error) {
				if c.panics[info.Key] {
					panic("planted shard panic")
				}
				// Deterministic per-shard work driven only by the seed.
				r := rand.New(rand.NewSource(info.Seed))
				return fmt.Sprintf("%s:%d:%d", info.Key, info.Index, r.Int63()), nil
			},
		}
	}
	return shards
}

// TestPropWorkersInvariant generalizes the fixed-seed determinism
// tests: for ANY random campaign of pure shards, workers 1, 4, and 16
// yield identical values in identical (submission) order.
func TestPropWorkersInvariant(t *testing.T) {
	check.Forall(t, genCampaign(false), func(c *check.T, camp campaign) {
		var base []string
		for _, workers := range []int{1, 4, 16} {
			results, err := runner.Run(context.Background(), runner.Config{
				Name: "prop", Seed: camp.seed, Workers: workers,
			}, pureShards(camp))
			if err != nil {
				c.Fatalf("Run(workers=%d): %v", workers, err)
			}
			if ferr := runner.FirstErr(results); ferr != nil {
				c.Fatalf("workers=%d: unexpected shard error: %v", workers, ferr)
			}
			vals := runner.Values(results)
			if base == nil {
				base = vals
				continue
			}
			if len(vals) != len(base) {
				c.Fatalf("workers=%d returned %d results, want %d", workers, len(vals), len(base))
			}
			for i := range vals {
				if vals[i] != base[i] {
					c.Errorf("workers=%d result[%d] = %q, workers=1 got %q", workers, i, vals[i], base[i])
				}
			}
		}
	})
}

// TestPropPanicIsolation: panicking shards surface as *PanicError on
// their own result and never disturb their neighbours' values.
func TestPropPanicIsolation(t *testing.T) {
	check.Forall(t, genCampaign(true), func(c *check.T, camp campaign) {
		c.Classify(len(camp.panics) > 0, "has-panics")
		results, err := runner.Run(context.Background(), runner.Config{
			Name: "prop", Seed: camp.seed, Workers: 4,
		}, pureShards(camp))
		if err != nil {
			c.Fatalf("Run: %v", err)
		}
		if len(results) != len(camp.keys) {
			c.Fatalf("got %d results for %d shards", len(results), len(camp.keys))
		}
		for _, res := range results {
			if camp.panics[res.Key] {
				var pe *runner.PanicError
				if !errors.As(res.Err, &pe) {
					c.Errorf("shard %s planted to panic, err = %v", res.Key, res.Err)
				}
				continue
			}
			if res.Err != nil {
				c.Errorf("healthy shard %s got err %v", res.Key, res.Err)
			}
			want := fmt.Sprintf("%s:%d:%d", res.Key, res.Index,
				rand.New(rand.NewSource(runner.ShardSeed(camp.seed, res.Key))).Int63())
			if res.Value != want {
				c.Errorf("shard %s value perturbed by neighbour panics: %q != %q", res.Key, res.Value, want)
			}
		}
	})
}

// TestPropShardSeedStability: shard seeds depend only on (root, key) —
// never on index, worker count, or neighbours — and distinct keys
// decorrelate.
func TestPropShardSeedStability(t *testing.T) {
	check.Forall(t, genCampaign(false), func(c *check.T, camp campaign) {
		seen := map[int64]string{}
		for _, key := range camp.keys {
			s1 := runner.ShardSeed(camp.seed, key)
			s2 := runner.ShardSeed(camp.seed, key)
			if s1 != s2 {
				c.Errorf("ShardSeed not stable for %q: %d vs %d", key, s1, s2)
			}
			if prev, dup := seen[s1]; dup {
				c.Errorf("keys %q and %q collide on seed %d", prev, key, s1)
			}
			seen[s1] = key
		}
	})
}
