// Package runner is the parallel experiment orchestrator of the
// reproduction: it shards a measurement campaign — a board × victim
// circuit × trial matrix, a cross-validation grid, a level sweep —
// across a bounded worker pool while keeping the campaign's outcome a
// pure function of its root seed.
//
// The determinism contract is the whole point. Every shard carries a
// stable string key; its random seed is derived from the campaign seed
// and that key alone (ShardSeed, the same mixing the simulation
// engine's named streams use), never from worker identity, completion
// order, or wall-clock time. Each shard drives its own sim.Engine
// instance, so two shards share no mutable state. Results are collected
// into submission order. Consequently a campaign run with 1, 4, or 16
// workers — or with a different Go scheduler, or on a different machine
// — produces bit-identical results; worker count only changes how fast
// they arrive.
//
// The pool provides bounded-queue submission (a slow consumer cannot
// balloon memory), cooperative per-shard timeout and campaign
// cancellation via context, and panic isolation: a shard that panics
// reports a failed Result carrying the panic value and stack instead of
// killing the process, so one pathological configuration cannot take
// down an overnight sweep. Shard latency, queue depth, worker
// utilization, and failure counts stream into internal/obs.
package runner

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/olog"
)

// log is the runner's structured logger; campaign lifecycle logs at
// info, shard failures at warn. Quiet until olog.Setup runs.
var log = olog.L("runner")

// ShardSeed derives the deterministic seed of the shard with the given
// key under the given campaign seed: root XOR FNV-1a(key). The mixing
// matches sim.Engine.Stream, so a shard key plays the same role for a
// campaign that a stream name plays for an engine: distinct keys give
// decorrelated seeds while the whole campaign remains a pure function
// of the root seed.
func ShardSeed(root int64, key string) int64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return root ^ int64(h.Sum64())
}

// Info identifies a shard to its work function.
type Info struct {
	// Key is the shard's stable identifier within the campaign.
	Key string
	// Index is the shard's submission position.
	Index int
	// Seed is ShardSeed(campaign seed, Key). Work functions must draw
	// all their randomness from it (typically by passing it to
	// board.Config.Seed or rand.NewSource) and never from global state.
	Seed int64
}

// Shard is one unit of campaign work.
type Shard[T any] struct {
	// Key must be unique within the campaign and stable across runs; it
	// determines the shard's seed.
	Key string
	// Run executes the shard. ctx carries the campaign cancellation and,
	// when Config.ShardTimeout is set, the shard deadline; long-running
	// work should poll ctx.Err() between measurement blocks.
	Run func(ctx context.Context, info Info) (T, error)
}

// Result is one shard's outcome. Results are returned in submission
// order regardless of completion order.
type Result[T any] struct {
	// Key and Index echo the shard's identity.
	Key   string
	Index int
	// Value is the shard's return value; meaningful only when Err is nil.
	Value T
	// Err is the shard's failure, a *PanicError if it panicked, or the
	// context error if the campaign was cancelled before it ran.
	Err error
	// Latency is the shard's wall-clock execution time.
	Latency time.Duration
	// Worker is the index of the worker that executed the shard.
	Worker int
}

// PanicError is the failure recorded for a shard that panicked.
type PanicError struct {
	// Key of the offending shard.
	Key string
	// Value recovered from the panic.
	Value any
	// Stack is the goroutine stack at the point of the panic.
	Stack string
}

// Error implements the error interface. The goroutine stack rides
// along: a campaign surfaces shard panics only through this error, so
// without it the crash site would be unrecoverable.
func (p *PanicError) Error() string {
	if p.Stack == "" {
		return fmt.Sprintf("runner: shard %q panicked: %v", p.Key, p.Value)
	}
	return fmt.Sprintf("runner: shard %q panicked: %v\n%s", p.Key, p.Value, strings.TrimRight(p.Stack, "\n"))
}

// Config parameterizes a campaign.
type Config struct {
	// Name labels the campaign in obs events and spans. Empty means
	// "campaign".
	Name string
	// Seed is the campaign root seed shards derive theirs from.
	Seed int64
	// Workers is the pool size; zero means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the submission queue; zero means 2×Workers.
	QueueDepth int
	// ShardTimeout, when positive, bounds each shard's context. The
	// timeout is cooperative: a shard that never polls its context runs
	// to completion, but its result reports the deadline error.
	ShardTimeout time.Duration
}

func (cfg *Config) fillDefaults() error {
	if cfg.Name == "" {
		cfg.Name = "campaign"
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers < 1 {
		return errors.New("runner: non-positive worker count")
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 2 * cfg.Workers
	}
	if cfg.QueueDepth < 1 {
		return errors.New("runner: non-positive queue depth")
	}
	if cfg.ShardTimeout < 0 {
		return errors.New("runner: negative shard timeout")
	}
	return nil
}

// Run executes every shard on a pool of cfg.Workers workers and returns
// one Result per shard, in submission order. Shard-level failures
// (including panics) are reported per Result and do not stop the
// campaign; Run's own error is non-nil only for an invalid
// configuration, a duplicate shard key, or campaign cancellation — in
// the cancellation case the partial results are still returned, with
// unstarted shards carrying ctx's error.
func Run[T any](ctx context.Context, cfg Config, shards []Shard[T]) ([]Result[T], error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	seen := make(map[string]bool, len(shards))
	for _, s := range shards {
		if s.Run == nil {
			return nil, fmt.Errorf("runner: shard %q has no Run function", s.Key)
		}
		if seen[s.Key] {
			return nil, fmt.Errorf("runner: duplicate shard key %q", s.Key)
		}
		seen[s.Key] = true
	}
	results := make([]Result[T], len(shards))
	for i, s := range shards {
		results[i] = Result[T]{Key: s.Key, Index: i, Worker: -1}
	}
	if len(shards) == 0 {
		return results, ctx.Err()
	}
	if cfg.Workers > len(shards) {
		cfg.Workers = len(shards)
	}

	var (
		queueDepth  = obs.H("runner.queue_depth")
		shardNs     = obs.H("runner.shard_ns")
		shardsDone  = obs.C("runner.shards")
		shardsFail  = obs.C("runner.shards_failed")
		shardsPanic = obs.C("runner.shards_panicked")
		utilization = obs.G("runner.utilization")
	)
	obs.G("runner.workers").Set(float64(cfg.Workers))
	obs.Eventf("runner: %s: %d shards on %d workers starting",
		cfg.Name, len(shards), cfg.Workers)
	log.InfoContext(ctx, "campaign starting", "campaign", cfg.Name,
		"shards", len(shards), "workers", cfg.Workers, "seed", cfg.Seed)
	span := obs.StartSpan("runner."+cfg.Name, nil)
	start := time.Now()

	// Submission: a producer feeds shard indices through a bounded
	// channel so arbitrarily large campaigns hold at most QueueDepth
	// shards beyond the ones in flight.
	queue := make(chan int, cfg.QueueDepth)
	go func() {
		defer close(queue)
		for i := range shards {
			queueDepth.Observe(float64(len(queue)))
			select {
			case queue <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	busy := make([]time.Duration, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range queue {
				r := &results[i]
				r.Worker = w
				if err := ctx.Err(); err != nil {
					r.Err = err
					continue
				}
				shardCtx, cancel := ctx, func() {}
				if cfg.ShardTimeout > 0 {
					shardCtx, cancel = context.WithTimeout(ctx, cfg.ShardTimeout)
				}
				info := Info{Key: r.Key, Index: i, Seed: ShardSeed(cfg.Seed, r.Key)}
				shardStart := time.Now()
				r.Value, r.Err = runShard(shardCtx, shards[i].Run, info)
				cancel()
				r.Latency = time.Since(shardStart)
				busy[w] += r.Latency
				shardNs.Observe(float64(r.Latency.Nanoseconds()))
				shardsDone.Inc()
				if r.Err != nil {
					shardsFail.Inc()
					if pe := (*PanicError)(nil); errors.As(r.Err, &pe) {
						shardsPanic.Inc()
					}
					log.WarnContext(ctx, "shard failed", "campaign", cfg.Name,
						"shard", r.Key, "worker", w, "err", r.Err)
				}
			}
		}(w)
	}
	wg.Wait()
	span.End()

	// When cancellation raced submission, shards the producer never
	// enqueued still carry Worker == -1; stamp them with the context
	// error so callers can tell "not run" from "ran and succeeded".
	if err := ctx.Err(); err != nil {
		for i := range results {
			if results[i].Worker == -1 && results[i].Err == nil {
				results[i].Err = err
			}
		}
	}

	wall := time.Since(start)
	var busyTotal time.Duration
	for _, b := range busy {
		busyTotal += b
	}
	if wall > 0 {
		utilization.Set(float64(busyTotal) / (float64(wall) * float64(cfg.Workers)))
	}
	failed := 0
	for i := range results {
		if results[i].Err != nil {
			failed++
		}
	}
	obs.Eventf("runner: %s: %d shards done in %v (%d failed, utilization %.0f%%)",
		cfg.Name, len(shards), wall.Round(time.Millisecond), failed,
		100*utilization.Value())
	log.InfoContext(ctx, "campaign done", "campaign", cfg.Name,
		"shards", len(shards), "failed", failed,
		"wall", wall.Round(time.Millisecond), "utilization", utilization.Value())
	return results, ctx.Err()
}

// runShard executes one shard with panic isolation.
func runShard[T any](ctx context.Context, fn func(context.Context, Info) (T, error), info Info) (val T, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = &PanicError{Key: info.Key, Value: rec, Stack: string(debug.Stack())}
		}
	}()
	return fn(ctx, info)
}

// Map is the common campaign shape: one shard per key, all running the
// same function. Shard keys are prefix+"/"+key.
func Map[T any](ctx context.Context, cfg Config, prefix string, keys []string, fn func(ctx context.Context, info Info) (T, error)) ([]Result[T], error) {
	shards := make([]Shard[T], len(keys))
	for i, k := range keys {
		shards[i] = Shard[T]{Key: prefix + "/" + k, Run: fn}
	}
	return Run(ctx, cfg, shards)
}

// FirstErr returns the first shard failure in submission order, or nil
// when every shard succeeded — the policy of the serial loops the
// runner replaces, which stopped at the first error.
func FirstErr[T any](results []Result[T]) error {
	for i := range results {
		if results[i].Err != nil {
			return fmt.Errorf("runner: shard %q: %w", results[i].Key, results[i].Err)
		}
	}
	return nil
}

// Values extracts the shard values in submission order; it requires
// FirstErr to have returned nil.
func Values[T any](results []Result[T]) []T {
	out := make([]T, len(results))
	for i := range results {
		out[i] = results[i].Value
	}
	return out
}
