package runner

// Goroutine-leak regression tests: the worker pool must not strand
// workers after a completed or cancelled campaign. NumGoroutine is
// polled with a retry loop because exiting goroutines unwind
// asynchronously after Run returns.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"
)

// waitNumGoroutine waits for the process to settle back to at most base
// goroutines; on timeout it fails with all stacks.
func waitNumGoroutine(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d, baseline %d\n%s", n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func leakShards(n int, run func(ctx context.Context, info Info) (int, error)) []Shard[int] {
	shards := make([]Shard[int], n)
	for i := range shards {
		shards[i] = Shard[int]{Key: fmt.Sprintf("shard/%d", i), Run: run}
	}
	return shards
}

func TestRunPoolShutdownLeavesNoGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	shards := leakShards(32, func(ctx context.Context, info Info) (int, error) {
		return int(info.Seed), nil
	})
	if _, err := Run(context.Background(), Config{Workers: 8}, shards); err != nil {
		t.Fatal(err)
	}
	waitNumGoroutine(t, base)
}

func TestRunCancelledPoolLeavesNoGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 64)
	shards := leakShards(64, func(ctx context.Context, info Info) (int, error) {
		started <- struct{}{}
		<-ctx.Done()
		return 0, ctx.Err()
	})
	done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, Config{Workers: 4}, shards)
		done <- err
	}()
	for i := 0; i < 4; i++ {
		<-started
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled campaign returned %v", err)
	}
	waitNumGoroutine(t, base)
}

func TestRunPanickingShardsLeaveNoGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	shards := leakShards(16, func(ctx context.Context, info Info) (int, error) {
		if info.Index%2 == 0 {
			panic("boom")
		}
		return 1, nil
	})
	results, err := Run(context.Background(), Config{Workers: 4}, shards)
	if err != nil {
		t.Fatal(err)
	}
	panics := 0
	for _, r := range results {
		var pe *PanicError
		if errors.As(r.Err, &pe) {
			panics++
		}
	}
	if panics != 8 {
		t.Fatalf("panicked shards reported = %d, want 8", panics)
	}
	waitNumGoroutine(t, base)
}
