// Package leakage implements standard side-channel leakage assessment:
// signal-to-noise ratio over labelled trace groups, Welch's t-statistic,
// and the TVLA fixed-vs-random methodology (Goodwill et al.) used across
// the hardware-security literature to certify whether a channel leaks.
//
// The repository uses it to quantify the AmpereBleed channel: the FPGA
// current samples of RSA victims with different keys fail TVLA wildly
// (the attack works), while the Montgomery-ladder victim passes.
package leakage

import (
	"errors"
	"math"

	"repro/internal/obs"
	"repro/internal/stats"
)

// Channel-health gauges: every successful assessment records its
// outcome so a live /metrics/snapshot (and the run ledger) shows the
// channel's current quality without re-running the analysis.
var (
	gaugeSNR  = obs.G("leakage.snr")
	gaugeTVLA = obs.G("leakage.tvla_t")
)

// TVLAThreshold is the conventional |t| bound: a channel whose
// fixed-vs-random t-statistic exceeds 4.5 is considered leaking.
const TVLAThreshold = 4.5

// SNR computes the signal-to-noise ratio of a labelled channel: the
// variance of the per-group means (signal) over the mean of the
// within-group variances (noise). Groups with fewer than two samples
// are rejected.
func SNR(groups [][]float64) (float64, error) {
	if len(groups) < 2 {
		return 0, errors.New("leakage: need at least two groups")
	}
	means := make([]float64, len(groups))
	var noise float64
	for i, g := range groups {
		if len(g) < 2 {
			return 0, errors.New("leakage: group with fewer than two samples")
		}
		m, err := stats.Mean(g)
		if err != nil {
			return 0, err
		}
		v, err := stats.Variance(g)
		if err != nil {
			return 0, err
		}
		means[i] = m
		noise += v
	}
	noise /= float64(len(groups))
	signal, err := stats.Variance(means)
	if err != nil {
		return 0, err
	}
	snr := signal / noise
	if noise == 0 {
		if signal == 0 {
			snr = 0
		} else {
			snr = math.Inf(1)
		}
	}
	gaugeSNR.Set(snr)
	return snr, nil
}

// WelchT returns Welch's t-statistic between two samples (unequal
// variances, unequal sizes).
func WelchT(a, b []float64) (float64, error) {
	if len(a) < 2 || len(b) < 2 {
		return 0, errors.New("leakage: need at least two samples per side")
	}
	ma, err := stats.Mean(a)
	if err != nil {
		return 0, err
	}
	mb, err := stats.Mean(b)
	if err != nil {
		return 0, err
	}
	va, err := stats.SampleVariance(a)
	if err != nil {
		return 0, err
	}
	vb, err := stats.SampleVariance(b)
	if err != nil {
		return 0, err
	}
	denom := math.Sqrt(va/float64(len(a)) + vb/float64(len(b)))
	if denom == 0 {
		if ma == mb {
			return 0, nil
		}
		return math.Inf(sign(ma - mb)), nil
	}
	return (ma - mb) / denom, nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// TVLAResult is the outcome of a fixed-vs-random test.
type TVLAResult struct {
	// T is Welch's t-statistic between the fixed and random sets.
	T float64
	// Leaks reports |T| > TVLAThreshold.
	Leaks bool
}

// TVLA runs the fixed-vs-random test on two sample sets.
func TVLA(fixed, random []float64) (TVLAResult, error) {
	t, err := WelchT(fixed, random)
	if err != nil {
		return TVLAResult{}, err
	}
	gaugeTVLA.Set(t)
	return TVLAResult{T: t, Leaks: math.Abs(t) > TVLAThreshold}, nil
}
