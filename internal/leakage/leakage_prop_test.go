package leakage_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/check"
	"repro/internal/leakage"
)

// twoGroups generates a pair of sample groups with distinct means, the
// shape every TVLA/Welch call sees.
type twoGroups struct {
	a, b []float64
}

func genTwoGroups() check.Gen[twoGroups] {
	return check.Gen[twoGroups]{
		Generate: func(r *rand.Rand, _ int) twoGroups {
			mk := func(mean float64) []float64 {
				n := 2 + r.Intn(60)
				out := make([]float64, n)
				for i := range out {
					out[i] = mean + r.NormFloat64()
				}
				return out
			}
			return twoGroups{a: mk(10 * r.Float64()), b: mk(10 * r.Float64())}
		},
		Describe: func(g twoGroups) string {
			return "a=" + check.FloatDescribe(g.a) + " b=" + check.FloatDescribe(g.b)
		},
	}
}

// manyGroups generates >= 2 groups of >= 2 samples, the SNR input shape.
func genManyGroups() check.Gen[[][]float64] {
	return check.Gen[[][]float64]{
		Generate: func(r *rand.Rand, _ int) [][]float64 {
			k := 2 + r.Intn(6)
			groups := make([][]float64, k)
			for gi := range groups {
				n := 2 + r.Intn(20)
				mean := 5 * r.Float64()
				groups[gi] = make([]float64, n)
				for i := range groups[gi] {
					groups[gi][i] = mean + 0.5*r.NormFloat64()
				}
			}
			return groups
		},
	}
}

// TestPropWelchTAntisymmetric: swapping the groups flips only the sign
// of the t statistic — exactly, in floating point, because the
// denominator's addition is commutative.
func TestPropWelchTAntisymmetric(t *testing.T) {
	check.Forall(t, genTwoGroups(), func(c *check.T, g twoGroups) {
		tab, err := leakage.WelchT(g.a, g.b)
		if err != nil {
			c.Fatalf("WelchT(a,b): %v", err)
		}
		tba, err := leakage.WelchT(g.b, g.a)
		if err != nil {
			c.Fatalf("WelchT(b,a): %v", err)
		}
		if tab != -tba {
			c.Errorf("t not antisymmetric under swap: %v vs %v", tab, tba)
		}
	})
}

// TestPropTVLAVerdictSwapInvariant: the leak verdict (|t| against the
// 4.5 threshold) cannot depend on which set is called "fixed".
func TestPropTVLAVerdictSwapInvariant(t *testing.T) {
	check.Forall(t, genTwoGroups(), func(c *check.T, g twoGroups) {
		r1, err := leakage.TVLA(g.a, g.b)
		if err != nil {
			c.Fatalf("TVLA(a,b): %v", err)
		}
		r2, err := leakage.TVLA(g.b, g.a)
		if err != nil {
			c.Fatalf("TVLA(b,a): %v", err)
		}
		c.Classify(r1.Leaks, "leaks")
		if r1.Leaks != r2.Leaks {
			c.Errorf("verdict flipped under swap: %v (t=%v) vs %v (t=%v)", r1.Leaks, r1.T, r2.Leaks, r2.T)
		}
		if math.Abs(r1.T) > leakage.TVLAThreshold != r1.Leaks {
			c.Errorf("Leaks inconsistent with |t|=%v", math.Abs(r1.T))
		}
	})
}

// TestPropSNRDCOffsetInvariant: adding the same DC offset to every
// sample moves every group mean equally and leaves within-group spread
// alone, so the SNR is unchanged (up to rounding).
func TestPropSNRDCOffsetInvariant(t *testing.T) {
	check.Forall(t, genManyGroups(), func(c *check.T, groups [][]float64) {
		base, err := leakage.SNR(groups)
		if err != nil {
			c.Fatalf("SNR: %v", err)
		}
		const dc = 250.0
		shifted := make([][]float64, len(groups))
		for i, g := range groups {
			shifted[i] = make([]float64, len(g))
			for j, v := range g {
				shifted[i][j] = v + dc
			}
		}
		got, err := leakage.SNR(shifted)
		if err != nil {
			c.Fatalf("SNR(shifted): %v", err)
		}
		rel := math.Abs(got-base) / math.Max(math.Abs(base), 1e-12)
		if rel > 1e-6 {
			c.Errorf("SNR moved under DC offset: %v -> %v (rel %v)", base, got, rel)
		}
	})
}

// TestPropSNRScaleInvariant: scaling every sample by the same factor
// scales signal and noise variance identically, so SNR is unchanged.
func TestPropSNRScaleInvariant(t *testing.T) {
	check.Forall(t, genManyGroups(), func(c *check.T, groups [][]float64) {
		base, err := leakage.SNR(groups)
		if err != nil {
			c.Fatalf("SNR: %v", err)
		}
		const k = 7.5
		scaled := make([][]float64, len(groups))
		for i, g := range groups {
			scaled[i] = make([]float64, len(g))
			for j, v := range g {
				scaled[i][j] = k * v
			}
		}
		got, err := leakage.SNR(scaled)
		if err != nil {
			c.Fatalf("SNR(scaled): %v", err)
		}
		rel := math.Abs(got-base) / math.Max(math.Abs(base), 1e-12)
		if rel > 1e-6 {
			c.Errorf("SNR moved under uniform scale: %v -> %v (rel %v)", base, got, rel)
		}
	})
}

// TestPropWelchTDetectsPlantedShift: a metamorphic direction check —
// pushing one group's mean far from the other must grow |t|, and two
// identical groups give t = 0.
func TestPropWelchTDetectsPlantedShift(t *testing.T) {
	check.Forall(t, genTwoGroups(), func(c *check.T, g twoGroups) {
		self, err := leakage.WelchT(g.a, g.a)
		if err != nil {
			c.Fatalf("WelchT(a,a): %v", err)
		}
		if self != 0 {
			c.Errorf("t(a,a) = %v, want 0", self)
		}
		near, err := leakage.WelchT(g.a, g.b)
		if err != nil {
			c.Fatalf("WelchT(a,b): %v", err)
		}
		far := make([]float64, len(g.b))
		for i, v := range g.b {
			far[i] = v + 1000
		}
		tFar, err := leakage.WelchT(g.a, far)
		if err != nil {
			c.Fatalf("WelchT(a, far): %v", err)
		}
		if math.Abs(tFar) <= math.Abs(near) {
			c.Errorf("planted 1000-unit shift did not grow |t|: %v -> %v", near, tFar)
		}
	})
}
