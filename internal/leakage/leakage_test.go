package leakage

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSNRSeparatedGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mk := func(mean float64) []float64 {
		out := make([]float64, 200)
		for i := range out {
			out[i] = mean + rng.NormFloat64()
		}
		return out
	}
	snr, err := SNR([][]float64{mk(0), mk(10), mk(20)})
	if err != nil {
		t.Fatalf("SNR: %v", err)
	}
	// Signal variance ~ Var({0,10,20}) = 66.7, noise ~1 -> SNR ~66.
	if snr < 40 || snr > 100 {
		t.Fatalf("SNR = %v, want ~66", snr)
	}
}

func TestSNRIdenticalGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	mk := func() []float64 {
		out := make([]float64, 500)
		for i := range out {
			out[i] = rng.NormFloat64()
		}
		return out
	}
	snr, err := SNR([][]float64{mk(), mk(), mk()})
	if err != nil {
		t.Fatalf("SNR: %v", err)
	}
	if snr > 0.05 {
		t.Fatalf("SNR = %v on identical distributions, want ~0", snr)
	}
}

func TestSNRErrors(t *testing.T) {
	if _, err := SNR([][]float64{{1, 2}}); err == nil {
		t.Fatal("one group accepted")
	}
	if _, err := SNR([][]float64{{1, 2}, {1}}); err == nil {
		t.Fatal("singleton group accepted")
	}
}

func TestSNRZeroNoise(t *testing.T) {
	snr, err := SNR([][]float64{{1, 1}, {2, 2}})
	if err != nil {
		t.Fatalf("SNR: %v", err)
	}
	if !math.IsInf(snr, 1) {
		t.Fatalf("SNR = %v, want +Inf for noiseless distinct groups", snr)
	}
	snr, err = SNR([][]float64{{1, 1}, {1, 1}})
	if err != nil || snr != 0 {
		t.Fatalf("constant equal groups SNR = %v, %v", snr, err)
	}
}

func TestWelchTKnownValue(t *testing.T) {
	// Symmetric case: t = (ma-mb)/sqrt(va/na+vb/nb).
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{3, 4, 5, 6, 7}
	tt, err := WelchT(a, b)
	if err != nil {
		t.Fatalf("WelchT: %v", err)
	}
	want := (3.0 - 5.0) / math.Sqrt(2.5/5+2.5/5)
	if math.Abs(tt-want) > 1e-12 {
		t.Fatalf("t = %v, want %v", tt, want)
	}
}

func TestWelchTErrorsAndDegenerate(t *testing.T) {
	if _, err := WelchT([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("singleton accepted")
	}
	tt, err := WelchT([]float64{2, 2}, []float64{2, 2})
	if err != nil || tt != 0 {
		t.Fatalf("identical constants: t=%v err=%v", tt, err)
	}
	tt, err = WelchT([]float64{3, 3}, []float64{2, 2})
	if err != nil || !math.IsInf(tt, 1) {
		t.Fatalf("distinct constants: t=%v err=%v", tt, err)
	}
}

func TestTVLA(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	fixed := make([]float64, 500)
	random := make([]float64, 500)
	for i := range fixed {
		fixed[i] = 1.0 + 0.01*rng.NormFloat64()
		random[i] = 1.1 + 0.01*rng.NormFloat64() // clearly different mean
	}
	res, err := TVLA(fixed, random)
	if err != nil {
		t.Fatalf("TVLA: %v", err)
	}
	if !res.Leaks {
		t.Fatalf("TVLA missed an obvious leak (t=%v)", res.T)
	}
	// Same distribution: no leak.
	for i := range random {
		random[i] = 1.0 + 0.01*rng.NormFloat64()
	}
	res, err = TVLA(fixed, random)
	if err != nil {
		t.Fatalf("TVLA: %v", err)
	}
	if res.Leaks {
		t.Fatalf("TVLA false positive (t=%v)", res.T)
	}
}

// Property: WelchT is antisymmetric: t(a,b) = -t(b,a).
func TestWelchTAntisymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, 20)
		b := make([]float64, 30)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64() + 1
		}
		t1, err1 := WelchT(a, b)
		t2, err2 := WelchT(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(t1+t2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
