package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Inc()
	c.Add(4)
	if got := r.Counter("x").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("y")
	g.Set(2.5)
	if got := r.Gauge("y").Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
	// Same name must return the same handle.
	if r.Counter("x") != c || r.Gauge("y") != g {
		t.Fatal("registry returned a fresh handle for an existing name")
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("zero-value histogram should report zeros")
	}
	for _, v := range []float64{1, 2, 3, 4} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 10 || h.Mean() != 2.5 {
		t.Fatalf("sum/mean = %v/%v", h.Sum(), h.Mean())
	}
	if h.Min() != 1 || h.Max() != 4 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	// 1..1000 uniformly: p50 ~ 500, p95 ~ 950, p99 ~ 990.
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	check := func(q, want float64) {
		got := h.Quantile(q)
		if got < want*0.85 || got > want*1.15 {
			t.Fatalf("q%.2f = %v, want within 15%% of %v", q, got, want)
		}
	}
	check(0.50, 500)
	check(0.95, 950)
	check(0.99, 990)
	if h.Quantile(0) < 1 || h.Quantile(1) > 1000 {
		t.Fatalf("extreme quantiles out of envelope: %v %v", h.Quantile(0), h.Quantile(1))
	}
}

func TestHistogramEdgeValues(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-5)
	h.Observe(math.Exp2(60)) // beyond the top bucket
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != -5 {
		t.Fatalf("min = %v, want -5", h.Min())
	}
	if got := h.Quantile(1); got != h.Max() {
		t.Fatalf("q1 = %v, want max %v", got, h.Max())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w*per + i + 1))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	if h.Min() != 1 || h.Max() != workers*per {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	wantSum := float64(workers*per) * float64(workers*per+1) / 2
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}
}

type fakeClock struct{ now time.Duration }

func (c *fakeClock) Now() time.Duration { return c.now }

func TestSpanRecordsWallAndSim(t *testing.T) {
	r := NewRegistry()
	clk := &fakeClock{}
	sp := r.StartSpan("capture", clk)
	clk.now = 5 * time.Second
	sp.End()

	wall, ok := r.Snapshot().Histogram("span.capture.wall_ns")
	if !ok || wall.Count != 1 {
		t.Fatalf("wall histogram = %+v ok=%v", wall, ok)
	}
	sim, ok := r.Snapshot().Histogram("span.capture.sim_ns")
	if !ok || sim.Count != 1 {
		t.Fatalf("sim histogram = %+v ok=%v", sim, ok)
	}
	if sim.Mean < float64(4*time.Second) || sim.Mean > float64(6*time.Second) {
		t.Fatalf("sim duration = %v ns, want ~5s", sim.Mean)
	}
	spans := r.RecentSpans()
	if len(spans) != 1 || spans[0].Name != "capture" || !spans[0].HasSim ||
		spans[0].Sim != 5*time.Second {
		t.Fatalf("recent spans = %+v", spans)
	}
}

func TestSpanWithoutClock(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("train", nil)
	sp.End()
	if _, ok := r.Snapshot().Histogram("span.train.sim_ns"); ok {
		t.Fatal("clockless span recorded a sim histogram")
	}
	if _, ok := r.Snapshot().Histogram("span.train.wall_ns"); !ok {
		t.Fatal("clockless span missing wall histogram")
	}
}

func TestEventsRingBounded(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < EventRingSize+10; i++ {
		r.Eventf("event %d", i)
	}
	evs := r.Events()
	if len(evs) != EventRingSize {
		t.Fatalf("events = %d, want %d", len(evs), EventRingSize)
	}
	if evs[0].Msg != "event 10" || evs[len(evs)-1].Msg != "event 73" {
		t.Fatalf("ring window = %q .. %q", evs[0].Msg, evs[len(evs)-1].Msg)
	}
}

func TestSnapshotAndText(t *testing.T) {
	r := NewRegistry()
	r.Counter("core.captures").Add(7)
	r.Gauge("sim.ratio").Set(120.5)
	r.Histogram("attacker.sample_rate_hz").Observe(28.57)
	r.Eventf("capture ResNet-50/3 done")
	s := r.Snapshot()
	if s.Counter("core.captures") != 7 {
		t.Fatalf("snapshot counter = %d", s.Counter("core.captures"))
	}
	if s.Gauge("sim.ratio") != 120.5 {
		t.Fatalf("snapshot gauge = %v", s.Gauge("sim.ratio"))
	}
	h, ok := s.Histogram("attacker.sample_rate_hz")
	if !ok || h.Count != 1 {
		t.Fatalf("snapshot histogram = %+v ok=%v", h, ok)
	}

	var b strings.Builder
	if err := s.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{"core.captures", "sim.ratio", "attacker.sample_rate_hz", "Hz", "capture ResNet-50/3 done"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text snapshot missing %q:\n%s", want, text)
		}
	}
}

func TestResetZeroesInPlace(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Inc()
	h := r.Histogram("h")
	h.Observe(3)
	r.Eventf("x")
	r.StartSpan("s", nil).End()
	r.Reset()
	s := r.Snapshot()
	if s.Counter("a") != 0 {
		t.Fatalf("counter survived reset: %d", s.Counter("a"))
	}
	if hs, _ := s.Histogram("h"); hs.Count != 0 || hs.Max != 0 {
		t.Fatalf("histogram survived reset: %+v", hs)
	}
	if len(s.Events) != 0 || len(s.RecentSpans) != 0 {
		t.Fatalf("rings survived reset: %+v", s)
	}
	// Cached handles must keep recording into the zeroed metrics.
	c.Inc()
	h.Observe(7)
	s = r.Snapshot()
	if s.Counter("a") != 1 {
		t.Fatalf("cached counter detached after reset: %d", s.Counter("a"))
	}
	if hs, _ := s.Histogram("h"); hs.Count != 1 || hs.Max != 7 {
		t.Fatalf("cached histogram detached after reset: %+v", hs)
	}
}

func TestDefaultHelpers(t *testing.T) {
	name := "obs_test.helper"
	C(name).Inc()
	G(name).Set(1)
	H(name).Observe(1)
	s := Default.Snapshot()
	if s.Counter(name) != 1 || s.Gauge(name) != 1 {
		t.Fatal("default helpers did not record")
	}
}
