package obs

import (
	"bytes"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	om "repro/internal/obs/openmetrics"
)

func TestSanitizeMetricName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"core.sampler.gaps", "core_sampler_gaps"},
		{"span.runner.campaign.wall_ns", "span_runner_campaign_wall_ns"},
		{"a-b", "a_b"},
		{"a.b", "a_b"},
		{"9lives", "_9lives"},
		{"0", "_0"},
		{"", "_"},
		{"already_fine:colons_ok", "already_fine:colons_ok"},
		{"héllo", "h_llo"}, // é is one rune (two UTF-8 bytes): one '_' per rune, not per byte
		{"faults.injected.sysfs_eagain", "faults_injected_sysfs_eagain"},
	}
	for _, c := range cases {
		got := SanitizeMetricName(c.in)
		if got != c.want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", c.in, got, c.want)
		}
		if !om.ValidName(got) {
			t.Errorf("SanitizeMetricName(%q) = %q is not a valid exposition name", c.in, got)
		}
	}
}

func TestBucketUpperMonotone(t *testing.T) {
	prev := math.Inf(-1)
	for i := 0; i < histBuckets; i++ {
		u := bucketUpper(i)
		if !(u > prev) {
			t.Fatalf("bucketUpper(%d) = %v not > bucketUpper(%d) = %v", i, u, i-1, prev)
		}
		prev = u
	}
	if !math.IsInf(bucketUpper(histBuckets-1), +1) {
		t.Fatalf("overflow bucket upper = %v, want +Inf", bucketUpper(histBuckets-1))
	}
	// A bucket's midpoint must not exceed its upper bound, or the
	// quantile estimates and the exposition would disagree about which
	// bucket a value belongs to.
	for i := 1; i < histBuckets-1; i++ {
		if bucketValue(i) > bucketUpper(i) {
			t.Fatalf("bucketValue(%d) = %v > bucketUpper(%d) = %v", i, bucketValue(i), i, bucketUpper(i))
		}
		if bucketValue(i) <= bucketUpper(i-1) {
			t.Fatalf("bucketValue(%d) = %v not above the previous bound %v", i, bucketValue(i), bucketUpper(i-1))
		}
	}
}

// TestOpenMetricsRoundTrip holds the renderer and the parser to each
// other: everything WriteOpenMetrics emits must parse and validate, and
// the parsed values must agree with Snapshot().
func TestOpenMetricsRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("core.sampler.gaps").Add(7)
	r.Counter("trace.samples_recorded").Add(12345)
	r.Counter("9weird.name-with-dash").Add(1)
	r.Counter("already_total").Add(3)
	r.Gauge("leakage.snr").Set(14.25)
	r.Gauge("covert.ber").Set(0)
	r.Gauge("neg.gauge").Set(-2.5)
	h := r.Histogram("runner.shard_ns")
	for _, v := range []float64{0, 1e-12, 0.4, 0.5, 1, 3, 3.1, 1e9, math.Exp2(50)} {
		h.Observe(v) // spans underflow, interior, and overflow buckets
	}

	var buf bytes.Buffer
	if err := r.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	e, err := om.Parse(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, buf.String())
	}
	if err := e.Validate(); err != nil {
		t.Fatalf("validate: %v\n%s", err, buf.String())
	}

	snap := r.Snapshot()
	for name, want := range snap.Counters {
		en := SanitizeMetricName(name)
		f := e.Family(en)
		if f == nil {
			t.Fatalf("counter %q: no family %q in exposition", name, en)
		}
		if f.Type != "counter" {
			t.Fatalf("counter %q exposed as %q", name, f.Type)
		}
		sample := en
		if !strings.HasSuffix(sample, "_total") {
			sample += "_total"
		}
		s, ok := f.Sample(sample, "")
		if !ok {
			t.Fatalf("counter %q: no sample %q", name, sample)
		}
		if int64(s.Value) != want {
			t.Fatalf("counter %q = %v, snapshot says %d", name, s.Value, want)
		}
		if !strings.Contains(f.Help, name) {
			t.Fatalf("counter %q: HELP %q does not carry the internal name", name, f.Help)
		}
	}
	for name, want := range snap.Gauges {
		f := e.Family(SanitizeMetricName(name))
		if f == nil || f.Type != "gauge" {
			t.Fatalf("gauge %q missing or mistyped", name)
		}
		s, ok := f.Sample(SanitizeMetricName(name), "")
		if !ok || s.Value != want {
			t.Fatalf("gauge %q = %v ok=%v, snapshot says %v", name, s.Value, ok, want)
		}
	}
	f := e.Family("runner_shard_ns")
	if f == nil || f.Type != "histogram" {
		t.Fatalf("histogram family missing or mistyped: %+v", f)
	}
	count, _ := f.Sample("runner_shard_ns_count", "")
	if int64(count.Value) != snap.Histograms["runner.shard_ns"].Count {
		t.Fatalf("_count = %v, snapshot count = %d", count.Value, snap.Histograms["runner.shard_ns"].Count)
	}
	sum, _ := f.Sample("runner_shard_ns_sum", "")
	if math.Abs(sum.Value-h.Sum()) > 1e-9*math.Abs(h.Sum()) {
		t.Fatalf("_sum = %v, histogram sum = %v", sum.Value, h.Sum())
	}
	inf, ok := f.Sample("runner_shard_ns_bucket", "+Inf")
	if !ok || int64(inf.Value) != h.Count() {
		t.Fatalf("+Inf bucket = %v ok=%v, want %d", inf.Value, ok, h.Count())
	}
}

// TestOpenMetricsNameCollision checks that two internal names mapping
// onto the same exposition name are disambiguated deterministically.
func TestOpenMetricsNameCollision(t *testing.T) {
	r := NewRegistry()
	r.Counter("a-b").Add(1)
	r.Counter("a.b").Add(2)
	var buf bytes.Buffer
	if err := r.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	e, err := om.Parse(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	// Lexical order: "a-b" sorts before "a.b", so it wins the bare name.
	fb := e.Family("a_b")
	f2 := e.Family("a_b_2")
	if fb == nil || f2 == nil {
		t.Fatalf("families = %v, want a_b and a_b_2", e.Names())
	}
	if s, _ := fb.Sample("a_b_total", ""); s.Value != 1 {
		t.Fatalf("a_b_total = %v, want 1 (from a-b)", s.Value)
	}
	if s, _ := f2.Sample("a_b_2_total", ""); s.Value != 2 {
		t.Fatalf("a_b_2_total = %v, want 2 (from a.b)", s.Value)
	}
	if !strings.Contains(fb.Help, "a-b") || !strings.Contains(f2.Help, "a.b") {
		t.Fatalf("HELP lines lost the internal names: %q / %q", fb.Help, f2.Help)
	}
}

// TestMetricsEndpointAgreesWithSnapshot scrapes /metrics and
// /metrics/snapshot off the same handler and cross-checks them — the
// acceptance criterion for the exposition endpoint.
func TestMetricsEndpointAgreesWithSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim.ticks").Add(99)
	r.Gauge("runner.utilization").Set(0.75)
	r.Histogram("attacker.sample_rate_hz").Observe(28.5)
	srv := httptest.NewServer(NewHandler(r))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != OpenMetricsContentType {
		t.Fatalf("/metrics content type = %q", ct)
	}
	e, err := om.Parse(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot()
	if s, ok := e.Family("sim_ticks").Sample("sim_ticks_total", ""); !ok || int64(s.Value) != snap.Counter("sim.ticks") {
		t.Fatalf("sim_ticks_total = %v ok=%v, snapshot %d", s.Value, ok, snap.Counter("sim.ticks"))
	}
	if s, ok := e.Family("runner_utilization").Sample("runner_utilization", ""); !ok || s.Value != snap.Gauge("runner.utilization") {
		t.Fatalf("runner_utilization = %v ok=%v", s.Value, ok)
	}
	hs, _ := snap.Histogram("attacker.sample_rate_hz")
	if s, ok := e.Family("attacker_sample_rate_hz").Sample("attacker_sample_rate_hz_count", ""); !ok || int64(s.Value) != hs.Count {
		t.Fatalf("histogram count over /metrics = %v ok=%v, snapshot %d", s.Value, ok, hs.Count)
	}

	// Method guard: non-GET must be rejected on every obs endpoint.
	for _, path := range []string{"/metrics", "/metrics/snapshot", "/metrics/stream", "/healthz", "/trace"} {
		resp, err := http.Post(srv.URL+path, "text/plain", strings.NewReader("x"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST %s status = %d, want 405", path, resp.StatusCode)
		}
	}
}
