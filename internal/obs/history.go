package obs

// Metrics history: a Recorder periodically samples the registry
// snapshot into an internal/obs/tsdb Store, turning the instantaneous
// telemetry surfaces into a recorder — /metrics/range and
// /metrics/query serve the retained history, windowed health rules
// difference it, and `amperebleed top` renders sparklines from it.
//
// The recorder's own bookkeeping metrics (obs.tsdb.samples,
// obs.tsdb.evictions counters and the obs.tsdb.series gauge) are
// registered lazily on the first Sample, mirroring
// obs.stream.dropped_frames, so processes that never record history
// keep their deterministic counter set unchanged; internal/perf
// additionally excludes the obs.tsdb.* prefix from the drift gate
// because sample counts follow the wall ticker.

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs/tsdb"
)

// DefaultHistoryInterval is the sampling period when RecorderOptions
// leaves Interval zero, and the period behind the CLIs'
// -history-interval default.
const DefaultHistoryInterval = time.Second

// DefaultHistoryRawCapacity bounds each series' raw ring when
// RecorderOptions leaves RawCapacity zero: 10 minutes at the default
// one-second interval.
const DefaultHistoryRawCapacity = 600

// DefaultHistoryTiers returns the downsample tiers used when
// RecorderOptions leaves Tiers nil: windows of 10 and 60 sampling
// intervals retaining 360 and 240 sealed windows — at the default
// one-second interval that is one hour of 10 s windows and four hours
// of 1 min windows beyond the 10 min raw ring.
func DefaultHistoryTiers(interval time.Duration) []tsdb.TierSpec {
	if interval <= 0 {
		interval = DefaultHistoryInterval
	}
	return []tsdb.TierSpec{
		{Width: 10 * int64(interval), Capacity: 360},
		{Width: 60 * int64(interval), Capacity: 240},
	}
}

// RecorderOptions configures a history Recorder.
type RecorderOptions struct {
	// Interval is the sampling period (DefaultHistoryInterval when
	// zero). StartRecorder's ticker always runs on the wall clock; the
	// Clock only chooses the timestamp axis.
	Interval time.Duration
	// RawCapacity bounds each series' raw ring
	// (DefaultHistoryRawCapacity when zero).
	RawCapacity int
	// Tiers are the downsample tiers (DefaultHistoryTiers(Interval)
	// when nil).
	Tiers []tsdb.TierSpec
	// Clock, when non-nil, stamps samples with simulated time instead
	// of wall UnixNano, so recordings of a deterministic run land on a
	// deterministic axis.
	Clock SimClock
	// Filter, when non-nil, keeps only series whose (expanded) name it
	// accepts. The determinism property tests use it to restrict a
	// recording to deterministic series.
	Filter func(name string) bool
}

// Recorder samples a registry into a bounded time-series store.
type Recorder struct {
	reg   *Registry
	store *tsdb.Store
	opts  RecorderOptions

	lazy          sync.Once
	samplesC      *Counter
	evictionsC    *Counter
	seriesG       *Gauge
	mu            sync.Mutex
	lastEvictions int64
}

// NewRecorder builds a recorder without starting it; every Sample call
// appends one pass over the registry snapshot. Most callers want
// StartRecorder instead.
func (r *Registry) NewRecorder(opts RecorderOptions) *Recorder {
	if opts.Interval <= 0 {
		opts.Interval = DefaultHistoryInterval
	}
	if opts.RawCapacity <= 0 {
		opts.RawCapacity = DefaultHistoryRawCapacity
	}
	if opts.Tiers == nil {
		opts.Tiers = DefaultHistoryTiers(opts.Interval)
	}
	return &Recorder{
		reg:   r,
		store: tsdb.New(tsdb.Options{RawCapacity: opts.RawCapacity, Tiers: opts.Tiers}),
		opts:  opts,
	}
}

// StartRecorder builds a recorder, installs it as the registry's
// history (serving /metrics/range and /metrics/query and feeding
// windowed health rules), takes an immediate first sample, and samples
// every Interval until ctx is cancelled. The recorder stays installed
// after cancellation so the retained history remains queryable while an
// obs server is held open past the end of a run.
func (r *Registry) StartRecorder(ctx context.Context, opts RecorderOptions) *Recorder {
	rec := r.NewRecorder(opts)
	r.history.Store(rec)
	rec.Sample()
	go func() {
		t := time.NewTicker(rec.opts.Interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				rec.Sample()
			}
		}
	}()
	return rec
}

// StartRecorder starts a history recorder on the Default registry.
func StartRecorder(ctx context.Context, opts RecorderOptions) *Recorder {
	return Default.StartRecorder(ctx, opts)
}

// History returns the registry's installed recorder, or nil when the
// process is not recording history.
func (r *Registry) History() *Recorder { return r.history.Load() }

// Store exposes the recorder's underlying time-series store.
func (rec *Recorder) Store() *tsdb.Store { return rec.store }

// Interval returns the sampling period.
func (rec *Recorder) Interval() time.Duration { return rec.opts.Interval }

// ClockName names the timestamp axis: "sim" or "wall".
func (rec *Recorder) ClockName() string {
	if rec.opts.Clock != nil {
		return "sim"
	}
	return "wall"
}

// Now returns the current time on the recorder's timestamp axis in
// nanoseconds.
func (rec *Recorder) Now() int64 {
	if rec.opts.Clock != nil {
		return int64(rec.opts.Clock.Now())
	}
	return time.Now().UnixNano()
}

func (rec *Recorder) lazyInit() {
	rec.lazy.Do(func() {
		rec.samplesC = rec.reg.Counter("obs.tsdb.samples")
		rec.evictionsC = rec.reg.Counter("obs.tsdb.evictions")
		rec.seriesG = rec.reg.Gauge("obs.tsdb.series")
	})
}

func (rec *Recorder) append(name string, kind tsdb.Kind, t int64, v float64) {
	if rec.opts.Filter != nil && !rec.opts.Filter(name) {
		return
	}
	rec.store.Append(name, kind, t, v)
}

// Sample appends one pass over the registry snapshot: counters and
// gauges record under their own names; each histogram expands into a
// "<name>.count" counter plus ".mean/.min/.max/.p50/.p95/.p99" gauges,
// which is what makes quantile-over-window queries on latency series
// possible after the fact.
func (rec *Recorder) Sample() {
	rec.lazyInit()
	t := rec.Now()
	s := rec.reg.Snapshot()
	for name, v := range s.Counters {
		rec.append(name, tsdb.Counter, t, float64(v))
	}
	for name, v := range s.Gauges {
		rec.append(name, tsdb.Gauge, t, v)
	}
	for name, h := range s.Histograms {
		rec.append(name+".count", tsdb.Counter, t, float64(h.Count))
		if h.Count == 0 {
			continue
		}
		rec.append(name+".mean", tsdb.Gauge, t, h.Mean)
		rec.append(name+".min", tsdb.Gauge, t, h.Min)
		rec.append(name+".max", tsdb.Gauge, t, h.Max)
		rec.append(name+".p50", tsdb.Gauge, t, h.P50)
		rec.append(name+".p95", tsdb.Gauge, t, h.P95)
		rec.append(name+".p99", tsdb.Gauge, t, h.P99)
	}
	rec.samplesC.Inc()
	st := rec.store.Stats()
	rec.seriesG.Set(float64(st.Series))
	rec.mu.Lock()
	if d := st.Evictions - rec.lastEvictions; d > 0 {
		rec.evictionsC.Add(d)
		rec.lastEvictions = st.Evictions
	}
	rec.mu.Unlock()
}

// WindowedCounterDelta returns the named counter's increase over the
// last n sampling intervals (clamped at zero across a registry Reset)
// and whether the history covers at least two points in that span —
// callers fall back to cumulative evaluation when it does not.
func (rec *Recorder) WindowedCounterDelta(name string, n int) (float64, bool) {
	if n < 1 {
		n = 1
	}
	to := rec.Now()
	from := to - int64(n)*int64(rec.opts.Interval)
	pts := rec.store.Range(name, from, to)
	if len(pts) < 2 {
		return 0, false
	}
	d := pts[len(pts)-1].V - pts[0].V
	if d < 0 {
		d = 0
	}
	return d, true
}

// SeriesRange is one series' slice of a RangeResponse.
type SeriesRange struct {
	// Name is the series name.
	Name string `json:"name"`
	// Kind is "counter", "gauge", or "missing" for a requested series
	// the history has never seen.
	Kind string `json:"kind"`
	// Points are the raw samples (point mode).
	Points []tsdb.Point `json:"points,omitempty"`
	// Windows are the aggregates (window mode).
	Windows []tsdb.Window `json:"windows,omitempty"`
}

// RangeResponse is the /metrics/range JSON schema. Without a series
// parameter the endpoint answers in catalog mode: Names and Stats are
// set and Series is empty.
type RangeResponse struct {
	// Clock is the timestamp axis: "wall" or "sim".
	Clock string `json:"clock"`
	// IntervalNS is the sampling period in nanoseconds.
	IntervalNS int64 `json:"interval_ns"`
	// From and To bound the answered range (nanoseconds, inclusive).
	From int64 `json:"from"`
	To   int64 `json:"to"`
	// WindowNS is the aggregate window width (0 in point mode).
	WindowNS int64 `json:"window_ns,omitempty"`
	// Series carries the selected series.
	Series []SeriesRange `json:"series,omitempty"`
	// Names lists every recorded series (catalog mode).
	Names []string `json:"names,omitempty"`
	// Stats is the store occupancy (catalog mode).
	Stats *tsdb.Stats `json:"stats,omitempty"`
}

// Validate checks the response's internal consistency: known clock,
// positive interval, ordered range, valid kinds, and time-ordered
// points/windows inside [From, To].
func (r RangeResponse) Validate() error {
	if r.Clock != "wall" && r.Clock != "sim" {
		return fmt.Errorf("range: clock %q (want wall|sim)", r.Clock)
	}
	if r.IntervalNS <= 0 {
		return fmt.Errorf("range: interval_ns %d not positive", r.IntervalNS)
	}
	if r.From > r.To {
		return fmt.Errorf("range: from %d > to %d", r.From, r.To)
	}
	for _, sr := range r.Series {
		if sr.Kind != "missing" {
			if _, err := tsdb.KindFromString(sr.Kind); err != nil {
				return fmt.Errorf("range: series %q: %w", sr.Name, err)
			}
		}
		prev := int64(math.MinInt64)
		for _, p := range sr.Points {
			if p.T < r.From || p.T > r.To {
				return fmt.Errorf("range: series %q: point at %d outside [%d, %d]", sr.Name, p.T, r.From, r.To)
			}
			if p.T <= prev {
				return fmt.Errorf("range: series %q: points not strictly time-ordered at %d", sr.Name, p.T)
			}
			prev = p.T
		}
		prev = math.MinInt64
		for _, w := range sr.Windows {
			if r.WindowNS > 0 && (w.Start%r.WindowNS != 0 || w.End != w.Start+r.WindowNS) {
				return fmt.Errorf("range: series %q: window [%d,%d) not aligned to %d", sr.Name, w.Start, w.End, r.WindowNS)
			}
			if w.Start <= prev {
				return fmt.Errorf("range: series %q: windows not ordered at %d", sr.Name, w.Start)
			}
			if w.Count < 1 || w.Min > w.Max || w.Mean < w.Min || w.Mean > w.Max {
				return fmt.Errorf("range: series %q: window %+v violates envelope", sr.Name, w)
			}
			prev = w.Start
		}
	}
	return nil
}

// QueryResponse is the /metrics/query JSON schema.
type QueryResponse struct {
	// SeriesName is the queried series.
	SeriesName string `json:"series"`
	// Fn is the computation: "rate" or "quantile".
	Fn string `json:"fn"`
	// Clock is the timestamp axis: "wall" or "sim".
	Clock string `json:"clock"`
	// From and To bound the queried range (nanoseconds, inclusive).
	From int64 `json:"from"`
	To   int64 `json:"to"`
	// WindowNS is the rate window width (rate only).
	WindowNS int64 `json:"window_ns,omitempty"`
	// Q is the requested quantile (quantile only).
	Q float64 `json:"q,omitempty"`
	// Points are the per-window rates, stamped at window ends (rate).
	Points []tsdb.Point `json:"points,omitempty"`
	// Value is the quantile result and Count its contributing points
	// (quantile).
	Value float64 `json:"value,omitempty"`
	Count int     `json:"count,omitempty"`
}

// Validate checks the response's internal consistency.
func (r QueryResponse) Validate() error {
	if r.Clock != "wall" && r.Clock != "sim" {
		return fmt.Errorf("query: clock %q (want wall|sim)", r.Clock)
	}
	if r.From > r.To {
		return fmt.Errorf("query: from %d > to %d", r.From, r.To)
	}
	switch r.Fn {
	case "rate":
		if r.WindowNS <= 0 {
			return fmt.Errorf("query: rate without window_ns")
		}
		prev := int64(math.MinInt64)
		for _, p := range r.Points {
			if p.V < 0 {
				return fmt.Errorf("query: negative rate %g at %d", p.V, p.T)
			}
			if p.T <= prev {
				return fmt.Errorf("query: rate points not time-ordered at %d", p.T)
			}
			prev = p.T
		}
	case "quantile":
		if r.Q < 0 || r.Q > 1 {
			return fmt.Errorf("query: q %g outside [0, 1]", r.Q)
		}
		if r.Count < 0 {
			return fmt.Errorf("query: negative count %d", r.Count)
		}
	default:
		return fmt.Errorf("query: fn %q (want rate|quantile)", r.Fn)
	}
	return nil
}

// historyParams are the time-selection parameters shared by the range
// and query handlers.
type historyParams struct {
	from, to int64
	window   int64
}

// parseHistoryParams reads from/to (nanoseconds) or last (duration),
// plus window (duration). Defaults cover the full retention.
func parseHistoryParams(rec *Recorder, q map[string][]string) (historyParams, error) {
	p := historyParams{from: math.MinInt64, to: math.MaxInt64}
	get := func(k string) string {
		if vs := q[k]; len(vs) > 0 {
			return vs[0]
		}
		return ""
	}
	if v := get("last"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return p, fmt.Errorf("bad last %q: want a positive duration", v)
		}
		p.to = rec.Now()
		p.from = p.to - int64(d)
	}
	if v := get("from"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return p, fmt.Errorf("bad from %q: want nanoseconds", v)
		}
		p.from = n
	}
	if v := get("to"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return p, fmt.Errorf("bad to %q: want nanoseconds", v)
		}
		p.to = n
	}
	if p.from > p.to {
		return p, fmt.Errorf("from %d > to %d", p.from, p.to)
	}
	if v := get("window"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return p, fmt.Errorf("bad window %q: want a positive duration", v)
		}
		p.window = int64(d)
	}
	return p, nil
}

// clampReported bounds the From/To echoed in responses so defaults
// don't leak MinInt64/MaxInt64 into the JSON.
func clampReported(rec *Recorder, p historyParams) (int64, int64) {
	from, to := p.from, p.to
	if from == math.MinInt64 {
		from = 0
	}
	if to == math.MaxInt64 {
		to = rec.Now()
	}
	if from > to {
		from = to
	}
	return from, to
}

const historyDisabledMsg = "metrics history disabled: run with -history to record (obs.Registry.StartRecorder)"

// historyRangeHandler serves GET /metrics/range: raw points or
// aggregate windows for one or more series (comma-separated), or the
// series catalog when no series parameter is given.
func historyRangeHandler(r *Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		rec := r.History()
		if rec == nil {
			http.Error(w, historyDisabledMsg, http.StatusNotImplemented)
			return
		}
		q := req.URL.Query()
		p, err := parseHistoryParams(rec, q)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp := RangeResponse{
			Clock:      rec.ClockName(),
			IntervalNS: int64(rec.Interval()),
			WindowNS:   p.window,
		}
		resp.From, resp.To = clampReported(rec, p)
		names := strings.TrimSpace(q.Get("series"))
		if names == "" {
			st := rec.Store().Stats()
			resp.Names = rec.Store().SeriesNames()
			resp.Stats = &st
			writeHistoryJSON(w, resp)
			return
		}
		missing := 0
		for _, name := range strings.Split(names, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			sr := SeriesRange{Name: name}
			kind, ok := rec.Store().Kind(name)
			if !ok {
				sr.Kind = "missing"
				missing++
				resp.Series = append(resp.Series, sr)
				continue
			}
			sr.Kind = kind.String()
			if p.window > 0 {
				sr.Windows = rec.Store().Windows(name, p.window, p.from, p.to)
			} else {
				sr.Points = rec.Store().Range(name, p.from, p.to)
			}
			resp.Series = append(resp.Series, sr)
		}
		if len(resp.Series) == 0 {
			http.Error(w, "series parameter named no series", http.StatusBadRequest)
			return
		}
		if missing == len(resp.Series) {
			http.Error(w, fmt.Sprintf("unknown series %s", names), http.StatusNotFound)
			return
		}
		// Window alignment in Validate assumes a uniform width; clear the
		// echo when a series answered from raw-downsample fallback anyway.
		writeHistoryJSON(w, resp)
	}
}

// historyQueryHandler serves GET /metrics/query: fn=rate over a counter
// series or fn=quantile over raw points.
func historyQueryHandler(r *Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		rec := r.History()
		if rec == nil {
			http.Error(w, historyDisabledMsg, http.StatusNotImplemented)
			return
		}
		q := req.URL.Query()
		name := strings.TrimSpace(q.Get("series"))
		if name == "" {
			http.Error(w, "missing series parameter", http.StatusBadRequest)
			return
		}
		kind, ok := rec.Store().Kind(name)
		if !ok {
			http.Error(w, fmt.Sprintf("unknown series %q", name), http.StatusNotFound)
			return
		}
		p, err := parseHistoryParams(rec, q)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp := QueryResponse{
			SeriesName: name,
			Clock:      rec.ClockName(),
			Fn:         q.Get("fn"),
		}
		resp.From, resp.To = clampReported(rec, p)
		switch resp.Fn {
		case "rate":
			if kind != tsdb.Counter {
				http.Error(w, fmt.Sprintf("series %q is a %s: rate() needs a counter", name, kind), http.StatusBadRequest)
				return
			}
			if p.window <= 0 {
				p.window = 10 * int64(rec.Interval())
			}
			resp.WindowNS = p.window
			resp.Points = rec.Store().Rate(name, p.window, p.from, p.to)
		case "quantile":
			qv := 0.5
			if s := q.Get("q"); s != "" {
				v, err := strconv.ParseFloat(s, 64)
				if err != nil || v < 0 || v > 1 {
					http.Error(w, fmt.Sprintf("bad q %q: want a value in [0, 1]", s), http.StatusBadRequest)
					return
				}
				qv = v
			}
			resp.Q = qv
			resp.Value, resp.Count = rec.Store().Quantile(name, qv, p.from, p.to)
		default:
			http.Error(w, fmt.Sprintf("bad fn %q: want rate|quantile", resp.Fn), http.StatusBadRequest)
			return
		}
		writeHistoryJSON(w, resp)
	}
}

func writeHistoryJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
