package obs

import (
	"context"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/obs/tsdb"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// simRecorder wires a registry to a recorder on a hand-cranked clock.
func simRecorder(r *Registry, interval time.Duration) (*Recorder, *fakeClock) {
	clk := &fakeClock{}
	rec := r.NewRecorder(RecorderOptions{Interval: interval, Clock: clk})
	r.history.Store(rec)
	return rec, clk
}

func TestRecorderSamplesRegistry(t *testing.T) {
	r := NewRegistry()
	rec, clk := simRecorder(r, time.Second)
	c := r.Counter("work.done")
	g := r.Gauge("work.level")
	h := r.Histogram("work.latency_ns")

	for i := 1; i <= 5; i++ {
		c.Add(10)
		g.Set(float64(i))
		h.Observe(float64(i * 100))
		clk.now += time.Second
		rec.Sample()
	}

	st := rec.Store()
	if k, ok := st.Kind("work.done"); !ok || k != tsdb.Counter {
		t.Fatalf("work.done kind = %v %v", k, ok)
	}
	if k, ok := st.Kind("work.level"); !ok || k != tsdb.Gauge {
		t.Fatalf("work.level kind = %v %v", k, ok)
	}
	// Histogram expansion: .count counter plus summary gauges.
	if k, ok := st.Kind("work.latency_ns.count"); !ok || k != tsdb.Counter {
		t.Fatalf("latency .count kind = %v %v", k, ok)
	}
	for _, suffix := range []string{".mean", ".min", ".max", ".p50", ".p95", ".p99"} {
		if k, ok := st.Kind("work.latency_ns" + suffix); !ok || k != tsdb.Gauge {
			t.Fatalf("latency %s kind = %v %v", suffix, k, ok)
		}
	}
	pts := st.Range("work.done", 0, 1<<62)
	if len(pts) != 5 || pts[0].V != 10 || pts[4].V != 50 {
		t.Fatalf("work.done points = %+v", pts)
	}
	if pts[0].T != int64(time.Second) {
		t.Fatalf("first sample at %d, want sim 1s", pts[0].T)
	}
	if rec.ClockName() != "sim" {
		t.Fatalf("clock = %q", rec.ClockName())
	}
}

func TestRecorderSelfMetricsLazy(t *testing.T) {
	r := NewRegistry()
	if _, ok := r.Snapshot().Counters["obs.tsdb.samples"]; ok {
		t.Fatal("obs.tsdb.samples exists before any Sample")
	}
	rec, clk := simRecorder(r, time.Second)
	// Building the recorder alone must not register anything either —
	// that is what keeps non-recording runs' counter sets unchanged.
	if _, ok := r.Snapshot().Counters["obs.tsdb.samples"]; ok {
		t.Fatal("obs.tsdb.samples exists before first Sample")
	}
	clk.now = time.Second
	rec.Sample()
	s := r.Snapshot()
	if s.Counters["obs.tsdb.samples"] != 1 {
		t.Fatalf("obs.tsdb.samples = %d after one sample", s.Counters["obs.tsdb.samples"])
	}
	if _, ok := s.Gauges["obs.tsdb.series"]; !ok {
		t.Fatal("obs.tsdb.series gauge missing after Sample")
	}
}

func TestRecorderEvictionCounter(t *testing.T) {
	r := NewRegistry()
	clk := &fakeClock{}
	rec := r.NewRecorder(RecorderOptions{Interval: time.Second, Clock: clk, RawCapacity: 2,
		Tiers: []tsdb.TierSpec{}})
	r.Counter("x")
	for i := 0; i < 6; i++ {
		clk.now += time.Second
		rec.Sample()
	}
	if v := r.Counter("obs.tsdb.evictions").Value(); v <= 0 {
		t.Fatalf("obs.tsdb.evictions = %d after overflowing a 2-point ring", v)
	}
}

func TestRecorderFilter(t *testing.T) {
	r := NewRegistry()
	clk := &fakeClock{}
	rec := r.NewRecorder(RecorderOptions{Interval: time.Second, Clock: clk,
		Filter: func(name string) bool { return name == "keep.me" }})
	r.Counter("keep.me").Add(1)
	r.Counter("drop.me").Add(1)
	clk.now = time.Second
	rec.Sample()
	names := rec.Store().SeriesNames()
	if len(names) != 1 || names[0] != "keep.me" {
		t.Fatalf("filtered series = %v", names)
	}
}

func TestWindowedCounterDelta(t *testing.T) {
	r := NewRegistry()
	rec, clk := simRecorder(r, time.Second)
	c := r.Counter("gaps")
	if _, ok := rec.WindowedCounterDelta("gaps", 5); ok {
		t.Fatal("delta reported with no history")
	}
	for i := 0; i < 10; i++ {
		c.Add(3)
		clk.now += time.Second
		rec.Sample()
	}
	d, ok := rec.WindowedCounterDelta("gaps", 5)
	if !ok || d != 15 {
		t.Fatalf("delta over 5 windows = %g ok=%v, want 15", d, ok)
	}
	// Full-retention window covers everything sampled so far: the first
	// point is 3 (sampled after the first Add), so the delta is 27.
	d, ok = rec.WindowedCounterDelta("gaps", 1000)
	if !ok || d != 27 {
		t.Fatalf("delta over full history = %g ok=%v, want 27", d, ok)
	}
}

func TestHistoryEndpointsDisabled(t *testing.T) {
	r := NewRegistry()
	srv := httptest.NewServer(NewHandler(r))
	defer srv.Close()
	for _, path := range []string{"/metrics/range", "/metrics/query?series=x&fn=rate"} {
		body, code := getBody(t, srv.URL+path)
		if code != http.StatusNotImplemented || !strings.Contains(body, "-history") {
			t.Fatalf("%s without recorder = %d %q", path, code, body)
		}
	}
}

func TestMetricsRangeEndpoint(t *testing.T) {
	r := NewRegistry()
	rec, clk := simRecorder(r, time.Second)
	c := r.Counter("trace.gaps_recorded")
	for i := 0; i < 30; i++ {
		c.Add(int64(i % 3))
		clk.now += time.Second
		rec.Sample()
	}
	srv := httptest.NewServer(NewHandler(r))
	defer srv.Close()

	// Catalog mode.
	body, code := getBody(t, srv.URL+"/metrics/range")
	if code != http.StatusOK {
		t.Fatalf("catalog = %d %q", code, body)
	}
	var cat RangeResponse
	if err := json.Unmarshal([]byte(body), &cat); err != nil {
		t.Fatal(err)
	}
	if err := cat.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(cat.Names) == 0 || cat.Stats == nil || cat.Clock != "sim" {
		t.Fatalf("catalog = %+v", cat)
	}

	// Point mode with a series list including one missing name.
	body, code = getBody(t, srv.URL+"/metrics/range?series=trace.gaps_recorded,no.such&last=10s")
	if code != http.StatusOK {
		t.Fatalf("points = %d %q", code, body)
	}
	var resp RangeResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if err := resp.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(resp.Series) != 2 || resp.Series[0].Kind != "counter" || resp.Series[1].Kind != "missing" {
		t.Fatalf("series = %+v", resp.Series)
	}
	// Bounds are inclusive: samples at sim 20..30 s land in last=10s.
	if n := len(resp.Series[0].Points); n != 11 {
		t.Fatalf("last=10s returned %d points, want 11", n)
	}

	// Window mode.
	body, code = getBody(t, srv.URL+"/metrics/range?series=trace.gaps_recorded&window=5s")
	if code != http.StatusOK {
		t.Fatalf("windows = %d %q", code, body)
	}
	resp = RangeResponse{}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if err := resp.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(resp.Series[0].Windows) == 0 {
		t.Fatalf("no windows: %q", body)
	}

	// Errors: all-missing 404, bad params 400, non-GET 405.
	if _, code := getBody(t, srv.URL+"/metrics/range?series=no.such"); code != http.StatusNotFound {
		t.Fatalf("all-missing code = %d", code)
	}
	if _, code := getBody(t, srv.URL+"/metrics/range?last=banana"); code != http.StatusBadRequest {
		t.Fatalf("bad last code = %d", code)
	}
	if _, code := getBody(t, srv.URL+"/metrics/range?from=9&to=3"); code != http.StatusBadRequest {
		t.Fatalf("inverted range code = %d", code)
	}
	post, err := http.Post(srv.URL+"/metrics/range", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST code = %d", post.StatusCode)
	}
}

func TestMetricsQueryEndpoint(t *testing.T) {
	r := NewRegistry()
	rec, clk := simRecorder(r, time.Second)
	c := r.Counter("covert.bits")
	g := r.Gauge("leakage.snr")
	for i := 0; i < 20; i++ {
		c.Add(50)
		g.Set(float64(i))
		clk.now += time.Second
		rec.Sample()
	}
	srv := httptest.NewServer(NewHandler(r))
	defer srv.Close()

	body, code := getBody(t, srv.URL+"/metrics/query?series=covert.bits&fn=rate&window=5s")
	if code != http.StatusOK {
		t.Fatalf("rate = %d %q", code, body)
	}
	var resp QueryResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if err := resp.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(resp.Points) == 0 {
		t.Fatalf("rate returned no points: %q", body)
	}
	// Steady 50/s counter: interior windows rate 50.
	mid := resp.Points[len(resp.Points)/2]
	if mid.V < 49 || mid.V > 51 {
		t.Fatalf("mid rate = %+v, want ~50/s", mid)
	}

	body, code = getBody(t, srv.URL+"/metrics/query?series=leakage.snr&fn=quantile&q=0.95")
	if code != http.StatusOK {
		t.Fatalf("quantile = %d %q", code, body)
	}
	resp = QueryResponse{}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if err := resp.Validate(); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 20 || resp.Value < 17 {
		t.Fatalf("p95 = %+v", resp)
	}

	// rate() over a gauge is a schema error, not a silent nil.
	if _, code := getBody(t, srv.URL+"/metrics/query?series=leakage.snr&fn=rate"); code != http.StatusBadRequest {
		t.Fatalf("gauge rate code = %d", code)
	}
	if _, code := getBody(t, srv.URL+"/metrics/query?series=covert.bits&fn=median"); code != http.StatusBadRequest {
		t.Fatalf("bad fn code = %d", code)
	}
	if _, code := getBody(t, srv.URL+"/metrics/query?series=no.such&fn=rate"); code != http.StatusNotFound {
		t.Fatalf("unknown series code = %d", code)
	}
	if _, code := getBody(t, srv.URL+"/metrics/query?fn=rate"); code != http.StatusBadRequest {
		t.Fatalf("missing series code = %d", code)
	}
}

func TestStartRecorderSamplesPeriodically(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Add(1)
	ctx, cancel := context.WithCancel(context.Background())
	rec := r.StartRecorder(ctx, RecorderOptions{Interval: 10 * time.Millisecond})
	if r.History() != rec {
		t.Fatal("StartRecorder did not install itself")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if pts := rec.Store().Range("x", 0, 1<<62); len(pts) >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("recorder never accumulated 3 samples")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	// After cancellation the history stays installed and queryable.
	if r.History() == nil {
		t.Fatal("history uninstalled on cancel")
	}
	if rec.ClockName() != "wall" {
		t.Fatalf("clock = %q", rec.ClockName())
	}
}

// scrubAt replaces the volatile "at" timestamps so the verbose healthz
// body goldens cleanly.
var scrubAt = regexp.MustCompile(`"at": "[^"]*"`)

func TestHealthzVerboseGolden(t *testing.T) {
	r := NewRegistry()
	rec, clk := simRecorder(r, time.Second)
	gaps := r.Counter("trace.gaps_recorded")
	samples := r.Counter("trace.samples_recorded")
	// A burst: 8 of 10 recent samples are gaps — the windowed gap-ratio
	// rule must fail while the shard/ceiling rules pass.
	for i := 0; i < 10; i++ {
		samples.Add(10)
		if i >= 5 {
			gaps.Add(16)
		}
		clk.now += time.Second
		rec.Sample()
	}
	r.Watch()
	srv := httptest.NewServer(NewHandler(r))
	defer srv.Close()

	body, code := getBody(t, srv.URL+"/healthz?verbose=1")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("verbose healthz code = %d, body %q", code, body)
	}
	var parsed struct {
		Healthy  bool      `json:"healthy"`
		Verdicts []Verdict `json:"verdicts"`
	}
	if err := json.Unmarshal([]byte(body), &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed.Healthy || len(parsed.Verdicts) != 4 {
		t.Fatalf("parsed = %+v", parsed)
	}

	got := scrubAt.ReplaceAll([]byte(body), []byte(`"at": "SCRUBBED"`))
	path := filepath.Join("testdata", "healthz_verbose.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update to create): %v", path, err)
	}
	if string(got) != string(want) {
		t.Errorf("verbose healthz changed:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
