// Package obs is the repository's dependency-free observability layer:
// a metrics registry of atomic counters, gauges, and streaming
// histograms, a lightweight span tracer that records both wall-clock
// and sim-clock durations, and a bounded progress-event log.
//
// The package exists because the attack pipeline's central quantity —
// the attacker's achieved sampling rate, which bounds the channel
// capacity of every experiment in the paper — was previously invisible
// at runtime, as were the simulation engine's throughput (sim-time /
// wall-time ratio) and the cost of the classifier's train/predict
// phases. Every internal package records into the process-wide Default
// registry; cmd/amperebleed exposes it over HTTP (expvar + pprof +
// /metrics/snapshot) and as a text snapshot, and the public
// ampere.Snapshot API returns it programmatically.
//
// Primitives are built for hot paths: a Counter.Add is one atomic add,
// a Histogram.Observe is an atomic add into a geometric bucket, and
// instrumented code holds *Counter/*Histogram pointers so the registry
// map is only consulted at setup time.
//
// Retention is bounded everywhere: histograms summarize into fixed
// geometric buckets rather than storing samples, progress events keep
// the most recent EventRingSize (64) entries, and completed spans keep
// the most recent SpanRingSize (1024) entries. Older spans remain
// visible only through the "span.<name>.{wall,sim}_ns" histograms; the
// span ring is what the Chrome trace exporter (internal/obs/export)
// renders, so a trace timeline covers at most the last SpanRingSize
// spans of a run.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically updated float64 value (last writer wins).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram bucket geometry: 8 sub-buckets per octave (relative error
// about 6% per bucket) spanning 2^-30 (≈1 ns when observing seconds,
// or sub-Hz when observing rates) to 2^40 (≈18 min in ns, or 1 THz).
// Sub-buckets divide each octave linearly in the mantissa, so the
// bucket index is read straight out of the float's bit pattern — no
// logarithm on the Observe hot path.
const (
	histMinExp  = -30
	histMaxExp  = 40
	histSubBits = 3 // 2^3 sub-buckets per octave
	histSub     = 1 << histSubBits
	// histBuckets adds one underflow and one overflow bucket.
	histBuckets = (histMaxExp-histMinExp)*histSub + 2
)

// Histogram is a streaming geometric-bucket histogram supporting
// concurrent Observe calls and percentile queries without storing
// samples. The zero value is ready to use.
type Histogram struct {
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 sum, CAS-updated
	minBits atomic.Uint64 // float64 min, CAS-updated
	maxBits atomic.Uint64 // float64 max, CAS-updated
	buckets [histBuckets]atomic.Int64
}

func bucketIndex(v float64) int {
	if !(v > 0) { // zero, negative, NaN
		return 0
	}
	bits := math.Float64bits(v)
	exp := int(bits>>52) - 1023 // floor(log2 v); subnormals give < histMinExp
	if exp < histMinExp {
		return 0
	}
	if exp >= histMaxExp {
		return histBuckets - 1
	}
	sub := int(bits>>(52-histSubBits)) & (histSub - 1)
	return 1 + (exp-histMinExp)<<histSubBits + sub
}

// bucketValue returns the midpoint of bucket i, the value reported for
// percentiles landing in it: bucket (e,s) spans 2^e·[1+s/8, 1+(s+1)/8).
func bucketValue(i int) float64 {
	if i <= 0 {
		return 0
	}
	if i >= histBuckets-1 {
		return math.Exp2(histMaxExp)
	}
	i--
	exp := histMinExp + i>>histSubBits
	sub := i & (histSub - 1)
	return math.Exp2(float64(exp)) * (1 + (float64(sub)+0.5)/histSub)
}

// Observe records one sample. Non-positive samples land in the
// underflow bucket and count toward Count but not percentiles' spread.
func (h *Histogram) Observe(v float64) {
	h.count.Add(1)
	h.buckets[bucketIndex(v)].Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if old != unsetBits && math.Float64frombits(old) <= v {
			break
		}
		if h.minBits.CompareAndSwap(old, storeBits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if old != unsetBits && math.Float64frombits(old) >= v {
			break
		}
		if h.maxBits.CompareAndSwap(old, storeBits(v)) {
			break
		}
	}
}

// The zero bit pattern marks "no value stored yet" in minBits/maxBits.
// A stored +0.0 would collide with it, so storeBits nudges +0.0 to the
// smallest subnormal — far below any bucket resolution.
const unsetBits uint64 = 0

func storeBits(v float64) uint64 {
	b := math.Float64bits(v)
	if b == unsetBits {
		return 1
	}
	return b
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the running sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Mean returns the running mean, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Min returns the smallest observation, or 0 with no observations.
func (h *Histogram) Min() float64 {
	if h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.minBits.Load())
}

// Max returns the largest observation, or 0 with no observations.
func (h *Histogram) Max() float64 {
	if h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.maxBits.Load())
}

// Quantile returns the q-quantile (0..1) estimated from the bucket
// geometry; the relative error is bounded by the bucket width (~6%).
func (h *Histogram) Quantile(q float64) float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(n)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			// The under/overflow buckets have no geometry; report the
			// exact observed extremum instead.
			if i == 0 {
				return h.Min()
			}
			if i == histBuckets-1 {
				return h.Max()
			}
			v := bucketValue(i)
			// Clamp the estimate to the observed envelope so tiny
			// histograms report exact extrema.
			if min := h.Min(); v < min {
				v = min
			}
			if max := h.Max(); v > max {
				v = max
			}
			return v
		}
	}
	return h.Max()
}

// Registry is a named collection of metrics. Metric handles are created
// on first use and cached; lookups take a mutex, so hot paths should
// hold the returned pointers rather than re-resolving names.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	events   eventRing
	spans    spanRing
	// streamSubs counts live Subscribe feeds (obs.stream.subscribers
	// mirrors it as a gauge).
	streamSubs int
	// health is the watcher /healthz consults; set by Registry.Watch.
	health atomic.Pointer[Watcher]
	// history is the time-series recorder /metrics/range and
	// /metrics/query consult; set by Registry.StartRecorder.
	history atomic.Pointer[Recorder]
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Default is the process-wide registry every internal package records
// into; ampere.Snapshot and the CLI's --obs outputs read it.
var Default = NewRegistry()

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Reset zeroes every metric in place and clears the span and event
// rings. Handles returned by Counter/Gauge/Histogram stay valid — code
// that cached a pointer (package-level counters, live engines) keeps
// recording into the zeroed metric. Reset is not atomic with respect to
// concurrent Observe calls; call it between experiments, not during one.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.bits.Store(0)
	}
	for _, h := range r.hists {
		h.reset()
	}
	r.events.reset()
	r.spans.reset()
}

func (h *Histogram) reset() {
	h.count.Store(0)
	h.sumBits.Store(0)
	h.minBits.Store(0)
	h.maxBits.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// C returns a counter from the Default registry.
func C(name string) *Counter { return Default.Counter(name) }

// G returns a gauge from the Default registry.
func G(name string) *Gauge { return Default.Gauge(name) }

// H returns a histogram from the Default registry.
func H(name string) *Histogram { return Default.Histogram(name) }

// sortedKeys returns map keys in lexical order (stable snapshots).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
