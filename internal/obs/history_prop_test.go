package obs_test

// Recording determinism: a history recorder driven by the sim clock
// over a deterministic workload must retain byte-identical state no
// matter how many workers executed the shards. This is the tsdb leg of
// the repo-wide workers-1/4/16 invariance family (runner results,
// ledger manifests, chaos fault counts) — here it covers the whole
// sample → ring → downsample-tier path, JSON-dumped for comparison.

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/obs/tsdb"
)

type recordingCase struct {
	seed    int64
	levels  int64
	samples int64
	hostile bool
}

func genRecordingCase() check.Gen[recordingCase] {
	return check.Map(check.SliceOf(check.IntRange(0, 1<<30), 4, 4), func(xs []int64) recordingCase {
		return recordingCase{
			seed:    1 + xs[0]%1000,
			levels:  2 + xs[1]%3,
			samples: 1 + xs[2]%3,
			hostile: xs[3]%2 == 1,
		}
	})
}

// deterministicDump marshals the recorder's counter series, dropping
// wall-derived series and the recorder's own bookkeeping (whose values
// are deterministic here, but whose job is not under test). Gauges and
// histogram expansions stay out: several (runner utilization, walltime
// ratios, latency percentiles) legitimately depend on scheduling.
func deterministicDump(t testing.TB, rec *obs.Recorder) []byte {
	t.Helper()
	dump := rec.Store().Dump()
	for name, d := range dump {
		if d.Kind != "counter" || strings.Contains(name, "walltime") || strings.HasPrefix(name, "obs.tsdb.") {
			delete(dump, name)
		}
	}
	b, err := json.MarshalIndent(dump, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// tickClock is a hand-cranked SimClock standing in for the sim engine's
// clock: the test advances it at fixed protocol points, so sample
// timestamps are a function of the protocol, not the scheduler.
type tickClock struct{ now time.Duration }

func (c *tickClock) Now() time.Duration { return c.now }

func TestPropRecordingIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full characterize sweeps")
	}
	check.Forall(t, genRecordingCase(), func(c *check.T, tc recordingCase) {
		c.Classify(tc.hostile, "hostile-faults")
		var want []byte
		warmed := false
		for _, workers := range []int{1, 4, 16} {
			obs.Default.Reset()
			clk := &tickClock{}
			rec := obs.Default.NewRecorder(obs.RecorderOptions{
				Interval: time.Second,
				Clock:    clk,
				Tiers:    []tsdb.TierSpec{{Width: 2 * int64(time.Second), Capacity: 8}},
			})
			cfg := core.CharacterizeConfig{
				Seed:            tc.seed,
				Levels:          int(tc.levels),
				SamplesPerLevel: int(tc.samples),
				Parallelism:     workers,
			}
			if tc.hostile {
				p, err := faults.Preset("hostile")
				if err != nil {
					c.Fatalf("preset: %v", err)
				}
				if p, err = p.Scale(0.3); err != nil {
					c.Fatalf("scale: %v", err)
				}
				cfg.Faults = &p
			}
			// Warm the registry's metric namespace once: Reset zeroes
			// values but keeps names, so without this the first worker
			// count's baseline sample would see fewer series than later
			// ones and the dumps would differ for a reason that has
			// nothing to do with workers.
			if !warmed {
				if _, err := core.Characterize(cfg); err != nil {
					c.Fatalf("warmup: %v", err)
				}
				obs.Default.Reset()
				warmed = true
			}
			// Sample at three protocol points: baseline, mid (after one
			// sweep), end (after a second sweep continuing the counters).
			clk.now = time.Second
			rec.Sample()
			if _, err := core.Characterize(cfg); err != nil {
				c.Fatalf("workers=%d: %v", workers, err)
			}
			clk.now = 2 * time.Second
			rec.Sample()
			if _, err := core.Characterize(cfg); err != nil {
				c.Fatalf("workers=%d second sweep: %v", workers, err)
			}
			clk.now = 3 * time.Second
			rec.Sample()

			got := deterministicDump(t, rec)
			if want == nil {
				want = got
				continue
			}
			if !bytes.Equal(got, want) {
				c.Fatalf("workers=%d recording differs from workers=1 baseline:\n%s\nvs\n%s", workers, got, want)
			}
		}
	}, check.Iters(6))
}
