package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerSnapshotEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim.ticks").Add(42)
	r.Histogram("attacker.sample_rate_hz").Observe(28.5)
	srv := httptest.NewServer(NewHandler(r))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("content type = %q", ct)
	}
	var s Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Counter("sim.ticks") != 42 {
		t.Fatalf("served snapshot counter = %d", s.Counter("sim.ticks"))
	}
	if h, ok := s.Histogram("attacker.sample_rate_hz"); !ok || h.Count != 1 {
		t.Fatalf("served histogram = %+v ok=%v", h, ok)
	}
}

func TestHandlerPprofAndExpvar(t *testing.T) {
	srv := httptest.NewServer(NewHandler(NewRegistry()))
	defer srv.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/vars"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status = %d", path, resp.StatusCode)
		}
		if len(body) == 0 {
			t.Fatalf("%s returned an empty body", path)
		}
	}
}

func TestServeBindsAndShutsDown(t *testing.T) {
	addr, shutdown, err := Serve(context.Background(), "127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	shutdown()
	if _, err := http.Get("http://" + addr + "/metrics/snapshot"); err == nil {
		t.Fatal("server still answering after shutdown")
	}
}
