// Package ledger is the durable half of the observability stack: an
// append-only JSONL run ledger. Every amperebleed/benchtab invocation
// that runs with -ledger appends one Manifest — what was run (tool,
// subcommand, flags, board, root seed, fault profile, workers, go
// version), how long it took in wall and simulated time, and the
// derived channel-quality figures the paper's evaluation turns on
// (attacker sample-rate percentiles, leakage SNR and TVLA t, covert
// BER and rate, fingerprinting accuracy) plus the full deterministic
// counter set.
//
// The ledger exists because those quantities were previously computed
// and discarded: a regression in measurement quality — the silent
// failure mode side-channel reproductions are most prone to — was
// invisible across runs. With manifests retained, `amperebleed runs`
// lists, filters, and diffs them ("same seed and board, accuracy
// moved"), and the perf-compare harness has history to stand on.
//
// Manifests of runs that differ only in scheduling (worker count) are
// byte-identical after Canonicalize, which strips run metadata and
// wall-clock-dependent fields and rounds floats below the accumulation
// -order noise floor; the determinism test in this package holds that
// property across workers 1, 4, and 16.
package ledger

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/obs"
)

// SchemaVersion identifies the manifest schema; bump it when fields
// change meaning or name.
const SchemaVersion = 1

// Figures are the derived channel-quality numbers of one run, pulled
// from the obs registry snapshot taken as the run ends.
type Figures struct {
	// SampleRate summarizes the attacker's achieved sampling rate in Hz
	// of simulated time — the channel's capacity bound.
	SampleRate obs.HistogramStat `json:"attacker_sample_rate_hz"`
	// LeakageSNR is the last leakage signal-to-noise ratio computed
	// (internal/leakage records it as the leakage.snr gauge).
	LeakageSNR float64 `json:"leakage_snr"`
	// LeakageT is the last TVLA fixed-vs-random t-statistic.
	LeakageT float64 `json:"leakage_tvla_t"`
	// CovertBER and CovertBitsPerSec summarize the last covert
	// transmission.
	CovertBER        float64 `json:"covert_ber"`
	CovertBitsPerSec float64 `json:"covert_bits_per_sec"`
	// FingerprintTop1/Top5 are the mean Table III accuracies of the last
	// evaluation.
	FingerprintTop1 float64 `json:"fingerprint_top1"`
	FingerprintTop5 float64 `json:"fingerprint_top5"`
	// Counters is the full counter set of the run (sim ticks, samples
	// captured and lost, fault injections, sysfs traffic, ...).
	Counters map[string]int64 `json:"counters"`
}

// FiguresFrom extracts the derived figures from a snapshot.
func FiguresFrom(snap obs.Snapshot) Figures {
	f := Figures{
		LeakageSNR:       snap.Gauge("leakage.snr"),
		LeakageT:         snap.Gauge("leakage.tvla_t"),
		CovertBER:        snap.Gauge("covert.ber"),
		CovertBitsPerSec: snap.Gauge("covert.bits_per_sec"),
		FingerprintTop1:  snap.Gauge("fingerprint.top1_mean"),
		FingerprintTop5:  snap.Gauge("fingerprint.top5_mean"),
		Counters:         make(map[string]int64, len(snap.Counters)),
	}
	if h, ok := snap.Histogram("attacker.sample_rate_hz"); ok {
		f.SampleRate = h
	}
	for k, v := range snap.Counters {
		f.Counters[k] = v
	}
	return f
}

// RunInfo is what the invoking CLI knows about the run.
type RunInfo struct {
	// Tool is the binary ("amperebleed", "benchtab").
	Tool string
	// Command is the subcommand or -exp selector.
	Command string
	// Args are the subcommand's raw flag arguments, for reproducing the
	// exact invocation.
	Args []string
	// Board names the simulated target ("zcu102", "all" for the
	// applicability sweep, empty for board-less commands).
	Board string
	// Seed is the root seed of the run.
	Seed int64
	// FaultProfile and FaultIntensity describe the injected fault
	// profile (empty/zero when fault injection is off).
	FaultProfile   string
	FaultIntensity float64
	// Workers is the sharded-runner worker count (0 = serial/default).
	Workers int
	// RunID identifies this run; ParentRunID is the run whose checkpoint
	// it resumed from and ResumedShards how many shards that checkpoint
	// carried. All zero for ordinary (non-supervised, non-resumed) runs.
	RunID         string
	ParentRunID   string
	ResumedShards int
	// Started is when the run began; Wall its wall-clock duration.
	Started time.Time
	Wall    time.Duration
}

// Manifest is one ledger line.
type Manifest struct {
	SchemaVersion  int       `json:"schema_version"`
	Tool           string    `json:"tool"`
	Command        string    `json:"command"`
	Args           []string  `json:"args,omitempty"`
	Board          string    `json:"board,omitempty"`
	Seed           int64     `json:"seed"`
	FaultProfile   string    `json:"fault_profile,omitempty"`
	FaultIntensity float64   `json:"fault_intensity,omitempty"`
	Workers        int       `json:"workers,omitempty"`
	RunID          string    `json:"run_id,omitempty"`
	ParentRunID    string    `json:"parent_run_id,omitempty"`
	ResumedShards  int       `json:"resumed_shards,omitempty"`
	GoVersion      string    `json:"go_version,omitempty"`
	StartedAt      time.Time `json:"started_at"`
	WallSeconds    float64   `json:"wall_seconds"`
	SimSeconds     float64   `json:"sim_seconds"`
	Figures        Figures   `json:"figures"`
}

// New builds a manifest for a finished run from the run info and the
// end-of-run registry snapshot.
func New(info RunInfo, snap obs.Snapshot) Manifest {
	return Manifest{
		SchemaVersion:  SchemaVersion,
		Tool:           info.Tool,
		Command:        info.Command,
		Args:           info.Args,
		Board:          info.Board,
		Seed:           info.Seed,
		FaultProfile:   info.FaultProfile,
		FaultIntensity: info.FaultIntensity,
		Workers:        info.Workers,
		RunID:          info.RunID,
		ParentRunID:    info.ParentRunID,
		ResumedShards:  info.ResumedShards,
		GoVersion:      runtime.Version(),
		StartedAt:      info.Started,
		WallSeconds:    info.Wall.Seconds(),
		SimSeconds:     float64(snap.Counter("sim.simtime_ns")) / 1e9,
		Figures:        FiguresFrom(snap),
	}
}

// Append writes the manifest as one JSON line at the end of path,
// creating the file if needed. O_APPEND keeps concurrent appenders from
// interleaving within a line on POSIX filesystems.
func Append(path string, m Manifest) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read loads every manifest in the ledger, oldest first. Blank lines
// are skipped; a malformed line fails with its line number so a
// corrupted ledger is diagnosable.
func Read(path string) ([]Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []Manifest
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var m Manifest
		if err := json.Unmarshal([]byte(text), &m); err != nil {
			return nil, fmt.Errorf("ledger: %s:%d: %w", path, line, err)
		}
		out = append(out, m)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ledger: %s: %w", path, err)
	}
	return out, nil
}

// Filter selects manifests by run identity; zero/empty fields match
// anything.
type Filter struct {
	Tool         string
	Command      string
	Board        string
	FaultProfile string
	Seed         int64 // 0 matches any seed
}

// Match reports whether the manifest satisfies the filter.
func (f Filter) Match(m Manifest) bool {
	if f.Tool != "" && m.Tool != f.Tool {
		return false
	}
	if f.Command != "" && m.Command != f.Command {
		return false
	}
	if f.Board != "" && m.Board != f.Board {
		return false
	}
	if f.FaultProfile != "" && m.FaultProfile != f.FaultProfile {
		return false
	}
	if f.Seed != 0 && m.Seed != f.Seed {
		return false
	}
	return true
}

// Select returns the manifests matching the filter, preserving order.
func Select(ms []Manifest, f Filter) []Manifest {
	var out []Manifest
	for _, m := range ms {
		if f.Match(m) {
			out = append(out, m)
		}
	}
	return out
}

// roundSig rounds to 9 significant digits — far above the last-bit
// noise that float accumulation order introduces between runs that
// differ only in scheduling, far below any physically meaningful
// difference in the figures.
func roundSig(v float64) float64 {
	if v == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return v
	}
	scale := math.Pow(10, 8-math.Floor(math.Log10(math.Abs(v))))
	return math.Round(v*scale) / scale
}

func roundStat(h obs.HistogramStat) obs.HistogramStat {
	h.Mean = roundSig(h.Mean)
	h.Min = roundSig(h.Min)
	h.Max = roundSig(h.Max)
	h.P50 = roundSig(h.P50)
	h.P95 = roundSig(h.P95)
	h.P99 = roundSig(h.P99)
	return h
}

// Canonicalize strips everything about a manifest that legitimately
// varies between reruns of the same experiment — wall-clock fields,
// scheduling metadata (worker count, raw args), environment (go
// version), and wall-time-derived counters — and rounds the remaining
// floats past accumulation-order noise. Two runs with the same seed,
// board, and fault profile canonicalize to byte-identical JSON
// regardless of worker count; the determinism test enforces this.
func Canonicalize(m Manifest) Manifest {
	m.Args = nil
	m.Workers = 0
	// Resume lineage describes how the run executed, not what it
	// measured: a killed-and-resumed run must canonicalize identically
	// to an uninterrupted one (the jobs package's resume property).
	m.RunID = ""
	m.ParentRunID = ""
	m.ResumedShards = 0
	m.GoVersion = ""
	m.StartedAt = time.Time{}
	m.WallSeconds = 0
	m.SimSeconds = roundSig(m.SimSeconds)
	f := &m.Figures
	f.SampleRate = roundStat(f.SampleRate)
	f.LeakageSNR = roundSig(f.LeakageSNR)
	f.LeakageT = roundSig(f.LeakageT)
	f.CovertBER = roundSig(f.CovertBER)
	f.CovertBitsPerSec = roundSig(f.CovertBitsPerSec)
	f.FingerprintTop1 = roundSig(f.FingerprintTop1)
	f.FingerprintTop5 = roundSig(f.FingerprintTop5)
	counters := make(map[string]int64, len(f.Counters))
	for k, v := range f.Counters {
		if strings.Contains(k, "walltime") {
			continue // wall-clock dependent by construction
		}
		counters[k] = v
	}
	f.Counters = counters
	return m
}

// CanonicalJSON marshals the canonicalized manifest; map keys are
// sorted by encoding/json, so equal canonical manifests are
// byte-identical.
func CanonicalJSON(m Manifest) ([]byte, error) {
	return json.Marshal(Canonicalize(m))
}
