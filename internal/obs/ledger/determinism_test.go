package ledger_test

// Ledger determinism: the same experiment (seed, board, fault profile)
// must produce byte-identical canonical manifests no matter how many
// workers the sharded runner used — scheduling shows up only in the
// fields Canonicalize strips. This is the durable-observability twin of
// the runner's bit-identical-results guarantee: if it breaks, either
// the experiment lost determinism or a wall-clock-dependent quantity
// leaked into the manifest's measurement content.

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/obs/ledger"
)

func TestManifestDeterministicAcrossWorkers(t *testing.T) {
	profile, err := faults.Preset("flaky-sysfs")
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	for _, workers := range []int{1, 4, 16} {
		obs.Default.Reset()
		start := time.Now()
		if _, err := core.Characterize(core.CharacterizeConfig{
			Seed:            7,
			Levels:          6,
			SamplesPerLevel: 8,
			Parallelism:     workers,
			Faults:          &profile,
		}); err != nil {
			t.Fatalf("characterize (workers=%d): %v", workers, err)
		}
		m := ledger.New(ledger.RunInfo{
			Tool:         "amperebleed",
			Command:      "characterize",
			Board:        "zcu102",
			Seed:         7,
			FaultProfile: "flaky-sysfs",
			Workers:      workers,
			Started:      start,
			Wall:         time.Since(start),
		}, obs.Default.Snapshot())
		got, err := ledger.CanonicalJSON(m)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		if string(got) != string(want) {
			t.Errorf("canonical manifest at workers=%d differs:\n got %s\nwant %s", workers, got, want)
		}
	}
	obs.Default.Reset()
}
