package ledger

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func sampleManifest(seed int64, top1 float64) Manifest {
	r := obs.NewRegistry()
	r.Counter("sim.ticks").Add(1000)
	r.Counter("sim.simtime_ns").Add(2_000_000_000)
	r.Counter("sim.walltime_ns").Add(123456789)
	r.Counter("core.captures").Add(8)
	r.Gauge("fingerprint.top1_mean").Set(top1)
	r.Gauge("leakage.snr").Set(42.5)
	r.Histogram("attacker.sample_rate_hz").Observe(28.57)
	return New(RunInfo{
		Tool:    "amperebleed",
		Command: "fingerprint",
		Args:    []string{"-traces", "4"},
		Board:   "zcu102",
		Seed:    seed,
		Workers: 4,
		Started: time.Now(),
		Wall:    3 * time.Second,
	}, r.Snapshot())
}

func TestAppendRead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	for i := 0; i < 3; i++ {
		if err := Append(path, sampleManifest(int64(i+1), 0.9)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	ms, err := Read(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(ms) != 3 {
		t.Fatalf("read %d manifests, want 3", len(ms))
	}
	m := ms[1]
	if m.Seed != 2 || m.Tool != "amperebleed" || m.Command != "fingerprint" {
		t.Fatalf("manifest fields wrong: %+v", m)
	}
	if m.SchemaVersion != SchemaVersion {
		t.Fatalf("schema version = %d", m.SchemaVersion)
	}
	if m.SimSeconds != 2 {
		t.Fatalf("sim seconds = %g, want 2", m.SimSeconds)
	}
	if m.Figures.Counters["core.captures"] != 8 {
		t.Fatalf("counters not captured: %+v", m.Figures.Counters)
	}
	if m.Figures.SampleRate.Count != 1 {
		t.Fatalf("sample-rate figure missing: %+v", m.Figures.SampleRate)
	}
	if m.Figures.LeakageSNR != 42.5 {
		t.Fatalf("leakage snr = %g", m.Figures.LeakageSNR)
	}
}

func TestReadRejectsCorruptLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	if err := Append(path, sampleManifest(1, 0.9)); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("{not json\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Read(path); err == nil || !strings.Contains(err.Error(), ":2:") {
		t.Fatalf("corrupt line not reported with line number: %v", err)
	}
}

func TestFilterSelect(t *testing.T) {
	ms := []Manifest{
		sampleManifest(1, 0.9),
		sampleManifest(2, 0.9),
		sampleManifest(1, 0.8),
	}
	ms[2].Command = "characterize"
	if got := Select(ms, Filter{Seed: 1}); len(got) != 2 {
		t.Fatalf("seed filter matched %d, want 2", len(got))
	}
	if got := Select(ms, Filter{Command: "fingerprint", Seed: 1}); len(got) != 1 {
		t.Fatalf("command+seed filter matched %d, want 1", len(got))
	}
	if got := Select(ms, Filter{Board: "kv260"}); len(got) != 0 {
		t.Fatalf("board filter matched %d, want 0", len(got))
	}
}

func TestCanonicalizeStripsWallClock(t *testing.T) {
	a := sampleManifest(1, 0.9)
	b := sampleManifest(1, 0.9)
	// Same run content, different schedule and wall clock.
	b.Workers = 16
	b.StartedAt = b.StartedAt.Add(time.Hour)
	b.WallSeconds *= 7
	b.GoVersion = "go9.99"
	b.Args = []string{"-parallel", "16"}
	b.Figures.Counters["sim.walltime_ns"] = 999

	ja, err := CanonicalJSON(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := CanonicalJSON(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatalf("canonical manifests differ:\n%s\n%s", ja, jb)
	}
	if strings.Contains(string(ja), "walltime") {
		t.Fatal("canonical manifest still carries a walltime counter")
	}
}

func TestDiffFindsAccuracyMove(t *testing.T) {
	a := sampleManifest(1, 0.923)
	b := sampleManifest(1, 0.871)
	b.Workers = 16 // scheduling noise must not appear in the diff
	changes := Diff(a, b)
	if len(changes) != 1 {
		t.Fatalf("diff = %+v, want exactly the accuracy change", changes)
	}
	c := changes[0]
	if c.Field != "figures.fingerprint_top1" || c.A != "0.923" || c.B != "0.871" {
		t.Fatalf("unexpected change %+v", c)
	}
	if got := Diff(a, a); len(got) != 0 {
		t.Fatalf("self-diff = %+v, want empty", got)
	}
}

func TestDiffCounters(t *testing.T) {
	a := sampleManifest(1, 0.9)
	b := sampleManifest(1, 0.9)
	b.Figures.Counters["sim.ticks"] += 5
	delete(b.Figures.Counters, "core.captures")
	changes := Diff(a, b)
	var fields []string
	for _, c := range changes {
		fields = append(fields, c.Field)
	}
	want := []string{"counters.core.captures", "counters.sim.ticks"}
	if strings.Join(fields, ",") != strings.Join(want, ",") {
		t.Fatalf("diff fields = %v, want %v", fields, want)
	}
}

func TestRoundSig(t *testing.T) {
	// Values differing past the 9th significant digit collapse; values
	// differing within it stay apart.
	if roundSig(28.571428501) != roundSig(28.571428502) {
		t.Fatal("last-bit noise survived rounding")
	}
	if roundSig(28.5714285) == roundSig(28.5714286) {
		t.Fatal("meaningful difference lost to rounding")
	}
	for _, v := range []float64{0, -1.25e-9, 3.7e12} {
		if got := roundSig(v); got != v {
			t.Fatalf("roundSig(%g) = %g", v, got)
		}
	}
}
