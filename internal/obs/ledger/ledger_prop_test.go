package ledger_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/obs/ledger"
)

// genManifest builds random manifests with finite figures (canonical
// JSON cannot carry NaN/Inf) plus wall-clock-dependent counters, the
// full surface Canonicalize must scrub.
func genManifest() check.Gen[ledger.Manifest] {
	return check.Gen[ledger.Manifest]{
		Generate: func(r *rand.Rand, _ int) ledger.Manifest {
			f := func() float64 { return -1e6 + 2e6*r.Float64() }
			counters := map[string]int64{
				"sim.ticks":            r.Int63n(1 << 40),
				"sensor.samples":       r.Int63n(1 << 30),
				"attacker.walltime_ns": r.Int63(), // must be stripped
			}
			return ledger.Manifest{
				SchemaVersion: ledger.SchemaVersion,
				Tool:          "amperebleed",
				Command:       []string{"characterize", "covert", "leakassess"}[r.Intn(3)],
				Args:          []string{fmt.Sprintf("-levels=%d", r.Intn(30))},
				Board:         "zcu102",
				Seed:          r.Int63(),
				FaultProfile:  []string{"", "flaky-sysfs", "hostile"}[r.Intn(3)],
				Workers:       r.Intn(32),
				GoVersion:     fmt.Sprintf("go1.%d", 20+r.Intn(5)),
				StartedAt:     time.Unix(r.Int63n(1e9), 0),
				WallSeconds:   r.Float64() * 100,
				SimSeconds:    r.Float64() * 10,
				Figures: ledger.Figures{
					LeakageSNR:       f(),
					LeakageT:         f(),
					CovertBER:        r.Float64(),
					CovertBitsPerSec: f(),
					FingerprintTop1:  r.Float64(),
					FingerprintTop5:  r.Float64(),
					Counters:         counters,
				},
			}
		},
		Describe: func(m ledger.Manifest) string {
			return fmt.Sprintf("Manifest{cmd=%s seed=%d workers=%d}", m.Command, m.Seed, m.Workers)
		},
	}
}

// TestPropCanonicalizeIdempotent: canonicalizing twice is the same as
// once — Canonicalize is a projection, so re-reading a canonical
// manifest and canonicalizing again cannot change it.
func TestPropCanonicalizeIdempotent(t *testing.T) {
	check.Forall(t, genManifest(), func(c *check.T, m ledger.Manifest) {
		once, err := ledger.CanonicalJSON(m)
		if err != nil {
			c.Fatalf("CanonicalJSON: %v", err)
		}
		twice, err := ledger.CanonicalJSON(ledger.Canonicalize(m))
		if err != nil {
			c.Fatalf("CanonicalJSON(Canonicalize): %v", err)
		}
		if !bytes.Equal(once, twice) {
			c.Errorf("not idempotent:\n once %s\ntwice %s", once, twice)
		}
	})
}

// TestPropCanonicalizeStripsScheduling: two manifests of the same
// measurement that differ arbitrarily in scheduling metadata (args,
// workers, go version, start time, wall clock, walltime counters)
// canonicalize to byte-identical JSON.
func TestPropCanonicalizeStripsScheduling(t *testing.T) {
	check.Forall(t, genManifest(), func(c *check.T, m ledger.Manifest) {
		variant := m
		variant.Args = []string{"-totally", "-different"}
		variant.Workers = m.Workers + 13
		variant.GoVersion = "go9.99"
		variant.StartedAt = m.StartedAt.Add(87 * time.Hour)
		variant.WallSeconds = m.WallSeconds * 17
		variant.Figures.Counters = map[string]int64{}
		for k, v := range m.Figures.Counters {
			variant.Figures.Counters[k] = v
		}
		variant.Figures.Counters["attacker.walltime_ns"] = 424242

		a, err := ledger.CanonicalJSON(m)
		if err != nil {
			c.Fatalf("CanonicalJSON: %v", err)
		}
		b, err := ledger.CanonicalJSON(variant)
		if err != nil {
			c.Fatalf("CanonicalJSON(variant): %v", err)
		}
		if !bytes.Equal(a, b) {
			c.Errorf("scheduling metadata leaked into canonical form:\n%s\n%s", a, b)
		}
	})
}

// TestPropCanonicalizeAbsorbsAccumulationNoise: figures that differ
// only below the 9-significant-digit rounding floor — the
// accumulation-order noise scheduling introduces — canonicalize
// identically.
func TestPropCanonicalizeAbsorbsAccumulationNoise(t *testing.T) {
	check.Forall(t, genManifest(), func(c *check.T, m ledger.Manifest) {
		noisy := m
		jitter := func(v float64) float64 { return v * (1 + 1e-13) }
		noisy.SimSeconds = jitter(m.SimSeconds)
		noisy.Figures.LeakageSNR = jitter(m.Figures.LeakageSNR)
		noisy.Figures.CovertBitsPerSec = jitter(m.Figures.CovertBitsPerSec)

		a, err := ledger.CanonicalJSON(m)
		if err != nil {
			c.Fatalf("CanonicalJSON: %v", err)
		}
		b, err := ledger.CanonicalJSON(noisy)
		if err != nil {
			c.Fatalf("CanonicalJSON(noisy): %v", err)
		}
		if !bytes.Equal(a, b) {
			c.Errorf("sub-rounding-floor jitter changed the canonical form:\n%s\n%s", a, b)
		}
	})
}

// experiment is a randomized characterize configuration — the
// generalization of the fixed-seed workers-determinism test to
// arbitrary (seed, size, fault profile) points.
type experiment struct {
	seed    int64
	levels  int
	samples int
	preset  string
}

func genExperiment() check.Gen[experiment] {
	presets := []string{"none", "flaky-sysfs", "stale-sensor", "noisy-sched", "hostile"}
	return check.Gen[experiment]{
		Generate: func(r *rand.Rand, _ int) experiment {
			return experiment{
				seed:    1 + r.Int63n(1_000_000),
				levels:  3 + r.Intn(3),
				samples: 2 + r.Intn(4),
				preset:  presets[r.Intn(len(presets))],
			}
		},
		Describe: func(e experiment) string {
			return fmt.Sprintf("experiment{seed=%d levels=%d samples=%d faults=%s}", e.seed, e.levels, e.samples, e.preset)
		},
	}
}

// TestPropManifestDeterministicAcrossWorkers holds the package-doc
// promise for RANDOM experiments, not just the pinned seed: workers
// 1, 4, and 16 canonicalize to byte-identical manifests for any
// (seed, size, fault profile).
func TestPropManifestDeterministicAcrossWorkers(t *testing.T) {
	defer obs.Default.Reset()
	check.Forall(t, genExperiment(), func(c *check.T, e experiment) {
		profile, err := faults.Preset(e.preset)
		if err != nil {
			c.Fatalf("Preset(%s): %v", e.preset, err)
		}
		c.Classify(profile.Enabled(), "faulted")
		var want []byte
		wantErr := ""
		for _, workers := range []int{1, 4, 16} {
			obs.Default.Reset()
			_, runErr := core.Characterize(core.CharacterizeConfig{
				Seed:            e.seed,
				Levels:          e.levels,
				SamplesPerLevel: e.samples,
				Parallelism:     workers,
				Faults:          &profile,
			})
			if workers == 1 && runErr != nil {
				// A hostile profile can legitimately kill a tiny
				// experiment (every sample of a level lost). The
				// determinism contract still applies: every worker
				// count must fail the same way.
				c.Label("degenerate-experiment")
				wantErr = runErr.Error()
				continue
			}
			if wantErr != "" {
				if runErr == nil || runErr.Error() != wantErr {
					c.Fatalf("workers=%d error diverged:\n got %v\nwant %s", workers, runErr, wantErr)
				}
				continue
			}
			if runErr != nil {
				c.Fatalf("characterize (workers=%d): %v", workers, runErr)
			}
			m := ledger.New(ledger.RunInfo{
				Tool:         "amperebleed",
				Command:      "characterize",
				Board:        "zcu102",
				Seed:         e.seed,
				FaultProfile: e.preset,
				Workers:      workers,
				Started:      time.Now(),
			}, obs.Default.Snapshot())
			got, err := ledger.CanonicalJSON(m)
			if err != nil {
				c.Fatalf("CanonicalJSON: %v", err)
			}
			if want == nil {
				want = got
				continue
			}
			if !bytes.Equal(got, want) {
				c.Fatalf("workers=%d canonical manifest differs for %s:\n got %s\nwant %s",
					workers, e.preset, got, want)
			}
		}
	}, check.Iters(100))
}
