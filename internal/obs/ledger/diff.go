package ledger

import (
	"fmt"
	"sort"
)

// Change is one field that differs between two manifests.
type Change struct {
	// Field is a dotted path ("figures.fingerprint_top1",
	// "counters.sim.ticks").
	Field string
	// A and B are the rendered values on each side.
	A, B string
}

// Diff compares two manifests after canonicalization, so scheduling
// and wall-clock differences never show up — what remains is a change
// in what was run or in what it measured ("same seed and board,
// accuracy moved"). Changes come back sorted by field path.
func Diff(a, b Manifest) []Change {
	ca, cb := Canonicalize(a), Canonicalize(b)
	var out []Change
	str := func(field, va, vb string) {
		if va != vb {
			out = append(out, Change{Field: field, A: va, B: vb})
		}
	}
	num := func(field string, va, vb float64) {
		if va != vb {
			out = append(out, Change{Field: field, A: fmt.Sprintf("%g", va), B: fmt.Sprintf("%g", vb)})
		}
	}

	str("tool", ca.Tool, cb.Tool)
	str("command", ca.Command, cb.Command)
	str("board", ca.Board, cb.Board)
	str("fault_profile", ca.FaultProfile, cb.FaultProfile)
	num("fault_intensity", ca.FaultIntensity, cb.FaultIntensity)
	num("seed", float64(ca.Seed), float64(cb.Seed))
	num("schema_version", float64(ca.SchemaVersion), float64(cb.SchemaVersion))
	num("sim_seconds", ca.SimSeconds, cb.SimSeconds)

	fa, fb := ca.Figures, cb.Figures
	num("figures.leakage_snr", fa.LeakageSNR, fb.LeakageSNR)
	num("figures.leakage_tvla_t", fa.LeakageT, fb.LeakageT)
	num("figures.covert_ber", fa.CovertBER, fb.CovertBER)
	num("figures.covert_bits_per_sec", fa.CovertBitsPerSec, fb.CovertBitsPerSec)
	num("figures.fingerprint_top1", fa.FingerprintTop1, fb.FingerprintTop1)
	num("figures.fingerprint_top5", fa.FingerprintTop5, fb.FingerprintTop5)
	num("figures.sample_rate.count", float64(fa.SampleRate.Count), float64(fb.SampleRate.Count))
	num("figures.sample_rate.p50", fa.SampleRate.P50, fb.SampleRate.P50)
	num("figures.sample_rate.p95", fa.SampleRate.P95, fb.SampleRate.P95)

	keys := map[string]bool{}
	for k := range fa.Counters {
		keys[k] = true
	}
	for k := range fb.Counters {
		keys[k] = true
	}
	sortedKeys := make([]string, 0, len(keys))
	for k := range keys {
		sortedKeys = append(sortedKeys, k)
	}
	sort.Strings(sortedKeys)
	for _, k := range sortedKeys {
		va, okA := fa.Counters[k]
		vb, okB := fb.Counters[k]
		switch {
		case okA && !okB:
			out = append(out, Change{Field: "counters." + k, A: fmt.Sprintf("%d", va), B: "(absent)"})
		case !okA && okB:
			out = append(out, Change{Field: "counters." + k, A: "(absent)", B: fmt.Sprintf("%d", vb)})
		case va != vb:
			out = append(out, Change{Field: "counters." + k, A: fmt.Sprintf("%d", va), B: fmt.Sprintf("%d", vb)})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Field < out[j].Field })
	return out
}
