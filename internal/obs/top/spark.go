package top

// Sparklines: the dashboard's trend column. When the server (or the
// in-process registry) runs a history recorder, each panel gains a
// "hist" line — a block-rune sparkline of the recent windows plus a
// delta over the fetched span — so a stall or burst is visible as a
// shape, not just as the current number. Without history the lines are
// simply absent; the dashboard never fails because recording is off.

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/tsdb"
)

// sparkRunes are the eight block levels, lowest to highest.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Spark renders vals as a sparkline at most width runes wide (the most
// recent values win). Values are normalized to the slice's own min/max;
// a flat slice renders as all-low, and non-finite values render as
// spaces.
func Spark(vals []float64, width int) string {
	if width <= 0 || len(vals) == 0 {
		return ""
	}
	if len(vals) > width {
		vals = vals[len(vals)-width:]
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo > hi { // nothing finite
		return strings.Repeat(" ", len(vals))
	}
	var b strings.Builder
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			b.WriteRune(' ')
			continue
		}
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(sparkRunes) {
				idx = len(sparkRunes) - 1
			}
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// HistorySeries are the series the dashboard fetches for its hist
// lines: gap/sample counters for the sampling panel, SNR and BER gauges
// for the leakage and covert panels, shard progress for the shards
// panel.
var HistorySeries = []string{
	"core.sampler.samples",
	"core.sampler.gaps",
	"trace.samples_recorded",
	"trace.gaps_recorded",
	"leakage.snr",
	"covert.ber",
	"runner.shards",
}

// History is the per-series windowed view behind the hist lines:
// counters carry per-window increases, gauges per-window means, both
// oldest first.
type History struct {
	// WindowNS is the aggregate window width in nanoseconds.
	WindowNS int64
	// Counters maps counter series to per-window increases.
	Counters map[string][]float64
	// Gauges maps gauge series to per-window means.
	Gauges map[string][]float64
}

// Values returns the series' sparkline values (counter increases or
// gauge means), nil when the series is absent.
func (h *History) Values(name string) []float64 {
	if h == nil {
		return nil
	}
	if vs, ok := h.Counters[name]; ok {
		return vs
	}
	return h.Gauges[name]
}

// Delta returns the series' change over the fetched span: the summed
// increases for a counter, last mean minus first mean for a gauge.
func (h *History) Delta(name string) (float64, bool) {
	if h == nil {
		return 0, false
	}
	if vs, ok := h.Counters[name]; ok && len(vs) > 0 {
		sum := 0.0
		for _, v := range vs {
			sum += v
		}
		return sum, true
	}
	if vs, ok := h.Gauges[name]; ok && len(vs) > 0 {
		return vs[len(vs)-1] - vs[0], true
	}
	return 0, false
}

// addSeries folds one series' windows into the history.
func (h *History) addSeries(name, kind string, ws []tsdb.Window) {
	switch kind {
	case "counter":
		vals := make([]float64, 0, len(ws))
		prev := math.NaN()
		for _, w := range ws {
			d := w.Last - prev
			if math.IsNaN(prev) {
				d = w.Last - w.First
			}
			if d < 0 {
				d = 0
			}
			prev = w.Last
			vals = append(vals, d)
		}
		if len(vals) > 0 {
			h.Counters[name] = vals
		}
	case "gauge":
		vals := make([]float64, 0, len(ws))
		for _, w := range ws {
			vals = append(vals, w.Mean)
		}
		if len(vals) > 0 {
			h.Gauges[name] = vals
		}
	}
}

// HistoryFromResponse converts a /metrics/range window-mode response
// into the dashboard's History.
func HistoryFromResponse(resp obs.RangeResponse) *History {
	h := &History{WindowNS: resp.WindowNS, Counters: map[string][]float64{}, Gauges: map[string][]float64{}}
	for _, sr := range resp.Series {
		h.addSeries(sr.Name, sr.Kind, sr.Windows)
	}
	return h
}

// HistoryFromRecorder builds the History straight from an in-process
// recorder (top's self-contained demo and -once modes), mirroring what
// FetchHistory gets over HTTP.
func HistoryFromRecorder(rec *obs.Recorder, series []string, window, last time.Duration) *History {
	if rec == nil {
		return nil
	}
	if window <= 0 {
		window = 10 * rec.Interval()
	}
	to := rec.Now()
	from := to - int64(last)
	if last <= 0 {
		from = math.MinInt64
	}
	h := &History{WindowNS: int64(window), Counters: map[string][]float64{}, Gauges: map[string][]float64{}}
	for _, name := range series {
		kind, ok := rec.Store().Kind(name)
		if !ok {
			continue
		}
		h.addSeries(name, kind.String(), rec.Store().Windows(name, int64(window), from, to))
	}
	return h
}

// histLine renders one panel's hist line: "name ▁▂▃ Δ+n" segments for
// each series present in the history. Empty when none are.
func histLine(h *History, width int, segments ...[2]string) string {
	if h == nil {
		return ""
	}
	var parts []string
	for _, seg := range segments {
		label, series := seg[0], seg[1]
		vals := h.Values(series)
		if len(vals) == 0 {
			continue
		}
		d, _ := h.Delta(series)
		parts = append(parts, fmt.Sprintf("%s %s Δ%+.4g", label, Spark(vals, width), d))
	}
	if len(parts) == 0 {
		return ""
	}
	return "  hist     " + strings.Join(parts, "   ")
}
