package top

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// demoSnapshot fabricates a snapshot with every metric the five panel
// groups read.
func demoSnapshot(at time.Time) obs.Snapshot {
	return obs.Snapshot{
		TakenAt: at,
		Counters: map[string]int64{
			"sim.ticks":                    123456,
			"core.sampler.samples":         900,
			"core.sampler.gaps":            12,
			"core.sampler.retries":         30,
			"core.sampler.reresolves":      2,
			"trace.samples_recorded":       5000,
			"trace.gaps_recorded":          40,
			"faults.injected.sysfs_eagain": 17,
			"faults.injected.stale_latch":  8,
			"faults.injected.bitflip":      1,
			"runner.shards":                39,
			"runner.shards_failed":         1,
			"runner.shards_panicked":       0,
			"obs.stream.dropped_frames":    3,
		},
		Gauges: map[string]float64{
			"leakage.snr":                   14.2,
			"leakage.tvla_t":                87.3,
			"covert.ber":                    0.0156,
			"covert.bits_per_sec":           27.9,
			"runner.workers":                4,
			"runner.utilization":            0.82,
			"core.sampler.consecutive_gaps": 2,
		},
		Histograms: map[string]obs.HistogramStat{
			"attacker.sample_rate_hz": {Count: 500, Mean: 27.9, Min: 19, Max: 28.6, P50: 28.1, P95: 28.5, P99: 28.6},
			"runner.shard_ns":         {Count: 39, Mean: 2.1e9, Min: 1e9, Max: 4e9, P50: 2e9, P95: 3.5e9, P99: 3.9e9},
		},
		Events: []obs.Event{{At: at, Msg: "runner: fingerprint: 39 shards done"}},
	}
}

func TestFrameRendersAllPanelGroups(t *testing.T) {
	at := time.Date(2026, 8, 8, 12, 0, 1, 0, time.UTC)
	lines := Frame(demoSnapshot(at), nil, Options{Source: "test"})
	joined := strings.Join(lines, "\n")
	for _, want := range []string{
		"sampling", "leakage", "covert", "faults", "shards", // the five panel groups
		"p50    28.1 Hz", // sample-rate percentiles
		"TVLA t", "+87.3", "LEAKS",
		"0.0156",              // covert BER
		"sysfs_eagain",        // fault kind
		"failed 1",            // shard failures
		"stream drops 3",      // SSE drop counter
		"runner: fingerprint", // event tail
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("frame lacks %q:\n%s", want, joined)
		}
	}
	// No ANSI codes in the raw frame: -once prints it verbatim.
	if strings.Contains(joined, "\x1b") {
		t.Fatal("Frame emitted ANSI escapes")
	}
}

func TestFrameDeltaThroughput(t *testing.T) {
	at := time.Date(2026, 8, 8, 12, 0, 1, 0, time.UTC)
	prev := demoSnapshot(at)
	cur := demoSnapshot(at.Add(time.Second))
	cur.Counters["core.sampler.samples"] += 250
	joined := strings.Join(Frame(cur, &prev, Options{}), "\n")
	if !strings.Contains(joined, "throughput 250 samples/s") {
		t.Fatalf("delta throughput missing:\n%s", joined)
	}
}

func TestGroupInt(t *testing.T) {
	for in, want := range map[int64]string{
		0: "0", 7: "7", 999: "999", 1000: "1,000",
		1234567: "1,234,567", -1234: "-1,234",
	} {
		if got := groupInt(in); got != want {
			t.Errorf("groupInt(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestBar(t *testing.T) {
	if got := bar(0.5, 10); got != "[█████·····]" {
		t.Errorf("bar(0.5) = %q", got)
	}
	if got := bar(-1, 4); got != "[····]" {
		t.Errorf("bar(-1) = %q", got)
	}
	if got := bar(2, 4); got != "[████]" {
		t.Errorf("bar(2) = %q", got)
	}
}

func TestScreenRedrawIsIncremental(t *testing.T) {
	var buf strings.Builder
	sc := NewScreen(&buf)
	sc.Draw([]string{"one", "two"})
	first := buf.String()
	if !strings.Contains(first, "\x1b[2J") {
		t.Fatal("first frame did not clear the screen")
	}
	buf.Reset()
	sc.Draw([]string{"one"})
	second := buf.String()
	if strings.Contains(second, "\x1b[2J") {
		t.Fatal("second frame cleared the whole screen (flicker)")
	}
	for _, want := range []string{"\x1b[H", "\x1b[K", "\x1b[J"} {
		if !strings.Contains(second, want) {
			t.Fatalf("second frame lacks %q: %q", want, second)
		}
	}
	sc.Close()
	if !strings.Contains(buf.String(), "\x1b[?25h") {
		t.Fatal("Close did not restore the cursor")
	}
}

func TestStreamClient(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("sim.ticks").Add(11)
	srv := httptest.NewServer(obs.NewHandler(r))
	defer srv.Close()

	errStop := errors.New("stop after first frame")
	var got obs.Snapshot
	err := Stream(context.Background(), srv.URL, 60*time.Millisecond, func(s obs.Snapshot) error {
		got = s
		return errStop
	})
	if !errors.Is(err, errStop) {
		t.Fatalf("Stream returned %v, want the callback's error", err)
	}
	if got.Counter("sim.ticks") != 11 {
		t.Fatalf("streamed sim.ticks = %d", got.Counter("sim.ticks"))
	}
}

func TestStreamClientCancel(t *testing.T) {
	r := obs.NewRegistry()
	srv := httptest.NewServer(obs.NewHandler(r))
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	frames := 0
	done := make(chan error, 1)
	go func() {
		done <- Stream(ctx, srv.URL, 60*time.Millisecond, func(obs.Snapshot) error {
			frames++
			cancel()
			return nil
		})
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Stream returned %v after cancel", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Stream did not stop on cancel")
	}
	if frames == 0 {
		t.Fatal("no frames before cancel")
	}
}

func TestFetchSnapshot(t *testing.T) {
	r := obs.NewRegistry()
	r.Gauge("covert.ber").Set(0.25)
	srv := httptest.NewServer(obs.NewHandler(r))
	defer srv.Close()
	snap, err := FetchSnapshot(context.Background(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Gauge("covert.ber") != 0.25 {
		t.Fatalf("fetched covert.ber = %v", snap.Gauge("covert.ber"))
	}
}
