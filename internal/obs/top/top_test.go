package top

import (
	"context"
	"errors"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/tsdb"
)

// demoSnapshot fabricates a snapshot with every metric the five panel
// groups read.
func demoSnapshot(at time.Time) obs.Snapshot {
	return obs.Snapshot{
		TakenAt: at,
		Counters: map[string]int64{
			"sim.ticks":                    123456,
			"core.sampler.samples":         900,
			"core.sampler.gaps":            12,
			"core.sampler.retries":         30,
			"core.sampler.reresolves":      2,
			"trace.samples_recorded":       5000,
			"trace.gaps_recorded":          40,
			"faults.injected.sysfs_eagain": 17,
			"faults.injected.stale_latch":  8,
			"faults.injected.bitflip":      1,
			"runner.shards":                39,
			"runner.shards_failed":         1,
			"runner.shards_panicked":       0,
			"obs.stream.dropped_frames":    3,
		},
		Gauges: map[string]float64{
			"leakage.snr":                   14.2,
			"leakage.tvla_t":                87.3,
			"covert.ber":                    0.0156,
			"covert.bits_per_sec":           27.9,
			"runner.workers":                4,
			"runner.utilization":            0.82,
			"core.sampler.consecutive_gaps": 2,
		},
		Histograms: map[string]obs.HistogramStat{
			"attacker.sample_rate_hz": {Count: 500, Mean: 27.9, Min: 19, Max: 28.6, P50: 28.1, P95: 28.5, P99: 28.6},
			"runner.shard_ns":         {Count: 39, Mean: 2.1e9, Min: 1e9, Max: 4e9, P50: 2e9, P95: 3.5e9, P99: 3.9e9},
		},
		Events: []obs.Event{{At: at, Msg: "runner: fingerprint: 39 shards done"}},
	}
}

func TestFrameRendersAllPanelGroups(t *testing.T) {
	at := time.Date(2026, 8, 8, 12, 0, 1, 0, time.UTC)
	lines := Frame(demoSnapshot(at), nil, Options{Source: "test"})
	joined := strings.Join(lines, "\n")
	for _, want := range []string{
		"sampling", "leakage", "covert", "faults", "shards", // the five panel groups
		"p50    28.1 Hz", // sample-rate percentiles
		"TVLA t", "+87.3", "LEAKS",
		"0.0156",              // covert BER
		"sysfs_eagain",        // fault kind
		"failed 1",            // shard failures
		"stream drops 3",      // SSE drop counter
		"runner: fingerprint", // event tail
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("frame lacks %q:\n%s", want, joined)
		}
	}
	// No ANSI codes in the raw frame: -once prints it verbatim.
	if strings.Contains(joined, "\x1b") {
		t.Fatal("Frame emitted ANSI escapes")
	}
}

func TestFrameDeltaThroughput(t *testing.T) {
	at := time.Date(2026, 8, 8, 12, 0, 1, 0, time.UTC)
	prev := demoSnapshot(at)
	cur := demoSnapshot(at.Add(time.Second))
	cur.Counters["core.sampler.samples"] += 250
	joined := strings.Join(Frame(cur, &prev, Options{}), "\n")
	if !strings.Contains(joined, "throughput 250 samples/s") {
		t.Fatalf("delta throughput missing:\n%s", joined)
	}
}

func TestGroupInt(t *testing.T) {
	for in, want := range map[int64]string{
		0: "0", 7: "7", 999: "999", 1000: "1,000",
		1234567: "1,234,567", -1234: "-1,234",
	} {
		if got := groupInt(in); got != want {
			t.Errorf("groupInt(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestBar(t *testing.T) {
	if got := bar(0.5, 10); got != "[█████·····]" {
		t.Errorf("bar(0.5) = %q", got)
	}
	if got := bar(-1, 4); got != "[····]" {
		t.Errorf("bar(-1) = %q", got)
	}
	if got := bar(2, 4); got != "[████]" {
		t.Errorf("bar(2) = %q", got)
	}
}

func TestScreenRedrawIsIncremental(t *testing.T) {
	var buf strings.Builder
	sc := NewScreen(&buf)
	sc.Draw([]string{"one", "two"})
	first := buf.String()
	if !strings.Contains(first, "\x1b[2J") {
		t.Fatal("first frame did not clear the screen")
	}
	buf.Reset()
	sc.Draw([]string{"one"})
	second := buf.String()
	if strings.Contains(second, "\x1b[2J") {
		t.Fatal("second frame cleared the whole screen (flicker)")
	}
	for _, want := range []string{"\x1b[H", "\x1b[K", "\x1b[J"} {
		if !strings.Contains(second, want) {
			t.Fatalf("second frame lacks %q: %q", want, second)
		}
	}
	sc.Close()
	if !strings.Contains(buf.String(), "\x1b[?25h") {
		t.Fatal("Close did not restore the cursor")
	}
}

func TestStreamClient(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("sim.ticks").Add(11)
	srv := httptest.NewServer(obs.NewHandler(r))
	defer srv.Close()

	errStop := errors.New("stop after first frame")
	var got obs.Snapshot
	err := Stream(context.Background(), srv.URL, 60*time.Millisecond, func(s obs.Snapshot) error {
		got = s
		return errStop
	})
	if !errors.Is(err, errStop) {
		t.Fatalf("Stream returned %v, want the callback's error", err)
	}
	if got.Counter("sim.ticks") != 11 {
		t.Fatalf("streamed sim.ticks = %d", got.Counter("sim.ticks"))
	}
}

func TestStreamClientCancel(t *testing.T) {
	r := obs.NewRegistry()
	srv := httptest.NewServer(obs.NewHandler(r))
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	frames := 0
	done := make(chan error, 1)
	go func() {
		done <- Stream(ctx, srv.URL, 60*time.Millisecond, func(obs.Snapshot) error {
			frames++
			cancel()
			return nil
		})
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Stream returned %v after cancel", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Stream did not stop on cancel")
	}
	if frames == 0 {
		t.Fatal("no frames before cancel")
	}
}

func TestFetchSnapshot(t *testing.T) {
	r := obs.NewRegistry()
	r.Gauge("covert.ber").Set(0.25)
	srv := httptest.NewServer(obs.NewHandler(r))
	defer srv.Close()
	snap, err := FetchSnapshot(context.Background(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Gauge("covert.ber") != 0.25 {
		t.Fatalf("fetched covert.ber = %v", snap.Gauge("covert.ber"))
	}
}

func TestSpark(t *testing.T) {
	if got := Spark([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8); got != "▁▂▃▄▅▆▇█" {
		t.Fatalf("ramp = %q", got)
	}
	// Flat series renders all-low, not all-high.
	if got := Spark([]float64{5, 5, 5}, 8); got != "▁▁▁" {
		t.Fatalf("flat = %q", got)
	}
	// Width clips to the most recent values.
	if got := Spark([]float64{9, 9, 9, 0, 8}, 2); got != "▁█" {
		t.Fatalf("clipped = %q", got)
	}
	if got := Spark(nil, 8); got != "" {
		t.Fatalf("empty = %q", got)
	}
}

// demoHistory builds a history with a gap burst and an SNR drift.
func demoHistory() *History {
	return &History{
		WindowNS: int64(10 * time.Second),
		Counters: map[string][]float64{
			"core.sampler.samples": {100, 100, 100, 100},
			"core.sampler.gaps":    {0, 1, 30, 2},
			"runner.shards":        {4, 4, 4, 4},
		},
		Gauges: map[string][]float64{
			"leakage.snr": {10, 11, 12, 14.2},
			"covert.ber":  {0.01, 0.02, 0.015, 0.0156},
		},
	}
}

func TestHistoryDelta(t *testing.T) {
	h := demoHistory()
	if d, ok := h.Delta("core.sampler.gaps"); !ok || d != 33 {
		t.Fatalf("counter delta = %g ok=%v", d, ok)
	}
	if d, ok := h.Delta("leakage.snr"); !ok || math.Abs(d-4.2) > 1e-9 {
		t.Fatalf("gauge delta = %g ok=%v", d, ok)
	}
	if _, ok := h.Delta("no.such"); ok {
		t.Fatal("missing series produced a delta")
	}
	var nilH *History
	if _, ok := nilH.Delta("x"); ok {
		t.Fatal("nil history produced a delta")
	}
}

func TestFrameHistLines(t *testing.T) {
	at := time.Date(2026, 8, 8, 12, 0, 1, 0, time.UTC)
	lines := Frame(demoSnapshot(at), nil, Options{Source: "test", History: demoHistory()})
	joined := strings.Join(lines, "\n")
	histLines := 0
	for _, l := range lines {
		if strings.HasPrefix(l, "  hist ") {
			histLines++
		}
	}
	if histLines != 4 {
		t.Fatalf("hist lines = %d, want 4 (sampling, leakage, covert, shards):\n%s", histLines, joined)
	}
	for _, want := range []string{"Δ+33", "Δ+4.2", "▁", "█"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("frame missing %q:\n%s", want, joined)
		}
	}
	// Without history the frame is unchanged: no hist lines at all.
	for _, l := range Frame(demoSnapshot(at), nil, Options{Source: "test"}) {
		if strings.Contains(l, "hist") {
			t.Fatalf("historyless frame has hist line %q", l)
		}
	}
}

func TestHistoryFromResponse(t *testing.T) {
	resp := obs.RangeResponse{
		Clock: "wall", IntervalNS: int64(time.Second), WindowNS: int64(10 * time.Second),
		Series: []obs.SeriesRange{
			{Name: "c", Kind: "counter", Windows: []tsdb.Window{
				{Start: 0, End: 1, First: 0, Last: 10},
				{Start: 1, End: 2, First: 12, Last: 25},
			}},
			{Name: "g", Kind: "gauge", Windows: []tsdb.Window{{Start: 0, End: 1, Mean: 3.5}}},
			{Name: "m", Kind: "missing"},
		},
	}
	h := HistoryFromResponse(resp)
	if vs := h.Values("c"); len(vs) != 2 || vs[0] != 10 || vs[1] != 15 {
		t.Fatalf("counter increases = %v", vs)
	}
	if vs := h.Values("g"); len(vs) != 1 || vs[0] != 3.5 {
		t.Fatalf("gauge means = %v", vs)
	}
	if vs := h.Values("m"); vs != nil {
		t.Fatalf("missing series values = %v", vs)
	}
}

func TestFetchHistory(t *testing.T) {
	r := obs.NewRegistry()
	srv := httptest.NewServer(obs.NewHandler(r))
	defer srv.Close()
	// No recorder: ErrHistoryDisabled, which the dashboard tolerates.
	_, err := FetchHistory(context.Background(), srv.URL, HistorySeries, 10*time.Second, 0)
	if !errors.Is(err, ErrHistoryDisabled) {
		t.Fatalf("err = %v, want ErrHistoryDisabled", err)
	}
}
