package top

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/obs"
)

// Stream connects to baseURL's /metrics/stream SSE endpoint and invokes
// fn for every metrics frame until ctx is cancelled, the server closes
// the stream, or fn returns an error (which Stream returns verbatim).
// Frames that fail to decode are skipped — a live dashboard should ride
// out one mangled frame, not die on it.
func Stream(ctx context.Context, baseURL string, interval time.Duration, fn func(obs.Snapshot) error) error {
	u := strings.TrimRight(baseURL, "/") + "/metrics/stream"
	if interval > 0 {
		u += fmt.Sprintf("?interval=%s", interval)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("top: %s: %s: %s", u, resp.Status, strings.TrimSpace(string(body)))
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var data strings.Builder
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			// Blank line dispatches the accumulated event.
			if data.Len() > 0 {
				var snap obs.Snapshot
				if err := json.Unmarshal([]byte(data.String()), &snap); err == nil {
					if err := fn(snap); err != nil {
						return err
					}
				}
				data.Reset()
			}
		case strings.HasPrefix(line, "data:"):
			data.WriteString(strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " "))
		default:
			// id:, event:, retry:, and ":" comments need no handling — the
			// stream carries a single event type and is not replayable.
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return sc.Err()
}

// ErrHistoryDisabled reports that the server is not running a history
// recorder: /metrics/range answered 501. The dashboard treats it as
// "render without hist lines", not as a failure.
var ErrHistoryDisabled = errors.New("top: metrics history disabled on server (run with -history)")

// FetchHistory pulls windowed history for the given series from
// baseURL's /metrics/range endpoint. window <= 0 lets the server
// choose nothing — callers pass the width they will render. last <= 0
// fetches the full retention.
func FetchHistory(ctx context.Context, baseURL string, series []string, window, last time.Duration) (*History, error) {
	q := url.Values{}
	q.Set("series", strings.Join(series, ","))
	if window > 0 {
		q.Set("window", window.String())
	}
	if last > 0 {
		q.Set("last", last.String())
	}
	u := strings.TrimRight(baseURL, "/") + "/metrics/range?" + q.Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotImplemented:
		return nil, ErrHistoryDisabled
	case http.StatusNotFound:
		// None of the requested series recorded yet (early in a run):
		// an empty history, not an error.
		return &History{Counters: map[string][]float64{}, Gauges: map[string][]float64{}}, nil
	default:
		return nil, fmt.Errorf("top: %s: %s", u, resp.Status)
	}
	var rr obs.RangeResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return nil, fmt.Errorf("top: decoding %s: %w", u, err)
	}
	return HistoryFromResponse(rr), nil
}

// FetchSnapshot pulls one snapshot from baseURL's /metrics/snapshot
// endpoint, for -once mode against a remote server.
func FetchSnapshot(ctx context.Context, baseURL string) (obs.Snapshot, error) {
	var snap obs.Snapshot
	u := strings.TrimRight(baseURL, "/") + "/metrics/snapshot"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return snap, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("top: %s: %s", u, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return snap, fmt.Errorf("top: decoding %s: %w", u, err)
	}
	return snap, nil
}
