// Package top renders the `amperebleed top` live terminal dashboard: a
// flicker-free ANSI view of the attack pipeline's health, fed either by
// the SSE /metrics/stream endpoint of a running -obs-addr server or by
// an in-process registry subscription.
//
// The dashboard shows the five quantities a running attack stands or
// falls on, one panel group each:
//
//	sampling  achieved sample-rate percentiles and the resilient
//	          sampler's absorb counters (retries, gaps, re-resolves)
//	leakage   TVLA t statistic and SNR of the last assessment
//	covert    bit-error rate and throughput of the last transmission
//	faults    injected-fault counters by kind
//	shards    runner campaign progress, failures, utilization
//
// Everything is plain stdlib: rendering is string assembly, and the
// flicker-free redraw is cursor-home plus clear-to-end-of-line per
// line rather than a full-screen clear, so an unchanged line never
// blanks between frames.
package top

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

// Options configures a render.
type Options struct {
	// Source labels the header (an URL or "in-process").
	Source string
	// Width is the panel width in columns (default 72).
	Width int
	// History, when non-nil, adds per-panel sparkline "hist" lines from
	// the recorded metrics history (FetchHistory / HistoryFromRecorder).
	// Nil renders the historyless dashboard unchanged.
	History *History
}

const defaultWidth = 72

// Frame renders one dashboard frame from a snapshot. prev, when
// non-nil, is the previous frame's snapshot and enables delta rates
// (samples/s between frames); the returned lines carry no ANSI codes —
// Screen adds cursor control, and -once mode prints them verbatim.
func Frame(s obs.Snapshot, prev *obs.Snapshot, opt Options) []string {
	w := opt.Width
	if w <= 0 {
		w = defaultWidth
	}
	src := opt.Source
	if src == "" {
		src = "in-process"
	}
	var ln []string
	add := func(format string, args ...any) { ln = append(ln, fmt.Sprintf(format, args...)) }
	rule := func(title string) {
		pad := w - len(title) - 4
		if pad < 0 {
			pad = 0
		}
		add("── %s %s", title, strings.Repeat("─", pad))
	}
	// hist emits a sparkline line when the history covers the series;
	// sparkWidth keeps two segments inside the panel width.
	sparkWidth := (w - 40) / 2
	if sparkWidth < 8 {
		sparkWidth = 8
	}
	hist := func(segments ...[2]string) {
		if l := histLine(opt.History, sparkWidth, segments...); l != "" {
			ln = append(ln, l)
		}
	}

	add("amperebleed top · %s · %s", src, s.TakenAt.Format("15:04:05.000"))
	add("sim ticks %s · events %d · stream drops %d",
		groupInt(s.Counter("sim.ticks")), len(s.Events),
		s.Counter("obs.stream.dropped_frames"))

	// sampling
	rule("sampling")
	if h, ok := s.Histogram("attacker.sample_rate_hz"); ok && h.Count > 0 {
		add("  rate     p50 %7.1f Hz   p95 %7.1f Hz   p99 %7.1f Hz   (n=%d)",
			h.P50, h.P95, h.P99, h.Count)
		add("  rate     mean %6.1f Hz   min %7.1f Hz   max %7.1f Hz", h.Mean, h.Min, h.Max)
	} else {
		add("  rate     (no samples yet)")
	}
	samples := s.Counter("core.sampler.samples") + s.Counter("trace.samples_recorded")
	gaps := s.Counter("core.sampler.gaps") + s.Counter("trace.gaps_recorded")
	add("  samples  %-12s gaps %-10s retries %-8s reresolves %s",
		groupInt(samples), groupInt(gaps),
		groupInt(s.Counter("core.sampler.retries")),
		groupInt(s.Counter("core.sampler.reresolves")))
	line := fmt.Sprintf("  consec gaps %.0f", s.Gauge("core.sampler.consecutive_gaps"))
	if prev != nil {
		if dt := s.TakenAt.Sub(prev.TakenAt).Seconds(); dt > 0 {
			prevSamples := prev.Counter("core.sampler.samples") + prev.Counter("trace.samples_recorded")
			line += fmt.Sprintf("   throughput %.0f samples/s", float64(samples-prevSamples)/dt)
		}
	}
	ln = append(ln, line)
	hist([2]string{"samples", "core.sampler.samples"}, [2]string{"gaps", "core.sampler.gaps"})
	hist([2]string{"trace", "trace.samples_recorded"}, [2]string{"gaps", "trace.gaps_recorded"})

	// leakage
	rule("leakage")
	t := s.Gauge("leakage.tvla_t")
	verdict := "no leak evidence"
	if t > 4.5 || t < -4.5 {
		verdict = "LEAKS (|t| > 4.5)"
	}
	add("  TVLA t   %+8.1f   %s", t, verdict)
	add("  SNR      %8.2f", s.Gauge("leakage.snr"))
	hist([2]string{"snr", "leakage.snr"})

	// covert
	rule("covert")
	add("  BER      %8.4f   throughput %8.1f bit/s",
		s.Gauge("covert.ber"), s.Gauge("covert.bits_per_sec"))
	hist([2]string{"ber", "covert.ber"})

	// faults
	rule("faults")
	total := int64(0)
	var kinds []string
	for name := range s.Counters {
		if strings.HasPrefix(name, "faults.injected.") {
			kinds = append(kinds, name)
			total += s.Counters[name]
		}
	}
	sort.Strings(kinds)
	add("  injected %s total", groupInt(total))
	for i := 0; i+1 < len(kinds); i += 2 {
		add("  %-34s %-10s %-22s %s",
			strings.TrimPrefix(kinds[i], "faults.injected."), groupInt(s.Counters[kinds[i]]),
			strings.TrimPrefix(kinds[i+1], "faults.injected."), groupInt(s.Counters[kinds[i+1]]))
	}
	if len(kinds)%2 == 1 {
		k := kinds[len(kinds)-1]
		add("  %-34s %s", strings.TrimPrefix(k, "faults.injected."), groupInt(s.Counters[k]))
	}

	// shards
	rule("shards")
	add("  done     %-10s failed %-8s panicked %-8s workers %.0f",
		groupInt(s.Counter("runner.shards")),
		groupInt(s.Counter("runner.shards_failed")),
		groupInt(s.Counter("runner.shards_panicked")),
		s.Gauge("runner.workers"))
	util := s.Gauge("runner.utilization")
	add("  util     %5.1f%%  %s", 100*util, bar(util, 40))
	if h, ok := s.Histogram("runner.shard_ns"); ok && h.Count > 0 {
		add("  latency  p50 %-12v p95 %-12v max %v",
			time.Duration(h.P50).Round(time.Millisecond),
			time.Duration(h.P95).Round(time.Millisecond),
			time.Duration(h.Max).Round(time.Millisecond))
	}
	hist([2]string{"done", "runner.shards"})

	// recent events, newest last, at most three
	if n := len(s.Events); n > 0 {
		rule("events")
		lo := n - 3
		if lo < 0 {
			lo = 0
		}
		for _, e := range s.Events[lo:] {
			msg := e.Msg
			if max := w - 16; max > 0 && len(msg) > max {
				msg = msg[:max-1] + "…"
			}
			add("  %s  %s", e.At.Format("15:04:05.000"), msg)
		}
	}
	return ln
}

// bar renders a unit-interval value as a fixed-width meter.
func bar(v float64, width int) string {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	full := int(v*float64(width) + 0.5)
	return "[" + strings.Repeat("█", full) + strings.Repeat("·", width-full) + "]"
}

// groupInt formats n with thousands separators (1234567 -> "1,234,567").
func groupInt(n int64) string {
	s := fmt.Sprintf("%d", n)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		out = "-" + out
	}
	return out
}

// Screen is a flicker-free ANSI frame writer: the first frame clears
// the terminal, subsequent frames home the cursor and overwrite line by
// line, clearing to end-of-line so shrinking lines leave no residue.
type Screen struct {
	w         io.Writer
	started   bool
	lastLines int
}

// NewScreen returns a Screen writing to w.
func NewScreen(w io.Writer) *Screen { return &Screen{w: w} }

// Draw renders one frame.
func (sc *Screen) Draw(lines []string) {
	var b strings.Builder
	if !sc.started {
		b.WriteString("\x1b[2J\x1b[?25l") // clear once, hide cursor
		sc.started = true
	}
	b.WriteString("\x1b[H")
	for _, l := range lines {
		b.WriteString(l)
		b.WriteString("\x1b[K\n")
	}
	// Wipe leftover lines from a taller previous frame.
	if extra := sc.lastLines - len(lines); extra > 0 {
		b.WriteString("\x1b[J")
	}
	sc.lastLines = len(lines)
	_, _ = io.WriteString(sc.w, b.String())
}

// Close restores the cursor.
func (sc *Screen) Close() {
	if sc.started {
		_, _ = io.WriteString(sc.w, "\x1b[?25h")
	}
}
