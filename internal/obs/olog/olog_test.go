package olog

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
	"time"
)

// tickClock is an obs.SimClock returning a fixed simulated time.
type tickClock time.Duration

func (c tickClock) Now() time.Duration { return time.Duration(c) }

// reset restores the package's quiet default after a test.
func reset() {
	Disable()
	SetSimClock(nil)
	SetRunID("")
}

func TestQuietUntilSetup(t *testing.T) {
	defer reset()
	Disable()
	log := L("test")
	if log.Enabled(context.Background(), slog.LevelError) {
		t.Fatal("logger enabled without a backend")
	}
	log.Error("goes nowhere") // must not panic
	if Enabled(slog.LevelError) {
		t.Fatal("package Enabled without a backend")
	}
}

// TestHandleCreatedBeforeSetup is the dynamic-backend property: a
// package-level logger built before Setup must start emitting the
// moment Setup installs a backend.
func TestHandleCreatedBeforeSetup(t *testing.T) {
	defer reset()
	log := L("early.bird") // created while disabled
	var buf bytes.Buffer
	if err := Setup("info", "json", &buf); err != nil {
		t.Fatal(err)
	}
	log.Info("hatched", "worms", 3)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, buf.String())
	}
	if rec["component"] != "early.bird" || rec["msg"] != "hatched" || rec["worms"] != float64(3) {
		t.Fatalf("record = %v", rec)
	}
}

func TestCorrelationAttributes(t *testing.T) {
	defer reset()
	var buf bytes.Buffer
	if err := Setup("debug", "json", &buf); err != nil {
		t.Fatal(err)
	}
	SetRunID("covert-123-456")
	SetSimClock(tickClock(1500 * time.Millisecond))
	ctx := WithSpan(context.Background(), "covert.transmit")

	L("core.sampler").DebugContext(ctx, "sample lost", "cause", "dropout")

	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, buf.String())
	}
	if rec["run"] != "covert-123-456" {
		t.Fatalf("run = %v", rec["run"])
	}
	if rec["span"] != "covert.transmit" {
		t.Fatalf("span = %v", rec["span"])
	}
	// slog.Duration renders as nanoseconds in the JSON handler.
	if rec["sim"] != float64(1500*time.Millisecond) {
		t.Fatalf("sim = %v", rec["sim"])
	}
	if rec["component"] != "core.sampler" {
		t.Fatalf("component = %v", rec["component"])
	}
}

func TestLevelFiltering(t *testing.T) {
	defer reset()
	var buf bytes.Buffer
	if err := Setup("warn", "text", &buf); err != nil {
		t.Fatal(err)
	}
	log := L("lvl")
	log.Debug("hidden")
	log.Info("hidden too")
	log.Warn("visible")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Fatalf("sub-threshold records emitted:\n%s", out)
	}
	if !strings.Contains(out, "visible") {
		t.Fatalf("warn record missing:\n%s", out)
	}
	// SetLevel widens the filter without replacing the backend.
	SetLevel(slog.LevelDebug)
	log.Debug("now visible")
	if !strings.Contains(buf.String(), "now visible") {
		t.Fatal("SetLevel did not take effect")
	}
}

func TestSetupRejectsUnknown(t *testing.T) {
	defer reset()
	var buf bytes.Buffer
	if err := Setup("loud", "text", &buf); err == nil {
		t.Fatal("unknown level accepted")
	}
	if err := Setup("info", "xml", &buf); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestWithGroupPrefixesKeys(t *testing.T) {
	defer reset()
	var buf bytes.Buffer
	if err := Setup("info", "json", &buf); err != nil {
		t.Fatal(err)
	}
	L("g").WithGroup("shard").With("key", "fp/0").Info("done")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, buf.String())
	}
	if rec["shard.key"] != "fp/0" {
		t.Fatalf("grouped attr = %v (record %v)", rec["shard.key"], rec)
	}
}

func TestSpanFromContext(t *testing.T) {
	if got := SpanFromContext(nil); got != "" {
		t.Fatalf("nil context span = %q", got)
	}
	if got := SpanFromContext(context.Background()); got != "" {
		t.Fatalf("bare context span = %q", got)
	}
	ctx := WithSpan(context.Background(), "x")
	if got := SpanFromContext(ctx); got != "x" {
		t.Fatalf("span = %q", got)
	}
}
