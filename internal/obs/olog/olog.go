// Package olog is the repository's structured logging facade, a thin
// correlation layer over log/slog. The attack pipeline's interesting
// events — a sample lost to retry exhaustion, a shard panic, a health
// rule firing — were previously either silent or buried in the bounded
// obs event ring; olog gives them leveled, machine-parseable output
// that a log pipeline can join against the run ledger and trace
// timeline, because every record automatically carries:
//
//   - run: the run ID the CLI stamps at startup (SetRunID), the same
//     identity the ledger manifest records;
//   - sim: the simulated-time timestamp when a sim clock is attached
//     (SetSimClock), so log lines line up with the trace timeline's
//     sim-clock track rather than only wall time;
//   - span: the enclosing span name when the caller threaded one
//     through the context (WithSpan).
//
// The facade is quiet by default: until Setup installs a backend,
// loggers discard everything at zero formatting cost, so library tests
// and embedders see no output. Handles are dynamic — a package-level
// `var log = olog.L("core.sampler")` created before Setup starts
// emitting the moment Setup runs.
package olog

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sync/atomic"

	"repro/internal/obs"
)

var (
	levelVar slog.LevelVar
	backend  atomic.Pointer[slog.Handler]
	simClock atomic.Pointer[obs.SimClock]
	runID    atomic.Pointer[string]
)

// Setup installs the process-wide backend. level is one of
// debug|info|warn|error; format is text (logfmt-style, human-first) or
// json (one object per line). Records below level are dropped at the
// Enabled check, before any attribute work.
func Setup(level, format string, w io.Writer) error {
	var l slog.Level
	switch level {
	case "debug":
		l = slog.LevelDebug
	case "info":
		l = slog.LevelInfo
	case "warn", "warning":
		l = slog.LevelWarn
	case "error":
		l = slog.LevelError
	default:
		return fmt.Errorf("olog: unknown level %q (want debug|info|warn|error)", level)
	}
	levelVar.Set(l)
	opts := &slog.HandlerOptions{Level: &levelVar}
	var h slog.Handler
	switch format {
	case "text", "":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return fmt.Errorf("olog: unknown format %q (want text|json)", format)
	}
	backend.Store(&h)
	return nil
}

// Disable removes the backend; loggers go back to discarding. Tests
// use it to restore the package default.
func Disable() { backend.Store(nil) }

// SetLevel adjusts the level without replacing the backend.
func SetLevel(l slog.Level) { levelVar.Set(l) }

// SetSimClock attaches the simulated clock whose current time is
// stamped on every record as the "sim" attribute. Pass nil to detach.
// Single-board commands attach their engine; sharded campaigns, where
// every shard owns an engine, leave it unset.
func SetSimClock(c obs.SimClock) {
	if c == nil {
		simClock.Store(nil)
		return
	}
	simClock.Store(&c)
}

// SetRunID stamps every subsequent record with a "run" attribute — the
// correlation key shared with the run ledger manifest.
func SetRunID(id string) { runID.Store(&id) }

// ctxKey carries the enclosing span name through a context.
type ctxKey struct{}

// WithSpan returns a context whose log records carry span=name,
// correlating them with the obs span of the same name.
func WithSpan(ctx context.Context, name string) context.Context {
	return context.WithValue(ctx, ctxKey{}, name)
}

// SpanFromContext returns the span name attached by WithSpan, or "".
func SpanFromContext(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	s, _ := ctx.Value(ctxKey{}).(string)
	return s
}

// handler is the dynamic handler behind every olog logger: it resolves
// the backend at Handle time and injects the correlation attributes.
type handler struct {
	attrs []slog.Attr
	group string
}

func (h *handler) Enabled(_ context.Context, level slog.Level) bool {
	return backend.Load() != nil && level >= levelVar.Level()
}

func (h *handler) Handle(ctx context.Context, rec slog.Record) error {
	bp := backend.Load()
	if bp == nil {
		return nil
	}
	out := rec.Clone()
	out.AddAttrs(h.attrs...)
	if p := runID.Load(); p != nil && *p != "" {
		out.AddAttrs(slog.String("run", *p))
	}
	if cp := simClock.Load(); cp != nil {
		out.AddAttrs(slog.Duration("sim", (*cp).Now()))
	}
	if span := SpanFromContext(ctx); span != "" {
		out.AddAttrs(slog.String("span", span))
	}
	return (*bp).Handle(ctx, out)
}

func (h *handler) WithAttrs(attrs []slog.Attr) slog.Handler {
	n := &handler{group: h.group, attrs: append([]slog.Attr(nil), h.attrs...)}
	for _, a := range attrs {
		if h.group != "" {
			a.Key = h.group + "." + a.Key
		}
		n.attrs = append(n.attrs, a)
	}
	return n
}

func (h *handler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	g := name
	if h.group != "" {
		g = h.group + "." + name
	}
	return &handler{group: g, attrs: append([]slog.Attr(nil), h.attrs...)}
}

// L returns the component's logger. The component name lands on every
// record as component=<name>; by convention it is the dotted metric
// prefix the package records under ("core.sampler", "runner", ...).
func L(component string) *slog.Logger {
	return slog.New(&handler{attrs: []slog.Attr{slog.String("component", component)}})
}

// Enabled reports whether records at the given level would be emitted;
// hot paths use it to skip building expensive attribute sets.
func Enabled(level slog.Level) bool {
	return backend.Load() != nil && level >= levelVar.Level()
}
