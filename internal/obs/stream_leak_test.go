package obs

// Goroutine-leak regression tests for the streaming layer: a closed
// subscription and a disconnected SSE client must both release their
// feed goroutine.

import (
	"bufio"
	"context"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

func waitNumGoroutine(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d, baseline %d\n%s", n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestSubscriptionCloseLeavesNoGoroutines(t *testing.T) {
	reg := NewRegistry()
	base := runtime.NumGoroutine()
	subs := make([]*Subscription, 8)
	for i := range subs {
		subs[i] = reg.Subscribe(time.Millisecond, 2)
	}
	// Let the feeds produce a few frames before tearing them down.
	time.Sleep(10 * time.Millisecond)
	for _, s := range subs {
		s.Close()
		s.Close() // idempotent
	}
	waitNumGoroutine(t, base)
	if got := reg.Gauge("obs.stream.subscribers").Value(); got != 0 {
		t.Errorf("subscriber gauge after close = %v, want 0", got)
	}
}

func TestStreamSSEDisconnectLeavesNoGoroutines(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("leaktest.ticks").Inc()
	srv := httptest.NewServer(NewHandler(reg))
	defer srv.Close()

	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", srv.URL+"/metrics/stream?interval=1ms", nil)
	if err != nil {
		t.Fatal(err)
	}
	// A private transport so lingering keepalive goroutines of other
	// tests' clients can't blur the count.
	tr := &http.Transport{DisableKeepAlives: true}
	client := &http.Client{Transport: tr}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read until one metrics frame arrives, proving the feed goroutine
	// is up, then drop the connection mid-stream.
	sc := bufio.NewScanner(resp.Body)
	sawFrame := false
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "data: ") {
			sawFrame = true
			break
		}
	}
	if !sawFrame {
		t.Fatal("no SSE frame before disconnect")
	}
	cancel()
	resp.Body.Close()
	tr.CloseIdleConnections()
	waitNumGoroutine(t, base)
}
