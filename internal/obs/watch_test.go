package obs

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestRatioRule(t *testing.T) {
	rule := RatioRule("gap_ratio", "gaps", "samples", 0.5)
	cur := Snapshot{Counters: map[string]int64{"gaps": 3, "samples": 10}}
	if v := rule.Eval(EvalInput{Cur: cur, HasPrev: true}); !v.OK {
		t.Fatal("30% gaps flagged at a 50% threshold")
	}
	cur.Counters["gaps"] = 6
	v := rule.Eval(EvalInput{Cur: cur, HasPrev: true})
	if v.OK {
		t.Fatal("60% gaps passed a 50% threshold")
	}
	if !strings.Contains(v.Detail, "gaps/samples") {
		t.Fatalf("detail = %q", v.Detail)
	}
	if v.Window != "cumulative" || v.Observed != 0.6 || v.Threshold != 0.5 {
		t.Fatalf("verdict = %+v", v)
	}
	// Zero denominator: no data is not a violation.
	if v := rule.Eval(EvalInput{Cur: Snapshot{Counters: map[string]int64{"gaps": 5}}, HasPrev: true}); !v.OK {
		t.Fatal("zero denominator flagged")
	}
}

func TestCounterRateRule(t *testing.T) {
	rule := CounterRateRule("gap_rate", "gaps", 10)
	t0 := time.Now()
	prev := Snapshot{TakenAt: t0, Counters: map[string]int64{"gaps": 0}}
	cur := Snapshot{TakenAt: t0.Add(time.Second), Counters: map[string]int64{"gaps": 5}}
	// First evaluation has no window: always ok.
	if v := rule.Eval(EvalInput{Cur: cur}); !v.OK {
		t.Fatal("first evaluation flagged without a window")
	}
	if v := rule.Eval(EvalInput{Prev: prev, Cur: cur, HasPrev: true}); !v.OK {
		t.Fatal("5/s flagged at a 10/s threshold")
	}
	cur.Counters["gaps"] = 50
	if v := rule.Eval(EvalInput{Prev: prev, Cur: cur, HasPrev: true}); v.OK {
		t.Fatal("50/s passed a 10/s threshold")
	}
}

func TestGaugeCeilingRule(t *testing.T) {
	rule := GaugeCeilingRule("consec", "core.sampler.consecutive_gaps", 64)
	if v := rule.Eval(EvalInput{Cur: Snapshot{Gauges: map[string]float64{"core.sampler.consecutive_gaps": 64}}, HasPrev: true}); !v.OK {
		t.Fatal("value at the ceiling flagged")
	}
	v := rule.Eval(EvalInput{Cur: Snapshot{Gauges: map[string]float64{"core.sampler.consecutive_gaps": 65}}, HasPrev: true})
	if v.OK {
		t.Fatal("value above the ceiling passed")
	}
	if v.Window != "instant" || v.Observed != 65 {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestWindowedRatioRuleRecovers(t *testing.T) {
	r := NewRegistry()
	clk := &fakeClock{}
	rec := r.NewRecorder(RecorderOptions{Interval: time.Second, Clock: clk})
	r.history.Store(rec)
	gaps := r.Counter("gaps")
	samples := r.Counter("samples")
	rule := WindowedRatioRule("gap_ratio", "gaps", "samples", 0.5, 5)

	// A fault burst: 9 of 10 samples are gaps during the first seconds.
	for i := 0; i < 5; i++ {
		samples.Add(2)
		gaps.Add(2)
		clk.now += time.Second
		rec.Sample()
	}
	in := EvalInput{Cur: r.Snapshot(), HasPrev: true, History: rec}
	v := rule.Eval(in)
	if v.OK {
		t.Fatalf("100%% gaps in-window passed: %+v", v)
	}
	if v.Window != "5×1s" {
		t.Fatalf("window = %q, want 5×1s", v.Window)
	}

	// The burst stops; clean sampling continues. Once the burst ages out
	// of the 5-interval window the rule recovers even though the
	// cumulative ratio is still ~29%... and a cumulative 0.15-threshold
	// rule would never recover.
	for i := 0; i < 8; i++ {
		samples.Add(5)
		clk.now += time.Second
		rec.Sample()
	}
	v = rule.Eval(EvalInput{Cur: r.Snapshot(), HasPrev: true, History: rec})
	if !v.OK {
		t.Fatalf("recovered window still failing: %+v", v)
	}
	if v.Window != "5×1s" {
		t.Fatalf("window = %q after recovery", v.Window)
	}

	// Cumulative fallback: without history the same rule judges totals.
	v = rule.Eval(EvalInput{Cur: r.Snapshot(), HasPrev: true})
	if v.Window != "cumulative" {
		t.Fatalf("no-history window = %q, want cumulative", v.Window)
	}
}

func TestWatcherEvaluate(t *testing.T) {
	r := NewRegistry()
	r.Counter("trace.samples_recorded").Add(10)
	r.Counter("trace.gaps_recorded").Add(9) // 90% gaps: clearly unhealthy
	w := r.Watch()

	var cbCount int
	w.OnViolation(func(v Violation) { cbCount++ })

	got := w.Evaluate()
	if len(got) != 1 || got[0].Rule != "trace.gap_ratio" {
		t.Fatalf("violations = %+v, want one trace.gap_ratio", got)
	}
	if cbCount != 1 {
		t.Fatalf("callback invoked %d times", cbCount)
	}
	if n := r.Counter("obs.watch.violations").Value(); n != 1 {
		t.Fatalf("obs.watch.violations = %d", n)
	}
	if last := w.Last(); len(last) != 1 || last[0].Detail != got[0].Detail {
		t.Fatalf("Last() = %+v", last)
	}
	// The violation also lands in the event ring as a WARN.
	snap := r.Snapshot()
	found := false
	for _, e := range snap.Events {
		if strings.Contains(e.Msg, "WARN watch: trace.gap_ratio") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no WARN event recorded; events = %+v", snap.Events)
	}

	// Recovery: once the ratio drops below threshold, Evaluate is clean.
	r.Counter("trace.samples_recorded").Add(100)
	if got := w.Evaluate(); len(got) != 0 {
		t.Fatalf("violations after recovery = %+v", got)
	}
	if last := w.Last(); len(last) != 0 {
		t.Fatalf("Last() after recovery = %+v", last)
	}
}

func TestHealthzEndpoint(t *testing.T) {
	// No watcher installed: /healthz reports ok with a note.
	r := NewRegistry()
	srv := httptest.NewServer(NewHandler(r))
	defer srv.Close()
	body, code := getBody(t, srv.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, "no watch rules") {
		t.Fatalf("no-watcher healthz = %d %q", code, body)
	}

	// Healthy registry with a watcher: plain ok.
	r.Watch()
	body, code = getBody(t, srv.URL+"/healthz")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("healthy healthz = %d %q", code, body)
	}

	// Unhealthy: a stuck sampler trips the consecutive-gap ceiling.
	r.Gauge("core.sampler.consecutive_gaps").Set(1000)
	body, code = getBody(t, srv.URL+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("unhealthy healthz code = %d, body %q", code, body)
	}
	if !strings.Contains(body, "core.sampler.consecutive_gaps") {
		t.Fatalf("unhealthy healthz body = %q", body)
	}

	// Recovery flips it back to 200.
	r.Gauge("core.sampler.consecutive_gaps").Set(0)
	if _, code := getBody(t, srv.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("recovered healthz code = %d", code)
	}
}

func getBody(t *testing.T, url string) (string, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b), resp.StatusCode
}

func TestWatcherRunStopsOnCancel(t *testing.T) {
	r := NewRegistry()
	r.Counter("runner.shards").Add(4)
	r.Counter("runner.shards_failed").Add(4) // 100% failures
	w := r.Watch()

	fired := make(chan struct{}, 16)
	w.OnViolation(func(Violation) {
		select {
		case fired <- struct{}{}:
		default:
		}
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		w.Run(ctx, 10*time.Millisecond)
		close(done)
	}()
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("periodic evaluation never fired")
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop on cancel")
	}
}
