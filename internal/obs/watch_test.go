package obs

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestRatioRule(t *testing.T) {
	rule := RatioRule("gap_ratio", "gaps", "samples", 0.5)
	cur := Snapshot{Counters: map[string]int64{"gaps": 3, "samples": 10}}
	if ok, _ := rule.Check(Snapshot{}, cur, true); !ok {
		t.Fatal("30% gaps flagged at a 50% threshold")
	}
	cur.Counters["gaps"] = 6
	ok, detail := rule.Check(Snapshot{}, cur, true)
	if ok {
		t.Fatal("60% gaps passed a 50% threshold")
	}
	if !strings.Contains(detail, "gaps/samples") {
		t.Fatalf("detail = %q", detail)
	}
	// Zero denominator: no data is not a violation.
	if ok, _ := rule.Check(Snapshot{}, Snapshot{Counters: map[string]int64{"gaps": 5}}, true); !ok {
		t.Fatal("zero denominator flagged")
	}
}

func TestCounterRateRule(t *testing.T) {
	rule := CounterRateRule("gap_rate", "gaps", 10)
	t0 := time.Now()
	prev := Snapshot{TakenAt: t0, Counters: map[string]int64{"gaps": 0}}
	cur := Snapshot{TakenAt: t0.Add(time.Second), Counters: map[string]int64{"gaps": 5}}
	// First evaluation has no window: always ok.
	if ok, _ := rule.Check(Snapshot{}, cur, false); !ok {
		t.Fatal("first evaluation flagged without a window")
	}
	if ok, _ := rule.Check(prev, cur, true); !ok {
		t.Fatal("5/s flagged at a 10/s threshold")
	}
	cur.Counters["gaps"] = 50
	if ok, _ := rule.Check(prev, cur, true); ok {
		t.Fatal("50/s passed a 10/s threshold")
	}
}

func TestGaugeCeilingRule(t *testing.T) {
	rule := GaugeCeilingRule("consec", "core.sampler.consecutive_gaps", 64)
	if ok, _ := rule.Check(Snapshot{}, Snapshot{Gauges: map[string]float64{"core.sampler.consecutive_gaps": 64}}, true); !ok {
		t.Fatal("value at the ceiling flagged")
	}
	if ok, _ := rule.Check(Snapshot{}, Snapshot{Gauges: map[string]float64{"core.sampler.consecutive_gaps": 65}}, true); ok {
		t.Fatal("value above the ceiling passed")
	}
}

func TestWatcherEvaluate(t *testing.T) {
	r := NewRegistry()
	r.Counter("trace.samples_recorded").Add(10)
	r.Counter("trace.gaps_recorded").Add(9) // 90% gaps: clearly unhealthy
	w := r.Watch()

	var cbCount int
	w.OnViolation(func(v Violation) { cbCount++ })

	got := w.Evaluate()
	if len(got) != 1 || got[0].Rule != "trace.gap_ratio" {
		t.Fatalf("violations = %+v, want one trace.gap_ratio", got)
	}
	if cbCount != 1 {
		t.Fatalf("callback invoked %d times", cbCount)
	}
	if n := r.Counter("obs.watch.violations").Value(); n != 1 {
		t.Fatalf("obs.watch.violations = %d", n)
	}
	if last := w.Last(); len(last) != 1 || last[0].Detail != got[0].Detail {
		t.Fatalf("Last() = %+v", last)
	}
	// The violation also lands in the event ring as a WARN.
	snap := r.Snapshot()
	found := false
	for _, e := range snap.Events {
		if strings.Contains(e.Msg, "WARN watch: trace.gap_ratio") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no WARN event recorded; events = %+v", snap.Events)
	}

	// Recovery: once the ratio drops below threshold, Evaluate is clean.
	r.Counter("trace.samples_recorded").Add(100)
	if got := w.Evaluate(); len(got) != 0 {
		t.Fatalf("violations after recovery = %+v", got)
	}
	if last := w.Last(); len(last) != 0 {
		t.Fatalf("Last() after recovery = %+v", last)
	}
}

func TestHealthzEndpoint(t *testing.T) {
	// No watcher installed: /healthz reports ok with a note.
	r := NewRegistry()
	srv := httptest.NewServer(NewHandler(r))
	defer srv.Close()
	body, code := getBody(t, srv.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, "no watch rules") {
		t.Fatalf("no-watcher healthz = %d %q", code, body)
	}

	// Healthy registry with a watcher: plain ok.
	r.Watch()
	body, code = getBody(t, srv.URL+"/healthz")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("healthy healthz = %d %q", code, body)
	}

	// Unhealthy: a stuck sampler trips the consecutive-gap ceiling.
	r.Gauge("core.sampler.consecutive_gaps").Set(1000)
	body, code = getBody(t, srv.URL+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("unhealthy healthz code = %d, body %q", code, body)
	}
	if !strings.Contains(body, "core.sampler.consecutive_gaps") {
		t.Fatalf("unhealthy healthz body = %q", body)
	}

	// Recovery flips it back to 200.
	r.Gauge("core.sampler.consecutive_gaps").Set(0)
	if _, code := getBody(t, srv.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("recovered healthz code = %d", code)
	}
}

func getBody(t *testing.T, url string) (string, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b), resp.StatusCode
}

func TestWatcherRunStopsOnCancel(t *testing.T) {
	r := NewRegistry()
	r.Counter("runner.shards").Add(4)
	r.Counter("runner.shards_failed").Add(4) // 100% failures
	w := r.Watch()

	fired := make(chan struct{}, 16)
	w.OnViolation(func(Violation) {
		select {
		case fired <- struct{}{}:
		default:
		}
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		w.Run(ctx, 10*time.Millisecond)
		close(done)
	}()
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("periodic evaluation never fired")
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop on cancel")
	}
}
