package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestSubscribeDeliversFrames(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim.ticks").Add(3)
	sub := r.Subscribe(MinStreamInterval, 4)
	defer sub.Close()
	select {
	case snap := <-sub.C():
		if snap.Counter("sim.ticks") != 3 {
			t.Fatalf("first frame sim.ticks = %d", snap.Counter("sim.ticks"))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no first frame")
	}
	if got := r.Gauge("obs.stream.subscribers").Value(); got != 1 {
		t.Fatalf("subscribers gauge = %v, want 1", got)
	}
}

// TestSubscribeSlowConsumerDropsOldest is the acceptance property: a
// consumer that never drains sees dropped frames counted, and the
// frames it eventually reads are the newest, not the oldest.
func TestSubscribeSlowConsumerDropsOldest(t *testing.T) {
	r := NewRegistry()
	sub := r.Subscribe(MinStreamInterval, 2)
	defer sub.Close()
	dropped := r.Counter("obs.stream.dropped_frames")
	waitFor(t, "dropped frames", func() bool { return dropped.Value() > 0 })

	// The queue still holds the most recent frames: mark the registry,
	// drain whatever is queued, and the feed must deliver the mark.
	r.Counter("marker").Add(1)
	waitFor(t, "a post-marker frame", func() bool {
		select {
		case snap := <-sub.C():
			return snap.Counter("marker") == 1
		default:
			return false
		}
	})
}

func TestSubscribeCloseReleasesSlot(t *testing.T) {
	r := NewRegistry()
	subs := make([]*Subscription, 3)
	for i := range subs {
		subs[i] = r.Subscribe(MinStreamInterval, 1)
	}
	if got := r.Gauge("obs.stream.subscribers").Value(); got != 3 {
		t.Fatalf("subscribers gauge = %v, want 3", got)
	}
	for _, s := range subs {
		s.Close()
		s.Close() // idempotent
	}
	if got := r.Gauge("obs.stream.subscribers").Value(); got != 0 {
		t.Fatalf("subscribers gauge after close = %v, want 0", got)
	}
}

// readSSEFrame reads one complete SSE event from br and returns its
// data payload.
func readSSEFrame(t *testing.T, br *bufio.Reader) (data string) {
	t.Helper()
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading SSE stream: %v (data so far %q)", err, data)
		}
		line = strings.TrimRight(line, "\n")
		if strings.HasPrefix(line, "data: ") {
			data += strings.TrimPrefix(line, "data: ")
		}
		if line == "" && data != "" {
			return data
		}
	}
}

func TestStreamHandlerServesFrames(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim.ticks").Add(7)
	srv := httptest.NewServer(NewHandler(r))
	defer srv.Close()

	req, _ := http.NewRequest("GET", srv.URL+"/metrics/stream?interval=50ms", nil)
	req.Header.Set("Last-Event-ID", "41")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	br := bufio.NewReader(resp.Body)
	// The preamble is a retry: hint; the first event follows immediately.
	var sawID, sawEvent bool
	var data string
	for data == "" {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "id: 42":
			sawID = true // Last-Event-ID: 41 resumes the counter at 42
		case line == "event: metrics":
			sawEvent = true
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		}
	}
	if !sawID || !sawEvent {
		t.Fatalf("frame preamble incomplete: sawID=%v sawEvent=%v", sawID, sawEvent)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(data), &snap); err != nil {
		t.Fatalf("frame is not a Snapshot: %v\n%s", err, data)
	}
	if snap.Counter("sim.ticks") != 7 {
		t.Fatalf("streamed sim.ticks = %d", snap.Counter("sim.ticks"))
	}
}

func TestStreamHandlerBadParams(t *testing.T) {
	r := NewRegistry()
	srv := httptest.NewServer(NewHandler(r))
	defer srv.Close()
	for _, q := range []string{"?interval=bogus", "?interval=-1s", "?depth=0", "?depth=9999", "?depth=x"} {
		resp, err := http.Get(srv.URL + "/metrics/stream" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s status = %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestStreamHandlerDisconnectReleasesSlot covers the mid-stream
// disconnect regression: dropping the connection must release the
// subscriber slot and must not panic the publisher goroutine.
func TestStreamHandlerDisconnectReleasesSlot(t *testing.T) {
	r := NewRegistry()
	srv := httptest.NewServer(NewHandler(r))
	defer srv.Close()

	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"/metrics/stream?interval=50ms", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		// Read one frame, then yank the connection mid-stream.
		readSSEFrame(t, bufio.NewReader(resp.Body))
		cancel()
		resp.Body.Close()
	}
	subs := r.Gauge("obs.stream.subscribers")
	waitFor(t, "subscriber slots to drain", func() bool { return subs.Value() == 0 })
}

// FuzzStreamLastEventID feeds adversarial Last-Event-ID headers into
// the SSE handler: any parseable or garbage value must yield a clean
// 200 stream, never a panic or a leaked slot.
func FuzzStreamLastEventID(f *testing.F) {
	r := NewRegistry()
	srv := httptest.NewServer(NewHandler(r))
	f.Cleanup(srv.Close)
	for _, seed := range []string{
		"", "0", "41", "-1", "abc", "9e99", "0x10", " 7 ",
		"99999999999999999999999999", strings.Repeat("9", 512), "1;DROP TABLE",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, id string) {
		req, err := http.NewRequest("GET", srv.URL+"/metrics/stream?interval=50ms", nil)
		if err != nil {
			t.Skip()
		}
		req.Header.Set("Last-Event-ID", id)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			// Header values with control bytes are rejected client-side;
			// nothing reached the server.
			t.Skip()
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("Last-Event-ID %q: status %d", id, resp.StatusCode)
		}
		readSSEFrame(t, bufio.NewReader(resp.Body))
	})
}
