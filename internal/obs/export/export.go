// Package export renders an obs registry snapshot as a Chrome
// trace-event JSON document (the "JSON Object Format" understood by
// chrome://tracing, Perfetto's legacy importer, and speedscope).
//
// Two process tracks are emitted: the wall-clock track (pid 1) places
// every retained span at its real start time, and the sim-clock track
// (pid 2) places the spans that carried a simulation clock at their
// simulated start time. Loading the file therefore shows wall-vs-sim
// skew directly: a phase whose wall extent is much longer than its sim
// extent is where the simulator fell behind the hardware it models.
// Progress events appear as instant events on the wall track.
//
// The package installs itself as the obs server's /trace renderer on
// import, and both CLIs expose it through the global -trace-out flag.
package export

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/obs"
)

// Track pids of the two clock domains.
const (
	PidWall = 1
	PidSim  = 2
)

// Event is one trace event in Chrome's trace-event schema. Only the
// fields this exporter emits are modelled; ts and dur are microseconds,
// per the format.
type Event struct {
	Name string `json:"name"`
	// Cat is the event category ("span" or "progress").
	Cat string `json:"cat,omitempty"`
	// Ph is the phase: "X" complete, "i" instant, "M" metadata.
	Ph  string  `json:"ph"`
	Ts  float64 `json:"ts"`
	Dur float64 `json:"dur,omitempty"`
	Pid int     `json:"pid"`
	Tid int     `json:"tid"`
	// S is the instant-event scope ("p" = process).
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// File is the trace-event JSON Object Format document.
type File struct {
	TraceEvents     []Event           `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// usec converts a duration to trace-event microseconds.
func usec(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// Build converts a snapshot's retained spans and progress events into a
// trace-event document. Span rows are grouped by span name (one tid per
// name) so repeated spans of the same operation share a timeline row.
func Build(snap obs.Snapshot) File {
	f := File{
		TraceEvents:     []Event{},
		DisplayTimeUnit: "ms",
		OtherData: map[string]string{
			"generator": "amperebleed internal/obs/export",
			"taken_at":  snap.TakenAt.Format(time.RFC3339Nano),
		},
	}

	// One tid per distinct span name, in sorted order, so row layout is
	// deterministic across exports of the same run.
	names := map[string]bool{}
	anySim := false
	for _, sp := range snap.RecentSpans {
		names[sp.Name] = true
		anySim = anySim || sp.HasSim
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	tids := make(map[string]int, len(sorted))
	for i, n := range sorted {
		tids[n] = i + 1
	}

	meta := func(pid int, procName string) {
		f.TraceEvents = append(f.TraceEvents, Event{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": procName},
		})
		for _, n := range sorted {
			f.TraceEvents = append(f.TraceEvents, Event{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tids[n],
				Args: map[string]any{"name": n},
			})
		}
	}
	meta(PidWall, "wall clock")
	if anySim {
		meta(PidSim, "sim clock")
	}

	// The wall track's origin is the earliest retained span start (or
	// the snapshot time when no spans were recorded); the sim track uses
	// the simulation's own zero, which every engine starts from.
	base := snap.TakenAt
	for _, sp := range snap.RecentSpans {
		if start := sp.WallStart(); start.Before(base) {
			base = start
		}
	}
	for _, e := range snap.Events {
		if e.At.Before(base) {
			base = e.At
		}
	}

	for _, sp := range snap.RecentSpans {
		wall := Event{
			Name: sp.Name, Cat: "span", Ph: "X",
			Ts:  usec(sp.WallStart().Sub(base)),
			Dur: usec(sp.Wall),
			Pid: PidWall, Tid: tids[sp.Name],
		}
		if wall.Dur <= 0 {
			wall.Dur = 0.001 // sub-µs spans still get a visible slice
		}
		if sp.HasSim {
			wall.Args = map[string]any{"sim_ns": sp.Sim.Nanoseconds()}
			sim := Event{
				Name: sp.Name, Cat: "span", Ph: "X",
				Ts:  usec(sp.SimStart()),
				Dur: usec(sp.Sim),
				Pid: PidSim, Tid: tids[sp.Name],
				Args: map[string]any{"wall_ns": sp.Wall.Nanoseconds()},
			}
			if sim.Dur <= 0 {
				sim.Dur = 0.001
			}
			f.TraceEvents = append(f.TraceEvents, sim)
		}
		f.TraceEvents = append(f.TraceEvents, wall)
	}

	for _, e := range snap.Events {
		f.TraceEvents = append(f.TraceEvents, Event{
			Name: e.Msg, Cat: "progress", Ph: "i",
			Ts: usec(e.At.Sub(base)), Pid: PidWall, Tid: 0, S: "p",
		})
	}
	return f
}

// Marshal builds and serializes the trace document.
func Marshal(snap obs.Snapshot) ([]byte, error) {
	return json.MarshalIndent(Build(snap), "", " ")
}

// Write builds the trace document and writes it to w.
func Write(w io.Writer, snap obs.Snapshot) error {
	data, err := Marshal(snap)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// WriteFile writes the trace document for snap to path (the -trace-out
// implementation of both CLIs).
func WriteFile(path string, snap obs.Snapshot) error {
	data, err := Marshal(snap)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// validPhases are the event phases this exporter may emit; Validate
// also accepts B/E pairs so externally produced traces check too.
var validPhases = map[string]bool{"X": true, "i": true, "I": true, "M": true, "B": true, "E": true}

// Validate checks that data parses as a trace-event JSON document the
// viewers will load: the Object Format with a traceEvents array (or the
// bare JSON Array Format), every event carrying a phase from the known
// set, non-negative timestamps on timed events, and non-negative
// durations on complete events. It is the schema check behind the CI
// trace smoke step and cmd/tracecheck.
func Validate(data []byte) error {
	var f File
	objErr := json.Unmarshal(data, &f)
	if objErr != nil || f.TraceEvents == nil {
		// Fall back to the JSON Array Format.
		var evs []Event
		if arrErr := json.Unmarshal(data, &evs); arrErr != nil {
			if objErr != nil {
				return fmt.Errorf("export: not trace-event JSON: %w", objErr)
			}
			return errors.New("export: object form lacks a traceEvents array")
		}
		f.TraceEvents = evs
	}
	for i, e := range f.TraceEvents {
		if !validPhases[e.Ph] {
			return fmt.Errorf("export: event %d: unknown phase %q", i, e.Ph)
		}
		if e.Ph == "M" {
			continue // metadata events carry no timestamp
		}
		if e.Name == "" {
			return fmt.Errorf("export: event %d: missing name", i)
		}
		if e.Ts < 0 {
			return fmt.Errorf("export: event %d (%s): negative timestamp %g", i, e.Name, e.Ts)
		}
		if e.Ph == "X" && e.Dur < 0 {
			return fmt.Errorf("export: event %d (%s): negative duration %g", i, e.Name, e.Dur)
		}
	}
	return nil
}

// ValidateFile runs Validate on a file's contents.
func ValidateFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return Validate(data)
}

func init() {
	obs.SetTraceExporter(Marshal)
}
