package export

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// tickClock is a SimClock advancing a fixed amount per Now call.
type tickClock struct {
	now  time.Duration
	step time.Duration
}

func (c *tickClock) Now() time.Duration {
	c.now += c.step
	return c.now
}

func populated(t *testing.T) *obs.Registry {
	t.Helper()
	r := obs.NewRegistry()
	clock := &tickClock{step: 5 * time.Millisecond}
	for i := 0; i < 3; i++ {
		s := r.StartSpan("phase.alpha", clock)
		s.End()
	}
	s := r.StartSpan("phase.beta", nil) // wall-only span
	s.End()
	r.Eventf("collect: %d captures starting", 7)
	return r
}

func TestBuildTracksAndRows(t *testing.T) {
	f := Build(populated(t).Snapshot())
	if f.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", f.DisplayTimeUnit)
	}
	var wallSpans, simSpans, instants, meta int
	pids := map[int]bool{}
	for _, e := range f.TraceEvents {
		pids[e.Pid] = true
		switch {
		case e.Ph == "M":
			meta++
		case e.Ph == "i":
			instants++
		case e.Ph == "X" && e.Pid == PidWall:
			wallSpans++
		case e.Ph == "X" && e.Pid == PidSim:
			simSpans++
		}
	}
	if wallSpans != 4 {
		t.Errorf("wall spans = %d, want 4", wallSpans)
	}
	if simSpans != 3 {
		t.Errorf("sim spans = %d, want 3 (beta has no clock)", simSpans)
	}
	if instants != 1 {
		t.Errorf("instant events = %d, want 1", instants)
	}
	if !pids[PidWall] || !pids[PidSim] {
		t.Errorf("expected both wall and sim tracks, got pids %v", pids)
	}
	if meta == 0 {
		t.Error("no metadata (process/thread name) events")
	}
}

func TestRoundTripValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, populated(t).Snapshot()); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := Validate(buf.Bytes()); err != nil {
		t.Fatalf("exported trace failed validation: %v", err)
	}
	// The document must also be plain JSON a viewer can parse generically.
	var generic map[string]any
	if err := json.Unmarshal(buf.Bytes(), &generic); err != nil {
		t.Fatalf("not generic JSON: %v", err)
	}
	if _, ok := generic["traceEvents"]; !ok {
		t.Fatal("missing traceEvents key")
	}
}

func TestWriteFileAndValidateFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := WriteFile(path, populated(t).Snapshot()); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := ValidateFile(path); err != nil {
		t.Fatalf("ValidateFile: %v", err)
	}
}

func TestValidateRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":      "][",
		"no events key": `{"displayTimeUnit":"ms"}`,
		"bad phase":     `{"traceEvents":[{"name":"x","ph":"?","ts":0,"pid":1,"tid":1}]}`,
		"negative ts":   `{"traceEvents":[{"name":"x","ph":"X","ts":-5,"dur":1,"pid":1,"tid":1}]}`,
		"negative dur":  `{"traceEvents":[{"name":"x","ph":"X","ts":0,"dur":-1,"pid":1,"tid":1}]}`,
		"unnamed":       `{"traceEvents":[{"ph":"i","ts":0,"pid":1,"tid":0,"s":"p"}]}`,
	}
	for name, data := range cases {
		if err := Validate([]byte(data)); err == nil {
			t.Errorf("%s: validated but should not", name)
		}
	}
	if err := Validate([]byte(`[{"name":"x","ph":"B","ts":1,"pid":1,"tid":1},{"name":"x","ph":"E","ts":2,"pid":1,"tid":1}]`)); err != nil {
		t.Errorf("array form rejected: %v", err)
	}
}

func TestHTTPTraceEndpoint(t *testing.T) {
	// Importing this package installs the /trace renderer on the obs
	// handler; the response must validate as a trace document.
	r := populated(t)
	srv := httptest.NewServer(obs.NewHandler(r))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/trace")
	if err != nil {
		t.Fatalf("GET /trace: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("content-type = %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	if err := Validate(buf.Bytes()); err != nil {
		t.Fatalf("/trace response invalid: %v", err)
	}
}

func TestSimSkewVisible(t *testing.T) {
	// A span whose sim duration differs from its wall duration must land
	// with different extents on the two tracks.
	r := obs.NewRegistry()
	clock := &tickClock{step: 250 * time.Millisecond}
	s := r.StartSpan("skewed", clock)
	s.End()
	f := Build(r.Snapshot())
	var wallDur, simDur float64
	for _, e := range f.TraceEvents {
		if e.Ph != "X" || e.Name != "skewed" {
			continue
		}
		if e.Pid == PidWall {
			wallDur = e.Dur
		} else {
			simDur = e.Dur
		}
	}
	if simDur != usec(250*time.Millisecond) {
		t.Errorf("sim dur = %g µs, want %g", simDur, usec(250*time.Millisecond))
	}
	if wallDur >= simDur {
		t.Errorf("wall dur %g µs not smaller than sim dur %g µs — skew not visible", wallDur, simDur)
	}
}
