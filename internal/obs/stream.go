package obs

// Live metric streaming: an in-process Subscribe API and the SSE
// /metrics/stream endpoint built on it. The design constraint is the
// one the sampling loop imposes on the whole obs layer — a slow or
// stalled consumer must never apply backpressure to the code being
// measured. Snapshots are taken by a per-subscription goroutine, and
// each subscriber owns a bounded queue with drop-oldest overflow, so
// the worst a dead client costs is one goroutine and a few retained
// snapshots; dropped frames are counted in obs.stream.dropped_frames.
//
// The stream metrics themselves are registered lazily, on the first
// Subscribe against a registry, so a process that never streams (the
// benchtab perf harness, whose baseline comparison gates on the exact
// deterministic counter set) sees no new counters.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Stream interval bounds: the floor keeps a hostile ?interval= query
// from turning the snapshot loop into a busy loop; the default matches
// a comfortable terminal refresh.
const (
	MinStreamInterval     = 50 * time.Millisecond
	DefaultStreamInterval = time.Second
	// DefaultStreamDepth is the per-subscriber queue bound.
	DefaultStreamDepth = 4
)

// Subscription is one live feed of registry snapshots. Receive from C;
// Close releases the feed's goroutine and slot.
type Subscription struct {
	reg  *Registry
	ch   chan Snapshot
	stop chan struct{}
	once sync.Once
}

// Subscribe starts a periodic snapshot feed: every interval (clamped to
// MinStreamInterval, DefaultStreamInterval when zero) the subscription
// snapshots the registry and queues it. The queue holds depth snapshots
// (DefaultStreamDepth when zero); when the consumer lags, the oldest
// queued frame is dropped and obs.stream.dropped_frames incremented, so
// a slow consumer sees gaps, never a stall — and neither does the code
// being measured.
func (r *Registry) Subscribe(interval time.Duration, depth int) *Subscription {
	if interval <= 0 {
		interval = DefaultStreamInterval
	}
	if interval < MinStreamInterval {
		interval = MinStreamInterval
	}
	if depth <= 0 {
		depth = DefaultStreamDepth
	}
	s := &Subscription{
		reg:  r,
		ch:   make(chan Snapshot, depth),
		stop: make(chan struct{}),
	}
	dropped := r.Counter("obs.stream.dropped_frames")
	subs := r.Gauge("obs.stream.subscribers")
	r.mu.Lock()
	r.streamSubs++
	subs.Set(float64(r.streamSubs))
	r.mu.Unlock()

	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		// An immediate first frame: a dashboard connecting mid-run should
		// not stare at a blank screen for one full interval.
		s.offer(r.Snapshot(), dropped)
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				s.offer(r.Snapshot(), dropped)
			}
		}
	}()
	return s
}

// Subscribe starts a snapshot feed on the Default registry.
func Subscribe(interval time.Duration, depth int) *Subscription {
	return Default.Subscribe(interval, depth)
}

// offer enqueues a frame, dropping the oldest queued frame on overflow.
func (s *Subscription) offer(snap Snapshot, dropped *Counter) {
	select {
	case s.ch <- snap:
		return
	default:
	}
	select {
	case <-s.ch:
		dropped.Inc()
	default:
	}
	select {
	case s.ch <- snap:
	default:
		// A racing consumer refilled the queue; count the lost frame.
		dropped.Inc()
	}
}

// C is the snapshot feed. It is never closed — select against a done
// channel or call Close and stop receiving.
func (s *Subscription) C() <-chan Snapshot { return s.ch }

// Close stops the feed and releases the subscriber slot. Idempotent.
func (s *Subscription) Close() {
	s.once.Do(func() {
		close(s.stop)
		s.reg.mu.Lock()
		s.reg.streamSubs--
		n := s.reg.streamSubs
		s.reg.mu.Unlock()
		s.reg.Gauge("obs.stream.subscribers").Set(float64(n))
	})
}

// streamHandler serves /metrics/stream: a Server-Sent-Events feed of
// registry snapshots as compact JSON, one "metrics" event per frame.
//
//	GET /metrics/stream?interval=500ms&depth=4
//
// A Last-Event-ID header (SSE reconnection) is parsed leniently: frames
// are periodic and not replayable, so a valid ID only seeds the event
// counter and a malformed one is ignored.
func streamHandler(r *Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		interval := DefaultStreamInterval
		if q := req.URL.Query().Get("interval"); q != "" {
			d, err := time.ParseDuration(q)
			if err != nil || d <= 0 {
				http.Error(w, fmt.Sprintf("bad interval %q (want a positive Go duration, e.g. 500ms)", q), http.StatusBadRequest)
				return
			}
			interval = d
		}
		depth := DefaultStreamDepth
		if q := req.URL.Query().Get("depth"); q != "" {
			n, err := strconv.Atoi(q)
			if err != nil || n < 1 || n > 1024 {
				http.Error(w, fmt.Sprintf("bad depth %q (want 1..1024)", q), http.StatusBadRequest)
				return
			}
			depth = n
		}
		fl, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported by this connection", http.StatusInternalServerError)
			return
		}
		// Resumed event IDs restart the counter; anything unparseable
		// (including adversarial garbage) silently starts from zero.
		var id int64
		if v := req.Header.Get("Last-Event-ID"); v != "" {
			if n, err := strconv.ParseInt(v, 10, 64); err == nil && n >= 0 {
				id = n + 1
			}
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-store")
		w.WriteHeader(http.StatusOK)
		fmt.Fprintf(w, "retry: %d\n\n", interval.Milliseconds())
		fl.Flush()

		sub := r.Subscribe(interval, depth)
		defer sub.Close()
		ctx := req.Context()
		for {
			select {
			case <-ctx.Done():
				return
			case snap := <-sub.C():
				data, err := json.Marshal(snap)
				if err != nil {
					return
				}
				// Compact JSON contains no newlines, so one data: line
				// carries the whole frame.
				if _, err := fmt.Fprintf(w, "id: %d\nevent: metrics\ndata: %s\n\n", id, data); err != nil {
					return
				}
				fl.Flush()
				id++
			}
		}
	}
}
