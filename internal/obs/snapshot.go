package obs

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// HistogramStat is the serializable summary of one histogram.
type HistogramStat struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

func statOf(h *Histogram) HistogramStat {
	return HistogramStat{
		Count: h.Count(),
		Mean:  h.Mean(),
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// Snapshot is a point-in-time copy of a registry, the schema served by
// /metrics/snapshot and returned by ampere.Snapshot.
type Snapshot struct {
	// TakenAt is the wall-clock snapshot time.
	TakenAt time.Time `json:"taken_at"`
	// Counters maps counter name to value.
	Counters map[string]int64 `json:"counters"`
	// Gauges maps gauge name to value.
	Gauges map[string]float64 `json:"gauges"`
	// Histograms maps histogram name to its summary, including the
	// "span.<name>.{wall,sim}_ns" histograms the tracer maintains.
	Histograms map[string]HistogramStat `json:"histograms"`
	// RecentSpans is the bounded ring of completed spans, oldest first.
	RecentSpans []SpanRecord `json:"recent_spans"`
	// Events is the bounded progress-event log, oldest first.
	Events []Event `json:"events"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	spans := r.spans.list()
	events := r.events.list()
	r.mu.Unlock()

	s := Snapshot{
		TakenAt:     time.Now(),
		Counters:    make(map[string]int64, len(counters)),
		Gauges:      make(map[string]float64, len(gauges)),
		Histograms:  make(map[string]HistogramStat, len(hists)),
		RecentSpans: spans,
		Events:      events,
	}
	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		s.Histograms[k] = statOf(h)
	}
	return s
}

// Counter returns a counter value from the snapshot (0 when absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns a gauge value from the snapshot (0 when absent).
func (s Snapshot) Gauge(name string) float64 { return s.Gauges[name] }

// Histogram returns a histogram summary and whether it exists.
func (s Snapshot) Histogram(name string) (HistogramStat, bool) {
	h, ok := s.Histograms[name]
	return h, ok
}

// WriteText renders the snapshot as the aligned text block the CLI's
// --obs flag prints after an experiment.
func (s Snapshot) WriteText(w io.Writer) error {
	var b strings.Builder
	b.WriteString("== obs snapshot ==\n")

	if len(s.Counters) > 0 {
		b.WriteString("counters:\n")
		for _, k := range sortedKeys(s.Counters) {
			fmt.Fprintf(&b, "  %-36s %d\n", k, s.Counters[k])
		}
	}
	if len(s.Gauges) > 0 {
		b.WriteString("gauges:\n")
		for _, k := range sortedKeys(s.Gauges) {
			fmt.Fprintf(&b, "  %-36s %.4g\n", k, s.Gauges[k])
		}
	}
	if len(s.Histograms) > 0 {
		b.WriteString("histograms (count mean p50 p95 p99 max):\n")
		for _, k := range sortedKeys(s.Histograms) {
			h := s.Histograms[k]
			fmt.Fprintf(&b, "  %-36s %8d  %s %s %s %s %s\n",
				k, h.Count, formatFor(k, h.Mean), formatFor(k, h.P50),
				formatFor(k, h.P95), formatFor(k, h.P99), formatFor(k, h.Max))
		}
	}
	if len(s.Events) > 0 {
		fmt.Fprintf(&b, "events (last %d):\n", len(s.Events))
		for _, e := range s.Events {
			fmt.Fprintf(&b, "  %s  %s\n", e.At.Format("15:04:05.000"), e.Msg)
		}
	}
	if len(s.RecentSpans) > 0 {
		// The span ring retains up to SpanRingSize records for the trace
		// exporter; the text snapshot shows only the most recent few so a
		// long run's -obs output stays readable.
		const textSpans = 32
		spans := s.RecentSpans
		if len(spans) > textSpans {
			fmt.Fprintf(&b, "recent spans (last %d of %d retained):\n", textSpans, len(spans))
			spans = spans[len(spans)-textSpans:]
		} else {
			fmt.Fprintf(&b, "recent spans (last %d):\n", len(spans))
		}
		for _, sp := range spans {
			if sp.HasSim {
				fmt.Fprintf(&b, "  %-36s wall=%-12v sim=%v\n", sp.Name,
					sp.Wall.Round(time.Microsecond), sp.Sim)
			} else {
				fmt.Fprintf(&b, "  %-36s wall=%v\n", sp.Name,
					sp.Wall.Round(time.Microsecond))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// formatFor renders a histogram value with a unit inferred from the
// metric name: *_ns values print as durations, *_hz as rates.
func formatFor(name string, v float64) string {
	switch {
	case strings.HasSuffix(name, "_ns"):
		return fmt.Sprintf("%-10v", time.Duration(v).Round(time.Nanosecond))
	case strings.HasSuffix(name, "_hz"):
		return fmt.Sprintf("%-10s", fmt.Sprintf("%.1fHz", v))
	default:
		return fmt.Sprintf("%-10.4g", v)
	}
}
