package tsdb

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Kind classifies a series: counters are cumulative (rates are
// meaningful), gauges are instantaneous.
type Kind uint8

const (
	// Gauge series carry instantaneous values.
	Gauge Kind = iota
	// Counter series carry cumulative, normally non-decreasing values.
	Counter
)

// String returns the kind's wire name.
func (k Kind) String() string {
	if k == Counter {
		return "counter"
	}
	return "gauge"
}

// KindFromString parses a wire name back into a Kind.
func KindFromString(s string) (Kind, error) {
	switch s {
	case "counter":
		return Counter, nil
	case "gauge":
		return Gauge, nil
	}
	return 0, fmt.Errorf("tsdb: unknown kind %q (want counter|gauge)", s)
}

// TierSpec configures one downsample tier.
type TierSpec struct {
	// Width is the tier's window width in nanoseconds.
	Width int64
	// Capacity is the number of sealed windows retained (DefaultTierCapacity
	// when zero).
	Capacity int
}

// Defaults for Options fields left zero.
const (
	DefaultRawCapacity  = 512
	DefaultTierCapacity = 256
)

// Options configures a Store.
type Options struct {
	// RawCapacity bounds the per-series raw ring (DefaultRawCapacity
	// when zero).
	RawCapacity int
	// Tiers are the downsample tiers, widths strictly increasing. Nil
	// means raw-only retention.
	Tiers []TierSpec
}

// tier is one live downsample level of a series.
type tier struct {
	spec    TierSpec
	sealed  *ring[Window]
	open    Window
	hasOpen bool
}

// series is the storage behind one metric name.
type series struct {
	kind  Kind
	raw   *ring[Point]
	tiers []*tier
}

// Store is a thread-safe collection of bounded time series.
type Store struct {
	mu        sync.RWMutex
	opts      Options
	series    map[string]*series
	samples   int64
	evictions int64
}

// Stats summarizes a store's occupancy.
type Stats struct {
	// Series is the number of distinct series.
	Series int `json:"series"`
	// Points is the number of raw points currently retained.
	Points int `json:"points"`
	// Samples is the total number of points ever appended.
	Samples int64 `json:"samples"`
	// Evictions counts raw points and sealed windows dropped to stay
	// inside the retention bounds.
	Evictions int64 `json:"evictions"`
}

// New returns an empty store. Invalid options are normalized: a
// non-positive raw capacity takes the default, tiers with non-positive
// widths are dropped, and tier capacities default.
func New(opts Options) *Store {
	if opts.RawCapacity <= 0 {
		opts.RawCapacity = DefaultRawCapacity
	}
	tiers := make([]TierSpec, 0, len(opts.Tiers))
	for _, t := range opts.Tiers {
		if t.Width <= 0 {
			continue
		}
		if t.Capacity <= 0 {
			t.Capacity = DefaultTierCapacity
		}
		tiers = append(tiers, t)
	}
	sort.Slice(tiers, func(i, j int) bool { return tiers[i].Width < tiers[j].Width })
	opts.Tiers = tiers
	return &Store{opts: opts, series: make(map[string]*series)}
}

// Append records one sample. The first append fixes the series kind;
// later appends keep it. Timestamps should be non-decreasing per
// series (the recorder's sampling loop guarantees it); a stray
// out-of-order point is absorbed into the tiers' current open windows.
// Non-finite values are dropped — a NaN gap marker is a fact about a
// trace, not a point on a metric series.
func (s *Store) Append(name string, kind Kind, t int64, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ser, ok := s.series[name]
	if !ok {
		ser = &series{kind: kind, raw: newRing[Point](s.opts.RawCapacity)}
		for _, spec := range s.opts.Tiers {
			ser.tiers = append(ser.tiers, &tier{spec: spec, sealed: newRing[Window](spec.Capacity)})
		}
		s.series[name] = ser
	}
	p := Point{T: t, V: v}
	if ser.raw.push(p) {
		s.evictions++
	}
	for _, tr := range ser.tiers {
		start := align(t, tr.spec.Width)
		switch {
		case !tr.hasOpen:
			tr.open, tr.hasOpen = newWindow(start, tr.spec.Width, p), true
		case t >= tr.open.End:
			if tr.sealed.push(tr.open) {
				s.evictions++
			}
			tr.open = newWindow(start, tr.spec.Width, p)
		default:
			tr.open.absorb(p)
		}
	}
	s.samples++
}

// SeriesNames returns every series name in lexical order.
func (s *Store) SeriesNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.series))
	for k := range s.series {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Kind returns the series kind and whether the series exists.
func (s *Store) Kind(name string) (Kind, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ser, ok := s.series[name]
	if !ok {
		return 0, false
	}
	return ser.kind, true
}

// Range returns the retained raw points of the series with from <= T
// <= to, oldest first.
func (s *Store) Range(name string, from, to int64) []Point {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ser, ok := s.series[name]
	if !ok {
		return nil
	}
	var out []Point
	for _, p := range ser.raw.list() {
		if p.T >= from && p.T <= to {
			out = append(out, p)
		}
	}
	return out
}

// Windows returns the aggregate windows of the given width overlapping
// [from, to]. When the width matches a downsample tier the sealed tier
// windows answer — they reach further back than the raw ring — merged
// with the tier's open window; any other width is computed by
// downsampling the retained raw points, so arbitrary widths work
// within raw retention.
func (s *Store) Windows(name string, width, from, to int64) []Window {
	if width <= 0 {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	ser, ok := s.series[name]
	if !ok {
		return nil
	}
	var all []Window
	matched := false
	for _, tr := range ser.tiers {
		if tr.spec.Width != width {
			continue
		}
		matched = true
		all = tr.sealed.list()
		if tr.hasOpen {
			all = MergeWindows(all, []Window{tr.open})
		}
		break
	}
	if !matched {
		var pts []Point
		for _, p := range ser.raw.list() {
			if p.T >= satSub(from, width) && p.T <= to {
				pts = append(pts, p)
			}
		}
		all = Downsample(pts, width)
	}
	out := make([]Window, 0, len(all))
	for _, w := range all {
		if w.End > from && w.Start <= to {
			out = append(out, w)
		}
	}
	return out
}

// Rate computes per-window increase rates of a counter series: for
// each window of the given width, (last value − previous window's last
// value) / width, stamped at the window end. Counter resets (a
// registry Reset mid-run) clamp to zero rather than reporting a
// negative rate. Gauge series return nil — a gauge has no meaningful
// rate() and asking for one is a query error the caller surfaces.
func (s *Store) Rate(name string, width, from, to int64) []Point {
	if k, ok := s.Kind(name); !ok || k != Counter {
		return nil
	}
	// Reach one window further back so the first in-range window has a
	// predecessor to difference against when history allows.
	ws := s.Windows(name, width, satSub(from, width), to)
	var out []Point
	prev := math.NaN()
	sec := float64(width) / float64(time.Second)
	for _, w := range ws {
		delta := w.Last - prev
		if math.IsNaN(prev) {
			delta = w.Last - w.First
		}
		if delta < 0 {
			delta = 0
		}
		prev = w.Last
		if w.End > from && w.Start <= to {
			out = append(out, Point{T: w.End, V: delta / sec})
		}
	}
	return out
}

// satSub is a-b saturating at math.MinInt64, so "one window before an
// unbounded from" does not wrap around.
func satSub(a, b int64) int64 {
	if r := a - b; (b > 0) == (r < a) {
		return r
	}
	return math.MinInt64
}

// Quantile returns the q-quantile of the series' retained raw points
// in [from, to] and the number of contributing points.
func (s *Store) Quantile(name string, q float64, from, to int64) (float64, int) {
	return Quantile(s.Range(name, from, to), q)
}

// Stats returns the store's occupancy counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{Series: len(s.series), Samples: s.samples, Evictions: s.evictions}
	for _, ser := range s.series {
		st.Points += ser.raw.n
	}
	return st
}

// SeriesDump is the serializable state of one series, for
// deterministic recording comparisons and debugging.
type SeriesDump struct {
	Kind   string     `json:"kind"`
	Points []Point    `json:"points"`
	Tiers  [][]Window `json:"tiers,omitempty"`
}

// Dump returns the full retained state keyed by series name. Marshal
// the result with encoding/json (which sorts map keys) for a stable
// byte representation: two stores fed identical appends dump
// byte-identically.
func (s *Store) Dump() map[string]SeriesDump {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]SeriesDump, len(s.series))
	for name, ser := range s.series {
		d := SeriesDump{Kind: ser.kind.String(), Points: ser.raw.list()}
		for _, tr := range ser.tiers {
			ws := tr.sealed.list()
			if tr.hasOpen {
				ws = append(ws, tr.open)
			}
			d.Tiers = append(d.Tiers, ws)
		}
		out[name] = d
	}
	return out
}
