package tsdb

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"
)

func sec(n int64) int64 { return n * int64(time.Second) }

func TestDownsampleAlignsAndAggregates(t *testing.T) {
	pts := []Point{
		{T: sec(0), V: 1}, {T: sec(0) + 5e8, V: 3},
		{T: sec(1), V: 2},
		{T: sec(3) + 1, V: 10}, // sec(2) empty: no window emitted
	}
	ws := Downsample(pts, sec(1))
	if len(ws) != 3 {
		t.Fatalf("windows = %d, want 3 (empty windows are not emitted)", len(ws))
	}
	w0 := ws[0]
	if w0.Start != 0 || w0.End != sec(1) {
		t.Fatalf("w0 span = [%d,%d)", w0.Start, w0.End)
	}
	if w0.Count != 2 || w0.Min != 1 || w0.Max != 3 || w0.Mean != 2 || w0.First != 1 || w0.Last != 3 {
		t.Fatalf("w0 = %+v", w0)
	}
	if ws[2].Start != sec(3) || ws[2].Count != 1 {
		t.Fatalf("w2 = %+v", ws[2])
	}
}

func TestDownsampleSkipsNonFinite(t *testing.T) {
	pts := []Point{{T: 1, V: math.NaN()}, {T: 2, V: math.Inf(1)}, {T: 3, V: 7}}
	ws := Downsample(pts, sec(1))
	if len(ws) != 1 || ws[0].Count != 1 || ws[0].Mean != 7 {
		t.Fatalf("windows = %+v", ws)
	}
}

func TestMergeWindowsBoundary(t *testing.T) {
	a := []Point{{T: 0, V: 1}, {T: sec(1), V: 2}}
	b := []Point{{T: sec(1) + 1, V: 4}, {T: sec(2), V: 8}}
	merged := MergeWindows(Downsample(a, sec(1)), Downsample(b, sec(1)))
	whole := Downsample(append(append([]Point{}, a...), b...), sec(1))
	if len(merged) != len(whole) {
		t.Fatalf("merged %d windows, whole %d", len(merged), len(whole))
	}
	for i := range merged {
		if merged[i] != whole[i] {
			t.Fatalf("window %d: merged %+v vs whole %+v", i, merged[i], whole[i])
		}
	}
	// The shared second window really merged: count 2, first 2, last 4.
	if merged[1].Count != 2 || merged[1].First != 2 || merged[1].Last != 4 {
		t.Fatalf("boundary window = %+v", merged[1])
	}
}

func TestQuantileNearestRank(t *testing.T) {
	pts := []Point{{T: 0, V: 10}, {T: 1, V: 30}, {T: 2, V: 20}, {T: 3, V: math.NaN()}}
	if v, n := Quantile(pts, 0.5); v != 20 || n != 3 {
		t.Fatalf("p50 = %g over %d", v, n)
	}
	if v, _ := Quantile(pts, 1); v != 30 {
		t.Fatalf("p100 = %g", v)
	}
	if v, _ := Quantile(pts, 0); v != 10 {
		t.Fatalf("p0 = %g", v)
	}
	if v, n := Quantile(nil, 0.5); v != 0 || n != 0 {
		t.Fatalf("empty quantile = %g over %d", v, n)
	}
}

func TestStoreRangeAndKinds(t *testing.T) {
	s := New(Options{})
	for i := int64(0); i < 5; i++ {
		s.Append("c", Counter, sec(i), float64(i*10))
	}
	s.Append("g", Gauge, sec(0), 3.5)
	if k, ok := s.Kind("c"); !ok || k != Counter {
		t.Fatalf("Kind(c) = %v %v", k, ok)
	}
	if _, ok := s.Kind("nope"); ok {
		t.Fatal("Kind invented a series")
	}
	got := s.Range("c", sec(1), sec(3))
	if len(got) != 3 || got[0].V != 10 || got[2].V != 30 {
		t.Fatalf("Range = %+v", got)
	}
	names := s.SeriesNames()
	if len(names) != 2 || names[0] != "c" || names[1] != "g" {
		t.Fatalf("SeriesNames = %v", names)
	}
}

func TestStoreRawEviction(t *testing.T) {
	s := New(Options{RawCapacity: 4})
	for i := int64(0); i < 10; i++ {
		s.Append("c", Counter, sec(i), float64(i))
	}
	pts := s.Range("c", 0, math.MaxInt64)
	if len(pts) != 4 || pts[0].V != 6 || pts[3].V != 9 {
		t.Fatalf("retained = %+v", pts)
	}
	st := s.Stats()
	if st.Samples != 10 || st.Evictions != 6 || st.Points != 4 || st.Series != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStoreTierOutlivesRaw(t *testing.T) {
	// Raw keeps 4 points; the 2 s tier keeps windows far beyond that.
	s := New(Options{RawCapacity: 4, Tiers: []TierSpec{{Width: sec(2), Capacity: 32}}})
	for i := int64(0); i < 20; i++ {
		s.Append("c", Counter, sec(i), float64(i))
	}
	ws := s.Windows("c", sec(2), 0, math.MaxInt64)
	if len(ws) != 10 {
		t.Fatalf("tier windows = %d, want 10", len(ws))
	}
	if ws[0].Start != 0 || ws[0].Count != 2 || ws[0].First != 0 || ws[0].Last != 1 {
		t.Fatalf("first tier window = %+v", ws[0])
	}
	// The last window is the open one, covering t=18,19.
	last := ws[len(ws)-1]
	if last.Start != sec(18) || last.Count != 2 || last.Last != 19 {
		t.Fatalf("open window = %+v", last)
	}
	// A width with no tier falls back to downsampled raw (short reach).
	raw := s.Windows("c", sec(1), 0, math.MaxInt64)
	if len(raw) != 4 {
		t.Fatalf("raw-downsample windows = %d, want 4", len(raw))
	}
}

func TestStoreRate(t *testing.T) {
	s := New(Options{})
	for i := int64(0); i <= 6; i++ {
		s.Append("c", Counter, sec(i), float64(i*100))
	}
	rates := s.Rate("c", sec(2), 0, math.MaxInt64)
	if len(rates) == 0 {
		t.Fatal("no rate points")
	}
	// Steady +100/s counter: every interior (fully covered) window
	// reports 100/s; the first and last windows see partial coverage.
	for _, p := range rates[1 : len(rates)-1] {
		if math.Abs(p.V-100) > 1e-9 {
			t.Fatalf("rate = %+v, want 100/s", p)
		}
	}
	// Counter reset clamps to zero rather than a negative rate.
	s.Append("c", Counter, sec(8), 0)
	s.Append("c", Counter, sec(9), 50)
	rates = s.Rate("c", sec(2), sec(7), math.MaxInt64)
	for _, p := range rates {
		if p.V < 0 {
			t.Fatalf("negative rate %+v after counter reset", p)
		}
	}
	// Gauges have no rate.
	s.Append("g", Gauge, sec(0), 1)
	if got := s.Rate("g", sec(1), 0, math.MaxInt64); got != nil {
		t.Fatalf("gauge rate = %+v, want nil", got)
	}
}

func TestStoreQuantile(t *testing.T) {
	s := New(Options{})
	for i := int64(0); i < 10; i++ {
		s.Append("g", Gauge, sec(i), float64(i))
	}
	if v, n := s.Quantile("g", 0.5, 0, math.MaxInt64); n != 10 || v != 4 {
		t.Fatalf("p50 = %g over %d", v, n)
	}
	if v, n := s.Quantile("g", 0.9, sec(5), math.MaxInt64); n != 5 || v != 9 {
		t.Fatalf("windowed p90 = %g over %d", v, n)
	}
}

func TestDumpDeterministic(t *testing.T) {
	build := func() *Store {
		s := New(Options{RawCapacity: 8, Tiers: []TierSpec{{Width: sec(2), Capacity: 4}}})
		for i := int64(0); i < 12; i++ {
			s.Append("a", Counter, sec(i), float64(i))
			s.Append("b", Gauge, sec(i), float64(i%3))
		}
		return s
	}
	d1, err := json.Marshal(build().Dump())
	if err != nil {
		t.Fatal(err)
	}
	d2, err := json.Marshal(build().Dump())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1, d2) {
		t.Fatalf("identical append sequences dumped differently:\n%s\n%s", d1, d2)
	}
}

func TestKindRoundTrip(t *testing.T) {
	for _, k := range []Kind{Gauge, Counter} {
		got, err := KindFromString(k.String())
		if err != nil || got != k {
			t.Fatalf("round trip %v -> %q -> %v, %v", k, k.String(), got, err)
		}
	}
	if _, err := KindFromString("bogus"); err == nil {
		t.Fatal("bogus kind parsed")
	}
}
