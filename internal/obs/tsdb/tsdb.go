// Package tsdb is a pure-stdlib in-process time-series engine: bounded
// raw rings of timestamped points per series, downsampled aggregate
// tiers, and a small windowed query API (range select, counter rates,
// quantile-over-window).
//
// The package holds no opinion about where points come from — it knows
// nothing about the obs registry, clocks, or HTTP. internal/obs wires a
// Recorder that periodically samples the registry snapshot into a
// Store; this split keeps every aggregation rule here a pure function
// of its inputs, which is what the property suites in
// tsdb_prop_test.go lean on (downsample/merge associativity, window
// envelope invariants, retention bounds).
//
// # Time
//
// Timestamps are int64 nanoseconds on whatever clock the caller
// samples with — wall-clock UnixNano for a live deployment, the sim
// engine's monotonic nanoseconds for a deterministic recording. Windows
// are aligned to multiples of their width on that same axis, so two
// recordings of the same deterministic run produce byte-identical
// window sequences.
//
// # Retention
//
// Everything is bounded at append time. Each series keeps its most
// recent RawCapacity raw points; each downsample tier keeps its most
// recent Capacity sealed windows plus one open window that absorbs new
// points until the timestamp crosses the next boundary. Evicted points
// and windows are counted (Stats.Evictions) but never block an append.
package tsdb

import (
	"math"
	"sort"
)

// Point is one raw sample of a series.
type Point struct {
	// T is the sample timestamp in nanoseconds (wall or sim axis).
	T int64 `json:"t"`
	// V is the sampled value.
	V float64 `json:"v"`
}

// Window is the aggregate of the points whose timestamps land in
// [Start, End). Mean is maintained as Sum/Count so a marshalled window
// is self-describing without arithmetic on the consumer side.
type Window struct {
	// Start is the window's aligned start (Start % width == 0).
	Start int64 `json:"start"`
	// End is Start plus the window width.
	End int64 `json:"end"`
	// Count is the number of points absorbed.
	Count int64 `json:"count"`
	// First and Last are the chronologically first and last values —
	// for counter series the pair a rate computation needs.
	First float64 `json:"first"`
	Last  float64 `json:"last"`
	// Min, Max, Sum, Mean summarize the absorbed values.
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	Sum  float64 `json:"sum"`
	Mean float64 `json:"mean"`
}

// newWindow opens a window at the aligned start covering p.
func newWindow(start, width int64, p Point) Window {
	return Window{
		Start: start, End: start + width,
		Count: 1,
		First: p.V, Last: p.V,
		Min: p.V, Max: p.V, Sum: p.V, Mean: p.V,
	}
}

// absorb folds one more point into the window (points arrive in time
// order, so p becomes Last).
func (w *Window) absorb(p Point) {
	w.Count++
	w.Last = p.V
	if p.V < w.Min {
		w.Min = p.V
	}
	if p.V > w.Max {
		w.Max = p.V
	}
	w.Sum += p.V
	w.Mean = w.Sum / float64(w.Count)
}

// merge combines w with a later window covering the same [Start, End):
// counts and sums add, the envelope widens, and First/Last keep their
// chronological meaning (w's First, later's Last).
func (w *Window) merge(later Window) {
	w.Count += later.Count
	w.Last = later.Last
	if later.Min < w.Min {
		w.Min = later.Min
	}
	if later.Max > w.Max {
		w.Max = later.Max
	}
	w.Sum += later.Sum
	w.Mean = w.Sum / float64(w.Count)
}

// align floors t to a multiple of width (correct for negative t too,
// though every supported clock axis is non-negative).
func align(t, width int64) int64 {
	r := t % width
	if r < 0 {
		r += width
	}
	return t - r
}

// Downsample aggregates time-ordered points into aligned windows of the
// given width (nanoseconds), skipping non-finite values. Empty windows
// are not emitted: a gap in the points is a gap in the output, which is
// exactly how a sampling dropout should look on a sparkline.
func Downsample(pts []Point, width int64) []Window {
	if width <= 0 {
		return nil
	}
	var out []Window
	for _, p := range pts {
		if math.IsNaN(p.V) || math.IsInf(p.V, 0) {
			continue
		}
		start := align(p.T, width)
		if n := len(out); n > 0 && out[n-1].Start == start {
			out[n-1].absorb(p)
		} else {
			out = append(out, newWindow(start, width, p))
		}
	}
	return out
}

// MergeWindows merges two window sequences of the same width, where b
// covers the same time axis at or after a (the split halves of one
// time-ordered recording). Windows sharing a Start merge; the result is
// sorted by Start. MergeWindows is the algebra behind querying sealed
// tier windows together with a fresher open window, and it satisfies
//
//	Downsample(append(a, b...), w) == MergeWindows(Downsample(a, w), Downsample(b, w))
//
// for any split of a time-ordered point slice — the associativity the
// property suite pins.
func MergeWindows(a, b []Window) []Window {
	out := make([]Window, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Start < b[j].Start:
			out = append(out, a[i])
			i++
		case a[i].Start > b[j].Start:
			out = append(out, b[j])
			j++
		default:
			m := a[i]
			m.merge(b[j])
			out = append(out, m)
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Quantile returns the q-quantile (nearest-rank) of the finite values
// among pts and how many values contributed. With no finite values it
// returns (0, 0).
func Quantile(pts []Point, q float64) (float64, int) {
	vals := make([]float64, 0, len(pts))
	for _, p := range pts {
		if math.IsNaN(p.V) || math.IsInf(p.V, 0) {
			continue
		}
		vals = append(vals, p.V)
	}
	if len(vals) == 0 {
		return 0, 0
	}
	sort.Float64s(vals)
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	idx := int(math.Ceil(q*float64(len(vals)))) - 1
	if idx < 0 {
		idx = 0
	}
	return vals[idx], len(vals)
}

// ring is a bounded FIFO of the most recent values.
type ring[T any] struct {
	buf  []T
	head int // index of the oldest element
	n    int
}

func newRing[T any](capacity int) *ring[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &ring[T]{buf: make([]T, capacity)}
}

// push appends v, evicting the oldest element when full; it reports
// whether an eviction happened.
func (r *ring[T]) push(v T) bool {
	if r.n < len(r.buf) {
		r.buf[(r.head+r.n)%len(r.buf)] = v
		r.n++
		return false
	}
	r.buf[r.head] = v
	r.head = (r.head + 1) % len(r.buf)
	return true
}

// list returns the retained elements, oldest first.
func (r *ring[T]) list() []T {
	out := make([]T, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(r.head+i)%len(r.buf)])
	}
	return out
}
