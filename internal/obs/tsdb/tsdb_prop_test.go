package tsdb_test

import (
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/obs/tsdb"
)

// decodePoints turns a generated code slice into a time-ordered point
// sequence. Timestamps accumulate a bounded positive step; values are
// integer-valued floats, which keeps window sums exact (integer float64
// addition is associative), so the merge-associativity property can
// demand bitwise equality rather than tolerance.
func decodePoints(codes []int64) []tsdb.Point {
	pts := make([]tsdb.Point, 0, len(codes))
	t := int64(0)
	for _, c := range codes {
		if c < 0 {
			c = -c
		}
		t += 1 + c%(3*int64(time.Second))
		pts = append(pts, tsdb.Point{T: t, V: float64(c % 401)})
	}
	return pts
}

func genCodes(maxLen int) check.Gen[[]int64] {
	return check.SliceOf(check.IntRange(0, 1<<30), 0, maxLen)
}

// widths worth probing: sub-step, step-scale, and much coarser.
var propWidths = []int64{
	int64(250 * time.Millisecond),
	int64(time.Second),
	int64(5 * time.Second),
	int64(30 * time.Second),
}

// TestPropDownsampleMergeAssociativity pins the algebra the Store's
// sealed+open window query relies on: for every split point,
// Downsample(a ++ b) == MergeWindows(Downsample(a), Downsample(b)).
func TestPropDownsampleMergeAssociativity(t *testing.T) {
	check.Forall(t, genCodes(48), func(c *check.T, codes []int64) {
		pts := decodePoints(codes)
		for _, width := range propWidths {
			whole := tsdb.Downsample(pts, width)
			for split := 0; split <= len(pts); split++ {
				merged := tsdb.MergeWindows(tsdb.Downsample(pts[:split], width), tsdb.Downsample(pts[split:], width))
				if len(merged) != len(whole) {
					c.Fatalf("width %d split %d: %d windows merged vs %d whole", width, split, len(merged), len(whole))
				}
				for i := range whole {
					if merged[i] != whole[i] {
						c.Fatalf("width %d split %d window %d:\n merged %+v\n  whole %+v", width, split, i, merged[i], whole[i])
					}
				}
			}
		}
	}, check.Iters(150))
}

// TestPropWindowEnvelope checks every window Downsample emits: aligned
// span, count >= 1, min <= first,last,mean <= max, sum consistent, and
// strictly increasing starts.
func TestPropWindowEnvelope(t *testing.T) {
	check.Forall(t, genCodes(64), func(c *check.T, codes []int64) {
		pts := decodePoints(codes)
		for _, width := range propWidths {
			ws := tsdb.Downsample(pts, width)
			c.Classify(len(ws) > 1, "multi-window")
			prevStart := int64(-1)
			var total int64
			for i, w := range ws {
				if w.Start%width != 0 || w.End != w.Start+width {
					c.Fatalf("width %d window %d misaligned: %+v", width, i, w)
				}
				if w.Start <= prevStart {
					c.Fatalf("width %d window %d start not increasing: %+v", width, i, w)
				}
				prevStart = w.Start
				if w.Count < 1 {
					c.Fatalf("width %d window %d empty: %+v", width, i, w)
				}
				if w.Min > w.Max || w.Mean < w.Min || w.Mean > w.Max ||
					w.First < w.Min || w.First > w.Max || w.Last < w.Min || w.Last > w.Max {
					c.Fatalf("width %d window %d envelope violated: %+v", width, i, w)
				}
				if w.Mean != w.Sum/float64(w.Count) {
					c.Fatalf("width %d window %d mean != sum/count: %+v", width, i, w)
				}
				total += w.Count
			}
			if total != int64(len(pts)) {
				c.Fatalf("width %d: windows absorbed %d of %d points", width, total, len(pts))
			}
		}
	}, check.Iters(200))
}

// TestPropRetentionBound feeds a store with tiny caps and checks the
// bounds hold at every step: raw points never exceed RawCapacity, each
// tier never exceeds Capacity sealed windows plus one open, and the
// sample/eviction accounting stays consistent.
func TestPropRetentionBound(t *testing.T) {
	const rawCap, tierCap = 5, 3
	width := int64(time.Second)
	check.Forall(t, genCodes(64), func(c *check.T, codes []int64) {
		s := tsdb.New(tsdb.Options{RawCapacity: rawCap, Tiers: []tsdb.TierSpec{{Width: width, Capacity: tierCap}}})
		pts := decodePoints(codes)
		for i, p := range pts {
			s.Append("x", tsdb.Gauge, p.T, p.V)
			if got := len(s.Range("x", 0, 1<<62)); got > rawCap {
				c.Fatalf("after %d appends: %d raw points retained, cap %d", i+1, got, rawCap)
			}
			if got := len(s.Windows("x", width, 0, 1<<62)); got > tierCap+1 {
				c.Fatalf("after %d appends: %d tier windows retained, cap %d+open", i+1, got, tierCap)
			}
		}
		st := s.Stats()
		c.Classify(st.Evictions > 0, "evicted")
		if st.Samples != int64(len(pts)) {
			c.Fatalf("samples = %d, appended %d", st.Samples, len(pts))
		}
		if st.Points > rawCap {
			c.Fatalf("stats report %d raw points, cap %d", st.Points, rawCap)
		}
		if len(pts) > rawCap && st.Evictions == 0 {
			c.Fatalf("%d appends over cap %d but no evictions counted", len(pts), rawCap)
		}
	}, check.Iters(150))
}

// TestPropStoreWindowsMatchDownsample: for a store whose raw ring has
// not evicted, a tier-width query must agree with downsampling the raw
// points directly — sealed+open merging is an optimization, not a
// different answer.
func TestPropStoreWindowsMatchDownsample(t *testing.T) {
	width := int64(time.Second)
	check.Forall(t, genCodes(32), func(c *check.T, codes []int64) {
		s := tsdb.New(tsdb.Options{RawCapacity: 64, Tiers: []tsdb.TierSpec{{Width: width, Capacity: 64}}})
		pts := decodePoints(codes)
		for _, p := range pts {
			s.Append("x", tsdb.Gauge, p.T, p.V)
		}
		want := tsdb.Downsample(pts, width)
		got := s.Windows("x", width, 0, 1<<62)
		if len(got) != len(want) {
			c.Fatalf("store answered %d windows, direct downsample %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				c.Fatalf("window %d: store %+v vs downsample %+v", i, got[i], want[i])
			}
		}
	}, check.Iters(150))
}
