package obs

// OpenMetrics/Prometheus text exposition of the registry. The renderer
// lives in this package (rather than a subpackage like export) because
// a faithful histogram exposition needs the raw geometric buckets,
// which Snapshot deliberately summarizes away. The matching pure-text
// parser lives in internal/obs/openmetrics and is what the tests and
// cmd/metricscheck validate this output with.

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// OpenMetricsContentType is the Content-Type of the /metrics endpoint.
// Prometheus-lineage scrapers accept it via content negotiation; the
// body is also valid Prometheus text format apart from the trailing
// "# EOF" marker, which plain-text parsers treat as a comment.
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// SanitizeMetricName maps an internal dotted metric name ("core.sampler.gaps",
// "span.runner.campaign.wall_ns") onto the exposition charset
// [a-zA-Z_:][a-zA-Z0-9_:]*: every invalid rune becomes '_' and a
// leading digit gains a '_' prefix. The mapping is not injective
// ("a.b" and "a-b" collide); WriteOpenMetrics resolves collisions
// deterministically by suffixing later names in lexical order.
func SanitizeMetricName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// exportName resolves the exposition name for an internal metric name,
// keeping the mapping injective within one rendering pass: callers
// iterate internal names in lexical order, so a collision suffix is
// stable across renders of the same registry.
func exportName(taken map[string]bool, name string) string {
	s := SanitizeMetricName(name)
	if !taken[s] {
		taken[s] = true
		return s
	}
	for i := 2; ; i++ {
		c := fmt.Sprintf("%s_%d", s, i)
		if !taken[c] {
			taken[c] = true
			return c
		}
	}
}

// escapeHelp escapes a HELP text per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// bucketUpper returns the inclusive upper bound of histogram bucket i,
// the "le" label of its cumulative exposition series. The underflow
// bucket is bounded by the smallest representable bucket edge and the
// overflow bucket by +Inf.
func bucketUpper(i int) float64 {
	if i <= 0 {
		return math.Exp2(histMinExp)
	}
	if i >= histBuckets-1 {
		return math.Inf(1)
	}
	i--
	exp := histMinExp + i>>histSubBits
	sub := i & (histSub - 1)
	return math.Exp2(float64(exp)) * (1 + (float64(sub)+1)/histSub)
}

// WriteOpenMetrics renders every counter, gauge, and histogram of the
// registry in the OpenMetrics text exposition format, ending with the
// "# EOF" marker. Counters gain the conventional "_total" suffix;
// histograms render the non-empty geometric buckets as a cumulative
// "_bucket{le=...}" series plus "_sum" and "_count". The HELP line
// carries the internal dotted name, so a scraped series can always be
// traced back to its obs registry entry.
//
// The render is not atomic with respect to concurrent recording: each
// metric is read once, so a scrape during a run sees per-metric
// freshness, the same contract Snapshot has.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	var b strings.Builder
	taken := make(map[string]bool, len(counters)+len(gauges)+len(hists))

	for _, name := range sortedKeys(counters) {
		en := exportName(taken, name)
		sample := en
		if !strings.HasSuffix(sample, "_total") {
			sample += "_total"
		}
		fmt.Fprintf(&b, "# HELP %s obs counter %q\n", en, escapeHelp(name))
		fmt.Fprintf(&b, "# TYPE %s counter\n", en)
		fmt.Fprintf(&b, "%s %d\n", sample, counters[name].Value())
	}
	for _, name := range sortedKeys(gauges) {
		en := exportName(taken, name)
		fmt.Fprintf(&b, "# HELP %s obs gauge %q\n", en, escapeHelp(name))
		fmt.Fprintf(&b, "# TYPE %s gauge\n", en)
		fmt.Fprintf(&b, "%s %s\n", en, formatFloat(gauges[name].Value()))
	}
	for _, name := range sortedKeys(hists) {
		en := exportName(taken, name)
		h := hists[name]
		fmt.Fprintf(&b, "# HELP %s obs histogram %q\n", en, escapeHelp(name))
		fmt.Fprintf(&b, "# TYPE %s histogram\n", en)
		// Cumulative counts over the non-empty buckets keep the series
		// compact: 562 geometric buckets would render mostly zeros. The
		// +Inf bucket is always present and equals the total count.
		//
		// Scrapes race recording, so consistency is built structurally:
		// Observe increments the total count before the bucket, which
		// makes a count read *after* the bucket walk an upper bound on
		// the walk's cumulative sum, and the single read keeps
		// "_bucket{le=+Inf}" and "_count" exactly equal.
		var cum int64
		for i := 0; i < histBuckets-1; i++ {
			n := h.buckets[i].Load()
			if n == 0 {
				continue
			}
			cum += n
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", en, formatFloat(bucketUpper(i)), cum)
		}
		total := h.Count()
		if total < cum {
			total = cum
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", en, total)
		fmt.Fprintf(&b, "%s_sum %s\n", en, formatFloat(h.Sum()))
		fmt.Fprintf(&b, "%s_count %d\n", en, total)
	}
	b.WriteString("# EOF\n")
	_, err := io.WriteString(w, b.String())
	return err
}
