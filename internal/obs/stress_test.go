package obs_test

// Concurrency stress for the span tracer and its consumers, meant to
// run under -race: spans start and end on many goroutines while other
// goroutines snapshot the registry, export Chrome traces, and record
// progress events. Guards the lock discipline around the bounded span
// ring that PR 4 grew for trace export.

import (
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/export"
)

// raceClock is a deliberately shared SimClock; its mutex keeps the
// clock itself race-free so the race detector watches the tracer, not
// the test fixture.
type raceClock struct {
	mu  sync.Mutex
	now time.Duration
}

func (c *raceClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += time.Microsecond
	return c.now
}

func TestSpanTracerConcurrentStress(t *testing.T) {
	r := obs.NewRegistry()
	clock := &raceClock{}
	const (
		writers = 8
		iters   = 500
	)
	var wg sync.WaitGroup
	names := []string{"stress.a", "stress.b", "stress.c"}
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var c obs.SimClock
				if i%2 == 0 {
					c = clock
				}
				s := r.StartSpan(names[(w+i)%len(names)], c)
				if i%7 == 0 {
					r.Eventf("writer %d at %d", w, i)
				}
				s.End()
			}
		}()
	}
	// Readers: snapshots and trace exports race against the writers.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 3; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := r.Snapshot()
				if _, err := export.Marshal(snap); err != nil {
					t.Errorf("export during stress: %v", err)
					return
				}
				_ = r.RecentSpans()
				_ = r.Events()
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	snap := r.Snapshot()
	if got := len(snap.RecentSpans); got != obs.SpanRingSize {
		t.Fatalf("span ring holds %d records, want full ring of %d", got, obs.SpanRingSize)
	}
	if got := len(snap.Events); got != obs.EventRingSize {
		t.Fatalf("event ring holds %d records, want full ring of %d", got, obs.EventRingSize)
	}
	var total int64
	for _, n := range names {
		h, ok := snap.Histogram("span." + n + ".wall_ns")
		if !ok {
			t.Fatalf("missing span histogram for %s", n)
		}
		total += h.Count
	}
	if want := int64(writers * iters); total != want {
		t.Fatalf("span histograms hold %d observations, want %d", total, want)
	}
}

func TestSpanRingBoundedAndOrdered(t *testing.T) {
	r := obs.NewRegistry()
	for i := 0; i < obs.SpanRingSize+100; i++ {
		r.StartSpan("bounded", nil).End()
	}
	spans := r.RecentSpans()
	if len(spans) != obs.SpanRingSize {
		t.Fatalf("retained %d spans, want %d", len(spans), obs.SpanRingSize)
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].EndedAt.Before(spans[i-1].EndedAt) {
			t.Fatalf("span %d out of order", i)
		}
	}
}
