package obs

import (
	"fmt"
	"time"
)

// SimClock supplies the current simulated time; *sim.Engine satisfies
// it. Spans started with a clock record sim-clock durations next to
// wall-clock ones, so a trace of the attack pipeline lines up with the
// simulated hardware events it drove.
type SimClock interface {
	Now() time.Duration
}

// Span is one timed operation. It is a value type so starting a span on
// a hot path does not allocate; End records the durations into the
// registry's histograms and the recent-span ring.
type Span struct {
	reg       *Registry
	name      string
	clock     SimClock
	wallStart time.Time
	simStart  time.Duration
}

// StartSpan begins a span. clock may be nil when no simulation is
// attached (e.g. classifier training); such spans record wall time only.
func (r *Registry) StartSpan(name string, clock SimClock) Span {
	s := Span{reg: r, name: name, clock: clock, wallStart: time.Now()}
	if clock != nil {
		s.simStart = clock.Now()
	}
	return s
}

// StartSpan begins a span on the Default registry.
func StartSpan(name string, clock SimClock) Span {
	return Default.StartSpan(name, clock)
}

// End closes the span: wall (and, when a clock is attached, sim)
// durations are recorded into "span.<name>.wall_ns" / ".sim_ns"
// histograms and the span joins the bounded recent-span ring.
func (s Span) End() {
	if s.reg == nil {
		return
	}
	wall := time.Since(s.wallStart)
	rec := SpanRecord{Name: s.name, EndedAt: time.Now(), Wall: wall}
	s.reg.Histogram("span." + s.name + ".wall_ns").Observe(float64(wall.Nanoseconds()))
	if s.clock != nil {
		simEnd := s.clock.Now()
		sim := simEnd - s.simStart
		rec.Sim = sim
		rec.SimEnd = simEnd
		rec.HasSim = true
		s.reg.Histogram("span." + s.name + ".sim_ns").Observe(float64(sim.Nanoseconds()))
	}
	s.reg.mu.Lock()
	s.reg.spans.add(rec)
	s.reg.mu.Unlock()
}

// SpanRecord is one completed span in the recent-span ring.
type SpanRecord struct {
	// Name of the span.
	Name string `json:"name"`
	// EndedAt is the wall-clock completion time.
	EndedAt time.Time `json:"ended_at"`
	// Wall is the wall-clock duration.
	Wall time.Duration `json:"wall_ns"`
	// Sim is the sim-clock duration; meaningful iff HasSim.
	Sim time.Duration `json:"sim_ns"`
	// SimEnd is the sim-clock timestamp at which the span ended;
	// meaningful iff HasSim. Together with Sim it places the span on a
	// simulated-time axis, which is what lets the trace exporter render
	// a second, sim-clock track next to the wall-clock one.
	SimEnd time.Duration `json:"sim_end_ns"`
	// HasSim reports whether the span carried a simulation clock.
	HasSim bool `json:"has_sim"`
}

// WallStart returns the wall-clock start time (EndedAt minus Wall).
func (r SpanRecord) WallStart() time.Time { return r.EndedAt.Add(-r.Wall) }

// SimStart returns the sim-clock start time (SimEnd minus Sim); zero
// when the span carried no simulation clock.
func (r SpanRecord) SimStart() time.Duration {
	if !r.HasSim {
		return 0
	}
	return r.SimEnd - r.Sim
}

// Event is one timestamped progress message.
type Event struct {
	// At is the wall-clock time the event was recorded.
	At time.Time `json:"at"`
	// Msg is the formatted message.
	Msg string `json:"msg"`
}

// Ring retention: the event and span stores are fixed-size rings — old
// entries are overwritten, so long experiments keep constant memory no
// matter how many spans they complete. EventRingSize bounds progress
// events; SpanRingSize bounds completed spans and is deliberately
// larger because the trace exporter renders the retained spans as a
// timeline, where 64 entries would cover only the tail of a run.
const (
	EventRingSize = 64
	SpanRingSize  = 1024
)

type eventRing struct {
	buf  [EventRingSize]Event
	next int
	n    int
}

func (r *eventRing) add(e Event) {
	r.buf[r.next] = e
	r.next = (r.next + 1) % EventRingSize
	if r.n < EventRingSize {
		r.n++
	}
}

func (r *eventRing) list() []Event {
	out := make([]Event, 0, r.n)
	start := (r.next - r.n + EventRingSize) % EventRingSize
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%EventRingSize])
	}
	return out
}

func (r *eventRing) reset() { *r = eventRing{} }

type spanRing struct {
	buf  [SpanRingSize]SpanRecord
	next int
	n    int
}

func (r *spanRing) add(s SpanRecord) {
	r.buf[r.next] = s
	r.next = (r.next + 1) % SpanRingSize
	if r.n < SpanRingSize {
		r.n++
	}
}

func (r *spanRing) list() []SpanRecord {
	out := make([]SpanRecord, 0, r.n)
	start := (r.next - r.n + SpanRingSize) % SpanRingSize
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%SpanRingSize])
	}
	return out
}

func (r *spanRing) reset() { *r = spanRing{} }

// Eventf records a progress event, keeping only the most recent
// EventRingSize events. Long offline phases (Fingerprint's hundreds of
// captures, Applicability's board loop) emit these so a snapshot taken
// mid-run shows where the pipeline is.
func (r *Registry) Eventf(format string, args ...any) {
	e := Event{At: time.Now(), Msg: fmt.Sprintf(format, args...)}
	r.mu.Lock()
	r.events.add(e)
	r.mu.Unlock()
}

// Eventf records a progress event on the Default registry.
func Eventf(format string, args ...any) { Default.Eventf(format, args...) }

// Events returns the retained events, oldest first.
func (r *Registry) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.events.list()
}

// RecentSpans returns the retained completed spans, oldest first.
func (r *Registry) RecentSpans() []SpanRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.spans.list()
}
