package obs_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/check"
	"repro/internal/obs"
	"repro/internal/obs/openmetrics"
)

// registryContents describes a randomized registry population:
// hostile metric names (spaces, dashes, unicode, empties) with random
// counter/gauge/histogram values.
type registryContents struct {
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string][]float64
}

func genRegistryContents() check.Gen[registryContents] {
	nameParts := []string{"attacker", "sample rate", "covert-ber", "sysfs/read", "über", "", "leakage.snr", "99bottles"}
	genName := func(r *rand.Rand) string {
		a := nameParts[r.Intn(len(nameParts))]
		b := nameParts[r.Intn(len(nameParts))]
		return a + "." + b
	}
	return check.Gen[registryContents]{
		Generate: func(r *rand.Rand, size int) registryContents {
			rc := registryContents{
				counters: map[string]int64{},
				gauges:   map[string]float64{},
				hists:    map[string][]float64{},
			}
			for i := 0; i < 1+r.Intn(6); i++ {
				rc.counters[genName(r)] = r.Int63n(1 << 40)
			}
			for i := 0; i < 1+r.Intn(6); i++ {
				rc.gauges[genName(r)] = -1e9 + 2e9*r.Float64()
			}
			for i := 0; i < r.Intn(4); i++ {
				obsv := make([]float64, 1+r.Intn(50))
				for j := range obsv {
					obsv[j] = r.Float64() * 1e6
				}
				rc.hists[genName(r)] = obsv
			}
			return rc
		},
		Describe: func(rc registryContents) string {
			return fmt.Sprintf("registry{%d counters, %d gauges, %d hists}",
				len(rc.counters), len(rc.gauges), len(rc.hists))
		},
	}
}

func populate(rc registryContents) *obs.Registry {
	reg := obs.NewRegistry()
	for name, v := range rc.counters {
		reg.Counter(name).Add(v)
	}
	for name, v := range rc.gauges {
		reg.Gauge(name).Set(v)
	}
	for name, vs := range rc.hists {
		h := reg.Histogram(name)
		for _, v := range vs {
			h.Observe(v)
		}
	}
	return reg
}

// TestPropOpenMetricsAlwaysParses: whatever metric names and values a
// run produces — including names with spaces, slashes, and unicode —
// the exposition WriteOpenMetrics emits must be accepted by the
// repo's own strict OpenMetrics parser and validator. This is the
// scrape-correctness contract: a registry state that renders an
// invalid exposition would break every monitoring consumer silently.
func TestPropOpenMetricsAlwaysParses(t *testing.T) {
	check.Forall(t, genRegistryContents(), func(c *check.T, rc registryContents) {
		var buf bytes.Buffer
		if err := populate(rc).WriteOpenMetrics(&buf); err != nil {
			c.Fatalf("WriteOpenMetrics: %v", err)
		}
		exp, err := openmetrics.Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			c.Fatalf("exposition rejected by parser: %v\n%s", err, buf.String())
		}
		if err := exp.Validate(); err != nil {
			c.Fatalf("exposition failed validation: %v\n%s", err, buf.String())
		}
	})
}

// TestPropSanitizeIdempotentAndValid: sanitizing is idempotent and
// always lands in the exposition's legal name charset.
func TestPropSanitizeIdempotentAndValid(t *testing.T) {
	hostile := check.SliceOf(check.IntRange(0, 0x10FFFF), 0, 24)
	check.Forall(t, hostile, func(c *check.T, codepoints []int64) {
		runes := make([]rune, len(codepoints))
		for i, cp := range codepoints {
			runes[i] = rune(cp)
		}
		name := string(runes)
		s1 := obs.SanitizeMetricName(name)
		if !openmetrics.ValidName(s1) {
			c.Fatalf("SanitizeMetricName(%q) = %q, not a valid exposition name", name, s1)
		}
		if s2 := obs.SanitizeMetricName(s1); s2 != s1 {
			c.Errorf("not idempotent: %q -> %q -> %q", name, s1, s2)
		}
	})
}
