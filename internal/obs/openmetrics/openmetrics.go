// Package openmetrics is a pure-Go parser and validator for the
// OpenMetrics text exposition format, covering the subset the obs
// registry's /metrics endpoint emits: counter, gauge, and histogram
// families with HELP/TYPE metadata, escaped label values, and the
// trailing "# EOF" marker.
//
// It exists so the repository can verify its own exposition without a
// Prometheus dependency: the renderer (obs.WriteOpenMetrics) and this
// parser are written against the same spec from opposite directions,
// and the round-trip test in internal/obs holds them to each other.
// cmd/metricscheck wraps Parse+Validate for CI smoke tests, and the
// `amperebleed top` dashboard uses the same token rules for its SSE
// client.
package openmetrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one exposed time series value.
type Sample struct {
	// Name is the full sample name including any _total/_bucket/_sum/
	// _count suffix.
	Name string
	// Labels are the sample's label pairs (nil when unlabelled).
	Labels map[string]string
	// Value is the parsed sample value.
	Value float64
}

// Le returns the sample's "le" label parsed as a float, or NaN when
// absent or malformed. "+Inf" parses to +Inf.
func (s Sample) Le() float64 {
	v, ok := s.Labels["le"]
	if !ok {
		return math.NaN()
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return math.NaN()
	}
	return f
}

// Family is one metric family: a TYPE declaration and its samples.
type Family struct {
	// Name is the family name from the TYPE line.
	Name string
	// Type is "counter", "gauge", "histogram", or another declared type.
	Type string
	// Help is the HELP text, unescaped; empty when no HELP line was seen.
	Help string
	// Samples are the family's samples in exposition order.
	Samples []Sample
}

// Sample returns the first sample with the given full name and, when
// withLe is non-empty, a matching "le" label.
func (f *Family) Sample(name, withLe string) (Sample, bool) {
	for _, s := range f.Samples {
		if s.Name != name {
			continue
		}
		if withLe != "" && s.Labels["le"] != withLe {
			continue
		}
		return s, true
	}
	return Sample{}, false
}

// Exposition is one parsed exposition document.
type Exposition struct {
	// Families in document order.
	Families []*Family
	// SawEOF reports whether the document ended with "# EOF".
	SawEOF bool

	byName map[string]*Family
}

// Family returns the named family, or nil.
func (e *Exposition) Family(name string) *Family { return e.byName[name] }

// Names returns the family names in lexical order.
func (e *Exposition) Names() []string {
	out := make([]string, 0, len(e.byName))
	for k := range e.byName {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// validNameRune reports whether r may appear in a metric or label name
// at byte position i.
func validNameRune(r rune, i int, label bool) bool {
	if r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') {
		return true
	}
	if !label && r == ':' {
		return true
	}
	return r >= '0' && r <= '9' && i > 0
}

// ValidName reports whether name is a valid exposition metric name.
func ValidName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		if !validNameRune(r, i, false) {
			return false
		}
	}
	return true
}

// familyOf maps a sample name onto its family name by stripping the
// conventional suffixes, preferring an exact family match first (a
// counter family literally named "x_total" exposes samples "x_total").
func (e *Exposition) familyOf(sample string) *Family {
	if f := e.byName[sample]; f != nil {
		return f
	}
	for _, suf := range []string{"_total", "_bucket", "_sum", "_count", "_created"} {
		if base, ok := strings.CutSuffix(sample, suf); ok {
			if f := e.byName[base]; f != nil {
				return f
			}
		}
	}
	return nil
}

// unescapeLabel reverses the exposition escaping of a label value:
// \\ -> \, \" -> ", \n -> newline.
func unescapeLabel(s string) (string, error) {
	if !strings.ContainsRune(s, '\\') {
		return s, nil
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(s) {
			return "", fmt.Errorf("dangling backslash")
		}
		switch s[i] {
		case '\\':
			b.WriteByte('\\')
		case '"':
			b.WriteByte('"')
		case 'n':
			b.WriteByte('\n')
		default:
			return "", fmt.Errorf("bad escape \\%c", s[i])
		}
	}
	return b.String(), nil
}

// parseLabels parses `name="value",...` between braces.
func parseLabels(s string) (map[string]string, error) {
	labels := make(map[string]string)
	i := 0
	for i < len(s) {
		// label name
		start := i
		for i < len(s) && s[i] != '=' {
			i++
		}
		if i >= len(s) {
			return nil, fmt.Errorf("label without '='")
		}
		name := s[start:i]
		if name == "" {
			return nil, fmt.Errorf("empty label name")
		}
		for j, r := range name {
			if !validNameRune(r, j, true) {
				return nil, fmt.Errorf("bad label name %q", name)
			}
		}
		i++ // '='
		if i >= len(s) || s[i] != '"' {
			return nil, fmt.Errorf("label %q value not quoted", name)
		}
		i++
		start = i
		for i < len(s) {
			if s[i] == '\\' {
				i += 2
				continue
			}
			if s[i] == '"' {
				break
			}
			i++
		}
		if i >= len(s) {
			return nil, fmt.Errorf("label %q value not terminated", name)
		}
		val, err := unescapeLabel(s[start:i])
		if err != nil {
			return nil, fmt.Errorf("label %q: %v", name, err)
		}
		if _, dup := labels[name]; dup {
			return nil, fmt.Errorf("duplicate label %q", name)
		}
		labels[name] = val
		i++ // closing quote
		if i < len(s) {
			if s[i] != ',' {
				return nil, fmt.Errorf("expected ',' after label %q", name)
			}
			i++
		}
	}
	if len(labels) == 0 {
		return nil, nil
	}
	return labels, nil
}

// Parse reads one exposition document. It is strict about structure
// (TYPE lines, sample syntax, nothing after # EOF) and returns the
// first error with its line number.
func Parse(r io.Reader) (*Exposition, error) {
	e := &Exposition{byName: make(map[string]*Family)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if e.SawEOF && strings.TrimSpace(line) != "" {
			return nil, fmt.Errorf("line %d: content after # EOF", lineNo)
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if line == "# EOF" {
				e.SawEOF = true
				continue
			}
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || fields[0] != "#" {
				return nil, fmt.Errorf("line %d: malformed comment %q (only HELP/TYPE/UNIT/EOF allowed)", lineNo, line)
			}
			kind, name := fields[1], fields[2]
			rest := ""
			if len(fields) == 4 {
				rest = fields[3]
			}
			switch kind {
			case "HELP":
				f := e.ensureFamily(name)
				if help, err := unescapeLabel(rest); err == nil {
					f.Help = help
				} else {
					f.Help = rest
				}
			case "TYPE":
				if rest == "" {
					return nil, fmt.Errorf("line %d: TYPE without a type", lineNo)
				}
				f := e.ensureFamily(name)
				if f.Type != "" {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				f.Type = rest
			case "UNIT":
				e.ensureFamily(name)
			default:
				return nil, fmt.Errorf("line %d: unknown comment kind %q", lineNo, kind)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		f := e.familyOf(s.Name)
		if f == nil {
			return nil, fmt.Errorf("line %d: sample %q has no TYPE declaration", lineNo, s.Name)
		}
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return e, nil
}

func (e *Exposition) ensureFamily(name string) *Family {
	if f := e.byName[name]; f != nil {
		return f
	}
	f := &Family{Name: name}
	e.Families = append(e.Families, f)
	e.byName[name] = f
	return f
}

// parseSample parses `name{labels} value [timestamp]`.
func parseSample(line string) (Sample, error) {
	var s Sample
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("sample %q has no value", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if !ValidName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	if strings.HasPrefix(rest, "{") {
		end := -1
		// Find the closing brace outside quotes.
		inQuote := false
		for i := 1; i < len(rest); i++ {
			switch {
			case inQuote && rest[i] == '\\':
				i++
			case rest[i] == '"':
				inQuote = !inQuote
			case !inQuote && rest[i] == '}':
				end = i
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("expected value [timestamp], got %q", strings.TrimSpace(rest))
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q", fields[0])
	}
	s.Value = v
	return s, nil
}

// Validate checks the invariants a well-formed obs exposition holds:
// the document ends with # EOF, every family has a known type and a
// valid name, counter samples are non-negative and carry the _total
// suffix, and histogram bucket series are cumulative, monotone,
// include le="+Inf", and agree with _count.
func (e *Exposition) Validate() error {
	if !e.SawEOF {
		return fmt.Errorf("openmetrics: missing # EOF terminator")
	}
	for _, f := range e.Families {
		if !ValidName(f.Name) {
			return fmt.Errorf("openmetrics: invalid family name %q", f.Name)
		}
		switch f.Type {
		case "counter":
			if err := validateCounter(f); err != nil {
				return err
			}
		case "gauge":
			if len(f.Samples) == 0 {
				return fmt.Errorf("openmetrics: gauge %q has no samples", f.Name)
			}
		case "histogram":
			if err := validateHistogram(f); err != nil {
				return err
			}
		case "":
			return fmt.Errorf("openmetrics: family %q has no TYPE", f.Name)
		}
		for _, s := range f.Samples {
			if !ValidName(s.Name) {
				return fmt.Errorf("openmetrics: invalid sample name %q", s.Name)
			}
		}
	}
	return nil
}

func validateCounter(f *Family) error {
	if len(f.Samples) == 0 {
		return fmt.Errorf("openmetrics: counter %q has no samples", f.Name)
	}
	for _, s := range f.Samples {
		if !strings.HasSuffix(s.Name, "_total") && !strings.HasSuffix(s.Name, "_created") {
			return fmt.Errorf("openmetrics: counter sample %q lacks the _total suffix", s.Name)
		}
		if s.Value < 0 || math.IsNaN(s.Value) {
			return fmt.Errorf("openmetrics: counter %q has invalid value %v", s.Name, s.Value)
		}
	}
	return nil
}

func validateHistogram(f *Family) error {
	var buckets []Sample
	var count, sum *Sample
	for i := range f.Samples {
		s := &f.Samples[i]
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			buckets = append(buckets, *s)
		case strings.HasSuffix(s.Name, "_count"):
			count = s
		case strings.HasSuffix(s.Name, "_sum"):
			sum = s
		}
	}
	if len(buckets) == 0 {
		return fmt.Errorf("openmetrics: histogram %q has no buckets", f.Name)
	}
	if count == nil || sum == nil {
		return fmt.Errorf("openmetrics: histogram %q lacks _count or _sum", f.Name)
	}
	prevLe := math.Inf(-1)
	prevCum := int64(-1)
	sawInf := false
	for _, b := range buckets {
		le := b.Le()
		if math.IsNaN(le) {
			return fmt.Errorf("openmetrics: histogram %q bucket lacks a numeric le label", f.Name)
		}
		if le <= prevLe {
			return fmt.Errorf("openmetrics: histogram %q buckets out of le order (%v after %v)", f.Name, le, prevLe)
		}
		cum := int64(b.Value)
		if cum < prevCum {
			return fmt.Errorf("openmetrics: histogram %q cumulative counts decrease at le=%v (%d after %d)", f.Name, le, cum, prevCum)
		}
		prevLe, prevCum = le, cum
		if math.IsInf(le, +1) {
			sawInf = true
			if int64(count.Value) != cum {
				return fmt.Errorf("openmetrics: histogram %q _count %v != +Inf bucket %d", f.Name, count.Value, cum)
			}
		}
	}
	if !sawInf {
		return fmt.Errorf("openmetrics: histogram %q lacks an le=\"+Inf\" bucket", f.Name)
	}
	return nil
}
