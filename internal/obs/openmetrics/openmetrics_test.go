package openmetrics

import (
	"math"
	"strings"
	"testing"
)

const goodDoc = `# HELP http_requests_total requests by "handler"
# TYPE http_requests_total counter
http_requests_total{handler="/metrics",code="200"} 1027 1712345678
http_requests_total{handler="/healthz"} 3
# TYPE temp_celsius gauge
temp_celsius -12.5
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.1"} 2
latency_seconds_bucket{le="1"} 5
latency_seconds_bucket{le="+Inf"} 6
latency_seconds_sum 3.75
latency_seconds_count 6
# EOF
`

func TestParseGoodDocument(t *testing.T) {
	e, err := Parse(strings.NewReader(goodDoc))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if !e.SawEOF {
		t.Fatal("SawEOF = false")
	}
	f := e.Family("http_requests_total")
	if f == nil || f.Type != "counter" || len(f.Samples) != 2 {
		t.Fatalf("counter family = %+v", f)
	}
	if f.Help != `requests by "handler"` {
		t.Fatalf("help = %q", f.Help)
	}
	s, ok := f.Sample("http_requests_total", "")
	if !ok || s.Value != 1027 || s.Labels["handler"] != "/metrics" || s.Labels["code"] != "200" {
		t.Fatalf("first sample = %+v ok=%v", s, ok)
	}
	h := e.Family("latency_seconds")
	if h == nil || len(h.Samples) != 5 {
		t.Fatalf("histogram family = %+v", h)
	}
	inf, ok := h.Sample("latency_seconds_bucket", "+Inf")
	if !ok || inf.Value != 6 || !math.IsInf(inf.Le(), +1) {
		t.Fatalf("+Inf bucket = %+v ok=%v le=%v", inf, ok, inf.Le())
	}
}

func TestParseEscapedLabels(t *testing.T) {
	doc := "# TYPE files gauge\n" +
		`files{path="C:\\temp\n",desc="say \"hi\""} 1` + "\n# EOF\n"
	e, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	s := e.Family("files").Samples[0]
	if s.Labels["path"] != "C:\\temp\n" {
		t.Fatalf("path = %q", s.Labels["path"])
	}
	if s.Labels["desc"] != `say "hi"` {
		t.Fatalf("desc = %q", s.Labels["desc"])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"after-eof", "# TYPE a gauge\na 1\n# EOF\nstray\n", "after # EOF"},
		{"no-type", "orphan_metric 1\n# EOF\n", "no TYPE"},
		{"dup-type", "# TYPE a gauge\n# TYPE a counter\na 1\n# EOF\n", "duplicate TYPE"},
		{"bad-comment", "# NOPE a gauge\n# EOF\n", "unknown comment"},
		{"bad-value", "# TYPE a gauge\na one\n# EOF\n", "bad value"},
		{"unterminated-labels", "# TYPE a gauge\na{x=\"y\" 1\n# EOF\n", "unterminated label set"},
		{"dup-label", "# TYPE a gauge\na{x=\"1\",x=\"2\"} 1\n# EOF\n", "duplicate label"},
		{"bad-escape", `# TYPE a gauge` + "\n" + `a{x="\q"} 1` + "\n# EOF\n", "bad escape"},
		{"bad-name", "# TYPE a gauge\n1a 1\n# EOF\n", "invalid metric name"},
		{"empty-label-name", "# TYPE a gauge\na{=\"v\"} 1\n# EOF\n", "empty label name"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(c.doc))
			if err == nil {
				t.Fatalf("Parse accepted %q", c.doc)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error = %v, want substring %q", err, c.want)
			}
		})
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"missing-eof", "# TYPE a gauge\na 1\n", "missing # EOF"},
		{"negative-counter", "# TYPE a counter\na_total -1\n# EOF\n", "invalid value"},
		{"no-total-suffix", "# TYPE a_total counter\na_total 1\n# TYPE b counter\nb 1\n# EOF\n", "lacks the _total suffix"},
		{"no-type", "# HELP a something\n# EOF\n", "has no TYPE"},
		{"hist-le-order", "# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n# EOF\n", "out of le order"},
		{"hist-cum-decrease", "# TYPE h histogram\nh_bucket{le=\"1\"} 3\nh_bucket{le=\"2\"} 2\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n# EOF\n", "cumulative counts decrease"},
		{"hist-no-inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n# EOF\n", `lacks an le="+Inf"`},
		{"hist-count-mismatch", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n# EOF\n", "_count"},
		{"hist-no-buckets", "# TYPE h histogram\nh_sum 1\nh_count 1\n# EOF\n", "no buckets"},
		{"empty-counter", "# TYPE c counter\n# EOF\n", "no samples"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			e, err := Parse(strings.NewReader(c.doc))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			verr := e.Validate()
			if verr == nil {
				t.Fatalf("Validate accepted %q", c.doc)
			}
			if !strings.Contains(verr.Error(), c.want) {
				t.Fatalf("error = %v, want substring %q", verr, c.want)
			}
		})
	}
}

func TestValidName(t *testing.T) {
	for name, want := range map[string]bool{
		"abc":       true,
		"a_b:c9":    true,
		"_private":  true,
		"9abc":      false,
		"":          false,
		"with-dash": false,
		"with.dot":  false,
	} {
		if got := ValidName(name); got != want {
			t.Errorf("ValidName(%q) = %v, want %v", name, got, want)
		}
	}
}
