package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// publishOnce guards the expvar publication of the Default registry:
// expvar.Publish panics on duplicate names, and tests may build several
// handlers.
var publishOnce sync.Once

// traceExporter renders a snapshot as a Chrome trace-event JSON
// document for the /trace endpoint. It lives here as a pluggable hook
// because the renderer (internal/obs/export) imports this package, so
// obs cannot import it back; export installs itself in its init.
var traceExporter atomic.Pointer[func(Snapshot) ([]byte, error)]

// SetTraceExporter installs the /trace renderer. The export package
// calls this from init; any program importing it gets the endpoint.
func SetTraceExporter(f func(Snapshot) ([]byte, error)) {
	traceExporter.Store(&f)
}

// NewHandler returns the observability HTTP handler:
//
//	/metrics/snapshot   JSON Snapshot of the registry
//	/trace              Chrome trace-event JSON of spans and events
//	                    (Perfetto-loadable; 501 unless obs/export is linked in)
//	/debug/vars         expvar (Go runtime memstats + the obs snapshot)
//	/debug/pprof/...    net/http/pprof profiling endpoints
//
// The handler is mounted on its own mux so importing this package never
// touches http.DefaultServeMux.
func NewHandler(r *Registry) http.Handler {
	if r == Default {
		publishOnce.Do(func() {
			expvar.Publish("obs", expvar.Func(func() any { return Default.Snapshot() }))
		})
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics/snapshot", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		f := traceExporter.Load()
		if f == nil {
			http.Error(w, "trace export unavailable: internal/obs/export not linked into this binary", http.StatusNotImplemented)
			return
		}
		data, err := (*f)(r.Snapshot())
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(data)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the observability server on addr (e.g. "localhost:6060";
// ":0" picks a free port) and returns the bound address and a shutdown
// function. The server runs until shutdown is called or the process
// exits; serving errors after a successful bind are dropped, as the
// endpoint is diagnostic.
func Serve(addr string, r *Registry) (bound string, shutdown func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: NewHandler(r)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
