package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// publishOnce guards the expvar publication of the Default registry:
// expvar.Publish panics on duplicate names, and tests may build several
// handlers.
var publishOnce sync.Once

// traceExporter renders a snapshot as a Chrome trace-event JSON
// document for the /trace endpoint. It lives here as a pluggable hook
// because the renderer (internal/obs/export) imports this package, so
// obs cannot import it back; export installs itself in its init.
var traceExporter atomic.Pointer[func(Snapshot) ([]byte, error)]

// SetTraceExporter installs the /trace renderer. The export package
// calls this from init; any program importing it gets the endpoint.
func SetTraceExporter(f func(Snapshot) ([]byte, error)) {
	traceExporter.Store(&f)
}

// getOnly wraps a read-only endpoint: non-GET/HEAD methods get 405 with
// an Allow header instead of silently executing.
func getOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed (read-only endpoint)", http.StatusMethodNotAllowed)
			return
		}
		h(w, req)
	}
}

// NewHandler returns the observability HTTP handler:
//
//	/metrics            OpenMetrics/Prometheus text exposition
//	/metrics/stream     SSE feed of JSON snapshots (?interval=500ms)
//	/metrics/snapshot   JSON Snapshot of the registry
//	/metrics/range      retained history: raw points or aggregate windows
//	                    (?series=a,b&window=10s&last=5m; catalog without
//	                    series; 501 unless a history recorder is running)
//	/metrics/query      history computations (?series=&fn=rate|quantile
//	                    &window=&q=; 501 unless recording)
//	/healthz            watch-rule verdict (200 ok / 503 with violations;
//	                    ?verbose=1 for the full JSON verdict list)
//	/trace              Chrome trace-event JSON of spans and events
//	                    (Perfetto-loadable; 501 unless obs/export is linked in)
//	/debug/vars         expvar (Go runtime memstats + the obs snapshot)
//	/debug/pprof/...    net/http/pprof profiling endpoints
//
// All registry endpoints are GET/HEAD-only (405 otherwise) and set
// explicit Content-Type headers. The handler is mounted on its own mux
// so importing this package never touches http.DefaultServeMux.
func NewHandler(r *Registry) http.Handler {
	if r == Default {
		publishOnce.Do(func() {
			expvar.Publish("obs", expvar.Func(func() any { return Default.Snapshot() }))
		})
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", getOnly(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", OpenMetricsContentType)
		_ = r.WriteOpenMetrics(w)
	}))
	mux.HandleFunc("/metrics/stream", getOnly(streamHandler(r)))
	mux.HandleFunc("/metrics/range", getOnly(historyRangeHandler(r)))
	mux.HandleFunc("/metrics/query", getOnly(historyQueryHandler(r)))
	mux.HandleFunc("/metrics/snapshot", getOnly(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	}))
	mux.HandleFunc("/healthz", getOnly(func(w http.ResponseWriter, req *http.Request) {
		verbose := req.URL.Query().Get("verbose") == "1"
		watcher := r.health.Load()
		if watcher == nil {
			if verbose {
				w.Header().Set("Content-Type", "application/json; charset=utf-8")
				fmt.Fprintln(w, `{"healthy": true, "verdicts": []}`)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(w, "ok (no watch rules installed)")
			return
		}
		verdicts := watcher.EvaluateVerdicts()
		failed := 0
		for _, v := range verdicts {
			if !v.OK {
				failed++
			}
		}
		if verbose {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			if failed > 0 {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(struct {
				Healthy  bool      `json:"healthy"`
				Verdicts []Verdict `json:"verdicts"`
			}{Healthy: failed == 0, Verdicts: verdicts})
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if failed == 0 {
			fmt.Fprintln(w, "ok")
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "unhealthy: %d rule(s) violated\n", failed)
		for _, v := range verdicts {
			if !v.OK {
				fmt.Fprintf(w, "  %s [%s]: %s\n", v.Rule, v.Window, v.Detail)
			}
		}
	}))
	mux.HandleFunc("/trace", getOnly(func(w http.ResponseWriter, req *http.Request) {
		f := traceExporter.Load()
		if f == nil {
			http.Error(w, "trace export unavailable: internal/obs/export not linked into this binary", http.StatusNotImplemented)
			return
		}
		data, err := (*f)(r.Snapshot())
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_, _ = w.Write(data)
	}))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ShutdownGrace bounds how long Serve's shutdown waits for in-flight
// handlers to drain before closing their connections.
const ShutdownGrace = 2 * time.Second

// Serve starts the observability server on addr (e.g. "localhost:6060";
// ":0" picks a free port) and returns the bound address and a shutdown
// function. The server runs until ctx is cancelled or shutdown is
// called — both drain gracefully: every request context (including the
// long-lived /metrics/stream feeds) is cancelled, in-flight handlers
// get ShutdownGrace to finish, then remaining connections are closed.
// Shutdown is idempotent and blocks until the drain completes, so the
// caller observes a fully released listener; serving errors after a
// successful bind are dropped, as the endpoint is diagnostic.
func Serve(ctx context.Context, addr string, r *Registry) (bound string, shutdown func(), err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	// baseCtx parents every request context: cancelling it unblocks the
	// SSE streams, which otherwise would hold graceful Shutdown forever.
	baseCtx, cancelRequests := context.WithCancel(context.WithoutCancel(ctx))
	srv := &http.Server{
		Handler:     NewHandler(r),
		BaseContext: func(net.Listener) context.Context { return baseCtx },
	}
	go func() { _ = srv.Serve(ln) }()

	var once sync.Once
	done := make(chan struct{})
	doShutdown := func() {
		once.Do(func() {
			cancelRequests()
			graceCtx, cancel := context.WithTimeout(context.Background(), ShutdownGrace)
			defer cancel()
			if err := srv.Shutdown(graceCtx); err != nil {
				_ = srv.Close()
			}
			close(done)
		})
		<-done
	}
	stop := context.AfterFunc(ctx, doShutdown)
	return ln.Addr().String(), func() { stop(); doShutdown() }, nil
}
