package obs

// Threshold-based health rules. A long sampling run degrades silently:
// the resilient sampling layer absorbs faults into gaps and retries,
// and nothing complains until the post-hoc analysis looks wrong. A
// Watcher turns the registry's own metrics into a live verdict — each
// rule inspects consecutive snapshots, violations are emitted as
// structured warn-level events (and through an optional callback, which
// the CLIs route into the olog facade), and the /healthz endpoint
// reports the current verdict for scripts and orchestrators.
//
// Like the stream counters, obs.watch.violations is registered lazily
// by Watch so non-watching processes keep their deterministic counter
// set unchanged.

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Violation is one failed health rule evaluation.
type Violation struct {
	// Rule is the failing rule's name.
	Rule string `json:"rule"`
	// Detail explains the failure with the observed and threshold values.
	Detail string `json:"detail"`
	// At is the evaluation time.
	At time.Time `json:"at"`
}

// Rule is one health predicate over the registry. Check receives the
// previous and current snapshot; on the first evaluation prev is the
// zero Snapshot and hasPrev is false, which rate-style rules use to
// withhold judgement until they have a window.
type Rule struct {
	// Name identifies the rule in events, logs, and /healthz output.
	Name string
	// Check returns ok=false and a human-readable detail on violation.
	Check func(prev, cur Snapshot, hasPrev bool) (ok bool, detail string)
}

// CounterRateRule fails when the named counter grows faster than
// maxPerSec, measured between consecutive evaluations (wall clock).
func CounterRateRule(name, counter string, maxPerSec float64) Rule {
	return Rule{Name: name, Check: func(prev, cur Snapshot, hasPrev bool) (bool, string) {
		if !hasPrev {
			return true, ""
		}
		dt := cur.TakenAt.Sub(prev.TakenAt).Seconds()
		if dt <= 0 {
			return true, ""
		}
		rate := float64(cur.Counter(counter)-prev.Counter(counter)) / dt
		if rate > maxPerSec {
			return false, fmt.Sprintf("%s rate %.1f/s exceeds %.1f/s", counter, rate, maxPerSec)
		}
		return true, ""
	}}
}

// RatioRule fails when num/den exceeds max (den==0 never fails).
func RatioRule(name, num, den string, max float64) Rule {
	return Rule{Name: name, Check: func(_, cur Snapshot, _ bool) (bool, string) {
		d := cur.Counter(den)
		if d == 0 {
			return true, ""
		}
		ratio := float64(cur.Counter(num)) / float64(d)
		if ratio > max {
			return false, fmt.Sprintf("%s/%s = %.3f exceeds %.3f", num, den, ratio, max)
		}
		return true, ""
	}}
}

// GaugeCeilingRule fails when the named gauge exceeds max.
func GaugeCeilingRule(name, gauge string, max float64) Rule {
	return Rule{Name: name, Check: func(_, cur Snapshot, _ bool) (bool, string) {
		if v := cur.Gauge(gauge); v > max {
			return false, fmt.Sprintf("%s = %g exceeds ceiling %g", gauge, v, max)
		}
		return true, ""
	}}
}

// DefaultHealthRules are the rules the CLIs install when serving obs
// endpoints: the sampling layer may absorb faults, but when more than
// half the recorded samples are gaps, or one sampler is stuck in a long
// consecutive-gap run, the run's figures are no longer trustworthy.
func DefaultHealthRules() []Rule {
	return []Rule{
		RatioRule("trace.gap_ratio", "trace.gaps_recorded", "trace.samples_recorded", 0.5),
		RatioRule("core.sampler.gap_ratio", "core.sampler.gaps", "core.sampler.samples", 0.5),
		GaugeCeilingRule("core.sampler.consecutive_gaps", "core.sampler.consecutive_gaps", 64),
		RatioRule("runner.shard_failures", "runner.shards_failed", "runner.shards", 0.25),
	}
}

// Watcher evaluates a rule set against the registry.
type Watcher struct {
	reg   *Registry
	rules []Rule

	mu          sync.Mutex
	prev        Snapshot
	hasPrev     bool
	last        []Violation
	onViolation func(Violation)
	violations  *Counter
}

// Watch installs a watcher on the registry and makes it the /healthz
// authority. Passing no rules installs DefaultHealthRules.
func (r *Registry) Watch(rules ...Rule) *Watcher {
	if len(rules) == 0 {
		rules = DefaultHealthRules()
	}
	w := &Watcher{
		reg:        r,
		rules:      rules,
		violations: r.Counter("obs.watch.violations"),
	}
	r.health.Store(w)
	return w
}

// Watch installs a watcher on the Default registry.
func Watch(rules ...Rule) *Watcher { return Default.Watch(rules...) }

// OnViolation sets a callback invoked for each violation as it is
// detected (the CLIs log it through olog at warn level).
func (w *Watcher) OnViolation(f func(Violation)) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.onViolation = f
}

// Evaluate snapshots the registry, runs every rule, records violations
// as warn events and through the callback, and returns them. The
// snapshot becomes the "previous" for the next evaluation's rate rules.
func (w *Watcher) Evaluate() []Violation {
	cur := w.reg.Snapshot()
	w.mu.Lock()
	prev, hasPrev, cb := w.prev, w.hasPrev, w.onViolation
	w.prev, w.hasPrev = cur, true
	w.mu.Unlock()

	var out []Violation
	for _, rule := range w.rules {
		ok, detail := rule.Check(prev, cur, hasPrev)
		if ok {
			continue
		}
		v := Violation{Rule: rule.Name, Detail: detail, At: cur.TakenAt}
		out = append(out, v)
		w.violations.Inc()
		w.reg.Eventf("WARN watch: %s: %s", v.Rule, v.Detail)
		if cb != nil {
			cb(v)
		}
	}
	w.mu.Lock()
	w.last = out
	w.mu.Unlock()
	return out
}

// Last returns the violations of the most recent evaluation.
func (w *Watcher) Last() []Violation {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]Violation(nil), w.last...)
}

// Run evaluates the rules every interval until ctx is done. It is the
// periodic mode the CLIs use while serving; /healthz also evaluates on
// demand, so Run is optional.
func (w *Watcher) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			w.Evaluate()
		}
	}
}
