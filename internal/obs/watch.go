package obs

// Threshold-based health rules. A long sampling run degrades silently:
// the resilient sampling layer absorbs faults into gaps and retries,
// and nothing complains until the post-hoc analysis looks wrong. A
// Watcher turns the registry's own metrics into a live verdict — each
// rule inspects the current snapshot (and, when a history recorder is
// running, the retained time series, so ratio rules judge the last N
// sampling windows instead of the whole process lifetime), violations
// are emitted as structured warn-level events (and through an optional
// callback, which the CLIs route into the olog facade), and the
// /healthz endpoint reports the current verdict for scripts and
// orchestrators (?verbose=1 for the full structured list).
//
// Windowed evaluation is what lets /healthz recover: a transient fault
// burst during a covert run pushes the recent-window gap ratio over
// threshold (503) and then ages out of the window (back to 200), where
// a cumulative ratio would have pinned the verdict unhealthy for the
// rest of the process.
//
// Like the stream counters, obs.watch.violations is registered lazily
// by Watch so non-watching processes keep their deterministic counter
// set unchanged.

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Violation is one failed health rule evaluation.
type Violation struct {
	// Rule is the failing rule's name.
	Rule string `json:"rule"`
	// Detail explains the failure with the observed and threshold values.
	Detail string `json:"detail"`
	// At is the evaluation time.
	At time.Time `json:"at"`
}

// Verdict is one rule's structured evaluation result, the schema behind
// /healthz?verbose=1.
type Verdict struct {
	// Rule is the rule's name.
	Rule string `json:"rule"`
	// OK reports whether the rule passed.
	OK bool `json:"ok"`
	// Window names the evaluation horizon: "10×1s" for a windowed rule
	// judging the last 10 one-second samples, "cumulative" for
	// process-lifetime totals, "instant" for point-in-time checks.
	Window string `json:"window"`
	// Observed and Threshold are the compared values.
	Observed  float64 `json:"observed"`
	Threshold float64 `json:"threshold"`
	// Detail is the human-readable explanation (set on failure).
	Detail string `json:"detail,omitempty"`
	// At is the evaluation time.
	At time.Time `json:"at"`
}

// EvalInput is what a rule sees: the previous and current snapshots
// (prev is zero and HasPrev false on the first evaluation) and the
// registry's history recorder when one is running (nil otherwise),
// which windowed rules use and others ignore.
type EvalInput struct {
	Prev    Snapshot
	Cur     Snapshot
	HasPrev bool
	History *Recorder
}

// Rule is one health predicate over the registry.
type Rule struct {
	// Name identifies the rule in events, logs, and /healthz output.
	Name string
	// Eval judges the input and returns a structured verdict; the
	// watcher fills Rule and At.
	Eval func(in EvalInput) Verdict
}

// fail formats a failing verdict.
func fail(window string, observed, threshold float64, format string, args ...any) Verdict {
	return Verdict{OK: false, Window: window, Observed: observed, Threshold: threshold, Detail: fmt.Sprintf(format, args...)}
}

func pass(window string, observed, threshold float64) Verdict {
	return Verdict{OK: true, Window: window, Observed: observed, Threshold: threshold}
}

// CounterRateRule fails when the named counter grows faster than
// maxPerSec, measured between consecutive evaluations (wall clock).
func CounterRateRule(name, counter string, maxPerSec float64) Rule {
	return Rule{Name: name, Eval: func(in EvalInput) Verdict {
		if !in.HasPrev {
			return pass("instant", 0, maxPerSec)
		}
		dt := in.Cur.TakenAt.Sub(in.Prev.TakenAt).Seconds()
		if dt <= 0 {
			return pass("instant", 0, maxPerSec)
		}
		rate := float64(in.Cur.Counter(counter)-in.Prev.Counter(counter)) / dt
		if rate > maxPerSec {
			return fail("instant", rate, maxPerSec, "%s rate %.1f/s exceeds %.1f/s", counter, rate, maxPerSec)
		}
		return pass("instant", rate, maxPerSec)
	}}
}

// RatioRule fails when cumulative num/den exceeds max (den==0 never
// fails). Prefer WindowedRatioRule for long-running processes — a
// cumulative ratio never forgets a transient burst.
func RatioRule(name, num, den string, max float64) Rule {
	return Rule{Name: name, Eval: func(in EvalInput) Verdict {
		return ratioVerdict("cumulative", float64(in.Cur.Counter(num)), float64(in.Cur.Counter(den)), num, den, max)
	}}
}

// DefaultHealthWindows is how many sampling intervals windowed default
// rules look back over.
const DefaultHealthWindows = 10

// WindowedRatioRule fails when num/den, measured over the last windows
// sampling intervals of the registry's history, exceeds max. Without a
// history recorder — or before it holds two points in the window — the
// rule falls back to the cumulative ratio, so health checks degrade
// gracefully rather than going silent; the verdict's Window field says
// which horizon judged ("10×1s" vs "cumulative").
func WindowedRatioRule(name, num, den string, max float64, windows int) Rule {
	if windows < 1 {
		windows = DefaultHealthWindows
	}
	return Rule{Name: name, Eval: func(in EvalInput) Verdict {
		if h := in.History; h != nil {
			dn, okN := h.WindowedCounterDelta(num, windows)
			dd, okD := h.WindowedCounterDelta(den, windows)
			if okN && okD {
				window := fmt.Sprintf("%d×%s", windows, h.Interval())
				return ratioVerdict(window, dn, dd, num, den, max)
			}
		}
		return ratioVerdict("cumulative", float64(in.Cur.Counter(num)), float64(in.Cur.Counter(den)), num, den, max)
	}}
}

func ratioVerdict(window string, num, den float64, numName, denName string, max float64) Verdict {
	if den == 0 {
		return pass(window, 0, max)
	}
	ratio := num / den
	if ratio > max {
		return fail(window, ratio, max, "%s/%s = %.3f exceeds %.3f over %s", numName, denName, ratio, max, window)
	}
	return pass(window, ratio, max)
}

// GaugeCeilingRule fails when the named gauge exceeds max.
func GaugeCeilingRule(name, gauge string, max float64) Rule {
	return Rule{Name: name, Eval: func(in EvalInput) Verdict {
		v := in.Cur.Gauge(gauge)
		if v > max {
			return fail("instant", v, max, "%s = %g exceeds ceiling %g", gauge, v, max)
		}
		return pass("instant", v, max)
	}}
}

// DefaultHealthRules are the rules the CLIs install when serving obs
// endpoints: the sampling layer may absorb faults, but when more than
// half the recorded samples are gaps, or one sampler is stuck in a long
// consecutive-gap run, the run's figures are no longer trustworthy. The
// ratio rules evaluate over the last DefaultHealthWindows sampling
// intervals when a history recorder is running (so /healthz recovers
// once a transient burst ages out) and over cumulative totals
// otherwise.
func DefaultHealthRules() []Rule {
	return []Rule{
		WindowedRatioRule("trace.gap_ratio", "trace.gaps_recorded", "trace.samples_recorded", 0.5, DefaultHealthWindows),
		WindowedRatioRule("core.sampler.gap_ratio", "core.sampler.gaps", "core.sampler.samples", 0.5, DefaultHealthWindows),
		GaugeCeilingRule("core.sampler.consecutive_gaps", "core.sampler.consecutive_gaps", 64),
		WindowedRatioRule("runner.shard_failures", "runner.shards_failed", "runner.shards", 0.25, DefaultHealthWindows),
	}
}

// Watcher evaluates a rule set against the registry.
type Watcher struct {
	reg   *Registry
	rules []Rule

	mu          sync.Mutex
	prev        Snapshot
	hasPrev     bool
	last        []Verdict
	onViolation func(Violation)
	violations  *Counter
}

// Watch installs a watcher on the registry and makes it the /healthz
// authority. Passing no rules installs DefaultHealthRules.
func (r *Registry) Watch(rules ...Rule) *Watcher {
	if len(rules) == 0 {
		rules = DefaultHealthRules()
	}
	w := &Watcher{
		reg:        r,
		rules:      rules,
		violations: r.Counter("obs.watch.violations"),
	}
	r.health.Store(w)
	return w
}

// Watch installs a watcher on the Default registry.
func Watch(rules ...Rule) *Watcher { return Default.Watch(rules...) }

// OnViolation sets a callback invoked for each violation as it is
// detected (the CLIs log it through olog at warn level).
func (w *Watcher) OnViolation(f func(Violation)) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.onViolation = f
}

// EvaluateVerdicts snapshots the registry, runs every rule, records
// violations as warn events and through the callback, and returns one
// verdict per rule (passing and failing). The snapshot becomes the
// "previous" for the next evaluation's rate rules.
func (w *Watcher) EvaluateVerdicts() []Verdict {
	cur := w.reg.Snapshot()
	w.mu.Lock()
	prev, hasPrev, cb := w.prev, w.hasPrev, w.onViolation
	w.prev, w.hasPrev = cur, true
	w.mu.Unlock()

	in := EvalInput{Prev: prev, Cur: cur, HasPrev: hasPrev, History: w.reg.History()}
	out := make([]Verdict, 0, len(w.rules))
	for _, rule := range w.rules {
		v := rule.Eval(in)
		v.Rule = rule.Name
		v.At = cur.TakenAt
		out = append(out, v)
		if v.OK {
			continue
		}
		viol := Violation{Rule: v.Rule, Detail: v.Detail, At: v.At}
		w.violations.Inc()
		w.reg.Eventf("WARN watch: %s: %s", viol.Rule, viol.Detail)
		if cb != nil {
			cb(viol)
		}
	}
	w.mu.Lock()
	w.last = out
	w.mu.Unlock()
	return out
}

// Evaluate runs EvaluateVerdicts and returns only the violations — the
// shape the CLIs and older callers consume.
func (w *Watcher) Evaluate() []Violation {
	return violationsOf(w.EvaluateVerdicts())
}

func violationsOf(vs []Verdict) []Violation {
	var out []Violation
	for _, v := range vs {
		if !v.OK {
			out = append(out, Violation{Rule: v.Rule, Detail: v.Detail, At: v.At})
		}
	}
	return out
}

// Last returns the violations of the most recent evaluation.
func (w *Watcher) Last() []Violation {
	w.mu.Lock()
	defer w.mu.Unlock()
	return violationsOf(w.last)
}

// LastVerdicts returns every verdict of the most recent evaluation.
func (w *Watcher) LastVerdicts() []Verdict {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]Verdict(nil), w.last...)
}

// Run evaluates the rules every interval until ctx is done. It is the
// periodic mode the CLIs use while serving; /healthz also evaluates on
// demand, so Run is optional.
func (w *Watcher) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			w.Evaluate()
		}
	}
}
