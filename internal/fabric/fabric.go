// Package fabric models the programmable logic (PL) of an ARM-FPGA SoC.
//
// A Fabric owns a device's resource budget (LUTs, flip-flops, DSP
// blocks, BRAM) and a grid of clock regions. Victim and sensor circuits
// are placed onto the fabric; each simulation tick the fabric steps every
// placed circuit, sums their switching activity, and converts it into
// dynamic current on the PL supply rail via a CMOS activity model.
//
// The fabric also tracks per-region activity so that placed sensor
// circuits (e.g. the ring oscillators of internal/ro) can observe a local
// droop component on top of the global rail voltage — the spatial
// -proximity effect the paper's RO baseline averages out by distributing
// oscillators across the die.
package fabric

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/power"
)

// Resources counts PL primitives.
type Resources struct {
	LUTs int
	FFs  int
	DSPs int
	// BRAMKb is block RAM capacity in kilobits.
	BRAMKb int
}

// Add returns the componentwise sum of r and s.
func (r Resources) Add(s Resources) Resources {
	return Resources{r.LUTs + s.LUTs, r.FFs + s.FFs, r.DSPs + s.DSPs, r.BRAMKb + s.BRAMKb}
}

// Fits reports whether r fits within budget b.
func (r Resources) Fits(b Resources) bool {
	return r.LUTs <= b.LUTs && r.FFs <= b.FFs && r.DSPs <= b.DSPs && r.BRAMKb <= b.BRAMKb
}

// String renders the resource vector compactly.
func (r Resources) String() string {
	return fmt.Sprintf("%d LUT / %d FF / %d DSP / %d Kb BRAM", r.LUTs, r.FFs, r.DSPs, r.BRAMKb)
}

// Device describes an FPGA part.
type Device struct {
	// Name of the part, e.g. "XCZU9EG" (the ZCU102's device).
	Name string
	// Total PL resources.
	Total Resources
	// ClockHz is the fabric clock the experiments run at.
	ClockHz float64
	// Rows and Cols define the clock-region grid.
	Rows, Cols int
}

// ZU9EG is the Zynq UltraScale+ device on the ZCU102 evaluation board,
// with the resource counts quoted in the paper's evaluation setup:
// 274,080 LUTs, 548,160 flip-flops, 2,520 DSP blocks, fabric at 300 MHz.
func ZU9EG() Device {
	return Device{
		Name:    "XCZU9EG",
		Total:   Resources{LUTs: 274080, FFs: 548160, DSPs: 2520, BRAMKb: 32100},
		ClockHz: 300e6,
		Rows:    6,
		Cols:    5,
	}
}

// Circuit is a piece of logic deployed on the fabric.
//
// Circuits are stepped by the fabric (not registered with the engine
// directly), so a circuit's ActiveElements is always current when the
// fabric aggregates activity within the same tick.
type Circuit interface {
	// CircuitName identifies the circuit.
	CircuitName() string
	// Utilization returns the PL resources the circuit occupies.
	Utilization() Resources
	// Step advances the circuit's internal state by one tick.
	Step(now, dt time.Duration)
	// ActiveElements returns the equivalent number of logic elements
	// actively toggling this tick. The fabric multiplies this by the
	// per-element switched capacitance to obtain dynamic current.
	ActiveElements() float64
}

// Region addresses one clock region on the grid.
type Region struct{ Row, Col int }

// placement records where a circuit sits.
type placement struct {
	circuit Circuit
	regions []Region
}

// Fabric is a device with circuits placed on it. It implements
// power.Source (attach it to the PL rail) and sim.Steppable.
type Fabric struct {
	dev    Device
	model  power.ActivityModel
	volts  func() float64
	placed []placement
	used   Resources

	current        float64
	totalActivity  float64
	regionActivity [][]float64 // last completed tick, visible to circuits
	regionScratch  [][]float64 // being accumulated this tick
}

// Config configures a Fabric.
type Config struct {
	// Device is the FPGA part. Required (non-empty name, positive totals).
	Device Device
	// CapPerElement is the effective switched capacitance per active
	// logic element, in farads.
	CapPerElement float64
	// Voltage returns the present PL rail voltage; usually rail.Voltage.
	// Required.
	Voltage func() float64
}

// New validates cfg and returns an empty fabric.
func New(cfg Config) (*Fabric, error) {
	d := cfg.Device
	if d.Name == "" {
		return nil, errors.New("fabric: device needs a name")
	}
	if d.Total.LUTs <= 0 || d.Total.FFs <= 0 {
		return nil, fmt.Errorf("fabric: device %s has no logic resources", d.Name)
	}
	if d.ClockHz <= 0 {
		return nil, fmt.Errorf("fabric: device %s has non-positive clock", d.Name)
	}
	if d.Rows <= 0 || d.Cols <= 0 {
		return nil, fmt.Errorf("fabric: device %s has empty region grid", d.Name)
	}
	if cfg.CapPerElement <= 0 {
		return nil, errors.New("fabric: non-positive per-element capacitance")
	}
	if cfg.Voltage == nil {
		return nil, errors.New("fabric: missing voltage probe")
	}
	f := &Fabric{
		dev:   d,
		model: power.ActivityModel{CapPerElement: cfg.CapPerElement, ClockHz: d.ClockHz},
		volts: cfg.Voltage,
	}
	f.regionActivity = make([][]float64, d.Rows)
	f.regionScratch = make([][]float64, d.Rows)
	for i := range f.regionActivity {
		f.regionActivity[i] = make([]float64, d.Cols)
		f.regionScratch[i] = make([]float64, d.Cols)
	}
	return f, nil
}

// Device returns the fabric's device description.
func (f *Fabric) Device() Device { return f.dev }

// Used returns the resources consumed by placed circuits.
func (f *Fabric) Used() Resources { return f.used }

// Free returns the remaining resources.
func (f *Fabric) Free() Resources {
	t := f.dev.Total
	u := f.used
	return Resources{t.LUTs - u.LUTs, t.FFs - u.FFs, t.DSPs - u.DSPs, t.BRAMKb - u.BRAMKb}
}

// SpreadEvenly is a Place helper meaning "occupy every clock region".
func (f *Fabric) SpreadEvenly() []Region {
	rs := make([]Region, 0, f.dev.Rows*f.dev.Cols)
	for r := 0; r < f.dev.Rows; r++ {
		for c := 0; c < f.dev.Cols; c++ {
			rs = append(rs, Region{r, c})
		}
	}
	return rs
}

// Place deploys a circuit onto the given regions. The circuit's
// utilization must fit in the remaining budget, mirroring a real
// place-and-route failing on an over-full device.
func (f *Fabric) Place(c Circuit, regions []Region) error {
	if c == nil {
		return errors.New("fabric: nil circuit")
	}
	if len(regions) == 0 {
		return fmt.Errorf("fabric: circuit %s placed on no regions", c.CircuitName())
	}
	for _, r := range regions {
		if r.Row < 0 || r.Row >= f.dev.Rows || r.Col < 0 || r.Col >= f.dev.Cols {
			return fmt.Errorf("fabric: region (%d,%d) outside %dx%d grid",
				r.Row, r.Col, f.dev.Rows, f.dev.Cols)
		}
	}
	for _, p := range f.placed {
		if p.circuit == c {
			return fmt.Errorf("fabric: circuit %s already placed", c.CircuitName())
		}
	}
	need := f.used.Add(c.Utilization())
	if !need.Fits(f.dev.Total) {
		return fmt.Errorf("fabric: circuit %s does not fit: need %v, device has %v",
			c.CircuitName(), need, f.dev.Total)
	}
	f.used = need
	f.placed = append(f.placed, placement{circuit: c, regions: append([]Region(nil), regions...)})
	return nil
}

// MustPlace is Place for static designs; it panics on error.
func (f *Fabric) MustPlace(c Circuit, regions []Region) {
	if err := f.Place(c, regions); err != nil {
		panic(err)
	}
}

// Circuits returns the number of placed circuits.
func (f *Fabric) Circuits() int { return len(f.placed) }

// Step implements sim.Steppable: advance every placed circuit, then
// recompute aggregate and per-region activity and the fabric's dynamic
// current at the present rail voltage.
//
// Per-region activity is double-buffered: while circuits step, their
// RegionActivity queries see the previous tick's completed map (a sensor
// circuit observing its electrical neighbourhood always sees settled
// state), and the map built this tick becomes visible at the end of Step.
func (f *Fabric) Step(now, dt time.Duration) {
	for i := range f.regionScratch {
		row := f.regionScratch[i]
		for j := range row {
			row[j] = 0
		}
	}
	total := 0.0
	for _, p := range f.placed {
		p.circuit.Step(now, dt)
		a := p.circuit.ActiveElements()
		total += a
		share := a / float64(len(p.regions))
		for _, r := range p.regions {
			f.regionScratch[r.Row][r.Col] += share
		}
	}
	f.regionActivity, f.regionScratch = f.regionScratch, f.regionActivity
	f.totalActivity = total
	f.current = f.model.CurrentFor(total, f.volts())
}

// SourceName implements power.Source.
func (f *Fabric) SourceName() string { return "fabric:" + f.dev.Name }

// Current implements power.Source: the PL dynamic current in amps.
func (f *Fabric) Current() float64 { return f.current }

// TotalActivity returns this tick's aggregate toggling-element count.
func (f *Fabric) TotalActivity() float64 { return f.totalActivity }

// RegionActivity returns this tick's activity in one clock region.
func (f *Fabric) RegionActivity(r Region) (float64, error) {
	if r.Row < 0 || r.Row >= f.dev.Rows || r.Col < 0 || r.Col >= f.dev.Cols {
		return 0, fmt.Errorf("fabric: region (%d,%d) outside grid", r.Row, r.Col)
	}
	return f.regionActivity[r.Row][r.Col], nil
}
