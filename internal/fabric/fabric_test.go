package fabric

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

// stubCircuit is a minimal Circuit for tests.
type stubCircuit struct {
	name   string
	util   Resources
	active float64
	steps  int
}

func (s *stubCircuit) CircuitName() string    { return s.name }
func (s *stubCircuit) Utilization() Resources { return s.util }
func (s *stubCircuit) Step(now, dt time.Duration) {
	s.steps++
}
func (s *stubCircuit) ActiveElements() float64 { return s.active }

func newTestFabric(t *testing.T) *Fabric {
	t.Helper()
	f, err := New(Config{
		Device:        ZU9EG(),
		CapPerElement: 1e-13,
		Voltage:       func() float64 { return 0.85 },
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return f
}

func TestResourcesArithmetic(t *testing.T) {
	a := Resources{1, 2, 3, 4}
	b := Resources{10, 20, 30, 40}
	sum := a.Add(b)
	if sum != (Resources{11, 22, 33, 44}) {
		t.Fatalf("Add = %+v", sum)
	}
	if !a.Fits(b) {
		t.Fatal("small should fit in large")
	}
	if b.Fits(a) {
		t.Fatal("large should not fit in small")
	}
	if a.String() == "" {
		t.Fatal("empty String")
	}
}

func TestZU9EGMatchesPaper(t *testing.T) {
	d := ZU9EG()
	if d.Total.LUTs != 274080 {
		t.Fatalf("LUTs = %d, want 274080", d.Total.LUTs)
	}
	if d.Total.FFs != 548160 {
		t.Fatalf("FFs = %d, want 548160", d.Total.FFs)
	}
	if d.Total.DSPs != 2520 {
		t.Fatalf("DSPs = %d, want 2520", d.Total.DSPs)
	}
	if d.ClockHz != 300e6 {
		t.Fatalf("ClockHz = %v, want 300e6", d.ClockHz)
	}
}

func TestNewValidation(t *testing.T) {
	good := Config{Device: ZU9EG(), CapPerElement: 1e-13, Voltage: func() float64 { return 1 }}
	cases := []func(Config) Config{
		func(c Config) Config { c.Device.Name = ""; return c },
		func(c Config) Config { c.Device.Total.LUTs = 0; return c },
		func(c Config) Config { c.Device.ClockHz = 0; return c },
		func(c Config) Config { c.Device.Rows = 0; return c },
		func(c Config) Config { c.CapPerElement = 0; return c },
		func(c Config) Config { c.Voltage = nil; return c },
	}
	for i, mutate := range cases {
		if _, err := New(mutate(good)); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := New(good); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
}

func TestPlaceAccounting(t *testing.T) {
	f := newTestFabric(t)
	c := &stubCircuit{name: "a", util: Resources{LUTs: 1000, FFs: 2000}}
	if err := f.Place(c, []Region{{0, 0}}); err != nil {
		t.Fatalf("Place: %v", err)
	}
	if f.Used().LUTs != 1000 || f.Used().FFs != 2000 {
		t.Fatalf("Used = %+v", f.Used())
	}
	free := f.Free()
	if free.LUTs != 274080-1000 {
		t.Fatalf("Free.LUTs = %d", free.LUTs)
	}
	if f.Circuits() != 1 {
		t.Fatalf("Circuits = %d", f.Circuits())
	}
}

func TestPlaceErrors(t *testing.T) {
	f := newTestFabric(t)
	if err := f.Place(nil, []Region{{0, 0}}); err == nil {
		t.Fatal("nil circuit accepted")
	}
	c := &stubCircuit{name: "a"}
	if err := f.Place(c, nil); err == nil {
		t.Fatal("empty region list accepted")
	}
	if err := f.Place(c, []Region{{99, 0}}); err == nil {
		t.Fatal("out-of-grid region accepted")
	}
	f.MustPlace(c, []Region{{0, 0}})
	if err := f.Place(c, []Region{{0, 1}}); err == nil {
		t.Fatal("double placement accepted")
	}
	huge := &stubCircuit{name: "huge", util: Resources{LUTs: 999999999}}
	if err := f.Place(huge, []Region{{0, 0}}); err == nil {
		t.Fatal("oversized circuit accepted")
	}
}

func TestMustPlacePanics(t *testing.T) {
	f := newTestFabric(t)
	defer func() {
		if recover() == nil {
			t.Fatal("MustPlace(nil) did not panic")
		}
	}()
	f.MustPlace(nil, []Region{{0, 0}})
}

func TestStepAggregatesActivityAndCurrent(t *testing.T) {
	f := newTestFabric(t)
	a := &stubCircuit{name: "a", active: 1000}
	b := &stubCircuit{name: "b", active: 500}
	f.MustPlace(a, []Region{{0, 0}})
	f.MustPlace(b, []Region{{1, 1}, {1, 2}})
	f.Step(0, time.Millisecond)
	if a.steps != 1 || b.steps != 1 {
		t.Fatal("circuits not stepped")
	}
	if f.TotalActivity() != 1500 {
		t.Fatalf("TotalActivity = %v", f.TotalActivity())
	}
	// I = C*f*V*n = 1e-13 * 3e8 * 0.85 * 1500
	want := 1e-13 * 3e8 * 0.85 * 1500
	if math.Abs(f.Current()-want) > 1e-12 {
		t.Fatalf("Current = %v, want %v", f.Current(), want)
	}
	// Region activity: a fully in (0,0); b split between (1,1) and (1,2).
	got, err := f.RegionActivity(Region{0, 0})
	if err != nil || got != 1000 {
		t.Fatalf("region (0,0) = %v, %v", got, err)
	}
	got, _ = f.RegionActivity(Region{1, 1})
	if got != 250 {
		t.Fatalf("region (1,1) = %v, want 250", got)
	}
	if _, err := f.RegionActivity(Region{-1, 0}); err == nil {
		t.Fatal("out-of-grid RegionActivity accepted")
	}
}

func TestRegionActivityResetsEachTick(t *testing.T) {
	f := newTestFabric(t)
	c := &stubCircuit{name: "a", active: 100}
	f.MustPlace(c, []Region{{0, 0}})
	f.Step(0, time.Millisecond)
	c.active = 0
	f.Step(0, time.Millisecond)
	got, _ := f.RegionActivity(Region{0, 0})
	if got != 0 {
		t.Fatalf("stale region activity %v", got)
	}
	if f.Current() != 0 {
		t.Fatalf("stale current %v", f.Current())
	}
}

func TestSpreadEvenly(t *testing.T) {
	f := newTestFabric(t)
	rs := f.SpreadEvenly()
	if len(rs) != f.Device().Rows*f.Device().Cols {
		t.Fatalf("SpreadEvenly len = %d", len(rs))
	}
	seen := map[Region]bool{}
	for _, r := range rs {
		if seen[r] {
			t.Fatalf("duplicate region %+v", r)
		}
		seen[r] = true
	}
}

func TestSourceName(t *testing.T) {
	f := newTestFabric(t)
	if f.SourceName() != "fabric:XCZU9EG" {
		t.Fatalf("SourceName = %q", f.SourceName())
	}
}

// Property: total regional activity equals total activity (conservation),
// for any split of circuits over regions.
func TestActivityConservationProperty(t *testing.T) {
	f := func(n uint8, spread uint8) bool {
		fb, err := New(Config{
			Device:        ZU9EG(),
			CapPerElement: 1e-13,
			Voltage:       func() float64 { return 0.85 },
		})
		if err != nil {
			return false
		}
		regions := fb.SpreadEvenly()
		k := int(spread)%len(regions) + 1
		c := &stubCircuit{name: "c", active: float64(n)}
		if err := fb.Place(c, regions[:k]); err != nil {
			return false
		}
		fb.Step(0, time.Millisecond)
		sum := 0.0
		for _, r := range regions {
			a, err := fb.RegionActivity(r)
			if err != nil {
				return false
			}
			sum += a
		}
		return math.Abs(sum-fb.TotalActivity()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
