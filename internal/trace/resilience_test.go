package trace

import (
	"errors"
	"io/fs"
	"testing"
	"time"
)

// The recorder's resilient mode: with a RetryPolicy installed, probe
// failures retry with backoff in recorded time, unrecoverable samples
// become NaN gaps, and only fatal errors (or a dead channel) stick.

const resInterval = time.Millisecond

// drive steps the recorder like the sim engine would, dt = interval/10.
func drive(r *Recorder, d time.Duration) {
	dt := resInterval / 10
	for now := dt; now <= d; now += dt {
		r.Step(now, dt)
	}
}

func alwaysTransient(error) bool { return true }

func TestRecorderRetriesTransientFailures(t *testing.T) {
	calls := 0
	probe := func() (float64, error) {
		calls++
		if calls == 1 {
			return 0, errors.New("EAGAIN")
		}
		return float64(calls), nil
	}
	r, err := NewRecorder(resInterval, probe)
	if err != nil {
		t.Fatal(err)
	}
	r.SetPolicy(&RetryPolicy{
		MaxAttempts: 4,
		BaseBackoff: resInterval / 10,
		Transient:   alwaysTransient,
	})
	drive(r, 5*resInterval)
	tr, err := r.Trace()
	if err != nil {
		t.Fatalf("sticky error after recoverable failure: %v", err)
	}
	if tr.Gaps() != 0 {
		t.Errorf("%d gaps recorded, want 0 (the retry should have recovered)", tr.Gaps())
	}
	if len(tr.Samples) == 0 {
		t.Fatal("no samples recorded")
	}
}

func TestRecorderExhaustedRetriesBecomeGap(t *testing.T) {
	fail := true
	probe := func() (float64, error) {
		if fail {
			return 0, errors.New("EIO")
		}
		return 1, nil
	}
	r, err := NewRecorder(resInterval, probe)
	if err != nil {
		t.Fatal(err)
	}
	var retries, gaps int
	r.SetPolicy(&RetryPolicy{
		MaxAttempts: 3,
		BaseBackoff: resInterval / 10,
		Transient:   alwaysTransient,
		OnRetry:     func() { retries++ },
		OnGap:       func() { gaps++ },
	})
	drive(r, 2*resInterval)
	fail = false
	drive(r, 4*resInterval) // note: drive restarts `now` at dt; state carries over
	tr, err := r.Trace()
	if err != nil {
		t.Fatalf("sticky error: %v", err)
	}
	if tr.Gaps() == 0 {
		t.Error("no gap recorded for the exhausted sample")
	}
	if gaps != tr.Gaps() {
		t.Errorf("OnGap fired %d times for %d gaps", gaps, tr.Gaps())
	}
	if retries == 0 {
		t.Error("OnRetry never fired")
	}
	// Recovery: finite samples resumed after the failing stretch.
	if len(tr.Finite()) == 0 {
		t.Error("no finite samples after the probe recovered")
	}
}

func TestRecorderFatalErrorSticksWithPolicy(t *testing.T) {
	fatal := errors.New("permission denied")
	r, err := NewRecorder(resInterval, func() (float64, error) { return 0, fatal })
	if err != nil {
		t.Fatal(err)
	}
	r.SetPolicy(&RetryPolicy{
		MaxAttempts: 4,
		BaseBackoff: resInterval / 10,
		Transient:   func(err error) bool { return err.Error() == "EAGAIN" },
	})
	drive(r, 3*resInterval)
	if _, err := r.Trace(); !errors.Is(err, fatal) {
		t.Fatalf("sticky error = %v, want the fatal probe error", err)
	}
}

func TestRecorderNilPolicyKeepsLegacyStickyBehaviour(t *testing.T) {
	calls := 0
	boom := errors.New("boom")
	r, err := NewRecorder(resInterval, func() (float64, error) {
		calls++
		if calls > 2 {
			return 0, boom
		}
		return 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	drive(r, 10*resInterval)
	tr, err := r.Trace()
	if !errors.Is(err, boom) {
		t.Fatalf("sticky error = %v, want boom", err)
	}
	if len(tr.Samples) != 2 || calls != 3 {
		t.Errorf("recorded %d samples over %d calls; legacy mode must stop at the first error", len(tr.Samples), calls)
	}
}

func TestRecorderResolveRecoversFromHotplug(t *testing.T) {
	gone := true
	r, err := NewRecorder(resInterval, func() (float64, error) { return 0, fs.ErrNotExist })
	if err != nil {
		t.Fatal(err)
	}
	resolves := 0
	r.SetPolicy(&RetryPolicy{
		MaxAttempts: 4,
		BaseBackoff: resInterval / 10,
		Transient:   func(error) bool { return false },
		Resolve: func() (func() (float64, error), error) {
			resolves++
			gone = false
			return func() (float64, error) { return 42, nil }, nil
		},
	})
	drive(r, 3*resInterval)
	tr, err := r.Trace()
	if err != nil {
		t.Fatalf("sticky error after re-resolution: %v", err)
	}
	if resolves == 0 {
		t.Fatal("Resolve never called for ErrNotExist")
	}
	if gone {
		t.Error("probe not replaced")
	}
	finite := tr.Finite()
	if len(finite) == 0 || finite[0] != 42 {
		t.Errorf("resolved probe's samples missing: %v", tr.Samples)
	}
}

func TestRecorderConsecutiveGapLimit(t *testing.T) {
	r, err := NewRecorder(resInterval, func() (float64, error) { return 0, errors.New("EIO") })
	if err != nil {
		t.Fatal(err)
	}
	r.SetPolicy(&RetryPolicy{
		MaxAttempts:        1, // every sample becomes a gap immediately
		BaseBackoff:        resInterval / 10,
		MaxConsecutiveGaps: 3,
		Transient:          alwaysTransient,
	})
	drive(r, 20*resInterval)
	tr, err := r.Trace()
	if !errors.Is(err, ErrChannelDead) {
		t.Fatalf("sticky error = %v, want ErrChannelDead", err)
	}
	// The limit fires on gap 4; the recording must not have run on
	// gathering gaps forever.
	if got := tr.Gaps(); got != 4 {
		t.Errorf("recorded %d gaps before declaring the channel dead, want 4", got)
	}
}

func TestRecorderDropoutBurstRecordsGapsWithoutProbing(t *testing.T) {
	calls := 0
	r, err := NewRecorder(resInterval, func() (float64, error) { calls++; return 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	r.SetPolicy(&RetryPolicy{Transient: alwaysTransient})
	r.SetFaults(&stubFaults{dropouts: []int{3}})
	drive(r, 6*resInterval)
	tr, err := r.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Gaps(); got != 3 {
		t.Errorf("dropout burst recorded %d gaps, want 3", got)
	}
	if want := len(tr.Samples) - 3; calls != want {
		t.Errorf("probe called %d times for %d live samples", calls, want)
	}
}

func TestRecorderJitterDelaysSubsequentSamples(t *testing.T) {
	mk := func(jitter time.Duration) int {
		r, err := NewRecorder(resInterval, func() (float64, error) { return 1, nil })
		if err != nil {
			t.Fatal(err)
		}
		r.SetPolicy(&RetryPolicy{Transient: alwaysTransient})
		var jit []time.Duration
		for i := 0; i < 100; i++ {
			jit = append(jit, jitter)
		}
		r.SetFaults(&stubFaults{jitters: jit})
		drive(r, 20*resInterval)
		tr, err := r.Trace()
		if err != nil {
			t.Fatal(err)
		}
		return len(tr.Samples)
	}
	clean := mk(0)
	jittered := mk(resInterval / 2)
	if jittered >= clean {
		t.Errorf("persistent jitter did not reduce the sample count: %d vs %d", jittered, clean)
	}
}

func TestRecorderResetClearsRetryState(t *testing.T) {
	r, err := NewRecorder(resInterval, func() (float64, error) { return 0, errors.New("EIO") })
	if err != nil {
		t.Fatal(err)
	}
	r.SetPolicy(&RetryPolicy{MaxAttempts: 8, BaseBackoff: resInterval, Transient: alwaysTransient,
		SampleDeadline: 100 * resInterval})
	drive(r, 2*resInterval) // leaves a retry pending
	r.Reset()
	tr, err := r.Trace()
	if err != nil || len(tr.Samples) != 0 {
		t.Fatalf("reset left state behind: %d samples, err %v", len(tr.Samples), err)
	}
	drive(r, resInterval/2) // less than one interval: nothing due
	if tr, _ := r.Trace(); len(tr.Samples) != 0 {
		t.Errorf("pending retry survived Reset: %v", tr.Samples)
	}
}

// stubFaults scripts dropout/jitter decisions per due sample.
type stubFaults struct {
	dropouts []int
	jitters  []time.Duration
}

func (f *stubFaults) DropoutLen() int {
	if len(f.dropouts) == 0 {
		return 0
	}
	n := f.dropouts[0]
	f.dropouts = f.dropouts[1:]
	return n
}

func (f *stubFaults) JitterDelay(time.Duration) time.Duration {
	if len(f.jitters) == 0 {
		return 0
	}
	d := f.jitters[0]
	f.jitters = f.jitters[1:]
	return d
}
