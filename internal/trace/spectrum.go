package trace

import (
	"errors"
	"math"
)

// Spectrum returns the magnitudes of the first bins DFT coefficients of
// the trace (excluding DC), computed with Goertzel's algorithm. The
// inference loop of a DPU victim is periodic at the query rate, so the
// low-frequency spectrum is a compact fingerprint of a model's period
// structure — an alternative feature set to raw resampling that is
// invariant to where in the loop the capture started.
//
// NaN gaps are replaced by the finite-sample mean, so a lost sample
// contributes nothing after mean removal but keeps the time base (and
// thus the bin frequencies) intact. An all-gap trace yields an all-zero
// spectrum.
func (t *Trace) Spectrum(bins int) ([]float64, error) {
	if bins <= 0 {
		return nil, errors.New("trace: non-positive spectrum bins")
	}
	n := len(t.Samples)
	if n < 2 {
		return nil, errors.New("trace: need at least two samples for a spectrum")
	}
	// Remove the mean so amplitude offsets (static current) do not mask
	// the periodic structure. Only finite samples inform the mean.
	mean, finite := 0.0, 0
	for _, s := range t.Samples {
		if !IsGap(s) {
			mean += s
			finite++
		}
	}
	if finite > 0 {
		mean /= float64(finite)
	}

	out := make([]float64, bins)
	for k := 1; k <= bins; k++ {
		// Goertzel recurrence for coefficient k (of an n-point DFT).
		w := 2 * math.Pi * float64(k) / float64(n)
		coeff := 2 * math.Cos(w)
		var s0, s1, s2 float64
		for _, x := range t.Samples {
			if IsGap(x) {
				x = mean // a gap contributes zero after mean removal
			}
			s0 = (x - mean) + coeff*s1 - s2
			s2 = s1
			s1 = s0
		}
		re := s1 - s2*math.Cos(w)
		im := s2 * math.Sin(w)
		out[k-1] = math.Sqrt(re*re+im*im) * 2 / float64(n)
	}
	return out, nil
}

// DominantPeriod estimates the victim's loop period from the strongest
// of the first maxBins spectral coefficients. It returns zero when the
// trace has no periodic structure above the noise floor (peak below
// floorRatio × mean magnitude).
func (t *Trace) DominantPeriod(maxBins int, floorRatio float64) (periodSamples float64, ok bool, err error) {
	mags, err := t.Spectrum(maxBins)
	if err != nil {
		return 0, false, err
	}
	best, bestMag, sum := 0, 0.0, 0.0
	for i, m := range mags {
		sum += m
		if m > bestMag {
			best, bestMag = i+1, m
		}
	}
	mean := sum / float64(len(mags))
	// best == 0 means every magnitude was zero or NaN (a constant or
	// corrupt trace); non-finite magnitudes would also defeat the floor
	// comparison below. Both cases are "no periodic structure", never a
	// division by bin zero.
	if best == 0 || mean == 0 || math.IsNaN(mean) || math.IsInf(mean, 0) ||
		math.IsInf(bestMag, 0) || bestMag < floorRatio*mean {
		return 0, false, nil
	}
	return float64(len(t.Samples)) / float64(best), true, nil
}
