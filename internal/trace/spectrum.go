package trace

import (
	"errors"
	"math"
)

// Spectrum returns the magnitudes of the first bins DFT coefficients of
// the trace (excluding DC). The inference loop of a DPU victim is
// periodic at the query rate, so the low-frequency spectrum is a
// compact fingerprint of a model's period structure — an alternative
// feature set to raw resampling that is invariant to where in the loop
// the capture started.
//
// The transform is an iterative radix-2 FFT (Bluestein chirp-z for
// non-power-of-two lengths), so the cost is O(n log n) regardless of
// bins; SpectrumGoertzel keeps the original O(n·bins) per-bin recurrence
// as a reference implementation and the two agree to well below 1e-9.
//
// bins is clamped to n/2 (the Nyquist limit): for real input the
// coefficients above n/2 are mirror images of those below, so the old
// behaviour of returning them as extra "features" silently duplicated
// low bins and let an alias win DominantPeriod's peak search. The
// returned slice may therefore be shorter than requested; it is always
// freshly allocated (never aliased to internal scratch), so callers may
// retain or mutate it freely.
//
// NaN gaps are replaced by the finite-sample mean, so a lost sample
// contributes nothing after mean removal but keeps the time base (and
// thus the bin frequencies) intact. An all-gap trace yields an all-zero
// spectrum.
func (t *Trace) Spectrum(bins int) ([]float64, error) {
	bins, mean, finite, err := t.spectrumSetup(bins)
	if err != nil {
		return nil, err
	}
	out := make([]float64, bins)
	if finite == 0 {
		return out, nil // all-gap trace: nothing periodic to report
	}
	spectrumFFT(t.Samples, mean, out)
	return out, nil
}

// SpectrumGoertzel computes the same one-sided magnitudes as Spectrum
// using the original per-bin Goertzel recurrence. It is O(n·bins) and
// exists as the independent reference implementation for differential
// property tests and the benchtab spectrum micro-benchmark; production
// callers should use Spectrum.
func (t *Trace) SpectrumGoertzel(bins int) ([]float64, error) {
	bins, mean, finite, err := t.spectrumSetup(bins)
	if err != nil {
		return nil, err
	}
	n := len(t.Samples)
	out := make([]float64, bins)
	if finite == 0 {
		return out, nil
	}
	for k := 1; k <= bins; k++ {
		// Goertzel recurrence for coefficient k (of an n-point DFT).
		w := 2 * math.Pi * float64(k) / float64(n)
		coeff := 2 * math.Cos(w)
		var s0, s1, s2 float64
		for _, x := range t.Samples {
			if IsGap(x) {
				x = mean // a gap contributes zero after mean removal
			}
			s0 = (x - mean) + coeff*s1 - s2
			s2 = s1
			s1 = s0
		}
		re := s1 - s2*math.Cos(w)
		im := s2 * math.Sin(w)
		out[k-1] = math.Sqrt(re*re+im*im) * 2 / float64(n)
	}
	return out, nil
}

// spectrumSetup validates arguments, clamps bins to the Nyquist limit,
// and computes the finite-sample mean shared by both spectrum
// implementations.
func (t *Trace) spectrumSetup(bins int) (clamped int, mean float64, finite int, err error) {
	if bins <= 0 {
		return 0, 0, 0, errors.New("trace: non-positive spectrum bins")
	}
	n := len(t.Samples)
	if n < 2 {
		return 0, 0, 0, errors.New("trace: need at least two samples for a spectrum")
	}
	if bins > n/2 {
		bins = n / 2
	}
	// Remove the mean so amplitude offsets (static current) do not mask
	// the periodic structure. Only finite samples inform the mean.
	for _, s := range t.Samples {
		if !IsGap(s) {
			mean += s
			finite++
		}
	}
	if finite > 0 {
		mean /= float64(finite)
	}
	return bins, mean, finite, nil
}

// DominantPeriod estimates the victim's loop period from the strongest
// of the first maxBins spectral coefficients (maxBins is clamped to the
// Nyquist limit n/2, matching Spectrum — aliased mirror bins can no
// longer win the peak search). It returns zero when the trace has no
// periodic structure above the noise floor.
//
// The noise floor is the mean magnitude of the non-peak bins: including
// the peak itself (as earlier versions did) inflated the floor by
// peak/maxBins and suppressed real detections at small maxBins. With a
// single bin there are no non-peak bins; any nonzero peak is then
// trivially dominant.
func (t *Trace) DominantPeriod(maxBins int, floorRatio float64) (periodSamples float64, ok bool, err error) {
	mags, err := t.Spectrum(maxBins)
	if err != nil {
		return 0, false, err
	}
	best, bestMag, sum := 0, 0.0, 0.0
	for i, m := range mags {
		sum += m
		if m > bestMag {
			best, bestMag = i+1, m
		}
	}
	// best == 0 means every magnitude was zero or NaN (a constant or
	// corrupt trace); non-finite magnitudes would also defeat the floor
	// comparison below. Both cases are "no periodic structure", never a
	// division by bin zero.
	if best == 0 || math.IsInf(bestMag, 0) {
		return 0, false, nil
	}
	floor := 0.0
	if len(mags) > 1 {
		floor = (sum - bestMag) / float64(len(mags)-1)
	}
	if math.IsNaN(floor) || math.IsInf(floor, 0) ||
		(floor > 0 && bestMag < floorRatio*floor) {
		return 0, false, nil
	}
	return float64(len(t.Samples)) / float64(best), true, nil
}
