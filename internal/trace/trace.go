// Package trace implements side-channel trace acquisition: an in-
// simulation recorder that polls a measurement source at a fixed rate
// (the attacker's sampling loop pinned to CPU core 3 in the paper), and
// a trace container with the windowing and resampling operations the
// fingerprinting pipeline needs.
package trace

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/sysfs"
)

// Trace is a uniformly sampled measurement series.
type Trace struct {
	// Interval between samples.
	Interval time.Duration
	// Samples in acquisition order, in the source's physical unit.
	Samples []float64
}

// Duration returns the time span covered by the trace.
func (t *Trace) Duration() time.Duration {
	return time.Duration(len(t.Samples)) * t.Interval
}

// Prefix returns a view of the first d worth of samples (the duration
// sweep of Table III uses 1 s..5 s prefixes of the same capture). The
// returned trace shares backing storage with t.
func (t *Trace) Prefix(d time.Duration) (*Trace, error) {
	if t.Interval <= 0 {
		return nil, errors.New("trace: non-positive interval")
	}
	n := int(d / t.Interval)
	if n < 0 || n > len(t.Samples) {
		return nil, fmt.Errorf("trace: prefix %v outside captured %v", d, t.Duration())
	}
	return &Trace{Interval: t.Interval, Samples: t.Samples[:n]}, nil
}

// Resample average-pools the trace into exactly n bins, the fixed-width
// representation fed to the classifier. Each bin is the mean of the
// samples mapped into it.
func (t *Trace) Resample(n int) ([]float64, error) {
	if n <= 0 {
		return nil, errors.New("trace: non-positive bin count")
	}
	if len(t.Samples) == 0 {
		return nil, errors.New("trace: empty trace")
	}
	out := make([]float64, n)
	counts := make([]int, n)
	for i, s := range t.Samples {
		bin := i * n / len(t.Samples)
		out[bin] += s
		counts[bin]++
	}
	for i := range out {
		if counts[i] > 0 {
			out[i] /= float64(counts[i])
		} else {
			// More bins than samples: carry the previous bin forward so
			// the vector stays piecewise constant instead of dropping to 0.
			if i > 0 {
				out[i] = out[i-1]
			}
		}
	}
	return out, nil
}

// Recorder polls a probe at a fixed rate while the simulation runs.
// Register it with the engine after every hardware component, so each
// poll observes that tick's settled sysfs state.
type Recorder struct {
	interval time.Duration
	probe    func() (float64, error)
	trace    *Trace
	elapsed  time.Duration
	err      error
}

// NewRecorder returns a recorder polling probe every interval.
func NewRecorder(interval time.Duration, probe func() (float64, error)) (*Recorder, error) {
	if interval <= 0 {
		return nil, errors.New("trace: non-positive sampling interval")
	}
	if probe == nil {
		return nil, errors.New("trace: nil probe")
	}
	return &Recorder{
		interval: interval,
		probe:    probe,
		trace:    &Trace{Interval: interval},
	}, nil
}

// Step implements sim.Steppable.
func (r *Recorder) Step(now, dt time.Duration) {
	if r.err != nil {
		return
	}
	r.elapsed += dt
	for r.elapsed >= r.interval {
		r.elapsed -= r.interval
		v, err := r.probe()
		if err != nil {
			r.err = err
			return
		}
		r.trace.Samples = append(r.trace.Samples, v)
	}
}

// Trace returns the recorded trace and any probe error. A probe error
// (e.g. fs.ErrPermission after the mitigation is applied) stops the
// recording at the failing sample.
func (r *Recorder) Trace() (*Trace, error) { return r.trace, r.err }

// Reset discards recorded samples, keeping the configuration; used
// between victim runs.
func (r *Recorder) Reset() {
	r.trace = &Trace{Interval: r.interval}
	r.elapsed = 0
	r.err = nil
}

// SysfsProbe builds a probe that reads an integer hwmon attribute as the
// given credential and scales it into base units (scale 1e-3 for the mA
// and mV attributes, 1e-6 for µW). This is the attacker's actual access
// path: an unprivileged file read.
func SysfsProbe(fsys *sysfs.FS, cred sysfs.Cred, path string, scale float64) func() (float64, error) {
	return func() (float64, error) {
		raw, err := fsys.ReadFile(cred, path)
		if err != nil {
			return 0, err
		}
		v, err := strconv.ParseInt(strings.TrimSpace(raw), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("trace: parse %s: %w", path, err)
		}
		return float64(v) * scale, nil
	}
}
