// Package trace implements side-channel trace acquisition: an in-
// simulation recorder that polls a measurement source at a fixed rate
// (the attacker's sampling loop pinned to CPU core 3 in the paper), and
// a trace container with the windowing and resampling operations the
// fingerprinting pipeline needs.
//
// The recorder is built for a hostile sensor stack: with a RetryPolicy
// installed it retries transient read failures with capped exponential
// backoff in simulated time, re-resolves its probe after hotplug
// renumber events, and records unrecoverable samples as NaN gaps
// instead of aborting the capture. Downstream consumers (Resample,
// Spectrum, the feature extractor) treat NaN samples as missing data.
package trace

import (
	"errors"
	"fmt"
	"io/fs"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/sysfs"
)

// Acquisition volume counters, shared by every recorder in the process.
// Both are deterministic for a fixed seed and config: gaps come from the
// seeded fault engine, not from wall-clock scheduling.
var (
	ctrSamples = obs.C("trace.samples_recorded")
	ctrGaps    = obs.C("trace.gaps_recorded")
)

// Gap is the in-trace representation of a lost sample.
var Gap = math.NaN()

// IsGap reports whether a sample is a lost-sample marker.
func IsGap(v float64) bool { return math.IsNaN(v) }

// Trace is a uniformly sampled measurement series. Lost samples are
// recorded as NaN so the time base stays uniform across gaps.
type Trace struct {
	// Interval between samples.
	Interval time.Duration
	// Samples in acquisition order, in the source's physical unit.
	Samples []float64
}

// Duration returns the time span covered by the trace.
func (t *Trace) Duration() time.Duration {
	return time.Duration(len(t.Samples)) * t.Interval
}

// Gaps returns the number of lost (NaN) samples.
func (t *Trace) Gaps() int {
	n := 0
	for _, s := range t.Samples {
		if IsGap(s) {
			n++
		}
	}
	return n
}

// Finite returns the samples with gaps removed. The result may share
// backing storage with t when the trace has no gaps.
func (t *Trace) Finite() []float64 {
	if t.Gaps() == 0 {
		return t.Samples
	}
	out := make([]float64, 0, len(t.Samples))
	for _, s := range t.Samples {
		if !IsGap(s) {
			out = append(out, s)
		}
	}
	return out
}

// PadGaps extends the trace with NaN gaps until it holds at least n
// samples — used when a jittered capture undershoots its nominal
// sample budget, so fixed-width consumers still get their window.
func (t *Trace) PadGaps(n int) {
	for len(t.Samples) < n {
		t.Samples = append(t.Samples, Gap)
	}
}

// Prefix returns a view of the first d worth of samples (the duration
// sweep of Table III uses 1 s..5 s prefixes of the same capture). The
// returned trace shares backing storage with t.
func (t *Trace) Prefix(d time.Duration) (*Trace, error) {
	if t.Interval <= 0 {
		return nil, errors.New("trace: non-positive interval")
	}
	n := int(d / t.Interval)
	if n < 0 || n > len(t.Samples) {
		return nil, fmt.Errorf("trace: prefix %v outside captured %v", d, t.Duration())
	}
	return &Trace{Interval: t.Interval, Samples: t.Samples[:n]}, nil
}

// countsPool recycles the per-bin hit-count scratch used by
// ResampleInto. The counts never leave the function, so pooling them is
// safe; the output vector itself is caller-owned and never pooled.
var countsPool = sync.Pool{New: func() any { return new([]int) }}

// Resample average-pools the trace into exactly n bins, the fixed-width
// representation fed to the classifier. Each bin is the mean of the
// finite samples mapped into it; NaN gaps are treated as missing data,
// and bins left empty by gaps or by having more bins than samples are
// filled from their neighbours so the vector stays piecewise constant.
// A trace whose samples are all gaps resamples to the zero vector.
//
// The returned slice is freshly allocated and never aliases internal
// scratch; mutating it cannot affect later Resample calls.
func (t *Trace) Resample(n int) ([]float64, error) {
	if n <= 0 {
		return nil, errors.New("trace: non-positive bin count")
	}
	out := make([]float64, n)
	if err := t.ResampleInto(out); err != nil {
		return nil, err
	}
	return out, nil
}

// ResampleInto is Resample writing into a caller-supplied vector of
// len(dst) bins — the allocation-free path for feature extractors that
// assemble resampled bins and summary statistics into one preallocated
// feature vector. dst is fully overwritten.
func (t *Trace) ResampleInto(dst []float64) error {
	n := len(dst)
	if n <= 0 {
		return errors.New("trace: non-positive bin count")
	}
	if len(t.Samples) == 0 {
		return errors.New("trace: empty trace")
	}
	out := dst
	for i := range out {
		out[i] = 0
	}
	cp := countsPool.Get().(*[]int)
	defer countsPool.Put(cp)
	if cap(*cp) < n {
		*cp = make([]int, n)
	}
	counts := (*cp)[:n]
	for i := range counts {
		counts[i] = 0
	}
	for i, s := range t.Samples {
		if IsGap(s) {
			continue
		}
		bin := i * n / len(t.Samples)
		out[bin] += s
		counts[bin]++
	}
	first := -1
	for i := range out {
		if counts[i] > 0 {
			out[i] /= float64(counts[i])
			if first < 0 {
				first = i
			}
		} else if i > 0 {
			// Empty bin (gap or more bins than samples): carry the
			// previous bin forward.
			out[i] = out[i-1]
		}
	}
	if first < 0 {
		return nil // every sample lost: degrade to the zero vector
	}
	// Back-fill bins before the first informative one (leading gaps).
	for i := 0; i < first; i++ {
		out[i] = out[first]
	}
	return nil
}

// ErrChannelDead is the sticky recorder error raised when the channel
// loses more consecutive samples than the policy tolerates — the point
// where a real attacker would abandon the sensor.
var ErrChannelDead = errors.New("trace: channel dead: too many consecutive samples lost")

// RetryPolicy governs how a resilient sampler treats probe failures.
// All delays are in simulated time. The zero value is usable after
// WithDefaults; a nil policy on a Recorder restores the legacy
// behaviour (any probe error is sticky and ends the recording).
type RetryPolicy struct {
	// MaxAttempts bounds the probe calls per sample, first try
	// included. Zero means 4.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; it doubles per
	// attempt. Zero means 1 ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential backoff. Zero means 8 ms.
	MaxBackoff time.Duration
	// SampleDeadline is the per-sample time budget measured from the
	// sample's due time; when the next backoff would exceed it the
	// sample is recorded as a gap. Zero means one sampling interval.
	SampleDeadline time.Duration
	// MaxConsecutiveGaps turns a run of lost samples into the sticky
	// ErrChannelDead. Zero means 64; negative disables the limit.
	MaxConsecutiveGaps int
	// Transient classifies an error as retryable. Nil classifies
	// nothing as retryable (every error is fatal).
	Transient func(error) bool
	// Resolve, when set, is called after a read fails with
	// fs.ErrNotExist (a hotplug renumber moved the attribute) to
	// obtain a fresh probe; resolution failures count as transient.
	Resolve func() (func() (float64, error), error)
	// OnRetry and OnGap are optional metric hooks, invoked once per
	// retried attempt and once per recorded gap.
	OnRetry func()
	OnGap   func()
	// Rand, when set, switches the backoff schedule from capped doubling
	// to decorrelated jitter: each delay is drawn uniformly from
	// [BaseBackoff, 3*previous], then capped at MaxBackoff, so parallel
	// samplers retrying against the same faulty sensor spread out
	// instead of hammering it in lockstep. Feed it a named simulation
	// RNG stream to keep runs reproducible. Nil keeps plain doubling.
	Rand *rand.Rand
}

// NextBackoff returns the delay that follows prev under this policy:
// decorrelated jitter when Rand is set, capped doubling otherwise.
func (p RetryPolicy) NextBackoff(prev time.Duration) time.Duration {
	next := 2 * prev
	if p.Rand != nil {
		if hi := 3 * prev; hi > p.BaseBackoff {
			next = p.BaseBackoff + time.Duration(p.Rand.Int63n(int64(hi-p.BaseBackoff)))
		} else {
			next = p.BaseBackoff
		}
	}
	if next > p.MaxBackoff {
		next = p.MaxBackoff
	}
	return next
}

// WithDefaults returns the policy with zero fields replaced by their
// defaults; interval supplies the SampleDeadline default.
func (p RetryPolicy) WithDefaults(interval time.Duration) RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 4
	}
	if p.BaseBackoff == 0 {
		p.BaseBackoff = time.Millisecond
	}
	if p.MaxBackoff == 0 {
		p.MaxBackoff = 8 * time.Millisecond
	}
	if p.SampleDeadline == 0 {
		p.SampleDeadline = interval
	}
	if p.MaxConsecutiveGaps == 0 {
		p.MaxConsecutiveGaps = 64
	}
	return p
}

// SampleFaults is the attacker-side scheduler fault hook: the
// fault-injection layer implements it to jitter the sampling period
// (preemption) and to blank whole sample runs (the sampling task
// descheduled entirely). Both methods are consulted once per due
// sample.
type SampleFaults interface {
	// JitterDelay returns extra delay to add after the current sample,
	// pushing subsequent samples late. Zero means no jitter.
	JitterDelay(interval time.Duration) time.Duration
	// DropoutLen returns the length of a dropout burst starting at the
	// current sample, or zero. Samples inside a burst are recorded as
	// gaps without touching the probe.
	DropoutLen() int
}

// Recorder polls a probe at a fixed rate while the simulation runs.
// Register it with the engine after every hardware component, so each
// poll observes that tick's settled sysfs state.
type Recorder struct {
	interval time.Duration
	probe    func() (float64, error)
	trace    *Trace
	elapsed  time.Duration
	err      error

	policy *RetryPolicy // nil: legacy sticky-error behaviour
	faults SampleFaults // nil: no injected scheduler faults

	// retry state of the sample in flight
	pending  bool
	due      time.Duration
	nextTry  time.Duration
	backoff  time.Duration
	attempts int

	dropoutLeft int
	consecGaps  int

	// reserve is the expected sample count; Reserve sizes the trace's
	// backing array once so the capture loop never regrows it.
	reserve int
}

// NewRecorder returns a recorder polling probe every interval.
func NewRecorder(interval time.Duration, probe func() (float64, error)) (*Recorder, error) {
	if interval <= 0 {
		return nil, errors.New("trace: non-positive sampling interval")
	}
	if probe == nil {
		return nil, errors.New("trace: nil probe")
	}
	return &Recorder{
		interval: interval,
		probe:    probe,
		trace:    &Trace{Interval: interval},
	}, nil
}

// SetPolicy installs the retry policy (normalized with WithDefaults);
// nil restores the legacy behaviour where any probe error is sticky.
func (r *Recorder) SetPolicy(p *RetryPolicy) {
	if p == nil {
		r.policy = nil
		return
	}
	norm := p.WithDefaults(r.interval)
	r.policy = &norm
}

// SetFaults installs the scheduler fault hook; nil removes it.
func (r *Recorder) SetFaults(f SampleFaults) { r.faults = f }

// Reserve preallocates capacity for n samples so the append in the
// capture loop never regrows the backing array mid-run. The hint
// persists across Reset. Non-positive n is a no-op.
func (r *Recorder) Reserve(n int) {
	if n <= 0 {
		return
	}
	r.reserve = n
	if cap(r.trace.Samples)-len(r.trace.Samples) < n {
		grown := make([]float64, len(r.trace.Samples), len(r.trace.Samples)+n)
		copy(grown, r.trace.Samples)
		r.trace.Samples = grown
	}
}

// Step implements sim.Steppable.
func (r *Recorder) Step(now, dt time.Duration) {
	if r.err != nil {
		return
	}
	r.elapsed += dt
	// A pending sample blocks the pipeline like a sampling loop stuck
	// inside a retrying read; later samples queue up behind it in
	// elapsed and are drained when it resolves.
	if r.pending {
		if now < r.nextTry {
			return
		}
		r.attempt(now)
		if r.pending || r.err != nil {
			return
		}
	}
	for r.elapsed >= r.interval && r.err == nil {
		r.elapsed -= r.interval
		if r.faults != nil && r.dropoutLeft == 0 {
			if k := r.faults.DropoutLen(); k > 0 {
				r.dropoutLeft = k
			}
			if j := r.faults.JitterDelay(r.interval); j > 0 {
				r.elapsed -= j // preemption pushes later samples late
			}
		}
		if r.dropoutLeft > 0 {
			r.dropoutLeft--
			r.recordGap()
			continue
		}
		r.due = now
		r.attempts = 0
		if r.policy != nil {
			r.backoff = r.policy.BaseBackoff
		}
		r.pending = true
		r.attempt(now)
		if r.pending {
			return
		}
	}
}

// attempt performs one probe call for the pending sample and either
// records a value, schedules a retry, records a gap, or fails sticky.
func (r *Recorder) attempt(now time.Duration) {
	r.attempts++
	v, err := r.probe()
	if err == nil {
		r.trace.Samples = append(r.trace.Samples, v)
		ctrSamples.Inc()
		r.consecGaps = 0
		r.pending = false
		return
	}
	if r.policy == nil {
		r.err = err
		r.pending = false
		return
	}
	transient := r.policy.Transient != nil && r.policy.Transient(err)
	if errors.Is(err, fs.ErrNotExist) && r.policy.Resolve != nil {
		// Hotplug window: the attribute moved; re-resolve and retry.
		if probe, rerr := r.policy.Resolve(); rerr == nil {
			r.probe = probe
		}
		transient = true
	}
	if !transient {
		r.err = err
		r.pending = false
		return
	}
	if r.policy.OnRetry != nil {
		r.policy.OnRetry()
	}
	if r.attempts >= r.policy.MaxAttempts || now-r.due+r.backoff > r.policy.SampleDeadline {
		r.recordGap()
		r.pending = false
		return
	}
	r.nextTry = now + r.backoff
	r.backoff = r.policy.NextBackoff(r.backoff)
}

// recordGap appends a NaN sample and applies the consecutive-gap limit.
func (r *Recorder) recordGap() {
	r.trace.Samples = append(r.trace.Samples, Gap)
	ctrGaps.Inc()
	r.consecGaps++
	if r.policy != nil {
		if r.policy.OnGap != nil {
			r.policy.OnGap()
		}
		if r.policy.MaxConsecutiveGaps > 0 && r.consecGaps > r.policy.MaxConsecutiveGaps {
			r.err = fmt.Errorf("trace: %d consecutive losses: %w", r.consecGaps, ErrChannelDead)
		}
	}
}

// Trace returns the recorded trace and any sticky probe error. Without
// a retry policy, any probe error (e.g. fs.ErrPermission after the
// mitigation is applied) stops the recording at the failing sample;
// with one, only fatal errors and ErrChannelDead are sticky.
func (r *Recorder) Trace() (*Trace, error) { return r.trace, r.err }

// Reset discards recorded samples and retry state, keeping the
// configuration; used between victim runs.
func (r *Recorder) Reset() {
	r.trace = &Trace{Interval: r.interval}
	if r.reserve > 0 {
		r.trace.Samples = make([]float64, 0, r.reserve)
	}
	r.elapsed = 0
	r.err = nil
	r.pending = false
	r.attempts = 0
	r.dropoutLeft = 0
	r.consecGaps = 0
}

// SysfsProbe builds a probe that reads an integer hwmon attribute as the
// given credential and scales it into base units (scale 1e-3 for the mA
// and mV attributes, 1e-6 for µW). This is the attacker's actual access
// path: an unprivileged file read.
func SysfsProbe(fsys *sysfs.FS, cred sysfs.Cred, path string, scale float64) func() (float64, error) {
	return func() (float64, error) {
		raw, err := fsys.ReadFile(cred, path)
		if err != nil {
			return 0, err
		}
		v, err := strconv.ParseInt(strings.TrimSpace(raw), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("trace: parse %s: %w", path, err)
		}
		return float64(v) * scale, nil
	}
}
