package trace_test

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/trace"
)

// agree reports whether two magnitudes match within the 1e-9 pin of the
// FFT-vs-Goertzel contract (absolute for small values, relative above 1).
func agree(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= 1e-9*scale
}

// TestPropSpectrumFFTMatchesGoertzel is the tentpole differential
// property: across contaminated periodic traces (gaps + noise, lengths
// both power-of-two and not, driving the radix-2 and Bluestein paths),
// the FFT-based Spectrum and the Goertzel reference agree bin for bin
// to within 1e-9 at every bin count up to Nyquist.
func TestPropSpectrumFFTMatchesGoertzel(t *testing.T) {
	contaminated := check.PeriodicTraces(check.TraceConfig{GapRate: 0.2, Noise: 0.3})
	check.Forall(t, contaminated, func(c *check.T, p check.PeriodicTrace) {
		tr := p.Trace
		n := len(tr.Samples)
		c.Classify(n&(n-1) == 0, "pow2")
		c.Classify(n&(n-1) != 0, "bluestein")
		for _, bins := range []int{1, n / 4, n / 2, n} { // n clamps to n/2
			if bins < 1 {
				continue
			}
			fft, err := tr.Spectrum(bins)
			if err != nil {
				c.Fatalf("Spectrum(%d): %v", bins, err)
			}
			ref, err := tr.SpectrumGoertzel(bins)
			if err != nil {
				c.Fatalf("SpectrumGoertzel(%d): %v", bins, err)
			}
			if len(fft) != len(ref) {
				c.Fatalf("bins=%d: fft %d mags vs goertzel %d", bins, len(fft), len(ref))
			}
			for k := range fft {
				if !agree(fft[k], ref[k]) {
					c.Errorf("n=%d bins=%d bin %d: fft %v vs goertzel %v (Δ=%g)",
						n, bins, k+1, fft[k], ref[k], math.Abs(fft[k]-ref[k]))
				}
			}
		}
	})
}

// TestPropSpectrumResultNotAliasedToPool: the pooled-scratch bugfix
// contract — mutating a returned spectrum or resample vector must not
// perturb a subsequent call, i.e. returned slices never alias pool
// memory.
func TestPropSpectrumResultNotAliasedToPool(t *testing.T) {
	gappy := check.PeriodicTraces(check.TraceConfig{GapRate: 0.15, Noise: 0.1})
	check.Forall(t, gappy, func(c *check.T, p check.PeriodicTrace) {
		tr := p.Trace
		bins := len(tr.Samples) / 2
		if bins < 1 {
			bins = 1
		}
		first, err := tr.Spectrum(bins)
		if err != nil {
			c.Fatalf("Spectrum: %v", err)
		}
		want := append([]float64(nil), first...)
		for i := range first {
			first[i] = -12345.678 // poison the caller's copy
		}
		second, err := tr.Spectrum(bins)
		if err != nil {
			c.Fatalf("second Spectrum: %v", err)
		}
		for i := range second {
			if second[i] != want[i] {
				c.Fatalf("spectrum bin %d changed after caller mutation: %v -> %v", i, want[i], second[i])
			}
		}

		res1, err := tr.Resample(7)
		if err != nil {
			c.Fatalf("Resample: %v", err)
		}
		wantRes := append([]float64(nil), res1...)
		for i := range res1 {
			res1[i] = math.Inf(1)
		}
		res2, err := tr.Resample(7)
		if err != nil {
			c.Fatalf("second Resample: %v", err)
		}
		for i := range res2 {
			if res2[i] != wantRes[i] {
				c.Fatalf("resample bin %d changed after caller mutation: %v -> %v", i, wantRes[i], res2[i])
			}
		}
	})
}

// TestSpectrumAllGapZero: an all-gap window yields an all-zero spectrum
// on both transform paths (power-of-two and Bluestein lengths).
func TestSpectrumAllGapZero(t *testing.T) {
	for _, n := range []int{64, 100} {
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = trace.Gap
		}
		tr := &trace.Trace{Interval: time.Millisecond, Samples: samples}
		mags, err := tr.Spectrum(n / 2)
		if err != nil {
			t.Fatalf("n=%d: Spectrum: %v", n, err)
		}
		if len(mags) != n/2 {
			t.Fatalf("n=%d: got %d bins, want %d", n, len(mags), n/2)
		}
		for k, m := range mags {
			if m != 0 {
				t.Errorf("n=%d: all-gap spectrum bin %d = %v, want 0", n, k+1, m)
			}
		}
	}
}

// TestSpectrumClampsAtNyquist: requesting more bins than n/2 returns
// exactly the n/2 Nyquist-limited prefix on both implementations.
func TestSpectrumClampsAtNyquist(t *testing.T) {
	tr := benchTrace(100, false)
	full, err := tr.Spectrum(50)
	if err != nil {
		t.Fatalf("Spectrum(50): %v", err)
	}
	over, err := tr.Spectrum(99)
	if err != nil {
		t.Fatalf("Spectrum(99): %v", err)
	}
	if len(over) != 50 {
		t.Fatalf("Spectrum(99) returned %d bins, want clamp to 50", len(over))
	}
	for i := range over {
		if over[i] != full[i] {
			t.Errorf("clamped bin %d differs: %v vs %v", i+1, over[i], full[i])
		}
	}
	refOver, err := tr.SpectrumGoertzel(99)
	if err != nil {
		t.Fatalf("SpectrumGoertzel(99): %v", err)
	}
	if len(refOver) != 50 {
		t.Fatalf("SpectrumGoertzel(99) returned %d bins, want 50", len(refOver))
	}
}

// aliasTrace reproduces the capture that exposed the Nyquist bug:
// 64 samples of a bin-5 tone over a DC offset with mild Gaussian noise
// (seed 27). Before the clamp, DominantPeriod(63, ...) computed Goertzel
// magnitudes past Nyquist; the mirror bin 59 — mathematically equal to
// bin 5 for real input — came out a few ulps larger and won the strict
// peak search, so the estimated period was 64/59 ≈ 1.08 samples instead
// of 64/5 = 12.8.
func aliasTrace() *trace.Trace {
	const n, tone = 64, 5
	rng := rand.New(rand.NewSource(27))
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = 2 + math.Sin(2*math.Pi*tone*float64(i)/float64(n)) + 0.05*rng.NormFloat64()
	}
	return &trace.Trace{Interval: time.Millisecond, Samples: samples}
}

// oldUnclampedDominantBin is the pre-fix peak search: per-bin Goertzel
// with no Nyquist clamp. Kept inline as the regression oracle proving
// the committed trace really does trip the old behaviour.
func oldUnclampedDominantBin(samples []float64, bins int) int {
	n := len(samples)
	mean := 0.0
	for _, s := range samples {
		mean += s
	}
	mean /= float64(n)
	best, bestMag := 0, 0.0
	for k := 1; k <= bins; k++ {
		w := 2 * math.Pi * float64(k) / float64(n)
		coeff := 2 * math.Cos(w)
		var s0, s1, s2 float64
		for _, x := range samples {
			s0 = (x - mean) + coeff*s1 - s2
			s2 = s1
			s1 = s0
		}
		re := s1 - s2*math.Cos(w)
		im := s2 * math.Sin(w)
		if m := math.Sqrt(re*re+im*im) * 2 / float64(n); m > bestMag {
			best, bestMag = k, m
		}
	}
	return best
}

// TestDominantPeriodAliasRegression pins the Nyquist-clamp fix with the
// planted tone whose alias previously won the peak search.
func TestDominantPeriodAliasRegression(t *testing.T) {
	tr := aliasTrace()
	n := len(tr.Samples)
	if got := oldUnclampedDominantBin(tr.Samples, n-1); got != n-5 {
		t.Fatalf("regression oracle: old peak search picked bin %d, want alias %d — trace no longer reproduces the bug", got, n-5)
	}
	period, ok, err := tr.DominantPeriod(n-1, 2.0)
	if err != nil {
		t.Fatalf("DominantPeriod: %v", err)
	}
	if !ok {
		t.Fatal("DominantPeriod found no structure in a planted tone")
	}
	if want := float64(n) / 5; period != want {
		t.Fatalf("DominantPeriod = %v samples, want %v (alias must not win)", period, want)
	}
}

// TestDominantPeriodFloorExcludesPeak pins the noise-floor bugfix with
// table-driven cases at the old/new decision boundary. Magnitudes are
// controlled by planting integer-bin tones (no leakage), so each case's
// floor is known analytically.
func TestDominantPeriodFloorExcludesPeak(t *testing.T) {
	const n = 64
	mk := func(tones map[int]float64) *trace.Trace {
		samples := make([]float64, n)
		for i := range samples {
			v := 3.0
			for bin, amp := range tones {
				v += amp * math.Sin(2*math.Pi*float64(bin)*float64(i)/float64(n))
			}
			samples[i] = v
		}
		return &trace.Trace{Interval: time.Millisecond, Samples: samples}
	}
	cases := []struct {
		name       string
		tones      map[int]float64
		maxBins    int
		floorRatio float64
		wantOK     bool
		wantPeriod float64
	}{
		{
			// mags ≈ [0, 1.0, 0.3, 0.3]: old floor (1.6/4)·3 = 1.2 > 1.0
			// suppressed the detection; new floor (0.6/3)·3 = 0.6 < 1.0
			// detects it. This is the boundary case the fix exists for.
			name:       "boundary-peak-now-detected",
			tones:      map[int]float64{2: 1.0, 3: 0.3, 4: 0.3},
			maxBins:    4,
			floorRatio: 3.0,
			wantOK:     true,
			wantPeriod: n / 2.0,
		},
		{
			// A strong lone tone passes under both definitions.
			name:       "strong-peak-detected-either-way",
			tones:      map[int]float64{4: 1.0, 7: 0.01},
			maxBins:    8,
			floorRatio: 3.0,
			wantOK:     true,
			wantPeriod: n / 4.0,
		},
		{
			// Near-equal tones: peak ≈ floor, rejected under both.
			name:       "flat-spectrum-still-rejected",
			tones:      map[int]float64{2: 0.5, 3: 0.5, 4: 0.5, 5: 0.52},
			maxBins:    5,
			floorRatio: 3.0,
			wantOK:     false,
		},
		{
			// maxBins=1 leaves no non-peak bins: floor 0, any nonzero
			// peak is trivially dominant (old code divided the peak into
			// its own floor and could still reject it).
			name:       "single-bin-nonzero-peak",
			tones:      map[int]float64{1: 0.2},
			maxBins:    1,
			floorRatio: 100.0,
			wantOK:     true,
			wantPeriod: n,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			period, ok, err := mk(tc.tones).DominantPeriod(tc.maxBins, tc.floorRatio)
			if err != nil {
				t.Fatalf("DominantPeriod: %v", err)
			}
			if ok != tc.wantOK {
				t.Fatalf("ok = %v, want %v (period %v)", ok, tc.wantOK, period)
			}
			if ok && math.Abs(period-tc.wantPeriod) > 1e-6 {
				t.Fatalf("period = %v, want %v", period, tc.wantPeriod)
			}
		})
	}
}
