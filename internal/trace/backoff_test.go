package trace

import (
	"math/rand"
	"testing"
	"time"
)

func TestNextBackoffDoublingWithoutRand(t *testing.T) {
	p := RetryPolicy{}.WithDefaults(time.Millisecond)
	want := []time.Duration{2, 4, 8, 8, 8} // milliseconds, capped at MaxBackoff
	b := p.BaseBackoff
	for i, w := range want {
		b = p.NextBackoff(b)
		if b != w*time.Millisecond {
			t.Fatalf("step %d: backoff = %v, want %v", i, b, w*time.Millisecond)
		}
	}
}

func TestNextBackoffDecorrelatedJitterBounds(t *testing.T) {
	p := RetryPolicy{}.WithDefaults(time.Millisecond)
	p.Rand = rand.New(rand.NewSource(1))
	prev := p.BaseBackoff
	for i := 0; i < 1000; i++ {
		next := p.NextBackoff(prev)
		if next < p.BaseBackoff {
			t.Fatalf("step %d: backoff %v below base %v", i, next, p.BaseBackoff)
		}
		if next > p.MaxBackoff {
			t.Fatalf("step %d: backoff %v above cap %v", i, next, p.MaxBackoff)
		}
		if lim := 3 * prev; next > lim {
			t.Fatalf("step %d: backoff %v above 3*prev %v", i, next, lim)
		}
		prev = next
	}
}

func TestNextBackoffJitterDeterministicPerSeed(t *testing.T) {
	seq := func(seed int64) []time.Duration {
		p := RetryPolicy{}.WithDefaults(time.Millisecond)
		p.Rand = rand.New(rand.NewSource(seed))
		out := make([]time.Duration, 0, 32)
		b := p.BaseBackoff
		for i := 0; i < 32; i++ {
			b = p.NextBackoff(b)
			out = append(out, b)
		}
		return out
	}
	a, b := seq(7), seq(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at step %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := seq(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced the identical 32-step jitter sequence")
	}
}
