package trace

import (
	"errors"
	"io/fs"
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sysfs"
)

func TestTraceDuration(t *testing.T) {
	tr := &Trace{Interval: 35 * time.Millisecond, Samples: make([]float64, 10)}
	if tr.Duration() != 350*time.Millisecond {
		t.Fatalf("Duration = %v", tr.Duration())
	}
}

func TestPrefix(t *testing.T) {
	tr := &Trace{Interval: time.Millisecond, Samples: []float64{1, 2, 3, 4, 5}}
	p, err := tr.Prefix(3 * time.Millisecond)
	if err != nil {
		t.Fatalf("Prefix: %v", err)
	}
	if len(p.Samples) != 3 || p.Samples[2] != 3 {
		t.Fatalf("Prefix samples = %v", p.Samples)
	}
	if _, err := tr.Prefix(10 * time.Millisecond); err == nil {
		t.Fatal("over-long prefix accepted")
	}
	if _, err := (&Trace{}).Prefix(time.Second); err == nil {
		t.Fatal("zero-interval prefix accepted")
	}
}

func TestResampleDownAveragesBins(t *testing.T) {
	tr := &Trace{Interval: time.Millisecond, Samples: []float64{1, 3, 5, 7}}
	out, err := tr.Resample(2)
	if err != nil {
		t.Fatalf("Resample: %v", err)
	}
	if out[0] != 2 || out[1] != 6 {
		t.Fatalf("Resample = %v, want [2 6]", out)
	}
}

func TestResampleUpCarriesForward(t *testing.T) {
	tr := &Trace{Interval: time.Millisecond, Samples: []float64{4, 8}}
	out, err := tr.Resample(4)
	if err != nil {
		t.Fatalf("Resample: %v", err)
	}
	want := []float64{4, 4, 8, 8}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("Resample = %v, want %v", out, want)
		}
	}
}

func TestResampleErrors(t *testing.T) {
	tr := &Trace{Interval: time.Millisecond, Samples: []float64{1}}
	if _, err := tr.Resample(0); err == nil {
		t.Fatal("zero bins accepted")
	}
	if _, err := (&Trace{Interval: time.Millisecond}).Resample(4); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestNewRecorderValidation(t *testing.T) {
	probe := func() (float64, error) { return 1, nil }
	if _, err := NewRecorder(0, probe); err == nil {
		t.Fatal("zero interval accepted")
	}
	if _, err := NewRecorder(time.Millisecond, nil); err == nil {
		t.Fatal("nil probe accepted")
	}
}

func TestRecorderSamplesAtRate(t *testing.T) {
	n := 0.0
	probe := func() (float64, error) { n++; return n, nil }
	r, err := NewRecorder(time.Millisecond, probe)
	if err != nil {
		t.Fatalf("NewRecorder: %v", err)
	}
	// 10 ms of 250 us ticks -> 10 samples.
	for i := 0; i < 40; i++ {
		r.Step(0, 250*time.Microsecond)
	}
	tr, err := r.Trace()
	if err != nil {
		t.Fatalf("Trace: %v", err)
	}
	if len(tr.Samples) != 10 {
		t.Fatalf("samples = %d, want 10", len(tr.Samples))
	}
	if tr.Samples[0] != 1 || tr.Samples[9] != 10 {
		t.Fatalf("samples = %v", tr.Samples)
	}
}

func TestRecorderTickCoarserThanInterval(t *testing.T) {
	probe := func() (float64, error) { return 7, nil }
	r, _ := NewRecorder(time.Millisecond, probe)
	// One 5 ms tick must yield 5 samples (catch-up), not 1.
	r.Step(0, 5*time.Millisecond)
	tr, _ := r.Trace()
	if len(tr.Samples) != 5 {
		t.Fatalf("samples = %d, want 5", len(tr.Samples))
	}
}

func TestRecorderStopsOnError(t *testing.T) {
	calls := 0
	boom := errors.New("denied")
	probe := func() (float64, error) {
		calls++
		if calls > 3 {
			return 0, boom
		}
		return 1, nil
	}
	r, _ := NewRecorder(time.Millisecond, probe)
	for i := 0; i < 10; i++ {
		r.Step(0, time.Millisecond)
	}
	tr, err := r.Trace()
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if len(tr.Samples) != 3 {
		t.Fatalf("samples = %d, want 3 before failure", len(tr.Samples))
	}
	if calls != 4 {
		t.Fatalf("probe calls = %d, want polling to stop after failure", calls)
	}
}

func TestRecorderReset(t *testing.T) {
	probe := func() (float64, error) { return 1, nil }
	r, _ := NewRecorder(time.Millisecond, probe)
	r.Step(0, 5*time.Millisecond)
	r.Reset()
	tr, err := r.Trace()
	if err != nil || len(tr.Samples) != 0 {
		t.Fatalf("after Reset: %v samples, err %v", len(tr.Samples), err)
	}
}

func TestSysfsProbe(t *testing.T) {
	fsys := sysfs.New()
	if err := fsys.AddAttr("class/hwmon/hwmon0/curr1_input", sysfs.Attr{
		Mode: sysfs.ModeRO,
		Show: func() (string, error) { return "1234\n", nil },
	}); err != nil {
		t.Fatalf("AddAttr: %v", err)
	}
	probe := SysfsProbe(fsys, sysfs.Nobody, "class/hwmon/hwmon0/curr1_input", 1e-3)
	v, err := probe()
	if err != nil {
		t.Fatalf("probe: %v", err)
	}
	if math.Abs(v-1.234) > 1e-12 {
		t.Fatalf("probe = %v, want 1.234", v)
	}
}

func TestSysfsProbePermissionError(t *testing.T) {
	fsys := sysfs.New()
	if err := fsys.AddAttr("a/v", sysfs.Attr{
		Mode: sysfs.ModeRootOnly,
		Show: func() (string, error) { return "1", nil },
	}); err != nil {
		t.Fatalf("AddAttr: %v", err)
	}
	probe := SysfsProbe(fsys, sysfs.Nobody, "a/v", 1)
	if _, err := probe(); !errors.Is(err, fs.ErrPermission) {
		t.Fatalf("err = %v, want ErrPermission", err)
	}
}

func TestSysfsProbeParseError(t *testing.T) {
	fsys := sysfs.New()
	if err := fsys.AddAttr("a/v", sysfs.Attr{
		Mode: sysfs.ModeRO,
		Show: func() (string, error) { return "garbage", nil },
	}); err != nil {
		t.Fatalf("AddAttr: %v", err)
	}
	probe := SysfsProbe(fsys, sysfs.Nobody, "a/v", 1)
	if _, err := probe(); err == nil {
		t.Fatal("garbage parsed")
	}
}

// Property: Resample(n) preserves the overall mean when n divides the
// sample count.
func TestResampleMeanProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := 8
		samples := make([]float64, 64)
		x := float64(seed % 1000)
		var sum float64
		for i := range samples {
			x = math.Mod(x*1.7+3.1, 97)
			samples[i] = x
			sum += x
		}
		tr := &Trace{Interval: time.Millisecond, Samples: samples}
		out, err := tr.Resample(n)
		if err != nil {
			return false
		}
		var outSum float64
		for _, v := range out {
			outSum += v
		}
		return math.Abs(outSum/float64(n)-sum/64) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
