package trace

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// sine builds a trace of n samples containing k full periods plus an
// offset.
func sine(n, k int, amp, offset float64) *Trace {
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = offset + amp*math.Sin(2*math.Pi*float64(k)*float64(i)/float64(n))
	}
	return &Trace{Interval: time.Millisecond, Samples: samples}
}

func TestSpectrumFindsTone(t *testing.T) {
	tr := sine(256, 5, 2.0, 10.0)
	mags, err := tr.Spectrum(10)
	if err != nil {
		t.Fatalf("Spectrum: %v", err)
	}
	if len(mags) != 10 {
		t.Fatalf("bins = %d", len(mags))
	}
	// Bin 5 carries the tone with magnitude ~amp.
	if math.Abs(mags[4]-2.0) > 0.05 {
		t.Fatalf("tone magnitude = %v, want ~2.0", mags[4])
	}
	for i, m := range mags {
		if i != 4 && m > 0.1 {
			t.Fatalf("leakage into bin %d: %v", i+1, m)
		}
	}
}

func TestSpectrumIgnoresDC(t *testing.T) {
	// A pure offset has an empty spectrum.
	tr := &Trace{Interval: time.Millisecond, Samples: []float64{7, 7, 7, 7, 7, 7, 7, 7}}
	mags, err := tr.Spectrum(3)
	if err != nil {
		t.Fatalf("Spectrum: %v", err)
	}
	for i, m := range mags {
		if m > 1e-9 {
			t.Fatalf("bin %d = %v on constant trace", i+1, m)
		}
	}
}

func TestSpectrumErrors(t *testing.T) {
	tr := sine(64, 2, 1, 0)
	if _, err := tr.Spectrum(0); err == nil {
		t.Fatal("zero bins accepted")
	}
	short := &Trace{Interval: time.Millisecond, Samples: []float64{1}}
	if _, err := short.Spectrum(4); err == nil {
		t.Fatal("one-sample trace accepted")
	}
}

func TestDominantPeriod(t *testing.T) {
	// 8 periods over 256 samples -> period = 32 samples.
	tr := sine(256, 8, 1.0, 5.0)
	period, ok, err := tr.DominantPeriod(16, 2.0)
	if err != nil {
		t.Fatalf("DominantPeriod: %v", err)
	}
	if !ok {
		t.Fatal("tone not detected")
	}
	if math.Abs(period-32) > 0.5 {
		t.Fatalf("period = %v samples, want 32", period)
	}
}

func TestDominantPeriodRejectsNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	samples := make([]float64, 512)
	for i := range samples {
		samples[i] = rng.NormFloat64()
	}
	tr := &Trace{Interval: time.Millisecond, Samples: samples}
	_, ok, err := tr.DominantPeriod(16, 4.0)
	if err != nil {
		t.Fatalf("DominantPeriod: %v", err)
	}
	if ok {
		t.Fatal("white noise reported as periodic")
	}
}

func TestSpectrumMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	samples := make([]float64, 128)
	for i := range samples {
		samples[i] = rng.NormFloat64()
	}
	tr := &Trace{Interval: time.Millisecond, Samples: samples}
	mags, err := tr.Spectrum(8)
	if err != nil {
		t.Fatal(err)
	}
	mean := 0.0
	for _, s := range samples {
		mean += s
	}
	mean /= float64(len(samples))
	for k := 1; k <= 8; k++ {
		var re, im float64
		for i, x := range samples {
			phi := 2 * math.Pi * float64(k) * float64(i) / float64(len(samples))
			re += (x - mean) * math.Cos(phi)
			im -= (x - mean) * math.Sin(phi)
		}
		want := math.Sqrt(re*re+im*im) * 2 / float64(len(samples))
		if math.Abs(mags[k-1]-want) > 1e-9 {
			t.Fatalf("bin %d: goertzel %v vs dft %v", k, mags[k-1], want)
		}
	}
}
