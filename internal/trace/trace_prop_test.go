package trace_test

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/check"
	"repro/internal/trace"
)

// gappyTraces generates periodic traces with a dialed-in gap rate, the
// worst realistic input the DSP layer sees under the hostile fault
// profile.
var gappyTraces = check.PeriodicTraces(check.TraceConfig{GapRate: 0.15, Noise: 0.1})

// cleanTraces generates gap-free periodic traces.
var cleanTraces = check.PeriodicTraces(check.TraceConfig{Noise: 0.1})

// TestPropResampleIdempotent: resampling to the trace's own length is
// the identity on gap-free traces, and resampling an already-resampled
// vector to the same width changes nothing (average-pooling with one
// sample per bin is exact, bit for bit).
func TestPropResampleIdempotent(t *testing.T) {
	check.Forall(t, cleanTraces, func(c *check.T, p check.PeriodicTrace) {
		n := len(p.Trace.Samples)
		once, err := p.Trace.Resample(n)
		if err != nil {
			c.Fatalf("Resample: %v", err)
		}
		for i, v := range once {
			if v != p.Trace.Samples[i] {
				c.Fatalf("identity resample changed sample %d: %v -> %v", i, p.Trace.Samples[i], v)
			}
		}
		again := &trace.Trace{Interval: p.Trace.Interval, Samples: once}
		twice, err := again.Resample(n)
		if err != nil {
			c.Fatalf("second Resample: %v", err)
		}
		for i := range once {
			if twice[i] != once[i] {
				c.Errorf("resample not idempotent at %d: %v != %v", i, twice[i], once[i])
			}
		}
	})
}

// TestPropResampleNeverEmitsNaN: whatever the gap pattern — including
// leading, trailing, and total loss — the resampled vector is finite.
// This is the gap-NaN propagation contract: gaps stop at the DSP
// boundary instead of poisoning the classifier features.
func TestPropResampleNeverEmitsNaN(t *testing.T) {
	heavyGaps := check.PeriodicTraces(check.TraceConfig{GapRate: 0.6})
	check.Forall(t, heavyGaps, func(c *check.T, p check.PeriodicTrace) {
		n := len(p.Trace.Samples)
		c.Classify(p.Gaps == n, "all-gaps")
		c.Classify(p.Gaps > 0 && p.Gaps < n, "partial-gaps")
		for _, bins := range []int{1, n / 2, n, 2 * n} {
			if bins < 1 {
				continue
			}
			out, err := p.Trace.Resample(bins)
			if err != nil {
				c.Fatalf("Resample(%d): %v", bins, err)
			}
			if len(out) != bins {
				c.Fatalf("Resample(%d) returned %d bins", bins, len(out))
			}
			for i, v := range out {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					c.Errorf("Resample(%d)[%d] = %v with %d/%d gaps", bins, i, v, p.Gaps, n)
				}
			}
		}
	})
}

// TestPropGapsFiniteAccounting: Gaps() + len(Finite()) always equals
// the sample count, and Finite never returns a non-finite value.
func TestPropGapsFiniteAccounting(t *testing.T) {
	check.Forall(t, gappyTraces, func(c *check.T, p check.PeriodicTrace) {
		tr := p.Trace
		fin := tr.Finite()
		if tr.Gaps()+len(fin) != len(tr.Samples) {
			c.Errorf("Gaps(%d) + Finite(%d) != samples(%d)", tr.Gaps(), len(fin), len(tr.Samples))
		}
		for _, v := range fin {
			if math.IsNaN(v) {
				c.Errorf("Finite() leaked a NaN")
			}
		}
	})
}

// TestPropSpectrumParsevalBound: the Goertzel magnitudes are bounded
// by the signal's energy. With the ×2/n one-sided normalization,
// Σ_k mag_k² ≤ (2/n)·Σ_j (x_j − mean)² over finite samples — an
// energy-conservation sanity bound that catches normalization and
// accumulation bugs for every trace, not just goldens.
func TestPropSpectrumParsevalBound(t *testing.T) {
	check.Forall(t, gappyTraces, func(c *check.T, p check.PeriodicTrace) {
		tr := p.Trace
		fin := tr.Finite()
		if len(fin) < 2 {
			c.Discard()
		}
		n := len(tr.Samples)
		bins := n / 4
		if bins < 1 {
			bins = 1
		}
		mags, err := tr.Spectrum(bins)
		if err != nil {
			c.Fatalf("Spectrum(%d): %v", bins, err)
		}
		mean := 0.0
		for _, v := range fin {
			mean += v
		}
		mean /= float64(len(fin))
		energy := 0.0
		for _, v := range fin {
			d := v - mean
			energy += d * d
		}
		bound := 2 / float64(n) * energy
		total := 0.0
		for k, m := range mags {
			if math.IsNaN(m) || math.IsInf(m, 0) {
				c.Fatalf("spectrum bin %d non-finite: %v", k, m)
			}
			total += m * m
		}
		// Gap substitution redistributes a little energy; allow 1e-9
		// relative slack for rounding on top of the analytic bound.
		if total > bound*(1+1e-9)+1e-12 {
			c.Errorf("Parseval bound violated: Σmag² = %v > (2/n)·energy = %v (gaps %d/%d)",
				total, bound, p.Gaps, n)
		}
	})
}

// TestPropSpectrumPeakAtPlantedBin: for a clean planted tone, the
// dominant spectrum bin is exactly the generator's bin.
func TestPropSpectrumPeakAtPlantedBin(t *testing.T) {
	pure := check.PeriodicTraces(check.TraceConfig{})
	check.Forall(t, pure, func(c *check.T, p check.PeriodicTrace) {
		bins := len(p.Trace.Samples) / 4
		mags, err := p.Trace.Spectrum(bins)
		if err != nil {
			c.Fatalf("Spectrum: %v", err)
		}
		// mags[i] is DFT coefficient i+1 (DC excluded).
		best := 0
		for i := range mags {
			if mags[i] > mags[best] {
				best = i
			}
		}
		if best+1 != p.Bin {
			c.Errorf("dominant bin %d, planted %d (n=%d)", best+1, p.Bin, len(p.Trace.Samples))
		}
	})
}

// TestPropPersistRoundTrip: JSON marshal → unmarshal is the identity,
// including gap positions (NaN survives the null encoding) and the
// sampling interval.
func TestPropPersistRoundTrip(t *testing.T) {
	check.Forall(t, gappyTraces, func(c *check.T, p check.PeriodicTrace) {
		blob, err := json.Marshal(p.Trace)
		if err != nil {
			c.Fatalf("Marshal: %v", err)
		}
		var back trace.Trace
		if err := json.Unmarshal(blob, &back); err != nil {
			c.Fatalf("Unmarshal: %v", err)
		}
		if back.Interval != p.Trace.Interval {
			c.Errorf("interval changed: %s -> %s", p.Trace.Interval, back.Interval)
		}
		if len(back.Samples) != len(p.Trace.Samples) {
			c.Fatalf("length changed: %d -> %d", len(p.Trace.Samples), len(back.Samples))
		}
		for i, want := range p.Trace.Samples {
			got := back.Samples[i]
			switch {
			case trace.IsGap(want):
				if !trace.IsGap(got) {
					c.Errorf("gap at %d became %v", i, got)
				}
			case got != want:
				c.Errorf("sample %d changed: %v -> %v", i, want, got)
			}
		}
	})
}
