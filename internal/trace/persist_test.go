package trace

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestJSONRoundTrip(t *testing.T) {
	in := &Trace{Interval: 35 * time.Millisecond, Samples: []float64{0.55, 0.59, 3.74}}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var out Trace
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if out.Interval != in.Interval || len(out.Samples) != 3 || out.Samples[2] != 3.74 {
		t.Fatalf("round trip = %+v", out)
	}
}

func TestJSONRejectsBadInterval(t *testing.T) {
	var out Trace
	if err := json.Unmarshal([]byte(`{"interval_ns":0,"samples":[1]}`), &out); err == nil {
		t.Fatal("zero interval accepted")
	}
	if err := json.Unmarshal([]byte(`{bad json`), &out); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	in := &Trace{Interval: time.Millisecond, Samples: []float64{1.5, 2.25, 3}}
	var sb strings.Builder
	if err := in.WriteCSV(&sb); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if !strings.HasPrefix(sb.String(), "time_s,value\n") {
		t.Fatalf("missing header:\n%s", sb.String())
	}
	out, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if out.Interval != time.Millisecond {
		t.Fatalf("interval = %v", out.Interval)
	}
	for i := range in.Samples {
		if out.Samples[i] != in.Samples[i] {
			t.Fatalf("samples = %v", out.Samples)
		}
	}
}

func TestWriteCSVValidation(t *testing.T) {
	var sb strings.Builder
	if err := (&Trace{}).WriteCSV(&sb); err == nil {
		t.Fatal("zero interval accepted")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"time_s,value\n", // header only
		"bogus,header\n1,2\n",
		"time_s,value\nnotanumber,1\n",
		"time_s,value\n0.0,notanumber\n",
		"time_s,value\n0.0,1\n0.0,2\n", // non-increasing time
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
