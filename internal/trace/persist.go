package trace

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"time"
)

// Persistence for captured traces: CSV for spreadsheet-style analysis
// of a single trace, JSON for lossless round trips of the full
// structure. The offline phase of the fingerprinting attack records
// once and analyzes many times; these formats are the handoff.

// jsonTrace is the stable serialized form. Samples are pointers so a
// lost-sample gap (NaN, which JSON cannot encode) round-trips as null;
// files written before gaps existed decode unchanged.
type jsonTrace struct {
	IntervalNS int64      `json:"interval_ns"`
	Samples    []*float64 `json:"samples"`
}

// MarshalJSON implements json.Marshaler.
func (t *Trace) MarshalJSON() ([]byte, error) {
	samples := make([]*float64, len(t.Samples))
	for i := range t.Samples {
		if !IsGap(t.Samples[i]) {
			samples[i] = &t.Samples[i]
		}
	}
	return json.Marshal(jsonTrace{
		IntervalNS: int64(t.Interval),
		Samples:    samples,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (t *Trace) UnmarshalJSON(data []byte) error {
	var j jsonTrace
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if j.IntervalNS <= 0 {
		return errors.New("trace: non-positive interval in JSON")
	}
	t.Interval = time.Duration(j.IntervalNS)
	t.Samples = nil
	if j.Samples != nil {
		t.Samples = make([]float64, len(j.Samples))
		for i, s := range j.Samples {
			if s == nil {
				t.Samples[i] = Gap
			} else {
				t.Samples[i] = *s
			}
		}
	}
	return nil
}

// WriteCSV writes the trace as `time_s,value` rows with a header.
func (t *Trace) WriteCSV(w io.Writer) error {
	if t.Interval <= 0 {
		return errors.New("trace: non-positive interval")
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "value"}); err != nil {
		return err
	}
	for i, s := range t.Samples {
		ts := time.Duration(i) * t.Interval
		err := cw.Write([]string{
			strconv.FormatFloat(ts.Seconds(), 'f', 6, 64),
			strconv.FormatFloat(s, 'g', -1, 64),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a trace written by WriteCSV. The sampling interval is
// recovered from the first two timestamps (a single-sample trace needs
// the interval supplied by the caller afterwards).
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) < 2 {
		return nil, errors.New("trace: CSV has no samples")
	}
	if rows[0][0] != "time_s" {
		return nil, fmt.Errorf("trace: unexpected CSV header %v", rows[0])
	}
	tr := &Trace{}
	times := make([]float64, 0, len(rows)-1)
	for i, row := range rows[1:] {
		if len(row) != 2 {
			return nil, fmt.Errorf("trace: CSV row %d has %d fields", i+1, len(row))
		}
		ts, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: CSV row %d time: %w", i+1, err)
		}
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: CSV row %d value: %w", i+1, err)
		}
		times = append(times, ts)
		tr.Samples = append(tr.Samples, v)
	}
	if len(times) >= 2 {
		dt := times[1] - times[0]
		if dt <= 0 {
			return nil, errors.New("trace: non-increasing CSV timestamps")
		}
		tr.Interval = time.Duration(dt * float64(time.Second))
	}
	return tr, nil
}
