// Fast Fourier transform kernel behind Trace.Spectrum.
//
// The fingerprinting pipeline's spectral feature path used to compute
// each DFT bin with an independent O(n) Goertzel pass, making a
// bins-wide spectrum O(n·bins) — a throughput wall at paper-scale
// captures (thousands of samples, bins up to n/2). This file replaces
// the inner transform with an iterative radix-2 Cooley–Tukey FFT for
// power-of-two lengths and a Bluestein chirp-z fallback for everything
// else, so any bin count costs O(n log n).
//
// All scratch (complex work buffers, twiddle tables, chirp vectors)
// comes from a sync.Pool and never aliases returned slices: Spectrum
// hands back freshly allocated magnitudes, so callers may retain or
// mutate results without poisoning later calls.
package trace

import (
	"math"
	"math/bits"
	"math/cmplx"
	"sync"
)

// fftScratch is the reusable working set of one spectrum computation.
// buf/tw serve the radix-2 path directly; a, b, bt are the Bluestein
// convolution operands (sized to the padded power-of-two length).
type fftScratch struct {
	buf []complex128 // transform input/output
	tw  []complex128 // twiddle table, len(buf)/2 entries
	a   []complex128 // Bluestein: chirp-premultiplied signal
	b   []complex128 // Bluestein: chirp filter
	bt  []complex128 // Bluestein: FFT of the chirp filter
}

var fftPool = sync.Pool{New: func() any { return new(fftScratch) }}

// grow returns s resized to at least n elements, reusing capacity.
func grow(s []complex128, n int) []complex128 {
	if cap(s) < n {
		return make([]complex128, n)
	}
	return s[:n]
}

// twiddles fills tw[j] = exp(-2πi·j/n) for j in [0, n/2). The table is
// computed with one trig call per entry (no incremental rotation), so
// twiddle error stays at a few ulps regardless of n.
func twiddles(tw []complex128, n int) {
	for j := range tw {
		phi := -2 * math.Pi * float64(j) / float64(n)
		s, c := math.Sincos(phi)
		tw[j] = complex(c, s)
	}
}

// fftInPlace runs an in-place iterative radix-2 transform over a,
// whose length must be a power of two. tw is the forward twiddle table
// of len(a)/2 entries; inverse conjugates it (the caller applies any
// 1/n scaling).
func fftInPlace(a []complex128, tw []complex128, inverse bool) {
	n := len(a)
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		half := length >> 1
		step := n / length
		for start := 0; start < n; start += length {
			k := 0
			for i := start; i < start+half; i++ {
				w := tw[k]
				if inverse {
					w = cmplx.Conj(w)
				}
				v := a[i+half] * w
				a[i+half] = a[i] - v
				a[i] = a[i] + v
				k += step
			}
		}
	}
}

// nextPow2 returns the smallest power of two >= n.
func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// spectrumFFT computes the one-sided magnitudes of DFT coefficients
// 1..len(out) of the mean-removed trace (gaps contribute zero), using
// the radix-2 transform directly when n is a power of two and the
// Bluestein chirp-z algorithm otherwise. The semantics — including the
// ×2/n one-sided normalization — match the Goertzel reference bin for
// bin to well below 1e-9.
func spectrumFFT(samples []float64, mean float64, out []float64) {
	n := len(samples)
	s := fftPool.Get().(*fftScratch)
	defer fftPool.Put(s)

	if n&(n-1) == 0 {
		s.buf = grow(s.buf, n)
		s.tw = grow(s.tw, n/2)
		twiddles(s.tw, n)
		for i, x := range samples {
			if IsGap(x) {
				s.buf[i] = 0
			} else {
				s.buf[i] = complex(x-mean, 0)
			}
		}
		fftInPlace(s.buf, s.tw, false)
		scale := 2 / float64(n)
		for k := range out {
			out[k] = cmplx.Abs(s.buf[k+1]) * scale
		}
		return
	}

	// Bluestein: X_k = w_k · (a ⊛ b)_k with a_j = x_j·w_j and
	// b_j = conj(w_j), where w_j = exp(-iπ·j²/n). The circular
	// convolution runs over a power-of-two length m >= 2n-1. Chirp
	// angles index j² modulo 2n (the chirp's true period), so the
	// argument passed to Sincos never grows with j² and the phase
	// keeps full precision for long traces.
	m := nextPow2(2*n - 1)
	s.a = grow(s.a, m)
	s.b = grow(s.b, m)
	s.bt = grow(s.bt, m)
	s.tw = grow(s.tw, m/2)
	twiddles(s.tw, m)

	for i := range s.a {
		s.a[i] = 0
		s.b[i] = 0
	}
	for j := 0; j < n; j++ {
		j2 := (j * j) % (2 * n)
		phi := -math.Pi * float64(j2) / float64(n)
		sin, cos := math.Sincos(phi)
		w := complex(cos, sin)
		x := samples[j]
		if IsGap(x) {
			x = mean
		}
		s.a[j] = complex(x-mean, 0) * w
		cw := cmplx.Conj(w)
		s.b[j] = cw
		if j > 0 {
			s.b[m-j] = cw // wrap-around for the circular convolution
		}
	}
	fftInPlace(s.a, s.tw, false)
	fftInPlace(s.b, s.tw, false)
	for i := range s.a {
		s.a[i] *= s.b[i]
	}
	fftInPlace(s.a, s.tw, true)
	invM := 1 / float64(m)
	scale := 2 / float64(n)
	for k := range out {
		j := k + 1
		j2 := (j * j) % (2 * n)
		phi := -math.Pi * float64(j2) / float64(n)
		sin, cos := math.Sincos(phi)
		w := complex(cos, sin)
		out[k] = cmplx.Abs(s.a[j]*w) * invM * scale
	}
}
