package trace_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/trace"
)

// benchTrace builds a deterministic tone-plus-noise trace of n samples
// with a gap sprinkling, the realistic input shape of a capture.
func benchTrace(n int, gaps bool) *trace.Trace {
	rng := rand.New(rand.NewSource(42))
	samples := make([]float64, n)
	for i := range samples {
		v := 1.5 + math.Sin(2*math.Pi*7*float64(i)/float64(n)) + 0.1*rng.NormFloat64()
		if gaps && rng.Float64() < 0.02 {
			v = trace.Gap
		}
		samples[i] = v
	}
	return &trace.Trace{Interval: 35 * time.Millisecond, Samples: samples}
}

// BenchmarkSpectrum covers the FFT at a power-of-two length, the
// Bluestein fallback at the paper-scale capture length (10000 samples ≈
// 5 s at a 2 ms root-retuned interval, bins up to Nyquist), and the
// Goertzel reference at the same shape for the before/after ratio.
func BenchmarkSpectrum(b *testing.B) {
	cases := []struct {
		name     string
		n, bins  int
		goertzel bool
	}{
		{"fft-pow2-4096x1024", 4096, 1024, false},
		{"fft-paper-10000x2500", 10000, 2500, false},
		{"goertzel-paper-10000x2500", 10000, 2500, true},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			tr := benchTrace(tc.n, true)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				if tc.goertzel {
					_, err = tr.SpectrumGoertzel(tc.bins)
				} else {
					_, err = tr.Spectrum(tc.bins)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkResample measures the pooled average-pooling path at the
// classifier's default width and at a paper-scale width.
func BenchmarkResample(b *testing.B) {
	for _, tc := range []struct{ n, bins int }{{143, 64}, {10000, 64}, {10000, 1024}} {
		b.Run(fmt.Sprintf("%dto%d", tc.n, tc.bins), func(b *testing.B) {
			tr := benchTrace(tc.n, true)
			dst := make([]float64, tc.bins)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := tr.ResampleInto(dst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
