package stats_test

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/check"
	"repro/internal/stats"
)

// finiteFloats generates all-finite slices in a range small enough
// that shift/scale transforms stay well-conditioned.
func finiteFloats(minLen int) check.Gen[[]float64] {
	return check.Floats(check.FloatsConfig{MinLen: minLen, MaxLen: 64, Min: -100, Max: 100})
}

// contaminated generates slices guaranteed to hold at least one NaN or
// Inf by construction (a poisoned element appended at a random-ish
// position would break shrink determinism, so poison the generator's
// rates and discard clean draws instead).
var contaminated = check.Floats(check.FloatsConfig{MinLen: 1, MaxLen: 32, NaNRate: 0.15, InfRate: 0.1})

func hasNonFinite(xs []float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
	}
	return false
}

// relClose compares with a relative tolerance scaled to the operand
// magnitudes, the right equality for algebraically-identical
// floating-point pipelines.
func relClose(a, b, tol float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return math.Abs(a-b) <= tol*scale
}

// TestPropMeanShiftScaleEquivariant: mean(a·x + b) = a·mean(x) + b.
func TestPropMeanShiftScaleEquivariant(t *testing.T) {
	check.Forall(t, finiteFloats(1), func(c *check.T, xs []float64) {
		const a, b = 2.5, -17.0
		m, err := stats.Mean(xs)
		if err != nil {
			c.Fatalf("Mean: %v", err)
		}
		tx := make([]float64, len(xs))
		for i, x := range xs {
			tx[i] = a*x + b
		}
		tm, err := stats.Mean(tx)
		if err != nil {
			c.Fatalf("Mean(transformed): %v", err)
		}
		if !relClose(tm, a*m+b, 1e-9) {
			c.Errorf("mean not equivariant: mean(a·x+b)=%v, a·mean+b=%v", tm, a*m+b)
		}
	})
}

// TestPropVarianceShiftInvariantScaleQuadratic: var(x + b) = var(x)
// and var(a·x) = a²·var(x).
func TestPropVarianceShiftInvariantScaleQuadratic(t *testing.T) {
	check.Forall(t, finiteFloats(1), func(c *check.T, xs []float64) {
		v, err := stats.Variance(xs)
		if err != nil {
			c.Fatalf("Variance: %v", err)
		}
		c.Classify(v == 0, "zero-variance")
		shifted := make([]float64, len(xs))
		scaled := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + 1000
			scaled[i] = 3 * x
		}
		vs, err := stats.Variance(shifted)
		if err != nil {
			c.Fatalf("Variance(shifted): %v", err)
		}
		if !relClose(vs, v, 1e-6) {
			c.Errorf("variance not shift-invariant: %v vs %v", vs, v)
		}
		vc, err := stats.Variance(scaled)
		if err != nil {
			c.Fatalf("Variance(scaled): %v", err)
		}
		if !relClose(vc, 9*v, 1e-9) {
			c.Errorf("variance not quadratic under scale: %v vs %v", vc, 9*v)
		}
	})
}

// TestPropQuantileEquivariantAndMonotone: quantiles are equivariant
// under positive affine maps, monotone in q, and hit min/max at the
// extremes.
func TestPropQuantileEquivariantAndMonotone(t *testing.T) {
	check.Forall(t, finiteFloats(1), func(c *check.T, xs []float64) {
		min, max, err := stats.MinMax(xs)
		if err != nil {
			c.Fatalf("MinMax: %v", err)
		}
		qs := []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1}
		prev := math.Inf(-1)
		for _, q := range qs {
			v, err := stats.Quantile(xs, q)
			if err != nil {
				c.Fatalf("Quantile(%v): %v", q, err)
			}
			if v < prev {
				c.Errorf("quantile not monotone: Q(%v)=%v < previous %v", q, v, prev)
			}
			prev = v
			// Positive affine equivariance: Q(a·x+b, q) = a·Q(x, q)+b.
			tx := make([]float64, len(xs))
			for i, x := range xs {
				tx[i] = 2*x + 5
			}
			tv, err := stats.Quantile(tx, q)
			if err != nil {
				c.Fatalf("Quantile(transformed, %v): %v", q, err)
			}
			if !relClose(tv, 2*v+5, 1e-9) {
				c.Errorf("quantile not affine-equivariant at q=%v: %v vs %v", q, tv, 2*v+5)
			}
		}
		if v, _ := stats.Quantile(xs, 0); v != min {
			c.Errorf("Q(0)=%v != min %v", v, min)
		}
		if v, _ := stats.Quantile(xs, 1); v != max {
			c.Errorf("Q(1)=%v != max %v", v, max)
		}
	})
}

// TestPropNonFiniteRejected pins satellite #1: every statistic rejects
// NaN/Inf contamination with ErrNonFinite instead of returning NaN.
func TestPropNonFiniteRejected(t *testing.T) {
	check.Forall(t, contaminated, func(c *check.T, xs []float64) {
		if !hasNonFinite(xs) {
			c.Discard() // clean draw; only contaminated inputs are interesting
		}
		c.Classify(len(xs) == 1, "single-element")
		type result struct {
			name string
			err  error
		}
		ys := make([]float64, len(xs)) // finite partner for bivariate calls
		for i := range ys {
			ys[i] = float64(i)
		}
		var results []result
		_, err := stats.Mean(xs)
		results = append(results, result{"Mean", err})
		_, err = stats.Variance(xs)
		results = append(results, result{"Variance", err})
		_, err = stats.StdDev(xs)
		results = append(results, result{"StdDev", err})
		_, _, err = stats.MinMax(xs)
		results = append(results, result{"MinMax", err})
		_, err = stats.Range(xs)
		results = append(results, result{"Range", err})
		_, err = stats.Quantile(xs, 0.5)
		results = append(results, result{"Quantile", err})
		_, err = stats.Pearson(xs, ys)
		results = append(results, result{"Pearson(x contaminated)", err})
		_, err = stats.Pearson(ys, xs)
		results = append(results, result{"Pearson(y contaminated)", err})
		_, err = stats.Spearman(xs, ys)
		results = append(results, result{"Spearman", err})
		_, err = stats.Summary(xs)
		results = append(results, result{"Summary", err})
		_, _, err = stats.Histogram(xs, 8)
		results = append(results, result{"Histogram", err})
		if len(xs) >= 2 {
			_, err = stats.SampleVariance(xs)
			results = append(results, result{"SampleVariance", err})
			_, err = stats.FitLine(ys, xs)
			results = append(results, result{"FitLine", err})
		}
		for _, r := range results {
			if !errors.Is(r.err, stats.ErrNonFinite) {
				c.Errorf("%s: err = %v, want ErrNonFinite", r.name, r.err)
			}
		}
	})
}

// TestPropPearsonSymmetricAndBounded: corr(x,y) = corr(y,x) and
// |corr| <= 1 (allowing a hair of rounding).
func TestPropPearsonSymmetricAndBounded(t *testing.T) {
	type pair struct{ xs, ys []float64 }
	g := check.Gen[pair]{
		Generate: func(r *rand.Rand, size int) pair {
			n := 2 + r.Intn(40)
			xs := make([]float64, n)
			ys := make([]float64, n)
			for i := range xs {
				xs[i] = -50 + 100*r.Float64()
				ys[i] = -50 + 100*r.Float64()
			}
			return pair{xs, ys}
		},
	}
	check.Forall(t, g, func(c *check.T, p pair) {
		rxy, errXY := stats.Pearson(p.xs, p.ys)
		ryx, errYX := stats.Pearson(p.ys, p.xs)
		if errXY != nil || errYX != nil {
			if errors.Is(errXY, stats.ErrDegenerate) && errors.Is(errYX, stats.ErrDegenerate) {
				c.Label("degenerate")
				return
			}
			c.Fatalf("Pearson errors: %v / %v", errXY, errYX)
		}
		if rxy != ryx {
			c.Errorf("Pearson not symmetric: %v vs %v", rxy, ryx)
		}
		if math.Abs(rxy) > 1+1e-12 {
			c.Errorf("|corr| = %v > 1", math.Abs(rxy))
		}
	})
}
