// Package stats provides the small statistical toolkit used by every
// AmpereBleed experiment: moments, Pearson correlation, ordinary
// least-squares fits, quantiles, and histograms.
//
// All functions operate on float64 slices and never mutate their inputs
// unless documented otherwise. Functions that are undefined for empty
// input return an error rather than NaN so callers surface misuse early.
// The same contract covers contaminated input: any NaN or ±Inf sample
// (a trace gap that was not stripped with Trace.Finite, or sensor
// garbage) yields ErrNonFinite instead of silently propagating NaN
// through a mean or correlation into a report.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned when a statistic is requested over no samples.
var ErrEmpty = errors.New("stats: empty sample")

// ErrLengthMismatch is returned by bivariate statistics when the two
// samples have different lengths.
var ErrLengthMismatch = errors.New("stats: sample length mismatch")

// ErrDegenerate is returned when a statistic is undefined because one of
// the samples has zero variance.
var ErrDegenerate = errors.New("stats: degenerate (zero-variance) sample")

// ErrNonFinite is returned when a sample contains NaN or ±Inf. Trace
// gaps are NaN by convention (trace.Gap); strip them with
// Trace.Finite before computing statistics.
var ErrNonFinite = errors.New("stats: non-finite sample (NaN or Inf)")

// checkFinite returns ErrNonFinite if any element of xs is NaN or ±Inf.
func checkFinite(xs []float64) error {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return ErrNonFinite
		}
	}
	return nil
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if err := checkFinite(xs); err != nil {
		return 0, err
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// MustMean is Mean for callers that have already validated their input;
// it panics on empty or non-finite input.
func MustMean(xs []float64) float64 {
	m, err := Mean(xs)
	if err != nil {
		panic(err)
	}
	return m
}

// Variance returns the population variance of xs (dividing by n, not n-1).
// Side-channel traces are treated as complete populations of the sampled
// window, matching how the paper reports spreads.
func Variance(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	acc := 0.0
	for _, x := range xs {
		d := x - m
		acc += d * d
	}
	return acc / float64(len(xs)), nil
}

// SampleVariance returns the unbiased sample variance (dividing by n-1).
func SampleVariance(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	acc := 0.0
	for _, x := range xs {
		d := x - m
		acc += d * d
	}
	return acc / float64(len(xs)-1), nil
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// MinMax returns the minimum and maximum of xs.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	if err := checkFinite(xs); err != nil {
		return 0, 0, err
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}

// Range returns max-min of xs.
func Range(xs []float64) (float64, error) {
	min, max, err := MinMax(xs)
	if err != nil {
		return 0, err
	}
	return max - min, nil
}

// Pearson returns the Pearson product-moment correlation coefficient
// between xs and ys. It is the statistic Fig. 2 of the paper reports for
// each sensor channel against the victim activation level.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrLengthMismatch
	}
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if err := checkFinite(xs); err != nil {
		return 0, err
	}
	if err := checkFinite(ys); err != nil {
		return 0, err
	}
	mx := MustMean(xs)
	my := MustMean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, ErrDegenerate
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman returns the rank correlation coefficient between xs and ys:
// Pearson over the rank transforms, with ties assigned their average
// rank. Unlike Pearson it measures any monotone relationship, which
// makes it the right monotonicity check for quantized channels whose
// response is staircase-shaped rather than linear.
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrLengthMismatch
	}
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	// Validate before ranking: NaN breaks the sort order silently.
	if err := checkFinite(xs); err != nil {
		return 0, err
	}
	if err := checkFinite(ys); err != nil {
		return 0, err
	}
	return Pearson(ranks(xs), ranks(ys))
}

// ranks returns average ranks (1-based) with ties averaged.
func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, len(xs))
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

// LinearFit holds the result of an ordinary least-squares fit
// y = Slope*x + Intercept.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64 // coefficient of determination
}

// FitLine computes the least-squares line through (xs, ys). The paper
// fits a linear function per measurement channel in Fig. 2; Slope is the
// "LSBs per setting" figure once divided by the channel's LSB.
func FitLine(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, ErrLengthMismatch
	}
	if len(xs) < 2 {
		return LinearFit{}, ErrEmpty
	}
	if err := checkFinite(xs); err != nil {
		return LinearFit{}, err
	}
	if err := checkFinite(ys); err != nil {
		return LinearFit{}, err
	}
	mx := MustMean(xs)
	my := MustMean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, ErrDegenerate
	}
	slope := sxy / sxx
	fit := LinearFit{Slope: slope, Intercept: my - slope*mx}
	if syy > 0 {
		// R² = 1 - SS_res/SS_tot, computed directly from the fit.
		var ssRes float64
		for i := range xs {
			r := ys[i] - (fit.Slope*xs[i] + fit.Intercept)
			ssRes += r * r
		}
		fit.R2 = 1 - ssRes/syy
	}
	return fit, nil
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between closest ranks (the "R-7" rule used by most
// statistics packages). xs is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, errors.New("stats: quantile out of [0,1]")
	}
	if err := checkFinite(xs); err != nil {
		return 0, err
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// FiveNum is the five-number summary used to draw the box plots of
// Fig. 4 (RSA Hamming-weight distributions).
type FiveNum struct {
	Min, Q1, Median, Q3, Max float64
}

// Summary computes the five-number summary of xs.
func Summary(xs []float64) (FiveNum, error) {
	if len(xs) == 0 {
		return FiveNum{}, ErrEmpty
	}
	var s FiveNum
	var err error
	if s.Min, s.Max, err = MinMax(xs); err != nil {
		return FiveNum{}, err
	}
	if s.Q1, err = Quantile(xs, 0.25); err != nil {
		return FiveNum{}, err
	}
	if s.Median, err = Quantile(xs, 0.5); err != nil {
		return FiveNum{}, err
	}
	if s.Q3, err = Quantile(xs, 0.75); err != nil {
		return FiveNum{}, err
	}
	return s, nil
}

// IQR returns the interquartile range of the summary.
func (f FiveNum) IQR() float64 { return f.Q3 - f.Q1 }

// Overlaps reports whether the [Q1,Q3] boxes of two summaries overlap.
// Two Hamming-weight classes are "distinguishable" in the Fig. 4 sense
// when their boxes do not overlap.
func (f FiveNum) Overlaps(g FiveNum) bool {
	return f.Q1 <= g.Q3 && g.Q1 <= f.Q3
}

// Histogram bins xs into n equal-width bins over [min,max]. Values equal
// to max land in the last bin. Returns the bin counts and bin width.
func Histogram(xs []float64, n int) (counts []int, width float64, err error) {
	if len(xs) == 0 {
		return nil, 0, ErrEmpty
	}
	if n <= 0 {
		return nil, 0, errors.New("stats: non-positive bin count")
	}
	// MinMax re-checks emptiness but can now also fail on NaN/Inf, so
	// its error is no longer safe to drop on the floor.
	min, max, err := MinMax(xs)
	if err != nil {
		return nil, 0, err
	}
	counts = make([]int, n)
	if min == max {
		counts[0] = len(xs)
		return counts, 0, nil
	}
	width = (max - min) / float64(n)
	for _, x := range xs {
		i := int((x - min) / width)
		if i >= n {
			i = n - 1
		}
		counts[i]++
	}
	return counts, width, nil
}
