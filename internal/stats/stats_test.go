package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	m, err := Mean([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatalf("Mean: %v", err)
	}
	if m != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", m)
	}
}

func TestMeanEmpty(t *testing.T) {
	if _, err := Mean(nil); err != ErrEmpty {
		t.Fatalf("Mean(nil) err = %v, want ErrEmpty", err)
	}
}

func TestMustMeanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustMean(nil) did not panic")
		}
	}()
	MustMean(nil)
}

func TestVariance(t *testing.T) {
	v, err := Variance([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatalf("Variance: %v", err)
	}
	if v != 4 {
		t.Fatalf("Variance = %v, want 4", v)
	}
}

func TestSampleVariance(t *testing.T) {
	v, err := SampleVariance([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatalf("SampleVariance: %v", err)
	}
	if !almostEq(v, 32.0/7.0, 1e-12) {
		t.Fatalf("SampleVariance = %v, want %v", v, 32.0/7.0)
	}
	if _, err := SampleVariance([]float64{1}); err == nil {
		t.Fatal("SampleVariance of one sample should error")
	}
}

func TestStdDev(t *testing.T) {
	s, err := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatalf("StdDev: %v", err)
	}
	if s != 2 {
		t.Fatalf("StdDev = %v, want 2", s)
	}
}

func TestMinMaxRange(t *testing.T) {
	min, max, err := MinMax([]float64{3, -1, 7, 2})
	if err != nil {
		t.Fatalf("MinMax: %v", err)
	}
	if min != -1 || max != 7 {
		t.Fatalf("MinMax = (%v,%v), want (-1,7)", min, max)
	}
	r, err := Range([]float64{3, -1, 7, 2})
	if err != nil || r != 8 {
		t.Fatalf("Range = (%v,%v), want (8,nil)", r, err)
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatalf("Pearson: %v", err)
	}
	if !almostEq(r, 1, 1e-12) {
		t.Fatalf("Pearson = %v, want 1", r)
	}
}

func TestPearsonAnticorrelated(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{10, 8, 6, 4, 2}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatalf("Pearson: %v", err)
	}
	if !almostEq(r, -1, 1e-12) {
		t.Fatalf("Pearson = %v, want -1", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err != ErrLengthMismatch {
		t.Fatalf("mismatch err = %v", err)
	}
	if _, err := Pearson(nil, nil); err != ErrEmpty {
		t.Fatalf("empty err = %v", err)
	}
	if _, err := Pearson([]float64{1, 1}, []float64{2, 3}); err != ErrDegenerate {
		t.Fatalf("degenerate err = %v", err)
	}
}

func TestSpearmanMonotoneNonlinear(t *testing.T) {
	// Exponential growth: Pearson < 1, Spearman exactly 1.
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Exp(x)
	}
	s, err := Spearman(xs, ys)
	if err != nil {
		t.Fatalf("Spearman: %v", err)
	}
	if !almostEq(s, 1, 1e-12) {
		t.Fatalf("Spearman = %v, want 1 for monotone data", s)
	}
	p, _ := Pearson(xs, ys)
	if p >= 0.999 {
		t.Fatalf("Pearson = %v, expected visibly below 1 on exponential data", p)
	}
}

func TestSpearmanTies(t *testing.T) {
	// A quantized staircase: ties get average ranks, correlation stays
	// strongly positive.
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := []float64{10, 10, 20, 20, 30, 30}
	s, err := Spearman(xs, ys)
	if err != nil {
		t.Fatalf("Spearman: %v", err)
	}
	if s < 0.9 {
		t.Fatalf("Spearman = %v on a staircase", s)
	}
}

func TestSpearmanErrors(t *testing.T) {
	if _, err := Spearman([]float64{1}, []float64{1, 2}); err != ErrLengthMismatch {
		t.Fatalf("mismatch err = %v", err)
	}
	if _, err := Spearman(nil, nil); err != ErrEmpty {
		t.Fatalf("empty err = %v", err)
	}
	if _, err := Spearman([]float64{1, 1}, []float64{1, 2}); err != ErrDegenerate {
		t.Fatalf("degenerate err = %v", err)
	}
}

func TestRanks(t *testing.T) {
	got := ranks([]float64{30, 10, 20, 10})
	want := []float64{4, 1.5, 3, 1.5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", got, want)
		}
	}
}

func TestFitLine(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatalf("FitLine: %v", err)
	}
	if !almostEq(fit.Slope, 2, 1e-12) || !almostEq(fit.Intercept, 1, 1e-12) {
		t.Fatalf("fit = %+v, want slope 2 intercept 1", fit)
	}
	if !almostEq(fit.R2, 1, 1e-12) {
		t.Fatalf("R2 = %v, want 1", fit.R2)
	}
}

func TestFitLineNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 500)
	ys := make([]float64, 500)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 3*xs[i] + 10 + rng.NormFloat64()
	}
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatalf("FitLine: %v", err)
	}
	if !almostEq(fit.Slope, 3, 0.01) {
		t.Fatalf("Slope = %v, want ~3", fit.Slope)
	}
	if fit.R2 < 0.999 {
		t.Fatalf("R2 = %v, want >0.999", fit.R2)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	med, err := Quantile(xs, 0.5)
	if err != nil {
		t.Fatalf("Quantile: %v", err)
	}
	if med != 2.5 {
		t.Fatalf("median = %v, want 2.5", med)
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Fatal("Quantile mutated its input")
	}
	lo, _ := Quantile(xs, 0)
	hi, _ := Quantile(xs, 1)
	if lo != 1 || hi != 4 {
		t.Fatalf("q0=%v q1=%v, want 1 and 4", lo, hi)
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Fatal("out-of-range quantile should error")
	}
}

func TestSummaryAndOverlap(t *testing.T) {
	a, err := Summary([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatalf("Summary: %v", err)
	}
	if a.Min != 1 || a.Max != 5 || a.Median != 3 {
		t.Fatalf("summary = %+v", a)
	}
	b, _ := Summary([]float64{10, 11, 12})
	if a.Overlaps(b) {
		t.Fatal("disjoint boxes reported as overlapping")
	}
	c, _ := Summary([]float64{2, 3, 4})
	if !a.Overlaps(c) {
		t.Fatal("overlapping boxes reported as disjoint")
	}
	if a.IQR() != a.Q3-a.Q1 {
		t.Fatal("IQR inconsistent")
	}
}

func TestHistogram(t *testing.T) {
	counts, width, err := Histogram([]float64{0, 0.5, 1, 1.5, 2}, 2)
	if err != nil {
		t.Fatalf("Histogram: %v", err)
	}
	if width != 1 {
		t.Fatalf("width = %v, want 1", width)
	}
	if counts[0] != 2 || counts[1] != 3 {
		t.Fatalf("counts = %v, want [2 3]", counts)
	}
}

func TestHistogramConstant(t *testing.T) {
	counts, width, err := Histogram([]float64{5, 5, 5}, 4)
	if err != nil {
		t.Fatalf("Histogram: %v", err)
	}
	if width != 0 || counts[0] != 3 {
		t.Fatalf("constant histogram = %v width %v", counts, width)
	}
}

// Property: Pearson is invariant under positive affine transforms and
// bounded by [-1, 1].
func TestPearsonProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(64)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		r, err := Pearson(xs, ys)
		if err != nil {
			return true // degenerate draws are fine
		}
		if r < -1-1e-9 || r > 1+1e-9 {
			return false
		}
		// Affine transform of xs with positive scale preserves r.
		scaled := make([]float64, n)
		for i := range xs {
			scaled[i] = 3.7*xs[i] + 11
		}
		r2, err := Pearson(scaled, ys)
		if err != nil {
			return false
		}
		return almostEq(r, r2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the five-number summary is ordered min<=Q1<=median<=Q3<=max.
func TestSummaryOrderedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		s, err := Summary(xs)
		if err != nil {
			return false
		}
		return s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 && s.Q3 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram counts sum to the number of samples.
func TestHistogramTotalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		bins := 1 + rng.Intn(20)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 50
		}
		counts, _, err := Histogram(xs, bins)
		if err != nil {
			return false
		}
		total := 0
		for _, c := range counts {
			total += c
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
