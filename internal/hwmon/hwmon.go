// Package hwmon models the Linux hardware-monitoring ("hwmon") class
// through which AmpereBleed samples the INA226 sensors.
//
// Each registered sensor appears as class/hwmon/hwmonN in the simulated
// sysfs tree with the standard attribute files and units of the hwmon
// ABI (Documentation/hwmon/sysfs-interface):
//
//	name            driver name ("ina226")
//	label           board designator, e.g. "ina226_u79"
//	curr1_input     current in integer milliamps (world-readable)
//	in1_input       bus voltage in integer millivolts (world-readable)
//	power1_input    power in integer microwatts (world-readable)
//	shunt_resistor  shunt value in microohms (world-readable)
//	update_interval interval in milliseconds (root-writable)
//
// World-readable value attributes plus a root-gated update interval are
// precisely the access-control facts of Sec. III-C: an unprivileged
// process can poll at will but is pinned to the default 35 ms rate.
package hwmon

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/ina226"
	"repro/internal/sysfs"
)

// ClassDir is where the subsystem lives inside the sysfs tree.
const ClassDir = "class/hwmon"

// DriverName is the value of every entry's "name" attribute.
const DriverName = "ina226"

// Entry is one registered sensor.
type Entry struct {
	// Index is N in hwmonN.
	Index int
	// Label is the board designator ("ina226_u76", ...).
	Label string
	// Dir is the sysfs directory of the entry, e.g. "class/hwmon/hwmon0".
	Dir string
	// Device is the underlying sensor model.
	Device *ina226.Device

	// attrs keeps the attribute set so the entry can be re-exposed
	// under a new index after a hotplug/renumber event. The Show/Store
	// closures capture the device, not the path, so they survive moves.
	attrs map[string]sysfs.Attr
}

// Attr returns the sysfs path of one of the entry's attribute files.
func (e *Entry) Attr(name string) string { return e.Dir + "/" + name }

// Subsystem registers sensors into a sysfs tree.
type Subsystem struct {
	fs      *sysfs.FS
	entries []*Entry
	byLabel map[string]*Entry
}

// New returns a subsystem rooted in the given tree. The class directory
// is created immediately so discovery of an empty subsystem works.
func New(fs *sysfs.FS) (*Subsystem, error) {
	if fs == nil {
		return nil, errors.New("hwmon: nil sysfs")
	}
	if err := fs.MkdirAll(ClassDir); err != nil {
		return nil, err
	}
	return &Subsystem{fs: fs, byLabel: make(map[string]*Entry)}, nil
}

// FS returns the underlying sysfs tree.
func (s *Subsystem) FS() *sysfs.FS { return s.fs }

// Entries returns all registered entries in registration order.
func (s *Subsystem) Entries() []*Entry { return append([]*Entry(nil), s.entries...) }

// ByLabel returns the entry with the given board designator.
func (s *Subsystem) ByLabel(label string) (*Entry, bool) {
	e, ok := s.byLabel[label]
	return e, ok
}

// Register exposes a sensor as the next hwmonN directory.
func (s *Subsystem) Register(dev *ina226.Device) (*Entry, error) {
	if dev == nil {
		return nil, errors.New("hwmon: nil device")
	}
	label := dev.Label()
	if _, dup := s.byLabel[label]; dup {
		return nil, fmt.Errorf("hwmon: label %q already registered", label)
	}
	e := &Entry{
		Index:  len(s.entries),
		Label:  label,
		Device: dev,
	}
	e.Dir = fmt.Sprintf("%s/hwmon%d", ClassDir, e.Index)

	ro := func(show func() (string, error)) sysfs.Attr {
		return sysfs.Attr{Mode: sysfs.ModeRO, Show: show}
	}
	labelStr := label + "\n"
	attrs := map[string]sysfs.Attr{
		"name":  ro(func() (string, error) { return DriverName + "\n", nil }),
		"label": ro(func() (string, error) { return labelStr, nil }),
		// The measurement attributes are the attacker's polling targets;
		// their renderings are cached per latched value (see cachedInt)
		// so steady-state polling does not allocate.
		"curr1_input":  ro(cachedMilli(func() float64 { return dev.Read().CurrentAmps })),
		"in1_input":    ro(cachedMilli(func() float64 { return dev.Read().BusVolts })),
		"power1_input": ro(cachedMicro(func() float64 { return dev.Read().PowerWatts })),
		"shunt_resistor": ro(func() (string, error) {
			return formatMicro(dev.ShuntOhms()), nil
		}),
		"update_interval": {
			Mode: sysfs.ModeRW,
			Show: func() (string, error) {
				ms := dev.UpdateInterval().Milliseconds()
				return strconv.FormatInt(ms, 10) + "\n", nil
			},
			Store: func(v string) error {
				ms, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
				if err != nil {
					return fmt.Errorf("hwmon: bad update_interval %q: %w", v, err)
				}
				return dev.SetUpdateInterval(time.Duration(ms) * time.Millisecond)
			},
		},
	}
	e.attrs = attrs
	for name, a := range attrs {
		if err := s.fs.AddAttr(e.Attr(name), a); err != nil {
			return nil, err
		}
	}
	s.entries = append(s.entries, e)
	s.byLabel[label] = e
	return e, nil
}

// Renumber simulates a hotplug re-enumeration: every entry's hwmonN
// directory disappears and reappears under an index shifted by n (how
// the kernel renumbers the class when a device resets and re-probes).
// Attribute contents and labels are unchanged; only the paths move, so
// any reader holding a stale path sees ENOENT until it re-discovers.
func (s *Subsystem) Renumber(n int) error {
	if n < 1 {
		return fmt.Errorf("hwmon: renumber shift %d must be positive", n)
	}
	for _, e := range s.entries {
		if err := s.fs.Remove(e.Dir); err != nil {
			return err
		}
	}
	for _, e := range s.entries {
		e.Index += n
		e.Dir = fmt.Sprintf("%s/hwmon%d", ClassDir, e.Index)
		for name, a := range e.attrs {
			if err := s.fs.AddAttr(e.Attr(name), a); err != nil {
				return err
			}
		}
	}
	return nil
}

// TempDriverName is the "name" attribute of temperature nodes (the
// ZCU102's PS sysmon exposes die temperature the same way).
const TempDriverName = "sysmon"

// RegisterTemperature exposes a die-temperature source as the next
// hwmonN node with the standard temp1_input attribute (millidegrees
// Celsius, world-readable). Like the current sensors, it is an
// unprivileged side channel: it reveals the thermal residue of recent
// FPGA activity.
func (s *Subsystem) RegisterTemperature(label string, tempC func() float64) (*Entry, error) {
	if tempC == nil {
		return nil, errors.New("hwmon: nil temperature source")
	}
	if _, dup := s.byLabel[label]; dup {
		return nil, fmt.Errorf("hwmon: label %q already registered", label)
	}
	e := &Entry{Index: len(s.entries), Label: label}
	e.Dir = fmt.Sprintf("%s/hwmon%d", ClassDir, e.Index)
	labelStr := label + "\n"
	attrs := map[string]sysfs.Attr{
		"name": {Mode: sysfs.ModeRO, Show: func() (string, error) {
			return TempDriverName + "\n", nil
		}},
		"label": {Mode: sysfs.ModeRO, Show: func() (string, error) {
			return labelStr, nil
		}},
		"temp1_input": {Mode: sysfs.ModeRO, Show: cachedMilli(tempC)},
	}
	e.attrs = attrs
	for name, a := range attrs {
		if err := s.fs.AddAttr(e.Attr(name), a); err != nil {
			return nil, err
		}
	}
	s.entries = append(s.entries, e)
	s.byLabel[label] = e
	return e, nil
}

// ValueAttrs are the measurement attributes the mitigation locks down.
var ValueAttrs = []string{"curr1_input", "in1_input", "power1_input"}

// RestrictToRoot applies the paper's mitigation (Sec. V) to one sensor:
// its measurement attributes become readable by root only. Temperature
// nodes are locked down via their temp1_input attribute.
func (s *Subsystem) RestrictToRoot(label string) error {
	e, ok := s.byLabel[label]
	if !ok {
		return fmt.Errorf("hwmon: unknown label %q", label)
	}
	for _, a := range append([]string{"temp1_input"}, ValueAttrs...) {
		if !s.fs.Exists(e.Attr(a)) {
			continue
		}
		if err := s.fs.SetMode(e.Attr(a), sysfs.ModeRootOnly); err != nil {
			return err
		}
	}
	return nil
}

// RestrictAllToRoot applies RestrictToRoot to every registered sensor.
func (s *Subsystem) RestrictAllToRoot() error {
	for _, e := range s.entries {
		if err := s.RestrictToRoot(e.Label); err != nil {
			return err
		}
	}
	return nil
}

// formatMilli renders a value in thousandths, as hwmon reports mA and mV.
func formatMilli(v float64) string {
	return strconv.FormatInt(int64(roundHalfAway(v*1e3)), 10) + "\n"
}

// formatMicro renders a value in millionths, as hwmon reports µW and µΩ.
func formatMicro(v float64) string {
	return strconv.FormatInt(int64(roundHalfAway(v*1e6)), 10) + "\n"
}

// rendered is one immutable integer→string rendering, published whole
// through an atomic pointer so concurrent readers always see a
// consistent (value, text) pair.
type rendered struct {
	n int64
	s string
}

// cachedInt returns a Show callback rendering scaled(v()) with a
// trailing newline, reusing the previous string while the rounded
// integer is unchanged. The INA226 latches registers once per update
// interval (~70 simulation ticks at the default 35 ms), so the dozens
// of polls in between re-read an identical value; caching makes those
// reads allocation-free while producing byte-identical contents.
func cachedInt(v func() float64, scale float64) func() (string, error) {
	var cache atomic.Pointer[rendered]
	return func() (string, error) {
		n := int64(roundHalfAway(v() * scale))
		if c := cache.Load(); c != nil && c.n == n {
			return c.s, nil
		}
		c := &rendered{n: n, s: strconv.FormatInt(n, 10) + "\n"}
		cache.Store(c)
		return c.s, nil
	}
}

// cachedMilli is cachedInt in thousandths (mA, mV, m°C).
func cachedMilli(v func() float64) func() (string, error) {
	return cachedInt(v, 1e3)
}

// cachedMicro is cachedInt in millionths (µW, µΩ).
func cachedMicro(v func() float64) func() (string, error) {
	return cachedInt(v, 1e6)
}

func roundHalfAway(v float64) float64 {
	if v >= 0 {
		return float64(int64(v + 0.5))
	}
	return float64(int64(v - 0.5))
}
