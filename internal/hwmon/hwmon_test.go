package hwmon

import (
	"errors"
	"io/fs"
	"strings"
	"testing"
	"time"

	"repro/internal/ina226"
	"repro/internal/sysfs"
)

// mkSensor returns an INA226 with a latched reading of the given current
// and bus voltage.
func mkSensor(t *testing.T, label string, amps, volts float64) *ina226.Device {
	t.Helper()
	dev, err := ina226.New(ina226.Config{
		Label:      label,
		ShuntOhms:  0.002,
		CurrentLSB: 1e-3,
		Probe: ina226.Probe{
			CurrentAmps: func() float64 { return amps },
			BusVolts:    func() float64 { return volts },
		},
	})
	if err != nil {
		t.Fatalf("ina226.New: %v", err)
	}
	const dt = 100 * time.Microsecond
	for now := time.Duration(0); now < 35*time.Millisecond; now += dt {
		dev.Step(now, dt)
	}
	return dev
}

func mkSubsystem(t *testing.T) (*Subsystem, *sysfs.FS) {
	t.Helper()
	tree := sysfs.New()
	sub, err := New(tree)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return sub, tree
}

func TestNewNilFS(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("nil sysfs accepted")
	}
}

func TestRegisterLaysOutTree(t *testing.T) {
	sub, tree := mkSubsystem(t)
	e, err := sub.Register(mkSensor(t, "ina226_u79", 6, 0.85))
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if e.Index != 0 || e.Dir != "class/hwmon/hwmon0" {
		t.Fatalf("entry = %+v", e)
	}
	for _, a := range []string{"name", "label", "curr1_input", "in1_input",
		"power1_input", "shunt_resistor", "update_interval"} {
		if !tree.Exists(e.Attr(a)) {
			t.Errorf("missing attribute %s", a)
		}
	}
}

func TestUnitsMatchHwmonABI(t *testing.T) {
	sub, tree := mkSubsystem(t)
	e, err := sub.Register(mkSensor(t, "ina226_u79", 6, 0.85))
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	read := func(attr string) string {
		t.Helper()
		v, err := tree.ReadFile(sysfs.Nobody, e.Attr(attr))
		if err != nil {
			t.Fatalf("read %s: %v", attr, err)
		}
		return strings.TrimSpace(v)
	}
	if got := read("curr1_input"); got != "6000" { // 6 A -> 6000 mA
		t.Errorf("curr1_input = %s, want 6000", got)
	}
	if got := read("in1_input"); got != "850" { // 0.85 V -> 850 mV
		t.Errorf("in1_input = %s, want 850", got)
	}
	if got := read("power1_input"); got != "5100000" { // 5.1 W -> 5.1e6 uW
		t.Errorf("power1_input = %s, want 5100000", got)
	}
	if got := read("shunt_resistor"); got != "2000" { // 2 mOhm -> 2000 uOhm
		t.Errorf("shunt_resistor = %s, want 2000", got)
	}
	if got := read("name"); got != "ina226" {
		t.Errorf("name = %s", got)
	}
	if got := read("label"); got != "ina226_u79" {
		t.Errorf("label = %s", got)
	}
	if got := read("update_interval"); got != "35" {
		t.Errorf("update_interval = %s, want 35", got)
	}
}

func TestRegisterErrors(t *testing.T) {
	sub, _ := mkSubsystem(t)
	if _, err := sub.Register(nil); err == nil {
		t.Fatal("nil device accepted")
	}
	dev := mkSensor(t, "dup", 1, 1)
	if _, err := sub.Register(dev); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, err := sub.Register(mkSensor(t, "dup", 1, 1)); err == nil {
		t.Fatal("duplicate label accepted")
	}
}

func TestIndicesIncrement(t *testing.T) {
	sub, _ := mkSubsystem(t)
	for i, label := range []string{"a", "b", "c"} {
		e, err := sub.Register(mkSensor(t, label, 1, 1))
		if err != nil {
			t.Fatalf("Register %s: %v", label, err)
		}
		if e.Index != i {
			t.Fatalf("Index = %d, want %d", e.Index, i)
		}
	}
	if len(sub.Entries()) != 3 {
		t.Fatalf("Entries = %d", len(sub.Entries()))
	}
	if e, ok := sub.ByLabel("b"); !ok || e.Index != 1 {
		t.Fatalf("ByLabel(b) = %+v, %v", e, ok)
	}
	if _, ok := sub.ByLabel("zz"); ok {
		t.Fatal("ByLabel false positive")
	}
}

func TestUpdateIntervalRootGate(t *testing.T) {
	sub, tree := mkSubsystem(t)
	dev := mkSensor(t, "ina226_u79", 1, 1)
	e, err := sub.Register(dev)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	p := e.Attr("update_interval")
	// Unprivileged write must be refused — the attack is pinned to 35 ms.
	if err := tree.WriteFile(sysfs.Nobody, p, "2"); !errors.Is(err, fs.ErrPermission) {
		t.Fatalf("nobody write err = %v, want ErrPermission", err)
	}
	if dev.UpdateInterval() != 35*time.Millisecond {
		t.Fatal("interval changed by unprivileged write")
	}
	// Root can retune.
	if err := tree.WriteFile(sysfs.Root, p, "2\n"); err != nil {
		t.Fatalf("root write: %v", err)
	}
	if dev.UpdateInterval() != 2*time.Millisecond {
		t.Fatalf("interval = %v, want 2ms", dev.UpdateInterval())
	}
	// Out-of-range and garbage writes are rejected by the device/parse.
	if err := tree.WriteFile(sysfs.Root, p, "1"); err == nil {
		t.Fatal("1ms accepted")
	}
	if err := tree.WriteFile(sysfs.Root, p, "abc"); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestRestrictToRoot(t *testing.T) {
	sub, tree := mkSubsystem(t)
	e, err := sub.Register(mkSensor(t, "ina226_u79", 6, 0.85))
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := sub.RestrictToRoot("ina226_u79"); err != nil {
		t.Fatalf("RestrictToRoot: %v", err)
	}
	for _, a := range ValueAttrs {
		if _, err := tree.ReadFile(sysfs.Nobody, e.Attr(a)); !errors.Is(err, fs.ErrPermission) {
			t.Errorf("%s readable by nobody after mitigation (err=%v)", a, err)
		}
		if _, err := tree.ReadFile(sysfs.Root, e.Attr(a)); err != nil {
			t.Errorf("%s unreadable by root: %v", a, err)
		}
	}
	// Non-value attributes stay readable (benign monitoring of metadata).
	if _, err := tree.ReadFile(sysfs.Nobody, e.Attr("name")); err != nil {
		t.Errorf("name attr restricted too: %v", err)
	}
	if err := sub.RestrictToRoot("missing"); err == nil {
		t.Fatal("unknown label accepted")
	}
}

func TestRestrictAllToRoot(t *testing.T) {
	sub, tree := mkSubsystem(t)
	for _, l := range []string{"a", "b"} {
		if _, err := sub.Register(mkSensor(t, l, 1, 1)); err != nil {
			t.Fatalf("Register: %v", err)
		}
	}
	if err := sub.RestrictAllToRoot(); err != nil {
		t.Fatalf("RestrictAllToRoot: %v", err)
	}
	for _, e := range sub.Entries() {
		if _, err := tree.ReadFile(sysfs.Nobody, e.Attr("curr1_input")); !errors.Is(err, fs.ErrPermission) {
			t.Errorf("%s still readable", e.Label)
		}
	}
}

func TestDiscoveryViaGlob(t *testing.T) {
	sub, tree := mkSubsystem(t)
	for _, l := range []string{"u76", "u77", "u79", "u93"} {
		if _, err := sub.Register(mkSensor(t, l, 1, 1)); err != nil {
			t.Fatalf("Register: %v", err)
		}
	}
	matches, err := fs.Glob(tree.As(sysfs.Nobody), ClassDir+"/hwmon*/curr1_input")
	if err != nil {
		t.Fatalf("Glob: %v", err)
	}
	if len(matches) != 4 {
		t.Fatalf("Glob matches = %v", matches)
	}
}

func TestRegisterTemperature(t *testing.T) {
	sub, tree := mkSubsystem(t)
	temp := 25.0
	e, err := sub.RegisterTemperature("sysmon_ps", func() float64 { return temp })
	if err != nil {
		t.Fatalf("RegisterTemperature: %v", err)
	}
	raw, err := tree.ReadFile(sysfs.Nobody, e.Attr("temp1_input"))
	if err != nil {
		t.Fatalf("unprivileged temp read: %v", err)
	}
	if strings.TrimSpace(raw) != "25000" { // millidegrees
		t.Fatalf("temp1_input = %q, want 25000", raw)
	}
	temp = 37.5
	raw, _ = tree.ReadFile(sysfs.Nobody, e.Attr("temp1_input"))
	if strings.TrimSpace(raw) != "37500" {
		t.Fatalf("temp1_input = %q, want 37500", raw)
	}
	name, _ := tree.ReadFile(sysfs.Nobody, e.Attr("name"))
	if strings.TrimSpace(name) != "sysmon" {
		t.Fatalf("name = %q", name)
	}
	// Mitigation covers temperature nodes too.
	if err := sub.RestrictToRoot("sysmon_ps"); err != nil {
		t.Fatalf("RestrictToRoot: %v", err)
	}
	if _, err := tree.ReadFile(sysfs.Nobody, e.Attr("temp1_input")); !errors.Is(err, fs.ErrPermission) {
		t.Fatalf("temp readable after mitigation: %v", err)
	}
	// Validation.
	if _, err := sub.RegisterTemperature("x", nil); err == nil {
		t.Fatal("nil source accepted")
	}
	if _, err := sub.RegisterTemperature("sysmon_ps", func() float64 { return 0 }); err == nil {
		t.Fatal("duplicate label accepted")
	}
}

func TestRestrictAllWithMixedNodes(t *testing.T) {
	sub, tree := mkSubsystem(t)
	if _, err := sub.Register(mkSensor(t, "ina226_u79", 1, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := sub.RegisterTemperature("sysmon_ps", func() float64 { return 30 }); err != nil {
		t.Fatal(err)
	}
	// Must not fail on the temp node's missing curr1_input.
	if err := sub.RestrictAllToRoot(); err != nil {
		t.Fatalf("RestrictAllToRoot: %v", err)
	}
	e, _ := sub.ByLabel("sysmon_ps")
	if _, err := tree.ReadFile(sysfs.Nobody, e.Attr("temp1_input")); !errors.Is(err, fs.ErrPermission) {
		t.Fatal("temp node not restricted")
	}
}

func TestNegativeFormatting(t *testing.T) {
	if got := formatMilli(-0.0015); strings.TrimSpace(got) != "-2" {
		t.Fatalf("formatMilli(-0.0015) = %q, want -2", got)
	}
	if got := formatMicro(1.2345678); strings.TrimSpace(got) != "1234568" {
		t.Fatalf("formatMicro = %q", got)
	}
}
