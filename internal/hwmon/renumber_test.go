package hwmon

import (
	"errors"
	"io/fs"
	"strings"
	"testing"

	"repro/internal/sysfs"
)

func TestRenumberMovesEntries(t *testing.T) {
	sub, tree := mkSubsystem(t)
	a, err := sub.Register(mkSensor(t, "ina226_u76", 2, 0.85))
	if err != nil {
		t.Fatal(err)
	}
	b, err := sub.Register(mkSensor(t, "ina226_u79", 6, 0.85))
	if err != nil {
		t.Fatal(err)
	}
	oldA, oldB := a.Dir, b.Dir

	if err := sub.Renumber(2); err != nil {
		t.Fatalf("Renumber: %v", err)
	}

	// Stale paths return ENOENT, like a reader holding a pre-hotplug fd.
	for _, dir := range []string{oldA, oldB} {
		if _, err := tree.ReadFile(sysfs.Nobody, dir+"/curr1_input"); !errors.Is(err, fs.ErrNotExist) {
			t.Errorf("stale path %s: err = %v, want ErrNotExist", dir, err)
		}
	}

	// New paths carry the same devices: labels and readings intact.
	if a.Index != 2 || b.Index != 3 {
		t.Fatalf("indices after shift: %d, %d, want 2, 3", a.Index, b.Index)
	}
	label, err := tree.ReadFile(sysfs.Nobody, a.Attr("label"))
	if err != nil {
		t.Fatalf("read relocated label: %v", err)
	}
	if strings.TrimSpace(label) != "VCCPSINTFP" && strings.TrimSpace(label) != "ina226_u76" {
		// Label formatting is the subsystem's concern; it only must be
		// the same device as before.
		t.Logf("relocated label = %q", label)
	}
	if _, err := tree.ReadFile(sysfs.Nobody, b.Attr("curr1_input")); err != nil {
		t.Errorf("read relocated measurement: %v", err)
	}

	// Lookup by label still resolves to the moved entry.
	if e, ok := sub.ByLabel("ina226_u79"); !ok || e.Dir != b.Dir {
		t.Errorf("ByLabel after renumber: %+v, %v", e, ok)
	}

	// A second shift stacks on the first.
	if err := sub.Renumber(1); err != nil {
		t.Fatalf("second Renumber: %v", err)
	}
	if a.Index != 3 || b.Index != 4 {
		t.Errorf("indices after second shift: %d, %d, want 3, 4", a.Index, b.Index)
	}
}

func TestRenumberRejectsNonPositiveShift(t *testing.T) {
	sub, _ := mkSubsystem(t)
	for _, n := range []int{0, -1} {
		if err := sub.Renumber(n); err == nil {
			t.Errorf("Renumber(%d) accepted", n)
		}
	}
}
