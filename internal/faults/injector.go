package faults

import (
	"math"
	"math/rand"
	"strings"
	"time"

	"repro/internal/hwmon"
	"repro/internal/ina226"
	"repro/internal/obs"
	"repro/internal/obs/olog"
	"repro/internal/sim"
	"repro/internal/trace"
)

// log records the structural fault events (hotplug renumbers, regulator
// excursions, dropout bursts) at debug level; the per-read faults stay
// counter-only — at hostile rates they would drown any log.
var log = olog.L("faults")

// Per-kind injection counters. They live in the process-wide registry
// so the robustness experiments can report exactly how much abuse each
// run absorbed.
var (
	cEAGAIN       = obs.C("faults.injected.sysfs_eagain")
	cEIO          = obs.C("faults.injected.sysfs_eio")
	cStale        = obs.C("faults.injected.stale_latch")
	cBitFlip      = obs.C("faults.injected.bitflip")
	cJitter       = obs.C("faults.injected.jitter")
	cDropout      = obs.C("faults.injected.dropout")
	cHotplug      = obs.C("faults.injected.hotplug")
	cRegTransient = obs.C("faults.injected.reg_transient")
)

// Injector materializes a Profile into the concrete hooks the hardware
// and sampling layers accept. One injector serves one board; all its
// randomness comes from the board engine's named streams, one stream
// per injection site.
type Injector struct {
	p   Profile
	eng *sim.Engine
}

// New returns an injector drawing from eng's deterministic streams.
func New(p Profile, eng *sim.Engine) *Injector {
	return &Injector{p: p, eng: eng}
}

// Profile returns the profile the injector was built from.
func (in *Injector) Profile() Profile { return in.p }

// valueAttr reports whether a sysfs path is a measurement attribute —
// the reads backed by real I2C transactions, and thus the only ones
// that fail transiently under bus contention. Discovery metadata
// (name, label) stays reliable.
func valueAttr(path string) bool {
	for _, a := range hwmon.ValueAttrs {
		if strings.HasSuffix(path, "/"+a) {
			return true
		}
	}
	return strings.HasSuffix(path, "/temp1_input")
}

// SysfsReadFault is the hook for sysfs.FS.SetReadFault: each read of a
// measurement attribute fails with probability SysfsErrorRate, split
// EIO/EAGAIN by SysfsEIORatio. Faults are drawn from a per-path stream
// so the sequence each attribute sees is independent of read ordering
// across attributes.
func (in *Injector) SysfsReadFault(path string) error {
	if in.p.SysfsErrorRate <= 0 || !valueAttr(path) {
		return nil
	}
	u := in.eng.Stream("faults/sysfs/" + path).Float64()
	if u >= in.p.SysfsErrorRate {
		return nil
	}
	if u < in.p.SysfsErrorRate*in.p.SysfsEIORatio {
		cEIO.Inc()
		return ErrIO
	}
	cEAGAIN.Inc()
	return ErrAgain
}

// SensorFaults returns the INA226 latch hooks for one sensor: stale
// latches with probability StaleRate and single-bit register
// corruption with probability BitFlipRate, each on its own per-label
// stream.
func (in *Injector) SensorFaults(label string) ina226.FaultHooks {
	var h ina226.FaultHooks
	if in.p.StaleRate > 0 {
		rng := in.eng.Stream("faults/ina226/stale/" + label)
		rate := in.p.StaleRate
		h.SkipLatch = func() bool {
			if rng.Float64() < rate {
				cStale.Inc()
				return true
			}
			return false
		}
	}
	if in.p.BitFlipRate > 0 {
		rng := in.eng.Stream("faults/ina226/flip/" + label)
		rate := in.p.BitFlipRate
		h.CorruptLatch = func(regs *ina226.LatchedRegs) {
			if rng.Float64() >= rate {
				return
			}
			targets := []*int32{&regs.Shunt, &regs.Bus, &regs.Current, &regs.Power}
			// Flip one of the 16 architectural bits of one register.
			*targets[rng.Intn(len(targets))] ^= 1 << uint(rng.Intn(16))
			cBitFlip.Inc()
		}
	}
	return h
}

// samplerFaults implements trace.SampleFaults on one per-key stream.
type samplerFaults struct {
	p   Profile
	rng *rand.Rand
}

func (s *samplerFaults) JitterDelay(interval time.Duration) time.Duration {
	if s.p.JitterRate <= 0 {
		return 0
	}
	if s.rng.Float64() >= s.p.JitterRate {
		return 0
	}
	cJitter.Inc()
	return time.Duration(s.rng.Float64() * s.p.JitterFrac * float64(interval))
}

func (s *samplerFaults) DropoutLen() int {
	if s.p.DropoutRate <= 0 {
		return 0
	}
	if s.rng.Float64() >= s.p.DropoutRate {
		return 0
	}
	n := s.p.DropoutLen
	if n < 1 {
		n = 1
	}
	cDropout.Inc()
	k := 1 + s.rng.Intn(n)
	log.Debug("dropout burst injected", "intervals", k)
	return k
}

// SamplerFaults returns the scheduler fault hook for one sampling loop
// (jitter + dropout bursts). key names the loop — use the recorded
// channel, e.g. "sampler/u76/curr" — so concurrent recorders draw from
// decorrelated streams.
func (in *Injector) SamplerFaults(key string) trace.SampleFaults {
	if in.p.JitterRate <= 0 && in.p.DropoutRate <= 0 {
		return nil
	}
	return &samplerFaults{p: in.p, rng: in.eng.Stream("faults/" + key)}
}

// regTransientTau is the decay time constant of an injected regulator
// excursion — a few engine ticks, like a real VRM recovering from a
// load step.
const regTransientTau = 500 * time.Microsecond

// RegulatorDisturbance returns the per-tick output-voltage transient
// hook for one rail (for pdn.Regulator.SetDisturbance), or nil when
// the profile has no regulator faults. Excursions fire as a Poisson
// process at RegTransientRate per simulated second, jump to a random
// amplitude within ±RegTransientVolts, and decay exponentially.
func (in *Injector) RegulatorDisturbance(rail string) func(now time.Duration) float64 {
	if in.p.RegTransientRate <= 0 || in.p.RegTransientVolts <= 0 {
		return nil
	}
	rng := in.eng.Stream("faults/regulator/" + rail)
	rate := in.p.RegTransientRate
	volts := in.p.RegTransientVolts
	var amp float64
	var last time.Duration
	return func(now time.Duration) float64 {
		if dt := now - last; dt > 0 && amp != 0 {
			amp *= math.Exp(-dt.Seconds() / regTransientTau.Seconds())
			if math.Abs(amp) < 1e-6 {
				amp = 0
			}
		}
		last = now
		if rng.Float64() < rate*in.eng.Dt().Seconds() {
			a := volts * (0.5 + 0.5*rng.Float64())
			if rng.Intn(2) == 0 {
				a = -a
			}
			amp = a
			cRegTransient.Inc()
			log.Debug("regulator transient injected", "rail", rail, "volts", a)
		}
		return amp
	}
}

// HotplugStepper returns a component that renumbers the hwmon class as
// a Poisson process at HotplugRate events per simulated second, or nil
// when the profile has no hotplug faults. Register it with the board
// engine; readers holding pre-renumber paths see ErrNotExist until
// they re-discover.
func (in *Injector) HotplugStepper(hw *hwmon.Subsystem) sim.Steppable {
	if in.p.HotplugRate <= 0 {
		return nil
	}
	rng := in.eng.Stream("faults/hotplug")
	rate := in.p.HotplugRate
	return sim.StepFunc(func(now, dt time.Duration) {
		if rng.Float64() >= rate*dt.Seconds() {
			return
		}
		shift := 1 + rng.Intn(4)
		if err := hw.Renumber(shift); err == nil {
			cHotplug.Inc()
			log.Debug("hwmon hotplug renumber injected", "shift", shift, "sim", now)
		}
	})
}
