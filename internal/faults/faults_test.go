package faults

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestPresetsAreWellFormed(t *testing.T) {
	names := PresetNames()
	if len(names) != 5 {
		t.Fatalf("have %d presets %v, want 5", len(names), names)
	}
	for _, name := range names {
		p, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name != name {
			t.Errorf("preset %q carries Name %q", name, p.Name)
		}
		enabled := name != "none"
		if p.Enabled() != enabled {
			t.Errorf("preset %q Enabled() = %v, want %v", name, p.Enabled(), enabled)
		}
		for f, v := range map[string]float64{
			"SysfsErrorRate": p.SysfsErrorRate, "SysfsEIORatio": p.SysfsEIORatio,
			"StaleRate": p.StaleRate, "BitFlipRate": p.BitFlipRate,
			"JitterRate": p.JitterRate, "JitterFrac": p.JitterFrac,
			"DropoutRate": p.DropoutRate,
		} {
			if v < 0 || v > 1 {
				t.Errorf("preset %q: %s = %v outside [0,1]", name, f, v)
			}
		}
	}
	if _, err := Preset("no-such-profile"); err == nil {
		t.Error("unknown preset did not error")
	}
}

func TestScale(t *testing.T) {
	base, err := Preset("hostile")
	if err != nil {
		t.Fatal(err)
	}
	zero, err := base.Scale(0)
	if err != nil {
		t.Fatal(err)
	}
	if zero.Enabled() {
		t.Errorf("intensity 0 still enabled: %+v", zero)
	}
	doubled, err := base.Scale(2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := doubled.SysfsErrorRate, 2*base.SysfsErrorRate; got != want {
		t.Errorf("SysfsErrorRate scaled to %v, want %v", got, want)
	}
	if doubled.HotplugRate != 2*base.HotplugRate {
		t.Errorf("HotplugRate scaled to %v, want %v", doubled.HotplugRate, 2*base.HotplugRate)
	}
	// Ratios, amplitudes, and burst lengths must not scale.
	if doubled.SysfsEIORatio != base.SysfsEIORatio ||
		doubled.JitterFrac != base.JitterFrac ||
		doubled.DropoutLen != base.DropoutLen ||
		doubled.RegTransientVolts != base.RegTransientVolts {
		t.Errorf("non-rate fields changed under Scale: %+v", doubled)
	}
	// Probabilities clamp at 1 under extreme intensity.
	extreme, err := base.Scale(1e6)
	if err != nil {
		t.Fatal(err)
	}
	if extreme.SysfsErrorRate != 1 || extreme.DropoutRate != 1 {
		t.Errorf("probabilities not clamped: %+v", extreme)
	}
	if _, err := base.Scale(-1); err == nil {
		t.Error("negative intensity did not error")
	}
}

func TestIsTransient(t *testing.T) {
	if !IsTransient(ErrAgain) || !IsTransient(ErrIO) {
		t.Error("sentinels not classified transient")
	}
	if !IsTransient(fmt.Errorf("read curr1_input: %w", ErrIO)) {
		t.Error("wrapped sentinel not classified transient")
	}
	if IsTransient(errors.New("permission denied")) || IsTransient(nil) {
		t.Error("non-sentinel classified transient")
	}
}

func TestSysfsReadFaultTargetsMeasurementAttrsOnly(t *testing.T) {
	eng, err := sim.NewEngine(100*time.Microsecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	in := New(Profile{SysfsErrorRate: 1, SysfsEIORatio: 1}, eng)
	if err := in.SysfsReadFault("/sys/class/hwmon/hwmon3/curr1_input"); !errors.Is(err, ErrIO) {
		t.Errorf("measurement attr at rate 1: err = %v, want ErrIO", err)
	}
	for _, path := range []string{
		"/sys/class/hwmon/hwmon3/name",
		"/sys/class/hwmon/hwmon3/label",
		"/sys/class/hwmon/hwmon3/update_interval",
	} {
		if err := in.SysfsReadFault(path); err != nil {
			t.Errorf("metadata attr %s faulted: %v", path, err)
		}
	}
	// EIORatio 0 => all failures are EAGAIN.
	in = New(Profile{SysfsErrorRate: 1}, eng)
	if err := in.SysfsReadFault("/sys/class/hwmon/hwmon0/in1_input"); !errors.Is(err, ErrAgain) {
		t.Errorf("EIORatio 0: err = %v, want ErrAgain", err)
	}
}

// TestInjectorStreamsAreDeterministicAndPerSite pins the core
// replayability property: two engines with the same seed produce the
// same fault sequence per site, and distinct sites never share a
// stream (so read ordering across sites cannot shift the sequences).
func TestInjectorStreamsAreDeterministicAndPerSite(t *testing.T) {
	p := Profile{SysfsErrorRate: 0.5, SysfsEIORatio: 0.5}
	sequence := func(in *Injector, path string, n int) []bool {
		out := make([]bool, n)
		for i := range out {
			out[i] = in.SysfsReadFault(path) != nil
		}
		return out
	}
	mk := func(seed int64) *Injector {
		eng, err := sim.NewEngine(100*time.Microsecond, seed)
		if err != nil {
			t.Fatal(err)
		}
		return New(p, eng)
	}
	const n = 64
	a, b := mk(7), mk(7)
	pathA, pathB := "/sys/class/hwmon/hwmon0/curr1_input", "/sys/class/hwmon/hwmon1/curr1_input"

	// Same seed, same site: identical sequence — even when the other
	// site's reads are interleaved differently.
	seqA := sequence(a, pathA, n)
	for i := 0; i < n; i++ {
		sequence(b, pathB, 3) // extra draws on the *other* site
		if got := sequence(b, pathA, 1)[0]; got != seqA[i] {
			t.Fatalf("read %d of %s diverged once %s was interleaved", i, pathA, pathB)
		}
	}

	// Different seed: the sequence must change somewhere.
	c := mk(8)
	if seqC := sequence(c, pathA, n); equalBools(seqA, seqC) {
		t.Error("seed change did not change the fault sequence")
	}
}

func equalBools(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSamplerFaultsNilWhenDisabled(t *testing.T) {
	eng, err := sim.NewEngine(100*time.Microsecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sf := New(Profile{SysfsErrorRate: 1}, eng).SamplerFaults("sampler/x"); sf != nil {
		t.Error("profile without jitter/dropout returned a sampler hook")
	}
	sf := New(Profile{JitterRate: 1, JitterFrac: 0.5, DropoutRate: 1, DropoutLen: 4}, eng).SamplerFaults("sampler/x")
	if sf == nil {
		t.Fatal("enabled profile returned nil sampler hook")
	}
	const interval = time.Millisecond
	if d := sf.JitterDelay(interval); d <= 0 || d > interval/2 {
		t.Errorf("jitter delay %v outside (0, %v]", d, interval/2)
	}
	if n := sf.DropoutLen(); n < 1 || n > 4 {
		t.Errorf("dropout burst %d outside [1,4]", n)
	}
}

func TestRegulatorDisturbanceDecays(t *testing.T) {
	eng, err := sim.NewEngine(100*time.Microsecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	in := New(Profile{RegTransientRate: 1e6, RegTransientVolts: 0.05}, eng)
	dist := in.RegulatorDisturbance("vccint")
	if dist == nil {
		t.Fatal("enabled profile returned nil disturbance")
	}
	// At an absurd rate the very first tick fires a transient.
	v0 := dist(eng.Dt())
	if v0 == 0 {
		t.Fatal("no transient fired at rate 1e6/s")
	}
	if v0 < -0.05 || v0 > 0.05 {
		t.Errorf("transient amplitude %v outside ±0.05", v0)
	}
	// Disabled profiles produce no hook.
	if d := New(Profile{}, eng).RegulatorDisturbance("vccint"); d != nil {
		t.Error("zero profile returned a disturbance hook")
	}
}
