// Package faults is the seeded fault-injection subsystem for the
// simulated sensor stack. It models the failure modes a real attacker
// meets when sampling hwmon on a busy, flaky board — transient sysfs
// read errors, stale or corrupted INA226 conversions, scheduler jitter
// and dropouts in the sampling loop, hwmon hotplug renumbering, and
// voltage-regulator transients — so the robustness of the attack
// pipeline can be measured instead of assumed.
//
// Every fault decision is drawn from a named stream of the simulation
// engine's deterministic RNG (seed ^ FNV-1a(name), the same derivation
// internal/runner uses for shard seeds). Streams are named per
// injection site (per sysfs path, per sensor label, per sampler key,
// per rail), never shared, so the fault sequence a given site sees is
// a pure function of the root seed and the site name — bit-identical
// under replay and under any -parallel worker count, regardless of map
// iteration or goroutine order elsewhere.
package faults

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Transient error sentinels, mirroring the errno values a sysfs read
// returns on a busy I2C bus. Both classify as transient via
// IsTransient; everything else (ENOENT, EPERM, parse errors) is fatal
// to the sample or the capture.
var (
	// ErrAgain models EAGAIN: the read would block; retry immediately.
	ErrAgain = errors.New("resource temporarily unavailable")
	// ErrIO models EIO: a bus-level transfer error; retry after backoff.
	ErrIO = errors.New("input/output error")
)

// IsTransient reports whether err is one of the injected transient
// read errors (EAGAIN/EIO). It is the classifier the sampling layer's
// RetryPolicy.Transient uses.
func IsTransient(err error) bool {
	return errors.Is(err, ErrAgain) || errors.Is(err, ErrIO)
}

// Profile describes one composable fault mix. All *Rate fields in
// [0,1] are per-event probabilities (per read, per latch, per due
// sample); HotplugRate and RegTransientRate are expected events per
// simulated second. The zero Profile injects nothing.
type Profile struct {
	// Name identifies the profile in CLI flags and reports.
	Name string

	// SysfsErrorRate is the probability that any one sysfs ReadFile of
	// a monitored attribute fails transiently.
	SysfsErrorRate float64
	// SysfsEIORatio is the fraction of those failures that are EIO;
	// the rest are EAGAIN.
	SysfsEIORatio float64

	// StaleRate is the probability that an INA226 conversion latch is
	// skipped, leaving the registers stale for another whole interval.
	StaleRate float64
	// BitFlipRate is the probability that a latch lands with one bit
	// flipped in one of the result registers.
	BitFlipRate float64

	// JitterRate is the probability that a due sample is delayed by
	// scheduler preemption; JitterFrac caps the delay as a fraction of
	// the sampling interval.
	JitterRate float64
	JitterFrac float64
	// DropoutRate is the probability that a due sample starts a
	// dropout burst (the sampling task descheduled outright); burst
	// lengths are uniform in [1, DropoutLen].
	DropoutRate float64
	DropoutLen  int

	// HotplugRate is the expected number of hwmon renumber events per
	// simulated second.
	HotplugRate float64

	// RegTransientRate is the expected number of regulator output
	// transients per simulated second; RegTransientVolts bounds their
	// peak amplitude.
	RegTransientRate  float64
	RegTransientVolts float64
}

// Enabled reports whether the profile injects any fault at all.
func (p Profile) Enabled() bool {
	return p.SysfsErrorRate > 0 || p.StaleRate > 0 || p.BitFlipRate > 0 ||
		p.JitterRate > 0 || p.DropoutRate > 0 || p.HotplugRate > 0 ||
		p.RegTransientRate > 0
}

// Scale returns the profile with every rate multiplied by intensity
// (probabilities clamped to [0,1]); ratios, amplitudes, and burst
// lengths are unchanged. Intensity 0 disables everything; 1 is the
// profile as defined; >1 stress-tests beyond it.
func (p Profile) Scale(intensity float64) (Profile, error) {
	if intensity < 0 {
		return Profile{}, fmt.Errorf("faults: negative intensity %v", intensity)
	}
	clamp01 := func(v float64) float64 {
		if v > 1 {
			return 1
		}
		return v
	}
	p.SysfsErrorRate = clamp01(p.SysfsErrorRate * intensity)
	p.StaleRate = clamp01(p.StaleRate * intensity)
	p.BitFlipRate = clamp01(p.BitFlipRate * intensity)
	p.JitterRate = clamp01(p.JitterRate * intensity)
	p.DropoutRate = clamp01(p.DropoutRate * intensity)
	p.HotplugRate *= intensity
	p.RegTransientRate *= intensity
	return p, nil
}

// presets are the named fault mixes exposed through the -faults flag.
// Rates are tuned so that at intensity 1 every profile leaves the
// attack degraded but working (nonzero accuracy), per the robustness
// acceptance bar.
var presets = map[string]Profile{
	"none": {Name: "none"},
	"flaky-sysfs": {
		Name:           "flaky-sysfs",
		SysfsErrorRate: 0.05,
		SysfsEIORatio:  0.2,
	},
	"stale-sensor": {
		Name:        "stale-sensor",
		StaleRate:   0.15,
		BitFlipRate: 0.01,
	},
	"noisy-sched": {
		Name:        "noisy-sched",
		JitterRate:  0.20,
		JitterFrac:  0.5,
		DropoutRate: 0.01,
		DropoutLen:  4,
	},
	"hostile": {
		Name:              "hostile",
		SysfsErrorRate:    0.05,
		SysfsEIORatio:     0.2,
		StaleRate:         0.10,
		BitFlipRate:       0.005,
		JitterRate:        0.15,
		JitterFrac:        0.5,
		DropoutRate:       0.01,
		DropoutLen:        4,
		HotplugRate:       0.2,
		RegTransientRate:  2,
		RegTransientVolts: 0.03,
	},
}

// Preset returns the named fault profile.
func Preset(name string) (Profile, error) {
	p, ok := presets[name]
	if !ok {
		return Profile{}, fmt.Errorf("faults: unknown profile %q (have %s)",
			name, strings.Join(PresetNames(), ", "))
	}
	return p, nil
}

// PresetNames returns the preset names in lexical order.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
