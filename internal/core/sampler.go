package core

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"math/rand"
	"time"

	"repro/internal/board"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/obs/olog"
	"repro/internal/resilience"
	"repro/internal/trace"
)

// Sampler metrics: every resilient sampling loop (the level sweeps and
// the per-channel recorders) reports through these, so an experiment's
// obs snapshot shows exactly how much abuse the sampling layer absorbed.
var (
	cSamples    = obs.C("core.sampler.samples")
	cRetries    = obs.C("core.sampler.retries")
	cGaps       = obs.C("core.sampler.gaps")
	cReresolves = obs.C("core.sampler.reresolves")
	cBackoffNs  = obs.C("core.sampler.backoff_ns")
	// gConsecGaps tracks the current consecutive-gap run length of the
	// most recently gapping sampler; the obs.Watch consecutive-gap
	// ceiling rule reads it to flag a sampler that has stopped
	// delivering data entirely (as opposed to absorbing scattered
	// faults, which the gap-ratio rule covers).
	gConsecGaps = obs.G("core.sampler.consecutive_gaps")

	samplerLog = olog.L("core.sampler")
)

// ErrSampleLost marks a sample the resilient sampling layer gave up on
// (retries exhausted, per-sample deadline blown, or a dropout burst).
// Callers treat it as a gap, not a failure: skip the sample and keep
// sweeping.
var ErrSampleLost = errors.New("core: sample lost")

// ErrChannelDead is the sampler's sticky give-up error, re-exported
// from internal/trace: raised when a channel loses more consecutive
// samples than the policy's MaxConsecutiveGaps tolerates. Unlike
// ErrSampleLost it is fatal to the sweep — the supervised job engine
// turns it into a shard quarantine instead of letting the experiment
// grind through a dead sensor forever.
var ErrChannelDead = trace.ErrChannelDead

// RetryPolicy is re-exported from internal/trace: one policy type
// configures both the recorder-based captures and the loop-based
// samplers.
type RetryPolicy = trace.RetryPolicy

// DefaultRetryPolicy returns the sampling layer's standard policy:
// injected EAGAIN/EIO classify as transient, everything else is fatal.
// Interval supplies the per-sample deadline.
func DefaultRetryPolicy(interval time.Duration) RetryPolicy {
	return RetryPolicy{Transient: faults.IsTransient}.WithDefaults(interval)
}

// Sampler is the resilient sample-per-call counterpart of the trace
// recorder, used by the level-sweep experiments that interleave victim
// control with measurement. Each Sample advances the board by one
// sampling interval (plus any injected scheduler jitter) and reads the
// channel with retry, sim-time backoff, hotplug re-resolution, and a
// per-sample deadline. Without an enabled fault profile it degenerates
// to exactly the legacy "run one interval, read once" loop.
type Sampler struct {
	b        *board.SoC
	attacker *Attacker
	ch       Channel
	interval time.Duration
	probe    func() (float64, error)
	policy   RetryPolicy
	faults   trace.SampleFaults
	// breaker guards the probe path when a fault profile is active: a
	// run of lost samples trips it, and while open every Sample sheds
	// instantly (a gap without burning the retry/backoff budget) until
	// the sim-time probe window lets one read test the sensor again.
	// Nil without fault injection, keeping the no-fault path
	// byte-identical to the legacy loop.
	breaker *resilience.Breaker

	dropoutLeft int
	consecGaps  int
	dead        bool
}

// NewSampler resolves the channel through unprivileged discovery and
// returns a sampler on the board's engine. The board's fault injector,
// when present, supplies the scheduler fault stream keyed by the
// channel.
func NewSampler(b *board.SoC, attacker *Attacker, ch Channel, interval time.Duration) (*Sampler, error) {
	if b == nil || attacker == nil {
		return nil, errors.New("core: sampler needs a board and an attacker")
	}
	if interval <= 0 {
		return nil, errors.New("core: non-positive sampling interval")
	}
	probe, err := attacker.Probe(ch)
	if err != nil {
		return nil, err
	}
	s := &Sampler{
		b:        b,
		attacker: attacker,
		ch:       ch,
		interval: interval,
		probe:    probe,
		policy:   DefaultRetryPolicy(interval),
	}
	if inj := b.FaultInjector(); inj != nil {
		s.faults = inj.SamplerFaults(fmt.Sprintf("sampler/%s/%s", ch.Label, ch.Kind))
		// Decorrelated retry jitter from a named stream: deterministic per
		// seed, but concurrent samplers stop retrying in lockstep.
		s.policy.Rand = b.Engine().Stream(fmt.Sprintf("backoff/%s/%s", ch.Label, ch.Kind))
		// The breaker's clock is simulated time and its probe jitter is a
		// named engine stream, so its trips and probe windows are a pure
		// function of the shard seed — chaos runs stay byte-identical
		// across worker counts and across checkpoint/resume.
		eng := b.Engine()
		breaker, err := resilience.NewBreaker(resilience.BreakerConfig{
			Name:            fmt.Sprintf("sampler/%s/%s", ch.Label, ch.Kind),
			OpenFor:         32 * interval,
			ProbeJitterFrac: 0.25,
			Now:             eng.Now,
			Rand:            eng.Stream(fmt.Sprintf("breaker/%s/%s", ch.Label, ch.Kind)),
		})
		if err != nil {
			return nil, err
		}
		s.breaker = breaker
	}
	return s, nil
}

// Breaker exposes the sampler's circuit breaker (nil without fault
// injection), for tests and watch rules.
func (s *Sampler) Breaker() *resilience.Breaker { return s.breaker }

// SetPolicy overrides the retry policy (normalized with WithDefaults).
// A policy without its own Rand keeps the sampler's wired backoff
// jitter stream.
func (s *Sampler) SetPolicy(p RetryPolicy) {
	if p.Rand == nil {
		p.Rand = s.policy.Rand
	}
	s.policy = p.WithDefaults(s.interval)
}

// Sample advances the board one sampling interval and reads the
// channel. It returns (NaN, ErrSampleLost) for an unrecoverable sample
// and the context error if ctx is cancelled, including mid-backoff.
func (s *Sampler) Sample(ctx context.Context) (float64, error) {
	if s.dead {
		return 0, s.deadErr()
	}
	d := s.interval
	if s.faults != nil && s.dropoutLeft == 0 {
		if k := s.faults.DropoutLen(); k > 0 {
			s.dropoutLeft = k
		}
		d += s.faults.JitterDelay(s.interval)
	}
	s.b.Run(d)
	if s.dropoutLeft > 0 {
		// The sampling task was descheduled for this interval: the time
		// passed, but no read happened. Not a sensor failure, so the
		// breaker doesn't hear about it.
		s.dropoutLeft--
		s.gap(ctx, "dropout")
		if s.dead {
			return 0, s.deadErr()
		}
		return math.NaN(), ErrSampleLost
	}
	return s.Read(ctx)
}

// deadErr wraps the sticky ErrChannelDead with the channel identity.
func (s *Sampler) deadErr() error {
	return fmt.Errorf("core: %s/%s after %d consecutive losses: %w",
		s.ch.Label, s.ch.Kind, s.consecGaps, ErrChannelDead)
}

// gap records one lost sample and advances the consecutive-gap run the
// watch rules monitor.
func (s *Sampler) gap(ctx context.Context, cause string) {
	cGaps.Inc()
	s.consecGaps++
	gConsecGaps.Set(float64(s.consecGaps))
	samplerLog.DebugContext(ctx, "sample lost",
		"channel", s.ch.Label, "kind", string(s.ch.Kind),
		"cause", cause, "consecutive", s.consecGaps)
	// Mirror the recorder's sticky limit: past MaxConsecutiveGaps the
	// channel is declared dead and every further call fails fast with
	// ErrChannelDead — an explicit, supervisable failure instead of a
	// silent wedge grinding through a sensor that stopped answering.
	if s.policy.MaxConsecutiveGaps > 0 && s.consecGaps > s.policy.MaxConsecutiveGaps {
		s.dead = true
		samplerLog.WarnContext(ctx, "channel dead",
			"channel", s.ch.Label, "kind", string(s.ch.Kind),
			"consecutive", s.consecGaps, "limit", s.policy.MaxConsecutiveGaps)
	}
}

// good ends the consecutive-gap run on a successful read.
func (s *Sampler) good() {
	cSamples.Inc()
	if s.consecGaps != 0 {
		s.consecGaps = 0
		gConsecGaps.Set(0)
	}
}

// Read reads the channel now, with retry but without advancing the
// nominal sampling interval first (backoff still advances sim time).
// Use it for secondary channels piggybacking on a primary sampler's
// cadence. When the circuit breaker is open the read sheds instantly —
// a gap without the retry/backoff budget — until the probe window
// re-tests the sensor.
func (s *Sampler) Read(ctx context.Context) (float64, error) {
	if s.dead {
		return 0, s.deadErr()
	}
	if s.breaker != nil && !s.breaker.Allow() {
		s.gap(ctx, "breaker open")
		if s.dead {
			return 0, s.deadErr()
		}
		return math.NaN(), ErrSampleLost
	}
	v, err := s.readRetry(ctx)
	if s.breaker != nil {
		switch {
		case err == nil:
			s.breaker.OnSuccess()
		case errors.Is(err, ErrSampleLost):
			s.breaker.OnFailure()
		}
	}
	if s.dead {
		return 0, s.deadErr()
	}
	return v, err
}

// readRetry is the raw retry loop behind Read: probe, classify,
// re-resolve after hotplug, back off in simulated time, give up at the
// policy's attempt or deadline budget.
func (s *Sampler) readRetry(ctx context.Context) (float64, error) {
	backoff := s.policy.BaseBackoff
	var spent time.Duration
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		v, err := s.probe()
		if err == nil {
			s.good()
			return v, nil
		}
		transient := s.policy.Transient != nil && s.policy.Transient(err)
		if errors.Is(err, fs.ErrNotExist) {
			// Hotplug renumber moved the attribute: re-discover. A failed
			// re-resolution is itself transient — the next attempt tries
			// again.
			if probe, rerr := s.attacker.Probe(s.ch); rerr == nil {
				s.probe = probe
				cReresolves.Inc()
				samplerLog.DebugContext(ctx, "channel re-resolved after hotplug",
					"channel", s.ch.Label, "kind", string(s.ch.Kind))
			}
			transient = true
		}
		if !transient {
			return 0, err
		}
		cRetries.Inc()
		if attempt >= s.policy.MaxAttempts || spent+backoff > s.policy.SampleDeadline {
			s.gap(ctx, fmt.Sprintf("retries exhausted after %d attempts: %v", attempt, err))
			return math.NaN(), ErrSampleLost
		}
		// Back off in simulated time: the board keeps running while the
		// sampling loop sleeps.
		s.b.Run(backoff)
		cBackoffNs.Add(backoff.Nanoseconds())
		spent += backoff
		backoff = s.policy.NextBackoff(backoff)
	}
}

// recorderHooks wires a capture recorder into the sampling metrics,
// the attacker's re-resolution path, and the decorrelated backoff
// jitter stream; used by captureOne and covertOnce when a fault
// profile is active.
func recorderHooks(attacker *Attacker, ch Channel, interval time.Duration, jitter *rand.Rand) *trace.RetryPolicy {
	p := DefaultRetryPolicy(interval)
	p.Rand = jitter
	p.Resolve = func() (func() (float64, error), error) {
		probe, err := attacker.Probe(ch)
		if err == nil {
			cReresolves.Inc()
		}
		return probe, err
	}
	p.OnRetry = cRetries.Inc
	p.OnGap = cGaps.Inc
	return &p
}
