package core

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/board"
	"repro/internal/dpu"
	"repro/internal/imagenet"
	"repro/internal/rsa"
	"repro/internal/stats"
	"repro/internal/sysfs"
)

// RSAConfig parameterizes the Fig. 4 experiment: distinguish the
// Hamming weights of RSA-1024 keys from the FPGA current and power
// channels.
type RSAConfig struct {
	// Seed for the whole experiment. Zero means 1.
	Seed int64
	// Weights of the victim keys; empty means the paper's 17
	// (1, 64, 128, ..., 1024).
	Weights []int
	// Samples collected per key at SampleInterval. The paper collects
	// 100,000 at 1 kHz; the default here is 5,000 (5 s of victim time per
	// key), which already separates every class — EXPERIMENTS.md records
	// the budget reduction.
	Samples int
	// SampleInterval is the attacker's polling period; zero means the
	// paper's 1 kHz (1 ms).
	SampleInterval time.Duration
	// Warmup before sampling starts; zero means 200 ms.
	Warmup time.Duration
	// Parallelism bounds concurrent per-key runs; zero means GOMAXPROCS.
	Parallelism int
	// VerifyDatapath runs the real modular arithmetic in the victim
	// (slower; off by default — the activity schedule is identical).
	VerifyDatapath bool
	// Countermeasure deploys the Montgomery-ladder variant of the victim
	// circuit (defense ablation): its per-iteration activity is
	// bit-independent, so the Hamming-weight leak should vanish.
	Countermeasure bool
	// ConcurrentDPUModel, when non-empty, co-deploys a DPU running the
	// named zoo model on the same fabric — the interference scenario: a
	// busy neighbour widens the current distributions and merges
	// Hamming-weight classes.
	ConcurrentDPUModel string
}

// KeyObservation is the per-key measurement summary.
type KeyObservation struct {
	// Weight is the key's true Hamming weight.
	Weight int
	// Current and Power are five-number summaries of the sampled
	// channels, the boxes of Fig. 4.
	Current stats.FiveNum
	Power   stats.FiveNum
	// Exponentiations completed by the victim during sampling.
	Exponentiations uint64
	// SearchSpaceReductionBits is the brute-force work the recovered
	// weight removes: 1024 - log2 C(1024, weight).
	SearchSpaceReductionBits float64
}

// RSAResult is the Fig. 4 dataset.
type RSAResult struct {
	// Keys ordered by Hamming weight.
	Keys []KeyObservation
	// CurrentGroups and PowerGroups count the distinguishable classes
	// per channel (non-overlapping IQR boxes, scanned in weight order).
	// The paper resolves all 17 with current but only ~5 groups with
	// power.
	CurrentGroups int
	PowerGroups   int
	// CurrentPearson is the linear correlation between weight and median
	// current.
	CurrentPearson float64
	// CurrentSpearman is the rank correlation — the robust monotonicity
	// measure that survives quantization staircases and interference.
	CurrentSpearman float64
}

// RSAHammingWeight runs the Fig. 4 experiment.
func RSAHammingWeight(cfg RSAConfig) (*RSAResult, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if len(cfg.Weights) == 0 {
		cfg.Weights = rsa.PaperHammingWeights()
	}
	if cfg.Samples == 0 {
		cfg.Samples = 5000
	}
	if cfg.Samples < 10 {
		return nil, errors.New("core: too few samples")
	}
	if cfg.SampleInterval == 0 {
		cfg.SampleInterval = time.Millisecond
	}
	if cfg.SampleInterval <= 0 {
		return nil, errors.New("core: non-positive sample interval")
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = 200 * time.Millisecond
	}
	if cfg.Parallelism == 0 {
		cfg.Parallelism = runtime.GOMAXPROCS(0)
	}
	if cfg.Parallelism < 1 {
		return nil, errors.New("core: non-positive parallelism")
	}

	obs := make([]KeyObservation, len(cfg.Weights))
	errs := make([]error, len(cfg.Weights))
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Parallelism)
	for i, w := range cfg.Weights {
		wg.Add(1)
		go func(i, w int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			obs[i], errs[i] = observeKey(cfg, w)
		}(i, w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(obs, func(a, b int) bool { return obs[a].Weight < obs[b].Weight })

	res := &RSAResult{Keys: obs}
	res.CurrentGroups = countGroups(obs, func(k KeyObservation) stats.FiveNum { return k.Current })
	res.PowerGroups = countGroups(obs, func(k KeyObservation) stats.FiveNum { return k.Power })

	if len(obs) >= 2 {
		ws := make([]float64, len(obs))
		med := make([]float64, len(obs))
		for i, k := range obs {
			ws[i] = float64(k.Weight)
			med[i] = k.Current.Median
		}
		p, err := stats.Pearson(ws, med)
		switch {
		case errors.Is(err, stats.ErrDegenerate):
			// Identical medians across all weights (the ladder
			// countermeasure's goal): no correlation.
			res.CurrentPearson = 0
		case err != nil:
			return nil, err
		default:
			res.CurrentPearson = p
		}
		s, err := stats.Spearman(ws, med)
		switch {
		case errors.Is(err, stats.ErrDegenerate):
			res.CurrentSpearman = 0
		case err != nil:
			return nil, err
		default:
			res.CurrentSpearman = s
		}
	}
	return res, nil
}

// observeKey runs one victim key on a fresh board and samples the FPGA
// current and power channels.
func observeKey(cfg RSAConfig, weight int) (KeyObservation, error) {
	seed := captureSeed(cfg.Seed, fmt.Sprintf("rsa/%d", weight), weight)
	b, err := board.NewZCU102(board.Config{Seed: seed})
	if err != nil {
		return KeyObservation{}, err
	}
	keyRng := rand.New(rand.NewSource(seed))
	exponent, err := rsa.ExponentWithHammingWeight(1024, weight, keyRng)
	if err != nil {
		return KeyObservation{}, err
	}
	modulus, err := rsa.Modulus(1024, keyRng)
	if err != nil {
		return KeyObservation{}, err
	}
	circuit, err := rsa.NewCircuit(rsa.CircuitConfig{
		Exponent: exponent,
		Modulus:  modulus,
		Rand:     b.Engine().Stream("rsa-plaintexts"),
		Verify:   cfg.VerifyDatapath,
		Ladder:   cfg.Countermeasure,
	})
	if err != nil {
		return KeyObservation{}, err
	}
	if err := b.Fabric().Place(circuit, b.Fabric().SpreadEvenly()); err != nil {
		return KeyObservation{}, err
	}
	if cfg.ConcurrentDPUModel != "" {
		queries, err := imagenet.New(b.Engine().Stream("interference-queries"))
		if err != nil {
			return KeyObservation{}, err
		}
		engine, err := dpu.NewEngine(dpu.EngineConfig{
			Queries:        queries,
			SetCPUFullUtil: b.CPUFull().SetUtil,
			SetCPULowUtil:  b.CPULow().SetUtil,
			SetDDRUtil:     b.DDR().SetUtil,
		})
		if err != nil {
			return KeyObservation{}, err
		}
		if err := b.Fabric().Place(engine, b.Fabric().SpreadEvenly()); err != nil {
			return KeyObservation{}, err
		}
		m, err := dpu.ZooModel(cfg.ConcurrentDPUModel)
		if err != nil {
			return KeyObservation{}, err
		}
		if err := engine.LoadModel(m); err != nil {
			return KeyObservation{}, err
		}
	}
	// The control process that feeds the circuit runs on the APU.
	b.CPUFull().SetUtil(0.1)

	attacker, err := NewAttacker(b.Sysfs(), sysfs.Nobody)
	if err != nil {
		return KeyObservation{}, err
	}
	recCur, err := attacker.NewRecorder(Channel{Label: board.SensorFPGA, Kind: Current}, cfg.SampleInterval)
	if err != nil {
		return KeyObservation{}, err
	}
	recPow, err := attacker.NewRecorder(Channel{Label: board.SensorFPGA, Kind: Power}, cfg.SampleInterval)
	if err != nil {
		return KeyObservation{}, err
	}
	recCur.Reserve(cfg.Samples + 1)
	recPow.Reserve(cfg.Samples + 1)
	b.Run(cfg.Warmup)
	recCur.Reset()
	recPow.Reset()
	b.Engine().MustRegister("recorder/current", recCur)
	b.Engine().MustRegister("recorder/power", recPow)

	b.Run(time.Duration(cfg.Samples) * cfg.SampleInterval)

	trCur, err := recCur.Trace()
	if err != nil {
		return KeyObservation{}, err
	}
	trPow, err := recPow.Trace()
	if err != nil {
		return KeyObservation{}, err
	}
	sumCur, err := stats.Summary(trCur.Samples)
	if err != nil {
		return KeyObservation{}, err
	}
	sumPow, err := stats.Summary(trPow.Samples)
	if err != nil {
		return KeyObservation{}, err
	}
	reduction, err := rsa.SearchSpaceReduction(1024, weight)
	if err != nil {
		return KeyObservation{}, err
	}
	return KeyObservation{
		Weight:                   weight,
		Current:                  sumCur,
		Power:                    sumPow,
		Exponentiations:          circuit.Exponentiations(),
		SearchSpaceReductionBits: reduction,
	}, nil
}

// countGroups scans the keys in weight order and counts the clusters of
// overlapping IQR boxes — the number of classes an attacker can resolve
// on that channel.
func countGroups(obs []KeyObservation, box func(KeyObservation) stats.FiveNum) int {
	if len(obs) == 0 {
		return 0
	}
	groups := 1
	anchor := box(obs[0])
	for _, k := range obs[1:] {
		b := box(k)
		if b.Overlaps(anchor) {
			// Same group; extend the anchor so chained overlaps merge.
			if b.Q3 > anchor.Q3 {
				anchor.Q3 = b.Q3
			}
			if b.Q1 < anchor.Q1 {
				anchor.Q1 = b.Q1
			}
			continue
		}
		groups++
		anchor = b
	}
	return groups
}
