package core

import (
	"errors"
	"io/fs"
	"time"

	"repro/internal/board"
	"repro/internal/sysfs"
)

// MitigationResult records the Sec. V experiment: what an unprivileged
// attacker and a privileged monitor can read before and after sensor
// access is restricted to root.
type MitigationResult struct {
	// BeforeAttacker is the unprivileged FPGA current reading before the
	// mitigation (amps) — the attack works.
	BeforeAttacker float64
	// AfterAttackerErr is the error the attacker hits afterwards
	// (fs.ErrPermission when the mitigation is effective).
	AfterAttackerErr error
	// AfterRoot is the privileged reading after the mitigation: benign
	// root-level monitoring keeps working.
	AfterRoot float64
}

// Effective reports whether the mitigation blocked the unprivileged
// attacker while preserving privileged access.
func (r *MitigationResult) Effective() bool {
	return errors.Is(r.AfterAttackerErr, fs.ErrPermission) && r.AfterRoot > 0
}

// Mitigation runs the paper's proposed countermeasure end to end:
// restrict the hwmon value attributes to root (Sec. V) and show the
// unprivileged sampling path dies while root monitoring survives.
func Mitigation(seed int64) (*MitigationResult, error) {
	b, err := board.NewZCU102(board.Config{Seed: seed})
	if err != nil {
		return nil, err
	}
	b.Run(100 * time.Millisecond) // let the sensors latch

	attacker, err := NewAttacker(b.Sysfs(), sysfs.Nobody)
	if err != nil {
		return nil, err
	}
	probe, err := attacker.Probe(Channel{Label: board.SensorFPGA, Kind: Current})
	if err != nil {
		return nil, err
	}
	res := &MitigationResult{}
	if res.BeforeAttacker, err = probe(); err != nil {
		return nil, err
	}

	// The administrator applies the mitigation.
	if err := b.Hwmon().RestrictAllToRoot(); err != nil {
		return nil, err
	}

	_, res.AfterAttackerErr = probe()

	admin, err := NewAttacker(b.Sysfs(), sysfs.Root)
	if err != nil {
		return nil, err
	}
	rootProbe, err := admin.Probe(Channel{Label: board.SensorFPGA, Kind: Current})
	if err != nil {
		return nil, err
	}
	if res.AfterRoot, err = rootProbe(); err != nil {
		return nil, err
	}
	return res, nil
}
