package core

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/board"
	"repro/internal/faults"
	"repro/internal/obs"
)

// Fault injection must not weaken the runner's determinism contract:
// with any profile active, the shard schedule still may not leak into
// the results. Every preset is pinned across worker counts — both the
// collected trace bytes and the exact number of faults of each kind
// that fired, since a single extra RNG draw on any code path would
// desync the whole stream.

func presetOrNil(t *testing.T, name string) *faults.Profile {
	t.Helper()
	p, err := faults.Preset(name)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Enabled() {
		return nil
	}
	return &p
}

func TestChaosTracesDeterministicAcrossWorkers(t *testing.T) {
	for _, preset := range faults.PresetNames() {
		pf := presetOrNil(t, preset)
		t.Run(preset, func(t *testing.T) {
			cfg := FingerprintConfig{
				Seed:           11,
				Models:         []string{"MobileNet-V1", "VGG-19"},
				TracesPerModel: 2,
				TraceDuration:  300 * time.Millisecond,
				Durations:      []time.Duration{300 * time.Millisecond},
				Folds:          2,
				Trees:          5,
				Channels:       []Channel{{Label: board.SensorFPGA, Kind: Current}},
				Faults:         pf,
			}
			var wantCaps []byte
			var wantFaults map[string]int64
			for _, workers := range workerCounts {
				cfg.Parallelism = workers
				before := obs.Default.Snapshot()
				caps, err := CollectDPUTraces(cfg)
				if err != nil {
					t.Fatalf("workers=%d: collect: %v", workers, err)
				}
				delta := faultCounterDelta(before, obs.Default.Snapshot())
				var buf bytes.Buffer
				if err := SaveCaptures(&buf, caps); err != nil {
					t.Fatalf("workers=%d: save: %v", workers, err)
				}
				if wantCaps == nil {
					wantCaps, wantFaults = buf.Bytes(), delta
					if pf != nil && len(delta) == 0 {
						t.Fatalf("profile %q active but no faults fired", preset)
					}
					continue
				}
				if !bytes.Equal(buf.Bytes(), wantCaps) {
					t.Errorf("workers=%d: captures differ from workers=%d baseline", workers, workerCounts[0])
				}
				if !reflect.DeepEqual(delta, wantFaults) {
					t.Errorf("workers=%d: fault counts %v differ from workers=%d baseline %v",
						workers, delta, workerCounts[0], wantFaults)
				}
			}
		})
	}
}

func TestChaosApplicabilityDeterministicAcrossWorkers(t *testing.T) {
	for _, preset := range faults.PresetNames() {
		pf := presetOrNil(t, preset)
		t.Run(preset, func(t *testing.T) {
			var want []byte
			var wantFaults map[string]int64
			for _, workers := range workerCounts {
				before := obs.Default.Snapshot()
				// SamplesPerLevel must exceed the hostile profile's worst
				// dropout burst (4 samples) or a level can lose every sample
				// and legitimately abort the survey.
				rows, err := Applicability(ApplicabilityConfig{
					Seed:            11,
					Levels:          3,
					SamplesPerLevel: 8,
					Parallelism:     workers,
					Faults:          pf,
				})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				delta := faultCounterDelta(before, obs.Default.Snapshot())
				got := mustJSON(t, rows)
				if want == nil {
					want, wantFaults = got, delta
					continue
				}
				if !bytes.Equal(got, want) {
					t.Errorf("workers=%d: rows differ from workers=%d baseline", workers, workerCounts[0])
				}
				if !reflect.DeepEqual(delta, wantFaults) {
					t.Errorf("workers=%d: fault counts %v differ from baseline %v", workers, delta, wantFaults)
				}
			}
		})
	}
}

func TestChaosCovertDeterministicAcrossWorkers(t *testing.T) {
	for _, preset := range faults.PresetNames() {
		pf := presetOrNil(t, preset)
		t.Run(preset, func(t *testing.T) {
			var want []byte
			for _, workers := range workerCounts {
				res, err := CovertTransmit(CovertConfig{
					Seed:          11,
					PayloadBits:   24,
					SymbolUpdates: 1,
					ChunkBits:     8,
					Parallelism:   workers,
					Faults:        pf,
				})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				got := mustJSON(t, res)
				if want == nil {
					want = got
					continue
				}
				if !bytes.Equal(got, want) {
					t.Errorf("workers=%d: covert result differs from workers=%d baseline", workers, workerCounts[0])
				}
			}
		})
	}
}

// TestFaultFreeProfileMatchesLegacyPipeline pins the acceptance
// criterion that -faults none is byte-identical to a build without the
// fault subsystem: a nil profile and the "none" preset must yield the
// same captures as the pre-faults collection path.
func TestFaultFreeProfileMatchesLegacyPipeline(t *testing.T) {
	cfg := FingerprintConfig{
		Seed:           5,
		Models:         []string{"MobileNet-V1"},
		TracesPerModel: 1,
		TraceDuration:  300 * time.Millisecond,
		Durations:      []time.Duration{300 * time.Millisecond},
		Folds:          1,
		Channels:       []Channel{{Label: board.SensorFPGA, Kind: Current}},
	}
	collect := func(pf *faults.Profile) []byte {
		c := cfg
		c.Faults = pf
		caps, err := CollectDPUTraces(c)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := SaveCaptures(&buf, caps); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	legacy := collect(nil)
	none := presetOrNil(t, "none")
	if none != nil {
		t.Fatalf(`preset "none" reports Enabled`)
	}
	zero := &faults.Profile{Name: "none"}
	if got := collect(zero); !bytes.Equal(got, legacy) {
		t.Error("explicit zero-rate profile changed the captured traces")
	}
}
