package core

import (
	"testing"
	"time"

	"repro/internal/board"
	"repro/internal/sysfs"
	"repro/internal/virus"
)

func TestNewDetectorValidation(t *testing.T) {
	if _, err := NewDetector(DetectorConfig{}, 0); err == nil {
		t.Fatal("zero interval accepted")
	}
	if _, err := NewDetector(DetectorConfig{ThresholdAmps: -1}, time.Millisecond); err == nil {
		t.Fatal("negative threshold accepted")
	}
	if _, err := NewDetector(DetectorConfig{BaselineSamples: -1}, time.Millisecond); err == nil {
		t.Fatal("negative baseline accepted")
	}
}

func TestDetectorSyntheticStep(t *testing.T) {
	d, err := NewDetector(DetectorConfig{}, 35*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// 8 baseline samples at 0.55, then a 0.4 A step, then back.
	for i := 0; i < 20; i++ {
		if ev := d.Push(0.55); ev != nil {
			t.Fatalf("false positive at sample %d: %+v", i, ev)
		}
	}
	var rise *Event
	for i := 0; i < 10 && rise == nil; i++ {
		rise = d.Push(0.95)
	}
	if rise == nil || rise.Kind != Rise {
		t.Fatalf("rise not detected: %+v", rise)
	}
	var fall *Event
	for i := 0; i < 10 && fall == nil; i++ {
		fall = d.Push(0.55)
	}
	if fall == nil || fall.Kind != Fall {
		t.Fatalf("fall not detected: %+v", fall)
	}
	if len(d.Events()) != 2 {
		t.Fatalf("events = %v", d.Events())
	}
}

func TestDetectorIgnoresNoiseWithinDrift(t *testing.T) {
	d, err := NewDetector(DetectorConfig{DriftAmps: 0.02, ThresholdAmps: 0.1}, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	vals := []float64{0.55, 0.56, 0.54, 0.55, 0.57, 0.53, 0.55, 0.56}
	for i := 0; i < 100; i++ {
		if ev := d.Push(vals[i%len(vals)]); ev != nil {
			t.Fatalf("noise triggered event: %+v", ev)
		}
	}
}

func TestDetectorOnLiveBoard(t *testing.T) {
	b, err := board.NewZCU102(board.Config{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	array, err := virus.New(virus.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := array.Deploy(b.Fabric()); err != nil {
		t.Fatal(err)
	}
	atk, _ := NewAttacker(b.Sysfs(), sysfs.Nobody)
	probe, err := atk.Probe(Channel{Label: board.SensorFPGA, Kind: Current})
	if err != nil {
		t.Fatal(err)
	}
	dev, _ := b.Sensor(board.SensorFPGA)
	interval := dev.UpdateInterval()
	det, err := NewDetector(DetectorConfig{}, interval)
	if err != nil {
		t.Fatal(err)
	}
	step := func(updates int) {
		for i := 0; i < updates; i++ {
			b.Run(interval)
			v, err := probe()
			if err != nil {
				t.Fatal(err)
			}
			det.Push(v)
		}
	}
	step(12) // baseline + idle
	if err := array.SetActiveGroups(20); err != nil {
		t.Fatal(err)
	}
	step(12)
	if err := array.SetActiveGroups(0); err != nil {
		t.Fatal(err)
	}
	step(12)

	events := det.Events()
	if len(events) != 2 {
		t.Fatalf("events = %+v, want exactly rise+fall", events)
	}
	if events[0].Kind != Rise || events[1].Kind != Fall {
		t.Fatalf("event kinds = %v/%v", events[0].Kind, events[1].Kind)
	}
	// The rise detection carries the loaded level (~0.55+0.8 A).
	if events[0].Level < 1.0 {
		t.Fatalf("rise level = %v, want > 1 A", events[0].Level)
	}
}
