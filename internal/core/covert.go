package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/board"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/sysfs"
	"repro/internal/virus"
)

// Channel-quality gauges mirrored into the run ledger: the last
// transmission's bit error rate and payload rate.
var (
	gaugeCovertBER = obs.G("covert.ber")
	gaugeCovertBPS = obs.G("covert.bits_per_sec")
)

func observeCovert(r *CovertResult) {
	gaugeCovertBER.Set(r.BER())
	gaugeCovertBPS.Set(r.Throughput)
}

// The current channel also works as a covert channel: a sender with
// FPGA access (a malicious bitstream, or a tenant in a future
// multi-tenant deployment) modulates switching activity, and an
// unprivileged CPU-side receiver decodes it from hwmon current reads —
// crossing the PS/PL isolation boundary without any shared software
// interface. Capacity is bounded by the sensor's update interval
// (35 ms default), matching how the paper frames the sensor as the
// attacker's sampling bottleneck.

// CovertConfig parameterizes a covert-channel transmission.
type CovertConfig struct {
	// Seed for the board and payload. Zero means 1.
	Seed int64
	// PayloadBits to transmit; zero means 64.
	PayloadBits int
	// SymbolUpdates is the symbol duration in sensor update intervals;
	// zero means 2 (robust against boundary straddling).
	SymbolUpdates int
	// Groups is the on-off keying amplitude in power-virus groups; zero
	// means 40 (a ~1.6 A swing, far above the noise floor).
	Groups int
	// UpdateInterval overrides the sensors' hwmon update interval. The
	// default 35 ms caps the unprivileged channel at ~28.6 bps; a root
	// accomplice retuning to 2 ms raises the ceiling to 500 bps.
	UpdateInterval time.Duration
	// Parallelism switches to the multi-channel protocol: the payload is
	// split into fixed ChunkBits-sized chunks, each transmitted over its
	// own board (a deterministic per-chunk seed), and the chunk shards
	// run on this many workers. The chunking depends only on PayloadBits
	// and ChunkBits, never on the worker count, so the aggregate result
	// is bit-identical for any Parallelism >= 1. Zero keeps the classic
	// single-transmission protocol.
	Parallelism int
	// ChunkBits is the payload chunk size of the multi-channel protocol;
	// zero means 32.
	ChunkBits int
	// Faults optionally injects a fault profile into the transmission
	// board(s); the receiver then records unrecoverable samples as NaN
	// gaps and the decoder works from the finite samples per symbol.
	Faults *faults.Profile
}

// CovertResult summarizes a transmission.
type CovertResult struct {
	// BitsSent is the payload length.
	BitsSent int
	// BitErrors after decoding.
	BitErrors int
	// Throughput is the payload rate in bits/s at the used symbol
	// period (excluding the preamble).
	Throughput float64
	// SymbolPeriod actually used.
	SymbolPeriod time.Duration
}

// BER returns the bit error rate.
func (r *CovertResult) BER() float64 {
	if r.BitsSent == 0 {
		return 0
	}
	return float64(r.BitErrors) / float64(r.BitsSent)
}

// preamble is the alternating sync/calibration header.
var preamble = []int{1, 0, 1, 0, 1, 0, 1, 0}

// covertSender drives the power-virus array with on-off keying.
type covertSender struct {
	array  *virus.Array
	bits   []int
	period time.Duration
	groups int
	start  time.Duration
	active bool
}

// Step implements sim.Steppable.
func (s *covertSender) Step(now, dt time.Duration) {
	if !s.active {
		return
	}
	idx := int((now - s.start) / s.period)
	level := 0
	if idx < len(s.bits) {
		if s.bits[idx] == 1 {
			level = s.groups
		}
	}
	// Ignoring the error is safe: level is 0 or s.groups, both valid.
	_ = s.array.SetActiveGroups(level)
}

// CovertTransmit runs one end-to-end covert transmission and decodes it
// with the unprivileged receiver.
func CovertTransmit(cfg CovertConfig) (*CovertResult, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.PayloadBits == 0 {
		cfg.PayloadBits = 64
	}
	if cfg.PayloadBits < 1 {
		return nil, errors.New("core: non-positive payload")
	}
	if cfg.SymbolUpdates == 0 {
		cfg.SymbolUpdates = 2
	}
	if cfg.SymbolUpdates < 1 {
		return nil, errors.New("core: non-positive symbol duration")
	}
	if cfg.Groups == 0 {
		cfg.Groups = 40
	}
	if cfg.Groups < 1 || cfg.Groups > virus.DefaultGroups {
		return nil, fmt.Errorf("core: groups %d outside [1,%d]", cfg.Groups, virus.DefaultGroups)
	}
	if cfg.Parallelism < 0 {
		return nil, errors.New("core: negative parallelism")
	}
	if cfg.ChunkBits == 0 {
		cfg.ChunkBits = 32
	}
	if cfg.ChunkBits < 1 {
		return nil, errors.New("core: non-positive chunk size")
	}
	if cfg.Parallelism == 0 {
		res, err := covertOnce(context.Background(), cfg, cfg.Seed, cfg.PayloadBits)
		if err != nil {
			return nil, err
		}
		observeCovert(res)
		return res, nil
	}

	// Multi-channel protocol: fixed-size payload chunks, one board per
	// chunk, aggregated error counts. The chunk layout is a function of
	// the config alone, so the result does not depend on worker count.
	var chunks []int
	for remaining := cfg.PayloadBits; remaining > 0; remaining -= cfg.ChunkBits {
		n := cfg.ChunkBits
		if n > remaining {
			n = remaining
		}
		chunks = append(chunks, n)
	}
	shards := make([]runner.Shard[*CovertResult], len(chunks))
	for i, bits := range chunks {
		bits := bits
		shards[i] = runner.Shard[*CovertResult]{
			Key: fmt.Sprintf("covert/chunk/%d", i),
			Run: func(ctx context.Context, info runner.Info) (*CovertResult, error) {
				return covertOnce(ctx, cfg, info.Seed, bits)
			},
		}
	}
	results, err := runner.Run(context.Background(), runner.Config{
		Name:    "covert",
		Seed:    cfg.Seed,
		Workers: cfg.Parallelism,
	}, shards)
	if err != nil {
		return nil, err
	}
	if err := runner.FirstErr(results); err != nil {
		return nil, err
	}
	agg := &CovertResult{}
	for _, r := range runner.Values(results) {
		agg.BitsSent += r.BitsSent
		agg.BitErrors += r.BitErrors
		agg.SymbolPeriod = r.SymbolPeriod
		agg.Throughput = r.Throughput
	}
	observeCovert(agg)
	return agg, nil
}

// covertOnce runs one end-to-end transmission of payloadBits bits on a
// board seeded with seed. ctx is polled between sampling intervals, so
// cancellation lands mid-transmission.
func covertOnce(ctx context.Context, cfg CovertConfig, seed int64, payloadBits int) (*CovertResult, error) {
	b, err := board.NewZCU102(board.Config{
		Seed:           seed,
		UpdateInterval: cfg.UpdateInterval,
		Faults:         cfg.Faults,
	})
	if err != nil {
		return nil, err
	}
	array, err := virus.New(virus.Config{})
	if err != nil {
		return nil, err
	}
	if err := array.Deploy(b.Fabric()); err != nil {
		return nil, err
	}
	dev, err := b.Sensor(board.SensorFPGA)
	if err != nil {
		return nil, err
	}
	interval := dev.UpdateInterval()
	period := time.Duration(cfg.SymbolUpdates) * interval

	// Build the frame: preamble + payload.
	payloadRng := rand.New(rand.NewSource(captureSeed(seed, "covert-payload", 0)))
	payload := make([]int, payloadBits)
	for i := range payload {
		payload[i] = payloadRng.Intn(2)
	}
	frame := append(append([]int{}, preamble...), payload...)

	sender := &covertSender{array: array, bits: frame, period: period, groups: cfg.Groups}
	b.Engine().MustRegister("covert-sender", sender)

	attacker, err := NewAttacker(b.Sysfs(), sysfs.Nobody)
	if err != nil {
		return nil, err
	}
	rx := Channel{Label: board.SensorFPGA, Kind: Current}
	rec, err := attacker.NewRecorder(rx, interval)
	if err != nil {
		return nil, err
	}
	// One sample per sensor update across the frame, plus the top-up and
	// padding margin below, so the capture loop never regrows the trace.
	expect := len(frame) * cfg.SymbolUpdates
	rec.Reserve(expect + expect/4 + 4)
	if inj := b.FaultInjector(); inj != nil {
		rec.SetPolicy(recorderHooks(attacker, rx, interval, b.Engine().Stream("backoff/covert")))
		rec.SetFaults(inj.SamplerFaults("recorder/covert"))
	}

	// Settle, then start the transmission aligned with the recorder.
	b.Run(200 * time.Millisecond)
	rec.Reset()
	b.Engine().MustRegister("covert-receiver", rec)
	sender.start = b.Engine().Now()
	sender.active = true
	target := time.Duration(len(frame))*period + 2*interval
	for advanced := time.Duration(0); advanced < target; {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		chunk := interval
		if advanced+chunk > target {
			chunk = target - advanced
		}
		b.Run(chunk)
		advanced += chunk
	}
	// Injected jitter can leave the trace short of the frame; top up
	// briefly, then pad with gaps so the decoder sees a full frame.
	need := len(frame) * cfg.SymbolUpdates
	for extra, maxExtra := 0, need/4+2; extra < maxExtra; extra++ {
		if tr, err := rec.Trace(); err != nil || len(tr.Samples) >= need {
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		b.Run(interval)
	}

	tr, err := rec.Trace()
	if err != nil {
		return nil, err
	}
	tr.PadGaps(need)
	decoded, err := covertDecode(tr.Samples, cfg.SymbolUpdates, len(frame))
	if err != nil {
		return nil, err
	}
	res := &CovertResult{
		BitsSent:     payloadBits,
		SymbolPeriod: period,
		Throughput:   1 / period.Seconds(),
	}
	for i, want := range payload {
		if decoded[len(preamble)+i] != want {
			res.BitErrors++
		}
	}
	return res, nil
}

// covertDecode recovers the frame bits from the sampled current: find
// the sampling offset that best matches the alternating preamble, derive
// the decision threshold from the preamble's high/low means, then
// threshold each symbol's mean.
//
// NaN gaps (lost receiver samples) are excluded from every mean; a
// symbol whose samples were all lost decodes as 0. Only a preamble
// whose high or low symbols are entirely lost is unrecoverable.
func covertDecode(samples []float64, samplesPerSymbol, frameBits int) ([]int, error) {
	if samplesPerSymbol < 1 {
		return nil, errors.New("core: bad symbol width")
	}
	need := frameBits * samplesPerSymbol
	if len(samples) < need {
		return nil, fmt.Errorf("core: trace too short: %d samples, need %d", len(samples), need)
	}
	// symbolMeans averages each symbol's finite samples; an all-gap
	// symbol yields NaN.
	symbolMeans := func(offset int) []float64 {
		out := make([]float64, frameBits)
		for s := 0; s < frameBits; s++ {
			var sum float64
			var n int
			for k := 0; k < samplesPerSymbol; k++ {
				if v := samples[offset+s*samplesPerSymbol+k]; !math.IsNaN(v) {
					sum += v
					n++
				}
			}
			if n == 0 {
				out[s] = math.NaN()
			} else {
				out[s] = sum / float64(n)
			}
		}
		return out
	}
	// preambleLevels averages the preamble's high and low symbol means,
	// skipping lost symbols. ok is false when either level is entirely
	// lost (no calibration possible).
	preambleLevels := func(means []float64) (hi, lo float64, ok bool) {
		var hiN, loN int
		for i, bit := range preamble {
			if math.IsNaN(means[i]) {
				continue
			}
			if bit == 1 {
				hi += means[i]
				hiN++
			} else {
				lo += means[i]
				loN++
			}
		}
		if hiN == 0 || loN == 0 {
			return 0, 0, false
		}
		return hi / float64(hiN), lo / float64(loN), true
	}
	maxOffset := len(samples) - need
	if maxOffset > samplesPerSymbol {
		maxOffset = samplesPerSymbol
	}
	bestOffset, bestScore, found := 0, math.Inf(-1), false
	for off := 0; off <= maxOffset; off++ {
		hi, lo, ok := preambleLevels(symbolMeans(off))
		if !ok {
			continue
		}
		// Preamble contrast: mean(high symbols) - mean(low symbols).
		if score := hi - lo; score > bestScore {
			bestScore = score
			bestOffset = off
			found = true
		}
	}
	if !found {
		return nil, errors.New("core: preamble lost: no offset with both levels observable")
	}
	means := symbolMeans(bestOffset)
	hi, lo, _ := preambleLevels(means)
	threshold := (hi + lo) / 2
	bits := make([]int, frameBits)
	for i, m := range means {
		// NaN > threshold is false: an all-gap symbol decodes as 0.
		if m > threshold {
			bits[i] = 1
		}
	}
	return bits, nil
}
