package core

import (
	"errors"
	"sort"
	"time"

	"repro/internal/board"
	"repro/internal/stats"
	"repro/internal/trace"
)

// SurveyRow summarizes one sensor's current channel over the survey
// window.
type SurveyRow struct {
	// Label of the sensor.
	Label string
	// Dir is the hwmon directory the attacker polled.
	Dir string
	// MeanAmps, StdAmps, RangeAmps summarize the observed samples.
	MeanAmps  float64
	StdAmps   float64
	RangeAmps float64
}

// Survey is the attacker's triage step: on a board whose labels may be
// missing or meaningless, poll every discovered sensor's current channel
// while the victim runs and rank them by observed variation. The FPGA
// and DDR sensors surface at the top whenever an FPGA workload is
// active; the 14 misc rails show nothing but noise.
//
// The board is advanced by duration during the survey (the attacker
// simply waits while sampling).
func Survey(b *board.ZCU102, a *Attacker, duration time.Duration) ([]SurveyRow, error) {
	if b == nil || a == nil {
		return nil, errors.New("core: nil board or attacker")
	}
	if duration <= 0 {
		return nil, errors.New("core: non-positive survey duration")
	}
	sensors, err := a.Discover()
	if err != nil {
		return nil, err
	}
	if len(sensors) == 0 {
		return nil, errors.New("core: no sensors discovered")
	}
	dev, err := b.Sensor(sensors[0].Label)
	if err != nil {
		return nil, err
	}
	interval := dev.UpdateInterval()

	recorders := make([]*trace.Recorder, len(sensors))
	for i, s := range sensors {
		rec, err := a.NewRecorder(Channel{Label: s.Label, Kind: Current}, interval)
		if err != nil {
			return nil, err
		}
		rec.Reserve(int(duration/interval) + 1)
		recorders[i] = rec
		if err := b.Engine().Register("survey/"+s.Label, rec); err != nil {
			return nil, err
		}
	}
	b.Run(duration)

	rows := make([]SurveyRow, len(sensors))
	for i, s := range sensors {
		tr, err := recorders[i].Trace()
		if err != nil {
			return nil, err
		}
		mean, err := stats.Mean(tr.Samples)
		if err != nil {
			return nil, err
		}
		std, err := stats.StdDev(tr.Samples)
		if err != nil {
			return nil, err
		}
		rng, err := stats.Range(tr.Samples)
		if err != nil {
			return nil, err
		}
		rows[i] = SurveyRow{
			Label: s.Label, Dir: s.Dir,
			MeanAmps: mean, StdAmps: std, RangeAmps: rng,
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].StdAmps > rows[j].StdAmps })
	return rows, nil
}
