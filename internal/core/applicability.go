package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/board"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/sysfs"
	"repro/internal/virus"
)

// ApplicabilityConfig parameterizes the cross-board experiment backing
// the paper's Table I claim: AmpereBleed works on every surveyed board
// because they all carry unprivileged INA226 sensors.
type ApplicabilityConfig struct {
	// Seed for the whole experiment. Zero means 1.
	Seed int64
	// Levels of the mini activity sweep per board; zero means 11.
	Levels int
	// SamplesPerLevel of hwmon updates averaged per level; zero means 10.
	SamplesPerLevel int
	// Parallelism is the worker count the per-board shards run on; zero
	// means GOMAXPROCS. Each board simulates on its own engine with a
	// seed derived from Seed and the board name, so the survey's rows
	// are bit-identical for every worker count.
	Parallelism int
	// Faults optionally injects a fault profile into every board's
	// sensor stack; the sweep then samples through the resilient layer
	// (retry, backoff, gap skipping) instead of aborting on first error.
	Faults *faults.Profile
}

// BoardApplicability is one board's outcome.
type BoardApplicability struct {
	// Board is the catalog name.
	Board string
	// Family of the board.
	Family string
	// Sensors discovered by the unprivileged attacker.
	Sensors int
	// CurrentPearson correlates unprivileged FPGA-current readings with
	// the victim activity level.
	CurrentPearson float64
	// VoltageInBand reports that the stabilized supply never left the
	// family's band during the sweep (the defense that does not help).
	VoltageInBand bool
}

// Applicability sweeps a power-virus victim on every Table I board and
// measures the current channel's response through unprivileged hwmon
// reads. The attack is "applicable" to a board when discovery works and
// the current channel tracks the victim level.
func Applicability(cfg ApplicabilityConfig) ([]BoardApplicability, error) {
	cfg, err := normalizeApplicability(cfg)
	if err != nil {
		return nil, err
	}

	catalog := board.Catalog()
	obs.Eventf("applicability: %d boards starting", len(catalog))
	shards := make([]runner.Shard[BoardApplicability], len(catalog))
	for i, spec := range catalog {
		spec := spec
		shards[i] = runner.Shard[BoardApplicability]{
			Key: "applicability/" + spec.Name,
			Run: func(ctx context.Context, info runner.Info) (BoardApplicability, error) {
				return applicabilityOne(ctx, cfg, spec)
			},
		}
	}
	results, err := runner.Run(context.Background(), runner.Config{
		Name:    "applicability",
		Seed:    cfg.Seed,
		Workers: cfg.Parallelism,
	}, shards)
	if err != nil {
		return nil, err
	}
	if err := runner.FirstErr(results); err != nil {
		return nil, err
	}
	return runner.Values(results), nil
}

func normalizeApplicability(cfg ApplicabilityConfig) (ApplicabilityConfig, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Levels == 0 {
		cfg.Levels = 11
	}
	if cfg.Levels < 2 {
		return cfg, errors.New("core: need at least two levels")
	}
	if cfg.SamplesPerLevel == 0 {
		cfg.SamplesPerLevel = 10
	}
	if cfg.SamplesPerLevel < 1 {
		return cfg, errors.New("core: non-positive samples per level")
	}
	return cfg, nil
}

// ApplicabilityBoard runs the Table I survey for one named board — the
// per-shard unit of Applicability, exported for the supervised job
// engine. The board seed derives from cfg.Seed and the board name
// exactly as in the full survey, so a supervised run reproduces the
// same rows the one-shot survey does.
func ApplicabilityBoard(ctx context.Context, cfg ApplicabilityConfig, name string) (BoardApplicability, error) {
	cfg, err := normalizeApplicability(cfg)
	if err != nil {
		return BoardApplicability{}, err
	}
	for _, spec := range board.Catalog() {
		if spec.Name == name {
			return applicabilityOne(ctx, cfg, spec)
		}
	}
	return BoardApplicability{}, fmt.Errorf("core: unknown board %q", name)
}

func applicabilityOne(ctx context.Context, cfg ApplicabilityConfig, spec board.Spec) (BoardApplicability, error) {
	b, err := board.Wire(spec, board.Config{
		Seed:   captureSeed(cfg.Seed, "applicability/"+spec.Name, 0),
		Faults: cfg.Faults,
	})
	if err != nil {
		return BoardApplicability{}, err
	}
	span := obs.StartSpan("core.applicability_board", b.Engine())
	defer span.End()
	array, err := virus.New(virus.Config{Groups: cfg.Levels - 1})
	if err != nil {
		return BoardApplicability{}, err
	}
	if err := array.Deploy(b.Fabric()); err != nil {
		return BoardApplicability{}, err
	}

	attacker, err := NewAttacker(b.Sysfs(), sysfs.Nobody)
	if err != nil {
		return BoardApplicability{}, err
	}
	sensors, err := attacker.Discover()
	if err != nil {
		return BoardApplicability{}, err
	}
	dev, err := b.Sensor(board.SensorFPGA)
	if err != nil {
		return BoardApplicability{}, err
	}
	interval := dev.UpdateInterval()
	// The current sampler owns the sampling cadence; the voltage sampler
	// piggybacks on it with Read (no extra interval advance), matching
	// the classic one-interval-per-iteration loop.
	sampI, err := NewSampler(b, attacker, Channel{Label: board.SensorFPGA, Kind: Current}, interval)
	if err != nil {
		return BoardApplicability{}, err
	}
	sampV, err := NewSampler(b, attacker, Channel{Label: board.SensorFPGA, Kind: Voltage}, interval)
	if err != nil {
		return BoardApplicability{}, err
	}

	levels := make([]float64, 0, cfg.Levels)
	current := make([]float64, 0, cfg.Levels)
	inBand := true
	for level := 0; level < cfg.Levels; level++ {
		if err := ctx.Err(); err != nil {
			return BoardApplicability{}, err
		}
		if err := array.SetActiveGroups(level); err != nil {
			return BoardApplicability{}, err
		}
		b.Run(3 * interval) // flush the previous level
		var sum float64
		var got int
		for s := 0; s < cfg.SamplesPerLevel; s++ {
			v, err := sampI.Sample(ctx)
			switch {
			case errors.Is(err, ErrSampleLost):
				// Gap: the level mean uses the samples that survived.
			case err != nil:
				return BoardApplicability{}, err
			default:
				sum += v
				got++
			}
			volts, err := sampV.Read(ctx)
			if errors.Is(err, ErrSampleLost) {
				continue
			}
			if err != nil {
				return BoardApplicability{}, err
			}
			if !spec.VoltageBand.Contains(volts) {
				inBand = false
			}
		}
		if got == 0 {
			continue // the whole level was lost: drop it from the fit
		}
		levels = append(levels, float64(level))
		current = append(current, sum/float64(got))
	}
	if len(levels) < 2 {
		return BoardApplicability{}, fmt.Errorf(
			"core: %s: only %d of %d activity levels survived fault injection",
			spec.Name, len(levels), cfg.Levels)
	}
	pearson, err := stats.Pearson(levels, current)
	if err != nil {
		return BoardApplicability{}, err
	}
	return BoardApplicability{
		Board:          spec.Name,
		Family:         spec.Family,
		Sensors:        len(sensors),
		CurrentPearson: pearson,
		VoltageInBand:  inBand,
	}, nil
}
