package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/board"
	"repro/internal/faults"
	"repro/internal/leakage"
	"repro/internal/ro"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/sysfs"
	"repro/internal/virus"
)

// CharacterizeConfig parameterizes the Fig. 2 experiment: sweep the
// power-virus activation level and record what every channel sees.
type CharacterizeConfig struct {
	// Seed for the whole experiment. Zero means 1.
	Seed int64
	// Levels is the number of activation levels including zero; zero
	// means the paper's 161 (0..160 groups).
	Levels int
	// SamplesPerLevel is how many hwmon updates to average per level.
	// The paper collects 10,000; the default here is 50, which already
	// pins the per-level mean far below one LSB of spread (documented in
	// EXPERIMENTS.md).
	SamplesPerLevel int
	// WarmupUpdates discarded after each level switch; zero means 3.
	WarmupUpdates int
	// DisableStabilizer runs the FPGA rail unregulated — the ablation
	// that shows why crafted-circuit attacks needed a fluctuating PDN:
	// without the stabilizer the RO channel's variation explodes.
	DisableStabilizer bool
	// Parallelism switches the sweep to the sharded protocol: every
	// activation level is measured on its own freshly wired board (seed
	// derived from Seed and the level), and the per-level shards run on
	// this many workers. The shard set is fixed by the campaign, not the
	// worker count, so results are bit-identical for any Parallelism
	// >= 1. Zero keeps the classic serial protocol, where one board
	// carries the whole sweep.
	Parallelism int
	// Faults optionally injects a fault profile into the rig; level
	// means then average whichever samples survive.
	Faults *faults.Profile
}

// LevelReading is the averaged observation at one activation level.
type LevelReading struct {
	// ActiveGroups is the victim activation level.
	ActiveGroups int
	// CurrentAmps, BusVolts, PowerWatts are the hwmon-channel means.
	CurrentAmps float64
	BusVolts    float64
	PowerWatts  float64
	// ROCount is the mean ring-oscillator count per sampling window.
	ROCount float64
	// CurrentSamples are the individual current reads behind CurrentAmps
	// (finite samples only; injected faults shrink the set). They feed
	// the sweep's leakage SNR, which treats each level as one group.
	CurrentSamples []float64
}

// ChannelFit summarizes one channel's response across the sweep.
type ChannelFit struct {
	// Pearson correlation of the channel against the activation level.
	Pearson float64
	// LSBPerLevel is the fitted slope expressed in channel LSBs per
	// activation step (Fig. 2 quotes ~40 for current, 1-2 for power).
	LSBPerLevel float64
	// RelativeVariation is (max-min)/mean of the per-level means, the
	// "variation" measure behind the paper's 261× claim.
	RelativeVariation float64
}

// CharacterizeResult is the Fig. 2 dataset.
type CharacterizeResult struct {
	// Readings per level, in level order.
	Readings []LevelReading
	// Fits per channel.
	Current, Voltage, Power, RO ChannelFit
	// VariationRatio is current's relative variation over RO's — the
	// paper reports 261×.
	VariationRatio float64
	// SNR is the leakage signal-to-noise ratio of the current channel
	// with each activation level as one labelled group: between-level
	// variance over mean within-level variance. Zero when too few
	// samples survived faults to form at least two 2-sample groups.
	SNR float64
}

// DefaultCharacterizeLevels is the sweep size a zero
// CharacterizeConfig.Levels selects: the paper's 161 activation levels
// (0..160 groups). Exported so job planners can expand the shard list
// without wiring a board.
const DefaultCharacterizeLevels = virus.DefaultGroups + 1

// Channel LSBs used to express slopes (Sec. III-C).
const (
	currentLSB = 1e-3    // 1 mA
	voltageLSB = 1.25e-3 // 1.25 mV
	powerLSB   = 25e-3   // 25 mW
)

// normalizeCharacterize applies the documented defaults and validates;
// Characterize and the job-engine per-level entry point share it so a
// supervised sweep measures exactly what the classic one does.
func normalizeCharacterize(cfg CharacterizeConfig) (CharacterizeConfig, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Levels == 0 {
		cfg.Levels = DefaultCharacterizeLevels
	}
	if cfg.Levels < 2 {
		return cfg, errors.New("core: need at least two levels")
	}
	if cfg.SamplesPerLevel == 0 {
		cfg.SamplesPerLevel = 50
	}
	if cfg.SamplesPerLevel < 1 {
		return cfg, errors.New("core: non-positive samples per level")
	}
	if cfg.WarmupUpdates == 0 {
		cfg.WarmupUpdates = 3
	}
	if cfg.Parallelism < 0 {
		return cfg, errors.New("core: negative parallelism")
	}
	return cfg, nil
}

// CharacterizeLevelKey is the canonical shard key of one activation
// level — the string both the sharded Characterize path and the
// supervised job engine hash with runner.ShardSeed, so either path
// derives the same per-level board seed from the same campaign seed.
func CharacterizeLevelKey(level int) string {
	return fmt.Sprintf("characterize/level/%d", level)
}

// CharacterizeLevel measures a single activation level on its own
// freshly wired board, exactly as one shard of the parallel sweep:
// seed should be runner.ShardSeed(cfg.Seed, CharacterizeLevelKey(level)).
// It is the per-shard unit the supervised job engine checkpoints.
func CharacterizeLevel(cfg CharacterizeConfig, seed int64, level int) (LevelReading, error) {
	cfg, err := normalizeCharacterize(cfg)
	if err != nil {
		return LevelReading{}, err
	}
	if level < 0 || level >= cfg.Levels {
		return LevelReading{}, fmt.Errorf("core: level %d outside sweep of %d levels", level, cfg.Levels)
	}
	rig, err := newCharacterizeRig(cfg, seed)
	if err != nil {
		return LevelReading{}, err
	}
	return rig.measureLevel(level)
}

// FitCharacterize aggregates per-level readings (in level order) into
// the Fig. 2 result. It tolerates a partial sweep — quarantined levels
// simply don't contribute — as long as at least two levels survive.
func FitCharacterize(readings []LevelReading) (*CharacterizeResult, error) {
	if len(readings) < 2 {
		return nil, fmt.Errorf("core: only %d level readings survived, need at least 2 to fit", len(readings))
	}
	return fitCharacterize(readings)
}

// Characterize runs the Fig. 2 sweep on a freshly wired ZCU102.
func Characterize(cfg CharacterizeConfig) (*CharacterizeResult, error) {
	cfg, err := normalizeCharacterize(cfg)
	if err != nil {
		return nil, err
	}

	readings := make([]LevelReading, cfg.Levels)
	if cfg.Parallelism == 0 {
		// Classic protocol: one board carries the whole sweep, levels
		// measured back to back.
		rig, err := newCharacterizeRig(cfg, cfg.Seed)
		if err != nil {
			return nil, err
		}
		for level := 0; level < cfg.Levels; level++ {
			r, err := rig.measureLevel(level)
			if err != nil {
				return nil, err
			}
			readings[level] = r
		}
	} else {
		// Sharded protocol: one shard per level, each on its own board
		// seeded from the campaign seed and the level key, so the sweep
		// parallelizes without any cross-level state.
		shards := make([]runner.Shard[LevelReading], cfg.Levels)
		for level := 0; level < cfg.Levels; level++ {
			level := level
			shards[level] = runner.Shard[LevelReading]{
				Key: CharacterizeLevelKey(level),
				Run: func(ctx context.Context, info runner.Info) (LevelReading, error) {
					rig, err := newCharacterizeRig(cfg, info.Seed)
					if err != nil {
						return LevelReading{}, err
					}
					return rig.measureLevel(level)
				},
			}
		}
		results, err := runner.Run(context.Background(), runner.Config{
			Name:    "characterize",
			Seed:    cfg.Seed,
			Workers: cfg.Parallelism,
		}, shards)
		if err != nil {
			return nil, err
		}
		if err := runner.FirstErr(results); err != nil {
			return nil, err
		}
		readings = runner.Values(results)
	}
	return fitCharacterize(readings)
}

// characterizeRig is one wired measurement setup of the Fig. 2 sweep:
// board, virus array, RO baseline, and unprivileged hwmon probes.
type characterizeRig struct {
	cfg      CharacterizeConfig
	b        *board.ZCU102
	array    *virus.Array
	bank     *ro.Bank
	samplers map[Kind]*Sampler
	interval time.Duration
}

// newCharacterizeRig wires a fresh board and deploys the victim and the
// RO baseline on it.
func newCharacterizeRig(cfg CharacterizeConfig, seed int64) (*characterizeRig, error) {
	// --- Victim side: deploy the virus bitstream and the RO baseline. ---
	b, err := board.NewZCU102(board.Config{
		Seed:              seed,
		DisableStabilizer: cfg.DisableStabilizer,
		Faults:            cfg.Faults,
	})
	if err != nil {
		return nil, err
	}
	array, err := virus.New(virus.Config{Groups: cfg.Levels - 1})
	if err != nil {
		return nil, err
	}
	if err := array.Deploy(b.Fabric()); err != nil {
		return nil, err
	}
	fpgaRail, err := b.Rail(board.RailFPGA)
	if err != nil {
		return nil, err
	}
	bank, err := ro.New(ro.Config{
		NominalVolts: fpgaRail.NominalVoltage(),
		// 1.27%/10 mV supply sensitivity, the calibration point that puts
		// the current/RO variation ratio at the paper's 261×.
		VoltSensitivity:           1.27,
		Volts:                     fpgaRail.Voltage,
		LocalDroopVoltsPerElement: 2e-9,
		LocalActivity:             b.Fabric().RegionActivity,
		JitterHz:                  50e3,
		Rand:                      b.Engine().Stream("ro-bank"),
	})
	if err != nil {
		return nil, err
	}
	if err := bank.Deploy(b.Fabric()); err != nil {
		return nil, err
	}

	// --- Attacker side: unprivileged hwmon samplers on the FPGA sensor.
	// The current sampler owns the cadence; voltage and power piggyback
	// with Read so each iteration still advances exactly one interval. ---
	attacker, err := NewAttacker(b.Sysfs(), sysfs.Nobody)
	if err != nil {
		return nil, err
	}
	dev, err := b.Sensor(board.SensorFPGA)
	if err != nil {
		return nil, err
	}
	interval := dev.UpdateInterval()
	samplers := make(map[Kind]*Sampler, 3)
	for _, k := range []Kind{Current, Voltage, Power} {
		s, err := NewSampler(b, attacker, Channel{Label: board.SensorFPGA, Kind: k}, interval)
		if err != nil {
			return nil, err
		}
		samplers[k] = s
	}
	return &characterizeRig{
		cfg:      cfg,
		b:        b,
		array:    array,
		bank:     bank,
		samplers: samplers,
		interval: interval,
	}, nil
}

// measureLevel sets one activation level, lets the sensor windows flush
// the previous state, and averages the configured number of hwmon
// updates on every channel.
func (rig *characterizeRig) measureLevel(level int) (LevelReading, error) {
	if err := rig.array.SetActiveGroups(level); err != nil {
		return LevelReading{}, err
	}
	// Let the sensor windows flush the previous level.
	rig.b.Run(time.Duration(rig.cfg.WarmupUpdates) * rig.interval)
	rig.bank.Sample() // discard counts accumulated during warmup

	ctx := context.Background()
	var sum, got [3]float64
	var sumR float64
	curSamples := make([]float64, 0, rig.cfg.SamplesPerLevel)
	kinds := []Kind{Current, Voltage, Power}
	for s := 0; s < rig.cfg.SamplesPerLevel; s++ {
		for j, k := range kinds {
			var v float64
			var err error
			if j == 0 {
				v, err = rig.samplers[k].Sample(ctx) // advances the interval
			} else {
				v, err = rig.samplers[k].Read(ctx)
			}
			if errors.Is(err, ErrSampleLost) {
				continue
			}
			if err != nil {
				return LevelReading{}, err
			}
			sum[j] += v
			got[j]++
			if j == 0 {
				curSamples = append(curSamples, v)
			}
		}
		sumR += rig.bank.SampleMean()
	}
	for j, k := range kinds {
		if got[j] == 0 {
			return LevelReading{}, fmt.Errorf("core: level %d: every %s sample lost", level, k)
		}
		sum[j] /= got[j]
	}
	return LevelReading{
		ActiveGroups:   level,
		CurrentAmps:    sum[0],
		BusVolts:       sum[1],
		PowerWatts:     sum[2],
		ROCount:        sumR / float64(rig.cfg.SamplesPerLevel),
		CurrentSamples: curSamples,
	}, nil
}

// fitCharacterize turns the per-level readings into the Fig. 2 channel
// fits and variation ratio.
func fitCharacterize(readings []LevelReading) (*CharacterizeResult, error) {
	res := &CharacterizeResult{Readings: readings}
	levels := make([]float64, 0, len(readings))
	cur := make([]float64, 0, len(readings))
	vol := make([]float64, 0, len(readings))
	pow := make([]float64, 0, len(readings))
	roc := make([]float64, 0, len(readings))
	for _, r := range readings {
		levels = append(levels, float64(r.ActiveGroups))
		cur = append(cur, r.CurrentAmps)
		vol = append(vol, r.BusVolts)
		pow = append(pow, r.PowerWatts)
		roc = append(roc, r.ROCount)
	}

	var err error
	if res.Current, err = fitChannel(levels, cur, currentLSB); err != nil {
		return nil, fmt.Errorf("core: current fit: %w", err)
	}
	if res.Voltage, err = fitChannel(levels, vol, voltageLSB); err != nil {
		return nil, fmt.Errorf("core: voltage fit: %w", err)
	}
	if res.Power, err = fitChannel(levels, pow, powerLSB); err != nil {
		return nil, fmt.Errorf("core: power fit: %w", err)
	}
	if res.RO, err = fitChannel(levels, roc, 1); err != nil {
		return nil, fmt.Errorf("core: RO fit: %w", err)
	}
	if res.RO.RelativeVariation > 0 {
		res.VariationRatio = res.Current.RelativeVariation / res.RO.RelativeVariation
	}
	// Leakage SNR of the current channel, one group per level. Faults can
	// shrink a level below the two samples a variance needs; such levels
	// drop out rather than aborting the sweep.
	groups := make([][]float64, 0, len(readings))
	for _, r := range readings {
		if len(r.CurrentSamples) >= 2 {
			groups = append(groups, r.CurrentSamples)
		}
	}
	if len(groups) >= 2 {
		snr, err := leakage.SNR(groups)
		if err != nil {
			return nil, fmt.Errorf("core: leakage snr: %w", err)
		}
		res.SNR = snr
	}
	return res, nil
}

func fitChannel(levels, values []float64, lsb float64) (ChannelFit, error) {
	pearson, err := stats.Pearson(levels, values)
	if errors.Is(err, stats.ErrDegenerate) {
		// A channel flattened entirely by quantization carries no
		// information about the level: report zero correlation.
		pearson = 0
	} else if err != nil {
		return ChannelFit{}, err
	}
	fit, err := stats.FitLine(levels, values)
	if err != nil {
		return ChannelFit{}, err
	}
	rng, err := stats.Range(values)
	if err != nil {
		return ChannelFit{}, err
	}
	mean := stats.MustMean(values)
	cf := ChannelFit{
		Pearson:     pearson,
		LSBPerLevel: fit.Slope / lsb,
	}
	if mean != 0 {
		cf.RelativeVariation = rng / mean
	}
	return cf, nil
}
