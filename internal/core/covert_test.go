package core

import (
	"math"
	"testing"
	"time"
)

func TestCovertErrorFreeAtUpdateRate(t *testing.T) {
	// One symbol per sensor update: the OOK capacity ceiling at 35 ms.
	res, err := CovertTransmit(CovertConfig{PayloadBits: 64, SymbolUpdates: 1})
	if err != nil {
		t.Fatalf("CovertTransmit: %v", err)
	}
	if res.BitErrors != 0 {
		t.Fatalf("BER = %v at the update rate, want 0", res.BER())
	}
	if math.Abs(res.Throughput-1/0.035) > 0.1 {
		t.Fatalf("throughput = %v bps, want ~28.6", res.Throughput)
	}
	if res.SymbolPeriod != 35*time.Millisecond {
		t.Fatalf("symbol period = %v", res.SymbolPeriod)
	}
	if res.BitsSent != 64 {
		t.Fatalf("BitsSent = %d", res.BitsSent)
	}
}

func TestCovertSlowerSymbolsAlsoClean(t *testing.T) {
	res, err := CovertTransmit(CovertConfig{PayloadBits: 32, SymbolUpdates: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.BitErrors != 0 {
		t.Fatalf("BER = %v", res.BER())
	}
}

func TestCovertSmallAmplitude(t *testing.T) {
	// One virus group = ~40 mA swing, still 40 sensor LSBs: clean.
	res, err := CovertTransmit(CovertConfig{PayloadBits: 32, SymbolUpdates: 2, Groups: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.BitErrors != 0 {
		t.Fatalf("BER = %v with a 1-group amplitude", res.BER())
	}
}

func TestCovertRootRetunedRate(t *testing.T) {
	// A root accomplice retunes the sensor to 2 ms: 500 bps, still clean.
	res, err := CovertTransmit(CovertConfig{
		PayloadBits:    64,
		SymbolUpdates:  1,
		UpdateInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BitErrors != 0 {
		t.Fatalf("BER = %v at 2 ms", res.BER())
	}
	if math.Abs(res.Throughput-500) > 1 {
		t.Fatalf("throughput = %v bps, want 500", res.Throughput)
	}
}

func TestCovertDeterministic(t *testing.T) {
	run := func() int {
		res, err := CovertTransmit(CovertConfig{Seed: 9, PayloadBits: 48})
		if err != nil {
			t.Fatal(err)
		}
		return res.BitErrors
	}
	if run() != run() {
		t.Fatal("same seed produced different transmissions")
	}
}

func TestCovertValidation(t *testing.T) {
	if _, err := CovertTransmit(CovertConfig{PayloadBits: -1}); err == nil {
		t.Fatal("negative payload accepted")
	}
	if _, err := CovertTransmit(CovertConfig{SymbolUpdates: -1}); err == nil {
		t.Fatal("negative symbol width accepted")
	}
	if _, err := CovertTransmit(CovertConfig{Groups: 9999}); err == nil {
		t.Fatal("overweight amplitude accepted")
	}
}

func TestCovertDecodeErrors(t *testing.T) {
	if _, err := covertDecode([]float64{1, 2}, 1, 10); err == nil {
		t.Fatal("short trace accepted")
	}
	if _, err := covertDecode([]float64{1, 2}, 0, 1); err == nil {
		t.Fatal("zero symbol width accepted")
	}
}

func TestCovertBERZeroOnEmpty(t *testing.T) {
	r := &CovertResult{}
	if r.BER() != 0 {
		t.Fatal("empty BER != 0")
	}
}
