package core

import (
	"errors"
	"fmt"
	"math/big"
	"math/rand"
	"time"

	"repro/internal/board"
	"repro/internal/leakage"
	"repro/internal/rsa"
	"repro/internal/sysfs"
)

// LeakageConfig parameterizes the TVLA-style assessment of the
// AmpereBleed channel against the RSA victim.
type LeakageConfig struct {
	// Seed for the whole assessment. Zero means 1.
	Seed int64
	// SamplesPerSession collected per victim session; zero means 2000.
	// Unlike the raw attack loop, the assessment samples once per sensor
	// register update (35 ms) so the t-test sees independent
	// observations — polling a latched register faster only duplicates
	// samples and inflates the statistic.
	SamplesPerSession int
	// RandomSessions is the number of random-key sessions pooled on the
	// "random" side of the t-test; zero means 4.
	RandomSessions int
	// Countermeasure assesses the Montgomery-ladder victim instead.
	Countermeasure bool
}

// LeakageResult is the assessment outcome.
type LeakageResult struct {
	// TVLA is the fixed-vs-random Welch t-test over FPGA current
	// samples. |T| > 4.5 certifies the channel as leaking.
	TVLA leakage.TVLAResult
	// SNR is the signal-to-noise ratio of the current channel across
	// three Hamming-weight groups (1, 512, 1024).
	SNR float64
}

// AssessRSALeakage runs the standard fixed-vs-random leakage test over
// the FPGA current channel while RSA victims execute. Without the
// countermeasure the channel fails TVLA decisively; with the Montgomery
// ladder it passes.
func AssessRSALeakage(cfg LeakageConfig) (*LeakageResult, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.SamplesPerSession == 0 {
		cfg.SamplesPerSession = 2000
	}
	if cfg.SamplesPerSession < 10 {
		return nil, errors.New("core: too few samples per session")
	}
	if cfg.RandomSessions == 0 {
		cfg.RandomSessions = 4
	}
	if cfg.RandomSessions < 1 {
		return nil, errors.New("core: need at least one random session")
	}

	// Fixed side: one deliberately heavy key (HW 700), reused across the
	// fixed session — the TVLA convention of a fixed input class.
	fixedRng := rand.New(rand.NewSource(captureSeed(cfg.Seed, "tvla/fixed-key", 0)))
	fixedKey, err := rsa.ExponentWithHammingWeight(1024, 700, fixedRng)
	if err != nil {
		return nil, err
	}
	fixed, err := collectRSACurrent(cfg, "tvla/fixed", fixedKey)
	if err != nil {
		return nil, err
	}

	// Random side: a fresh uniform 1024-bit key per session (binomial
	// Hamming weight around 512).
	var random []float64
	for s := 0; s < cfg.RandomSessions; s++ {
		keyRng := rand.New(rand.NewSource(captureSeed(cfg.Seed, "tvla/random-key", s)))
		exp, err := rsa.Modulus(1024, keyRng) // odd, top bit set: a valid exponent
		if err != nil {
			return nil, err
		}
		samples, err := collectRSACurrent(cfg, fmt.Sprintf("tvla/random/%d", s), exp)
		if err != nil {
			return nil, err
		}
		random = append(random, samples...)
	}

	res := &LeakageResult{}
	if res.TVLA, err = leakage.TVLA(fixed, random); err != nil {
		return nil, err
	}

	// SNR across three well-separated weight groups.
	groups := make([][]float64, 0, 3)
	for _, hw := range []int{1, 512, 1024} {
		keyRng := rand.New(rand.NewSource(captureSeed(cfg.Seed, "snr-key", hw)))
		exp, err := rsa.ExponentWithHammingWeight(1024, hw, keyRng)
		if err != nil {
			return nil, err
		}
		samples, err := collectRSACurrent(cfg, fmt.Sprintf("snr/%d", hw), exp)
		if err != nil {
			return nil, err
		}
		groups = append(groups, samples)
	}
	if res.SNR, err = leakage.SNR(groups); err != nil {
		return nil, err
	}
	return res, nil
}

// collectRSACurrent runs one victim session and returns the attacker's
// 1 kHz FPGA-current samples.
func collectRSACurrent(cfg LeakageConfig, tag string, exponent *big.Int) ([]float64, error) {
	seed := captureSeed(cfg.Seed, tag, 0)
	b, err := board.NewZCU102(board.Config{Seed: seed})
	if err != nil {
		return nil, err
	}
	modulus, err := rsa.Modulus(1024, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	circuit, err := rsa.NewCircuit(rsa.CircuitConfig{
		Exponent: exponent,
		Modulus:  modulus,
		Rand:     b.Engine().Stream("rsa-plaintexts"),
		Ladder:   cfg.Countermeasure,
	})
	if err != nil {
		return nil, err
	}
	if err := b.Fabric().Place(circuit, b.Fabric().SpreadEvenly()); err != nil {
		return nil, err
	}
	b.CPUFull().SetUtil(0.1)

	attacker, err := NewAttacker(b.Sysfs(), sysfs.Nobody)
	if err != nil {
		return nil, err
	}
	dev, err := b.Sensor(board.SensorFPGA)
	if err != nil {
		return nil, err
	}
	interval := dev.UpdateInterval()
	rec, err := attacker.NewRecorder(Channel{Label: board.SensorFPGA, Kind: Current}, interval)
	if err != nil {
		return nil, err
	}
	rec.Reserve(cfg.SamplesPerSession + 1)
	b.Run(200 * time.Millisecond)
	rec.Reset()
	b.Engine().MustRegister("recorder/tvla", rec)
	b.Run(time.Duration(cfg.SamplesPerSession) * interval)
	tr, err := rec.Trace()
	if err != nil {
		return nil, err
	}
	return tr.Samples, nil
}
