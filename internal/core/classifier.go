package core

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/ml/features"
	"repro/internal/ml/rforest"
	"repro/internal/obs"
)

// Classifier is the online phase of the fingerprinting attack: a random
// forest trained on offline captures of one channel, able to label a
// black-box accelerator from a fresh trace.
type Classifier struct {
	forest       *rforest.Forest
	channel      Channel
	duration     time.Duration
	bins         int
	spectralBins int
	classes      []string
}

// TrainClassifier fits the offline-phase model for one channel and
// trace duration over the given captures.
func TrainClassifier(cfg FingerprintConfig, captures []*Capture, ch Channel, d time.Duration) (*Classifier, error) {
	cfg.fillDefaults()
	if len(captures) == 0 {
		return nil, errors.New("core: no training captures")
	}
	var ds features.Dataset
	for _, capt := range captures {
		tr, ok := capt.Traces[ch]
		if !ok {
			return nil, fmt.Errorf("core: capture %s/%d lacks channel %v", capt.Model, capt.Rep, ch)
		}
		prefix, err := tr.Prefix(d)
		if err != nil {
			return nil, err
		}
		vec, err := features.FromTraceWithSpectrum(prefix, cfg.Bins, cfg.SpectralBins)
		if err != nil {
			return nil, err
		}
		ds.Add(vec, capt.Model)
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if len(ds.Classes) < 2 {
		return nil, errors.New("core: need captures of at least two models")
	}
	seed := captureSeed(cfg.Seed, fmt.Sprintf("classifier/%v/%v", ch, d), 0)
	span := obs.StartSpan("core.train", nil)
	forest, err := rforest.Train(rforest.Config{
		Trees:    cfg.Trees,
		MaxDepth: cfg.MaxDepth,
		Rand:     rand.New(rand.NewSource(seed)),
	}, ds.X, ds.Y, len(ds.Classes))
	span.End()
	if err != nil {
		return nil, err
	}
	return &Classifier{
		forest:       forest,
		channel:      ch,
		duration:     d,
		bins:         cfg.Bins,
		spectralBins: cfg.SpectralBins,
		classes:      ds.Classes,
	}, nil
}

// Channel returns the channel the classifier was trained on.
func (c *Classifier) Channel() Channel { return c.channel }

// Classes returns the model names the classifier can distinguish.
func (c *Classifier) Classes() []string { return append([]string(nil), c.classes...) }

// vectorFor extracts this classifier's feature vector from a capture.
func (c *Classifier) vectorFor(capt *Capture) ([]float64, error) {
	tr, ok := capt.Traces[c.channel]
	if !ok {
		return nil, fmt.Errorf("core: capture lacks channel %v", c.channel)
	}
	prefix, err := tr.Prefix(c.duration)
	if err != nil {
		return nil, err
	}
	return features.FromTraceWithSpectrum(prefix, c.bins, c.spectralBins)
}

// Classify labels a black-box capture with the most likely model name.
func (c *Classifier) Classify(capt *Capture) (string, error) {
	top, err := c.TopK(capt, 1)
	if err != nil {
		return "", err
	}
	return top[0], nil
}

// ImportanceBreakdown aggregates the forest's Gini feature importance
// into the three semantic feature groups.
type ImportanceBreakdown struct {
	// Temporal is the share carried by the resampled trace bins (the
	// victim's activity pattern over time).
	Temporal float64
	// Summary is the share carried by the amplitude statistics (mean,
	// std, min, max, quartiles).
	Summary float64
	// Spectral is the share carried by the DFT magnitudes (zero when
	// spectral features are disabled).
	Spectral float64
}

// FeatureImportance returns the per-feature Gini importance of the
// trained forest, in the vector's layout: bins temporal values, six
// summary statistics, then any spectral magnitudes.
func (c *Classifier) FeatureImportance() []float64 {
	return c.forest.Importances()
}

// Breakdown groups the feature importance semantically — which aspect
// of the current trace identifies a model.
func (c *Classifier) Breakdown() ImportanceBreakdown {
	imp := c.forest.Importances()
	var out ImportanceBreakdown
	for i, v := range imp {
		switch {
		case i < c.bins:
			out.Temporal += v
		case i < c.bins+summaryFeatureCount:
			out.Summary += v
		default:
			out.Spectral += v
		}
	}
	return out
}

// summaryFeatureCount mirrors the features package's appended summary
// statistics (mean, std, min, max, Q1, Q3).
const summaryFeatureCount = 6

// TopK returns the k most likely model names, most likely first.
func (c *Classifier) TopK(capt *Capture, k int) ([]string, error) {
	span := obs.StartSpan("core.predict", nil)
	defer span.End()
	vec, err := c.vectorFor(capt)
	if err != nil {
		return nil, err
	}
	idx, err := c.forest.TopK(vec, k)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(idx))
	for i, ci := range idx {
		out[i] = c.classes[ci]
	}
	return out, nil
}
