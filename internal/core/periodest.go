package core

import (
	"errors"
	"fmt"
	"time"
)

// EstimateInferencePeriod recovers the victim's inference-loop period
// from one channel of a capture via its dominant spectral component.
// The estimate is bounded below by Nyquist: loops faster than twice the
// sampling interval alias away, which is exactly why the hwmon update
// interval (35 ms unprivileged, 2 ms for root) bounds what the attacker
// can resolve. ok is false when no periodic component stands above the
// noise floor.
func EstimateInferencePeriod(capt *Capture, ch Channel) (period time.Duration, ok bool, err error) {
	if capt == nil {
		return 0, false, errors.New("core: nil capture")
	}
	tr, found := capt.Traces[ch]
	if !found {
		return 0, false, fmt.Errorf("core: capture lacks channel %v", ch)
	}
	n := len(tr.Samples)
	if n < 16 {
		return 0, false, errors.New("core: trace too short for period estimation")
	}
	// Search periods from the full window down to 4 samples (twice
	// Nyquist, for a clean peak).
	maxBins := n / 4
	if maxBins > 256 {
		maxBins = 256
	}
	samples, ok, err := tr.DominantPeriod(maxBins, 3.0)
	if err != nil || !ok {
		return 0, ok, err
	}
	return time.Duration(samples * float64(tr.Interval)), true, nil
}
