package core_test

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/trace"
)

// detectorInput pairs a random valid detector config with a
// zero-variance sample stream contaminated by NaN/Inf glitches.
type detectorInput struct {
	cfg      core.DetectorConfig
	interval time.Duration
	level    float64
	samples  []float64
}

func genDetectorInput() check.Gen[detectorInput] {
	return check.Gen[detectorInput]{
		Generate: func(r *rand.Rand, _ int) detectorInput {
			level := 0.1 + 2*r.Float64()
			n := 20 + r.Intn(200)
			samples := make([]float64, n)
			for i := range samples {
				switch {
				case r.Float64() < 0.05:
					samples[i] = math.NaN()
				case r.Float64() < 0.02:
					samples[i] = math.Inf(1 - 2*r.Intn(2))
				default:
					samples[i] = level
				}
			}
			return detectorInput{
				cfg: core.DetectorConfig{
					DriftAmps:       0.001 + 0.1*r.Float64(),
					ThresholdAmps:   0.01 + 0.5*r.Float64(),
					BaselineSamples: 1 + r.Intn(16),
				},
				interval: time.Duration(1+r.Intn(35)) * time.Millisecond,
				level:    level,
				samples:  samples,
			}
		},
	}
}

// TestPropCUSUMNeverFiresOnZeroVariance: a constant current level —
// even interrupted by NaN/Inf sensor glitches — must produce no
// events for any valid config. A false positive here would mean the
// workload detector hallucinates FPGA activity from noise-free rails.
func TestPropCUSUMNeverFiresOnZeroVariance(t *testing.T) {
	check.Forall(t, genDetectorInput(), func(c *check.T, in detectorInput) {
		det, err := core.NewDetector(in.cfg, in.interval)
		if err != nil {
			c.Fatalf("NewDetector(%+v): %v", in.cfg, err)
		}
		glitches := 0
		for _, s := range in.samples {
			if math.IsNaN(s) || math.IsInf(s, 0) {
				glitches++
			}
			if ev := det.Push(s); ev != nil {
				c.Fatalf("detector fired %s at %s on zero-variance input (level %v, %d glitches)",
					ev.Kind, ev.At, in.level, glitches)
			}
		}
		c.Classify(glitches > 0, "glitched")
		if len(det.Events()) != 0 {
			c.Errorf("Events() non-empty after glitch-only stream")
		}
	})
}

// TestPropCUSUMDetectsPlantedStep: metamorphic direction check — a
// step well above drift+threshold must fire exactly one Rise within
// the post-step window.
func TestPropCUSUMDetectsPlantedStep(t *testing.T) {
	g := check.Gen[detectorInput]{
		Generate: func(r *rand.Rand, _ int) detectorInput {
			return detectorInput{
				cfg: core.DetectorConfig{
					DriftAmps:       0.005 + 0.02*r.Float64(),
					ThresholdAmps:   0.02 + 0.08*r.Float64(),
					BaselineSamples: 1 + r.Intn(8),
				},
				interval: time.Duration(1+r.Intn(35)) * time.Millisecond,
				level:    0.1 + r.Float64(),
			}
		},
	}
	check.Forall(t, g, func(c *check.T, in detectorInput) {
		det, err := core.NewDetector(in.cfg, in.interval)
		if err != nil {
			c.Fatalf("NewDetector: %v", err)
		}
		for i := 0; i < in.cfg.BaselineSamples+5; i++ {
			if ev := det.Push(in.level); ev != nil {
				c.Fatalf("fired before the step: %+v", ev)
			}
		}
		// Step by double the full trigger budget: must fire within a
		// few samples.
		step := in.level + 2*(in.cfg.DriftAmps+in.cfg.ThresholdAmps)
		fired := false
		for i := 0; i < 10; i++ {
			if ev := det.Push(step); ev != nil {
				if ev.Kind != core.Rise {
					c.Errorf("planted rise detected as %s", ev.Kind)
				}
				fired = true
				break
			}
		}
		if !fired {
			c.Errorf("planted step %v->%v never detected (cfg %+v)", in.level, step, in.cfg)
		}
	})
}

// TestPropPeriodEstimateMatchesPlanted: EstimateInferencePeriod must
// recover the generator's planted period exactly — the planted tone
// sits on an integer bin, so n/bestBin is the integer period and the
// duration is period × interval with no rounding.
func TestPropPeriodEstimateMatchesPlanted(t *testing.T) {
	gen := check.PeriodicTraces(check.TraceConfig{Noise: 0.05})
	ch := core.Channel{Label: "ina226_u76", Kind: core.Current}
	check.Forall(t, gen, func(c *check.T, p check.PeriodicTrace) {
		capt := &core.Capture{
			Model:  "prop",
			Traces: map[core.Channel]*trace.Trace{ch: p.Trace},
		}
		period, ok, err := core.EstimateInferencePeriod(capt, ch)
		if err != nil {
			c.Fatalf("EstimateInferencePeriod: %v", err)
		}
		if !ok {
			c.Fatalf("no period found for planted tone (bin %d, period %d)", p.Bin, p.PeriodSamples)
		}
		want := time.Duration(p.PeriodSamples) * p.Trace.Interval
		if period != want {
			c.Errorf("estimated %s, planted %s (bin %d, n %d)", period, want, p.Bin, len(p.Trace.Samples))
		}
	})
}

// TestPropPeriodEstimateGapTolerant: the estimate survives a moderate
// gap rate (the hostile-profile regime) within one bin of the truth.
func TestPropPeriodEstimateGapTolerant(t *testing.T) {
	gen := check.PeriodicTraces(check.TraceConfig{GapRate: 0.1})
	ch := core.Channel{Label: "ina226_u76", Kind: core.Current}
	check.Forall(t, gen, func(c *check.T, p check.PeriodicTrace) {
		n := len(p.Trace.Samples)
		if p.Gaps > n/4 {
			c.Discard() // beyond design tolerance
		}
		capt := &core.Capture{
			Model:  "prop",
			Traces: map[core.Channel]*trace.Trace{ch: p.Trace},
		}
		period, ok, err := core.EstimateInferencePeriod(capt, ch)
		if err != nil {
			c.Fatalf("EstimateInferencePeriod: %v", err)
		}
		if !ok {
			c.Label("below-noise-floor")
			return
		}
		// Allow the peak to smear to an adjacent bin under gap loss.
		got := float64(period) / float64(p.Trace.Interval)
		lo := float64(n) / float64(p.Bin+1)
		hi := float64(n) / float64(max(p.Bin-1, 1))
		if got < lo-1e-9 || got > hi+1e-9 {
			c.Errorf("estimate %v samples outside [%v, %v] around planted %d (gaps %d/%d)",
				got, lo, hi, p.PeriodSamples, p.Gaps, n)
		}
	})
}

// TestPropCovertZeroNoiseZeroBER: the end-to-end contract of the
// covert channel — encode → simulated board → decode recovers every
// payload bit when no faults are injected, for random seeds, payload
// sizes, and modulation parameters.
func TestPropCovertZeroNoiseZeroBER(t *testing.T) {
	type covertParams struct {
		seed        int64
		payloadBits int
		symbols     int
		groups      int
	}
	g := check.Gen[covertParams]{
		Generate: func(r *rand.Rand, _ int) covertParams {
			return covertParams{
				seed:        1 + r.Int63n(1_000_000),
				payloadBits: 1 + r.Intn(8),
				symbols:     2 + r.Intn(2),
				groups:      30 + r.Intn(51),
			}
		},
	}
	check.Forall(t, g, func(c *check.T, p covertParams) {
		res, err := core.CovertTransmit(core.CovertConfig{
			Seed:           p.seed,
			PayloadBits:    p.payloadBits,
			SymbolUpdates:  p.symbols,
			Groups:         p.groups,
			UpdateInterval: 2 * time.Millisecond,
		})
		if err != nil {
			c.Fatalf("CovertTransmit: %v", err)
		}
		if ber := res.BER(); ber != 0 {
			c.Errorf("BER = %v at zero noise (%d/%d bits wrong)", ber, res.BitErrors, res.BitsSent)
		}
	}, check.Iters(100))
}
