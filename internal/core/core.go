// Package core implements the AmpereBleed attack itself: unprivileged,
// circuit-free power side-channel measurement of ARM-FPGA SoCs through
// the hwmon interface of the boards' INA226 sensors, and the three
// end-to-end analyses of the paper's evaluation —
//
//   - characterization of the current/voltage/power channels against a
//     161-level power-virus victim, with the ring-oscillator baseline
//     (Fig. 2),
//   - DPU accelerator fingerprinting with a random forest over 39 DNN
//     architectures (Fig. 3, Table III), and
//   - Hamming-weight recovery from an RSA-1024 circuit (Fig. 4).
//
// Everything the attacker does goes through the simulated sysfs as an
// unprivileged user (sysfs.Nobody): discovery via directory listing,
// measurement via world-readable attribute reads. The victim side
// (bitstream deployment, model loading) is driven separately, exactly as
// the threat model separates the two parties.
package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/hwmon"
	"repro/internal/sysfs"
	"repro/internal/trace"
)

// Kind selects which of a sensor's three measurements to sample.
type Kind string

// The INA226's three measurement channels.
const (
	Current Kind = "current"
	Voltage Kind = "voltage"
	Power   Kind = "power"
)

// attr returns the hwmon attribute file and its scale to base units.
func (k Kind) attr() (name string, scale float64, err error) {
	switch k {
	case Current:
		return "curr1_input", 1e-3, nil // mA
	case Voltage:
		return "in1_input", 1e-3, nil // mV
	case Power:
		return "power1_input", 1e-6, nil // µW
	default:
		return "", 0, fmt.Errorf("core: unknown measurement kind %q", k)
	}
}

// Channel identifies one side-channel source: a sensor and a kind.
type Channel struct {
	// Label is the sensor's board designator, e.g. "ina226_u79".
	Label string
	// Kind is the measurement to read.
	Kind Kind
}

// String renders the channel like the paper's table rows, e.g.
// "Current (ina226_u79)".
func (c Channel) String() string {
	k := string(c.Kind)
	if k != "" {
		k = strings.ToUpper(k[:1]) + k[1:]
	}
	return fmt.Sprintf("%s (%s)", k, c.Label)
}

// SensorInfo describes a discovered hwmon sensor.
type SensorInfo struct {
	// Dir is the sysfs directory, e.g. "class/hwmon/hwmon3".
	Dir string
	// Name is the driver name attribute ("ina226").
	Name string
	// Label is the board designator.
	Label string
}

// Attacker is the unprivileged measurement side of AmpereBleed.
type Attacker struct {
	fs   *sysfs.FS
	cred sysfs.Cred
}

// NewAttacker returns an attacker reading the given sysfs tree with the
// given credential (normally sysfs.Nobody — using Root would defeat the
// point of the exercise).
func NewAttacker(fs *sysfs.FS, cred sysfs.Cred) (*Attacker, error) {
	if fs == nil {
		return nil, errors.New("core: nil sysfs")
	}
	return &Attacker{fs: fs, cred: cred}, nil
}

// Discover lists the INA226 sensors visible through hwmon, in directory
// order — the attacker's reconnaissance step.
func (a *Attacker) Discover() ([]SensorInfo, error) {
	dirs, err := a.fs.ReadDir(hwmon.ClassDir)
	if err != nil {
		return nil, err
	}
	sort.Slice(dirs, func(i, j int) bool {
		return hwmonIndex(dirs[i]) < hwmonIndex(dirs[j])
	})
	var out []SensorInfo
	for _, d := range dirs {
		dir := hwmon.ClassDir + "/" + d
		name, err := a.fs.ReadFile(a.cred, dir+"/name")
		if err != nil {
			continue // not readable or not a sensor dir
		}
		if strings.TrimSpace(name) != hwmon.DriverName {
			continue
		}
		label, err := a.fs.ReadFile(a.cred, dir+"/label")
		if err != nil {
			continue
		}
		out = append(out, SensorInfo{
			Dir:   dir,
			Name:  strings.TrimSpace(name),
			Label: strings.TrimSpace(label),
		})
	}
	return out, nil
}

func hwmonIndex(name string) int {
	n := 0
	fmt.Sscanf(name, "hwmon%d", &n)
	return n
}

// Probe returns a read function for one channel, resolved through
// discovery. The returned probe performs a fresh unprivileged file read
// on every call.
func (a *Attacker) Probe(ch Channel) (func() (float64, error), error) {
	sensors, err := a.Discover()
	if err != nil {
		return nil, err
	}
	for _, s := range sensors {
		if s.Label == ch.Label {
			attr, scale, err := ch.Kind.attr()
			if err != nil {
				return nil, err
			}
			return trace.SysfsProbe(a.fs, a.cred, s.Dir+"/"+attr, scale), nil
		}
	}
	return nil, fmt.Errorf("core: no sensor labelled %q", ch.Label)
}

// NewRecorder builds a trace recorder polling the channel every
// interval. Register it with the simulation engine to start sampling.
func (a *Attacker) NewRecorder(ch Channel, interval time.Duration) (*trace.Recorder, error) {
	probe, err := a.Probe(ch)
	if err != nil {
		return nil, err
	}
	return trace.NewRecorder(interval, probe)
}
