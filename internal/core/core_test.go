package core

import (
	"bytes"
	"errors"
	"io/fs"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/board"
	"repro/internal/dpu"
	"repro/internal/imagenet"
	"repro/internal/stats"
	"repro/internal/sysfs"
)

func newBoard(t *testing.T) *board.ZCU102 {
	t.Helper()
	b, err := board.NewZCU102(board.Config{Seed: 5})
	if err != nil {
		t.Fatalf("NewZCU102: %v", err)
	}
	b.Run(100 * time.Millisecond)
	return b
}

func TestKindAttr(t *testing.T) {
	cases := []struct {
		kind  Kind
		attr  string
		scale float64
	}{
		{Current, "curr1_input", 1e-3},
		{Voltage, "in1_input", 1e-3},
		{Power, "power1_input", 1e-6},
	}
	for _, c := range cases {
		attr, scale, err := c.kind.attr()
		if err != nil || attr != c.attr || scale != c.scale {
			t.Errorf("%s: attr=%s scale=%v err=%v", c.kind, attr, scale, err)
		}
	}
	if _, _, err := Kind("bogus").attr(); err == nil {
		t.Fatal("bogus kind accepted")
	}
}

func TestChannelString(t *testing.T) {
	ch := Channel{Label: "ina226_u79", Kind: Current}
	if ch.String() != "Current (ina226_u79)" {
		t.Fatalf("String = %q", ch.String())
	}
}

func TestNewAttackerValidation(t *testing.T) {
	if _, err := NewAttacker(nil, sysfs.Nobody); err == nil {
		t.Fatal("nil sysfs accepted")
	}
}

func TestAttackerDiscover(t *testing.T) {
	b := newBoard(t)
	a, err := NewAttacker(b.Sysfs(), sysfs.Nobody)
	if err != nil {
		t.Fatalf("NewAttacker: %v", err)
	}
	sensors, err := a.Discover()
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	if len(sensors) != 18 {
		t.Fatalf("discovered %d sensors, want 18", len(sensors))
	}
	labels := map[string]bool{}
	for _, s := range sensors {
		if s.Name != "ina226" {
			t.Errorf("sensor %s has driver name %q", s.Label, s.Name)
		}
		labels[s.Label] = true
	}
	for _, want := range []string{board.SensorCPUFull, board.SensorCPULow,
		board.SensorFPGA, board.SensorDDR} {
		if !labels[want] {
			t.Errorf("sensitive sensor %s not discovered", want)
		}
	}
	// hwmon index order.
	if sensors[0].Dir != "class/hwmon/hwmon0" {
		t.Errorf("first sensor dir = %s", sensors[0].Dir)
	}
}

func TestAttackerProbe(t *testing.T) {
	b := newBoard(t)
	a, _ := NewAttacker(b.Sysfs(), sysfs.Nobody)
	probe, err := a.Probe(Channel{Label: board.SensorFPGA, Kind: Current})
	if err != nil {
		t.Fatalf("Probe: %v", err)
	}
	v, err := probe()
	if err != nil {
		t.Fatalf("probe read: %v", err)
	}
	if v < 0.4 || v > 0.8 {
		t.Fatalf("idle FPGA current = %v A, want ~0.55", v)
	}
	if _, err := a.Probe(Channel{Label: "ina226_u404", Kind: Current}); err == nil {
		t.Fatal("unknown sensor accepted")
	}
	if _, err := a.Probe(Channel{Label: board.SensorFPGA, Kind: "bogus"}); err == nil {
		t.Fatal("bogus kind accepted")
	}
}

func TestAttackerNewRecorder(t *testing.T) {
	b := newBoard(t)
	a, _ := NewAttacker(b.Sysfs(), sysfs.Nobody)
	rec, err := a.NewRecorder(Channel{Label: board.SensorFPGA, Kind: Current}, 35*time.Millisecond)
	if err != nil {
		t.Fatalf("NewRecorder: %v", err)
	}
	b.Engine().MustRegister("rec", rec)
	b.Run(350 * time.Millisecond)
	tr, err := rec.Trace()
	if err != nil {
		t.Fatalf("Trace: %v", err)
	}
	if len(tr.Samples) != 10 {
		t.Fatalf("samples = %d, want 10", len(tr.Samples))
	}
}

func TestCharacterizeShape(t *testing.T) {
	res, err := Characterize(CharacterizeConfig{Levels: 21, SamplesPerLevel: 10})
	if err != nil {
		t.Fatalf("Characterize: %v", err)
	}
	if len(res.Readings) != 21 {
		t.Fatalf("readings = %d", len(res.Readings))
	}
	// Current: strongly positive, ~40 LSB (mA) per 1k-instance group.
	if res.Current.Pearson < 0.99 {
		t.Errorf("current Pearson = %v, want > 0.99 (paper 0.999)", res.Current.Pearson)
	}
	if res.Current.LSBPerLevel < 30 || res.Current.LSBPerLevel > 50 {
		t.Errorf("current LSB/level = %v, want ~40", res.Current.LSBPerLevel)
	}
	// Power: strongly positive, 1-2 LSB per group.
	if res.Power.Pearson < 0.99 {
		t.Errorf("power Pearson = %v, want > 0.99 (paper 0.999)", res.Power.Pearson)
	}
	if res.Power.LSBPerLevel < 0.5 || res.Power.LSBPerLevel > 3 {
		t.Errorf("power LSB/level = %v, want 1-2", res.Power.LSBPerLevel)
	}
	// Voltage: correlated in magnitude but only a couple of LSBs total.
	if math.Abs(res.Voltage.Pearson) < 0.5 {
		t.Errorf("voltage |Pearson| = %v, want moderate-strong", math.Abs(res.Voltage.Pearson))
	}
	if math.Abs(res.Voltage.LSBPerLevel)*20 > 6 {
		t.Errorf("voltage swings %v LSB over the sweep, want a few",
			math.Abs(res.Voltage.LSBPerLevel)*20)
	}
	// RO: anticorrelated.
	if res.RO.Pearson > -0.9 {
		t.Errorf("RO Pearson = %v, want < -0.9 (paper -0.996)", res.RO.Pearson)
	}
	// Current responds monotonically: every reading above the previous.
	for i := 1; i < len(res.Readings); i++ {
		if res.Readings[i].CurrentAmps <= res.Readings[i-1].CurrentAmps {
			t.Fatalf("current not monotone at level %d", i)
		}
	}
	// Voltage never leaves the stabilizer band.
	for _, r := range res.Readings {
		if r.BusVolts < 0.8 || r.BusVolts > 0.9 {
			t.Fatalf("voltage %v outside plausible band", r.BusVolts)
		}
	}
}

func TestCharacterizeVariationRatioFullSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full 161-level sweep")
	}
	res, err := Characterize(CharacterizeConfig{SamplesPerLevel: 10})
	if err != nil {
		t.Fatalf("Characterize: %v", err)
	}
	// Paper: 261× greater variations than RO. Accept the right order of
	// magnitude.
	if res.VariationRatio < 150 || res.VariationRatio > 450 {
		t.Fatalf("variation ratio = %v, want ~261", res.VariationRatio)
	}
}

func TestCharacterizeValidation(t *testing.T) {
	if _, err := Characterize(CharacterizeConfig{Levels: 1}); err == nil {
		t.Fatal("single level accepted")
	}
	if _, err := Characterize(CharacterizeConfig{SamplesPerLevel: -1}); err == nil {
		t.Fatal("negative samples accepted")
	}
}

// tinyFingerprint is a fast Table III configuration for tests.
func tinyFingerprint() FingerprintConfig {
	return FingerprintConfig{
		Models:         []string{"MobileNet-V1", "SqueezeNet-1.1", "ResNet-50", "VGG-19"},
		TracesPerModel: 6,
		TraceDuration:  1 * time.Second,
		Durations:      []time.Duration{500 * time.Millisecond, 1 * time.Second},
		Folds:          3,
		Trees:          25,
	}
}

func TestFingerprintEndToEnd(t *testing.T) {
	cfg := tinyFingerprint()
	cfg.Channels = []Channel{
		{Label: board.SensorFPGA, Kind: Current},
		{Label: board.SensorFPGA, Kind: Voltage},
	}
	res, err := Fingerprint(cfg)
	if err != nil {
		t.Fatalf("Fingerprint: %v", err)
	}
	if res.Classes != 4 {
		t.Fatalf("Classes = %d", res.Classes)
	}
	cur, err := res.Cell(Channel{Label: board.SensorFPGA, Kind: Current}, time.Second)
	if err != nil {
		t.Fatalf("Cell: %v", err)
	}
	vol, err := res.Cell(Channel{Label: board.SensorFPGA, Kind: Voltage}, time.Second)
	if err != nil {
		t.Fatalf("Cell: %v", err)
	}
	// The paper's headline: current ≫ voltage.
	if cur.Top1 < 0.9 {
		t.Errorf("FPGA current top1 = %v, want near-perfect", cur.Top1)
	}
	if vol.Top1 > cur.Top1-0.2 {
		t.Errorf("voltage top1 %v not clearly below current %v", vol.Top1, cur.Top1)
	}
	if cur.Top5 < cur.Top1 || vol.Top5 < vol.Top1 {
		t.Error("top5 below top1")
	}
	if _, err := res.Cell(Channel{Label: "zz", Kind: Current}, time.Second); err == nil {
		t.Fatal("bogus cell lookup accepted")
	}
}

func TestFingerprintValidation(t *testing.T) {
	cfg := tinyFingerprint()
	cfg.TracesPerModel = 2 // < folds
	if _, err := Fingerprint(cfg); err == nil {
		t.Fatal("traces < folds accepted")
	}
	cfg = tinyFingerprint()
	cfg.Durations = []time.Duration{10 * time.Second}
	if _, err := Fingerprint(cfg); err == nil {
		t.Fatal("duration > capture accepted")
	}
	cfg = tinyFingerprint()
	cfg.Models = []string{"NoSuchNet"}
	if _, err := CollectDPUTraces(cfg); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestClassifierImportanceBreakdown(t *testing.T) {
	cfg := tinyFingerprint()
	cfg.Channels = []Channel{{Label: board.SensorFPGA, Kind: Current}}
	cfg.SpectralBins = 8
	caps, err := CollectDPUTraces(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clf, err := TrainClassifier(cfg, caps, cfg.Channels[0], time.Second)
	if err != nil {
		t.Fatalf("TrainClassifier: %v", err)
	}
	imp := clf.FeatureImportance()
	// 64 temporal + 6 summary + 8 spectral.
	if len(imp) != 78 {
		t.Fatalf("importance width = %d, want 78", len(imp))
	}
	bd := clf.Breakdown()
	total := bd.Temporal + bd.Summary + bd.Spectral
	if math.Abs(total-1) > 1e-6 {
		t.Fatalf("breakdown sums to %v: %+v", total, bd)
	}
	if bd.Temporal < 0 || bd.Summary < 0 || bd.Spectral < 0 {
		t.Fatalf("negative importance share: %+v", bd)
	}
}

func TestCollectDPUTracesDeterministic(t *testing.T) {
	cfg := FingerprintConfig{
		Models:         []string{"MobileNet-V1"},
		TracesPerModel: 1,
		TraceDuration:  500 * time.Millisecond,
		Durations:      []time.Duration{500 * time.Millisecond},
		Folds:          0, // defaults would fail validation (1 trace), so
		// collect only; set folds below traces manually.
	}
	cfg.Folds = 1
	// Folds=1 is invalid for Evaluate but CollectDPUTraces only checks
	// traces >= folds.
	run := func() []float64 {
		caps, err := CollectDPUTraces(cfg)
		if err != nil {
			t.Fatalf("CollectDPUTraces: %v", err)
		}
		if len(caps) != 1 {
			t.Fatalf("captures = %d", len(caps))
		}
		tr := caps[0].Traces[Channel{Label: board.SensorFPGA, Kind: Current}]
		if tr == nil || len(tr.Samples) == 0 {
			t.Fatal("missing FPGA current trace")
		}
		return tr.Samples
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different traces")
		}
	}
}

func TestEvaluateFamilies(t *testing.T) {
	cfg := FingerprintConfig{
		// Two models from each of two families.
		Models:         []string{"ResNet-18", "ResNet-50", "VGG-16", "VGG-19"},
		TracesPerModel: 6,
		TraceDuration:  time.Second,
		Durations:      []time.Duration{time.Second},
		Folds:          3,
		Trees:          25,
		Channels:       []Channel{{Label: board.SensorFPGA, Kind: Current}},
	}
	caps, err := CollectDPUTraces(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := EvaluateFamilies(cfg, caps, cfg.Channels[0], time.Second)
	if err != nil {
		t.Fatalf("EvaluateFamilies: %v", err)
	}
	if res.Families != 2 {
		t.Fatalf("Families = %d", res.Families)
	}
	// Family accuracy is never below model accuracy, by construction.
	if res.FamilyTop1 < res.ModelTop1 {
		t.Fatalf("family %v < model %v", res.FamilyTop1, res.ModelTop1)
	}
	if res.FamilyTop1 < 0.9 {
		t.Fatalf("family accuracy = %v on well-separated families", res.FamilyTop1)
	}
}

func TestEstimateInferencePeriod(t *testing.T) {
	// Root-retuned sensors (2 ms) resolve VGG-19's ~60 ms query loop.
	cfg := FingerprintConfig{
		Models:         []string{"VGG-19"},
		TracesPerModel: 1,
		TraceDuration:  3 * time.Second,
		Durations:      []time.Duration{3 * time.Second},
		Folds:          1,
		Channels:       []Channel{{Label: board.SensorFPGA, Kind: Current}},
		UpdateInterval: 2 * time.Millisecond,
	}
	caps, err := CollectDPUTraces(cfg)
	if err != nil {
		t.Fatal(err)
	}
	period, ok, err := EstimateInferencePeriod(caps[0], cfg.Channels[0])
	if err != nil {
		t.Fatalf("EstimateInferencePeriod: %v", err)
	}
	if !ok {
		t.Fatal("no periodic component found in a DPU trace")
	}
	// VGG-19's query period is tens of ms; the estimate should land in
	// that regime (harmonics may halve it).
	if period < 15*time.Millisecond || period > 300*time.Millisecond {
		t.Fatalf("estimated period = %v, want tens of ms", period)
	}

	// Error paths.
	if _, _, err := EstimateInferencePeriod(nil, cfg.Channels[0]); err == nil {
		t.Fatal("nil capture accepted")
	}
	if _, _, err := EstimateInferencePeriod(caps[0], Channel{Label: "zz"}); err == nil {
		t.Fatal("missing channel accepted")
	}
}

func TestCapturePersistenceRoundTrip(t *testing.T) {
	cfg := FingerprintConfig{
		Models:         []string{"MobileNet-V1", "VGG-19"},
		TracesPerModel: 2,
		TraceDuration:  500 * time.Millisecond,
		Durations:      []time.Duration{500 * time.Millisecond},
		Folds:          2,
		Channels:       []Channel{{Label: board.SensorFPGA, Kind: Current}},
	}
	caps, err := CollectDPUTraces(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveCaptures(&buf, caps); err != nil {
		t.Fatalf("SaveCaptures: %v", err)
	}
	loaded, err := LoadCaptures(&buf)
	if err != nil {
		t.Fatalf("LoadCaptures: %v", err)
	}
	if len(loaded) != len(caps) {
		t.Fatalf("loaded %d captures, want %d", len(loaded), len(caps))
	}
	ch := cfg.Channels[0]
	for i := range caps {
		a := caps[i].Traces[ch]
		b := loaded[i].Traces[ch]
		if b == nil || len(a.Samples) != len(b.Samples) || a.Interval != b.Interval {
			t.Fatalf("capture %d trace mismatch", i)
		}
		for j := range a.Samples {
			if a.Samples[j] != b.Samples[j] {
				t.Fatalf("capture %d sample %d mismatch", i, j)
			}
		}
		if loaded[i].Model != caps[i].Model || loaded[i].Rep != caps[i].Rep {
			t.Fatalf("capture %d metadata mismatch", i)
		}
	}
	// Loaded captures feed the classifier unchanged.
	if _, err := EvaluateCaptures(cfg, loaded); err != nil {
		t.Fatalf("EvaluateCaptures on loaded: %v", err)
	}
}

func TestCapturePersistenceErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveCaptures(&buf, nil); err == nil {
		t.Fatal("empty save accepted")
	}
	if _, err := LoadCaptures(strings.NewReader("[]")); err == nil {
		t.Fatal("empty stream accepted")
	}
	if _, err := LoadCaptures(strings.NewReader("{bad")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadCaptures(strings.NewReader(
		`[{"model":"m","rep":0,"traces":{"badkey":{"interval_ns":1,"samples":[1]}}}]`)); err == nil {
		t.Fatal("bad channel key accepted")
	}
	if _, err := LoadCaptures(strings.NewReader(
		`[{"model":"","rep":0,"traces":{}}]`)); err == nil {
		t.Fatal("incomplete capture accepted")
	}
}

func TestEvaluateCapturesRejectsEmpty(t *testing.T) {
	if _, err := EvaluateCaptures(tinyFingerprint(), nil); err == nil {
		t.Fatal("empty captures accepted")
	}
}

func TestRSAHammingWeightShape(t *testing.T) {
	// Adjacent paper weights (64 apart): current resolves all of them,
	// power merges neighbours into groups.
	res, err := RSAHammingWeight(RSAConfig{
		Weights: []int{1, 64, 128, 192, 256},
		Samples: 600,
	})
	if err != nil {
		t.Fatalf("RSAHammingWeight: %v", err)
	}
	if len(res.Keys) != 5 {
		t.Fatalf("keys = %d", len(res.Keys))
	}
	// Medians strictly increase with weight.
	for i := 1; i < len(res.Keys); i++ {
		if res.Keys[i].Current.Median <= res.Keys[i-1].Current.Median {
			t.Fatalf("current median not monotone at weight %d", res.Keys[i].Weight)
		}
	}
	if res.CurrentGroups != 5 {
		t.Fatalf("current groups = %d, want all 5 separable", res.CurrentGroups)
	}
	if res.PowerGroups >= res.CurrentGroups {
		t.Fatalf("power groups = %d, want fewer than current's %d",
			res.PowerGroups, res.CurrentGroups)
	}
	if res.CurrentPearson < 0.99 {
		t.Fatalf("current Pearson = %v", res.CurrentPearson)
	}
	if res.CurrentSpearman != 1 {
		t.Fatalf("current Spearman = %v, want exactly 1 (strictly monotone medians)", res.CurrentSpearman)
	}
	for _, k := range res.Keys {
		if k.Exponentiations == 0 {
			t.Fatalf("weight %d: victim completed no exponentiations", k.Weight)
		}
		if k.SearchSpaceReductionBits <= 0 {
			t.Fatalf("weight %d: no search-space reduction recorded", k.Weight)
		}
	}
}

func TestRSAFull17Keys(t *testing.T) {
	if testing.Short() {
		t.Skip("17-key sweep")
	}
	res, err := RSAHammingWeight(RSAConfig{Samples: 1500})
	if err != nil {
		t.Fatalf("RSAHammingWeight: %v", err)
	}
	if res.CurrentGroups != 17 {
		t.Errorf("current groups = %d, want 17 (paper: all separable)", res.CurrentGroups)
	}
	if res.PowerGroups < 3 || res.PowerGroups > 8 {
		t.Errorf("power groups = %d, want ~5 (paper)", res.PowerGroups)
	}
}

func TestRSAValidation(t *testing.T) {
	if _, err := RSAHammingWeight(RSAConfig{Samples: 2}); err == nil {
		t.Fatal("too few samples accepted")
	}
	if _, err := RSAHammingWeight(RSAConfig{Samples: 100, SampleInterval: -time.Second}); err == nil {
		t.Fatal("negative interval accepted")
	}
	if _, err := RSAHammingWeight(RSAConfig{Samples: 100, Weights: []int{0}}); err == nil {
		t.Fatal("weight 0 accepted (circuit does not support exponent 0)")
	}
}

func TestRSAVerifyDatapathMode(t *testing.T) {
	res, err := RSAHammingWeight(RSAConfig{
		Weights:        []int{64},
		Samples:        100,
		VerifyDatapath: true,
	})
	if err != nil {
		t.Fatalf("RSAHammingWeight(verify): %v", err)
	}
	if res.Keys[0].Exponentiations == 0 {
		t.Fatal("no exponentiations in verify mode")
	}
}

func TestRSAInterferenceDegradesAttack(t *testing.T) {
	quiet, err := RSAHammingWeight(RSAConfig{
		Weights: []int{1, 512, 1024}, Samples: 800,
	})
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := RSAHammingWeight(RSAConfig{
		Weights: []int{1, 512, 1024}, Samples: 800,
		ConcurrentDPUModel: "VGG-19",
	})
	if err != nil {
		t.Fatal(err)
	}
	if quiet.CurrentGroups != 3 {
		t.Fatalf("quiet groups = %d, want 3", quiet.CurrentGroups)
	}
	// A busy co-resident DPU swamps the per-class spacing: the simple
	// box-statistics attack loses resolution.
	if noisy.CurrentGroups >= quiet.CurrentGroups {
		t.Fatalf("interference did not degrade grouping: %d vs %d",
			noisy.CurrentGroups, quiet.CurrentGroups)
	}
	if _, err := RSAHammingWeight(RSAConfig{
		Weights: []int{1}, Samples: 100, ConcurrentDPUModel: "NoSuchNet",
	}); err == nil {
		t.Fatal("unknown interference model accepted")
	}
}

func TestRSACountermeasureKillsLeak(t *testing.T) {
	res, err := RSAHammingWeight(RSAConfig{
		Weights:        []int{1, 512, 1024},
		Samples:        600,
		Countermeasure: true,
	})
	if err != nil {
		t.Fatalf("RSAHammingWeight(ladder): %v", err)
	}
	if res.CurrentGroups != 1 {
		t.Fatalf("ladder current groups = %d, want 1 (leak removed)", res.CurrentGroups)
	}
	if res.PowerGroups != 1 {
		t.Fatalf("ladder power groups = %d, want 1", res.PowerGroups)
	}
	if math.Abs(res.CurrentPearson) > 0.9 {
		t.Fatalf("ladder Pearson = %v, want no weight correlation", res.CurrentPearson)
	}
}

func TestAssessRSALeakage(t *testing.T) {
	plain, err := AssessRSALeakage(LeakageConfig{SamplesPerSession: 500, RandomSessions: 2})
	if err != nil {
		t.Fatalf("AssessRSALeakage: %v", err)
	}
	if !plain.TVLA.Leaks {
		t.Fatalf("plain victim passed TVLA (t=%v); the channel must leak", plain.TVLA.T)
	}
	if math.Abs(plain.TVLA.T) < 50 {
		t.Fatalf("plain victim t=%v, expected a decisive failure", plain.TVLA.T)
	}
	if plain.SNR < 100 {
		t.Fatalf("plain victim SNR = %v, expected large", plain.SNR)
	}

	ladder, err := AssessRSALeakage(LeakageConfig{
		SamplesPerSession: 500, RandomSessions: 2, Countermeasure: true,
	})
	if err != nil {
		t.Fatalf("AssessRSALeakage(ladder): %v", err)
	}
	if ladder.TVLA.Leaks {
		t.Fatalf("ladder victim failed TVLA (t=%v); the countermeasure should hold", ladder.TVLA.T)
	}
	if ladder.SNR > 0.5 {
		t.Fatalf("ladder victim SNR = %v, expected ~0", ladder.SNR)
	}
}

func TestAssessRSALeakageValidation(t *testing.T) {
	if _, err := AssessRSALeakage(LeakageConfig{SamplesPerSession: 2}); err == nil {
		t.Fatal("too few samples accepted")
	}
	if _, err := AssessRSALeakage(LeakageConfig{SamplesPerSession: 100, RandomSessions: -1}); err == nil {
		t.Fatal("negative sessions accepted")
	}
}

func TestMitigation(t *testing.T) {
	res, err := Mitigation(7)
	if err != nil {
		t.Fatalf("Mitigation: %v", err)
	}
	if res.BeforeAttacker <= 0 {
		t.Fatalf("attack did not work before mitigation: %v", res.BeforeAttacker)
	}
	if !errors.Is(res.AfterAttackerErr, fs.ErrPermission) {
		t.Fatalf("attacker error after mitigation = %v, want ErrPermission", res.AfterAttackerErr)
	}
	if res.AfterRoot <= 0 {
		t.Fatal("root monitoring broken by mitigation")
	}
	if !res.Effective() {
		t.Fatal("Effective() = false")
	}
}

func TestSurveyRanksActiveSensorsFirst(t *testing.T) {
	b, err := board.NewZCU102(board.Config{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	// Victim: a DPU running inference drives FPGA, DDR, and CPU rails.
	dpuVictim, err := deployDPUForTest(b)
	if err != nil {
		t.Fatal(err)
	}
	_ = dpuVictim
	b.Run(100 * time.Millisecond)
	a, _ := NewAttacker(b.Sysfs(), sysfs.Nobody)
	rows, err := Survey(b, a, 2*time.Second)
	if err != nil {
		t.Fatalf("Survey: %v", err)
	}
	if len(rows) != 18 {
		t.Fatalf("rows = %d, want 18", len(rows))
	}
	// The four sensitive sensors must outrank every misc rail.
	sensitive := map[string]bool{
		board.SensorCPUFull: true, board.SensorCPULow: true,
		board.SensorFPGA: true, board.SensorDDR: true,
	}
	for i := 0; i < 4; i++ {
		if !sensitive[rows[i].Label] {
			t.Fatalf("rank %d is %s (std %.4f), want a sensitive sensor; full ranking: %v",
				i, rows[i].Label, rows[i].StdAmps, rows)
		}
	}
	// Ordering is by descending std.
	for i := 1; i < len(rows); i++ {
		if rows[i].StdAmps > rows[i-1].StdAmps {
			t.Fatal("survey rows not sorted")
		}
	}
}

func TestSurveyValidation(t *testing.T) {
	b, err := board.NewZCU102(board.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := NewAttacker(b.Sysfs(), sysfs.Nobody)
	if _, err := Survey(nil, a, time.Second); err == nil {
		t.Fatal("nil board accepted")
	}
	if _, err := Survey(b, nil, time.Second); err == nil {
		t.Fatal("nil attacker accepted")
	}
	if _, err := Survey(b, a, 0); err == nil {
		t.Fatal("zero duration accepted")
	}
}

// deployDPUForTest wires a DPU victim onto a board (mirrors the facade
// helper without importing the root package).
func deployDPUForTest(b *board.ZCU102) (*dpu.Engine, error) {
	queries, err := imagenet.New(b.Engine().Stream("queries"))
	if err != nil {
		return nil, err
	}
	engine, err := dpu.NewEngine(dpu.EngineConfig{
		Queries:        queries,
		SetCPUFullUtil: b.CPUFull().SetUtil,
		SetCPULowUtil:  b.CPULow().SetUtil,
		SetDDRUtil:     b.DDR().SetUtil,
	})
	if err != nil {
		return nil, err
	}
	if err := b.Fabric().Place(engine, b.Fabric().SpreadEvenly()); err != nil {
		return nil, err
	}
	m, err := dpu.ZooModel("ResNet-50")
	if err != nil {
		return nil, err
	}
	if err := engine.LoadModel(m); err != nil {
		return nil, err
	}
	return engine, nil
}

func TestApplicabilityAcrossCatalog(t *testing.T) {
	rows, err := Applicability(ApplicabilityConfig{Levels: 6, SamplesPerLevel: 5})
	if err != nil {
		t.Fatalf("Applicability: %v", err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want the 8 Table I boards", len(rows))
	}
	for _, r := range rows {
		if r.CurrentPearson < 0.99 {
			t.Errorf("%s: current Pearson = %v, attack should work on every board",
				r.Board, r.CurrentPearson)
		}
		if !r.VoltageInBand {
			t.Errorf("%s: stabilized voltage left its band", r.Board)
		}
		if r.Sensors < 14 {
			t.Errorf("%s: discovered %d sensors, want >= 14 (Table I)", r.Board, r.Sensors)
		}
	}
}

func TestApplicabilityValidation(t *testing.T) {
	if _, err := Applicability(ApplicabilityConfig{Levels: 1}); err == nil {
		t.Fatal("single level accepted")
	}
	if _, err := Applicability(ApplicabilityConfig{SamplesPerLevel: -1}); err == nil {
		t.Fatal("negative samples accepted")
	}
}

func TestCountGroups(t *testing.T) {
	mk := func(q1, q3 float64) KeyObservation {
		return KeyObservation{Current: stats.FiveNum{Min: q1, Q1: q1, Median: (q1 + q3) / 2, Q3: q3, Max: q3}}
	}
	obs := []KeyObservation{mk(0, 1), mk(0.5, 1.5), mk(3, 4), mk(5, 6)}
	got := countGroups(obs, func(k KeyObservation) stats.FiveNum { return k.Current })
	if got != 3 {
		t.Fatalf("groups = %d, want 3", got)
	}
	if countGroups(nil, nil) != 0 {
		t.Fatal("empty groups != 0")
	}
}
