package core

import (
	"testing"

	"repro/internal/obs"
)

// The run ledger's channel-quality figures come straight from obs
// gauges, so the experiments must actually publish them: a characterize
// run must leave leakage.snr set, a covert transmission covert.ber and
// covert.bits_per_sec, and any acquisition the trace counters.
func TestExperimentsPublishChannelQualityGauges(t *testing.T) {
	obs.Default.Reset()
	t.Cleanup(obs.Default.Reset)

	if _, err := Characterize(CharacterizeConfig{
		Seed:            3,
		Levels:          5,
		SamplesPerLevel: 6,
	}); err != nil {
		t.Fatalf("characterize: %v", err)
	}
	snap := obs.Default.Snapshot()
	snr, ok := snap.Gauges["leakage.snr"]
	if !ok {
		t.Fatal("characterize did not publish leakage.snr")
	}
	if snr <= 0 {
		t.Fatalf("leakage.snr = %g, want > 0 for a clearly separated sweep", snr)
	}
	if _, err := CovertTransmit(CovertConfig{Seed: 3, PayloadBits: 8}); err != nil {
		t.Fatalf("covert: %v", err)
	}
	snap = obs.Default.Snapshot()
	bps, ok := snap.Gauges["covert.bits_per_sec"]
	if !ok {
		t.Fatal("covert transmission did not publish covert.bits_per_sec")
	}
	if bps <= 0 {
		t.Fatalf("covert.bits_per_sec = %g, want > 0", bps)
	}
	ber, ok := snap.Gauges["covert.ber"]
	if !ok {
		t.Fatal("covert transmission did not publish covert.ber")
	}
	if ber < 0 || ber > 1 {
		t.Fatalf("covert.ber = %g outside [0,1]", ber)
	}
	if snap.Counters["trace.samples_recorded"] == 0 {
		t.Fatal("recorder did not count its samples")
	}
}
