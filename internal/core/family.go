package core

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/dpu"
	"repro/internal/ml/crossval"
	"repro/internal/ml/features"
	"repro/internal/ml/rforest"
)

// FamilyResult reports fingerprinting accuracy at two granularities:
// the exact architecture (the Table III metric) and the architecture
// family. Even when the classifier confuses two models, it almost
// always confuses them within a family — family identification is the
// robust fallback an attacker gets "for free".
type FamilyResult struct {
	Channel  Channel
	Duration time.Duration
	// ModelTop1 is the exact-architecture accuracy.
	ModelTop1 float64
	// FamilyTop1 is the accuracy of the predicted model's family.
	FamilyTop1 float64
	// Families evaluated.
	Families int
}

// EvaluateFamilies cross-validates one channel/duration and scores both
// the exact-model and the family-level prediction from the same
// confusion matrix.
func EvaluateFamilies(cfg FingerprintConfig, captures []*Capture, ch Channel, d time.Duration) (*FamilyResult, error) {
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	var ds features.Dataset
	for _, capt := range captures {
		tr, ok := capt.Traces[ch]
		if !ok {
			return nil, fmt.Errorf("core: capture %s/%d lacks channel %v", capt.Model, capt.Rep, ch)
		}
		prefix, err := tr.Prefix(d)
		if err != nil {
			return nil, err
		}
		vec, err := features.FromTraceWithSpectrum(prefix, cfg.Bins, cfg.SpectralBins)
		if err != nil {
			return nil, err
		}
		ds.Add(vec, capt.Model)
	}
	seed := captureSeed(cfg.Seed, fmt.Sprintf("family/%v/%v", ch, d), 0)
	rng := rand.New(rand.NewSource(seed))
	det, err := crossval.EvaluateDetailed(&ds, rforest.Config{
		Trees:    cfg.Trees,
		MaxDepth: cfg.MaxDepth,
		Rand:     rng,
	}, cfg.Folds, rng)
	if err != nil {
		return nil, err
	}

	// Map class indices to families via the zoo.
	family := make([]string, len(ds.Classes))
	families := map[string]bool{}
	for i, name := range ds.Classes {
		m, err := dpu.ZooModel(name)
		if err != nil {
			return nil, err
		}
		family[i] = m.Family
		families[m.Family] = true
	}
	var familyHits, total int
	for y, row := range det.Confusion {
		for p, count := range row {
			total += count
			if family[y] == family[p] {
				familyHits += count
			}
		}
	}
	res := &FamilyResult{
		Channel:   ch,
		Duration:  d,
		ModelTop1: det.Top1,
		Families:  len(families),
	}
	if total > 0 {
		res.FamilyTop1 = float64(familyHits) / float64(total)
	}
	return res, nil
}
