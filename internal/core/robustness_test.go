package core

import (
	"testing"
	"time"
)

func TestRobustnessSweep(t *testing.T) {
	res, err := Robustness(RobustnessConfig{
		Seed:           9,
		Profile:        "hostile",
		Intensities:    []float64{1, 0}, // unsorted on purpose
		Models:         2,
		TracesPerModel: 2,
		TraceDuration:  300 * time.Millisecond,
		Folds:          2,
		PayloadBits:    8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile != "hostile" || len(res.Points) != 2 {
		t.Fatalf("result = %+v, want 2 hostile points", res)
	}
	base, full := res.Points[0], res.Points[1]
	if base.Intensity != 0 || full.Intensity != 1 {
		t.Fatalf("points not in ascending intensity order: %v, %v", base.Intensity, full.Intensity)
	}
	if len(base.InjectedFaults) != 0 || base.Retries != 0 || base.Gaps != 0 {
		t.Errorf("intensity 0 absorbed faults: %+v", base)
	}
	if len(full.InjectedFaults) == 0 {
		t.Error("intensity 1 injected no faults")
	}
	for _, p := range res.Points {
		if p.FingerprintTop1 < 0 || p.FingerprintTop1 > 1 || p.CovertBER < 0 || p.CovertBER > 1 {
			t.Errorf("intensity %v: metrics out of range: %+v", p.Intensity, p)
		}
	}
	if res.Classes != 2 {
		t.Errorf("classes = %d, want 2", res.Classes)
	}
	// The fault-free baseline must track the current channel perfectly,
	// as in the clean applicability survey.
	if base.ApplicabilityPearson < 0.9 {
		t.Errorf("baseline Pearson = %v, want ~1", base.ApplicabilityPearson)
	}
}

func TestRobustnessRejectsUnknownProfile(t *testing.T) {
	if _, err := Robustness(RobustnessConfig{Profile: "no-such"}); err == nil {
		t.Fatal("unknown profile accepted")
	}
}
