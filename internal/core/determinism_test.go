package core

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/board"
)

// The runner's contract is that shard decomposition and per-shard seeds
// are functions of the campaign config alone, so every experiment that
// routes through it must produce byte-identical results no matter how
// many workers execute the shards or in what order they finish. These
// regression tests pin that property across -parallel 1, 4, and 16 for
// each sharded experiment.

// workerCounts exercises fewer workers than shards, more workers than
// shards, and the serial degenerate case.
var workerCounts = []int{1, 4, 16}

// mustJSON canonicalizes a result for byte-level comparison.
func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

func TestApplicabilityDeterministicAcrossWorkers(t *testing.T) {
	var want []byte
	for _, workers := range workerCounts {
		rows, err := Applicability(ApplicabilityConfig{
			Seed:            7,
			Levels:          3,
			SamplesPerLevel: 2,
			Parallelism:     workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := mustJSON(t, rows)
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("workers=%d: applicability rows differ from workers=%d baseline", workers, workerCounts[0])
		}
	}
}

func TestCharacterizeDeterministicAcrossWorkers(t *testing.T) {
	var want []byte
	for _, workers := range workerCounts {
		res, err := Characterize(CharacterizeConfig{
			Seed:            7,
			Levels:          5,
			SamplesPerLevel: 3,
			Parallelism:     workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := mustJSON(t, res)
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("workers=%d: characterize result differs from workers=%d baseline", workers, workerCounts[0])
		}
	}
}

func TestCovertDeterministicAcrossWorkers(t *testing.T) {
	var want []byte
	for _, workers := range workerCounts {
		res, err := CovertTransmit(CovertConfig{
			Seed:          7,
			PayloadBits:   24,
			SymbolUpdates: 1,
			ChunkBits:     8,
			Parallelism:   workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := mustJSON(t, res)
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("workers=%d: covert result differs from workers=%d baseline", workers, workerCounts[0])
		}
	}
}

func TestFingerprintDeterministicAcrossWorkers(t *testing.T) {
	cfg := FingerprintConfig{
		Seed:           7,
		Models:         []string{"MobileNet-V1", "VGG-19"},
		TracesPerModel: 2,
		TraceDuration:  500 * time.Millisecond,
		Durations:      []time.Duration{500 * time.Millisecond},
		Folds:          2,
		Trees:          10,
		Channels:       []Channel{{Label: board.SensorFPGA, Kind: Current}},
	}
	var wantCaps, wantRes []byte
	for _, workers := range workerCounts {
		cfg.Parallelism = workers
		caps, err := CollectDPUTraces(cfg)
		if err != nil {
			t.Fatalf("workers=%d: collect: %v", workers, err)
		}
		var buf bytes.Buffer
		if err := SaveCaptures(&buf, caps); err != nil {
			t.Fatalf("workers=%d: save: %v", workers, err)
		}
		res, err := EvaluateCaptures(cfg, caps)
		if err != nil {
			t.Fatalf("workers=%d: evaluate: %v", workers, err)
		}
		gotRes := mustJSON(t, res.Cells)
		if wantCaps == nil {
			wantCaps, wantRes = buf.Bytes(), gotRes
			continue
		}
		if !bytes.Equal(buf.Bytes(), wantCaps) {
			t.Errorf("workers=%d: captures differ from workers=%d baseline", workers, workerCounts[0])
		}
		if !bytes.Equal(gotRes, wantRes) {
			t.Errorf("workers=%d: accuracy cells differ from workers=%d baseline", workers, workerCounts[0])
		}
	}
}

// TestCharacterizeShardedVsChunkSizeInvariant pins that the covert
// chunked protocol's aggregate depends on the chunk layout but not the
// worker schedule: same config, different worker counts, same BER.
func TestCovertChunkLayoutIndependentOfWorkers(t *testing.T) {
	base, err := CovertTransmit(CovertConfig{Seed: 3, PayloadBits: 20, SymbolUpdates: 1, ChunkBits: 6, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	again, err := CovertTransmit(CovertConfig{Seed: 3, PayloadBits: 20, SymbolUpdates: 1, ChunkBits: 6, Parallelism: 16})
	if err != nil {
		t.Fatal(err)
	}
	if base.BitsSent != again.BitsSent || base.BitErrors != again.BitErrors {
		t.Errorf("chunked covert result changed with workers: %+v vs %+v", base, again)
	}
	if base.BitsSent != 20 {
		t.Errorf("BitsSent = %d, want 20", base.BitsSent)
	}
}
