package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/board"
	"repro/internal/trace"
)

// Degenerate traces reach the analysis code whenever a capture is cut
// short or a sensor misbehaves; none of them may crash or return a
// confident estimate.

func edgeCapture(samples []float64) *Capture {
	ch := Channel{Label: board.SensorFPGA, Kind: Current}
	return &Capture{
		Model: "edge",
		Traces: map[Channel]*trace.Trace{
			ch: {Interval: 35 * time.Millisecond, Samples: samples},
		},
	}
}

func periodicSamples(n, period int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Sin(2 * math.Pi * float64(i) / float64(period))
	}
	return out
}

func constantSamples(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func allNaN(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.NaN()
	}
	return out
}

func TestEstimateInferencePeriodEdgeCases(t *testing.T) {
	ch := Channel{Label: board.SensorFPGA, Kind: Current}
	nanTrace := periodicSamples(64, 8)
	nanTrace[10] = math.NaN()
	infTrace := periodicSamples(64, 8)
	infTrace[20] = math.Inf(1)

	tests := []struct {
		name    string
		capt    *Capture
		wantOK  bool
		wantErr bool
	}{
		{name: "nil capture", capt: nil, wantErr: true},
		{name: "missing channel", capt: &Capture{Traces: map[Channel]*trace.Trace{}}, wantErr: true},
		{name: "empty trace", capt: edgeCapture(nil), wantErr: true},
		{name: "single sample", capt: edgeCapture([]float64{1.5}), wantErr: true},
		{name: "below minimum length", capt: edgeCapture(constantSamples(15, 1)), wantErr: true},
		{name: "constant trace", capt: edgeCapture(constantSamples(64, 2.5)), wantOK: false},
		{name: "all zero", capt: edgeCapture(constantSamples(64, 0)), wantOK: false},
		// A NaN is a lost-sample gap: the gap-aware spectrum recovers
		// the period from the surviving samples.
		{name: "NaN gap recovers", capt: edgeCapture(nanTrace), wantOK: true},
		// A trace with no finite samples carries no structure at all.
		{name: "all NaN", capt: edgeCapture(allNaN(64)), wantOK: false},
		{name: "Inf sample", capt: edgeCapture(infTrace), wantOK: false},
		{name: "clean periodic", capt: edgeCapture(periodicSamples(64, 8)), wantOK: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			period, ok, err := EstimateInferencePeriod(tt.capt, ch)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("want error, got period=%v ok=%v", period, ok)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if ok != tt.wantOK {
				t.Fatalf("ok = %v, want %v (period %v)", ok, tt.wantOK, period)
			}
			if ok {
				if period <= 0 || math.IsInf(float64(period), 0) {
					t.Fatalf("confident estimate with degenerate period %v", period)
				}
			} else if period != 0 {
				t.Fatalf("not-ok estimate leaked period %v", period)
			}
		})
	}
}

func TestDominantPeriodNeverDividesByZeroBin(t *testing.T) {
	// A trace with no finite samples has all-zero Goertzel magnitudes;
	// before the guard this returned period=+Inf with ok=true.
	tr := &trace.Trace{Interval: time.Millisecond, Samples: allNaN(64)}
	period, ok, err := tr.DominantPeriod(16, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if ok || period != 0 {
		t.Fatalf("all-NaN trace produced period=%v ok=%v, want 0,false", period, ok)
	}
}

func TestDominantPeriodSurvivesGaps(t *testing.T) {
	// Lost samples are mean-filled: the dominant period survives a
	// scattering of gaps (leading, interior, and trailing).
	tr := &trace.Trace{Interval: time.Millisecond, Samples: periodicSamples(64, 8)}
	for _, i := range []int{0, 1, 20, 33, 62, 63} {
		tr.Samples[i] = math.NaN()
	}
	period, ok, err := tr.DominantPeriod(16, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || period != 8 {
		t.Fatalf("gapped periodic trace: period=%v ok=%v, want 8,true", period, ok)
	}
}

func TestDetectorEdgeCases(t *testing.T) {
	const interval = 35 * time.Millisecond

	tests := []struct {
		name       string
		samples    []float64
		wantEvents []EventKind
		wantRef    float64 // reference after the stream; NaN = don't check
	}{
		{
			name:       "empty stream",
			samples:    nil,
			wantEvents: nil,
			wantRef:    0,
		},
		{
			name:       "constant stream",
			samples:    constantSamples(64, 1.0),
			wantEvents: nil,
			wantRef:    1.0,
		},
		{
			name:       "single sample",
			samples:    []float64{2.0},
			wantEvents: nil,
			wantRef:    0, // baseline not yet established
		},
		{
			name: "clean rise and fall",
			samples: append(append(constantSamples(16, 1.0),
				constantSamples(16, 2.0)...), constantSamples(16, 1.0)...),
			wantEvents: []EventKind{Rise, Fall},
			wantRef:    1.0,
		},
		{
			name: "NaN during baseline does not poison the reference",
			samples: append([]float64{math.NaN(), math.NaN()},
				append(constantSamples(16, 1.0), constantSamples(16, 2.0)...)...),
			wantEvents: []EventKind{Rise},
			wantRef:    2.0,
		},
		{
			name: "NaN mid-stream does not poison the accumulators",
			samples: append(append(constantSamples(16, 1.0), math.NaN()),
				constantSamples(16, 2.0)...),
			wantEvents: []EventKind{Rise},
			wantRef:    2.0,
		},
		{
			name: "Inf sample is dropped",
			samples: append(append(constantSamples(16, 1.0), math.Inf(1), math.Inf(-1)),
				constantSamples(16, 2.0)...),
			wantEvents: []EventKind{Rise},
			wantRef:    2.0,
		},
		{
			name:       "all NaN stream stays silent",
			samples:    []float64{math.NaN(), math.NaN(), math.NaN(), math.NaN()},
			wantEvents: nil,
			wantRef:    0,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			det, err := NewDetector(DetectorConfig{}, interval)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range tt.samples {
				det.Push(s)
			}
			events := det.Events()
			if len(events) != len(tt.wantEvents) {
				t.Fatalf("got %d events %v, want kinds %v", len(events), events, tt.wantEvents)
			}
			for i, ev := range events {
				if ev.Kind != tt.wantEvents[i] {
					t.Errorf("event %d kind = %v, want %v", i, ev.Kind, tt.wantEvents[i])
				}
				if math.IsNaN(ev.Level) || math.IsInf(ev.Level, 0) {
					t.Errorf("event %d has non-finite level %v", i, ev.Level)
				}
			}
			if ref := det.Reference(); math.IsNaN(ref) || math.IsInf(ref, 0) {
				t.Fatalf("reference became non-finite: %v", ref)
			} else if !math.IsNaN(tt.wantRef) && ref != tt.wantRef {
				t.Fatalf("reference = %v, want %v", ref, tt.wantRef)
			}
		})
	}
}

func TestDetectorThresholdBoundary(t *testing.T) {
	// Accumulated deviation must exceed ThresholdAmps strictly; a step
	// exactly at the drift never fires and a step just above it does.
	det, err := NewDetector(DetectorConfig{DriftAmps: 0.02, ThresholdAmps: 0.1, BaselineSamples: 4}, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		det.Push(1.0)
	}
	// Deviation exactly at the drift: accumulator stays at zero forever.
	for i := 0; i < 100; i++ {
		if ev := det.Push(1.02); ev != nil {
			t.Fatalf("step at the drift slack fired after %d samples", i)
		}
	}
	// A 60 mA step accumulates 40 mA per sample past the drift: samples
	// one and two stay at 40/80 mA under the 100 mA threshold, the third
	// crosses it.
	for i := 0; i < 2; i++ {
		if ev := det.Push(1.06); ev != nil {
			t.Fatalf("fired on sample %d, before the accumulator crossed the threshold", i+1)
		}
	}
	ev := det.Push(1.06)
	if ev == nil || ev.Kind != Rise {
		t.Fatalf("expected a rise on the third sample, got %+v", ev)
	}
}
