package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/trace"
)

// Capture persistence: the offline phase records once, the analysis
// phase (cross-validation sweeps, feature ablations) re-reads many
// times. Channel keys are flattened to "label/kind" strings so the JSON
// is stable and diffable.

type jsonCapture struct {
	Model  string                  `json:"model"`
	Rep    int                     `json:"rep"`
	Traces map[string]*trace.Trace `json:"traces"`
}

func channelKey(ch Channel) string { return ch.Label + "/" + string(ch.Kind) }

func parseChannelKey(k string) (Channel, error) {
	for i := len(k) - 1; i >= 0; i-- {
		if k[i] == '/' {
			return Channel{Label: k[:i], Kind: Kind(k[i+1:])}, nil
		}
	}
	return Channel{}, fmt.Errorf("core: bad channel key %q", k)
}

// SaveCaptures writes captures as a JSON array.
func SaveCaptures(w io.Writer, captures []*Capture) error {
	if len(captures) == 0 {
		return errors.New("core: no captures to save")
	}
	out := make([]jsonCapture, 0, len(captures))
	for _, c := range captures {
		jc := jsonCapture{Model: c.Model, Rep: c.Rep, Traces: map[string]*trace.Trace{}}
		for ch, tr := range c.Traces {
			jc.Traces[channelKey(ch)] = tr
		}
		out = append(out, jc)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// LoadCaptures reads captures written by SaveCaptures.
func LoadCaptures(r io.Reader) ([]*Capture, error) {
	var in []jsonCapture
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, err
	}
	if len(in) == 0 {
		return nil, errors.New("core: no captures in stream")
	}
	out := make([]*Capture, 0, len(in))
	for i, jc := range in {
		if jc.Model == "" || len(jc.Traces) == 0 {
			return nil, fmt.Errorf("core: capture %d is incomplete", i)
		}
		c := &Capture{Model: jc.Model, Rep: jc.Rep, Traces: map[Channel]*trace.Trace{}}
		for k, tr := range jc.Traces {
			ch, err := parseChannelKey(k)
			if err != nil {
				return nil, err
			}
			if tr == nil || tr.Interval <= 0 {
				return nil, fmt.Errorf("core: capture %d channel %s has a bad trace", i, k)
			}
			c.Traces[ch] = tr
		}
		out = append(out, c)
	}
	return out, nil
}
