package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/board"
	"repro/internal/faults"
	"repro/internal/obs"
)

// RobustnessConfig parameterizes the accuracy-vs-fault-rate experiment:
// one fault profile swept over a list of intensities, with a reduced
// applicability survey, fingerprinting run, and covert transmission at
// each point.
type RobustnessConfig struct {
	// Seed for the whole experiment. Zero means 1.
	Seed int64
	// Profile is the fault preset to sweep; empty means "hostile".
	Profile string
	// Intensities scales the profile per point; empty means
	// {0, 0.25, 0.5, 1, 2}. Intensity 0 is the fault-free baseline.
	Intensities []float64
	// Parallelism for the sub-experiments; zero means GOMAXPROCS.
	Parallelism int

	// Reduced sub-experiment budgets (the full Table III grid at five
	// intensities would be prohibitive). Zeros mean 6 models, 5 traces
	// per model, 1 s captures, 5-fold CV, and a 32-bit covert payload.
	Models         int
	TracesPerModel int
	TraceDuration  time.Duration
	Folds          int
	PayloadBits    int
}

// RobustnessPoint is the outcome at one fault intensity.
type RobustnessPoint struct {
	// Intensity is the profile scale factor of this point.
	Intensity float64
	// ApplicabilityPearson is the mean FPGA-current Pearson across the
	// board survey.
	ApplicabilityPearson float64
	// FingerprintTop1 is the reduced run's top-1 accuracy.
	FingerprintTop1 float64
	// CovertBER is the covert transmission's bit error rate.
	CovertBER float64
	// InjectedFaults are the faults.injected.* counter deltas of this
	// point, keyed by fault kind.
	InjectedFaults map[string]int64
	// Retries and Gaps are the sampling layer's counter deltas.
	Retries, Gaps int64
}

// RobustnessResult is the full accuracy-vs-fault-rate curve.
type RobustnessResult struct {
	// Profile is the swept preset's name.
	Profile string
	// Points in ascending intensity order.
	Points []RobustnessPoint
	// Classes is the fingerprinting class count (random-guess baseline
	// = 1/Classes).
	Classes int
}

func (cfg *RobustnessConfig) fillDefaults() {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Profile == "" {
		cfg.Profile = "hostile"
	}
	if len(cfg.Intensities) == 0 {
		cfg.Intensities = []float64{0, 0.25, 0.5, 1, 2}
	}
	if cfg.Models == 0 {
		cfg.Models = 6
	}
	if cfg.TracesPerModel == 0 {
		cfg.TracesPerModel = 5
	}
	if cfg.TraceDuration == 0 {
		cfg.TraceDuration = time.Second
	}
	if cfg.Folds == 0 {
		cfg.Folds = 5
	}
	if cfg.PayloadBits == 0 {
		cfg.PayloadBits = 32
	}
}

// faultCounterDelta subtracts the faults.injected.* counters of two
// snapshots, keeping only kinds that actually fired.
func faultCounterDelta(before, after obs.Snapshot) map[string]int64 {
	const prefix = "faults.injected."
	out := make(map[string]int64)
	for name, v := range after.Counters {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		if d := v - before.Counter(name); d > 0 {
			out[strings.TrimPrefix(name, prefix)] = d
		}
	}
	return out
}

// Robustness sweeps one fault profile across intensities and measures
// how gracefully the three headline analyses degrade. At intensity 0
// the numbers must match the fault-free pipeline; at the profile's
// nominal intensity they should be degraded but well above chance.
func Robustness(cfg RobustnessConfig) (*RobustnessResult, error) {
	cfg.fillDefaults()
	base, err := faults.Preset(cfg.Profile)
	if err != nil {
		return nil, err
	}
	fpBase := FingerprintConfig{
		Seed:           cfg.Seed,
		TracesPerModel: cfg.TracesPerModel,
		TraceDuration:  cfg.TraceDuration,
		Durations:      []time.Duration{cfg.TraceDuration},
		Channels:       []Channel{{Label: board.SensorFPGA, Kind: Current}},
		Folds:          cfg.Folds,
		Parallelism:    cfg.Parallelism,
	}
	fpBase.fillDefaults()
	if cfg.Models < len(fpBase.Models) {
		fpBase.Models = fpBase.Models[:cfg.Models]
	}
	if fpBase.TracesPerModel < fpBase.Folds {
		fpBase.Folds = fpBase.TracesPerModel
	}

	res := &RobustnessResult{Profile: cfg.Profile}
	intensities := append([]float64(nil), cfg.Intensities...)
	sort.Float64s(intensities)
	for _, intensity := range intensities {
		profile, err := base.Scale(intensity)
		if err != nil {
			return nil, err
		}
		var pf *faults.Profile
		if profile.Enabled() {
			pf = &profile
		}
		before := obs.Default.Snapshot()
		obs.Eventf("robustness: %s @ %.2g starting", cfg.Profile, intensity)

		rows, err := Applicability(ApplicabilityConfig{
			Seed:        cfg.Seed,
			Parallelism: cfg.Parallelism,
			Faults:      pf,
		})
		if err != nil {
			return nil, fmt.Errorf("core: robustness applicability @ %g: %w", intensity, err)
		}
		if len(rows) == 0 {
			return nil, errors.New("core: robustness: empty board survey")
		}
		var pearson float64
		for _, r := range rows {
			pearson += r.CurrentPearson
		}
		pearson /= float64(len(rows))

		fpCfg := fpBase
		fpCfg.Faults = pf
		fp, err := Fingerprint(fpCfg)
		if err != nil {
			return nil, fmt.Errorf("core: robustness fingerprint @ %g: %w", intensity, err)
		}
		cell, err := fp.Cell(fpCfg.Channels[0], cfg.TraceDuration)
		if err != nil {
			return nil, err
		}
		res.Classes = fp.Classes

		cov, err := CovertTransmit(CovertConfig{
			Seed:        cfg.Seed,
			PayloadBits: cfg.PayloadBits,
			Faults:      pf,
		})
		if err != nil {
			return nil, fmt.Errorf("core: robustness covert @ %g: %w", intensity, err)
		}

		after := obs.Default.Snapshot()
		res.Points = append(res.Points, RobustnessPoint{
			Intensity:            intensity,
			ApplicabilityPearson: pearson,
			FingerprintTop1:      cell.Top1,
			CovertBER:            cov.BER(),
			InjectedFaults:       faultCounterDelta(before, after),
			Retries:              after.Counter("core.sampler.retries") - before.Counter("core.sampler.retries"),
			Gaps:                 after.Counter("core.sampler.gaps") - before.Counter("core.sampler.gaps"),
		})
	}
	return res, nil
}
