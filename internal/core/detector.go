package core

import (
	"errors"
	"math"
	"time"
)

// The simplest online use of the channel: watch a sensor and report the
// moments FPGA workloads start and stop. A two-sided CUSUM changepoint
// detector over the current samples is robust to the 1 mA quantization
// and the rail noise while reacting within a few update intervals.

// DetectorConfig parameterizes a workload detector.
type DetectorConfig struct {
	// DriftAmps is the CUSUM slack: level changes smaller than this are
	// treated as noise. Zero means 20 mA (half a power-virus group).
	DriftAmps float64
	// ThresholdAmps is the accumulated deviation that triggers an event.
	// Zero means 100 mA.
	ThresholdAmps float64
	// BaselineSamples initialize the reference level before detection
	// starts. Zero means 8.
	BaselineSamples int
}

// EventKind classifies a detected change.
type EventKind string

// Detected change kinds.
const (
	// Rise is a workload turning on (current step up).
	Rise EventKind = "rise"
	// Fall is a workload turning off (current step down).
	Fall EventKind = "fall"
)

// Event is one detected workload transition.
type Event struct {
	// At is the sample timestamp of the detection.
	At time.Duration
	// Kind of the transition.
	Kind EventKind
	// Level is the new reference level in amps after the transition.
	Level float64
}

// Detector is an online two-sided CUSUM changepoint detector.
type Detector struct {
	cfg DetectorConfig

	n        int
	baseline float64
	ref      float64
	up, down float64
	now      time.Duration
	interval time.Duration

	events []Event
}

// NewDetector validates cfg and returns a detector; interval is the
// sampling period used to timestamp events.
func NewDetector(cfg DetectorConfig, interval time.Duration) (*Detector, error) {
	if cfg.DriftAmps == 0 {
		cfg.DriftAmps = 0.020
	}
	if cfg.ThresholdAmps == 0 {
		cfg.ThresholdAmps = 0.100
	}
	if cfg.BaselineSamples == 0 {
		cfg.BaselineSamples = 8
	}
	if cfg.DriftAmps < 0 || cfg.ThresholdAmps <= 0 || cfg.BaselineSamples < 1 {
		return nil, errors.New("core: invalid detector parameters")
	}
	if interval <= 0 {
		return nil, errors.New("core: non-positive detector interval")
	}
	return &Detector{cfg: cfg, interval: interval}, nil
}

// Push consumes one current sample and returns a non-nil event when a
// transition is detected at this sample.
func (d *Detector) Push(amps float64) *Event {
	defer func() { d.now += d.interval }()

	// A corrupt sample (sensor glitch, parse failure upstream) must not
	// poison the baseline mean or the CUSUM accumulators — one NaN would
	// otherwise disable the detector permanently. Drop it; time still
	// advances so event timestamps stay aligned with the stream.
	if math.IsNaN(amps) || math.IsInf(amps, 0) {
		return nil
	}

	if d.n < d.cfg.BaselineSamples {
		d.baseline += amps
		d.n++
		if d.n == d.cfg.BaselineSamples {
			d.ref = d.baseline / float64(d.n)
		}
		return nil
	}

	dev := amps - d.ref
	d.up += dev - d.cfg.DriftAmps
	if d.up < 0 {
		d.up = 0
	}
	d.down += -dev - d.cfg.DriftAmps
	if d.down < 0 {
		d.down = 0
	}

	var kind EventKind
	switch {
	case d.up > d.cfg.ThresholdAmps:
		kind = Rise
	case d.down > d.cfg.ThresholdAmps:
		kind = Fall
	default:
		return nil
	}
	// Re-reference at the new level and reset the accumulators.
	d.ref = amps
	d.up, d.down = 0, 0
	ev := Event{At: d.now, Kind: kind, Level: amps}
	d.events = append(d.events, ev)
	return &ev
}

// Events returns all detections so far.
func (d *Detector) Events() []Event { return append([]Event(nil), d.events...) }

// Reference returns the present reference level in amps.
func (d *Detector) Reference() float64 { return d.ref }
