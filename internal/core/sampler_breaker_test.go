package core

// Circuit breaker and dead-channel behaviour of the resilient sampler,
// plus the hotplug renumber-storm recovery property: a sampler under a
// hostile sensor either keeps delivering (with explicit gap and
// re-resolution accounting) or declares the channel dead — it never
// silently wedges.

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/board"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/sysfs"
)

// newFaultySampler wires a sampler on a board with the given fault
// profile, so the breaker is armed.
func newFaultySampler(t *testing.T, p faults.Profile) (*Sampler, *board.SoC) {
	t.Helper()
	b, err := board.NewZCU102(board.Config{Seed: 1, Faults: &p})
	if err != nil {
		t.Fatal(err)
	}
	b.Run(10 * time.Millisecond)
	atk, err := NewAttacker(b.Sysfs(), sysfs.Nobody)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSampler(b, atk, Channel{Label: board.SensorFPGA, Kind: Current}, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	return s, b
}

// mildProfile arms the injector (and thus the breaker) without
// actually firing faults, so tests can script failures themselves.
func mildProfile() faults.Profile {
	return faults.Profile{Name: "test-armed", SysfsErrorRate: 1e-12}
}

func TestSamplerWithoutFaultsHasNoBreaker(t *testing.T) {
	s, _ := newTestSampler(t)
	if s.Breaker() != nil {
		t.Fatal("no-fault sampler grew a breaker; the clean path must stay byte-identical")
	}
}

func TestSamplerBreakerShedsAfterFailureRun(t *testing.T) {
	s, _ := newFaultySampler(t, mildProfile())
	if s.Breaker() == nil {
		t.Fatal("fault-armed sampler has no breaker")
	}
	// Keep the channel alive long enough to watch the breaker cycle.
	p := DefaultRetryPolicy(time.Millisecond)
	p.MaxConsecutiveGaps = -1
	s.SetPolicy(p)

	probes := 0
	s.probe = func() (float64, error) { probes++; return 0, faults.ErrIO }

	before := obs.C("resilience.breaker.open_total").Value()
	ctx := context.Background()
	// Each lost sample is one breaker failure; the default threshold is
	// 16, so the 16th loss trips it.
	for i := 0; i < 16; i++ {
		if _, err := s.Read(ctx); !errors.Is(err, ErrSampleLost) {
			t.Fatalf("read %d: %v, want ErrSampleLost", i, err)
		}
	}
	if got := s.Breaker().State(); got != resilience.Open {
		t.Fatalf("breaker after 16 losses = %v, want open", got)
	}
	if obs.C("resilience.breaker.open_total").Value() <= before {
		t.Error("breaker trip not counted in resilience.breaker.open_total")
	}

	// While open, reads shed instantly: still gaps, but no probe (and no
	// retry/backoff burn).
	probesWhenOpened := probes
	for i := 0; i < 5; i++ {
		if v, err := s.Read(ctx); !errors.Is(err, ErrSampleLost) || !math.IsNaN(v) {
			t.Fatalf("shed read %d: (%v, %v), want (NaN, ErrSampleLost)", i, v, err)
		}
	}
	if probes != probesWhenOpened {
		t.Errorf("open breaker still probed the sensor %d times", probes-probesWhenOpened)
	}
	if s.Breaker().ShortCircuits() < 5 {
		t.Errorf("short circuits = %d, want >= 5", s.Breaker().ShortCircuits())
	}
}

func TestSamplerBreakerRecovers(t *testing.T) {
	s, b := newFaultySampler(t, mildProfile())
	p := DefaultRetryPolicy(time.Millisecond)
	p.MaxConsecutiveGaps = -1
	s.SetPolicy(p)

	healthy := false
	real := s.probe
	s.probe = func() (float64, error) {
		if healthy {
			return real()
		}
		return 0, faults.ErrIO
	}
	ctx := context.Background()
	for i := 0; i < 16; i++ {
		if _, err := s.Read(ctx); !errors.Is(err, ErrSampleLost) {
			t.Fatal(err)
		}
	}
	if s.Breaker().State() != resilience.Open {
		t.Fatal("breaker did not open")
	}

	// Sensor heals; advance sim time past the jittered probe window
	// (OpenFor is 32 intervals, jitter caps at +25%).
	healthy = true
	b.Run(64 * time.Millisecond)
	for i := 0; i < 2; i++ {
		if v, err := s.Read(ctx); err != nil || math.IsNaN(v) {
			t.Fatalf("probe read %d: (%v, %v), want a live read", i, v, err)
		}
	}
	if got := s.Breaker().State(); got != resilience.Closed {
		t.Errorf("breaker after successful probes = %v, want closed", got)
	}
}

func TestSamplerDeclaresChannelDead(t *testing.T) {
	s, _ := newFaultySampler(t, mildProfile())
	p := DefaultRetryPolicy(time.Millisecond)
	p.MaxConsecutiveGaps = 5
	s.SetPolicy(p)
	probes := 0
	s.probe = func() (float64, error) { probes++; return 0, faults.ErrIO }

	ctx := context.Background()
	var err error
	// The 6th consecutive gap crosses the limit of 5 and turns sticky.
	for i := 0; i < 100; i++ {
		if _, err = s.Sample(ctx); errors.Is(err, ErrChannelDead) {
			break
		}
		if !errors.Is(err, ErrSampleLost) {
			t.Fatalf("sample %d: %v", i, err)
		}
	}
	if !errors.Is(err, ErrChannelDead) {
		t.Fatal("channel never declared dead")
	}
	// Dead is sticky and probe-free: both entry points fail fast.
	probesWhenDead := probes
	if _, err := s.Sample(ctx); !errors.Is(err, ErrChannelDead) {
		t.Errorf("Sample on dead channel = %v", err)
	}
	if _, err := s.Read(ctx); !errors.Is(err, ErrChannelDead) {
		t.Errorf("Read on dead channel = %v", err)
	}
	if probes != probesWhenDead {
		t.Errorf("dead channel still probed %d times", probes-probesWhenDead)
	}
}

func TestSamplerSurvivesRenumberStorm(t *testing.T) {
	// A hotplug storm renumbers the hwmon directory ~every 5 simulated
	// milliseconds while the sampler reads at 1 kHz — every few samples
	// the resolved path dies under the probe. The recovery contract: the
	// loop always terminates, re-resolution is exercised, and the
	// sampler either keeps delivering samples or reports an explicit
	// dead channel. No silent wedge, no unbounded error.
	storm := faults.Profile{
		Name:           "renumber-storm",
		HotplugRate:    200, // expected renumbers per simulated second
		SysfsErrorRate: 0.05,
	}
	s, _ := newFaultySampler(t, storm)

	reresolvesBefore := obs.C("core.sampler.reresolves").Value()
	ctx := context.Background()
	good, gaps := 0, 0
	var dead bool
	for i := 0; i < 500; i++ {
		v, err := s.Sample(ctx)
		switch {
		case err == nil:
			if math.IsNaN(v) {
				t.Fatalf("sample %d: clean read returned NaN", i)
			}
			good++
		case errors.Is(err, ErrSampleLost):
			gaps++
		case errors.Is(err, ErrChannelDead):
			dead = true
		default:
			t.Fatalf("sample %d: unexpected hard error %v", i, err)
		}
		if dead {
			break
		}
	}
	if !dead && good == 0 {
		t.Error("storm produced no samples and no dead-channel verdict: silent wedge")
	}
	if got := obs.C("core.sampler.reresolves").Value(); got == reresolvesBefore {
		t.Error("a 200/s renumber storm never exercised re-resolution")
	}
	t.Logf("storm outcome: %d good, %d gaps, dead=%v, reresolves=%d",
		good, gaps, dead, obs.C("core.sampler.reresolves").Value()-reresolvesBefore)
}
